/**
 * @file
 * Tests for the telemetry subsystem: metrics registry semantics
 * (handles, snapshot, reset), histogram bucketing and percentiles,
 * tracer span bookkeeping and ring-buffer drops, and the JSON sinks
 * (validated by parsing our own output back in).
 */

#include <sstream>

#include <gtest/gtest.h>

#include "telemetry/json.hh"
#include "telemetry/metrics.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/trace.hh"

namespace chameleon {
namespace telemetry {
namespace {

TEST(Metrics, CounterAndGaugeHandlesAreStable)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("repair.chunks");
    c.add();
    c.add(4);
    // Re-resolving yields the same instrument.
    EXPECT_EQ(&reg.counter("repair.chunks"), &c);
    EXPECT_EQ(c.value, 5);

    Gauge &g = reg.gauge("sim.flows.active");
    g.set(3.0);
    g.add(-1.0);
    EXPECT_DOUBLE_EQ(reg.gauge("sim.flows.active").value, 2.0);
    EXPECT_EQ(reg.size(), 2u);
}

TEST(Metrics, SnapshotCapturesAndFinds)
{
    MetricsRegistry reg;
    reg.counter("a.count").add(7);
    reg.gauge("b.level").set(1.5);
    auto snap = reg.snapshot();
    ASSERT_EQ(snap.samples.size(), 2u);
    const MetricSample *a = snap.find("a.count");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->kind, MetricSample::Kind::kCounter);
    EXPECT_DOUBLE_EQ(a->value, 7.0);
    EXPECT_DOUBLE_EQ(snap.find("b.level")->value, 1.5);
    EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(Metrics, ResetZeroesButKeepsHandles)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("x");
    Histogram &h = reg.histogram("y", {1.0, 2.0});
    c.add(3);
    h.observe(1.5);
    reg.reset();
    EXPECT_EQ(c.value, 0);
    EXPECT_EQ(h.count(), 0);
    EXPECT_EQ(reg.size(), 2u);
    // Handles stay usable after reset.
    c.add();
    EXPECT_EQ(reg.counter("x").value, 1);
}

TEST(Metrics, HistogramBucketing)
{
    Histogram h({10.0, 20.0, 50.0});
    ASSERT_EQ(h.counts().size(), 4u);
    h.observe(5.0);   // bucket 0 (<= 10)
    h.observe(10.0);  // bucket 0 (boundary is inclusive)
    h.observe(15.0);  // bucket 1
    h.observe(49.0);  // bucket 2
    h.observe(1000.0); // overflow
    EXPECT_EQ(h.counts()[0], 2);
    EXPECT_EQ(h.counts()[1], 1);
    EXPECT_EQ(h.counts()[2], 1);
    EXPECT_EQ(h.counts()[3], 1);
    EXPECT_EQ(h.count(), 5);
    EXPECT_DOUBLE_EQ(h.min(), 5.0);
    EXPECT_DOUBLE_EQ(h.max(), 1000.0);
    EXPECT_NEAR(h.mean(), (5 + 10 + 15 + 49 + 1000) / 5.0, 1e-9);
}

TEST(Metrics, HistogramPercentiles)
{
    Histogram h({1, 2, 5, 10, 20, 50, 100});
    for (int i = 0; i < 90; ++i)
        h.observe(1.5); // bucket (1, 2]
    for (int i = 0; i < 10; ++i)
        h.observe(40.0); // bucket (20, 50]
    // P50 falls in the (1, 2] bucket; P99 in (20, 50].
    double p50 = h.percentile(50.0);
    EXPECT_GE(p50, 1.0);
    EXPECT_LE(p50, 2.0);
    double p99 = h.percentile(99.0);
    EXPECT_GE(p99, 20.0);
    EXPECT_LE(p99, 50.0);
}

TEST(Tracer, SpanNestingAndOrder)
{
    Tracer tr(64);
    tr.beginRun("test");
    tr.begin(1.0, kTrackScheduler, "repair", "phase");
    tr.begin(2.0, kTrackScheduler, "repair", "inner");
    tr.end(3.0, kTrackScheduler);
    tr.end(4.0, kTrackScheduler);
    tr.instant(5.0, kTrackScheduler, "repair", "dispatch");
    auto evs = tr.events();
    ASSERT_EQ(evs.size(), 5u);
    EXPECT_EQ(evs[0].phase, TraceEvent::Phase::kBegin);
    EXPECT_EQ(evs[0].name, "phase");
    EXPECT_EQ(evs[1].name, "inner");
    EXPECT_EQ(evs[2].phase, TraceEvent::Phase::kEnd);
    EXPECT_EQ(evs[3].phase, TraceEvent::Phase::kEnd);
    EXPECT_EQ(evs[4].phase, TraceEvent::Phase::kInstant);
    for (const auto &ev : evs)
        EXPECT_EQ(ev.tid, kTrackScheduler);
}

TEST(Tracer, RunsGetDistinctPids)
{
    Tracer tr(64);
    int first = tr.beginRun("alpha");
    tr.instant(0.0, kTrackSim, "c", "e");
    int second = tr.beginRun("beta");
    tr.instant(0.0, kTrackSim, "c", "e");
    EXPECT_NE(first, second);
    auto evs = tr.events();
    ASSERT_EQ(evs.size(), 2u);
    EXPECT_EQ(evs[0].pid, first);
    EXPECT_EQ(evs[1].pid, second);
}

TEST(Tracer, RingDropsOldestWhenFull)
{
    Tracer tr(4);
    tr.beginRun("ring");
    for (int i = 0; i < 10; ++i)
        tr.instant(static_cast<double>(i), kTrackSim, "c", "e",
                   {{"i", i}});
    EXPECT_EQ(tr.size(), 4u);
    EXPECT_EQ(tr.dropped(), 6u);
    auto evs = tr.events();
    ASSERT_EQ(evs.size(), 4u);
    // The survivors are the newest events, oldest first.
    EXPECT_DOUBLE_EQ(evs.front().ts, 6.0);
    EXPECT_DOUBLE_EQ(evs.back().ts, 9.0);
}

TEST(Tracer, ChromeTraceIsWellFormedJson)
{
    Tracer tr(64);
    tr.beginRun("ChameleonEC");
    tr.begin(1.0, kTrackScheduler, "repair", "phase",
             {{"index", 0}, {"pending", 3}});
    tr.end(21.0, kTrackScheduler);
    tr.complete(2.0, 3.0, kTrackRepairFlow, "sim.flow", "flow",
                {{"bytes", 1e6}, {"path", "n0.up|n1.down"}});
    tr.instant(4.0, kTrackScheduler, "repair", "straggler",
               {{"node", 7}});
    tr.counter(5.0, kTrackMonitor, "residual.n0",
               {{"up", 50.0}, {"down", 75.0}});

    std::ostringstream os;
    tr.writeChromeTrace(os);
    auto doc = parseJson(os.str());
    ASSERT_TRUE(doc.has_value()) << "invalid JSON: " << os.str();
    const JsonValue *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    // Metadata (process_name + thread_names) precedes the events.
    bool saw_process = false, saw_flow = false, saw_counter = false;
    for (const auto &ev : events->array) {
        const std::string name = ev.stringOr("name", "");
        const std::string ph = ev.stringOr("ph", "");
        if (name == "process_name") {
            saw_process = true;
            const JsonValue *args = ev.find("args");
            ASSERT_NE(args, nullptr);
            EXPECT_EQ(args->stringOr("name", ""), "ChameleonEC");
        }
        if (name == "flow" && ph == "X") {
            saw_flow = true;
            EXPECT_DOUBLE_EQ(ev.numberOr("ts", 0.0), 2e6);
            EXPECT_DOUBLE_EQ(ev.numberOr("dur", 0.0), 3e6);
            EXPECT_EQ(ev.find("args")->stringOr("path", ""),
                      "n0.up|n1.down");
        }
        if (name == "residual.n0" && ph == "C")
            saw_counter = true;
    }
    EXPECT_TRUE(saw_process);
    EXPECT_TRUE(saw_flow);
    EXPECT_TRUE(saw_counter);
}

TEST(Tracer, JsonlLinesEachParse)
{
    Tracer tr(64);
    tr.beginRun("run");
    tr.instant(1.0, kTrackSim, "c", "one", {{"k", "v"}});
    tr.instant(2.0, kTrackSim, "c", "two");
    std::ostringstream os;
    tr.writeJsonl(os);
    std::istringstream in(os.str());
    std::string line;
    int lines = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        ++lines;
        auto v = parseJson(line);
        ASSERT_TRUE(v.has_value()) << "bad line: " << line;
        EXPECT_TRUE(v->isObject());
    }
    EXPECT_EQ(lines, 2);
}

TEST(Tracer, PhaseCsvSummarizesSpans)
{
    Tracer tr(64);
    tr.beginRun("run");
    tr.begin(0.0, kTrackScheduler, "repair", "phase");
    tr.instant(1.0, kTrackScheduler, "repair", "dispatch");
    tr.instant(2.0, kTrackScheduler, "repair", "dispatch");
    tr.instant(3.0, kTrackScheduler, "repair", "straggler");
    tr.instant(3.5, kTrackScheduler, "repair", "retune");
    tr.end(10.0, kTrackScheduler);
    std::ostringstream os;
    tr.writePhaseCsv(os);
    std::istringstream in(os.str());
    std::string header, row;
    ASSERT_TRUE(std::getline(in, header));
    EXPECT_EQ(header,
              "run,phase,start_s,end_s,duration_s,dispatches,"
              "stragglers,retunes,reorders");
    ASSERT_TRUE(std::getline(in, row));
    EXPECT_NE(row.find(",2,1,1,0"), std::string::npos) << row;
}

TEST(Facade, MetricsSnapshotJsonParses)
{
    MetricsRegistry reg;
    reg.counter("a.b.count").add(3);
    reg.gauge("a.b.level").set(0.25);
    reg.histogram("lat", {1.0, 10.0}).observe(2.0);
    std::ostringstream os;
    reg.snapshot().writeJson(os);
    auto doc = parseJson(os.str());
    ASSERT_TRUE(doc.has_value()) << "invalid JSON: " << os.str();
    ASSERT_TRUE(doc->isObject());
    EXPECT_DOUBLE_EQ(doc->numberOr("a.b.count", 0.0), 3.0);
    EXPECT_DOUBLE_EQ(doc->numberOr("a.b.level", 0.0), 0.25);
    const JsonValue *h = doc->find("lat");
    ASSERT_NE(h, nullptr);
    EXPECT_DOUBLE_EQ(h->numberOr("count", 0.0), 1.0);
}

TEST(Facade, EnableGateControlsTracing)
{
    // The facade tracer only records inside CHAMELEON_TELEM blocks
    // when enabled; flip the gate both ways and observe.
    tracer().clear();
    setEnabled(false);
    CHAMELEON_TELEM(tracer().instant(0.0, kTrackSim, "c", "off"));
    EXPECT_EQ(tracer().size(), 0u);
    setEnabled(true);
    CHAMELEON_TELEM(tracer().instant(0.0, kTrackSim, "c", "on"));
#ifndef CHAMELEON_TELEMETRY_DISABLED
    EXPECT_EQ(tracer().size(), 1u);
#else
    EXPECT_EQ(tracer().size(), 0u);
#endif
    setEnabled(false);
    tracer().clear();
}

} // namespace
} // namespace telemetry
} // namespace chameleon
