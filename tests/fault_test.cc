/**
 * @file
 * Deterministic fault-injection scenarios: fixed-seed crashes mid
 * repair (of a source and of a destination), flapping links,
 * unrecoverable stripes, delayed rejoin, and schedule/chaos
 * determinism. Every scenario asserts the repair layer's contract
 * under churn: each lost chunk ends repaired or reported
 * unrecoverable, repaired chunks are byte-exact under their final
 * (re-planned) repair plan, no repaired chunk lands on a dead node,
 * and two same-seed runs produce identical fault logs and outcomes.
 */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "cluster/stripe_manager.hh"
#include "ec/factory.hh"
#include "fault/fault.hh"
#include "repair/executor.hh"
#include "repair/plan.hh"
#include "repair/session.hh"
#include "repair/strategies.hh"
#include "telemetry/telemetry.hh"
#include "util/rng.hh"

namespace chameleon {
namespace {

ec::Buffer
randomChunk(Rng &rng, std::size_t size)
{
    ec::Buffer b(size);
    for (auto &v : b)
        v = static_cast<uint8_t>(rng.below(256));
    return b;
}

std::vector<ec::Buffer>
randomStripe(Rng &rng, const ec::ErasureCode &code, std::size_t size)
{
    std::vector<ec::Buffer> data;
    for (int i = 0; i < code.k(); ++i)
        data.push_back(randomChunk(rng, size));
    auto parity = code.encode(data);
    std::vector<ec::Buffer> chunks = data;
    for (auto &p : parity)
        chunks.push_back(std::move(p));
    return chunks;
}

/**
 * A small, fast churn rig: RS(4,2) stripes over 12 nodes with real
 * per-stripe payloads, a repair session whose plan factory records
 * the last plan launched per chunk (the one that completed, since
 * every abort re-plans), and helpers that crash nodes the way the
 * injector does.
 */
class ChurnRig
{
  public:
    explicit ChurnRig(uint64_t seed = 11, int nodes = 12,
                      int stripe_count = 8)
        : cfg_(makeConfig(nodes)), cluster_(sim_, cfg_),
          code_(ec::makeRs(4, 2)), stripes_(code_, nodes),
          executor_(cluster_, repair::ExecutorConfig{64.0, 8.0}),
          planRng_(seed)
    {
        Rng rng(99);
        stripes_.createStripes(stripe_count, rng);
        Rng data_rng(5);
        for (int s = 0; s < stripe_count; ++s)
            data_.push_back(randomStripe(data_rng, *code_, 48));
    }

    static cluster::ClusterConfig
    makeConfig(int nodes)
    {
        cluster::ClusterConfig cfg;
        cfg.numNodes = nodes;
        cfg.numClients = 1;
        cfg.uplinkBw = 100.0;
        cfg.downlinkBw = 100.0;
        cfg.diskBw = 1000.0;
        cfg.usageWindow = 5.0;
        return cfg;
    }

    repair::RepairSession::PlanFn
    planFn(repair::Topology topo = repair::Topology::kStar)
    {
        return [this, topo](const cluster::FailedChunk &fc,
                            const std::vector<NodeId> &reserved) {
            auto plan = repair::makeBaselinePlan(stripes_, fc, topo,
                                                 reserved, planRng_);
            finalPlan_[{fc.stripe, fc.chunk}] = plan;
            return plan;
        };
    }

    /** Initial full-node failure (the repair's reason to exist). */
    std::vector<cluster::FailedChunk>
    failInitial(NodeId node)
    {
        auto lost = stripes_.failNode(node);
        cluster_.markNodeDown(node);
        queued_.insert(queued_.end(), lost.begin(), lost.end());
        return lost;
    }

    /** Mid-repair crash through the repair layer, in the same
     * order the injector applies one. */
    void
    crashNow(NodeId node, repair::RepairSession &session)
    {
        auto lost = stripes_.failNode(node);
        cluster_.markNodeDown(node);
        queued_.insert(queued_.end(), lost.begin(), lost.end());
        session.onNodeCrash(node, lost);
    }

    /**
     * The scenario contract: every queued chunk is either repaired —
     * relocated to a live node, byte-exact under its final plan —
     * or reported unrecoverable, in which case its stripe really is
     * short of helpers.
     */
    void
    verifyOutcome(const repair::RepairSession &session)
    {
        ASSERT_TRUE(session.finished());
        EXPECT_EQ(session.totalChunks(),
                  static_cast<int>(queued_.size()));
        EXPECT_EQ(session.chunksRepaired() +
                      session.chunksUnrecoverable(),
                  session.totalChunks());

        std::set<std::pair<StripeId, ChunkIndex>> unrecoverable;
        for (const auto &fc : session.unrecoverable())
            unrecoverable.insert({fc.stripe, fc.chunk});

        for (const auto &fc : queued_) {
            if (unrecoverable.count({fc.stripe, fc.chunk})) {
                EXPECT_LT(static_cast<int>(
                              stripes_.availableChunks(fc.stripe)
                                  .size()),
                          code_->k())
                    << "stripe " << fc.stripe
                    << " reported unrecoverable but has enough "
                       "helpers";
                continue;
            }
            EXPECT_FALSE(stripes_.chunkLost(fc.stripe, fc.chunk));
            NodeId where = stripes_.location(fc.stripe, fc.chunk);
            EXPECT_FALSE(cluster_.nodeDown(where))
                << "chunk repaired onto dead node " << where;

            auto it = finalPlan_.find({fc.stripe, fc.chunk});
            ASSERT_NE(it, finalPlan_.end());
            const auto &plan = it->second;
            EXPECT_EQ(plan.destination, where);
            for (const auto &src : plan.sources)
                EXPECT_FALSE(cluster_.nodeDown(src.node))
                    << "final plan reads from dead node "
                    << src.node;
            EXPECT_EQ(repair::evaluatePlan(
                          plan,
                          data_[static_cast<std::size_t>(fc.stripe)]),
                      data_[static_cast<std::size_t>(fc.stripe)]
                           [static_cast<std::size_t>(fc.chunk)])
                << "stripe " << fc.stripe << " chunk " << fc.chunk
                << " not byte-exact after re-plan";
        }
    }

    sim::Simulator sim_;
    cluster::ClusterConfig cfg_;
    cluster::Cluster cluster_;
    std::shared_ptr<const ec::ErasureCode> code_;
    cluster::StripeManager stripes_;
    repair::RepairExecutor executor_;
    Rng planRng_;
    std::vector<std::vector<ec::Buffer>> data_;
    /** Last plan launched per chunk (= the completing plan). */
    std::map<std::pair<StripeId, ChunkIndex>, repair::ChunkRepairPlan>
        finalPlan_;
    /** Every chunk ever handed to the session. */
    std::vector<cluster::FailedChunk> queued_;
};

// ------------------------------------------------- schedule & chaos

TEST(FaultSchedule, SpecRoundTrips)
{
    auto sched = fault::FaultSchedule::parse(
        "crash@30:node=3:dur=40;linkdeg@10:factor=0.2:dur=15;"
        "slowdisk@5:node=1:factor=0.5:dur=8;blackout@12:dur=6");
    ASSERT_EQ(sched.events.size(), 4u);
    // Parsing sorts by time: slowdisk@5, linkdeg@10, blackout@12,
    // crash@30.
    EXPECT_EQ(sched.events[0].kind, fault::FaultKind::kSlowDisk);
    EXPECT_EQ(sched.events[0].node, 1);
    EXPECT_DOUBLE_EQ(sched.events[0].at, 5.0);
    EXPECT_DOUBLE_EQ(sched.events[0].duration, 8.0);
    EXPECT_EQ(sched.events[1].kind, fault::FaultKind::kLinkDegrade);
    EXPECT_EQ(sched.events[1].node, kInvalidNode);
    EXPECT_EQ(sched.events[3].kind, fault::FaultKind::kNodeCrash);
    EXPECT_EQ(sched.events[3].node, 3);
    EXPECT_DOUBLE_EQ(sched.events[3].at, 30.0);
    EXPECT_DOUBLE_EQ(sched.events[3].duration, 40.0);

    auto reparsed = fault::FaultSchedule::parse(sched.str());
    ASSERT_EQ(reparsed.events.size(), sched.events.size());
    for (std::size_t i = 0; i < sched.events.size(); ++i) {
        EXPECT_EQ(reparsed.events[i].kind, sched.events[i].kind);
        EXPECT_EQ(reparsed.events[i].node, sched.events[i].node);
        EXPECT_DOUBLE_EQ(reparsed.events[i].at, sched.events[i].at);
        EXPECT_DOUBLE_EQ(reparsed.events[i].factor,
                         sched.events[i].factor);
        EXPECT_DOUBLE_EQ(reparsed.events[i].duration,
                         sched.events[i].duration);
    }
}

TEST(FaultSchedule, ChaosGenerationIsDeterministic)
{
    fault::ChaosConfig cfg = fault::ChaosConfig::fromRate(0.5, 60.0);
    auto a = fault::generateChaos(cfg, 20, 42);
    auto b = fault::generateChaos(cfg, 20, 42);
    ASSERT_EQ(a.events.size(), b.events.size());
    EXPECT_FALSE(a.events.empty());
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i].kind, b.events[i].kind);
        EXPECT_DOUBLE_EQ(a.events[i].at, b.events[i].at);
        EXPECT_DOUBLE_EQ(a.events[i].factor, b.events[i].factor);
    }
    // Sorted, inside the horizon.
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_GE(a.events[i].at, 0.0);
        EXPECT_LT(a.events[i].at, 60.0);
        if (i > 0) {
            EXPECT_GE(a.events[i].at, a.events[i - 1].at);
        }
    }
    // A different seed yields a different schedule.
    auto c = fault::generateChaos(cfg, 20, 43);
    bool differs = c.events.size() != a.events.size();
    for (std::size_t i = 0;
         !differs && i < std::min(a.events.size(), c.events.size());
         ++i)
        differs = a.events[i].at != c.events[i].at;
    EXPECT_TRUE(differs);
}

// ------------------------------------------------ crash scenarios

TEST(FaultScenario, CrashOfSourceMidRepair)
{
    ChurnRig rig;
    repair::RepairSession session(rig.stripes_, rig.executor_,
                                  rig.planFn());
    auto initial = rig.failInitial(0);
    session.start(initial);

    // 1 s in, every first-wave star transfer (~2.6 s) is still in
    // flight; kill a node the first plan reads from.
    rig.sim_.scheduleAfter(1.0, [&] {
        ASSERT_FALSE(rig.finalPlan_.empty());
        NodeId victim = rig.finalPlan_.begin()->second.sources[0].node;
        rig.crashNow(victim, session);
    });
    rig.sim_.run();

    EXPECT_GE(session.crashReplans(), 1);
    // The crash's own losses joined the queue.
    EXPECT_GT(session.totalChunks(),
              static_cast<int>(initial.size()));
    rig.verifyOutcome(session);
}

TEST(FaultScenario, CrashOfDestinationInvalidatesItsWrites)
{
    ChurnRig rig;
    repair::RepairSession session(rig.stripes_, rig.executor_,
                                  rig.planFn());
    auto &aborts =
        telemetry::metrics().counter("repair.exec.aborts");
    int64_t aborts_before = aborts.value;

    session.start(rig.failInitial(0));
    cluster::FailedChunk first{kInvalidNode, 0};
    NodeId victim = kInvalidNode;
    rig.sim_.scheduleAfter(1.0, [&] {
        ASSERT_FALSE(rig.finalPlan_.empty());
        first = {rig.finalPlan_.begin()->first.first,
                 rig.finalPlan_.begin()->first.second};
        victim = rig.finalPlan_.begin()->second.destination;
        rig.crashNow(victim, session);
    });
    rig.sim_.run();

    // The partially written destination was abandoned: the chunk's
    // repair re-planned somewhere else and the executor logged the
    // abort (which cancels the staged destination writes).
    ASSERT_NE(victim, kInvalidNode);
    EXPECT_GT(aborts.value, aborts_before);
    EXPECT_GE(session.crashReplans(), 1);
    EXPECT_NE(rig.stripes_.location(first.stripe, first.chunk),
              victim);
    rig.verifyOutcome(session);
}

TEST(FaultScenario, FlappingLinkRepairStillCompletes)
{
    ChurnRig rig;
    repair::RepairSession session(rig.stripes_, rig.executor_,
                                  rig.planFn());
    auto pending = rig.failInitial(0);
    ASSERT_FALSE(pending.empty());
    // Flap the uplink of a surviving helper of the first stripe.
    NodeId flappy = rig.stripes_.location(
        pending[0].stripe,
        rig.stripes_.availableChunks(pending[0].stripe)[0]);
    Rate original =
        rig.cluster_.network().capacity(rig.cluster_.uplink(flappy));

    fault::FaultSchedule sched;
    for (double at : {0.3, 1.1, 1.9, 2.7}) {
        fault::FaultEvent ev;
        ev.at = at;
        ev.kind = fault::FaultKind::kLinkDegrade;
        ev.node = flappy;
        ev.factor = 0.05;
        ev.duration = 0.4;
        sched.events.push_back(ev);
    }
    fault::FaultInjector injector(rig.cluster_, rig.stripes_);
    injector.arm(sched, Rng(1));

    session.start(pending);
    rig.sim_.run();

    EXPECT_EQ(injector.faultsInjected(), 4);
    EXPECT_EQ(session.chunksUnrecoverable(), 0);
    EXPECT_NEAR(
        rig.cluster_.network().capacity(rig.cluster_.uplink(flappy)),
        original, original * 1e-9);
    rig.verifyOutcome(session);
}

TEST(FaultScenario, StripeShortOfHelpersReportsUnrecoverable)
{
    ChurnRig rig;
    repair::RepairSession session(rig.stripes_, rig.executor_,
                                  rig.planFn());

    // Stripe 0 loses three chunks (RS(4,2) tolerates two): the
    // initial failure plus two mid-repair crashes of its helpers.
    StripeId victim_stripe = 0;
    NodeId first = rig.stripes_.location(victim_stripe, 0);
    auto pending = rig.failInitial(first);
    session.start(pending);

    rig.sim_.scheduleAfter(0.5, [&] {
        auto avail = rig.stripes_.availableChunks(victim_stripe);
        ASSERT_GE(avail.size(), 2u);
        rig.crashNow(rig.stripes_.location(victim_stripe, avail[0]),
                     session);
        rig.crashNow(rig.stripes_.location(victim_stripe, avail[1]),
                     session);
    });
    rig.sim_.run();

    ASSERT_TRUE(session.finished());
    EXPECT_GE(session.chunksUnrecoverable(), 1);
    bool stripe0_unrecoverable = false;
    for (const auto &fc : session.unrecoverable())
        stripe0_unrecoverable |= fc.stripe == victim_stripe;
    EXPECT_TRUE(stripe0_unrecoverable);
    EXPECT_LT(
        static_cast<int>(
            rig.stripes_.availableChunks(victim_stripe).size()),
        rig.code_->k());
    rig.verifyOutcome(session);
}

TEST(FaultScenario, CrashedNodeRejoinsEmptyAndAlive)
{
    ChurnRig rig;
    repair::RepairSession session(rig.stripes_, rig.executor_,
                                  rig.planFn());
    auto pending = rig.failInitial(0);

    NodeId victim = rig.stripes_.location(
        pending[0].stripe,
        rig.stripes_.availableChunks(pending[0].stripe)[0]);
    fault::FaultSchedule sched;
    fault::FaultEvent ev;
    ev.at = 1.0;
    ev.kind = fault::FaultKind::kNodeCrash;
    ev.node = victim;
    ev.duration = 3.0; // rejoin at t=4
    sched.events.push_back(ev);

    bool rejoined = false;
    fault::InjectorHooks hooks;
    hooks.onCrash = [&](NodeId node,
                        const std::vector<cluster::FailedChunk>
                            &lost) {
        rig.queued_.insert(rig.queued_.end(), lost.begin(),
                           lost.end());
        session.onNodeCrash(node, lost);
    };
    hooks.onRejoin = [&](NodeId node) {
        rejoined = true;
        EXPECT_EQ(node, victim);
    };
    fault::FaultInjector injector(rig.cluster_, rig.stripes_, hooks);
    injector.arm(sched, Rng(1));

    session.start(pending);
    rig.sim_.run();

    EXPECT_TRUE(rejoined);
    EXPECT_FALSE(rig.cluster_.nodeDown(victim));
    // The node came back wiped: its chunks were repaired elsewhere
    // (or reported unrecoverable), not restored onto it by magic.
    ASSERT_EQ(injector.log().size(), 1u);
    EXPECT_EQ(injector.log()[0].kind, fault::FaultKind::kNodeCrash);
    EXPECT_TRUE(injector.log()[0].applied);
    for (const auto &fc : rig.queued_)
        if (!rig.stripes_.chunkLost(fc.stripe, fc.chunk) &&
            rig.stripes_.location(fc.stripe, fc.chunk) == victim)
            ADD_FAILURE() << "chunk restored onto wiped node";
    rig.verifyOutcome(session);
}

// ------------------------------------------------- reproducibility

namespace {

struct ChurnRunResult
{
    std::vector<fault::InjectedFault> log;
    SimTime finishTime = 0.0;
    int repaired = 0;
    int unrecoverable = 0;
    int replans = 0;
    int total = 0;

    bool operator==(const ChurnRunResult &) const = default;
};

ChurnRunResult
runChaosOnce(uint64_t chaos_seed)
{
    ChurnRig rig(/*seed=*/11);
    repair::RepairSession session(rig.stripes_, rig.executor_,
                                  rig.planFn());
    fault::InjectorHooks hooks;
    hooks.onCrash = [&](NodeId node,
                        const std::vector<cluster::FailedChunk>
                            &lost) {
        rig.queued_.insert(rig.queued_.end(), lost.begin(),
                           lost.end());
        session.onNodeCrash(node, lost);
    };
    fault::FaultInjector injector(rig.cluster_, rig.stripes_, hooks);

    fault::ChaosConfig cfg;
    cfg.crashRate = 0.08;
    cfg.linkRate = 0.2;
    cfg.slowDiskRate = 0.1;
    cfg.horizon = 15.0;
    cfg.meanCrashDowntime = 4.0;
    auto sched =
        fault::generateChaos(cfg, rig.cfg_.numNodes, chaos_seed);

    auto pending = rig.failInitial(0);
    injector.arm(sched, Rng(chaos_seed + 1));
    session.start(pending);
    rig.sim_.run();

    rig.verifyOutcome(session);
    ChurnRunResult out;
    out.log = injector.log();
    out.finishTime = session.finishTime();
    out.repaired = session.chunksRepaired();
    out.unrecoverable = session.chunksUnrecoverable();
    out.replans = session.crashReplans();
    out.total = session.totalChunks();
    return out;
}

} // namespace

TEST(FaultScenario, SameSeedRunsProduceIdenticalTimelines)
{
    auto a = runChaosOnce(1234);
    auto b = runChaosOnce(1234);
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.log.empty());
    EXPECT_EQ(a.repaired + a.unrecoverable, a.total);
}

} // namespace
} // namespace chameleon
