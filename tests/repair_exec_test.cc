/**
 * @file
 * Tests for the repair execution layer: slice pipelining semantics of
 * star/tree/chain plans, the exactly-once contribution invariant,
 * pause/resume (transmission re-ordering), re-tuning mid-repair,
 * bandwidth-monitor estimates, and the baseline repair session.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "cluster/stripe_manager.hh"
#include "ec/factory.hh"
#include "repair/executor.hh"
#include "repair/monitor.hh"
#include "repair/session.hh"
#include "repair/strategies.hh"
#include "util/rng.hh"

namespace chameleon {
namespace repair {
namespace {

/** A small, fast-to-simulate test rig. */
class ExecRig
{
  public:
    ExecRig(int nodes = 12, Rate link = 100.0, Rate disk = 1000.0)
        : cfg_(makeConfig(nodes, link, disk)), cluster_(sim_, cfg_),
          code_(ec::makeRs(4, 2)), stripes_(code_, nodes),
          executor_(cluster_, ExecutorConfig{64.0, 8.0})
    {
        Rng rng(99);
        stripes_.createStripes(6, rng);
    }

    static cluster::ClusterConfig
    makeConfig(int nodes, Rate link, Rate disk)
    {
        cluster::ClusterConfig cfg;
        cfg.numNodes = nodes;
        cfg.numClients = 1;
        cfg.uplinkBw = link;
        cfg.downlinkBw = link;
        cfg.diskBw = disk;
        cfg.usageWindow = 5.0;
        return cfg;
    }

    ChunkRepairPlan
    planFor(StripeId stripe, ChunkIndex failed, Topology topo,
            uint64_t seed)
    {
        Rng rng(seed);
        stripes_.markLost(stripe, failed);
        auto plan = makeBaselinePlan(stripes_, {stripe, failed}, topo,
                                     {}, rng);
        return plan;
    }

    sim::Simulator sim_;
    cluster::ClusterConfig cfg_;
    cluster::Cluster cluster_;
    std::shared_ptr<const ec::ErasureCode> code_;
    cluster::StripeManager stripes_;
    RepairExecutor executor_;
};

TEST(Executor, StarPlanCompletes)
{
    ExecRig rig;
    auto plan = rig.planFor(0, 0, Topology::kStar, 1);
    bool done = false;
    SimTime when = -1;
    rig.executor_.launch(plan, [&](const ChunkRepairPlan &, SimTime t) {
        done = true;
        when = t;
    });
    rig.sim_.run();
    EXPECT_TRUE(done);
    EXPECT_GT(when, 0.0);
    EXPECT_EQ(rig.executor_.completedChunks(), 1);
    EXPECT_DOUBLE_EQ(rig.executor_.repairedBytes(), 64.0);
}

TEST(Executor, AllTopologiesComplete)
{
    for (auto topo :
         {Topology::kStar, Topology::kTree, Topology::kChain}) {
        ExecRig rig;
        auto plan = rig.planFor(1, 2, topo, 7);
        bool done = false;
        rig.executor_.launch(plan,
                             [&](const ChunkRepairPlan &, SimTime) {
                                 done = true;
                             });
        rig.sim_.run();
        EXPECT_TRUE(done) << topologyName(topo);
    }
}

TEST(Executor, StarTimingOnIdleCluster)
{
    // k=4 sources, chunk 64, slice 8, link 100 B/s, disk plentiful.
    // All four edges share the destination downlink: aggregate
    // 4*64 = 256 bytes through a 100 B/s downlink -> ~2.56 s.
    ExecRig rig;
    auto plan = rig.planFor(0, 1, Topology::kStar, 3);
    SimTime when = -1;
    rig.executor_.launch(plan, [&](const ChunkRepairPlan &, SimTime t) {
        when = t;
    });
    rig.sim_.run();
    EXPECT_NEAR(when, 2.56, 0.1);
}

TEST(Executor, ChainPipelineIsFasterThanSequential)
{
    // A chain ships k chunks total but pipelines slices; completion
    // should be near one chunk time plus pipeline fill, much less
    // than k sequential chunk times.
    ExecRig rig;
    auto plan = rig.planFor(2, 0, Topology::kChain, 5);
    SimTime when = -1;
    rig.executor_.launch(plan, [&](const ChunkRepairPlan &, SimTime t) {
        when = t;
    });
    rig.sim_.run();
    // One chunk over a 100 B/s hop = 0.64 s; pipeline fill adds
    // ~3 slice times (0.08 s each). Sequential would be ~2.56 s.
    EXPECT_LT(when, 1.6);
    EXPECT_GT(when, 0.64);
}

TEST(Executor, EdgeStatusProgresses)
{
    ExecRig rig;
    auto plan = rig.planFor(0, 0, Topology::kStar, 11);
    RepairId id = rig.executor_.launch(plan, nullptr);
    rig.sim_.run(1.0);
    ASSERT_TRUE(rig.executor_.chunkActive(id));
    auto statuses = rig.executor_.edgeStatus(id);
    EXPECT_EQ(statuses.size(), 4u);
    int delivered = 0;
    for (const auto &st : statuses) {
        EXPECT_EQ(st.slicesTotal, 8);
        delivered += st.slicesDelivered;
    }
    EXPECT_GT(delivered, 0);
    double progress = rig.executor_.destinationProgress(id);
    EXPECT_GT(progress, 0.0);
    EXPECT_LT(progress, 1.0);
    rig.sim_.run();
    EXPECT_FALSE(rig.executor_.chunkActive(id));
}

TEST(Executor, PauseStopsProgressResumeFinishes)
{
    ExecRig rig;
    auto plan = rig.planFor(0, 0, Topology::kStar, 13);
    bool done = false;
    RepairId id = rig.executor_.launch(
        plan,
        [&](const ChunkRepairPlan &, SimTime) { done = true; });
    rig.sim_.schedule(0.5, [&] { rig.executor_.pauseChunk(id); });
    rig.sim_.run(5.0);
    EXPECT_FALSE(done);
    ASSERT_TRUE(rig.executor_.chunkActive(id));
    // In-flight slices drained; nothing else moves while paused.
    auto statuses = rig.executor_.edgeStatus(id);
    for (const auto &st : statuses)
        EXPECT_LT(st.slicesDelivered, st.slicesTotal);
    rig.executor_.resumeChunk(id);
    rig.sim_.run();
    EXPECT_TRUE(done);
}

TEST(Executor, PausedChunkNotCountedAsActiveEdges)
{
    ExecRig rig;
    auto plan = rig.planFor(0, 0, Topology::kStar, 17);
    RepairId id = rig.executor_.launch(plan, nullptr);
    rig.sim_.run(0.5);
    NodeId src0 = plan.sources[0].node;
    EXPECT_GT(rig.executor_.activeEdgesTouching(src0), 0);
    rig.executor_.pauseChunk(id);
    EXPECT_EQ(rig.executor_.activeEdgesTouching(src0), 0);
}

TEST(Executor, RetunePreservesExactlyOnceInvariant)
{
    // Retune a relay's feeder mid-transfer: the chunk must still
    // complete, and the executor's internal mask assertion verifies
    // every slice got each contribution exactly once.
    ExecRig rig;
    auto plan = rig.planFor(1, 1, Topology::kChain, 19);
    bool done = false;
    RepairId id = rig.executor_.launch(
        plan,
        [&](const ChunkRepairPlan &, SimTime) { done = true; });
    // Find an edge targeting a relay (chain: source 0 -> source 1).
    rig.sim_.schedule(0.3, [&] {
        if (rig.executor_.chunkActive(id))
            rig.executor_.retuneEdge(id, 0);
    });
    rig.sim_.run();
    EXPECT_TRUE(done);
}

TEST(Executor, RetuneEveryRelayEdgeStillCorrect)
{
    // Aggressively retune all relay-targeted edges of a PPR tree at
    // staggered times; the invariant must hold throughout.
    ExecRig rig;
    auto plan = rig.planFor(2, 3, Topology::kTree, 23);
    bool done = false;
    RepairId id = rig.executor_.launch(
        plan,
        [&](const ChunkRepairPlan &, SimTime) { done = true; });
    for (int i = 0; i < static_cast<int>(plan.sources.size()); ++i) {
        double when = 0.2 + 0.15 * i;
        rig.sim_.schedule(when, [&, i] {
            if (rig.executor_.chunkActive(id))
                rig.executor_.retuneEdge(id, i);
        });
    }
    rig.sim_.run();
    EXPECT_TRUE(done);
}

TEST(Executor, RetuneBypassesStalledRelayDownlink)
{
    // The paper's Figure 10(b) scenario: a relay's downlink is
    // constrained, stalling the download it is supposed to receive.
    // Re-tuning redirects that download to the destination, after
    // which the whole repair completes even though the relay's
    // downlink stays stalled (the relay only needs its uplink).
    ExecRig rig;
    auto plan = rig.planFor(3, 0, Topology::kChain, 29);
    NodeId relay = plan.sources[1].node;
    bool done = false;
    RepairId id = rig.executor_.launch(
        plan,
        [&](const ChunkRepairPlan &, SimTime) { done = true; });
    rig.sim_.schedule(0.1, [&] {
        rig.cluster_.network().setCapacity(
            rig.cluster_.downlink(relay), 1e-3);
    });
    rig.sim_.run(20.0);
    EXPECT_FALSE(done) << "stall did not bite";
    // Redirect the head's upload (chain edge 0 targets the relay).
    rig.executor_.retuneEdge(id, 0);
    rig.sim_.run(200.0);
    EXPECT_TRUE(done)
        << "repair should finish with the relay downlink still dead";
}

TEST(Executor, ExpectationStored)
{
    ExecRig rig;
    auto plan = rig.planFor(0, 0, Topology::kStar, 31);
    RepairId id = rig.executor_.launch(plan, nullptr);
    rig.executor_.setEdgeExpectation(id, 2, 42.0);
    auto statuses = rig.executor_.edgeStatus(id);
    EXPECT_DOUBLE_EQ(statuses[2].expectation, 42.0);
    EXPECT_EQ(statuses[0].expectation, kTimeNever);
    rig.sim_.run();
}

TEST(Monitor, EstimatesTrackForegroundUsage)
{
    ExecRig rig;
    BandwidthMonitor monitor(rig.cluster_, 1.0);
    monitor.start();
    // Saturate node 2's uplink with a foreground flow.
    rig.cluster_.network().startFlow(
        {rig.cluster_.uplink(2), rig.cluster_.clientDownlink(0)},
        1e6, sim::FlowTag::kForeground, nullptr);
    rig.sim_.run(3.5);
    EXPECT_GT(monitor.sampleCount(), 0);
    // Node 2 uplink looks nearly fully occupied (floored at 2%).
    EXPECT_LT(monitor.residualUplink(2), 10.0);
    // An idle node still looks idle.
    EXPECT_NEAR(monitor.residualUplink(5), 100.0, 1.0);
    monitor.stop();
}

TEST(Monitor, StorageDimensionKeysOnDisk)
{
    ExecRig rig;
    BandwidthMonitor net_mon(rig.cluster_, 1.0,
                             BandwidthMonitor::Dimension::kNetwork);
    BandwidthMonitor disk_mon(rig.cluster_, 1.0,
                              BandwidthMonitor::Dimension::kStorage);
    EXPECT_NEAR(net_mon.dispatchUp(0), 100.0, 1e-9);
    EXPECT_NEAR(disk_mon.dispatchUp(0), 1000.0, 1e-9);
}

TEST(Session, RepairsAllChunksAndUpdatesMetadata)
{
    ExecRig rig;
    auto lost = rig.stripes_.failNode(0);
    ASSERT_FALSE(lost.empty());
    Rng rng(55);
    RepairSession session(
        rig.stripes_, rig.executor_,
        [&](const cluster::FailedChunk &fc,
            const std::vector<NodeId> &reserved) {
            return makeBaselinePlan(rig.stripes_, fc, Topology::kStar,
                                    reserved, rng);
        },
        SessionConfig{2});
    session.start(lost);
    rig.sim_.run();
    EXPECT_TRUE(session.finished());
    EXPECT_EQ(session.chunksRepaired(),
              static_cast<int>(lost.size()));
    EXPECT_GT(session.throughput(), 0.0);
    for (const auto &fc : lost) {
        EXPECT_FALSE(rig.stripes_.chunkLost(fc.stripe, fc.chunk));
        EXPECT_NE(rig.stripes_.location(fc.stripe, fc.chunk), 0);
    }
    EXPECT_TRUE(rig.stripes_.lostChunks().empty());
}

TEST(Session, WindowLimitsConcurrency)
{
    ExecRig rig;
    auto lost = rig.stripes_.failNode(1);
    ASSERT_GE(lost.size(), 2u);
    Rng rng(56);
    RepairSession session(
        rig.stripes_, rig.executor_,
        [&](const cluster::FailedChunk &fc,
            const std::vector<NodeId> &reserved) {
            return makeBaselinePlan(rig.stripes_, fc, Topology::kStar,
                                    reserved, rng);
        },
        SessionConfig{1});
    session.start(lost);
    // With a window of 1, at most one chunk repair's edges exist.
    rig.sim_.schedule(0.1, [&] {
        int total = 0;
        for (NodeId n = 0; n < rig.cluster_.numNodes(); ++n)
            total += rig.executor_.activeEdgesTouching(n);
        // Each star edge touches 2 nodes -> 4 edges = 8 touches max.
        EXPECT_LE(total, 8);
    });
    rig.sim_.run();
    EXPECT_TRUE(session.finished());
}

TEST(RepairBoost, BalancesAssignedTraffic)
{
    ExecRig rig;
    auto lost = rig.stripes_.failNode(2);
    ASSERT_GE(lost.size(), 2u);
    RepairBoostSelector rb(rig.cluster_.numNodes());
    Rng rng(57);
    for (const auto &fc : lost)
        rb.makePlan(rig.stripes_, fc, Topology::kStar, {}, rng);
    // Assigned upload traffic should be spread: max/min over nodes
    // that got any load is bounded.
    Bytes lo = 1e18, hi = 0;
    for (NodeId n = 0; n < rig.cluster_.numNodes(); ++n) {
        Bytes b = rb.assignedUpload(n);
        if (b > 0) {
            lo = std::min(lo, b);
            hi = std::max(hi, b);
        }
    }
    EXPECT_LE(hi, lo * 4.0) << "RB selection left load unbalanced";
}

} // namespace
} // namespace repair
} // namespace chameleon

namespace chameleon {
namespace repair {
namespace {

/** Hand-built star plan over explicit nodes (executor only needs the
 * plan; no stripe metadata involved). */
ChunkRepairPlan
manualStar(NodeId dest, std::initializer_list<NodeId> sources)
{
    ChunkRepairPlan plan;
    plan.stripe = 0;
    plan.failedChunk = 0;
    plan.destination = dest;
    ChunkIndex chunk_idx = 1;
    for (NodeId n : sources) {
        PlanSource src;
        src.node = n;
        src.chunk = chunk_idx++;
        plan.sources.push_back(src);
    }
    return plan;
}

TEST(TaskQueue, SingleSlotSerializesTasksToCompletion)
{
    // Two chunks share the same two source nodes; with one upload
    // slot per node, the first chunk's tasks run to completion
    // before the second's start (FIFO task queues), so completions
    // stagger at roughly 1:2.
    sim::Simulator sim;
    cluster::ClusterConfig cfg;
    cfg.numNodes = 6;
    cfg.numClients = 0;
    cfg.uplinkBw = cfg.downlinkBw = 100.0;
    cfg.diskBw = 1000.0;
    cluster::Cluster cluster(sim, cfg);
    ExecutorConfig ecfg;
    ecfg.chunkSize = 64.0;
    ecfg.sliceSize = 8.0;
    ecfg.nodeUploadSlots = 1;
    RepairExecutor exec(cluster, ecfg);

    SimTime done1 = -1, done2 = -1;
    exec.launch(manualStar(4, {1, 2}),
                [&](const ChunkRepairPlan &, SimTime t) { done1 = t; });
    exec.launch(manualStar(5, {1, 2}),
                [&](const ChunkRepairPlan &, SimTime t) { done2 = t; });
    sim.run();
    ASSERT_GT(done1, 0.0);
    ASSERT_GT(done2, 0.0);
    // Progressive, not batch, completion.
    EXPECT_GT(done2, done1 * 1.5);
}

TEST(TaskQueue, PauseReleasesHeldSlots)
{
    // Chunk A holds both sources' upload slots; pausing it must let
    // chunk B (same sources) run immediately.
    sim::Simulator sim;
    cluster::ClusterConfig cfg;
    cfg.numNodes = 6;
    cfg.numClients = 0;
    cfg.uplinkBw = cfg.downlinkBw = 100.0;
    cfg.diskBw = 1000.0;
    cluster::Cluster cluster(sim, cfg);
    ExecutorConfig ecfg;
    ecfg.chunkSize = 64.0;
    ecfg.sliceSize = 8.0;
    ecfg.nodeUploadSlots = 1;
    RepairExecutor exec(cluster, ecfg);

    RepairId a = exec.launch(manualStar(4, {1, 2}), nullptr);
    SimTime done_b = -1;
    exec.launch(manualStar(5, {1, 2}),
                [&](const ChunkRepairPlan &, SimTime t) {
                    done_b = t;
                });
    sim.schedule(0.1, [&] { exec.pauseChunk(a); });
    sim.run(10.0);
    // B finished as if alone (~1.3 s for 2 x 64 bytes at 100 B/s,
    // restarted at 0.1 s); far sooner than the ~2.6 s serialized
    // schedule.
    EXPECT_GT(done_b, 0.0);
    EXPECT_LT(done_b, 2.0);
    ASSERT_TRUE(exec.chunkActive(a));
    exec.resumeChunk(a);
    sim.run();
    EXPECT_FALSE(exec.chunkActive(a));
}

TEST(TaskQueue, DepBlockedRelayYieldsSlot)
{
    // A chain relay blocked on its feeder must not hold its upload
    // slot hostage: another chunk's edge from the same node runs.
    sim::Simulator sim;
    cluster::ClusterConfig cfg;
    cfg.numNodes = 8;
    cfg.numClients = 0;
    cfg.uplinkBw = cfg.downlinkBw = 100.0;
    cfg.diskBw = 1000.0;
    cluster::Cluster cluster(sim, cfg);
    ExecutorConfig ecfg;
    ecfg.chunkSize = 64.0;
    ecfg.sliceSize = 8.0;
    ecfg.nodeUploadSlots = 1;
    ecfg.relayOverheadPerMiB = 0.0;
    RepairExecutor exec(cluster, ecfg);

    // Chain: node1 -> node2 -> dest 6; throttle node1's uplink so
    // node2 is dependency-starved.
    ChunkRepairPlan chain = manualStar(6, {1, 2});
    chain.sources[0].parent = 1; // node1 feeds node2
    chain.validate();
    cluster.network().setCapacity(cluster.uplink(1), 1.0);
    exec.launch(chain, nullptr);
    // A star chunk uploading from node2 must proceed meanwhile.
    SimTime done_star = -1;
    exec.launch(manualStar(7, {2, 3}),
                [&](const ChunkRepairPlan &, SimTime t) {
                    done_star = t;
                });
    sim.run(20.0);
    EXPECT_GT(done_star, 0.0);
    EXPECT_LT(done_star, 5.0);
}

} // namespace
} // namespace repair
} // namespace chameleon
