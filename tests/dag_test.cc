/**
 * @file
 * Tests for the EcDag repair-plan subsystem: structural properties of
 * the topology builders, byte-exact equivalence of evaluateDag with
 * evaluatePlan on lowered trees (the correctness anchor of the DAG
 * execution path), the slice-pipelining property of chain execution
 * (repair time approaches one slice per hop as S grows), and
 * mid-repair churn over DAG-executed sessions (aborts re-plan without
 * leaking flows).
 */

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "cluster/stripe_manager.hh"
#include "dag/dag.hh"
#include "ec/factory.hh"
#include "repair/chameleon_planner.hh"
#include "repair/dag_bridge.hh"
#include "repair/executor.hh"
#include "repair/plan.hh"
#include "repair/session.hh"
#include "repair/strategies.hh"
#include "util/rng.hh"

namespace chameleon {
namespace {

ec::Buffer
randomChunk(Rng &rng, std::size_t size)
{
    ec::Buffer b(size);
    for (auto &v : b)
        v = static_cast<uint8_t>(rng.below(256));
    return b;
}

std::vector<ec::Buffer>
randomStripe(Rng &rng, const ec::ErasureCode &code, std::size_t size)
{
    std::vector<ec::Buffer> data;
    for (int i = 0; i < code.k(); ++i)
        data.push_back(randomChunk(rng, size));
    auto parity = code.encode(data);
    std::vector<ec::Buffer> chunks = data;
    for (auto &p : parity)
        chunks.push_back(std::move(p));
    return chunks;
}

std::vector<repair::PlanSource>
sourcesFor(const cluster::StripeManager &stripes,
           const ec::RepairSpec &spec, StripeId stripe)
{
    std::vector<repair::PlanSource> out;
    for (const auto &read : spec.reads) {
        repair::PlanSource src;
        src.node = stripes.location(stripe, read.helper);
        src.chunk = read.helper;
        src.coeff = read.coeff;
        src.fraction = read.fraction;
        out.push_back(src);
    }
    return out;
}

// ------------------------------------------------------- structure

TEST(DagStructure, TopologyShapes)
{
    std::vector<dag::DagSource> sources;
    for (int i = 0; i < 6; ++i)
        sources.push_back({static_cast<NodeId>(i + 1),
                           static_cast<ChunkIndex>(i + 1)});
    NodeId dest = 9;

    auto star = dag::buildStarDag(0, 0, dest, sources);
    EXPECT_EQ(star.depth(), 1);
    EXPECT_EQ(star.destination(), dest);
    // Star: leaves + root only.
    EXPECT_EQ(star.vertexCount(), 7);

    auto chain = dag::buildChainDag(0, 0, dest, sources);
    // Chain: every source combines, so depth = k hops.
    EXPECT_EQ(chain.depth(), 6);

    auto ppr = dag::buildPprDag(0, 0, dest, sources);
    // PPR over k=6: 3 pairing rounds + final hop.
    EXPECT_EQ(ppr.depth(), 4);

    auto mlf = dag::buildMlfDag(0, 0, dest, sources, 3);
    // Complete 3-ary tree over 6 sources: depth 3
    // (leaf -> combine, combine -> combine, combine -> root).
    EXPECT_EQ(mlf.depth(), 3);
    // Bounded fan-in: no vertex aggregates more than fan_in
    // children plus its own leaf.
    for (dag::VertexId v = 0; v < mlf.vertexCount(); ++v)
        EXPECT_LE(mlf.vertex(v).in.size(), 4u);
}

TEST(DagStructure, ValidateRejectsCycle)
{
    dag::EcDag d;
    auto a = d.addVertex(1);
    auto b = d.addVertex(2);
    d.Join(a, {b}, {gf::kOne});
    d.Join(b, {a}, {gf::kOne});
    d.setRoot(a);
    EXPECT_DEATH(d.validate(), "cycle");
}

TEST(DagStructure, BindXCoLocates)
{
    dag::EcDag d;
    auto leaf = d.addLeaf({3, 1});
    auto combine = d.addVertex();
    auto root = d.addVertex(7);
    d.Join(combine, {leaf}, {gf::kOne});
    d.Join(root, {combine}, {gf::kOne});
    d.BindX({leaf, combine});
    d.setRoot(root);
    d.validate();
    EXPECT_EQ(d.vertex(combine).node, 3);
}

TEST(DagStructure, TopologyKeyRoundTrips)
{
    for (const char *key : {"auto", "star", "chain", "ppr", "mlf:3"}) {
        auto spec = dag::topologyFromKey(key);
        ASSERT_TRUE(spec.has_value()) << key;
        EXPECT_EQ(dag::topologyKey(*spec), key);
    }
    std::string err;
    EXPECT_FALSE(dag::topologyFromKey("mlf:1", &err));
    EXPECT_FALSE(dag::topologyFromKey("mlf:x", &err));
    EXPECT_FALSE(dag::topologyFromKey("ring", &err));
    EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------- equivalence

/**
 * The correctness anchor: for every tree the planners emit, lowering
 * through fromTree and evaluating through evaluateDag must be
 * byte-identical to evaluatePlan — and both must reconstruct the
 * failed chunk.
 */
TEST(DagEquivalence, LoweredTreesMatchEvaluatePlanRs)
{
    auto code = ec::makeRs(6, 3);
    cluster::StripeManager stripes(code, 12);
    Rng rng(7);
    stripes.createStripes(1, rng);
    auto chunks = randomStripe(rng, *code, 128);

    for (ChunkIndex failed = 0; failed < code->n(); ++failed) {
        std::vector<ChunkIndex> avail;
        for (ChunkIndex c = 0; c < code->n(); ++c)
            if (c != failed)
                avail.push_back(c);
        auto spec = code->makeRepairSpec(failed, avail, rng);
        auto dest = stripes.candidateDestinations(0).front();
        auto sources = sourcesFor(stripes, spec, 0);

        auto star = buildStarPlan(0, failed, dest, sources, true);
        auto tree = buildPprPlan(0, failed, dest, sources);
        auto chain = buildChainPlan(0, failed, dest, sources);
        const auto want =
            chunks[static_cast<std::size_t>(failed)];
        for (const auto *plan : {&star, &tree, &chain}) {
            auto lowered = repair::fromTree(*plan);
            lowered.validate();
            EXPECT_EQ(dag::evaluateDag(lowered, chunks),
                      repair::evaluatePlan(*plan, chunks));
            EXPECT_EQ(dag::evaluateDag(lowered, chunks), want);
        }

        // The native DAG builders agree with the lowered trees.
        auto dag_sources = repair::toDagSources(sources);
        for (const auto &topo : {dag::TopologySpec{
                                     dag::RepairTopology::kStar},
                                 {dag::RepairTopology::kChain},
                                 {dag::RepairTopology::kPpr},
                                 {dag::RepairTopology::kMlf, 2},
                                 {dag::RepairTopology::kMlf, 3}}) {
            auto d = dag::buildTopologyDag(topo, 0, failed, dest,
                                           dag_sources, true);
            d.validate();
            EXPECT_EQ(dag::evaluateDag(d, chunks), want)
                << dag::topologyKey(topo);
        }
    }
}

TEST(DagEquivalence, LoweredTreeMatchesEvaluatePlanLrc)
{
    auto code = ec::makeLrc(8, 2, 2);
    cluster::StripeManager stripes(code, 14);
    Rng rng(9);
    stripes.createStripes(1, rng);
    auto chunks = randomStripe(rng, *code, 64);

    auto avail = stripes.availableChunks(0);
    avail.erase(std::remove(avail.begin(), avail.end(), 3),
                avail.end());
    auto spec = code->makeRepairSpec(3, avail, rng);
    auto dest = stripes.candidateDestinations(0).front();
    auto plan =
        buildPprPlan(0, 3, dest, sourcesFor(stripes, spec, 0));
    auto lowered = repair::fromTree(plan);
    EXPECT_EQ(dag::evaluateDag(lowered, chunks),
              repair::evaluatePlan(plan, chunks));
    EXPECT_EQ(dag::evaluateDag(lowered, chunks), chunks[3]);
}

TEST(DagEquivalence, ChameleonDispatcherTreeLowersExactly)
{
    // A Chameleon Algorithm-1 tree (relays induced by a scarce
    // destination downlink), with coefficients filled the way the
    // scheduler fills them (specFor over the chosen helper set).
    auto code = ec::makeRs(6, 3);
    Rng rng(31);
    auto chunks = randomStripe(rng, *code, 96);

    auto state = repair::PlannerState::make(20, 96.0);
    std::fill(state.bandUp.begin(), state.bandUp.end(), 100.0);
    std::fill(state.bandDown.begin(), state.bandDown.end(), 100.0);
    for (std::size_t i = 14; i < 20; ++i)
        state.bandDown[i] = 10.0;

    repair::PlannerChunkInput input;
    input.stripe = 0;
    input.failed = 0;
    input.required = code->k();
    input.combinable = true;
    for (int i = 1; i < code->n(); ++i) {
        input.helperChunks.push_back(i);
        input.helperNodes.push_back(i);
        input.fractions.push_back(1.0);
    }
    for (int i = code->n(); i < 20; ++i)
        input.destCandidates.push_back(i);

    auto planned = repair::planChunk(state, input);
    ASSERT_TRUE(planned.has_value());
    auto plan = planned->plan;
    int relays = 0;
    for (int i = 0; i < static_cast<int>(plan.sources.size()); ++i)
        relays += !plan.childrenOf(i).empty();
    EXPECT_GT(relays, 0) << "dispatcher built no relays; the test "
                            "lost its interesting shape";

    std::vector<ChunkIndex> helpers;
    for (const auto &src : plan.sources)
        helpers.push_back(src.chunk);
    auto spec = code->specFor(0, helpers);
    ASSERT_TRUE(spec.has_value());
    for (auto &src : plan.sources) {
        src.coeff = gf::kZero;
        for (const auto &read : spec->reads)
            if (read.helper == src.chunk)
                src.coeff = read.coeff;
    }

    auto lowered = repair::fromTree(plan);
    lowered.validate();
    EXPECT_EQ(dag::evaluateDag(lowered, chunks),
              repair::evaluatePlan(plan, chunks));
    EXPECT_EQ(dag::evaluateDag(lowered, chunks), chunks[0]);
}

TEST(DagEquivalence, ButterflyLowersToDirectStar)
{
    // Sub-chunk codes are non-combinable: the lowered DAG must have
    // no internal combine vertices — every leaf feeds the root
    // directly, fractions preserved.
    auto code = ec::makeButterfly();
    cluster::StripeManager stripes(code, 8);
    Rng rng(13);
    stripes.createStripes(1, rng);

    auto avail = stripes.availableChunks(0);
    avail.erase(std::remove(avail.begin(), avail.end(), 1),
                avail.end());
    auto spec = code->makeRepairSpec(1, avail, rng);
    ASSERT_FALSE(spec.combinable);
    auto dest = stripes.candidateDestinations(0).front();
    auto plan = buildStarPlan(0, 1, dest, sourcesFor(stripes, spec, 0),
                              spec.combinable);

    auto lowered = repair::fromTree(plan);
    lowered.validate();
    EXPECT_FALSE(lowered.combinable);
    EXPECT_EQ(lowered.depth(), 1);
    // Leaves + root, nothing else; every in-edge of the root is a
    // leaf carrying its read fraction.
    EXPECT_EQ(lowered.vertexCount(),
              static_cast<int>(plan.sources.size()) + 1);
    const auto &root = lowered.vertex(lowered.root());
    ASSERT_EQ(root.in.size(), plan.sources.size());
    for (std::size_t i = 0; i < root.in.size(); ++i) {
        const auto &leaf = lowered.vertex(root.in[i]);
        ASSERT_TRUE(leaf.isLeaf());
        EXPECT_DOUBLE_EQ(
            lowered.sources()[static_cast<std::size_t>(leaf.source)]
                .fraction,
            plan.sources[i].fraction);
    }
}

// ----------------------------------------------------- pipelining

/** Hand-built chain plan over explicit nodes (no stripe metadata). */
repair::ChunkRepairPlan
manualChain(NodeId dest, std::initializer_list<NodeId> nodes)
{
    std::vector<repair::PlanSource> sources;
    ChunkIndex chunk_idx = 1;
    for (NodeId n : nodes) {
        repair::PlanSource src;
        src.node = n;
        src.chunk = chunk_idx++;
        sources.push_back(src);
    }
    return repair::buildChainPlan(0, 0, dest, sources);
}

/** Completion time of one chain chunk repair at S slices. */
SimTime
chainRepairTime(int slices)
{
    sim::Simulator sim;
    cluster::ClusterConfig cfg;
    cfg.numNodes = 8;
    cfg.numClients = 0;
    cfg.uplinkBw = cfg.downlinkBw = 100.0;
    cfg.diskBw = 1000.0;
    cluster::Cluster cluster(sim, cfg);
    repair::ExecutorConfig ecfg;
    ecfg.chunkSize = 64.0;
    ecfg.sliceSize = 64.0;
    ecfg.slices = slices;
    ecfg.relayOverheadPerMiB = 0.0;
    repair::RepairExecutor exec(cluster, ecfg);

    auto plan = manualChain(6, {1, 2, 3, 4});
    auto d = repair::fromTree(plan);
    SimTime when = -1;
    exec.launchDag(d, plan,
                   [&](const repair::ChunkRepairPlan &, SimTime t) {
                       when = t;
                   });
    sim.run();
    EXPECT_GT(when, 0.0);
    return when;
}

TEST(DagPipelining, ChainApproachesOneSlicePerHop)
{
    // k = 4 network hops, chunk 64 bytes over 100 B/s links: one
    // chunk transfer C/B = 0.64 s, so the analytic pipelined-chain
    // bound is T_lb(S) = (k + S - 1)/S * C/B. S = 1 must behave like
    // whole-chunk store-and-forward (~k * C/B); as S grows the
    // makespan must fall monotonically toward one slice per hop,
    // landing within 15% of the bound.
    const double cb = 64.0 / 100.0;
    const int hops = 4;
    auto bound = [&](int s) {
        return (hops + s - 1) / static_cast<double>(s) * cb;
    };

    std::vector<int> sweep = {1, 2, 4, 8, 16, 32, 64};
    std::vector<SimTime> times;
    for (int s : sweep)
        times.push_back(chainRepairTime(s));

    // Store-and-forward at S = 1.
    EXPECT_GE(times[0], hops * cb);
    // Monotone improvement with finer slicing.
    for (std::size_t i = 1; i < times.size(); ++i)
        EXPECT_LE(times[i], times[i - 1] + 1e-9)
            << "S=" << sweep[i] << " slower than S=" << sweep[i - 1];
    // Each sliced point sits within 15% of the analytic bound.
    for (std::size_t i = 0; i < times.size(); ++i) {
        EXPECT_GE(times[i], bound(sweep[i]) * (1 - 1e-9));
        EXPECT_LE(times[i], bound(sweep[i]) * 1.15)
            << "S=" << sweep[i];
    }
    // And the finest slicing approaches one chunk transfer time.
    EXPECT_LT(times.back(), 1.3 * cb);
}

TEST(DagPipelining, StarAndMlfComplete)
{
    // The non-chain DAG shapes execute to completion through the
    // same slice machinery.
    sim::Simulator sim;
    cluster::ClusterConfig cfg;
    cfg.numNodes = 10;
    cfg.numClients = 0;
    cfg.uplinkBw = cfg.downlinkBw = 100.0;
    cfg.diskBw = 1000.0;
    cluster::Cluster cluster(sim, cfg);
    repair::ExecutorConfig ecfg;
    ecfg.chunkSize = 64.0;
    ecfg.sliceSize = 8.0;
    ecfg.relayOverheadPerMiB = 0.0;
    repair::RepairExecutor exec(cluster, ecfg);

    std::vector<dag::DagSource> sources;
    for (int i = 1; i <= 4; ++i)
        sources.push_back({static_cast<NodeId>(i),
                           static_cast<ChunkIndex>(i)});
    auto plan = manualChain(8, {1, 2, 3, 4});
    for (auto kind :
         {dag::RepairTopology::kStar, dag::RepairTopology::kMlf}) {
        auto d = dag::buildTopologyDag({kind, 2}, 0, 0, 8, sources,
                                       true);
        bool done = false;
        exec.launchDag(d, plan,
                       [&](const repair::ChunkRepairPlan &, SimTime) {
                           done = true;
                       });
        sim.run();
        EXPECT_TRUE(done) << dag::topologyKey({kind, 2});
    }
    EXPECT_EQ(cluster.network().activeFlowCount(), 0u);
}

// ---------------------------------------------------------- churn

/** Minimal churn rig for DAG-executed sessions (fault_test.cc has
 * the full-scenario version for the tree path). */
class DagChurnRig
{
  public:
    explicit DagChurnRig(uint64_t seed = 11, int nodes = 12,
                         int stripe_count = 8)
        : cfg_(makeConfig(nodes)), cluster_(sim_, cfg_),
          code_(ec::makeRs(4, 2)), stripes_(code_, nodes),
          executor_(cluster_, makeExecConfig()), planRng_(seed)
    {
        Rng rng(99);
        stripes_.createStripes(stripe_count, rng);
        Rng data_rng(5);
        for (int s = 0; s < stripe_count; ++s)
            data_.push_back(randomStripe(data_rng, *code_, 48));
    }

    static cluster::ClusterConfig
    makeConfig(int nodes)
    {
        cluster::ClusterConfig cfg;
        cfg.numNodes = nodes;
        cfg.numClients = 1;
        cfg.uplinkBw = 100.0;
        cfg.downlinkBw = 100.0;
        cfg.diskBw = 1000.0;
        cfg.usageWindow = 5.0;
        return cfg;
    }

    static repair::ExecutorConfig
    makeExecConfig()
    {
        repair::ExecutorConfig cfg;
        cfg.chunkSize = 64.0;
        cfg.sliceSize = 8.0;
        cfg.relayOverheadPerMiB = 0.0;
        return cfg;
    }

    repair::RepairSession::PlanFn
    planFn()
    {
        return [this](const cluster::FailedChunk &fc,
                      const std::vector<NodeId> &reserved) {
            auto plan = repair::makeBaselinePlan(
                stripes_, fc, repair::Topology::kChain, reserved,
                planRng_);
            finalPlan_[{fc.stripe, fc.chunk}] = plan;
            return plan;
        };
    }

    void
    crashNow(NodeId node, repair::RepairSession &session)
    {
        auto lost = stripes_.failNode(node);
        cluster_.markNodeDown(node);
        queued_.insert(queued_.end(), lost.begin(), lost.end());
        session.onNodeCrash(node, lost);
    }

    sim::Simulator sim_;
    cluster::ClusterConfig cfg_;
    cluster::Cluster cluster_;
    std::shared_ptr<const ec::ErasureCode> code_;
    cluster::StripeManager stripes_;
    repair::RepairExecutor executor_;
    Rng planRng_;
    std::vector<std::vector<ec::Buffer>> data_;
    std::map<std::pair<StripeId, ChunkIndex>, repair::ChunkRepairPlan>
        finalPlan_;
    std::vector<cluster::FailedChunk> queued_;
};

TEST(DagChurn, CrashMidSlicedRepairRePlansWithoutLeakingFlows)
{
    DagChurnRig rig;
    repair::RepairSession session(rig.stripes_, rig.executor_,
                                  rig.planFn());
    session.setDagTopology(
        *dag::topologyFromKey("chain"));
    auto initial = rig.stripes_.failNode(0);
    rig.cluster_.markNodeDown(0);
    rig.queued_.insert(rig.queued_.end(), initial.begin(),
                       initial.end());
    session.start(initial);

    // Kill a helper of the first launched plan mid-pipeline, then a
    // second node a little later (compounding churn).
    rig.sim_.scheduleAfter(1.0, [&] {
        ASSERT_FALSE(rig.finalPlan_.empty());
        NodeId victim =
            rig.finalPlan_.begin()->second.sources[0].node;
        rig.crashNow(victim, session);
    });
    rig.sim_.scheduleAfter(3.0, [&] {
        for (NodeId n = 1; n < rig.cluster_.numNodes(); ++n) {
            if (!rig.cluster_.nodeDown(n)) {
                rig.crashNow(n, session);
                return;
            }
        }
    });
    rig.sim_.run();

    // The accounting closes: every queued chunk ends repaired or
    // reported unrecoverable, and nothing stays in flight.
    ASSERT_TRUE(session.finished());
    EXPECT_GE(session.crashReplans(), 1);
    EXPECT_EQ(session.totalChunks(),
              static_cast<int>(rig.queued_.size()));
    EXPECT_EQ(session.chunksRepaired() + session.chunksUnrecoverable(),
              session.totalChunks());
    EXPECT_EQ(session.inFlightCount(), 0);
    EXPECT_EQ(rig.cluster_.network().activeFlowCount(), 0u);

    // Repaired chunks are byte-exact under their final (chain-DAG)
    // plan and never landed on a dead node.
    std::set<std::pair<StripeId, ChunkIndex>> unrecoverable;
    for (const auto &fc : session.unrecoverable())
        unrecoverable.insert({fc.stripe, fc.chunk});
    for (const auto &fc : rig.queued_) {
        if (unrecoverable.count({fc.stripe, fc.chunk}))
            continue;
        EXPECT_FALSE(rig.stripes_.chunkLost(fc.stripe, fc.chunk));
        NodeId where = rig.stripes_.location(fc.stripe, fc.chunk);
        EXPECT_FALSE(rig.cluster_.nodeDown(where));
        auto it = rig.finalPlan_.find({fc.stripe, fc.chunk});
        ASSERT_NE(it, rig.finalPlan_.end());
        const auto &plan = it->second;
        const auto &chunks =
            rig.data_[static_cast<std::size_t>(fc.stripe)];
        const auto &want =
            chunks[static_cast<std::size_t>(fc.chunk)];
        EXPECT_EQ(repair::evaluatePlan(plan, chunks), want);
        // What actually executed was the chain DAG built from the
        // plan's sources — byte-identical as well.
        auto d = dag::buildTopologyDag(
            *dag::topologyFromKey("chain"), plan.stripe,
            plan.failedChunk, plan.destination,
            repair::toDagSources(plan.sources), plan.combinable);
        EXPECT_EQ(dag::evaluateDag(d, chunks), want);
    }
}

} // namespace
} // namespace chameleon
