/**
 * @file
 * Tests for the hedged degraded-read manager: single-attempt
 * completion on a healthy cluster, hedge launch + win against a
 * pinned straggler helper, silent cancellation of the losing
 * attempt, the no-hedge baseline, crash re-planning, and the
 * unrecoverable path.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "cluster/stripe_manager.hh"
#include "ec/factory.hh"
#include "repair/executor.hh"
#include "repair/monitor.hh"
#include "traffic/hedged_read.hh"
#include "util/rng.hh"

namespace chameleon {
namespace traffic {
namespace {

/** Small rig mirroring repair_exec_test's ExecRig, with the hedged
 * manager wired in place of the session. */
class HedgeRig
{
  public:
    explicit HedgeRig(HedgedReadConfig cfg = makeHedgeConfig(),
                      int nodes = 12)
        : cfg_(makeClusterConfig(nodes)), cluster_(sim_, cfg_),
          code_(ec::makeRs(4, 2)), stripes_(code_, nodes),
          executor_(cluster_, repair::ExecutorConfig{64.0, 8.0}),
          monitor_(cluster_, 1.0),
          manager_(stripes_, executor_, monitor_, cfg)
    {
        Rng rng(99);
        stripes_.createStripes(6, rng);
    }

    static HedgedReadConfig makeHedgeConfig()
    {
        HedgedReadConfig cfg;
        cfg.enabled = true;
        // Estimates on the idle test cluster are seconds-scale;
        // keep the floor below them so timers track the estimate.
        cfg.hedgeMinDelay = 0.1;
        return cfg;
    }

    static cluster::ClusterConfig makeClusterConfig(int nodes)
    {
        cluster::ClusterConfig cfg;
        cfg.numNodes = nodes;
        cfg.numClients = 1;
        cfg.uplinkBw = 100.0;
        cfg.downlinkBw = 100.0;
        cfg.diskBw = 1000.0;
        cfg.usageWindow = 5.0;
        return cfg;
    }

    /** Loses `chunk` of `stripe` and returns its read request. */
    cluster::FailedChunk lose(StripeId stripe, ChunkIndex chunk)
    {
        stripes_.markLost(stripe, chunk);
        return {stripe, chunk};
    }

    /** Node hosting the lowest-index surviving chunk of `stripe` —
     * with a sample-free monitor every helper estimate ties, so the
     * primary attempt reads this node first. */
    NodeId firstHelperNode(StripeId stripe)
    {
        for (ChunkIndex c = 0; c < code_->n(); ++c)
            if (!stripes_.chunkLost(stripe, c))
                return stripes_.location(stripe, c);
        return kInvalidNode;
    }

    /** Throttles a node's uplink to a crawl (pinned straggler). */
    void throttleUplink(NodeId node, Rate to)
    {
        cluster_.network().setCapacity(cluster_.uplink(node), to);
    }

    sim::Simulator sim_;
    cluster::ClusterConfig cfg_;
    cluster::Cluster cluster_;
    std::shared_ptr<const ec::ErasureCode> code_;
    cluster::StripeManager stripes_;
    repair::RepairExecutor executor_;
    repair::BandwidthMonitor monitor_;
    HedgedReadManager manager_;
};

TEST(HedgedRead, HealthyClusterCompletesWithoutHedging)
{
    HedgeRig rig;
    rig.manager_.start({rig.lose(0, 0), rig.lose(1, 2)});
    rig.sim_.run(1000.0);
    EXPECT_TRUE(rig.manager_.finished());
    EXPECT_EQ(rig.manager_.chunksRepaired(), 2);
    EXPECT_EQ(rig.manager_.chunksUnrecoverable(), 0);
    // No straggler: every attempt lands within its own estimate, so
    // no timer expires.
    EXPECT_EQ(rig.manager_.hedgesIssued(), 0);
    EXPECT_EQ(rig.manager_.hedgeWins(), 0);
    EXPECT_EQ(rig.manager_.latencies().count(), 2u);
    EXPECT_GT(rig.manager_.finishTime(), rig.manager_.startTime());
    // Repairs are recorded against the stripe map.
    EXPECT_TRUE(rig.stripes_.lostChunks().empty());
}

TEST(HedgedRead, StragglerTriggersWinningHedge)
{
    HedgeRig rig;
    auto fc = rig.lose(0, 0);
    // The primary reads the lowest-index surviving chunks; make the
    // first helper crawl at 1% so the attempt stalls far past its
    // (capacity-based) estimate.
    rig.throttleUplink(rig.firstHelperNode(0), 1.0);
    rig.manager_.start({fc});
    rig.sim_.run(2000.0);
    EXPECT_TRUE(rig.manager_.finished());
    EXPECT_EQ(rig.manager_.chunksRepaired(), 1);
    EXPECT_EQ(rig.manager_.hedgesIssued(), 1);
    // The hedge avoids the laggard helper, so it finishes at full
    // speed and beats the crawling primary.
    EXPECT_EQ(rig.manager_.hedgeWins(), 1);
    EXPECT_TRUE(rig.stripes_.lostChunks().empty());
}

TEST(HedgedRead, LosingAttemptIsCanceledSilently)
{
    HedgeRig rig;
    auto fc = rig.lose(0, 0);
    rig.throttleUplink(rig.firstHelperNode(0), 1.0);
    rig.manager_.start({fc});
    rig.sim_.run(2000.0);
    ASSERT_EQ(rig.manager_.hedgeWins(), 1);
    // Cancellation is a scheduling decision, not a failure: no
    // crash re-plans, nothing unrecoverable, and only the winning
    // attempt counts as a completed chunk in the executor.
    EXPECT_EQ(rig.manager_.crashReplans(), 0);
    EXPECT_EQ(rig.manager_.chunksUnrecoverable(), 0);
    EXPECT_EQ(rig.executor_.completedChunks(), 1);
}

TEST(HedgedRead, NoHedgeBaselineRidesOutTheStraggler)
{
    auto cfg = HedgeRig::makeHedgeConfig();
    cfg.hedge = false;
    HedgeRig hedged, plain(cfg);
    auto fc_h = hedged.lose(0, 0);
    auto fc_p = plain.lose(0, 0);
    hedged.throttleUplink(hedged.firstHelperNode(0), 1.0);
    plain.throttleUplink(plain.firstHelperNode(0), 1.0);
    hedged.manager_.start({fc_h});
    plain.manager_.start({fc_p});
    hedged.sim_.run(5000.0);
    plain.sim_.run(5000.0);
    ASSERT_TRUE(hedged.manager_.finished());
    ASSERT_TRUE(plain.manager_.finished());
    EXPECT_EQ(plain.manager_.hedgesIssued(), 0);
    // Identical scenario; only the hedge separates the two runs.
    EXPECT_LT(hedged.manager_.finishTime(),
              plain.manager_.finishTime());
}

TEST(HedgedRead, HelperCrashReplansAndRecovers)
{
    HedgeRig rig;
    auto fc = rig.lose(0, 0);
    rig.manager_.start({fc});
    // Kill the first helper shortly into the transfer; the manager
    // must abort, back off, and re-plan around the dead node — and
    // absorb the crashed node's own chunks as new reads.
    NodeId victim = rig.firstHelperNode(0);
    int extra = -1;
    rig.sim_.scheduleAfter(0.5, [&rig, victim, &extra]() {
        rig.cluster_.markNodeDown(victim);
        auto lost = rig.stripes_.failNode(victim);
        extra = static_cast<int>(lost.size());
        rig.manager_.onNodeCrash(victim, lost);
    });
    rig.sim_.run(5000.0);
    ASSERT_GE(extra, 0);
    EXPECT_TRUE(rig.manager_.finished());
    EXPECT_GE(rig.manager_.crashReplans(), 1);
    EXPECT_EQ(rig.manager_.chunksRepaired(), 1 + extra);
    EXPECT_EQ(rig.manager_.chunksUnrecoverable(), 0);
}

TEST(HedgedRead, ShortStripeIsUnrecoverable)
{
    HedgeRig rig;
    // RS(4,2): three erasures exceed the parity budget.
    auto fc = rig.lose(2, 0);
    rig.lose(2, 1);
    rig.lose(2, 2);
    rig.manager_.start({fc});
    rig.sim_.run(100.0);
    EXPECT_TRUE(rig.manager_.finished());
    EXPECT_EQ(rig.manager_.chunksRepaired(), 0);
    EXPECT_EQ(rig.manager_.chunksUnrecoverable(), 1);
    EXPECT_EQ(rig.manager_.hedgesIssued(), 0);
}

} // namespace
} // namespace traffic
} // namespace chameleon
