/**
 * @file
 * Tests for the discrete-event kernel and the max-min fair fluid-flow
 * network: event ordering/cancellation, fair-share allocation,
 * bottleneck shifting, capacity changes mid-flow, cancellation
 * accounting, and per-tag usage bookkeeping.
 */

#include <vector>

#include <gtest/gtest.h>

#include "sim/flow_network.hh"
#include "sim/simulator.hh"
#include "util/types.hh"

namespace chameleon {
namespace sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(3.0, [&] { order.push_back(3); });
    sim.schedule(1.0, [&] { order.push_back(1); });
    sim.schedule(2.0, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, SameTimeFifo)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(1.0, [&] { order.push_back(1); });
    sim.schedule(1.0, [&] { order.push_back(2); });
    sim.schedule(1.0, [&] { order.push_back(3); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, CancelledEventDoesNotRun)
{
    Simulator sim;
    bool ran = false;
    auto handle = sim.schedule(1.0, [&] { ran = true; });
    EXPECT_TRUE(handle.pending());
    handle.cancel();
    EXPECT_FALSE(handle.pending());
    sim.run();
    EXPECT_FALSE(ran);
}

TEST(Simulator, EventsCanScheduleEvents)
{
    Simulator sim;
    int count = 0;
    std::function<void()> tick = [&] {
        if (++count < 5)
            sim.scheduleAfter(1.0, tick);
    };
    sim.schedule(0.0, tick);
    sim.run();
    EXPECT_EQ(count, 5);
    EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulator, RunUntilStopsEarly)
{
    Simulator sim;
    int count = 0;
    sim.schedule(1.0, [&] { ++count; });
    sim.schedule(5.0, [&] { ++count; });
    sim.run(2.0);
    EXPECT_EQ(count, 1);
    EXPECT_DOUBLE_EQ(sim.now(), 2.0);
    sim.run();
    EXPECT_EQ(count, 2);
}

TEST(Simulator, IdleDetection)
{
    Simulator sim;
    EXPECT_TRUE(sim.idle());
    auto h = sim.schedule(1.0, [] {});
    EXPECT_FALSE(sim.idle());
    h.cancel();
    EXPECT_TRUE(sim.idle());
}

class FlowNetworkTest : public ::testing::Test
{
  protected:
    Simulator sim;
    FlowNetwork net{sim};
};

TEST_F(FlowNetworkTest, SingleFlowUsesFullCapacity)
{
    ResourceId r = net.addResource("link", 100.0);
    SimTime done = -1.0;
    net.startFlow({r}, 1000.0, FlowTag::kRepair,
                  [&] { done = sim.now(); });
    sim.run();
    EXPECT_DOUBLE_EQ(done, 10.0);
}

TEST_F(FlowNetworkTest, TwoFlowsShareFairly)
{
    ResourceId r = net.addResource("link", 100.0);
    SimTime d1 = -1, d2 = -1;
    net.startFlow({r}, 500.0, FlowTag::kRepair, [&] { d1 = sim.now(); });
    net.startFlow({r}, 500.0, FlowTag::kRepair, [&] { d2 = sim.now(); });
    sim.run();
    // Both at 50 B/s until t=10.
    EXPECT_DOUBLE_EQ(d1, 10.0);
    EXPECT_DOUBLE_EQ(d2, 10.0);
}

TEST_F(FlowNetworkTest, ShortFlowFreesBandwidth)
{
    ResourceId r = net.addResource("link", 100.0);
    SimTime d1 = -1, d2 = -1;
    net.startFlow({r}, 100.0, FlowTag::kRepair, [&] { d1 = sim.now(); });
    net.startFlow({r}, 500.0, FlowTag::kRepair, [&] { d2 = sim.now(); });
    sim.run();
    // Flow1: 50 B/s -> done at t=2 (100 bytes). Flow2: 100 bytes by
    // t=2, then 400 more at 100 B/s -> done at t=6.
    EXPECT_DOUBLE_EQ(d1, 2.0);
    EXPECT_DOUBLE_EQ(d2, 6.0);
}

TEST_F(FlowNetworkTest, MultiResourceBottleneck)
{
    ResourceId fast = net.addResource("fast", 100.0);
    ResourceId slow = net.addResource("slow", 10.0);
    SimTime done = -1;
    net.startFlow({fast, slow}, 100.0, FlowTag::kRepair,
                  [&] { done = sim.now(); });
    sim.run();
    EXPECT_DOUBLE_EQ(done, 10.0);
}

TEST_F(FlowNetworkTest, MaxMinAllocationIsCorrect)
{
    // Classic example: flows A:{r1}, B:{r1,r2}, C:{r2}.
    // r1 cap 10, r2 cap 4: B is limited by r2 share 2; A gets 8.
    ResourceId r1 = net.addResource("r1", 10.0);
    ResourceId r2 = net.addResource("r2", 4.0);
    FlowId fa = net.startFlow({r1}, 1e9, FlowTag::kRepair, nullptr);
    FlowId fb = net.startFlow({r1, r2}, 1e9, FlowTag::kRepair, nullptr);
    FlowId fc = net.startFlow({r2}, 1e9, FlowTag::kRepair, nullptr);
    EXPECT_DOUBLE_EQ(net.flowRate(fa), 8.0);
    EXPECT_DOUBLE_EQ(net.flowRate(fb), 2.0);
    EXPECT_DOUBLE_EQ(net.flowRate(fc), 2.0);
}

TEST_F(FlowNetworkTest, CapacityChangeRebalances)
{
    ResourceId r = net.addResource("link", 100.0);
    SimTime done = -1;
    net.startFlow({r}, 1000.0, FlowTag::kRepair,
                  [&] { done = sim.now(); });
    // Throttle to 10 B/s at t=5 (500 bytes transferred by then).
    sim.schedule(5.0, [&] { net.setCapacity(r, 10.0); });
    sim.run();
    EXPECT_DOUBLE_EQ(done, 5.0 + 500.0 / 10.0);
}

TEST_F(FlowNetworkTest, ZeroCapacityStallsFlow)
{
    ResourceId r = net.addResource("link", 100.0);
    bool completed = false;
    net.startFlow({r}, 1000.0, FlowTag::kRepair,
                  [&] { completed = true; });
    sim.schedule(1.0, [&] { net.setCapacity(r, 0.0); });
    sim.schedule(50.0, [&] { /* keep clock alive */ });
    sim.run();
    EXPECT_FALSE(completed);
    // Un-stall and confirm completion.
    net.setCapacity(r, 100.0);
    sim.run();
    EXPECT_TRUE(completed);
}

TEST_F(FlowNetworkTest, CancelReturnsRemaining)
{
    ResourceId r = net.addResource("link", 100.0);
    FlowId f = net.startFlow({r}, 1000.0, FlowTag::kRepair, nullptr);
    sim.schedule(3.0, [&] {
        Bytes rem = net.cancelFlow(f);
        EXPECT_DOUBLE_EQ(rem, 700.0);
    });
    sim.run();
    EXPECT_FALSE(net.flowActive(f));
}

TEST_F(FlowNetworkTest, CancelFreesBandwidthForOthers)
{
    ResourceId r = net.addResource("link", 100.0);
    FlowId f1 = net.startFlow({r}, 1e6, FlowTag::kRepair, nullptr);
    SimTime done = -1;
    net.startFlow({r}, 500.0, FlowTag::kRepair, [&] { done = sim.now(); });
    sim.schedule(2.0, [&] { net.cancelFlow(f1); });
    sim.run();
    // 100 bytes by t=2 (50 B/s), then 400 at 100 B/s -> t=6.
    EXPECT_DOUBLE_EQ(done, 6.0);
}

TEST_F(FlowNetworkTest, ZeroSizeFlowCompletesImmediately)
{
    ResourceId r = net.addResource("link", 100.0);
    bool completed = false;
    net.startFlow({r}, 0.0, FlowTag::kRepair, [&] { completed = true; });
    EXPECT_TRUE(completed);
}

TEST_F(FlowNetworkTest, CompletionCallbackCanStartFlow)
{
    ResourceId r = net.addResource("link", 100.0);
    SimTime second_done = -1;
    net.startFlow({r}, 100.0, FlowTag::kRepair, [&] {
        net.startFlow({r}, 200.0, FlowTag::kRepair,
                      [&] { second_done = sim.now(); });
    });
    sim.run();
    EXPECT_DOUBLE_EQ(second_done, 1.0 + 2.0);
}

TEST_F(FlowNetworkTest, TaggedByteAccounting)
{
    ResourceId r = net.addResource("link", 100.0);
    net.startFlow({r}, 300.0, FlowTag::kForeground, nullptr);
    net.startFlow({r}, 700.0, FlowTag::kRepair, nullptr);
    sim.run();
    EXPECT_NEAR(net.taggedBytes(r, FlowTag::kForeground), 300.0, 1e-6);
    EXPECT_NEAR(net.taggedBytes(r, FlowTag::kRepair), 700.0, 1e-6);
}

TEST_F(FlowNetworkTest, WindowedUsagePerTag)
{
    FlowNetwork wnet(sim, 1.0); // 1-second windows
    ResourceId r = wnet.addResource("link", 100.0);
    wnet.startFlow({r}, 200.0, FlowTag::kForeground, nullptr);
    sim.run();
    const auto &usage = wnet.usage(r, FlowTag::kForeground);
    ASSERT_GE(usage.windowCount(), 2u);
    EXPECT_NEAR(usage.windowRate(0), 100.0, 1e-6);
    EXPECT_NEAR(usage.windowRate(1), 100.0, 1e-6);
}

TEST_F(FlowNetworkTest, CurrentTagRate)
{
    ResourceId r = net.addResource("link", 100.0);
    net.startFlow({r}, 1e6, FlowTag::kForeground, nullptr);
    net.startFlow({r}, 1e6, FlowTag::kRepair, nullptr);
    EXPECT_DOUBLE_EQ(net.currentTagRate(r, FlowTag::kForeground), 50.0);
    EXPECT_DOUBLE_EQ(net.currentTagRate(r, FlowTag::kRepair), 50.0);
}

TEST_F(FlowNetworkTest, ManyFlowsConvergeAndComplete)
{
    // Stress: 200 flows across 10 resources in random 2-hop paths.
    std::vector<ResourceId> rs;
    for (int i = 0; i < 10; ++i)
        rs.push_back(net.addResource("r" + std::to_string(i), 50.0));
    int completed = 0;
    for (int i = 0; i < 200; ++i) {
        ResourceId a = rs[static_cast<std::size_t>(i % 10)];
        ResourceId b = rs[static_cast<std::size_t>((i + 3) % 10)];
        net.startFlow({a, b}, 100.0 + i, FlowTag::kRepair,
                      [&] { ++completed; });
    }
    sim.run();
    EXPECT_EQ(completed, 200);
    EXPECT_EQ(net.activeFlowCount(), 0u);
}

TEST_F(FlowNetworkTest, SyncIntegratesMidEvent)
{
    FlowNetwork wnet(sim, 1.0);
    ResourceId r = wnet.addResource("link", 100.0);
    wnet.startFlow({r}, 1000.0, FlowTag::kRepair, nullptr);
    sim.schedule(3.0, [&] {
        wnet.sync();
        EXPECT_NEAR(wnet.taggedBytes(r, FlowTag::kRepair), 300.0, 1e-6);
    });
    sim.run(3.5);
}

} // namespace
} // namespace sim
} // namespace chameleon
