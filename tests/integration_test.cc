/**
 * @file
 * Cross-module integration and property tests: the full experiment
 * pipeline across every (algorithm x code) cell, metadata consistency
 * after repair, executor behavior under aggressive concurrent
 * re-tuning + stragglers (the exactly-once invariant is asserted
 * internally on every run), slot-capacity sweeps, and determinism of
 * the whole simulation under a fixed seed.
 */

#include <gtest/gtest.h>

#include "analysis/experiment.hh"
#include "ec/factory.hh"

namespace chameleon {
namespace analysis {
namespace {

ExperimentConfig
tinyConfig()
{
    ExperimentConfig cfg;
    cfg.cluster.numNodes = 16;
    cfg.cluster.numClients = 2;
    cfg.code = ec::makeRs(6, 3);
    cfg.exec.chunkSize = 16 * units::MiB;
    cfg.exec.sliceSize = 4 * units::MiB;
    cfg.chunksToRepair = 5;
    cfg.warmup = 6.0;
    cfg.chameleon.tPhase = 10.0;
    cfg.simTimeCap = 5000.0;
    return cfg;
}

struct Cell
{
    Algorithm algorithm;
    std::shared_ptr<const ec::ErasureCode> code;
};

class FullMatrixTest : public ::testing::TestWithParam<int>
{
};

TEST(FullMatrix, EveryAlgorithmEveryCodeCompletes)
{
    std::vector<std::shared_ptr<const ec::ErasureCode>> codes = {
        ec::makeRs(6, 3), ec::makeLrc(6, 2, 2), ec::makeButterfly()};
    std::vector<Algorithm> algos = {
        Algorithm::kCr,        Algorithm::kPpr,
        Algorithm::kEcpipe,    Algorithm::kRbCr,
        Algorithm::kRbEcpipe,  Algorithm::kEtrp,
        Algorithm::kChameleon, Algorithm::kChameleonIo};
    for (const auto &code : codes) {
        for (auto algo : algos) {
            auto cfg = tinyConfig();
            cfg.code = code;
            cfg.trace = traffic::ycsbA();
            cfg.trace->workersPerClient = 3;
            auto r = runExperiment(algo, cfg);
            EXPECT_EQ(r.chunksRepaired, cfg.chunksToRepair)
                << algorithmName(algo) << " / " << code->name();
            EXPECT_GT(r.repairThroughput, 0.0);
        }
    }
}

TEST(Determinism, SameSeedSameResult)
{
    auto cfg = tinyConfig();
    cfg.trace = traffic::ycsbA();
    cfg.trace->workersPerClient = 3;
    auto a = runExperiment(Algorithm::kChameleon, cfg);
    auto b = runExperiment(Algorithm::kChameleon, cfg);
    EXPECT_DOUBLE_EQ(a.repairThroughput, b.repairThroughput);
    EXPECT_DOUBLE_EQ(a.p99LatencyMs, b.p99LatencyMs);
    EXPECT_EQ(a.phases, b.phases);
    EXPECT_EQ(a.retunes, b.retunes);
    EXPECT_EQ(a.reorders, b.reorders);
}

TEST(Determinism, DifferentSeedsDiffer)
{
    auto cfg = tinyConfig();
    cfg.trace = traffic::ycsbA();
    cfg.trace->workersPerClient = 3;
    auto a = runExperiment(Algorithm::kCr, cfg);
    cfg.seed = 999;
    auto b = runExperiment(Algorithm::kCr, cfg);
    EXPECT_NE(a.repairThroughput, b.repairThroughput);
}

TEST(SlotSweep, UploadSlotCapacityScalesThroughput)
{
    // More recovery streams per node -> repair can only get faster
    // (on an idle cluster).
    double prev = 0.0;
    for (int slots : {1, 2, 4}) {
        auto cfg = tinyConfig();
        cfg.exec.nodeUploadSlots = slots;
        cfg.chunksToRepair = 10;
        auto r = runExperiment(Algorithm::kCr, cfg);
        EXPECT_GE(r.repairThroughput, prev * 0.95)
            << "slots=" << slots;
        prev = r.repairThroughput;
    }
}

TEST(RelayOverhead, PenalizesChainsNotStars)
{
    // With zero overhead chains beat stars on an idle cluster (their
    // classical advantage); a large overhead must invert that.
    auto base = tinyConfig();
    base.chunksToRepair = 10;

    auto with = [&](double ovh, Algorithm algo) {
        auto cfg = base;
        cfg.exec.relayOverheadPerMiB = ovh;
        return runExperiment(algo, cfg).repairThroughput;
    };
    double cr_free = with(0.0, Algorithm::kCr);
    double chain_free = with(0.0, Algorithm::kEcpipe);
    double cr_heavy = with(0.05, Algorithm::kCr);
    double chain_heavy = with(0.05, Algorithm::kEcpipe);
    EXPECT_GT(chain_free, cr_free * 0.9);
    EXPECT_GT(cr_heavy, chain_heavy);
    // CR itself is essentially overhead-free.
    EXPECT_NEAR(cr_heavy, cr_free, 0.2 * cr_free);
}

TEST(Straggler, ChameleonRecoversFasterThanEtrp)
{
    // A severe mid-repair straggler on a participating node: full
    // ChameleonEC (with SAR) must not be slower than ETRP.
    auto run = [&](Algorithm algo) {
        auto cfg = tinyConfig();
        cfg.chunksToRepair = 8;
        cfg.chameleon.checkPeriod = 0.5;
        cfg.chameleon.stragglerSlack = 1.0;
        cfg.stragglers.push_back(StragglerEvent{
            0.5, kInvalidNode, 0.02, 60.0, true, true});
        return runExperiment(algo, cfg);
    };
    auto etrp = run(Algorithm::kEtrp);
    auto cham = run(Algorithm::kChameleon);
    EXPECT_EQ(cham.chunksRepaired, 8);
    EXPECT_GE(cham.repairThroughput, etrp.repairThroughput * 0.9);
}

TEST(Metadata, StaysConsistentThroughConcurrentRepairs)
{
    // After a multi-node repair, every stripe must again span
    // distinct live nodes with no lost chunks.
    auto cfg = tinyConfig();
    cfg.failedNodes = 2;
    cfg.chunksToRepair = 8;
    auto r = runExperiment(Algorithm::kChameleon, cfg);
    EXPECT_GE(r.chunksRepaired, 8);
    // The harness validates relocation internally (relocate panics
    // on double-occupancy); reaching here means it held.
}

TEST(Timeline, ConservesRepairedBytes)
{
    auto cfg = tinyConfig();
    cfg.chunksToRepair = 6;
    auto r = runExperiment(Algorithm::kPpr, cfg);
    Rate total = 0;
    for (Rate x : r.throughputTimeline)
        total += x * r.timelinePeriod;
    EXPECT_NEAR(total, 6 * cfg.exec.chunkSize, cfg.exec.chunkSize);
}

} // namespace
} // namespace analysis
} // namespace chameleon
