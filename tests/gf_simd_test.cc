/**
 * @file
 * Property tests for the GF(2^8) region-kernel variants: every
 * compiled-in, CPU-supported kernel must be byte-identical to the
 * scalar reference for random sizes (0–4097, crossing every
 * SIMD-width and tail boundary), random buffer misalignments, and
 * all 256 coefficients. Runs under the ASan/UBSan CI job, so the
 * unaligned-load paths and tail handling also get sanitizer
 * coverage.
 */

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "gf/gf256.hh"
#include "gf/gf_kernels.hh"
#include "util/rng.hh"

namespace chameleon {
namespace gf {
namespace {

using detail::Isa;
using detail::Kernels;

/** Arena with room to place regions at arbitrary misalignments. */
constexpr std::size_t kMaxSize = 4097;
constexpr std::size_t kMaxAlign = 63;
constexpr std::size_t kArena = kMaxSize + kMaxAlign;

std::vector<uint8_t>
randomBytes(Rng &rng, std::size_t n)
{
    std::vector<uint8_t> v(n);
    for (auto &b : v)
        b = static_cast<uint8_t>(rng.below(256));
    return v;
}

class GfKernelParity : public ::testing::TestWithParam<Isa>
{
};

TEST_P(GfKernelParity, MulAddRandomSizesAlignmentsCoeffs)
{
    const Kernels &k = detail::kernels(GetParam());
    const Kernels &ref = detail::scalarKernels();
    Rng rng(0xC0DEC);
    for (int trial = 0; trial < 400; ++trial) {
        const std::size_t n = rng.below(kMaxSize + 1);
        const std::size_t doff = rng.below(kMaxAlign + 1);
        const std::size_t soff = rng.below(kMaxAlign + 1);
        const uint8_t c = static_cast<uint8_t>(1 + rng.below(255));
        auto dst = randomBytes(rng, kArena);
        auto src = randomBytes(rng, kArena);
        auto expect = dst;
        ref.mulAdd(expect.data() + doff, src.data() + soff, n, c);
        k.mulAdd(dst.data() + doff, src.data() + soff, n, c);
        ASSERT_EQ(dst, expect)
            << "kernel " << k.name << " trial " << trial << " n=" << n
            << " doff=" << doff << " soff=" << soff << " c=" << int(c);
    }
}

TEST_P(GfKernelParity, MulAddAllCoefficients)
{
    const Kernels &k = detail::kernels(GetParam());
    const Kernels &ref = detail::scalarKernels();
    Rng rng(0xA11C0);
    const std::size_t n = 1031; // prime: exercises every tail length
    for (int c = 1; c < 256; ++c) {
        const std::size_t doff = rng.below(kMaxAlign + 1);
        const std::size_t soff = rng.below(kMaxAlign + 1);
        auto dst = randomBytes(rng, kArena);
        auto src = randomBytes(rng, kArena);
        auto expect = dst;
        ref.mulAdd(expect.data() + doff, src.data() + soff, n,
                   static_cast<uint8_t>(c));
        k.mulAdd(dst.data() + doff, src.data() + soff, n,
                 static_cast<uint8_t>(c));
        ASSERT_EQ(dst, expect) << "kernel " << k.name << " c=" << c;
    }
}

TEST_P(GfKernelParity, MulRandomized)
{
    const Kernels &k = detail::kernels(GetParam());
    const Kernels &ref = detail::scalarKernels();
    Rng rng(0x5EED1);
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t n = rng.below(kMaxSize + 1);
        const std::size_t doff = rng.below(kMaxAlign + 1);
        const std::size_t soff = rng.below(kMaxAlign + 1);
        const uint8_t c = static_cast<uint8_t>(1 + rng.below(255));
        auto dst = randomBytes(rng, kArena);
        auto src = randomBytes(rng, kArena);
        auto expect = dst;
        ref.mul(expect.data() + doff, src.data() + soff, n, c);
        k.mul(dst.data() + doff, src.data() + soff, n, c);
        ASSERT_EQ(dst, expect)
            << "kernel " << k.name << " trial " << trial;
    }
}

TEST_P(GfKernelParity, AddRandomized)
{
    const Kernels &k = detail::kernels(GetParam());
    const Kernels &ref = detail::scalarKernels();
    Rng rng(0x5EED2);
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t n = rng.below(kMaxSize + 1);
        const std::size_t doff = rng.below(kMaxAlign + 1);
        const std::size_t soff = rng.below(kMaxAlign + 1);
        auto dst = randomBytes(rng, kArena);
        auto src = randomBytes(rng, kArena);
        auto expect = dst;
        ref.add(expect.data() + doff, src.data() + soff, n);
        k.add(dst.data() + doff, src.data() + soff, n);
        ASSERT_EQ(dst, expect)
            << "kernel " << k.name << " trial " << trial;
    }
}

TEST_P(GfKernelParity, MulAddMultiMatchesSequentialMulAdds)
{
    const Kernels &k = detail::kernels(GetParam());
    const Kernels &ref = detail::scalarKernels();
    Rng rng(0x5EED3);
    for (int trial = 0; trial < 100; ++trial) {
        const std::size_t n = rng.below(kMaxSize + 1);
        const std::size_t nsrc = 1 + rng.below(14);
        auto dst = randomBytes(rng, kArena);
        auto expect = dst;
        std::vector<std::vector<uint8_t>> srcs;
        std::vector<const uint8_t *> ptrs;
        std::vector<uint8_t> coeffs;
        for (std::size_t j = 0; j < nsrc; ++j) {
            srcs.push_back(randomBytes(rng, kMaxSize));
            coeffs.push_back(
                static_cast<uint8_t>(1 + rng.below(255)));
        }
        for (auto &s : srcs)
            ptrs.push_back(s.data());
        const std::size_t doff = rng.below(kMaxAlign + 1);
        for (std::size_t j = 0; j < nsrc; ++j)
            ref.mulAdd(expect.data() + doff, ptrs[j], n, coeffs[j]);
        k.mulAddMulti(dst.data() + doff, ptrs.data(), coeffs.data(),
                      nsrc, n);
        ASSERT_EQ(dst, expect)
            << "kernel " << k.name << " trial " << trial << " n=" << n
            << " nsrc=" << nsrc;
    }
}

/** Wide-matrix leg (Exp#17): one RS(24,8)-shaped row — 24 sources
 * in a single fused pass, the widest row any registered code
 * produces — byte-identical to 24 sequential scalar passes across
 * SIMD-width-crossing sizes and misalignments. */
TEST_P(GfKernelParity, WideMatrixRowK24Parity)
{
    const Kernels &k = detail::kernels(GetParam());
    const Kernels &ref = detail::scalarKernels();
    Rng rng(0x5EED24);
    constexpr std::size_t kWideK = 24;
    std::vector<std::vector<uint8_t>> srcs;
    std::vector<const uint8_t *> ptrs;
    for (std::size_t j = 0; j < kWideK; ++j)
        srcs.push_back(randomBytes(rng, kMaxSize));
    for (auto &s : srcs)
        ptrs.push_back(s.data());
    for (const std::size_t n :
         {std::size_t{1}, std::size_t{31}, std::size_t{32},
          std::size_t{33}, std::size_t{255}, std::size_t{4096},
          kMaxSize}) {
        std::vector<uint8_t> coeffs;
        for (std::size_t j = 0; j < kWideK; ++j)
            coeffs.push_back(
                static_cast<uint8_t>(1 + rng.below(255)));
        const std::size_t doff = rng.below(kMaxAlign + 1);
        auto dst = randomBytes(rng, kArena);
        auto expect = dst;
        for (std::size_t j = 0; j < kWideK; ++j)
            ref.mulAdd(expect.data() + doff, ptrs[j], n, coeffs[j]);
        k.mulAddMulti(dst.data() + doff, ptrs.data(), coeffs.data(),
                      kWideK, n);
        ASSERT_EQ(dst, expect)
            << "kernel " << k.name << " n=" << n << " doff=" << doff;
    }
}

TEST_P(GfKernelParity, ZeroLengthIsNoop)
{
    const Kernels &k = detail::kernels(GetParam());
    std::vector<uint8_t> dst = {1, 2, 3}, src = {4, 5, 6};
    auto before = dst;
    k.mulAdd(dst.data(), src.data(), 0, 0x35);
    k.add(dst.data(), src.data(), 0);
    k.mul(dst.data(), src.data(), 0, 0x35);
    const uint8_t *ptrs[1] = {src.data()};
    const uint8_t coeffs[1] = {0x35};
    k.mulAddMulti(dst.data(), ptrs, coeffs, 1, 0);
    EXPECT_EQ(dst, before);
}

INSTANTIATE_TEST_SUITE_P(
    AllAvailableIsas, GfKernelParity,
    ::testing::ValuesIn(detail::availableIsas()),
    [](const ::testing::TestParamInfo<Isa> &info) {
        return detail::isaName(info.param);
    });

/** The public dispatched entry points agree with the reference too
 * (covers the zero/one special-casing and the multi zero-coeff
 * stripping in gf256.cc). */
TEST(GfDispatch, PublicApiMatchesScalarReference)
{
    Rng rng(0xD15);
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t n = rng.below(kMaxSize + 1);
        const uint8_t c = static_cast<uint8_t>(rng.below(256));
        std::vector<uint8_t> dst = randomBytes(rng, n);
        std::vector<uint8_t> src = randomBytes(rng, n);
        auto expect = dst;
        for (std::size_t i = 0; i < n; ++i)
            expect[i] = add(expect[i], mul(c, src[i]));
        mulAddRegion(dst, src, c);
        ASSERT_EQ(dst, expect) << "trial " << trial;
    }
}

TEST(GfDispatch, MultiSkipsZeroCoefficients)
{
    Rng rng(0xD16);
    const std::size_t n = 777;
    std::vector<uint8_t> dst = randomBytes(rng, n);
    std::vector<uint8_t> a = randomBytes(rng, n);
    std::vector<uint8_t> b = randomBytes(rng, n);
    auto expect = dst;
    mulAddRegion(expect, b, 0x42);
    const uint8_t *ptrs[3] = {a.data(), b.data(), a.data()};
    const uint8_t coeffs[3] = {0, 0x42, 0};
    mulAddRegionMulti(dst, ptrs, coeffs);
    EXPECT_EQ(dst, expect);
}

TEST(GfDispatch, ActiveKernelIsListedAsAvailable)
{
    const auto avail = detail::availableIsas();
    ASSERT_FALSE(avail.empty());
    bool found = false;
    for (Isa isa : avail)
        found = found || (isa == detail::activeIsa());
    EXPECT_TRUE(found);
    EXPECT_STREQ(kernelName(), detail::isaName(detail::activeIsa()));
#ifdef CHAMELEON_FORCE_SCALAR
    EXPECT_STREQ(kernelName(), "scalar");
#endif
}

} // namespace
} // namespace gf
} // namespace chameleon
