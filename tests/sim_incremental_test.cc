/**
 * @file
 * Differential and property tests for the incremental max-min solver.
 *
 * The incremental solver (dirty-component re-solve, lazy progress
 * integration, completion heap) must be indistinguishable from the
 * reference from-scratch solver: a scripted, seeded churn of flow
 * starts, cancels, completions, capacity changes, and syncs is
 * applied to two independent simulations — one per solver mode — and
 * every observable (flow rates bit-for-bit, completion order,
 * per-resource byte counters) is compared after every operation.
 * Invariants (rate sums within capacity, O(1) tag-rate sums matching
 * a fresh walk) are checked on the incremental side, and the
 * dirty-set counters are asserted sublinear on disjoint components.
 */

#include <algorithm>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "sim/flow_network.hh"
#include "sim/simulator.hh"
#include "telemetry/telemetry.hh"

namespace chameleon {
namespace sim {
namespace {

/** One scripted operation, applied identically to both modes. */
struct Op
{
    enum Kind { kStart, kCancel, kSetCapacity, kSync };

    Kind kind;
    SimTime at;
    std::vector<ResourceId> path; // kStart
    Bytes size = 0.0;             // kStart
    FlowTag tag = FlowTag::kForeground;
    std::size_t victim = 0;  // kCancel: index into the live set
    ResourceId resource = 0; // kSetCapacity
    Rate capacity = 0.0;     // kSetCapacity
};

struct Completion
{
    SimTime at;
    FlowId id;

    bool operator==(const Completion &o) const
    {
        return at == o.at && id == o.id;
    }
};

/** One simulation under churn; two instances run the same script. */
class Churn
{
  public:
    Churn(bool reference, const std::vector<Rate> &caps)
    {
        net_.setReferenceSolver(reference);
        for (std::size_t i = 0; i < caps.size(); ++i)
            net_.addResource("r" + std::to_string(i), caps[i]);
    }

    void apply(const Op &op)
    {
        sim_.run(op.at);
        switch (op.kind) {
        case Op::kStart: {
            const FlowId id = nextId_++;
            live_.push_back(id);
            paths_[id] = op.path;
            tags_[id] = op.tag;
            net_.startFlow(op.path, op.size, op.tag, [this, id] {
                completions_.push_back({sim_.now(), id});
                dropLive(id);
            });
            break;
        }
        case Op::kCancel: {
            // An empty live set turns the op into an unknown-id
            // cancel, exercising the no-op fast path.
            FlowId id = kInvalidFlow;
            if (!live_.empty())
                id = live_[op.victim % live_.size()];
            lastCancelReturn_ = net_.cancelFlow(id);
            dropLive(id);
            break;
        }
        case Op::kSetCapacity:
            net_.setCapacity(op.resource, op.capacity);
            break;
        case Op::kSync:
            net_.sync();
            break;
        }
    }

    void drain(SimTime until) { sim_.run(until); }

    Simulator &sim() { return sim_; }
    FlowNetwork &net() { return net_; }
    const std::vector<FlowId> &live() const { return live_; }
    const std::vector<Completion> &completions() const
    {
        return completions_;
    }
    const std::vector<ResourceId> &pathOf(FlowId id) const
    {
        return paths_.at(id);
    }
    FlowTag tagOf(FlowId id) const { return tags_.at(id); }
    Bytes lastCancelReturn() const { return lastCancelReturn_; }

  private:
    void dropLive(FlowId id)
    {
        auto it = std::find(live_.begin(), live_.end(), id);
        if (it != live_.end())
            live_.erase(it);
    }

    Simulator sim_;
    FlowNetwork net_{sim_};
    FlowId nextId_ = 0;
    std::vector<FlowId> live_;
    std::unordered_map<FlowId, std::vector<ResourceId>> paths_;
    std::unordered_map<FlowId, FlowTag> tags_;
    std::vector<Completion> completions_;
    Bytes lastCancelReturn_ = 0.0;
};

std::vector<Op>
makeScript(uint32_t seed, std::size_t nres, std::size_t nops,
           std::vector<Rate> &caps)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> capDist(20.0, 150.0);
    caps.clear();
    for (std::size_t i = 0; i < nres; ++i)
        caps.push_back(capDist(rng));

    std::vector<Op> ops;
    SimTime t = 0.0;
    std::uniform_real_distribution<double> dtDist(0.0, 0.8);
    std::uniform_real_distribution<double> sizeDist(1.0, 4000.0);
    std::uniform_int_distribution<int> kindDist(0, 99);
    std::uniform_int_distribution<std::size_t> resDist(0, nres - 1);
    for (std::size_t i = 0; i < nops; ++i) {
        t += dtDist(rng);
        Op op;
        op.at = t;
        const int k = kindDist(rng);
        if (k < 45) {
            op.kind = Op::kStart;
            const std::size_t hops = 2 + (rng() % 2);
            while (op.path.size() < hops) {
                const auto r =
                    static_cast<ResourceId>(resDist(rng));
                if (std::find(op.path.begin(), op.path.end(), r) ==
                    op.path.end())
                    op.path.push_back(r);
            }
            // A few degenerate (zero-byte) starts exercise the
            // solver-skipping fast path.
            op.size = k < 3 ? 0.0 : sizeDist(rng);
            op.tag = (rng() % 3 == 0) ? FlowTag::kRepair
                                      : FlowTag::kForeground;
        } else if (k < 70) {
            op.kind = Op::kCancel;
            op.victim = rng();
        } else if (k < 85) {
            op.kind = Op::kSetCapacity;
            op.resource = static_cast<ResourceId>(resDist(rng));
            // Occasionally stall a link completely.
            op.capacity = (rng() % 8 == 0) ? 0.0 : capDist(rng);
        } else {
            op.kind = Op::kSync;
        }
        ops.push_back(std::move(op));
    }
    return ops;
}

/** Compares every observable of the two modes bit-for-bit. */
void
expectIdentical(Churn &inc, Churn &ref)
{
    ASSERT_EQ(inc.completions().size(), ref.completions().size());
    for (std::size_t i = 0; i < inc.completions().size(); ++i) {
        EXPECT_EQ(inc.completions()[i].at, ref.completions()[i].at);
        EXPECT_EQ(inc.completions()[i].id, ref.completions()[i].id);
    }
    ASSERT_EQ(inc.live(), ref.live());
    EXPECT_EQ(inc.lastCancelReturn(), ref.lastCancelReturn());
    for (FlowId id : inc.live()) {
        ASSERT_TRUE(inc.net().flowActive(id));
        ASSERT_TRUE(ref.net().flowActive(id));
        EXPECT_EQ(inc.net().flowRate(id), ref.net().flowRate(id))
            << "flow " << id;
        EXPECT_EQ(inc.net().flowRemaining(id),
                  ref.net().flowRemaining(id))
            << "flow " << id;
    }
    for (std::size_t r = 0; r < inc.net().resourceCount(); ++r) {
        const auto rid = static_cast<ResourceId>(r);
        for (int t = 0; t < kNumFlowTags; ++t) {
            const auto tag = static_cast<FlowTag>(t);
            EXPECT_EQ(inc.net().currentTagRate(rid, tag),
                      ref.net().currentTagRate(rid, tag))
                << "resource " << r << " tag " << t;
            EXPECT_EQ(inc.net().taggedBytes(rid, tag),
                      ref.net().taggedBytes(rid, tag))
                << "resource " << r << " tag " << t;
        }
        EXPECT_EQ(inc.net().activeFlowsOn(rid),
                  ref.net().activeFlowsOn(rid));
    }
}

/** Invariants of the incremental bookkeeping itself. */
void
expectInvariants(Churn &c)
{
    FlowNetwork &net = c.net();
    for (std::size_t r = 0; r < net.resourceCount(); ++r) {
        const auto rid = static_cast<ResourceId>(r);
        Rate total = 0.0;
        Rate fresh[kNumFlowTags] = {0.0, 0.0};
        for (int t = 0; t < kNumFlowTags; ++t)
            total += net.currentTagRate(rid, static_cast<FlowTag>(t));
        EXPECT_LE(total, net.capacity(rid) + 1e-6);
        // The O(1) per-tag sums must match a fresh walk of the live
        // flows crossing the resource (order-tolerant comparison:
        // the walk sums in id order, the network in list order).
        std::size_t crossing = 0;
        for (FlowId id : c.live()) {
            const auto &path = c.pathOf(id);
            if (std::find(path.begin(), path.end(), rid) ==
                path.end())
                continue;
            ++crossing;
            fresh[static_cast<int>(c.tagOf(id))] +=
                net.flowRate(id);
        }
        EXPECT_EQ(crossing, net.activeFlowsOn(rid));
        for (int t = 0; t < kNumFlowTags; ++t)
            EXPECT_NEAR(
                fresh[t],
                net.currentTagRate(rid, static_cast<FlowTag>(t)),
                1e-6)
                << "resource " << r << " tag " << t;
    }
}

TEST(SimIncremental, DifferentialChurnMatchesReferenceSolver)
{
    for (uint32_t seed : {1u, 7u, 42u, 1234u, 99991u}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        std::vector<Rate> caps;
        const auto script = makeScript(seed, 12, 250, caps);
        Churn inc(/*reference=*/false, caps);
        Churn ref(/*reference=*/true, caps);
        ASSERT_FALSE(inc.net().referenceSolver());
        ASSERT_TRUE(ref.net().referenceSolver());
        for (const Op &op : script) {
            inc.apply(op);
            ref.apply(op);
            expectIdentical(inc, ref);
            expectInvariants(inc);
            if (::testing::Test::HasFailure())
                return; // first divergence is the informative one
        }
        // Drain: stalled flows (zero-capacity links) may never
        // finish; run far past the script and compare final state.
        const SimTime horizon = script.back().at + 1e6;
        inc.drain(horizon);
        ref.drain(horizon);
        expectIdentical(inc, ref);
        expectInvariants(inc);
        EXPECT_EQ(inc.sim().eventsExecuted(),
                  ref.sim().eventsExecuted());
    }
}

TEST(SimIncremental, DegenerateStartAndUnknownCancelSkipSolve)
{
    Simulator sim;
    FlowNetwork net(sim);
    net.setReferenceSolver(false);
    const ResourceId r = net.addResource("r", 100.0);
    auto &recomputes =
        telemetry::metrics().counter("sim.rate_recomputes");

    const int64_t before = recomputes.value.load();
    bool fired = false;
    net.startFlow({r}, 0.0, FlowTag::kForeground,
                  [&fired] { fired = true; });
    EXPECT_TRUE(fired);
    net.startFlow({}, 1000.0, FlowTag::kForeground, nullptr);
    EXPECT_EQ(net.cancelFlow(424242), 0.0);
    EXPECT_EQ(recomputes.value.load(), before);
    EXPECT_EQ(net.activeFlowCount(), 0u);
    EXPECT_TRUE(sim.idle());
}

TEST(SimIncremental, DirtySetStaysWithinComponent)
{
    Simulator sim;
    FlowNetwork net(sim);
    net.setReferenceSolver(false);
    auto &visits = telemetry::metrics().counter(
        "sim.rate_recompute_flow_visits");

    // 32 disjoint two-resource components, 4 long flows each: 128
    // live flows total, but churn inside one component must never
    // visit the other 31.
    constexpr int kPairs = 32;
    constexpr int kFlowsPerPair = 4;
    std::vector<ResourceId> up(kPairs), down(kPairs);
    for (int p = 0; p < kPairs; ++p) {
        up[p] = net.addResource("up" + std::to_string(p), 100.0);
        down[p] = net.addResource("down" + std::to_string(p), 100.0);
    }
    for (int p = 0; p < kPairs; ++p)
        for (int f = 0; f < kFlowsPerPair; ++f)
            net.startFlow({up[p], down[p]}, 1e9,
                          FlowTag::kRepair, nullptr);
    ASSERT_EQ(net.activeFlowCount(),
              static_cast<std::size_t>(kPairs * kFlowsPerPair));

    const int64_t before = visits.value.load();
    constexpr int kOps = 100;
    for (int i = 0; i < kOps; ++i) {
        FlowId id = net.startFlow({up[0], down[0]}, 1e9,
                                  FlowTag::kForeground, nullptr);
        net.cancelFlow(id);
    }
    const int64_t delta = visits.value.load() - before;
    // Each op re-solves one 5-flow component twice; a global solve
    // would visit all 128 flows per op. Require a hard sublinear
    // bound: well under one-quarter of global-visit cost.
    EXPECT_LE(delta, kOps * 2 * (kFlowsPerPair + 1));
    EXPECT_LT(delta,
              kOps * kPairs * kFlowsPerPair / 4);
}

TEST(SimIncremental, CapacityChangeOnStalledComponentResumes)
{
    // Mode parity across a stall/resume cycle (rate 0 -> positive).
    for (bool reference : {false, true}) {
        Simulator sim;
        FlowNetwork net(sim);
        net.setReferenceSolver(reference);
        const ResourceId r = net.addResource("r", 0.0);
        bool done = false;
        net.startFlow({r}, 100.0, FlowTag::kForeground,
                      [&done] { done = true; });
        sim.run(10.0);
        EXPECT_FALSE(done);
        EXPECT_EQ(net.flowRate(0), 0.0);
        net.setCapacity(r, 10.0);
        sim.run(25.0);
        EXPECT_TRUE(done) << "reference=" << reference;
        EXPECT_EQ(net.activeFlowCount(), 0u);
    }
}

} // namespace
} // namespace sim
} // namespace chameleon
