/**
 * @file
 * Tests for BandwidthMonitor measurement quality: noise-free
 * estimates converge to the true residual of a steady foreground
 * load, noisy estimates stay within the advertised error bound, and
 * estimates are stale between samples (the imperfection the
 * straggler-aware re-scheduler absorbs).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "repair/monitor.hh"

namespace chameleon {
namespace repair {
namespace {

/** Small cluster with a throttled client downlink so a foreground
 * flow occupies a known fraction of a node uplink. */
class MonitorRig
{
  public:
    MonitorRig()
    {
        cluster::ClusterConfig cfg;
        cfg.numNodes = 6;
        cfg.numClients = 1;
        cfg.uplinkBw = 100.0;
        cfg.downlinkBw = 100.0;
        cfg.diskBw = 1000.0;
        cluster_ = std::make_unique<cluster::Cluster>(sim_, cfg);
        // The client ingests at 40 B/s, so a single read flow holds
        // the serving node's uplink at exactly 40 B/s.
        cluster_->network().setCapacity(
            cluster_->clientDownlink(0), 40.0);
    }

    /** Starts a long-lived steady read from node 2. */
    void startSteadyLoad()
    {
        cluster_->network().startFlow(
            {cluster_->uplink(2), cluster_->clientDownlink(0)},
            1e9, sim::FlowTag::kForeground, nullptr);
    }

    sim::Simulator sim_;
    std::unique_ptr<cluster::Cluster> cluster_;
};

TEST(Monitor, NoiseFreeEstimateConverges)
{
    MonitorRig rig;
    BandwidthMonitor monitor(*rig.cluster_, 2.0);
    EXPECT_DOUBLE_EQ(monitor.measurementNoise(), 0.0);
    rig.startSteadyLoad();
    monitor.start();
    rig.sim_.run(21.0);
    EXPECT_GE(monitor.sampleCount(), 10);
    // Node 2's uplink carries exactly 40 of 100; every sample after
    // the first measures it exactly.
    EXPECT_NEAR(monitor.residualUplink(2), 60.0, 1e-6);
    // Unloaded nodes look fully idle.
    EXPECT_NEAR(monitor.residualUplink(0), 100.0, 1e-6);
    monitor.stop();
}

TEST(Monitor, NoisyEstimateStaysWithinBound)
{
    MonitorRig rig;
    BandwidthMonitor monitor(*rig.cluster_, 2.0);
    const double f = 0.2;
    monitor.setMeasurementNoise(f, 1234);
    EXPECT_DOUBLE_EQ(monitor.measurementNoise(), f);
    rig.startSteadyLoad();
    monitor.start();

    // Sample for a while, checking the estimate after every period:
    // true usage is 40, so the estimate must stay within f * 40 of
    // the true residual of 60.
    double worst = 0.0;
    bool saw_error = false;
    for (int i = 0; i < 50; ++i) {
        rig.sim_.run(rig.sim_.now() + 2.0);
        double err = std::abs(monitor.residualUplink(2) - 60.0);
        worst = std::max(worst, err);
        if (err > 1e-9)
            saw_error = true;
    }
    EXPECT_LE(worst, f * 40.0 + 1e-6);
    // The noise must actually perturb the estimate.
    EXPECT_TRUE(saw_error);
    // Idle links are unaffected (noise scales usage, and 0 usage
    // stays 0).
    EXPECT_NEAR(monitor.residualUplink(0), 100.0, 1e-6);
    monitor.stop();
}

TEST(Monitor, NoiseIsDeterministicPerSeed)
{
    auto run_once = [](uint64_t seed) {
        MonitorRig rig;
        BandwidthMonitor monitor(*rig.cluster_, 2.0);
        monitor.setMeasurementNoise(0.3, seed);
        rig.startSteadyLoad();
        monitor.start();
        rig.sim_.run(9.0);
        double residual = monitor.residualUplink(2);
        monitor.stop();
        return residual;
    };
    EXPECT_DOUBLE_EQ(run_once(7), run_once(7));
    EXPECT_NE(run_once(7), run_once(8));
}

TEST(Monitor, EstimatesAreStaleBetweenSamples)
{
    MonitorRig rig;
    BandwidthMonitor monitor(*rig.cluster_, 5.0);
    monitor.start();
    // Let one idle sample land at t=5, then start the load at t=6.
    rig.sim_.run(6.0);
    rig.startSteadyLoad();
    rig.sim_.run(9.0);
    // The load is live but unobserved until the t=10 sample.
    EXPECT_NEAR(monitor.residualUplink(2), 100.0, 1e-6);
    rig.sim_.run(12.0);
    // Sampled at t=10: 4 s of load spread over the 5 s window.
    EXPECT_LT(monitor.residualUplink(2), 100.0 - 20.0);
    monitor.stop();
}

TEST(Monitor, RejectsBadNoiseFraction)
{
    MonitorRig rig;
    BandwidthMonitor monitor(*rig.cluster_, 2.0);
    EXPECT_DEATH(monitor.setMeasurementNoise(-0.1, 1), "noise");
    EXPECT_DEATH(monitor.setMeasurementNoise(1.0, 1), "noise");
}

} // namespace
} // namespace repair
} // namespace chameleon
