/**
 * @file
 * Tests for repair-plan construction and algebra: topology builders,
 * validation, byte-exact plan evaluation for every topology and code,
 * Algorithm 1 (establishPaths) properties, and the ChameleonEC task
 * dispatcher (planChunk) behavior under heterogeneous bandwidth.
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "cluster/stripe_manager.hh"
#include "ec/factory.hh"
#include "repair/chameleon_planner.hh"
#include "repair/plan.hh"
#include "util/rng.hh"

namespace chameleon {
namespace repair {
namespace {

std::vector<PlanSource>
sourcesFor(const cluster::StripeManager &stripes,
           const ec::RepairSpec &spec, StripeId stripe)
{
    std::vector<PlanSource> out;
    for (const auto &read : spec.reads) {
        PlanSource src;
        src.node = stripes.location(stripe, read.helper);
        src.chunk = read.helper;
        src.coeff = read.coeff;
        src.fraction = read.fraction;
        out.push_back(src);
    }
    return out;
}

class PlanTopologyTest : public ::testing::Test
{
  protected:
    PlanTopologyTest()
        : code_(ec::makeRs(6, 3)), stripes_(code_, 12)
    {
        Rng rng(5);
        stripes_.createStripes(4, rng);
    }

    std::shared_ptr<const ec::ErasureCode> code_;
    cluster::StripeManager stripes_;
};

TEST_F(PlanTopologyTest, StarShape)
{
    Rng rng(1);
    auto avail = stripes_.availableChunks(0);
    avail.erase(std::remove(avail.begin(), avail.end(), 2),
                avail.end());
    auto spec = code_->makeRepairSpec(2, avail, rng);
    auto dest = stripes_.candidateDestinations(0).front();
    auto plan = buildStarPlan(0, 2, dest, sourcesFor(stripes_, spec, 0),
                              true);
    EXPECT_EQ(plan.depth(), 1);
    for (const auto &src : plan.sources)
        EXPECT_EQ(src.parent, kToDestination);
    EXPECT_EQ(plan.childrenOf(kToDestination).size(),
              plan.sources.size());
}

TEST_F(PlanTopologyTest, PprTreeShape)
{
    Rng rng(2);
    auto avail = stripes_.availableChunks(0);
    avail.erase(std::remove(avail.begin(), avail.end(), 0),
                avail.end());
    auto spec = code_->makeRepairSpec(0, avail, rng);
    auto dest = stripes_.candidateDestinations(0).front();
    auto plan = buildPprPlan(0, 0, dest, sourcesFor(stripes_, spec, 0));
    // Exactly one source uploads to the destination; depth is
    // ceil(log2(k)) + 1.
    EXPECT_EQ(plan.childrenOf(kToDestination).size(), 1u);
    EXPECT_EQ(plan.depth(), 4); // k=6: 3 pairing rounds + final hop
}

TEST_F(PlanTopologyTest, ChainShape)
{
    Rng rng(3);
    auto avail = stripes_.availableChunks(1);
    avail.erase(std::remove(avail.begin(), avail.end(), 4),
                avail.end());
    auto spec = code_->makeRepairSpec(4, avail, rng);
    auto dest = stripes_.candidateDestinations(1).front();
    auto plan =
        buildChainPlan(1, 4, dest, sourcesFor(stripes_, spec, 1));
    EXPECT_EQ(plan.depth(), static_cast<int>(plan.sources.size()));
    EXPECT_EQ(plan.childrenOf(kToDestination).size(), 1u);
    // Every non-terminal source has exactly one child except the
    // chain head.
    int heads = 0;
    for (int i = 0; i < static_cast<int>(plan.sources.size()); ++i) {
        auto children = plan.childrenOf(i);
        EXPECT_LE(children.size(), 1u);
        heads += children.empty();
    }
    EXPECT_EQ(heads, 1);
}

// Evaluate all three topologies byte-exactly for RS and LRC.
TEST(PlanEvaluation, AllTopologiesReconstructRs)
{
    auto code = ec::makeRs(6, 3);
    cluster::StripeManager stripes(code, 12);
    Rng rng(7);
    stripes.createStripes(1, rng);

    // Real data for the stripe.
    std::vector<ec::Buffer> data;
    for (int i = 0; i < code->k(); ++i) {
        ec::Buffer b(128);
        for (auto &v : b)
            v = static_cast<uint8_t>(rng.below(256));
        data.push_back(std::move(b));
    }
    auto parity = code->encode(data);
    std::vector<ec::Buffer> chunks = data;
    for (auto &p : parity)
        chunks.push_back(std::move(p));

    for (ChunkIndex failed = 0; failed < code->n(); ++failed) {
        std::vector<ChunkIndex> avail;
        for (ChunkIndex c = 0; c < code->n(); ++c)
            if (c != failed)
                avail.push_back(c);
        auto spec = code->makeRepairSpec(failed, avail, rng);
        auto dest = stripes.candidateDestinations(0).front();
        auto sources = sourcesFor(stripes, spec, 0);

        auto star = buildStarPlan(0, failed, dest, sources, true);
        auto tree = buildPprPlan(0, failed, dest, sources);
        auto chain = buildChainPlan(0, failed, dest, sources);
        EXPECT_EQ(evaluatePlan(star, chunks),
                  chunks[static_cast<std::size_t>(failed)]);
        EXPECT_EQ(evaluatePlan(tree, chunks),
                  chunks[static_cast<std::size_t>(failed)]);
        EXPECT_EQ(evaluatePlan(chain, chunks),
                  chunks[static_cast<std::size_t>(failed)]);
    }
}

TEST(PlanEvaluation, LrcLocalRepairThroughTree)
{
    auto code = ec::makeLrc(8, 2, 2);
    cluster::StripeManager stripes(code, 14);
    Rng rng(9);
    stripes.createStripes(1, rng);

    std::vector<ec::Buffer> data;
    for (int i = 0; i < code->k(); ++i) {
        ec::Buffer b(64);
        for (auto &v : b)
            v = static_cast<uint8_t>(rng.below(256));
        data.push_back(std::move(b));
    }
    auto parity = code->encode(data);
    std::vector<ec::Buffer> chunks = data;
    for (auto &p : parity)
        chunks.push_back(std::move(p));

    auto avail = stripes.availableChunks(0);
    avail.erase(std::remove(avail.begin(), avail.end(), 3),
                avail.end());
    auto spec = code->makeRepairSpec(3, avail, rng);
    auto dest = stripes.candidateDestinations(0).front();
    auto plan = buildPprPlan(0, 3, dest, sourcesFor(stripes, spec, 0));
    EXPECT_EQ(evaluatePlan(plan, chunks), chunks[3]);
}

TEST(PlanValidation, RejectsCycle)
{
    ChunkRepairPlan plan;
    plan.destination = 9;
    PlanSource a, b;
    a.node = 0;
    a.parent = 1;
    b.node = 1;
    b.parent = 0;
    plan.sources = {a, b};
    EXPECT_DEATH(plan.validate(), "cycle");
}

TEST(PlanValidation, RejectsDuplicateNode)
{
    ChunkRepairPlan plan;
    plan.destination = 9;
    PlanSource a, b;
    a.node = 3;
    b.node = 3;
    plan.sources = {a, b};
    EXPECT_DEATH(plan.validate(), "twice");
}

TEST(PlanValidation, RejectsIndirectNonCombinable)
{
    ChunkRepairPlan plan;
    plan.destination = 9;
    plan.combinable = false;
    PlanSource a, b;
    a.node = 0;
    a.parent = 1;
    b.node = 1;
    plan.sources = {a, b};
    EXPECT_DEATH(plan.validate(), "star");
}

TEST(PlanTraffic, CountsFractions)
{
    ChunkRepairPlan plan;
    plan.destination = 5;
    PlanSource a, b, c;
    a.node = 0;
    a.fraction = 0.5;
    b.node = 1;
    b.fraction = 0.5;
    c.node = 2;
    c.fraction = 1.0;
    plan.sources = {a, b, c};
    EXPECT_DOUBLE_EQ(plan.trafficChunks(), 2.0);
}

// ------------------------------------------------- Algorithm 1

void
checkPathsValid(const std::vector<int> &downloads, int dest_downloads,
                const std::vector<int> &parent)
{
    const int k = static_cast<int>(downloads.size());
    ASSERT_EQ(parent.size(), downloads.size());
    // Uploads into each node equal its download tasks.
    std::vector<int> in(static_cast<std::size_t>(k), 0);
    int to_dest = 0;
    for (int i = 0; i < k; ++i) {
        int p = parent[static_cast<std::size_t>(i)];
        if (p == kToDestination) {
            ++to_dest;
        } else {
            ASSERT_GE(p, 0);
            ASSERT_LT(p, k);
            ASSERT_NE(p, i);
            in[static_cast<std::size_t>(p)]++;
        }
    }
    EXPECT_EQ(to_dest, dest_downloads);
    for (int i = 0; i < k; ++i)
        EXPECT_EQ(in[static_cast<std::size_t>(i)],
                  downloads[static_cast<std::size_t>(i)])
            << "node " << i;
    // Acyclic: walk each source to the root.
    for (int i = 0; i < k; ++i) {
        int cur = i, steps = 0;
        while (parent[static_cast<std::size_t>(cur)] != kToDestination) {
            cur = parent[static_cast<std::size_t>(cur)];
            ASSERT_LE(++steps, k) << "cycle detected";
        }
    }
}

TEST(EstablishPaths, PaperExample)
{
    // Figure 8/9: four sources, downloads (0, 2, 1, 0) at sources
    // N1, N3, N4, N7 and one at the destination.
    std::vector<int> downloads = {0, 2, 1, 0};
    auto parent = establishPaths(downloads, 1);
    checkPathsValid(downloads, 1, parent);
}

TEST(EstablishPaths, AllToDestinationWhenNoRelays)
{
    std::vector<int> downloads = {0, 0, 0, 0};
    auto parent = establishPaths(downloads, 4);
    for (int p : parent)
        EXPECT_EQ(p, kToDestination);
}

TEST(EstablishPaths, ChainDistribution)
{
    // Each source i>0 has one download: a chain must emerge.
    std::vector<int> downloads = {0, 1, 1, 1, 1};
    auto parent = establishPaths(downloads, 1);
    checkPathsValid(downloads, 1, parent);
}

TEST(EstablishPaths, RandomizedProperty)
{
    Rng rng(31);
    for (int trial = 0; trial < 500; ++trial) {
        int k = 2 + static_cast<int>(rng.below(14));
        // Random distribution: dest >= 1, total = k.
        int dest = 1 + static_cast<int>(rng.below(
            static_cast<uint64_t>(k)));
        std::vector<int> downloads(static_cast<std::size_t>(k), 0);
        int remaining = k - dest;
        while (remaining > 0) {
            auto i = rng.below(static_cast<uint64_t>(k));
            downloads[i]++;
            --remaining;
        }
        auto parent = establishPaths(downloads, dest);
        checkPathsValid(downloads, dest, parent);
    }
}

// ------------------------------------------------- planChunk

PlannerChunkInput
rsInput(int k, int m, int nodes)
{
    PlannerChunkInput input;
    input.stripe = 0;
    input.failed = 0;
    input.required = k;
    input.fixedSet = false;
    input.combinable = true;
    // Helpers on nodes 1..k+m-1; failed chunk was on node 0.
    for (int i = 1; i < k + m; ++i) {
        input.helperChunks.push_back(i);
        input.helperNodes.push_back(i);
        input.fractions.push_back(1.0);
    }
    for (int i = k + m; i < nodes; ++i)
        input.destCandidates.push_back(i);
    return input;
}

TEST(PlanChunk, UniformBandwidthProducesValidPlan)
{
    auto state = PlannerState::make(20, 64.0);
    std::fill(state.bandUp.begin(), state.bandUp.end(), 100.0);
    std::fill(state.bandDown.begin(), state.bandDown.end(), 100.0);
    auto input = rsInput(10, 4, 20);
    auto planned = planChunk(state, input);
    ASSERT_TRUE(planned.has_value());
    planned->plan.validate();
    EXPECT_EQ(planned->plan.sources.size(), 10u);
    EXPECT_GT(planned->estimatedTime, 0.0);
    EXPECT_EQ(planned->edgeExpectation.size(), 10u);
}

TEST(PlanChunk, AvoidsBandwidthPoorDestination)
{
    auto state = PlannerState::make(20, 64.0);
    std::fill(state.bandUp.begin(), state.bandUp.end(), 100.0);
    std::fill(state.bandDown.begin(), state.bandDown.end(), 100.0);
    auto input = rsInput(10, 4, 20);
    // Starve node 14's downlink; it should not be the destination.
    state.bandDown[14] = 1.0;
    auto planned = planChunk(state, input);
    ASSERT_TRUE(planned.has_value());
    EXPECT_NE(planned->plan.destination, 14);
}

TEST(PlanChunk, AvoidsBandwidthPoorHelper)
{
    auto state = PlannerState::make(20, 64.0);
    std::fill(state.bandUp.begin(), state.bandUp.end(), 100.0);
    std::fill(state.bandDown.begin(), state.bandDown.end(), 100.0);
    // Node 5 has a starved uplink; with 13 candidates and 10 slots,
    // it should be left out.
    state.bandUp[5] = 1.0;
    auto input = rsInput(10, 4, 20);
    auto planned = planChunk(state, input);
    ASSERT_TRUE(planned.has_value());
    for (const auto &src : planned->plan.sources)
        EXPECT_NE(src.node, 5);
}

TEST(PlanChunk, RichSourceBandwidthCreatesRelays)
{
    auto state = PlannerState::make(20, 64.0);
    std::fill(state.bandUp.begin(), state.bandUp.end(), 100.0);
    std::fill(state.bandDown.begin(), state.bandDown.end(), 100.0);
    // Destination downlink is the scarce resource: downloads should
    // spread to relay sources instead of all landing on it.
    for (std::size_t i = 14; i < 20; ++i)
        state.bandDown[i] = 10.0;
    auto input = rsInput(10, 4, 20);
    auto planned = planChunk(state, input);
    ASSERT_TRUE(planned.has_value());
    int relays = 0;
    for (int i = 0; i < 10; ++i)
        relays += !planned->plan.childrenOf(i).empty();
    EXPECT_GT(relays, 0) << "expected relay sources under a scarce "
                            "destination downlink";
}

TEST(PlanChunk, TaskCountsAccumulateAcrossChunks)
{
    auto state = PlannerState::make(20, 64.0);
    std::fill(state.bandUp.begin(), state.bandUp.end(), 100.0);
    std::fill(state.bandDown.begin(), state.bandDown.end(), 100.0);
    auto input = rsInput(10, 4, 20);
    auto first = planChunk(state, input);
    ASSERT_TRUE(first.has_value());
    int total_up = 0, total_down = 0;
    for (int t : state.taskUp)
        total_up += t;
    for (int t : state.taskDown)
        total_down += t;
    EXPECT_EQ(total_up, 10);
    EXPECT_EQ(total_down, 10);
    auto second = planChunk(state, input);
    ASSERT_TRUE(second.has_value());
    // Estimated time grows as the phase fills.
    EXPECT_GE(second->estimatedTime, first->estimatedTime);
}

TEST(PlanChunk, SuccessiveChunksSpreadDestinations)
{
    auto state = PlannerState::make(20, 64.0);
    std::fill(state.bandUp.begin(), state.bandUp.end(), 100.0);
    std::fill(state.bandDown.begin(), state.bandDown.end(), 100.0);
    auto input = rsInput(10, 4, 20);
    std::set<NodeId> dests;
    for (int i = 0; i < 5; ++i) {
        auto planned = planChunk(state, input);
        ASSERT_TRUE(planned.has_value());
        dests.insert(planned->plan.destination);
    }
    // Minimum-time-first selection rotates under accumulating load.
    EXPECT_GT(dests.size(), 1u);
}

TEST(PlanChunk, FixedSetUsesAllCandidates)
{
    auto state = PlannerState::make(10, 64.0);
    std::fill(state.bandUp.begin(), state.bandUp.end(), 100.0);
    std::fill(state.bandDown.begin(), state.bandDown.end(), 100.0);
    PlannerChunkInput input;
    input.required = 4;
    input.fixedSet = true;
    input.combinable = true;
    for (int i = 1; i <= 4; ++i) {
        input.helperChunks.push_back(i);
        input.helperNodes.push_back(i);
        input.fractions.push_back(1.0);
    }
    input.destCandidates = {7, 8, 9};
    auto planned = planChunk(state, input);
    ASSERT_TRUE(planned.has_value());
    std::set<NodeId> nodes;
    for (const auto &src : planned->plan.sources)
        nodes.insert(src.node);
    EXPECT_EQ(nodes, (std::set<NodeId>{1, 2, 3, 4}));
}

TEST(PlanChunk, NonCombinableIsStar)
{
    auto state = PlannerState::make(10, 64.0);
    std::fill(state.bandUp.begin(), state.bandUp.end(), 100.0);
    std::fill(state.bandDown.begin(), state.bandDown.end(), 100.0);
    PlannerChunkInput input;
    input.required = 3;
    input.fixedSet = true;
    input.combinable = false;
    for (int i = 1; i <= 3; ++i) {
        input.helperChunks.push_back(i);
        input.helperNodes.push_back(i);
        input.fractions.push_back(0.5);
    }
    input.destCandidates = {5, 6};
    auto planned = planChunk(state, input);
    ASSERT_TRUE(planned.has_value());
    EXPECT_FALSE(planned->plan.combinable);
    for (const auto &src : planned->plan.sources) {
        EXPECT_EQ(src.parent, kToDestination);
        EXPECT_DOUBLE_EQ(src.fraction, 0.5);
    }
}

TEST(PlanChunk, NoDestinationReturnsNullopt)
{
    auto state = PlannerState::make(10, 64.0);
    std::fill(state.bandUp.begin(), state.bandUp.end(), 100.0);
    std::fill(state.bandDown.begin(), state.bandDown.end(), 100.0);
    auto input = rsInput(4, 2, 10);
    input.destCandidates.clear();
    EXPECT_FALSE(planChunk(state, input).has_value());
}

} // namespace
} // namespace repair
} // namespace chameleon
