/**
 * @file
 * Tests for the erasure-code layer: encode/decode round trips, MDS
 * exhaustiveness for RS, local-group repair for LRC, sub-chunk repair
 * for Butterfly, and the repair-spec algebra every scheduler relies
 * on (including relay partial combination, i.e. "tunability").
 */

#include <algorithm>
#include <functional>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ec/butterfly_code.hh"
#include "ec/factory.hh"
#include "ec/lrc_code.hh"
#include "ec/replicated_code.hh"
#include "ec/rs_code.hh"
#include "util/rng.hh"

namespace chameleon {
namespace ec {
namespace {

Buffer
randomChunk(Rng &rng, std::size_t size)
{
    Buffer b(size);
    for (auto &v : b)
        v = static_cast<uint8_t>(rng.below(256));
    return b;
}

std::vector<Buffer>
randomStripe(Rng &rng, const ErasureCode &code, std::size_t size)
{
    std::vector<Buffer> data;
    for (int i = 0; i < code.k(); ++i)
        data.push_back(randomChunk(rng, size));
    auto parity = code.encode(data);
    std::vector<Buffer> chunks = data;
    for (auto &p : parity)
        chunks.push_back(std::move(p));
    return chunks;
}

std::vector<ChunkIndex>
survivorsExcept(const ErasureCode &code,
                std::initializer_list<ChunkIndex> failed)
{
    std::vector<ChunkIndex> out;
    for (ChunkIndex i = 0; i < code.n(); ++i)
        if (std::find(failed.begin(), failed.end(), i) == failed.end())
            out.push_back(i);
    return out;
}

/** Verifies a spec reconstructs the lost chunk bit-exactly. */
void
checkRepair(const ErasureCode &code, const std::vector<Buffer> &chunks,
            const RepairSpec &spec)
{
    std::vector<Buffer> helper_data;
    for (const auto &read : spec.reads)
        helper_data.push_back(
            chunks[static_cast<std::size_t>(read.helper)]);
    Buffer repaired = code.repairCompute(spec, helper_data);
    EXPECT_EQ(repaired, chunks[static_cast<std::size_t>(spec.failed)])
        << code.name() << " failed chunk " << spec.failed;
}

// ---------------------------------------------------------------- RS

class RsParamTest
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(RsParamTest, SingleFailureRepairAllPositions)
{
    auto [k, m] = GetParam();
    RsCode code(k, m);
    Rng rng(100 + k * 17 + m);
    auto chunks = randomStripe(rng, code, 128);

    for (ChunkIndex failed = 0; failed < code.n(); ++failed) {
        auto avail = survivorsExcept(code, {failed});
        auto spec = code.makeRepairSpec(failed, avail, rng);
        EXPECT_TRUE(spec.combinable);
        EXPECT_LE(spec.reads.size(), static_cast<std::size_t>(k));
        checkRepair(code, chunks, spec);
    }
}

TEST_P(RsParamTest, DecodeAllFailurePatternsUpToM)
{
    auto [k, m] = GetParam();
    RsCode code(k, m);
    Rng rng(200 + k + m);
    auto chunks = randomStripe(rng, code, 64);

    // Exhaustive over m-subsets when cheap, else random patterns.
    for (int trial = 0; trial < 60; ++trial) {
        auto damaged = chunks;
        std::vector<ChunkIndex> failed;
        int fcount = 1 + static_cast<int>(rng.below(
            static_cast<uint64_t>(m)));
        while (static_cast<int>(failed.size()) < fcount) {
            ChunkIndex f = static_cast<ChunkIndex>(
                rng.below(static_cast<uint64_t>(code.n())));
            if (std::find(failed.begin(), failed.end(), f) ==
                failed.end()) {
                failed.push_back(f);
                damaged[static_cast<std::size_t>(f)].clear();
            }
        }
        ASSERT_TRUE(code.decode(damaged));
        EXPECT_EQ(damaged, chunks);
    }
}

TEST_P(RsParamTest, TooManyFailuresRejected)
{
    auto [k, m] = GetParam();
    RsCode code(k, m);
    Rng rng(300 + k + m);
    auto chunks = randomStripe(rng, code, 32);
    // Fail m+1 chunks.
    for (int i = 0; i <= m; ++i)
        chunks[static_cast<std::size_t>(i)].clear();
    EXPECT_FALSE(code.decode(chunks));
}

INSTANTIATE_TEST_SUITE_P(
    Paradigms, RsParamTest,
    ::testing::Values(std::pair{4, 2}, std::pair{6, 3}, std::pair{8, 3},
                      std::pair{10, 4}, std::pair{12, 4},
                      std::pair{2, 2}),
    [](const auto &info) {
        return "RS_" + std::to_string(info.param.first) + "_" +
               std::to_string(info.param.second);
    });

TEST(RsCode, RandomHelperSelectionVaries)
{
    RsCode code(10, 4);
    Rng rng(7);
    auto avail = survivorsExcept(code, {0});
    auto s1 = code.makeRepairSpec(0, avail, rng);
    bool differs = false;
    for (int i = 0; i < 10 && !differs; ++i) {
        auto s2 = code.makeRepairSpec(0, avail, rng);
        std::vector<ChunkIndex> h1, h2;
        for (auto &r : s1.reads)
            h1.push_back(r.helper);
        for (auto &r : s2.reads)
            h2.push_back(r.helper);
        std::sort(h1.begin(), h1.end());
        std::sort(h2.begin(), h2.end());
        differs = (h1 != h2);
    }
    EXPECT_TRUE(differs);
}

TEST(RsCode, HelperPoolIsAllSurvivors)
{
    RsCode code(10, 4);
    auto avail = survivorsExcept(code, {3});
    auto pool = code.helperPool(3, avail);
    EXPECT_EQ(pool.candidates.size(), avail.size());
    EXPECT_EQ(pool.required, 10);
    EXPECT_FALSE(pool.fixedSet);
    EXPECT_TRUE(pool.combinable);
}

TEST(RsCode, SpecForArbitraryKSubset)
{
    RsCode code(10, 4);
    Rng rng(11);
    auto chunks = randomStripe(rng, code, 64);
    auto avail = survivorsExcept(code, {5});
    // Specific subset: skip the first three survivors.
    std::vector<ChunkIndex> helpers(avail.begin() + 3,
                                    avail.begin() + 13);
    auto spec = code.specFor(5, helpers);
    ASSERT_TRUE(spec.has_value());
    checkRepair(code, chunks, *spec);
}

TEST(RsCode, SpecForTooFewHelpersFails)
{
    RsCode code(10, 4);
    std::vector<ChunkIndex> helpers = {1, 2, 3};
    EXPECT_FALSE(code.specFor(0, helpers).has_value());
}

TEST(RsCode, PartialCombinationAssociativity)
{
    // The "tunability" property: summing partial relay combinations
    // in any grouping equals the direct decode.
    RsCode code(6, 3);
    Rng rng(13);
    auto chunks = randomStripe(rng, code, 256);
    auto avail = survivorsExcept(code, {2});
    auto spec = code.makeRepairSpec(2, avail, rng);
    ASSERT_GE(spec.reads.size(), 3u);

    const std::size_t size = 256;
    // Grouping A: ((h0+h1)+(h2+...)) — two relays then destination.
    Buffer partial1(size, 0), partial2(size, 0);
    for (std::size_t i = 0; i < spec.reads.size(); ++i) {
        Buffer &target = (i < spec.reads.size() / 2) ? partial1
                                                     : partial2;
        gf::mulAddRegion(
            std::span<uint8_t>(target),
            std::span<const uint8_t>(
                chunks[static_cast<std::size_t>(spec.reads[i].helper)]),
            spec.reads[i].coeff);
    }
    Buffer combined(size, 0);
    gf::addRegion(std::span<uint8_t>(combined),
                  std::span<const uint8_t>(partial1));
    gf::addRegion(std::span<uint8_t>(combined),
                  std::span<const uint8_t>(partial2));
    EXPECT_EQ(combined, chunks[2]);
}

// --------------------------------------------------------------- LRC

class LrcParamTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(LrcParamTest, DataChunkRepairUsesLocalGroup)
{
    auto [k, l, m] = GetParam();
    LrcCode code(k, l, m);
    Rng rng(400 + k);
    auto chunks = randomStripe(rng, code, 64);

    for (ChunkIndex failed = 0; failed < k; ++failed) {
        auto avail = survivorsExcept(code, {failed});
        auto spec = code.makeRepairSpec(failed, avail, rng);
        // Local repair reads exactly groupSize chunks.
        EXPECT_EQ(spec.reads.size(),
                  static_cast<std::size_t>(code.groupSize()));
        for (const auto &read : spec.reads) {
            int hg = code.groupOf(read.helper);
            EXPECT_EQ(hg, code.groupOf(failed));
        }
        checkRepair(code, chunks, spec);
    }
}

TEST_P(LrcParamTest, LocalParityRepair)
{
    auto [k, l, m] = GetParam();
    LrcCode code(k, l, m);
    Rng rng(500 + k);
    auto chunks = randomStripe(rng, code, 64);
    for (int g = 0; g < l; ++g) {
        ChunkIndex failed = static_cast<ChunkIndex>(k + g);
        auto avail = survivorsExcept(code, {failed});
        auto spec = code.makeRepairSpec(failed, avail, rng);
        EXPECT_EQ(spec.reads.size(),
                  static_cast<std::size_t>(code.groupSize()));
        checkRepair(code, chunks, spec);
    }
}

TEST_P(LrcParamTest, GlobalParityRepairReadsK)
{
    auto [k, l, m] = GetParam();
    LrcCode code(k, l, m);
    Rng rng(600 + k);
    auto chunks = randomStripe(rng, code, 64);
    for (int j = 0; j < m; ++j) {
        ChunkIndex failed = static_cast<ChunkIndex>(k + l + j);
        auto avail = survivorsExcept(code, {failed});
        auto spec = code.makeRepairSpec(failed, avail, rng);
        EXPECT_EQ(spec.reads.size(), static_cast<std::size_t>(k));
        checkRepair(code, chunks, spec);
    }
}

TEST_P(LrcParamTest, DegradedGroupFallsBack)
{
    auto [k, l, m] = GetParam();
    LrcCode code(k, l, m);
    Rng rng(700 + k);
    auto chunks = randomStripe(rng, code, 64);
    // Fail a data chunk plus its local parity: local repair is
    // impossible, global fallback must still work.
    ChunkIndex failed = 0;
    ChunkIndex lp = static_cast<ChunkIndex>(k + code.groupOf(failed));
    auto avail = survivorsExcept(code, {failed, lp});
    auto spec = code.makeRepairSpec(failed, avail, rng);
    checkRepair(code, chunks, spec);
}

TEST_P(LrcParamTest, DecodeMultiFailurePatterns)
{
    auto [k, l, m] = GetParam();
    LrcCode code(k, l, m);
    Rng rng(800 + k);
    auto chunks = randomStripe(rng, code, 32);

    // One failure per local group plus one global parity: a pattern
    // LRC is designed to handle.
    auto damaged = chunks;
    for (int g = 0; g < std::min(l, m); ++g)
        damaged[static_cast<std::size_t>(g * code.groupSize())].clear();
    damaged[static_cast<std::size_t>(k + l)].clear();
    ASSERT_TRUE(code.decode(damaged));
    EXPECT_EQ(damaged, chunks);
}

INSTANTIATE_TEST_SUITE_P(
    Paradigms, LrcParamTest,
    ::testing::Values(std::tuple{4, 2, 2}, std::tuple{8, 2, 2},
                      std::tuple{10, 2, 2}, std::tuple{12, 3, 3}),
    [](const auto &info) {
        return "LRC_" + std::to_string(std::get<0>(info.param)) + "_" +
               std::to_string(std::get<1>(info.param)) + "_" +
               std::to_string(std::get<2>(info.param));
    });

TEST(LrcCode, HelperPoolLocalGroupIsFixed)
{
    LrcCode code(8, 2, 2);
    auto avail = survivorsExcept(code, {0});
    auto pool = code.helperPool(0, avail);
    EXPECT_TRUE(pool.fixedSet);
    EXPECT_EQ(pool.required, code.groupSize());
    EXPECT_EQ(pool.candidates.size(),
              static_cast<std::size_t>(code.groupSize()));
}

TEST(LrcCode, RepairTrafficSavingsVsRs)
{
    // The motivating property: LRC single-data-chunk repair reads
    // fewer chunks than RS with the same k.
    LrcCode lrc(10, 2, 2);
    RsCode rs(10, 4);
    Rng rng(15);
    auto lrc_avail = survivorsExcept(lrc, {0});
    auto rs_avail = survivorsExcept(rs, {0});
    auto lrc_spec = lrc.makeRepairSpec(0, lrc_avail, rng);
    auto rs_spec = rs.makeRepairSpec(0, rs_avail, rng);
    EXPECT_EQ(lrc_spec.reads.size(), 5u);
    EXPECT_EQ(rs_spec.reads.size(), 10u);
}

// --------------------------------------------------------- Butterfly

TEST(Butterfly, EncodeDecodeRoundTripAllSinglePatterns)
{
    ButterflyCode code;
    Rng rng(21);
    auto chunks = randomStripe(rng, code, 128);
    for (ChunkIndex failed = 0; failed < 4; ++failed) {
        auto damaged = chunks;
        damaged[static_cast<std::size_t>(failed)].clear();
        ASSERT_TRUE(code.decode(damaged));
        EXPECT_EQ(damaged, chunks) << "failed=" << failed;
    }
}

TEST(Butterfly, DecodeAllDoublePatterns)
{
    ButterflyCode code;
    Rng rng(22);
    auto chunks = randomStripe(rng, code, 64);
    for (ChunkIndex a = 0; a < 4; ++a) {
        for (ChunkIndex b = a + 1; b < 4; ++b) {
            auto damaged = chunks;
            damaged[static_cast<std::size_t>(a)].clear();
            damaged[static_cast<std::size_t>(b)].clear();
            ASSERT_TRUE(code.decode(damaged))
                << "pattern " << a << "," << b;
            EXPECT_EQ(damaged, chunks);
        }
    }
}

TEST(Butterfly, TripleFailureRejected)
{
    ButterflyCode code;
    Rng rng(23);
    auto chunks = randomStripe(rng, code, 64);
    chunks[0].clear();
    chunks[1].clear();
    chunks[2].clear();
    EXPECT_FALSE(code.decode(chunks));
}

TEST(Butterfly, SingleRepairIsSubChunk)
{
    ButterflyCode code;
    Rng rng(24);
    auto chunks = randomStripe(rng, code, 256);
    for (ChunkIndex failed = 0; failed < 4; ++failed) {
        auto avail = survivorsExcept(code, {failed});
        auto spec = code.makeRepairSpec(failed, avail, rng);
        EXPECT_FALSE(spec.combinable);
        double traffic = 0.0;
        for (const auto &read : spec.reads)
            traffic += read.fraction;
        if (failed < 3) {
            // Data nodes and P repair with 1.5 chunks of traffic.
            EXPECT_DOUBLE_EQ(traffic, 1.5) << "failed=" << failed;
        } else {
            // The butterfly parity needs 2.0 (systematic-MSR limit).
            EXPECT_DOUBLE_EQ(traffic, 2.0);
        }
        checkRepair(code, chunks, spec);
    }
}

TEST(Butterfly, RepairBeatsRsTraffic)
{
    // Butterfly's raison d'etre: 1.5 vs RS(2,2)'s 2.0 chunks.
    ButterflyCode butterfly;
    RsCode rs(2, 2);
    Rng rng(25);
    auto b_avail = survivorsExcept(butterfly, {0});
    auto r_avail = survivorsExcept(rs, {0});
    auto b_spec = butterfly.makeRepairSpec(0, b_avail, rng);
    auto r_spec = rs.makeRepairSpec(0, r_avail, rng);
    double b_traffic = 0.0, r_traffic = 0.0;
    for (auto &read : b_spec.reads)
        b_traffic += read.fraction;
    for (auto &read : r_spec.reads)
        r_traffic += read.fraction;
    EXPECT_LT(b_traffic, r_traffic);
}

TEST(Butterfly, EncodeRejectsOddChunkSize)
{
    ButterflyCode code;
    std::vector<Buffer> data = {Buffer(7, 1), Buffer(7, 2)};
    EXPECT_DEATH(code.encode(data), "even chunk size");
}

// ------------------------------------------------------------ Factory

TEST(Factory, ProducesWorkingCodes)
{
    Rng rng(31);
    auto rs = makeRs(6, 3);
    auto lrc = makeLrc(8, 2, 2);
    auto butterfly = makeButterfly();
    for (const auto &code : {rs, lrc, butterfly}) {
        auto chunks = randomStripe(rng, *code, 64);
        auto avail = survivorsExcept(*code, {1});
        auto spec = code->makeRepairSpec(1, avail, rng);
        checkRepair(*code, chunks, spec);
    }
}

TEST(Factory, Names)
{
    EXPECT_EQ(makeRs(10, 4)->name(), "RS(10,4)");
    EXPECT_EQ(makeLrc(10, 2, 2)->name(), "LRC(10,2,2)");
    EXPECT_EQ(makeButterfly()->name(), "Butterfly(4,2)");
}

} // namespace
} // namespace ec
} // namespace chameleon

namespace chameleon {
namespace ec {
namespace {

TEST(Replication, EncodeProducesIdenticalCopies)
{
    ReplicatedCode code(3);
    EXPECT_EQ(code.k(), 1);
    EXPECT_EQ(code.n(), 3);
    Rng rng(51);
    std::vector<Buffer> data = {Buffer(64)};
    for (auto &v : data[0])
        v = static_cast<uint8_t>(rng.below(256));
    auto parity = code.encode(data);
    ASSERT_EQ(parity.size(), 2u);
    EXPECT_EQ(parity[0], data[0]);
    EXPECT_EQ(parity[1], data[0]);
}

TEST(Replication, RepairReadsExactlyOneCopy)
{
    ReplicatedCode code(3);
    Rng rng(52);
    std::vector<ChunkIndex> avail = {1, 2};
    auto spec = code.makeRepairSpec(0, avail, rng);
    ASSERT_EQ(spec.reads.size(), 1u);
    EXPECT_EQ(spec.reads[0].coeff, gf::kOne);
    EXPECT_DOUBLE_EQ(spec.reads[0].fraction, 1.0);
}

TEST(Replication, DecodeFromAnySingleSurvivor)
{
    ReplicatedCode code(3);
    Rng rng(53);
    std::vector<Buffer> data = {Buffer(32)};
    for (auto &v : data[0])
        v = static_cast<uint8_t>(rng.below(256));
    auto parity = code.encode(data);
    std::vector<Buffer> chunks = {data[0], parity[0], parity[1]};
    auto damaged = chunks;
    damaged[0].clear();
    damaged[2].clear();
    ASSERT_TRUE(code.decode(damaged));
    EXPECT_EQ(damaged, chunks);
}

TEST(Replication, RepairTrafficBeatsRsButStorageLoses)
{
    // The paper's framing: replication repairs with 1 chunk of
    // traffic (vs k) but costs 3x storage (vs (k+m)/k).
    auto repl = makeReplicated(3);
    auto rs = makeRs(10, 4);
    Rng rng(54);
    std::vector<ChunkIndex> repl_avail = {1, 2};
    auto repl_spec = repl->makeRepairSpec(0, repl_avail, rng);
    std::vector<ChunkIndex> rs_avail;
    for (ChunkIndex c = 1; c < rs->n(); ++c)
        rs_avail.push_back(c);
    auto rs_spec = rs->makeRepairSpec(0, rs_avail, rng);
    EXPECT_EQ(repl_spec.reads.size(), 1u);
    EXPECT_EQ(rs_spec.reads.size(), 10u);
    double repl_overhead = 3.0 / 1.0;
    double rs_overhead = 14.0 / 10.0;
    EXPECT_GT(repl_overhead, rs_overhead);
}

// ------------------------------------ capability queries (ICodec)

/** Registry specs small enough for exhaustive pattern sweeps. */
std::vector<std::string>
sweepSpecs()
{
    return {"rs(4,2)", "rs(6,3)",   "lrc(6,2,2)",
            "lrc(8,2,2,2)", "butterfly", "rep(3)"};
}

/** Calls fn(pattern) for every size-t subset of [0, n). */
void
forEachPattern(int n, int t,
               const std::function<void(std::vector<ChunkIndex> &)> &fn)
{
    std::vector<ChunkIndex> pattern(static_cast<std::size_t>(t));
    std::function<void(int, int)> rec = [&](int start, int depth) {
        if (depth == t) {
            fn(pattern);
            return;
        }
        for (int i = start; i < n; ++i) {
            pattern[static_cast<std::size_t>(depth)] =
                static_cast<ChunkIndex>(i);
            rec(i + 1, depth + 1);
        }
    };
    rec(0, 0);
}

TEST(CodecCapability, CanRepairMatchesDecodeExhaustively)
{
    // canRepair is exactly decode's success predicate, for every
    // registered family and every pattern up to the total parity.
    for (const auto &spec : sweepSpecs()) {
        auto code = makeCode(spec);
        Rng rng(61);
        auto chunks = randomStripe(rng, *code, 64);
        for (int t = 1; t <= code->totalParity(); ++t) {
            forEachPattern(
                code->n(), t, [&](std::vector<ChunkIndex> &pattern) {
                    bool can = code->canRepair(pattern);
                    auto damaged = chunks;
                    for (ChunkIndex c : pattern)
                        damaged[static_cast<std::size_t>(c)].clear();
                    bool decoded = code->decode(damaged);
                    EXPECT_EQ(can, decoded)
                        << spec << " pattern size " << t
                        << " first erased " << pattern[0];
                    if (decoded) {
                        EXPECT_EQ(damaged, chunks) << spec;
                    }
                });
        }
        // One past the total parity can never repair.
        std::vector<ChunkIndex> over;
        for (int i = 0; i <= code->totalParity(); ++i)
            over.push_back(static_cast<ChunkIndex>(i));
        EXPECT_FALSE(code->canRepair(over)) << spec;
    }
}

TEST(CodecCapability, RepairIndicesMinimalAndSufficient)
{
    for (const auto &spec : sweepSpecs()) {
        auto code = makeCode(spec);
        Rng rng(62);
        auto chunks = randomStripe(rng, *code, 64);
        for (ChunkIndex f = 0; f < code->n(); ++f) {
            std::vector<ChunkIndex> erased = {f};
            auto indices = code->repairIndices(erased);
            ASSERT_TRUE(indices.has_value()) << spec;
            // Sorted, duplicate-free survivors.
            EXPECT_TRUE(
                std::is_sorted(indices->begin(), indices->end()));
            EXPECT_EQ(std::adjacent_find(indices->begin(),
                                         indices->end()),
                      indices->end());
            EXPECT_EQ(std::find(indices->begin(), indices->end(), f),
                      indices->end());
            // Sufficient: an explicit spec over exactly this set
            // reconstructs the chunk bit-exactly.
            auto repair = code->specFor(f, *indices);
            ASSERT_TRUE(repair.has_value()) << spec << " chunk " << f;
            checkRepair(*code, chunks, *repair);
            // Irredundant: no member can be dropped.
            for (std::size_t drop = 0; drop < indices->size();
                 ++drop) {
                auto reduced = *indices;
                reduced.erase(reduced.begin() +
                              static_cast<std::ptrdiff_t>(drop));
                EXPECT_FALSE(code->specFor(f, reduced).has_value())
                    << spec << " chunk " << f << " minus helper "
                    << (*indices)[drop];
            }
        }
        // Unrepairable patterns yield nullopt, not a bogus set.
        std::vector<ChunkIndex> over;
        for (int i = 0; i <= code->totalParity(); ++i)
            over.push_back(static_cast<ChunkIndex>(i));
        EXPECT_FALSE(code->repairIndices(over).has_value()) << spec;
    }
}

TEST(CodecCapability, RepairIndicesDeterministic)
{
    for (const auto &spec : sweepSpecs()) {
        auto code = makeCode(spec);
        for (ChunkIndex f = 0; f < code->n(); ++f) {
            std::vector<ChunkIndex> erased = {f};
            EXPECT_EQ(code->repairIndices(erased),
                      code->repairIndices(erased))
                << spec;
        }
    }
}

TEST(CodecCapability, GuaranteedCountMatchesBruteForce)
{
    // guaranteedRepairableCount is the largest f with EVERY size-f
    // pattern repairable; recompute it from canRepair directly.
    for (const auto &spec : sweepSpecs()) {
        auto code = makeCode(spec);
        int brute = 0;
        for (int t = 1; t <= code->totalParity(); ++t) {
            bool all = true;
            forEachPattern(code->n(), t,
                           [&](std::vector<ChunkIndex> &pattern) {
                               if (!code->canRepair(pattern))
                                   all = false;
                           });
            if (!all)
                break;
            brute = t;
        }
        EXPECT_EQ(code->guaranteedRepairableCount(), brute) << spec;
    }
}

// ---------------------------------------------- the codec registry

TEST(CodecRegistry, RegisteredFamiliesEnumerated)
{
    const auto &families = registeredCodecs();
    ASSERT_EQ(families.size(), 4u);
    std::vector<std::string> keys;
    for (const auto &f : families) {
        keys.push_back(f.key);
        EXPECT_FALSE(f.grammar.empty());
        EXPECT_FALSE(f.summary.empty());
    }
    EXPECT_EQ(keys, (std::vector<std::string>{"rs", "lrc",
                                              "butterfly", "rep"}));
}

TEST(CodecRegistry, MatchesTypedConstructorsByteExact)
{
    // Registry-built codes must behave byte-identically to the typed
    // constructors the pre-registry call sites used.
    struct Pair
    {
        std::string spec;
        std::shared_ptr<const ErasureCode> oracle;
    };
    const std::vector<Pair> pairs = {
        {"rs(10,4)", makeRs(10, 4)},
        {"lrc(10,2,2)", makeLrc(10, 2, 2)},
        {"butterfly", makeButterfly()},
    };
    for (const auto &[spec, oracle] : pairs) {
        auto code = makeCode(spec);
        EXPECT_EQ(code->name(), oracle->name());
        ASSERT_EQ(code->n(), oracle->n());
        Rng data_rng(63);
        std::vector<Buffer> data;
        for (int i = 0; i < code->k(); ++i)
            data.push_back(randomChunk(data_rng, 128));
        EXPECT_EQ(code->encode(data), oracle->encode(data)) << spec;
        // Same rng stream -> same helper choice -> same spec.
        std::vector<ChunkIndex> avail;
        for (ChunkIndex c = 1; c < code->n(); ++c)
            avail.push_back(c);
        Rng a(64), b(64);
        auto sa = code->makeRepairSpec(0, avail, a);
        auto sb = oracle->makeRepairSpec(0, avail, b);
        ASSERT_EQ(sa.reads.size(), sb.reads.size()) << spec;
        for (std::size_t i = 0; i < sa.reads.size(); ++i) {
            EXPECT_EQ(sa.reads[i].helper, sb.reads[i].helper);
            EXPECT_EQ(sa.reads[i].coeff, sb.reads[i].coeff);
        }
    }
}

TEST(CodecRegistry, ColonAliasEquivalence)
{
    Rng rng(65);
    auto modern = makeCode("rs(10,4)");
    auto legacy = makeCode("rs:10,4");
    EXPECT_EQ(modern->name(), legacy->name());
    std::vector<Buffer> data;
    for (int i = 0; i < modern->k(); ++i)
        data.push_back(randomChunk(rng, 64));
    EXPECT_EQ(modern->encode(data), legacy->encode(data));
}

TEST(CodecRegistry, MalformedSpecsRejectedWithDiagnostic)
{
    const std::vector<std::string> bad = {
        "",         "rs",          "rs()",        "rs(10,)",
        "rs(,4)",   "rs(10,4",     "rs 10,4",     "rs(10,4))",
        "rs(0,4)",  "rs(10,0)",    "rs(250,10)",  "rs(10,4,2)",
        "lrc(10)",  "lrc(10,2)",   "lrc(2,4,2)",  "lrc(10,2,2,2,2)",
        "rep()",    "rep(1)",      "rep(300)",    "butterfly(4,2)",
        "bogus",    "bogus(1,2)",  "rs(1e1,4)",   "rs(10,4)x",
    };
    for (const auto &spec : bad) {
        std::string error;
        EXPECT_EQ(tryMakeCode(spec, &error), nullptr) << spec;
        EXPECT_FALSE(error.empty()) << spec;
    }
}

// ------------------------------------- wide-RS + multi-group LRC

TEST(WideCode, Rs24SingleRepairAllPositions)
{
    auto code = makeCode("rs(24,8)");
    ASSERT_EQ(code->n(), 32);
    EXPECT_EQ(code->guaranteedRepairableCount(), 8);
    Rng rng(66);
    auto chunks = randomStripe(rng, *code, 128);
    for (ChunkIndex f = 0; f < code->n(); ++f) {
        auto avail = survivorsExcept(*code, {f});
        auto spec = code->makeRepairSpec(f, avail, rng);
        EXPECT_EQ(spec.reads.size(),
                  static_cast<std::size_t>(code->k()));
        checkRepair(*code, chunks, spec);
    }
}

TEST(WideCode, Rs24DecodeAtAndBeyondGuarantee)
{
    auto code = makeCode("rs(24,8)");
    Rng rng(67);
    auto chunks = randomStripe(rng, *code, 128);
    // Random size-8 patterns all decode (C(32,8) is too many to
    // sweep; sampling exercises the wide decode matrix).
    for (int trial = 0; trial < 24; ++trial) {
        std::vector<ChunkIndex> pattern;
        while (pattern.size() < 8) {
            auto c = static_cast<ChunkIndex>(
                rng.below(static_cast<uint64_t>(code->n())));
            if (std::find(pattern.begin(), pattern.end(), c) ==
                pattern.end())
                pattern.push_back(c);
        }
        std::sort(pattern.begin(), pattern.end());
        EXPECT_TRUE(code->canRepair(pattern));
        auto damaged = chunks;
        for (ChunkIndex c : pattern)
            damaged[static_cast<std::size_t>(c)].clear();
        ASSERT_TRUE(code->decode(damaged));
        EXPECT_EQ(damaged, chunks);
    }
    // Nine failures exceed the parity budget.
    std::vector<ChunkIndex> nine;
    for (ChunkIndex c = 0; c < 9; ++c)
        nine.push_back(c);
    EXPECT_FALSE(code->canRepair(nine));
    auto damaged = chunks;
    for (ChunkIndex c : nine)
        damaged[static_cast<std::size_t>(c)].clear();
    EXPECT_FALSE(code->decode(damaged));
}

TEST(WideCode, MultiGroupLrcLayoutAndLocalRepair)
{
    // lrc(24,4,2,2): 4 groups of 6 data chunks, 2 local parities
    // per group, 2 global parities -> n = 24 + 8 + 2.
    auto code = makeCode("lrc(24,4,2,2)");
    ASSERT_EQ(code->k(), 24);
    ASSERT_EQ(code->n(), 34);
    EXPECT_EQ(code->totalParity(), 10);
    Rng rng(68);
    auto chunks = randomStripe(rng, *code, 64);
    for (ChunkIndex f = 0; f < code->n(); ++f) {
        auto avail = survivorsExcept(*code, {f});
        auto spec = code->makeRepairSpec(f, avail, rng);
        checkRepair(*code, chunks, spec);
        // Data and local-parity repairs stay inside the group: far
        // fewer reads than the global k.
        if (f < 32) {
            EXPECT_LT(spec.reads.size(),
                      static_cast<std::size_t>(code->k()))
                << "chunk " << f;
        }
    }
}

TEST(WideCode, MultiGroupLrcSurvivesTwoPerGroup)
{
    // g=2 local parities make any two failures inside one group
    // locally repairable; heavier in-group patterns lean on the two
    // globals until they run out.
    auto code = makeCode("lrc(12,2,2,2)");
    ASSERT_EQ(code->n(), 18);
    EXPECT_EQ(code->guaranteedRepairableCount(), 3);
    std::vector<ChunkIndex> two_in_group = {0, 1};
    EXPECT_TRUE(code->canRepair(two_in_group));
    Rng rng(69);
    auto chunks = randomStripe(rng, *code, 64);
    std::vector<ChunkIndex> four_in_group = {0, 1, 2, 3};
    auto damaged = chunks;
    for (ChunkIndex c : four_in_group)
        damaged[static_cast<std::size_t>(c)].clear();
    // canRepair and decode must agree on the heavy pattern either
    // way (the exhaustive sweep pins the equivalence; this leg pins
    // the multi-group layout specifically).
    EXPECT_EQ(code->decode(damaged), code->canRepair(four_in_group));
    if (!damaged[0].empty()) {
        EXPECT_EQ(damaged, chunks);
    }
}

} // namespace
} // namespace ec
} // namespace chameleon
