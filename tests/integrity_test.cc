/**
 * @file
 * End-to-end data-integrity suite:
 *  - checksum kernels: CRC32C/xxHash64 published test vectors,
 *    chained-region equivalence, and cross-ISA identity (every
 *    compiled variant must agree with the scalar oracle on random
 *    buffers and split points);
 *  - SliceChecksums: per-slice corruption localization;
 *  - corrupt-helper exclusion: a verify-on-read rejection aborts the
 *    repair and the re-plan excludes the corrupt source, at the ec
 *    layer (byte-identical oracle via evaluatePlan) and through the
 *    executor/session abort path;
 *  - scrub differential: every injected bit-rot event is detected
 *    within one scrub epoch, re-repaired, and the sweep stays
 *    -j1/-jN byte-identical with scrubbing enabled.
 */

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "cluster/scrub_scanner.hh"
#include "cluster/stripe_manager.hh"
#include "ec/checksum.hh"
#include "ec/factory.hh"
#include "ec/rs_code.hh"
#include "repair/executor.hh"
#include "repair/plan.hh"
#include "repair/session.hh"
#include "repair/strategies.hh"
#include "runtime/runtime.hh"
#include "runtime/sweep.hh"
#include "util/rng.hh"

namespace chameleon {
namespace {

namespace checksum = ec::checksum;

// ------------------------------------------------ checksum kernels

TEST(IntegrityChecksum, Crc32cPublishedVectors)
{
    // RFC 3720 B.4 check value: CRC32C("123456789") = 0xE3069283.
    const char digits[] = "123456789";
    EXPECT_EQ(checksum::crc32c(digits, 9), 0xE3069283u);
    EXPECT_EQ(checksum::crc32c("", 0), 0u);
    // 32 bytes of zeros (iSCSI test pattern).
    uint8_t zeros[32] = {};
    EXPECT_EQ(checksum::crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);
    uint8_t ones[32];
    std::fill(std::begin(ones), std::end(ones), uint8_t{0xFF});
    EXPECT_EQ(checksum::crc32c(ones, sizeof(ones)), 0x62A8AB43u);
}

TEST(IntegrityChecksum, ChainedRegionsMatchOneShot)
{
    Rng rng(11);
    std::vector<uint8_t> buf(4096);
    for (auto &b : buf)
        b = static_cast<uint8_t>(rng.below(256));
    const uint32_t whole = checksum::crc32c(buf.data(), buf.size());
    for (std::size_t split : {std::size_t{0}, std::size_t{1},
                              std::size_t{7}, std::size_t{64},
                              std::size_t{4095}, buf.size()}) {
        const uint32_t head = checksum::crc32c(buf.data(), split);
        EXPECT_EQ(checksum::crc32c(buf.data() + split,
                                   buf.size() - split, head),
                  whole)
            << "split at " << split;
    }
}

TEST(IntegrityChecksum, XxHash64PublishedVectors)
{
    // Reference values from the xxHash spec test suite.
    EXPECT_EQ(checksum::xxhash64("", 0), 0xEF46DB3751D8E999ull);
    EXPECT_EQ(checksum::xxhash64("", 0, /*seed=*/1),
              0xD5AFBA1336A3BE4Bull);
    // Determinism + sensitivity: one flipped bit moves the hash.
    Rng rng(13);
    std::vector<uint8_t> buf(513);
    for (auto &b : buf)
        b = static_cast<uint8_t>(rng.below(256));
    const uint64_t h = checksum::xxhash64(buf.data(), buf.size());
    EXPECT_EQ(checksum::xxhash64(buf.data(), buf.size()), h);
    buf[200] ^= 0x01;
    EXPECT_NE(checksum::xxhash64(buf.data(), buf.size()), h);
}

TEST(IntegrityChecksum, EveryIsaMatchesScalarOracle)
{
    // Cross-ISA identity on random buffers of awkward lengths, with
    // random chain split points — the scalar bitwise kernel is the
    // oracle (the forced-scalar CI leg runs this same test with only
    // the scalar variant compiled in, pinning the vectors above).
    const auto &scalar = checksum::detail::scalarKernels();
    Rng rng(17);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t len = rng.below(1500);
        std::vector<uint8_t> buf(len);
        for (auto &b : buf)
            b = static_cast<uint8_t>(rng.below(256));
        const uint32_t want =
            scalar.crc32c(0, buf.data(), buf.size());
        const std::size_t split = len > 0 ? rng.below(len + 1) : 0;
        for (auto isa : checksum::detail::availableIsas()) {
            const auto &k = checksum::detail::kernels(isa);
            EXPECT_EQ(k.crc32c(0, buf.data(), buf.size()), want)
                << checksum::detail::isaName(isa) << " len " << len;
            const uint32_t head = k.crc32c(0, buf.data(), split);
            EXPECT_EQ(k.crc32c(head, buf.data() + split, len - split),
                      want)
                << checksum::detail::isaName(isa) << " split "
                << split;
        }
    }
}

TEST(IntegrityChecksum, SliceChecksumsLocalizeCorruption)
{
    Rng rng(19);
    ec::Buffer payload(1000);
    for (auto &b : payload)
        b = static_cast<uint8_t>(rng.below(256));
    const auto sums = checksum::SliceChecksums::compute(payload, 256);
    EXPECT_EQ(sums.slices.size(), 4u); // 256*3 + 232
    EXPECT_TRUE(sums.verify(payload));
    EXPECT_EQ(sums.firstMismatch(payload), -1);

    for (std::size_t at : {std::size_t{0}, std::size_t{255},
                           std::size_t{256}, std::size_t{700},
                           std::size_t{999}}) {
        auto rotted = payload;
        rotted[at] ^= 0x40;
        EXPECT_EQ(sums.firstMismatch(rotted),
                  static_cast<int>(at / 256))
            << "flip at " << at;
        EXPECT_FALSE(sums.verify(rotted));
    }
    // Length mismatch fails slice 0.
    ec::Buffer shorter(999);
    EXPECT_EQ(sums.firstMismatch(shorter), 0);
    // Degenerate slice size covers everything in one slice.
    const auto one = checksum::SliceChecksums::compute(payload, 0);
    EXPECT_EQ(one.slices.size(), 1u);
    EXPECT_TRUE(one.verify(payload));
}

// ------------------------------------- corrupt helpers, byte level

ec::Buffer
randomChunk(Rng &rng, std::size_t size)
{
    ec::Buffer b(size);
    for (auto &v : b)
        v = static_cast<uint8_t>(rng.below(256));
    return b;
}

TEST(IntegrityDifferential, ReplanWithoutCorruptHelperIsByteExact)
{
    // The end-to-end story at the byte level: a bit-rotted helper
    // poisons the reconstruction; its per-slice checksums catch it;
    // a re-plan from the remaining survivors reconstructs the chunk
    // byte-identically to the pristine oracle.
    ec::RsCode code(4, 3);
    Rng rng(23);
    std::vector<ec::Buffer> data;
    for (int i = 0; i < code.k(); ++i)
        data.push_back(randomChunk(rng, 96));
    auto parity = code.encode(data);
    std::vector<ec::Buffer> pristine = data;
    for (auto &p : parity)
        pristine.push_back(std::move(p));

    const ChunkIndex failed = 2;
    const ec::Buffer oracle = pristine[failed];

    auto makePlan = [&](const std::vector<ChunkIndex> &helpers) {
        auto spec = code.specFor(failed, helpers);
        EXPECT_TRUE(spec.has_value());
        std::vector<repair::PlanSource> sources;
        NodeId node = 0;
        for (const auto &read : spec->reads) {
            repair::PlanSource src;
            src.node = node++;
            src.chunk = read.helper;
            src.coeff = read.coeff;
            src.fraction = read.fraction;
            src.parent = repair::kToDestination;
            sources.push_back(src);
        }
        return repair::buildStarPlan(0, failed, 100,
                                     std::move(sources), true);
    };

    // Sidecars computed while the data was clean.
    std::vector<checksum::SliceChecksums> sums;
    for (const auto &chunk : pristine)
        sums.push_back(checksum::SliceChecksums::compute(chunk, 32));

    // Rot helper chunk 1 after checksumming (slice 2 of 3).
    auto rotted = pristine;
    rotted[1][70] ^= 0x08;

    // A plan over helpers {0,1,3,4} silently folds the rot in.
    auto bad = makePlan({0, 1, 3, 4});
    EXPECT_NE(repair::evaluatePlan(bad, rotted), oracle);
    // Verify-on-read localizes the corruption to helper 1, slice 2.
    EXPECT_TRUE(sums[0].verify(rotted[0]));
    EXPECT_EQ(sums[1].firstMismatch(rotted[1]), 2);
    // Re-plan excluding the corrupt helper: byte-identical repair.
    auto good = makePlan({0, 3, 4, 5});
    for (const auto &src : good.sources)
        EXPECT_NE(src.chunk, 1);
    EXPECT_EQ(repair::evaluatePlan(good, rotted), oracle);
}

// ------------------------------- corrupt helpers, executor/session

TEST(IntegrityExecutor, CorruptHelperAbortsAndReplansWithoutIt)
{
    sim::Simulator sim;
    cluster::ClusterConfig ccfg;
    ccfg.numNodes = 14;
    ccfg.numClients = 0;
    ccfg.uplinkBw = ccfg.downlinkBw = 100.0;
    ccfg.diskBw = 300.0;
    cluster::Cluster cluster(sim, ccfg);
    auto code = ec::makeRs(4, 3);
    cluster::StripeManager stripes(code, ccfg.numNodes);
    Rng rng(31);
    stripes.createStripes(4, rng);
    repair::ExecutorConfig ecfg;
    ecfg.chunkSize = 64.0;
    ecfg.sliceSize = 8.0;
    ecfg.relayOverheadPerMiB = 0.0;
    repair::RepairExecutor exec(cluster, ecfg);

    const cluster::FailedChunk lost{0, 1};
    stripes.markLost(lost.stripe, lost.chunk);

    // The planner corrupts the first helper of its *first* plan, so
    // the initial launch is guaranteed to read a corrupt source
    // (corruption is invisible to planning, as in production).
    ChunkIndex corruptChunk = -1;
    std::vector<std::vector<ChunkIndex>> plannedHelpers;
    Rng plan_rng(37);
    repair::RepairSession session(
        stripes, exec,
        [&](const cluster::FailedChunk &fc,
            const std::vector<NodeId> &reserved) {
            auto plan = repair::makeBaselinePlan(
                stripes, fc, repair::Topology::kStar, reserved,
                plan_rng);
            std::vector<ChunkIndex> helpers;
            for (const auto &src : plan.sources)
                helpers.push_back(src.chunk);
            plannedHelpers.push_back(helpers);
            if (corruptChunk < 0) {
                corruptChunk = plan.sources.front().chunk;
                stripes.table().markCorrupt(fc.stripe, corruptChunk);
            }
            return plan;
        });

    int rejects = 0;
    repair::RepairExecutor::IntegrityHooks ih;
    ih.verifySource = [&](StripeId stripe, ChunkIndex chunk,
                          NodeId) {
        if (!stripes.chunkCorrupt(stripe, chunk))
            return true;
        ++rejects;
        // Promote to lost and queue the rotted chunk itself (the
        // runtime routes this through ScrubScanner::detect()).
        stripes.table().markLost(stripe, chunk);
        const cluster::FailedChunk fc{stripe, chunk};
        sim.scheduleAfter(0.0, [&session, fc] {
            session.enqueue({fc});
        });
        return false;
    };
    exec.setIntegrityHooks(std::move(ih));

    session.start({lost});
    sim.run(2000.0);

    EXPECT_TRUE(session.finished());
    EXPECT_EQ(rejects, 1);
    // Both the original chunk and the rotted helper got repaired.
    EXPECT_EQ(session.chunksRepaired(), 2);
    EXPECT_EQ(session.chunksUnrecoverable(), 0);
    // The re-plan excluded the corrupt source (it is lost now, and
    // the planner draws helpers from live chunks only).
    ASSERT_GE(plannedHelpers.size(), 2u);
    const auto &replan = plannedHelpers[1];
    EXPECT_EQ(std::count(replan.begin(), replan.end(),
                         corruptChunk),
              0);
    // markRepaired cleared the corrupt flag on the rewritten chunk.
    EXPECT_FALSE(stripes.chunkCorrupt(lost.stripe, corruptChunk));
    EXPECT_EQ(stripes.table().corruptCount(), 0);
}

// ------------------------------------------- scrub scanner (unit)

TEST(ScrubScanner, DetectsCorruptionAndClassifiesTier)
{
    sim::Simulator sim;
    cluster::ClusterConfig ccfg;
    ccfg.numNodes = 14;
    ccfg.numClients = 0;
    cluster::Cluster cluster(sim, ccfg);
    auto code = ec::makeRs(4, 3);
    cluster::StripeManager stripes(code, ccfg.numNodes);
    Rng rng(41);
    stripes.createStripes(2, rng);

    cluster::ScrubConfig scfg;
    scfg.enabled = true;
    scfg.rate = 1024.0; // 16 chunk-reads per tick at 64 B chunks
    scfg.riskMargin = 1;
    cluster::ScrubScanner scrub(cluster, stripes, 64.0, scfg);

    std::vector<std::pair<cluster::FailedChunk, cluster::RepairTier>>
        detected;
    scrub.setOnDetected([&](cluster::FailedChunk fc,
                            cluster::RepairTier tier) {
        detected.push_back({fc, tier});
    });

    // Healthy stripe: a single rotted chunk is kDegraded work.
    scrub.noteCorruption({0, 3});
    stripes.table().markCorrupt(0, 3);
    // Stripe already missing m-1 chunks: one more puts survivors at
    // the decode minimum — the rot there is kDataLossRisk work.
    stripes.markLost(1, 0);
    stripes.markLost(1, 1);
    scrub.noteCorruption({1, 4});
    stripes.table().markCorrupt(1, 4);

    EXPECT_FALSE(scrub.quiescent());
    scrub.start();
    sim.run(300.0);

    ASSERT_EQ(detected.size(), 2u);
    std::map<StripeId, cluster::RepairTier> byStripe;
    for (const auto &[fc, tier] : detected) {
        EXPECT_TRUE(stripes.chunkLost(fc.stripe, fc.chunk));
        byStripe[fc.stripe] = tier;
    }
    EXPECT_EQ(byStripe[0], cluster::RepairTier::kDegraded);
    EXPECT_EQ(byStripe[1], cluster::RepairTier::kDataLossRisk);
    EXPECT_EQ(scrub.corruptionsDetected(), 2);
    EXPECT_GT(scrub.meanDetectionLatency(), 0.0);
    // Detection promoted both to lost; repair is still pending, so
    // the subsystem is not quiescent until noteOutcome() closes it.
    EXPECT_FALSE(scrub.quiescent());
    scrub.noteOutcome({0, 3}, true);
    scrub.noteOutcome({1, 4}, true);
    EXPECT_TRUE(scrub.quiescent());
    EXPECT_EQ(scrub.corruptionsRepaired(), 2);
}

// -------------------------------------------- runtime differential

TEST(IntegrityScrub, EveryInjectedRotDetectedWithinOneEpoch)
{
    runtime::ExperimentConfig cfg;
    cfg.cluster.numClients = 0;
    cfg.stripes = 20;
    cfg.seed = 42;
    // Dense arrivals so several corruptions land inside the repair
    // window (the run then stays open until every one is detected
    // and re-repaired; arrivals after the window never fire).
    cfg.bitrotRate = 3.0;
    cfg.chaosSeed = 5;
    cfg.chaosHorizon = 8.0;
    cfg.scrub.enabled = true;
    cfg.scrub.rate = 1024.0 * units::MiB;
    cfg.scrub.maxInFlight = 8;

    runtime::RuntimeOptions opts;
    opts.isolateTelemetry = true;
    runtime::Runtime rt(runtime::Algorithm::kChameleon, cfg, opts);
    const auto res = rt.run();

    // 100% recall: the run loop may not end while any injected
    // corruption is undetected or unrepaired.
    EXPECT_GT(res.corruptionsInjected, 0);
    EXPECT_EQ(res.corruptionsDetected, res.corruptionsInjected);
    EXPECT_EQ(res.corruptionsRepaired, res.corruptionsDetected);
    EXPECT_EQ(res.chunksUnrecoverable, 0);

    // Detection within one scrub epoch: a full pass over every live
    // chunk at the configured rate (the executor verify hooks can
    // only detect sooner). 1.5x covers in-flight reads and disk
    // contention around the epoch boundary.
    const double totalBytes = 20.0 * cfg.code->n() *
                              cfg.exec.chunkSize;
    const double epochSeconds = totalBytes / cfg.scrub.rate;
    EXPECT_LE(res.maxDetectionLatency,
              1.5 * epochSeconds + cfg.scrub.tickInterval)
        << "epoch is " << epochSeconds << " s";
}

TEST(IntegrityScrub, SweepStaysByteIdenticalAcrossJobsWithScrub)
{
    auto makeCells = [] {
        std::vector<runtime::SweepCell> cells;
        for (auto algo : {runtime::Algorithm::kCr,
                          runtime::Algorithm::kChameleon}) {
            for (uint64_t seed : {7u, 11u}) {
                runtime::SweepCell cell;
                cell.label = runtime::algorithmKey(algo) + "/" +
                             std::to_string(seed);
                cell.algorithm = algo;
                cell.deriveSeed = false;
                cell.config.chunksToRepair = 6;
                cell.config.seed = seed;
                cell.config.bitrotRate = 0.8;
                cell.config.chaosSeed = 99;
                cell.config.chaosHorizon = 6.0;
                cell.config.scrub.enabled = true;
                cell.config.scrub.rate = 512.0 * units::MiB;
                cell.config.scrub.adaptive = true;
                cells.push_back(std::move(cell));
            }
        }
        return cells;
    };

    runtime::SweepOptions so1;
    so1.jobs = 1;
    auto serial = runtime::SweepRunner(so1).run(makeCells());
    runtime::SweepOptions soN;
    soN.jobs = 3;
    auto parallel = runtime::SweepRunner(soN).run(makeCells());

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i], parallel[i]) << "cell " << i;
        EXPECT_GT(serial[i].corruptionsInjected, 0) << "cell " << i;
        EXPECT_EQ(serial[i].corruptionsDetected,
                  serial[i].corruptionsInjected)
            << "cell " << i;
    }
}

} // namespace
} // namespace chameleon
