/**
 * @file
 * Runtime-layer tests: ScenarioSpec JSON round-trips and rejection of
 * malformed input, splitmix seed derivation, SweepRunner determinism
 * (-j1 == -j8, the byte-identical-tables contract), ordered emission,
 * and per-run telemetry scoping.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "runtime/runtime.hh"
#include "runtime/scenario.hh"
#include "runtime/sweep.hh"
#include "telemetry/telemetry.hh"

using namespace chameleon;
using namespace chameleon::runtime;

namespace {

/** A cheap config: few chunks, default cluster, optional trace. */
ExperimentConfig
tinyConfig(bool with_trace)
{
    ExperimentConfig cfg;
    cfg.chunksToRepair = 2;
    cfg.seed = 42;
    if (with_trace) {
        std::optional<traffic::TraceProfile> profile;
        EXPECT_TRUE(tryResolveTrace("ycsb-a", &profile));
        cfg.trace = profile;
    } else {
        cfg.trace.reset();
    }
    return cfg;
}

void
expectRejected(const std::string &json, const std::string &needle)
{
    std::string err;
    auto spec = ScenarioSpec::fromJson(json, &err);
    EXPECT_FALSE(spec.has_value()) << json;
    EXPECT_NE(err.find(needle), std::string::npos)
        << "error '" << err << "' lacks '" << needle << "' for "
        << json;
}

// --- ScenarioSpec round-trip --------------------------------------

TEST(Scenario, DefaultRoundTrips)
{
    ScenarioSpec spec;
    std::string err;
    auto back = ScenarioSpec::fromJson(spec.toJson(), &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(*back, spec);
}

TEST(Scenario, EveryFieldRoundTrips)
{
    ScenarioSpec spec;
    spec.name = "kitchen sink \"quoted\"\n";
    spec.algorithm = Algorithm::kRbPpr;
    spec.code = "lrc:10,2,2";
    spec.trace = "ibm";
    spec.cluster.numNodes = 31;
    spec.cluster.numClients = 7;
    spec.cluster.uplinkBw = 1.25 * units::Gbps;
    spec.cluster.downlinkBw = 5.0 * units::Gbps;
    spec.cluster.diskBw = 217.0 * units::MBps;
    spec.cluster.usageWindow = 7.5;
    spec.cluster.racks = 4;
    spec.cluster.rackOversubscription = 1.0 / 3.0;
    spec.exec.chunkSize = 48 * units::MiB;
    spec.exec.sliceSize = 3 * units::MiB;
    spec.exec.nodeUploadSlots = 3;
    spec.exec.nodeDownloadSlots = 9;
    spec.exec.relayOverheadPerMiB = 0.0125;
    spec.chunksToRepair = 17;
    spec.stripes = 900;
    spec.failedNodes = 2;
    spec.requestsPerClient = 12345;
    spec.warmup = 3.25;
    spec.chameleon.tPhase = 12.5;
    spec.chameleon.checkPeriod = 0.7;
    spec.chameleon.stragglerSlack = 1.1;
    spec.chameleon.expectationFactor = 2.0 / 7.0;
    spec.chameleon.reorderBackoff = 4.5;
    spec.chameleon.enableReordering = false;
    spec.chameleon.enableRetuning = false;
    spec.chameleon.priority =
        repair::RepairPriority::kMostFailedFirst;
    spec.chameleon.maxRetries = 9;
    spec.chameleon.retryBackoff = 0.25;
    spec.session.maxInFlight = 17;
    spec.session.maxRetries = 2;
    spec.session.retryBackoff = 1.5;
    // enabled stays false here; DegradedBlockRoundTrips covers the
    // enabled path and its validation couplings.
    spec.degraded.hedge = false;
    spec.degraded.hedgeMultiplier = 2.25;
    spec.degraded.hedgeMinDelay = 0.75;
    spec.degraded.maxHedges = 2;
    spec.degraded.maxInFlight = 8;
    spec.degraded.maxRetries = 3;
    spec.degraded.retryBackoff = 0.5;
    spec.stragglers = {
        StragglerEvent{5.0, kInvalidNode, 0.05, 15.0, true, true},
        StragglerEvent{10.5, 3, 1.0 / 3.0, 2.5, true, false},
    };
    spec.faults = fault::FaultSchedule::parse(
        "crash@5:dur=40;linkdeg@10:factor=0.2:dur=15");
    spec.chaosRate = 0.3;
    spec.chaosSeed = 777;
    spec.chaosHorizon = 64.0;
    // enabled stays false: the spec above keeps an auto-pick
    // straggler, which the scanner path rejects.
    spec.scanner.batchSize = 512;
    spec.scanner.tickInterval = 0.25;
    spec.scanner.riskMargin = 2;
    spec.scanner.queue.maxTotalJobs = 96;
    spec.scanner.queue.maxNodeJobs = 3;
    spec.seed = 123456789;
    spec.simTimeCap = 5000.0;

    std::string err;
    auto back = ScenarioSpec::fromJson(spec.toJson(), &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(*back, spec);
    // And the round-tripped spec serializes identically.
    EXPECT_EQ(back->toJson(), spec.toJson());
}

TEST(Scenario, DoublesRoundTripExactly)
{
    // Values with no short decimal form must survive the trip.
    ScenarioSpec spec;
    spec.chameleon.expectationFactor = 1.0 / 3.0;
    spec.cluster.uplinkBw = 2.5 * units::Gbps * (1.0 / 7.0);
    spec.cluster.downlinkBw = spec.cluster.uplinkBw;
    auto back = ScenarioSpec::fromJson(spec.toJson());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->chameleon.expectationFactor,
              spec.chameleon.expectationFactor);
    EXPECT_EQ(back->cluster.uplinkBw, spec.cluster.uplinkBw);
}

TEST(Scenario, EmptyObjectYieldsDefaults)
{
    auto spec = ScenarioSpec::fromJson("{}");
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(*spec, ScenarioSpec{});
}

TEST(Scenario, ToConfigMaterializes)
{
    ScenarioSpec spec;
    spec.code = "lrc:8,2,2";
    spec.trace = "memcached";
    spec.chunksToRepair = 11;
    spec.seed = 9;
    auto cfg = spec.toConfig();
    EXPECT_EQ(cfg.code->name(), "LRC(8,2,2)");
    ASSERT_TRUE(cfg.trace.has_value());
    EXPECT_EQ(cfg.chunksToRepair, 11);
    EXPECT_EQ(cfg.seed, 9u);
}

TEST(Scenario, NoneTraceDisablesForeground)
{
    ScenarioSpec spec;
    spec.trace = "none";
    EXPECT_FALSE(spec.toConfig().trace.has_value());
    spec.trace = "";
    EXPECT_FALSE(spec.toConfig().trace.has_value());
}

// --- ScenarioSpec rejection ---------------------------------------

TEST(Scenario, RejectsMalformedJson)
{
    expectRejected("{", "");
    expectRejected("42", "");
    expectRejected("", "");
}

TEST(Scenario, RejectsUnknownKeys)
{
    expectRejected(R"({"bogus": 1})", "bogus");
    expectRejected(R"({"cluster": {"nodez": 3}})", "nodez");
    expectRejected(R"({"chameleon": {"tphase": 1}})", "tphase");
    expectRejected(R"({"chaos": {"speed": 1}})", "speed");
}

TEST(Scenario, RejectsBadNames)
{
    expectRejected(R"({"algorithm": "warp"})", "algorithm");
    expectRejected(R"({"code": "rs:banana"})", "code");
    expectRejected(R"({"trace": "tpc-c"})", "trace");
    expectRejected(R"({"chameleon": {"priority": "fastest"}})",
                   "priority");
}

TEST(Scenario, RejectsBadSchedules)
{
    expectRejected(R"({"stragglers": "soon"})", "straggler");
    expectRejected(R"({"faults": "meteor@5"})", "fault");
}

TEST(Scenario, RejectsBadDimensions)
{
    expectRejected(R"({"cluster": {"nodes": 0}})", "nodes");
    expectRejected(R"({"cluster": {"uplink_bw": -1}})",
                   "bandwidths");
    expectRejected(R"({"chunks_to_repair": 0})", "chunks");
    expectRejected(R"({"failed_nodes": 40})", "failed");
    expectRejected(
        R"({"executor": {"chunk_size": 4, "slice_size": 8}})",
        "slice");
    expectRejected(R"({"chaos": {"rate": -0.5}})", "rate");
    expectRejected(R"({"sim_time_cap": 0})", "cap");
    expectRejected(R"({"stripes": -1})", "stripes");
    expectRejected(R"({"scanner": {"batch": 0}})", "batch");
    expectRejected(R"({"scanner": {"interval": 0}})", "interval");
    expectRejected(R"({"scanner": {"risk_margin": -1}})",
                   "risk_margin");
    expectRejected(R"({"scanner": {"max_node_jobs": 0}})", "limits");
    expectRejected(
        R"({"algorithm": "none", "scanner": {"enabled": true}})",
        "algorithm");
    expectRejected(R"({"scanner": {"enabled": true},
                       "stragglers": "5:factor=0.1:dur=10"})",
                   "straggler");
}

TEST(Scenario, RejectsWrongTypes)
{
    expectRejected(R"({"seed": "forty-two"})", "seed");
    expectRejected(R"({"cluster": "big"})", "cluster");
    expectRejected(R"({"chameleon": {"reordering": 3}})",
                   "reordering");
}

// --- helper parsers -----------------------------------------------

TEST(Scenario, CodeSpecs)
{
    EXPECT_TRUE(tryParseCode("rs:10,4").has_value());
    EXPECT_TRUE(tryParseCode("lrc:10,2,2").has_value());
    EXPECT_TRUE(tryParseCode("butterfly").has_value());
    EXPECT_TRUE(tryParseCode("rep:3").has_value());
    std::string err;
    EXPECT_FALSE(tryParseCode("rs:10", &err).has_value());
    EXPECT_FALSE(tryParseCode("xor:2", &err).has_value());
    EXPECT_FALSE(tryParseCode("", &err).has_value());
}

TEST(Scenario, RegistryCodeSpecsRoundTrip)
{
    // The registry grammar — including wide-RS and multi-group LRC —
    // parses and survives a full spec round-trip untouched.
    for (const char *code :
         {"rs(20,8)", "rs(24,8)", "lrc(12,2,2,2)", "lrc(24,4,2,2)",
          "butterfly", "rep(3)"}) {
        EXPECT_TRUE(tryParseCode(code).has_value()) << code;
        ScenarioSpec spec;
        spec.code = code;
        std::string err;
        auto back = ScenarioSpec::fromJson(spec.toJson(), &err);
        ASSERT_TRUE(back.has_value()) << code << ": " << err;
        EXPECT_EQ(back->code, code);
        EXPECT_EQ(back->toJson(), spec.toJson());
    }
}

TEST(Scenario, MalformedCodeSpecsCarryDiagnostics)
{
    for (const char *bad :
         {"rs(10,)", "rs(,4)", "rs(10,4", "rs()", "lrc(10)",
          "rs(10,4)x", "bogus(1,2)"}) {
        std::string err;
        EXPECT_FALSE(tryParseCode(bad, &err).has_value()) << bad;
        EXPECT_FALSE(err.empty()) << bad;
        // The spec-level diagnostic names the offending spec.
        expectRejected(std::string(R"({"code": ")") + bad + "\"}",
                       bad);
    }
}

TEST(Scenario, DegradedBlockRoundTrips)
{
    ScenarioSpec spec;
    spec.algorithm = Algorithm::kCr;
    spec.code = "rs(20,8)";
    spec.cluster.numNodes = 36;
    spec.degraded.enabled = true;
    spec.degraded.hedge = true;
    spec.degraded.hedgeMultiplier = 1.75;
    spec.degraded.hedgeMinDelay = 0.25;
    spec.degraded.maxHedges = 2;
    spec.degraded.maxInFlight = 16;
    spec.degraded.maxRetries = 4;
    spec.degraded.retryBackoff = 0.75;

    std::string err;
    auto back = ScenarioSpec::fromJson(spec.toJson(), &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(*back, spec);
    EXPECT_EQ(back->toJson(), spec.toJson());
}

TEST(Scenario, RejectsBadDegraded)
{
    // Unknown knob inside the block.
    expectRejected(R"({"degraded": {"hedging": true}})", "hedging");
    // Knob ranges.
    expectRejected(R"({"degraded": {"hedge_multiplier": 0.5}})",
                   "hedge_multiplier");
    expectRejected(R"({"degraded": {"hedge_min_delay": -1}})",
                   "hedge_min_delay");
    expectRejected(R"({"degraded": {"max_hedges": -1}})",
                   "max_hedges");
    expectRejected(R"({"degraded": {"max_in_flight": 0}})",
                   "max_in_flight");
    expectRejected(R"({"degraded": {"max_retries": -1}})",
                   "max_retries");
    expectRejected(R"({"degraded": {"retry_backoff": -1}})",
                   "retry_backoff");
    // The default (chameleon) algorithm owns its own plans.
    expectRejected(R"({"degraded": {"enabled": true}})", "session");
    // Driven by an eager work list: no scanner, scrub, or topology
    // override underneath.
    expectRejected(R"({"algorithm": "cr",
                       "degraded": {"enabled": true},
                       "scanner": {"enabled": true}})",
                   "scanner");
    expectRejected(R"({"algorithm": "cr",
                       "degraded": {"enabled": true},
                       "scrub": {"enabled": true}})",
                   "scrub");
    expectRejected(R"({"algorithm": "cr", "topology": "star",
                       "degraded": {"enabled": true}})",
                   "topology");
}

TEST(Scenario, StragglerGrammarRoundTrips)
{
    std::vector<StragglerEvent> events = {
        StragglerEvent{5.0, kInvalidNode, 0.05, 15.0, true, true},
        StragglerEvent{1.25, 7, 0.5, 3.0, true, false},
        StragglerEvent{2.0, 4, 0.9, 1.0, false, true},
    };
    auto spec = stragglerSpecStr(events);
    auto back = tryParseStragglers(spec);
    ASSERT_TRUE(back.has_value()) << spec;
    EXPECT_EQ(*back, events);

    EXPECT_FALSE(tryParseStragglers("nope").has_value());
    EXPECT_FALSE(tryParseStragglers("5:node=x").has_value());
    EXPECT_FALSE(tryParseStragglers("5:link=sideways").has_value());
}

// --- seed derivation ----------------------------------------------

TEST(DeriveSeed, DeterministicAndWellSpread)
{
    EXPECT_EQ(deriveSeed(42, 0), deriveSeed(42, 0));
    std::vector<uint64_t> seen;
    for (uint64_t i = 0; i < 64; ++i) {
        uint64_t s = deriveSeed(42, i);
        EXPECT_NE(s, 42u);
        for (uint64_t prev : seen)
            EXPECT_NE(s, prev) << "collision at index " << i;
        seen.push_back(s);
    }
    EXPECT_NE(deriveSeed(42, 0), deriveSeed(43, 0));
}

// --- SweepRunner --------------------------------------------------

std::vector<SweepCell>
determinismCells()
{
    std::vector<SweepCell> cells;
    int group = 0;
    for (bool with_trace : {true, false}) {
        for (auto algo : {Algorithm::kCr, Algorithm::kEcpipe,
                          Algorithm::kChameleon}) {
            SweepCell cell;
            cell.label = algorithmName(algo);
            cell.algorithm = algo;
            cell.config = tinyConfig(with_trace);
            cell.seedIndex = group;
            cells.push_back(std::move(cell));
        }
        ++group;
    }
    return cells;
}

TEST(Sweep, SameResultsAtJobs1AndJobs8)
{
    auto cells = determinismCells();
    auto run = [&](int jobs) {
        SweepOptions so;
        so.jobs = jobs;
        so.baseSeed = 42;
        so.mergeTelemetry = false;
        return SweepRunner(so).run(cells);
    };
    auto serial = run(1);
    auto parallel = run(8);
    ASSERT_EQ(serial.size(), cells.size());
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << cells[i].label;
}

TEST(Sweep, EmitsInCellOrder)
{
    auto cells = determinismCells();
    SweepOptions so;
    so.jobs = 8;
    so.mergeTelemetry = false;
    std::vector<std::size_t> order;
    SweepRunner(so).run(
        cells, [&](std::size_t i, const SweepCell &,
                   const ExperimentResult &) { order.push_back(i); });
    ASSERT_EQ(order.size(), cells.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Sweep, SharedSeedIndexMeansSharedWorkload)
{
    // Two cells in the same comparison group (same algorithm here, so
    // results are comparable) must see the same derived seed; a third
    // with another seedIndex must not.
    SweepCell a;
    a.algorithm = Algorithm::kCr;
    a.config = tinyConfig(true);
    a.seedIndex = 0;
    SweepCell b = a;
    SweepCell c = a;
    c.seedIndex = 1;
    SweepOptions so;
    so.jobs = 2;
    so.baseSeed = 1234;
    so.mergeTelemetry = false;
    auto results = SweepRunner(so).run({a, b, c});
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0], results[1]);
    EXPECT_NE(results[0], results[2]);
}

TEST(Sweep, PinnedSeedSkipsDerivation)
{
    SweepCell pinned;
    pinned.algorithm = Algorithm::kCr;
    pinned.config = tinyConfig(false);
    pinned.config.seed = 7;
    pinned.deriveSeed = false;
    SweepCell derived = pinned;
    derived.deriveSeed = true;

    SweepOptions so;
    so.baseSeed = 99;
    so.mergeTelemetry = false;
    auto with_base = SweepRunner(so).run({pinned});
    auto no_base = SweepRunner({.jobs = 1, .baseSeed = 0,
                                .mergeTelemetry = false})
                       .run({pinned});
    // Pinned cell ignores the base seed entirely.
    EXPECT_EQ(with_base[0], no_base[0]);
}

TEST(Sweep, JobsZeroResolvesToHardwareConcurrency)
{
    SweepOptions so;
    so.jobs = 0;
    EXPECT_GE(SweepRunner(so).jobs(), 1);
}

// --- telemetry scoping --------------------------------------------

TEST(TelemetryScope, ScopedRunIsIsolated)
{
    const std::string name = "runtime_test.scoped.counter";
    telemetry::RunTelemetry run;
    {
        telemetry::ScopedTelemetry scope(run);
        telemetry::metrics().counter(name).add(3);
    }
    auto run_snap = run.metrics.snapshot();
    ASSERT_NE(run_snap.find(name), nullptr);
    EXPECT_EQ(run_snap.find(name)->value, 3.0);
    // The process registry never saw the counter.
    auto proc_snap = telemetry::metrics().snapshot();
    EXPECT_EQ(proc_snap.find(name), nullptr);
}

TEST(TelemetryScope, MergePublishesIntoProcess)
{
    const std::string name = "runtime_test.merge.counter";
    telemetry::RunTelemetry run;
    {
        telemetry::ScopedTelemetry scope(run);
        telemetry::metrics().counter(name).add(2);
    }
    telemetry::mergeIntoProcess(run);
    auto snap = telemetry::metrics().snapshot();
    const auto *merged = snap.find(name);
    ASSERT_NE(merged, nullptr);
    EXPECT_EQ(merged->value, 2.0);
}

TEST(TelemetryScope, RuntimeCapturesIsolatedTelemetry)
{
    Runtime plain(Algorithm::kCr, tinyConfig(false));
    EXPECT_EQ(plain.runTelemetry(), nullptr);

    RuntimeOptions opts;
    opts.isolateTelemetry = true;
    Runtime isolated(Algorithm::kCr, tinyConfig(false), opts);
    ASSERT_NE(isolated.runTelemetry(), nullptr);
    isolated.run();
    // The run recorded something, and it stayed out of the process
    // registry (no "sim." instruments appear there from this run —
    // checked indirectly: the captured registry is non-empty).
    EXPECT_FALSE(
        isolated.runTelemetry()->metrics.snapshot().samples.empty());
}

} // namespace
