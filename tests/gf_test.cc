/**
 * @file
 * Unit and property tests for GF(2^8) arithmetic and matrices: field
 * axioms, region kernels, inversion, and the MDS property of Cauchy
 * constructions.
 */

#include <vector>

#include <gtest/gtest.h>

#include "gf/gf256.hh"
#include "gf/matrix.hh"
#include "util/rng.hh"

namespace chameleon {
namespace gf {
namespace {

TEST(Gf256, AddIsXor)
{
    EXPECT_EQ(add(0x53, 0xCA), 0x53 ^ 0xCA);
    EXPECT_EQ(add(0xFF, 0xFF), 0);
}

TEST(Gf256, MulIdentityAndZero)
{
    for (int a = 0; a < 256; ++a) {
        EXPECT_EQ(mul(static_cast<Elem>(a), 1), a);
        EXPECT_EQ(mul(1, static_cast<Elem>(a)), a);
        EXPECT_EQ(mul(static_cast<Elem>(a), 0), 0);
    }
}

TEST(Gf256, MulCommutativeExhaustiveSample)
{
    Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
        Elem a = static_cast<Elem>(rng.below(256));
        Elem b = static_cast<Elem>(rng.below(256));
        EXPECT_EQ(mul(a, b), mul(b, a));
    }
}

TEST(Gf256, MulAssociativeSample)
{
    Rng rng(2);
    for (int i = 0; i < 10000; ++i) {
        Elem a = static_cast<Elem>(rng.below(256));
        Elem b = static_cast<Elem>(rng.below(256));
        Elem c = static_cast<Elem>(rng.below(256));
        EXPECT_EQ(mul(mul(a, b), c), mul(a, mul(b, c)));
    }
}

TEST(Gf256, DistributiveSample)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        Elem a = static_cast<Elem>(rng.below(256));
        Elem b = static_cast<Elem>(rng.below(256));
        Elem c = static_cast<Elem>(rng.below(256));
        EXPECT_EQ(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
    }
}

TEST(Gf256, InverseRoundTripExhaustive)
{
    for (int a = 1; a < 256; ++a) {
        Elem ia = inv(static_cast<Elem>(a));
        EXPECT_EQ(mul(static_cast<Elem>(a), ia), 1)
            << "a=" << a << " inv=" << int(ia);
    }
}

TEST(Gf256, DivisionMatchesMulByInverse)
{
    Rng rng(4);
    for (int i = 0; i < 10000; ++i) {
        Elem a = static_cast<Elem>(rng.below(256));
        Elem b = static_cast<Elem>(1 + rng.below(255));
        EXPECT_EQ(div(a, b), mul(a, inv(b)));
    }
}

TEST(Gf256, PowMatchesRepeatedMul)
{
    for (int a = 0; a < 256; ++a) {
        Elem acc = 1;
        for (unsigned e = 0; e < 10; ++e) {
            EXPECT_EQ(pow(static_cast<Elem>(a), e), acc);
            acc = mul(acc, static_cast<Elem>(a));
        }
    }
}

TEST(Gf256, GeneratorHasFullOrder)
{
    // x=2 generates the multiplicative group under 0x11D.
    Elem x = 2;
    Elem acc = 1;
    int order = 0;
    do {
        acc = mul(acc, x);
        ++order;
    } while (acc != 1);
    EXPECT_EQ(order, 255);
}

TEST(Gf256, MulAddRegionMatchesScalar)
{
    Rng rng(5);
    std::vector<Elem> dst(257), src(257), expect(257);
    for (std::size_t i = 0; i < dst.size(); ++i) {
        dst[i] = static_cast<Elem>(rng.below(256));
        src[i] = static_cast<Elem>(rng.below(256));
    }
    Elem c = 0xA7;
    for (std::size_t i = 0; i < dst.size(); ++i)
        expect[i] = add(dst[i], mul(c, src[i]));
    mulAddRegion(dst, src, c);
    EXPECT_EQ(dst, expect);
}

TEST(Gf256, MulAddRegionCoeffZeroIsNoop)
{
    std::vector<Elem> dst = {1, 2, 3}, src = {9, 9, 9};
    auto before = dst;
    mulAddRegion(dst, src, 0);
    EXPECT_EQ(dst, before);
}

TEST(Gf256, MulAddRegionCoeffOneIsXor)
{
    std::vector<Elem> dst = {1, 2, 3}, src = {4, 5, 6};
    mulAddRegion(dst, src, 1);
    EXPECT_EQ(dst, (std::vector<Elem>{1 ^ 4, 2 ^ 5, 3 ^ 6}));
}

TEST(Gf256, MulAddRegionMultiMatchesSequential)
{
    Rng rng(7);
    const std::size_t n = 301;
    std::vector<Elem> dst(n), a(n), b(n), c(n);
    for (std::size_t i = 0; i < n; ++i) {
        dst[i] = static_cast<Elem>(rng.below(256));
        a[i] = static_cast<Elem>(rng.below(256));
        b[i] = static_cast<Elem>(rng.below(256));
        c[i] = static_cast<Elem>(rng.below(256));
    }
    auto expect = dst;
    mulAddRegion(expect, a, 0x11);
    mulAddRegion(expect, b, 0x01);
    mulAddRegion(expect, c, 0xFE);
    const Elem *srcs[3] = {a.data(), b.data(), c.data()};
    const Elem coeffs[3] = {0x11, 0x01, 0xFE};
    mulAddRegionMulti(dst, srcs, coeffs);
    EXPECT_EQ(dst, expect);
}

TEST(Gf256, KernelNameIsNonEmpty)
{
    EXPECT_NE(kernelName(), nullptr);
    EXPECT_GT(std::string(kernelName()).size(), 0u);
}

TEST(Gf256, MulRegionMatchesScalar)
{
    Rng rng(6);
    std::vector<Elem> src(100), dst(100);
    for (auto &v : src)
        v = static_cast<Elem>(rng.below(256));
    mulRegion(dst, src, 0x3C);
    for (std::size_t i = 0; i < src.size(); ++i)
        EXPECT_EQ(dst[i], mul(0x3C, src[i]));
}

TEST(Matrix, IdentityMultiplication)
{
    Matrix a = Matrix::cauchy(4, 4);
    Matrix i = Matrix::identity(4);
    EXPECT_EQ(a.multiply(i), a);
    EXPECT_EQ(i.multiply(a), a);
}

TEST(Matrix, InverseRoundTrip)
{
    Matrix a = Matrix::cauchy(6, 6);
    Matrix ainv;
    ASSERT_TRUE(a.invert(ainv));
    EXPECT_EQ(a.multiply(ainv), Matrix::identity(6));
    EXPECT_EQ(ainv.multiply(a), Matrix::identity(6));
}

TEST(Matrix, SingularDetected)
{
    Matrix a(2, 2);
    a.set(0, 0, 3);
    a.set(0, 1, 5);
    a.set(1, 0, 3);
    a.set(1, 1, 5); // duplicate row
    Matrix out;
    EXPECT_FALSE(a.invert(out));
}

TEST(Matrix, CauchySquareSubmatricesInvertible)
{
    // The MDS-enabling property: every square submatrix of a Cauchy
    // matrix is nonsingular. Sample random submatrices.
    Matrix c = Matrix::cauchy(4, 10);
    Rng rng(7);
    for (int trial = 0; trial < 200; ++trial) {
        std::size_t sz = 1 + rng.below(4);
        // pick sz distinct rows and columns
        std::vector<std::size_t> rsel, csel;
        while (rsel.size() < sz) {
            std::size_t r = rng.below(4);
            if (std::find(rsel.begin(), rsel.end(), r) == rsel.end())
                rsel.push_back(r);
        }
        while (csel.size() < sz) {
            std::size_t col = rng.below(10);
            if (std::find(csel.begin(), csel.end(), col) == csel.end())
                csel.push_back(col);
        }
        Matrix sub(sz, sz);
        for (std::size_t i = 0; i < sz; ++i)
            for (std::size_t j = 0; j < sz; ++j)
                sub.set(i, j, c.at(rsel[i], csel[j]));
        Matrix out;
        EXPECT_TRUE(sub.invert(out)) << "trial " << trial;
    }
}

TEST(Matrix, VandermondeShape)
{
    Matrix v = Matrix::vandermonde(3, 4);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(v.at(i, 0), 1);
        EXPECT_EQ(v.at(i, 1), static_cast<Elem>(i + 1));
    }
}

TEST(Matrix, SelectRows)
{
    Matrix c = Matrix::cauchy(4, 3);
    Matrix sel = c.selectRows({2, 0});
    EXPECT_EQ(sel.rows(), 2u);
    for (std::size_t j = 0; j < 3; ++j) {
        EXPECT_EQ(sel.at(0, j), c.at(2, j));
        EXPECT_EQ(sel.at(1, j), c.at(0, j));
    }
}

TEST(Matrix, MultiplyKnownValues)
{
    // (A*B)*x == A*(B*x) sanity on random data.
    Rng rng(8);
    Matrix a(3, 3), b(3, 3);
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j) {
            a.set(i, j, static_cast<Elem>(rng.below(256)));
            b.set(i, j, static_cast<Elem>(rng.below(256)));
        }
    Matrix x(3, 1);
    for (std::size_t i = 0; i < 3; ++i)
        x.set(i, 0, static_cast<Elem>(rng.below(256)));
    EXPECT_EQ(a.multiply(b).multiply(x), a.multiply(b.multiply(x)));
}

} // namespace
} // namespace gf
} // namespace chameleon
