/**
 * @file
 * Tests for the trace-file loader: parsing (ops, keys, comments,
 * errors), empirical profile construction, and end-to-end replay
 * through the foreground driver.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "traffic/foreground_driver.hh"
#include "traffic/trace_file.hh"

namespace chameleon {
namespace traffic {
namespace {

TEST(TraceParse, BasicRecords)
{
    std::istringstream in(
        "R 17 4096\n"
        "W 42 1048576\n"
        "GET 17 512\n"
        "put 9 100\n");
    auto records = parseTrace(in);
    ASSERT_EQ(records.size(), 4u);
    EXPECT_TRUE(records[0].isRead);
    EXPECT_EQ(records[0].key, 17u);
    EXPECT_DOUBLE_EQ(records[0].bytes, 4096.0);
    EXPECT_FALSE(records[1].isRead);
    EXPECT_TRUE(records[2].isRead);
    EXPECT_FALSE(records[3].isRead);
    EXPECT_EQ(records[3].key, 9u);
}

TEST(TraceParse, CommentsAndBlanksIgnored)
{
    std::istringstream in(
        "# a trace\n"
        "\n"
        "R 1 100  # trailing comment\n"
        "   \n"
        "W 2 200\n");
    auto records = parseTrace(in);
    EXPECT_EQ(records.size(), 2u);
}

TEST(TraceParse, NonNumericKeysAreHashedStably)
{
    std::istringstream in1("R user:alpha 100\nR user:alpha 100\n"
                           "R user:beta 100\n");
    auto records = parseTrace(in1);
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].key, records[1].key);
    EXPECT_NE(records[0].key, records[2].key);
}

TEST(TraceParse, BadOpIsFatal)
{
    std::istringstream in("X 1 100\n");
    EXPECT_DEATH(parseTrace(in), "unknown op");
}

TEST(TraceParse, MissingFieldsFatal)
{
    std::istringstream in("R 1\n");
    EXPECT_DEATH(parseTrace(in), "expected");
}

TEST(TraceParse, NonPositiveSizeFatal)
{
    std::istringstream in("R 1 0\n");
    EXPECT_DEATH(parseTrace(in), "non-positive");
}

TEST(LoadTraceFile, MissingFileFatal)
{
    EXPECT_DEATH(loadTraceFile("/nonexistent/definitely.trace"),
                 "cannot open");
}

TEST(ProfileFromRecords, MatchesEmpiricalMix)
{
    std::vector<TraceRecord> records;
    for (int i = 0; i < 90; ++i)
        records.push_back({true, static_cast<uint64_t>(i), 1000.0});
    for (int i = 0; i < 10; ++i)
        records.push_back({false, static_cast<uint64_t>(i), 9000.0});
    auto profile = profileFromRecords("mytrace", records);
    EXPECT_EQ(profile.name, "mytrace");
    EXPECT_NEAR(profile.readFraction, 0.9, 1e-9);
    // Sampled sizes come from the empirical set only.
    Rng rng(5);
    double small = 0, large = 0;
    for (int i = 0; i < 10000; ++i) {
        Bytes b = profile.valueSize(rng);
        ASSERT_TRUE(b == 1000.0 || b == 9000.0);
        (b == 1000.0 ? small : large) += 1;
    }
    EXPECT_NEAR(small / 10000.0, 0.9, 0.02);
    (void)large;
}

TEST(ProfileFromRecords, ReplaysThroughDriver)
{
    std::vector<TraceRecord> records = {
        {true, 1, 64.0 * units::KiB},
        {false, 2, 128.0 * units::KiB},
        {true, 3, 32.0 * units::KiB},
    };
    auto profile = profileFromRecords("replay", records);
    profile.workersPerClient = 2;
    profile.idleMean = 0.0;

    sim::Simulator sim;
    cluster::ClusterConfig cfg;
    cfg.numNodes = 6;
    cfg.numClients = 1;
    cluster::Cluster cluster(sim, cfg);
    ForegroundDriver driver(cluster, profile, Rng(7), 50);
    driver.start();
    sim.run();
    EXPECT_TRUE(driver.finished());
    EXPECT_EQ(driver.completedRequests(), 50u);
    EXPECT_GT(driver.completedBytes(), 0.0);
}

} // namespace
} // namespace traffic
} // namespace chameleon
