/**
 * @file
 * End-to-end tests of the ChameleonEC scheduler: full-node repair on
 * an idle and a loaded cluster, phase pacing, straggler handling
 * (re-tuning and re-ordering), ablation switches, priority policies,
 * multi-node failure, and LRC/Butterfly generality.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "cluster/stripe_manager.hh"
#include "ec/factory.hh"
#include "repair/chameleon_scheduler.hh"
#include "repair/executor.hh"
#include "repair/monitor.hh"
#include "util/rng.hh"

namespace chameleon {
namespace repair {
namespace {

struct Rig
{
    explicit Rig(std::shared_ptr<const ec::ErasureCode> code,
                 int nodes = 14, int stripes = 8, Rate link = 100.0,
                 Rate disk = 1000.0)
        : cluster(sim, makeConfig(nodes, link, disk)),
          stripesMgr(code, nodes),
          executor(cluster, ExecutorConfig{64.0, 8.0}),
          monitor(cluster, 1.0)
    {
        Rng rng(101);
        stripesMgr.createStripes(stripes, rng);
        monitor.start();
    }

    static cluster::ClusterConfig
    makeConfig(int nodes, Rate link, Rate disk)
    {
        cluster::ClusterConfig cfg;
        cfg.numNodes = nodes;
        cfg.numClients = 1;
        cfg.uplinkBw = link;
        cfg.downlinkBw = link;
        cfg.diskBw = disk;
        cfg.usageWindow = 5.0;
        return cfg;
    }

    ChameleonScheduler
    makeScheduler(ChameleonConfig cfg = {})
    {
        return ChameleonScheduler(stripesMgr, executor, monitor, cfg,
                                  Rng(7));
    }

    sim::Simulator sim;
    cluster::Cluster cluster;
    cluster::StripeManager stripesMgr;
    RepairExecutor executor;
    BandwidthMonitor monitor;
};

TEST(Chameleon, FullNodeRepairCompletes)
{
    Rig rig(ec::makeRs(4, 2));
    auto lost = rig.stripesMgr.failNode(0);
    ASSERT_FALSE(lost.empty());
    ChameleonConfig cfg;
    cfg.tPhase = 5.0;
    auto sched = rig.makeScheduler(cfg);
    sched.start(lost);
    rig.sim.run(600.0);
    ASSERT_TRUE(sched.finished());
    EXPECT_EQ(sched.chunksRepaired(), static_cast<int>(lost.size()));
    EXPECT_GT(sched.throughput(), 0.0);
    EXPECT_GE(sched.phasesRun(), 1);
    EXPECT_TRUE(rig.stripesMgr.lostChunks().empty());
    for (const auto &fc : lost)
        EXPECT_NE(rig.stripesMgr.location(fc.stripe, fc.chunk), 0);
}

TEST(Chameleon, EmptyPendingFinishesImmediately)
{
    Rig rig(ec::makeRs(4, 2));
    auto sched = rig.makeScheduler();
    sched.start({});
    EXPECT_TRUE(sched.finished());
    EXPECT_EQ(sched.chunksRepaired(), 0);
}

TEST(Chameleon, PhasesPaceAdmission)
{
    Rig rig(ec::makeRs(4, 2), 14, 8, /*link=*/10.0);
    auto lost = rig.stripesMgr.failNode(1);
    ASSERT_GE(lost.size(), 2u);
    ChameleonConfig cfg;
    cfg.tPhase = 4.0;
    auto sched = rig.makeScheduler(cfg);
    sched.start(lost);
    rig.sim.run(3000.0);
    ASSERT_TRUE(sched.finished());
    // With a starved network, estimates exceed the phase budget and
    // admission spreads over multiple phases.
    EXPECT_GT(sched.phasesRun(), 1);
}

TEST(Chameleon, AvoidsForegroundLoadedDestination)
{
    Rig rig(ec::makeRs(4, 2));
    // Keep node 10 fully busy with a long foreground flow so the
    // monitor reports it as occupied.
    rig.cluster.network().startFlow(
        {rig.cluster.clientUplink(0), rig.cluster.downlink(10)}, 1e9,
        sim::FlowTag::kForeground, nullptr);
    rig.sim.run(3.0); // let the monitor observe it
    auto lost = rig.stripesMgr.failNode(0);
    ASSERT_FALSE(lost.empty());
    ChameleonConfig cfg;
    cfg.tPhase = 5.0;
    auto sched = rig.makeScheduler(cfg);
    sched.start(lost);
    rig.sim.run(600.0);
    ASSERT_TRUE(sched.finished());
    // Node 10 may appear as a destination only if no alternative
    // existed; with this cluster there are always alternatives, so
    // Chameleon should have routed repairs elsewhere.
    for (const auto &fc : lost)
        EXPECT_NE(rig.stripesMgr.location(fc.stripe, fc.chunk), 10);
}

TEST(Chameleon, StragglerTriggersRetuning)
{
    Rig rig(ec::makeRs(4, 2), 14, 8, /*link=*/20.0);
    auto lost = rig.stripesMgr.failNode(0);
    ASSERT_FALSE(lost.empty());
    ChameleonConfig cfg;
    cfg.tPhase = 30.0;
    cfg.checkPeriod = 0.5;
    cfg.stragglerSlack = 0.5;
    auto sched = rig.makeScheduler(cfg);
    sched.start(lost);
    // Throttle a busy node's uplink shortly after repair starts.
    rig.sim.schedule(1.0, [&] {
        for (NodeId n = 1; n < 6; ++n)
            rig.cluster.network().setCapacity(rig.cluster.uplink(n),
                                              0.5);
    });
    rig.sim.schedule(40.0, [&] {
        for (NodeId n = 1; n < 6; ++n)
            rig.cluster.network().setCapacity(rig.cluster.uplink(n),
                                              20.0);
    });
    rig.sim.run(4000.0);
    ASSERT_TRUE(sched.finished());
    EXPECT_GT(sched.retunes() + sched.reorders(), 0)
        << "straggler went unnoticed";
}

TEST(Chameleon, AblationSwitchesSuppressSar)
{
    Rig rig(ec::makeRs(4, 2), 14, 8, /*link=*/20.0);
    auto lost = rig.stripesMgr.failNode(0);
    ChameleonConfig cfg;
    cfg.enableReordering = false;
    cfg.enableRetuning = false;
    cfg.checkPeriod = 0.5;
    cfg.stragglerSlack = 0.5;
    auto sched = rig.makeScheduler(cfg);
    sched.start(lost);
    rig.sim.schedule(1.0, [&] {
        rig.cluster.network().setCapacity(rig.cluster.uplink(2), 0.5);
    });
    rig.sim.schedule(30.0, [&] {
        rig.cluster.network().setCapacity(rig.cluster.uplink(2), 20.0);
    });
    rig.sim.run(4000.0);
    ASSERT_TRUE(sched.finished());
    EXPECT_EQ(sched.retunes(), 0);
    EXPECT_EQ(sched.reorders(), 0);
}

TEST(Chameleon, MultiNodeFailureAllPriorities)
{
    for (auto priority :
         {RepairPriority::kSequential, RepairPriority::kMostFailedFirst,
          RepairPriority::kShortestFirst}) {
        Rig rig(ec::makeRs(4, 2), 16, 8);
        auto lost = rig.stripesMgr.failNode(0);
        auto lost2 = rig.stripesMgr.failNode(1);
        lost.insert(lost.end(), lost2.begin(), lost2.end());
        ChameleonConfig cfg;
        cfg.tPhase = 5.0;
        cfg.priority = priority;
        auto sched = rig.makeScheduler(cfg);
        sched.start(lost);
        rig.sim.run(2000.0);
        ASSERT_TRUE(sched.finished());
        EXPECT_TRUE(rig.stripesMgr.lostChunks().empty());
    }
}

TEST(Chameleon, WorksWithLrc)
{
    Rig rig(ec::makeLrc(8, 2, 2), 16, 6);
    auto lost = rig.stripesMgr.failNode(3);
    ASSERT_FALSE(lost.empty());
    ChameleonConfig cfg;
    cfg.tPhase = 5.0;
    auto sched = rig.makeScheduler(cfg);
    sched.start(lost);
    rig.sim.run(1000.0);
    ASSERT_TRUE(sched.finished());
    EXPECT_TRUE(rig.stripesMgr.lostChunks().empty());
}

TEST(Chameleon, WorksWithButterfly)
{
    Rig rig(ec::makeButterfly(), 10, 6);
    auto lost = rig.stripesMgr.failNode(2);
    ASSERT_FALSE(lost.empty());
    ChameleonConfig cfg;
    cfg.tPhase = 5.0;
    auto sched = rig.makeScheduler(cfg);
    sched.start(lost);
    rig.sim.run(1000.0);
    ASSERT_TRUE(sched.finished());
    EXPECT_TRUE(rig.stripesMgr.lostChunks().empty());
}

TEST(Chameleon, DegradedReadSingleChunk)
{
    Rig rig(ec::makeRs(4, 2));
    rig.stripesMgr.markLost(0, 1);
    ChameleonConfig cfg;
    cfg.tPhase = 5.0;
    auto sched = rig.makeScheduler(cfg);
    sched.start({{0, 1}});
    rig.sim.run(200.0);
    ASSERT_TRUE(sched.finished());
    EXPECT_FALSE(rig.stripesMgr.chunkLost(0, 1));
    EXPECT_LT(sched.finishTime() - sched.startTime(), 60.0);
}

TEST(Chameleon, ReorderingWakesPostponedChunk)
{
    // Force a pause via a straggler that cannot be re-tuned
    // (retuning disabled), then verify the postponed chunk finishes
    // after the straggler clears.
    Rig rig(ec::makeRs(4, 2), 14, 8, /*link=*/20.0);
    auto lost = rig.stripesMgr.failNode(0);
    ChameleonConfig cfg;
    cfg.enableRetuning = false;
    cfg.checkPeriod = 0.5;
    cfg.stragglerSlack = 0.5;
    cfg.tPhase = 15.0;
    auto sched = rig.makeScheduler(cfg);
    sched.start(lost);
    rig.sim.schedule(1.0, [&] {
        rig.cluster.network().setCapacity(rig.cluster.uplink(3), 0.2);
    });
    rig.sim.schedule(25.0, [&] {
        rig.cluster.network().setCapacity(rig.cluster.uplink(3), 20.0);
    });
    rig.sim.run(4000.0);
    ASSERT_TRUE(sched.finished());
}

} // namespace
} // namespace repair
} // namespace chameleon
