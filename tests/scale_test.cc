/**
 * @file
 * Scale-out cluster layer tests: the differential harness proving
 * the scanner/queue repair path produces byte-identical outcomes to
 * the direct-session path at small scale, property/fuzz coverage of
 * RepairQueue priority and job-limit invariants under seeded chaos,
 * the StripeTable memory budget at 10^6 stripes, and a regression
 * guard that per-event solver work stays flat as the cluster grows.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "cluster/repair_queue.hh"
#include "cluster/replicator_scanner.hh"
#include "cluster/stripe_manager.hh"
#include "ec/factory.hh"
#include "fault/fault.hh"
#include "runtime/runtime.hh"
#include "sim/simulator.hh"

using namespace chameleon;
using namespace chameleon::cluster;
using namespace chameleon::runtime;

namespace {

// --- differential: scanner path vs direct path --------------------

/** Small, fast cell: no foreground trace, few chunks. */
ExperimentConfig
diffConfig(uint64_t seed)
{
    ExperimentConfig cfg;
    cfg.chunksToRepair = 3;
    cfg.seed = seed;
    cfg.trace.reset();
    return cfg;
}

/** Same cell, routed through the scanner/queue path. Permissive
 * admission caps so the prime sweep dispatches the whole work list
 * in one batch, exactly like the direct hand-off. */
ExperimentConfig
withScanner(ExperimentConfig cfg)
{
    cfg.scanner.enabled = true;
    cfg.scanner.batchSize = 1 << 20;
    cfg.scanner.queue.maxTotalJobs = 1 << 20;
    cfg.scanner.queue.maxNodeJobs = 1 << 20;
    return cfg;
}

void
expectIdentical(Algorithm algorithm, const ExperimentConfig &cfg)
{
    Runtime direct(algorithm, cfg);
    ExperimentResult a = direct.run();
    Runtime scanned(algorithm, withScanner(cfg));
    ExperimentResult b = scanned.run();
    // Spot-check the interesting fields first for a readable diff...
    EXPECT_EQ(a.chunksRepaired, b.chunksRepaired);
    EXPECT_EQ(a.chunksUnrecoverable, b.chunksUnrecoverable);
    EXPECT_DOUBLE_EQ(a.repairTime, b.repairTime);
    EXPECT_DOUBLE_EQ(a.repairThroughput, b.repairThroughput);
    EXPECT_EQ(a.throughputTimeline.size(), b.throughputTimeline.size());
    EXPECT_EQ(a.uplinks.size(), b.uplinks.size());
    // ...then require the full field-wise record to match.
    EXPECT_TRUE(a == b) << "scanner-path result diverges from the "
                           "direct path for "
                        << algorithmName(algorithm);
}

TEST(ScaleDifferential, ScannerPathMatchesDirectCr)
{
    expectIdentical(Algorithm::kCr, diffConfig(11));
}

TEST(ScaleDifferential, ScannerPathMatchesDirectChameleon)
{
    expectIdentical(Algorithm::kChameleon, diffConfig(12));
}

TEST(ScaleDifferential, ScannerPathMatchesDirectEcpipeChainDag)
{
    ExperimentConfig cfg = diffConfig(13);
    cfg.topology.kind = dag::RepairTopology::kChain;
    expectIdentical(Algorithm::kEcpipe, cfg);
}

TEST(ScaleDifferential, ScannerPathMatchesDirectUnderForeground)
{
    ExperimentConfig cfg = diffConfig(14);
    std::optional<traffic::TraceProfile> profile;
    ASSERT_TRUE(tryResolveTrace("ycsb-a", &profile));
    cfg.trace = profile;
    expectIdentical(Algorithm::kCr, cfg);
}

TEST(ScaleDifferential, ExactStripeCountKnob)
{
    // stripes > 0 creates exactly that many stripes up front.
    ExperimentConfig cfg = diffConfig(15);
    cfg.stripes = 300;
    Runtime rt(Algorithm::kCr, withScanner(cfg));
    ExperimentResult r = rt.run();
    EXPECT_GT(r.chunksRepaired, 0);
    EXPECT_EQ(r.chunksUnrecoverable, 0);
}

// --- RepairQueue property/fuzz under seeded chaos ------------------

/** Scanner-equivalent tier classification from stored lost bits. */
RepairTier
tierFor(const StripeManager &stripes, StripeId stripe)
{
    const int lost =
        std::popcount(stripes.table().lostMask(stripe));
    const int margin =
        stripes.code().n() - lost - stripes.code().k();
    return margin < 1 ? RepairTier::kDataLossRisk
                      : RepairTier::kDegraded;
}

/** Pushes every currently lost chunk at its current tier (push
 * dedups and escalates queued entries, like a scanner epoch). */
void
rescanAll(StripeManager &stripes, RepairQueue &queue)
{
    for (StripeId s = 0; s < stripes.stripeCount(); ++s) {
        uint64_t bits = stripes.table().lostMask(s);
        const RepairTier tier = tierFor(stripes, s);
        while (bits) {
            const int c = std::countr_zero(bits);
            bits &= bits - 1;
            queue.push(FailedChunk{s, static_cast<ChunkIndex>(c)},
                       tier);
        }
    }
}

/** Repairs one chunk the way the session does (repair + relocate)
 * when the stripe is recoverable and a destination exists. */
bool
tryRepair(StripeManager &stripes, const FailedChunk &fc, Rng &rng)
{
    if (static_cast<int>(stripes.availableChunks(fc.stripe).size()) <
        stripes.code().k())
        return false;
    auto dests = stripes.candidateDestinations(fc.stripe);
    if (dests.empty())
        return false;
    stripes.markRepaired(fc.stripe, fc.chunk);
    stripes.relocate(fc.stripe, fc.chunk,
                     dests[rng.below(dests.size())]);
    return true;
}

TEST(ScaleQueueProperty, SeededChaosKeepsQueueInvariants)
{
    // Randomized crash/rejoin timelines from the chaos generator,
    // applied eagerly against a StripeManager while the queue is
    // pumped and drained. Invariants, checked at every admission:
    //  1. no priority inversion — when a tier-t entry is admitted,
    //     no lower-numbered (more urgent) tier holds an admissible
    //     entry;
    //  2. per-node job limits and the cluster-wide cap are never
    //     exceeded;
    //  3. closure — after the chaos ends, every lost chunk is
    //     either repaired or its stripe is unrecoverable.
    // On failure the chaos seed lands in chaos_seed_scalequeue.txt
    // (ChurnFuzz convention, per-suite filename so parallel ctest
    // runs cannot clobber each other) so CI can attach it.
    for (uint64_t seed = 1; seed <= 12; ++seed) {
        SCOPED_TRACE("chaos seed " + std::to_string(seed));
        Rng rng(seed * 9176);
        auto code = ec::makeRs(4, 2);
        const int nodes = 12;
        StripeManager stripes(code, nodes);
        {
            Rng prng = rng.split();
            stripes.createStripes(120, prng);
        }
        RepairQueueConfig qcfg;
        qcfg.maxTotalJobs = 5;
        qcfg.maxNodeJobs = 2;
        RepairQueue queue(stripes, qcfg);

        auto chaos = fault::generateChaos(
            fault::ChaosConfig::fromRate(0.4, 80.0), nodes, seed);
        struct Ev
        {
            SimTime at;
            bool crash;
            NodeId node;
        };
        std::vector<Ev> evs;
        for (const auto &fe : chaos.events) {
            if (fe.kind != fault::FaultKind::kNodeCrash)
                continue;
            evs.push_back({fe.at, true, fe.node});
            if (fe.duration > 0)
                evs.push_back({fe.at + fe.duration, false, fe.node});
        }
        std::stable_sort(evs.begin(), evs.end(),
                         [](const Ev &a, const Ev &b) {
                             return a.at < b.at;
                         });

        std::vector<AdmittedRepair> inflight;
        auto pump = [&] {
            while (auto adm = queue.pop()) {
                for (int t = 0;
                     t < static_cast<int>(adm->tier); ++t)
                    EXPECT_FALSE(queue.admissibleInTier(
                        static_cast<RepairTier>(t)))
                        << "priority inversion: admitted tier "
                        << static_cast<int>(adm->tier)
                        << " while tier " << t << " is admissible";
                for (NodeId n = 0; n < nodes; ++n)
                    EXPECT_LE(queue.jobsOnNode(n),
                              qcfg.maxNodeJobs);
                EXPECT_LE(queue.inFlight(), qcfg.maxTotalJobs);
                inflight.push_back(*adm);
            }
        };
        auto completeSome = [&](bool all) {
            while (!inflight.empty()) {
                const std::size_t i = rng.below(inflight.size());
                const FailedChunk fc = inflight[i].chunk;
                inflight.erase(inflight.begin() +
                               static_cast<std::ptrdiff_t>(i));
                tryRepair(stripes, fc, rng);
                queue.complete(fc);
                if (!all && rng.below(2) == 0)
                    break;
            }
        };

        for (const Ev &ev : evs) {
            if (ev.crash) {
                NodeId n = ev.node;
                if (n == kInvalidNode ||
                    n >= static_cast<NodeId>(nodes) ||
                    stripes.nodeFailed(n))
                    n = static_cast<NodeId>(rng.below(nodes));
                if (stripes.nodeFailed(n) ||
                    stripes.failedNodeCount() >= 4)
                    continue;
                stripes.failNode(n);
            } else {
                if (ev.node == kInvalidNode ||
                    !stripes.nodeFailed(ev.node))
                    continue;
                stripes.rejoinNode(ev.node);
            }
            queue.invalidate();
            rescanAll(stripes, queue);
            pump();
            completeSome(false);
        }

        // Drain: one final rescan, then pump/complete to empty.
        queue.invalidate();
        rescanAll(stripes, queue);
        int guard = 0;
        for (;;) {
            pump();
            if (inflight.empty())
                break;
            completeSome(true);
            ASSERT_LT(++guard, 100000) << "drain did not converge";
        }
        EXPECT_TRUE(queue.idle());

        // Closure: every chunk still lost belongs to a stripe the
        // code cannot reconstruct.
        for (StripeId s = 0; s < stripes.stripeCount(); ++s) {
            const int lost =
                std::popcount(stripes.table().lostMask(s));
            if (lost == 0)
                continue;
            EXPECT_LT(code->n() - lost, code->k())
                << "recoverable stripe " << s
                << " left unrepaired with " << lost << " losses";
        }

        if (::testing::Test::HasFailure()) {
            std::ofstream("chaos_seed_scalequeue.txt")
                << seed << "\n"
                << chaos.str() << "\n";
            std::fprintf(stderr,
                         "scale queue fuzz failed; chaos seed %llu "
                         "(schedule in chaos_seed_scalequeue.txt)\n",
                         static_cast<unsigned long long>(seed));
            break;
        }
    }
}

TEST(ScaleQueueProperty, ScannerChaosClosesEveryLoss)
{
    // Full-component chaos: deferred crashes + the real scanner
    // sweep/admission loop under the simulator, with a toy repair
    // worker standing in for the session. Every loss must be
    // discovered, admitted, and end repaired-or-unrecoverable.
    for (uint64_t seed = 1; seed <= 6; ++seed) {
        SCOPED_TRACE("chaos seed " + std::to_string(seed));
        Rng rng(seed * 31337);
        sim::Simulator sim;
        auto code = ec::makeRs(4, 2);
        const int nodes = 12;
        StripeManager stripes(code, nodes);
        {
            Rng prng = rng.split();
            stripes.createStripes(100, prng);
        }
        RepairQueueConfig qcfg;
        qcfg.maxTotalJobs = 8;
        qcfg.maxNodeJobs = 2;
        ScannerConfig scfg;
        scfg.batchSize = 16;
        scfg.tickInterval = 0.5;
        scfg.queue = qcfg;
        RepairQueue queue(stripes, qcfg);
        ReplicatorScanner scanner(stripes, queue, sim, scfg);

        std::vector<FailedChunk> inflight;
        scanner.setDispatch([&](std::vector<FailedChunk> batch) {
            inflight.insert(inflight.end(), batch.begin(),
                            batch.end());
        });

        auto chaos = fault::generateChaos(
            fault::ChaosConfig::fromRate(0.3, 60.0), nodes, seed);
        Rng pickRng = rng.split();
        for (std::size_t i = 0; i < chaos.events.size(); ++i) {
            const auto &fe = chaos.events[i];
            if (fe.kind != fault::FaultKind::kNodeCrash)
                continue;
            sim.schedule(fe.at + 1.0, [&, i] {
                const auto &ev = chaos.events[i];
                NodeId n = ev.node;
                if (n == kInvalidNode ||
                    n >= static_cast<NodeId>(nodes) ||
                    stripes.nodeFailed(n))
                    n = static_cast<NodeId>(pickRng.below(nodes));
                if (stripes.nodeFailed(n) ||
                    stripes.failedNodeCount() >= 4)
                    return;
                stripes.failNodeDeferred(n);
                scanner.noteCrash(n);
                if (ev.duration > 0)
                    sim.scheduleAfter(ev.duration, [&, n] {
                        if (stripes.nodeFailed(n)) {
                            stripes.rejoinNode(n);
                            scanner.noteRejoin(n);
                        }
                    });
            });
        }

        // Toy repair worker: one chunk per 0.3 s.
        std::function<void()> worker = [&] {
            if (sim.now() > 400.0)
                return;
            if (!inflight.empty()) {
                const FailedChunk fc = inflight.front();
                inflight.erase(inflight.begin());
                const bool ok = tryRepair(stripes, fc, rng);
                scanner.onChunkOutcome(fc, ok);
            }
            sim.scheduleAfter(0.3, [&worker] { worker(); });
        };
        sim.scheduleAfter(0.3, [&worker] { worker(); });

        scanner.start();
        sim.run(400.0);
        scanner.stop();

        // Drain synchronously: one final full sweep enqueues any
        // not-yet-admitted losses, then pump/complete to empty.
        while (!inflight.empty()) {
            const FailedChunk fc = inflight.front();
            inflight.erase(inflight.begin());
            scanner.onChunkOutcome(fc, tryRepair(stripes, fc, rng));
        }
        scanner.primeSync();
        int guard = 0;
        while (!queue.idle() || !inflight.empty()) {
            if (inflight.empty())
                scanner.pumpAdmission();
            while (!inflight.empty()) {
                const FailedChunk fc = inflight.front();
                inflight.erase(inflight.begin());
                scanner.onChunkOutcome(fc,
                                       tryRepair(stripes, fc, rng));
            }
            ASSERT_LT(++guard, 100000) << "drain did not converge";
        }
        EXPECT_TRUE(scanner.discoveryComplete());

        for (StripeId s = 0; s < stripes.stripeCount(); ++s) {
            const int lost =
                std::popcount(stripes.table().lostMask(s));
            if (lost == 0)
                continue;
            EXPECT_LT(code->n() - lost, code->k())
                << "recoverable stripe " << s
                << " left unrepaired with " << lost << " losses";
        }

        if (::testing::Test::HasFailure()) {
            std::ofstream("chaos_seed_scannerchaos.txt")
                << seed << "\n"
                << chaos.str() << "\n";
            std::fprintf(stderr,
                         "scanner chaos closure failed; chaos seed "
                         "%llu (schedule in chaos_seed_scannerchaos.txt)\n",
                         static_cast<unsigned long long>(seed));
            break;
        }
    }
}

// --- memory budget -------------------------------------------------

TEST(ScaleMemory, MillionStripesStayUnderDocumentedBudget)
{
    // 1000 nodes, 10^6 stripes of RS(10,4): the SoA table documents
    // a budget of at most 16*n + 64 bytes per stripe (placement +
    // reverse index + lost/gen/state arrays, capacity included).
    auto code = ec::makeRs(10, 4);
    const int n = code->n();
    StripeManager stripes(code, 1000);
    Rng rng(7);
    const int count = 1000000;
    stripes.createStripes(count, rng);
    ASSERT_EQ(stripes.stripeCount(), count);
    const double per_stripe =
        static_cast<double>(stripes.table().memoryBytes()) / count;
    EXPECT_LE(per_stripe, 16.0 * n + 64.0)
        << "StripeTable spends " << per_stripe
        << " bytes/stripe, over the documented budget";
}

// --- solver work stays flat as the cluster grows -------------------

double
dirtyVisitsForNodes(int num_nodes)
{
    ExperimentConfig cfg;
    cfg.chunksToRepair = 4;
    cfg.seed = 99;
    cfg.trace.reset();
    cfg.cluster.numNodes = num_nodes;
    RuntimeOptions opts;
    opts.isolateTelemetry = true;
    Runtime rt(Algorithm::kCr, cfg, opts);
    rt.run();
    const auto snap = rt.runTelemetry()->metrics.snapshot();
    const auto *sample =
        snap.find("sim.solver.dirty_resource_visits");
    return sample ? sample->value : 0.0;
}

TEST(ScaleSolver, DirtyResourceVisitsStayFlatAcrossClusterSize)
{
    // The same repair workload on a 10x larger cluster must not do
    // ~10x the solver work: the incremental solver only visits
    // resources dirtied by the flows actually present. Allow slack
    // for placement spread, but reject O(nodes) regressions.
    const double small = dirtyVisitsForNodes(20);
    const double large = dirtyVisitsForNodes(200);
    ASSERT_GT(small, 0.0);
    ASSERT_GT(large, 0.0);
    EXPECT_LT(large, small * 4.0)
        << "per-event solver work scales with cluster size: "
        << small << " visits at 20 nodes vs " << large
        << " at 200 nodes";
}

} // namespace
