/**
 * @file
 * Randomized property tests over the whole stack:
 *  - coding: random (k, m), random failure patterns, random helper
 *    subsets — repair and decode must be byte-exact whenever the
 *    pattern is recoverable;
 *  - plans: random trees evaluate byte-exactly; planner output over
 *    random bandwidth vectors is always a valid plan whose task
 *    counts balance;
 *  - network: byte conservation — every flow's bytes show up in the
 *    accounting of every resource on its path;
 *  - executor fuzz: random plans, random mid-flight retunes, pauses,
 *    and capacity changes — every chunk completes and the
 *    exactly-once contribution invariant (asserted internally) holds;
 *  - churn fuzz: random chaos schedules against a full repair
 *    session — no repair traffic ever crosses a dead node's links,
 *    and pending + in-flight + repaired + unrecoverable always sums
 *    to every chunk ever lost.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "cluster/stripe_manager.hh"
#include "ec/factory.hh"
#include "ec/lrc_code.hh"
#include "ec/rs_code.hh"
#include "fault/fault.hh"
#include "repair/chameleon_planner.hh"
#include "repair/executor.hh"
#include "repair/plan.hh"
#include "repair/session.hh"
#include "repair/strategies.hh"
#include "util/rng.hh"

namespace chameleon {
namespace {

ec::Buffer
randomChunk(Rng &rng, std::size_t size)
{
    ec::Buffer b(size);
    for (auto &v : b)
        v = static_cast<uint8_t>(rng.below(256));
    return b;
}

std::vector<ec::Buffer>
randomStripe(Rng &rng, const ec::ErasureCode &code, std::size_t size)
{
    std::vector<ec::Buffer> data;
    for (int i = 0; i < code.k(); ++i)
        data.push_back(randomChunk(rng, size));
    auto parity = code.encode(data);
    std::vector<ec::Buffer> chunks = data;
    for (auto &p : parity)
        chunks.push_back(std::move(p));
    return chunks;
}

// --------------------------------------------------------- coding

using KmParam = std::pair<int, int>;

class RsRandomRepair : public ::testing::TestWithParam<KmParam>
{
};

TEST_P(RsRandomRepair, RandomHelperSubsetsAlwaysReconstruct)
{
    auto [k, m] = GetParam();
    ec::RsCode code(k, m);
    Rng rng(1000 + static_cast<uint64_t>(k * 31 + m));
    auto chunks = randomStripe(rng, code, 96);

    for (int trial = 0; trial < 40; ++trial) {
        auto failed = static_cast<ChunkIndex>(
            rng.below(static_cast<uint64_t>(code.n())));
        std::vector<ChunkIndex> survivors;
        for (ChunkIndex c = 0; c < code.n(); ++c)
            if (c != failed)
                survivors.push_back(c);
        // Uniform random k-subset.
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(k); ++i) {
            auto j = i + rng.below(survivors.size() - i);
            std::swap(survivors[i], survivors[j]);
        }
        survivors.resize(static_cast<std::size_t>(k));
        auto spec = code.specFor(failed, survivors);
        ASSERT_TRUE(spec.has_value());
        std::vector<ec::Buffer> helper_data;
        for (const auto &read : spec->reads)
            helper_data.push_back(
                chunks[static_cast<std::size_t>(read.helper)]);
        EXPECT_EQ(code.repairCompute(*spec, helper_data),
                  chunks[static_cast<std::size_t>(failed)]);
    }
}

TEST_P(RsRandomRepair, RandomFailurePatternsDecodeIffRecoverable)
{
    auto [k, m] = GetParam();
    ec::RsCode code(k, m);
    Rng rng(2000 + static_cast<uint64_t>(k * 13 + m));
    auto chunks = randomStripe(rng, code, 48);

    for (int trial = 0; trial < 40; ++trial) {
        auto damaged = chunks;
        int failures = 1 + static_cast<int>(rng.below(
            static_cast<uint64_t>(code.n())));
        std::set<ChunkIndex> failed;
        while (static_cast<int>(failed.size()) < failures) {
            auto f = static_cast<ChunkIndex>(
                rng.below(static_cast<uint64_t>(code.n())));
            if (failed.insert(f).second)
                damaged[static_cast<std::size_t>(f)].clear();
        }
        bool ok = code.decode(damaged);
        // MDS: recoverable exactly when failures <= m.
        EXPECT_EQ(ok, failures <= m) << "failures=" << failures;
        if (ok) {
            EXPECT_EQ(damaged, chunks);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RsRandomRepair,
    ::testing::Values(KmParam{3, 2}, KmParam{5, 3}, KmParam{7, 3},
                      KmParam{9, 4}, KmParam{11, 4}, KmParam{14, 6},
                      KmParam{20, 8}, KmParam{24, 8}),
    [](const auto &info) {
        return "RS_" + std::to_string(info.param.first) + "_" +
               std::to_string(info.param.second);
    });

using KlmParam = std::tuple<int, int, int>;

class LrcRandomRepair : public ::testing::TestWithParam<KlmParam>
{
};

TEST_P(LrcRandomRepair, EveryChunkRepairsFromEveryFullSurvivorSet)
{
    auto [k, l, m] = GetParam();
    ec::LrcCode code(k, l, m);
    Rng rng(3000 + static_cast<uint64_t>(k));
    auto chunks = randomStripe(rng, code, 64);
    for (ChunkIndex failed = 0; failed < code.n(); ++failed) {
        std::vector<ChunkIndex> avail;
        for (ChunkIndex c = 0; c < code.n(); ++c)
            if (c != failed)
                avail.push_back(c);
        auto spec = code.makeRepairSpec(failed, avail, rng);
        std::vector<ec::Buffer> helper_data;
        for (const auto &read : spec.reads)
            helper_data.push_back(
                chunks[static_cast<std::size_t>(read.helper)]);
        EXPECT_EQ(code.repairCompute(spec, helper_data),
                  chunks[static_cast<std::size_t>(failed)])
            << code.name() << " chunk " << failed;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LrcRandomRepair,
    ::testing::Values(KlmParam{4, 2, 2}, KlmParam{6, 2, 2},
                      KlmParam{6, 3, 3}, KlmParam{12, 4, 2},
                      KlmParam{12, 2, 4}),
    [](const auto &info) {
        return "LRC_" + std::to_string(std::get<0>(info.param)) + "_" +
               std::to_string(std::get<1>(info.param)) + "_" +
               std::to_string(std::get<2>(info.param));
    });

/** Wide-matrix leg (Exp#17): the multi-group LRC's canRepair verdict
 * must agree with full decode on random multi-failure patterns, and
 * repairable patterns must restore every byte. */
TEST(WideCodeProperty, MultiGroupLrcRandomPatternsDecodeIffCanRepair)
{
    auto code = ec::makeCode("lrc(24,4,2,2)");
    Rng rng(4000);
    auto chunks = randomStripe(rng, *code, 48);
    for (int trial = 0; trial < 60; ++trial) {
        int failures = 1 + static_cast<int>(rng.below(6));
        std::set<ChunkIndex> failed;
        auto damaged = chunks;
        while (static_cast<int>(failed.size()) < failures) {
            auto f = static_cast<ChunkIndex>(
                rng.below(static_cast<uint64_t>(code->n())));
            if (failed.insert(f).second)
                damaged[static_cast<std::size_t>(f)].clear();
        }
        std::vector<ChunkIndex> pattern(failed.begin(), failed.end());
        bool ok = code->decode(damaged);
        EXPECT_EQ(ok, code->canRepair(pattern))
            << "failures=" << failures;
        if (ok) {
            EXPECT_EQ(damaged, chunks);
        }
    }
}

// ----------------------------------------------------------- plans

TEST(PlanProperty, RandomTreesEvaluateByteExactly)
{
    Rng rng(77);
    for (int trial = 0; trial < 60; ++trial) {
        int k = 3 + static_cast<int>(rng.below(8));
        int m = 2 + static_cast<int>(rng.below(3));
        ec::RsCode code(k, m);
        auto chunks = randomStripe(rng, code, 64);
        auto failed = static_cast<ChunkIndex>(
            rng.below(static_cast<uint64_t>(code.n())));
        std::vector<ChunkIndex> avail;
        for (ChunkIndex c = 0; c < code.n(); ++c)
            if (c != failed)
                avail.push_back(c);
        auto spec = code.makeRepairSpec(failed, avail, rng);

        // Random in-tree: parent of source i drawn from {later
        // sources} or destination (guarantees acyclicity).
        repair::ChunkRepairPlan plan;
        plan.stripe = 0;
        plan.failedChunk = failed;
        plan.destination = 100;
        int idx = 0;
        for (const auto &read : spec.reads) {
            repair::PlanSource src;
            src.node = idx; // synthetic distinct nodes
            src.chunk = read.helper;
            src.coeff = read.coeff;
            src.fraction = read.fraction;
            int later = static_cast<int>(spec.reads.size()) - idx - 1;
            if (later > 0 && rng.chance(0.6)) {
                src.parent = idx + 1 +
                             static_cast<int>(rng.below(
                                 static_cast<uint64_t>(later)));
            } else {
                src.parent = repair::kToDestination;
            }
            plan.sources.push_back(src);
            ++idx;
        }
        plan.validate();
        EXPECT_EQ(repair::evaluatePlan(plan, chunks),
                  chunks[static_cast<std::size_t>(failed)])
            << "trial " << trial;
    }
}

TEST(PlannerProperty, RandomBandwidthsYieldValidBalancedPlans)
{
    Rng rng(88);
    for (int trial = 0; trial < 200; ++trial) {
        int nodes = 14 + static_cast<int>(rng.below(30));
        int k = 4 + static_cast<int>(rng.below(9));
        int m = 2 + static_cast<int>(rng.below(4));
        if (k + m + 1 > nodes)
            continue;
        auto state = repair::PlannerState::make(nodes, 64.0);
        for (int i = 0; i < nodes; ++i) {
            state.bandUp[static_cast<std::size_t>(i)] =
                rng.uniform(1.0, 100.0);
            state.bandDown[static_cast<std::size_t>(i)] =
                rng.uniform(1.0, 100.0);
        }
        state.relayTaskPenalty = rng.uniform(0.0, 2.0);

        repair::PlannerChunkInput input;
        input.required = k;
        input.combinable = true;
        // Helpers on nodes 1..k+m-1, destination candidates the rest.
        for (int i = 1; i < k + m; ++i) {
            input.helperChunks.push_back(i);
            input.helperNodes.push_back(i);
            input.fractions.push_back(1.0);
        }
        for (int i = k + m; i < nodes; ++i)
            input.destCandidates.push_back(i);

        auto planned = repair::planChunk(state, input);
        ASSERT_TRUE(planned.has_value());
        planned->plan.validate(); // panics on malformed output
        EXPECT_EQ(planned->plan.sources.size(),
                  static_cast<std::size_t>(k));
        EXPECT_GT(planned->estimatedTime, 0.0);
        EXPECT_EQ(planned->edgeExpectation.size(),
                  planned->plan.sources.size());
        // Sources are distinct nodes drawn from the candidates, and
        // the destination is a genuine candidate.
        std::set<NodeId> seen;
        for (const auto &src : planned->plan.sources) {
            EXPECT_TRUE(seen.insert(src.node).second);
            EXPECT_TRUE(std::find(input.helperNodes.begin(),
                                  input.helperNodes.end(), src.node) !=
                        input.helperNodes.end());
        }
        EXPECT_TRUE(std::find(input.destCandidates.begin(),
                              input.destCandidates.end(),
                              planned->plan.destination) !=
                    input.destCandidates.end());
    }
}

TEST(PlannerProperty, TaskCountsBalancePerChunk)
{
    Rng rng(89);
    for (int trial = 0; trial < 100; ++trial) {
        int nodes = 20;
        int k = 4 + static_cast<int>(rng.below(7));
        auto state = repair::PlannerState::make(nodes, 64.0);
        for (int i = 0; i < nodes; ++i) {
            state.bandUp[static_cast<std::size_t>(i)] =
                rng.uniform(1.0, 100.0);
            state.bandDown[static_cast<std::size_t>(i)] =
                rng.uniform(1.0, 100.0);
        }
        repair::PlannerChunkInput input;
        input.required = k;
        input.combinable = true;
        for (int i = 1; i < k + 3; ++i) {
            input.helperChunks.push_back(i);
            input.helperNodes.push_back(i);
            input.fractions.push_back(1.0);
        }
        for (int i = k + 3; i < nodes; ++i)
            input.destCandidates.push_back(i);
        auto planned = repair::planChunk(state, input);
        ASSERT_TRUE(planned.has_value());
        int up = 0, down = 0;
        for (int t : state.taskUp)
            up += t;
        for (int t : state.taskDown)
            down += t;
        EXPECT_EQ(up, k) << "trial " << trial;
        EXPECT_EQ(down, k) << "trial " << trial;
    }
}

// --------------------------------------------------------- network

TEST(NetworkProperty, ByteConservationAcrossRandomFlows)
{
    Rng rng(99);
    sim::Simulator sim;
    sim::FlowNetwork net(sim, 1.0);
    std::vector<sim::ResourceId> resources;
    for (int i = 0; i < 12; ++i)
        resources.push_back(
            net.addResource("r" + std::to_string(i),
                            rng.uniform(10.0, 100.0)));

    std::vector<Bytes> expected(resources.size(), 0.0);
    for (int f = 0; f < 120; ++f) {
        // Random 1-3 hop path of distinct resources.
        std::vector<sim::ResourceId> path;
        int hops = 1 + static_cast<int>(rng.below(3));
        while (static_cast<int>(path.size()) < hops) {
            auto r = resources[rng.below(resources.size())];
            if (std::find(path.begin(), path.end(), r) == path.end())
                path.push_back(r);
        }
        Bytes size = rng.uniform(10.0, 500.0);
        for (auto r : path)
            expected[static_cast<std::size_t>(r)] += size;
        double start = rng.uniform(0.0, 20.0);
        sim.schedule(start, [&net, path, size] {
            net.startFlow(path, size, sim::FlowTag::kRepair, nullptr);
        });
    }
    sim.run();
    for (std::size_t r = 0; r < resources.size(); ++r) {
        EXPECT_NEAR(net.taggedBytes(resources[r],
                                    sim::FlowTag::kRepair),
                    expected[r], 1e-3)
            << "resource " << r;
        // Windowed accounting agrees with the cumulative counter.
        EXPECT_NEAR(net.usage(resources[r], sim::FlowTag::kRepair)
                        .totalBytes(),
                    expected[r], 1e-3);
    }
}

TEST(NetworkProperty, RatesNeverExceedCapacityAtEvents)
{
    Rng rng(101);
    sim::Simulator sim;
    sim::FlowNetwork net(sim, 1.0);
    std::vector<sim::ResourceId> resources;
    std::vector<Rate> caps;
    for (int i = 0; i < 8; ++i) {
        caps.push_back(rng.uniform(5.0, 50.0));
        net.addResource("r" + std::to_string(i), caps.back());
        resources.push_back(static_cast<sim::ResourceId>(i));
    }
    std::vector<sim::FlowId> flows;
    for (int f = 0; f < 60; ++f) {
        std::vector<sim::ResourceId> path = {
            resources[rng.below(8)],
        };
        auto second = resources[rng.below(8)];
        if (second != path[0])
            path.push_back(second);
        flows.push_back(net.startFlow(path, rng.uniform(50.0, 200.0),
                                      sim::FlowTag::kForeground,
                                      nullptr));
    }
    // At this instant, per-resource aggregate rate <= capacity.
    for (std::size_t r = 0; r < resources.size(); ++r) {
        Rate total =
            net.currentTagRate(resources[r],
                               sim::FlowTag::kForeground) +
            net.currentTagRate(resources[r], sim::FlowTag::kRepair);
        EXPECT_LE(total, caps[r] + 1e-9) << "resource " << r;
    }
    sim.run();
}

// ---------------------------------------------------- executor fuzz

TEST(ExecutorFuzz, RandomPlansWithRandomInterventionsComplete)
{
    // 30 randomized scenarios; the executor's internal exactly-once
    // assertions provide the correctness oracle.
    for (uint64_t seed = 1; seed <= 30; ++seed) {
        Rng rng(seed * 7919);
        sim::Simulator sim;
        cluster::ClusterConfig ccfg;
        ccfg.numNodes = 14;
        ccfg.numClients = 0;
        ccfg.uplinkBw = ccfg.downlinkBw = 100.0;
        ccfg.diskBw = 300.0;
        cluster::Cluster cluster(sim, ccfg);
        auto code = ec::makeRs(4 + static_cast<int>(rng.below(4)), 3);
        cluster::StripeManager stripes(code, 14);
        stripes.createStripes(8, rng);
        repair::ExecutorConfig ecfg;
        ecfg.chunkSize = 64.0;
        ecfg.sliceSize = 4.0 + static_cast<double>(rng.below(12));
        ecfg.nodeUploadSlots = 1 + static_cast<int>(rng.below(3));
        ecfg.relayOverheadPerMiB = 0.0; // sizes here are tiny bytes
        repair::RepairExecutor exec(cluster, ecfg);

        int completed = 0;
        std::vector<repair::RepairId> ids;
        int launched = 0;
        for (StripeId s = 0; s < 6; ++s) {
            auto failed = static_cast<ChunkIndex>(
                rng.below(static_cast<uint64_t>(code->n())));
            stripes.markLost(s, failed);
            auto topo = static_cast<repair::Topology>(rng.below(3));
            auto plan = repair::makeBaselinePlan(stripes, {s, failed},
                                                 topo, {}, rng);
            ids.push_back(exec.launch(
                plan, [&](const repair::ChunkRepairPlan &, SimTime) {
                    ++completed;
                }));
            ++launched;
        }

        // Random interventions sprinkled over the run.
        for (int i = 0; i < 25; ++i) {
            double when = rng.uniform(0.05, 6.0);
            int action = static_cast<int>(rng.below(4));
            auto id = ids[rng.below(ids.size())];
            int edge = static_cast<int>(rng.below(4));
            NodeId node = static_cast<NodeId>(rng.below(14));
            sim.schedule(when, [&, action, id, edge, node] {
                switch (action) {
                  case 0:
                    if (exec.chunkActive(id) &&
                        exec.plan(id).combinable &&
                        edge < static_cast<int>(
                                   exec.plan(id).sources.size()))
                        exec.retuneEdge(id, edge);
                    break;
                  case 1:
                    if (exec.chunkActive(id))
                        exec.pauseChunk(id);
                    break;
                  case 2:
                    if (exec.chunkActive(id))
                        exec.resumeChunk(id);
                    break;
                  case 3: {
                    auto link = cluster.uplink(node);
                    cluster.network().setCapacity(
                        link, cluster.network().capacity(link) > 50
                                  ? 5.0
                                  : 100.0);
                    break;
                  }
                }
            });
        }
        // Make sure everything paused eventually resumes.
        sim.schedule(8.0, [&] {
            for (auto id : ids)
                if (exec.chunkActive(id))
                    exec.resumeChunk(id);
        });
        sim.schedule(20.0, [&] {
            for (NodeId n = 0; n < 14; ++n)
                cluster.network().setCapacity(cluster.uplink(n),
                                              100.0);
        });
        sim.run(2000.0);
        EXPECT_EQ(completed, launched) << "seed " << seed;
    }
}

// ------------------------------------------------------ churn fuzz

TEST(ChurnFuzz, RandomFaultSchedulesKeepRepairInvariants)
{
    // 20 randomized chaos runs. Two invariants, checked continuously:
    //  1. no repair traffic on a dead node's links (the executor
    //     additionally asserts this at every flow launch);
    //  2. chunk accounting closes — pending + in-flight + repaired +
    //     unrecoverable equals every chunk ever lost, at all times.
    // On failure the chaos seed lands in chaos_seed_churnfuzz.txt
    // (per-suite name: scale_test.cc writes its own seed files, and
    // parallel ctest runs must not clobber each other's repro) so CI
    // can attach it to the run.
    for (uint64_t seed = 1; seed <= 20; ++seed) {
        SCOPED_TRACE("chaos seed " + std::to_string(seed));
        Rng rng(seed * 104729);
        sim::Simulator sim;
        cluster::ClusterConfig ccfg;
        ccfg.numNodes = 14 + static_cast<int>(rng.below(6));
        ccfg.numClients = 0;
        ccfg.uplinkBw = ccfg.downlinkBw = 100.0;
        ccfg.diskBw = 300.0;
        cluster::Cluster cluster(sim, ccfg);
        int k = 4 + static_cast<int>(rng.below(4));
        int m = 2 + static_cast<int>(rng.below(2));
        auto code = ec::makeRs(k, m);
        cluster::StripeManager stripes(code, ccfg.numNodes);
        stripes.createStripes(8, rng);
        repair::ExecutorConfig ecfg;
        ecfg.chunkSize = 64.0;
        ecfg.sliceSize = 8.0;
        ecfg.relayOverheadPerMiB = 0.0;
        repair::RepairExecutor exec(cluster, ecfg);

        Rng plan_rng(seed * 31);
        repair::RepairSession session(
            stripes, exec,
            [&](const cluster::FailedChunk &fc,
                const std::vector<NodeId> &reserved) {
                auto topo = static_cast<repair::Topology>(
                    plan_rng.below(3));
                return repair::makeBaselinePlan(stripes, fc, topo,
                                                reserved, plan_rng);
            });

        auto checkInvariants = [&] {
            EXPECT_EQ(session.pendingCount() +
                          session.inFlightCount() +
                          session.chunksRepaired() +
                          session.chunksUnrecoverable(),
                      session.totalChunks());
            for (NodeId n = 0; n < ccfg.numNodes; ++n) {
                if (!cluster.nodeDown(n))
                    continue;
                EXPECT_EQ(cluster.network().currentTagRate(
                              cluster.uplink(n),
                              sim::FlowTag::kRepair),
                          0.0)
                    << "repair traffic out of dead node " << n;
                EXPECT_EQ(cluster.network().currentTagRate(
                              cluster.downlink(n),
                              sim::FlowTag::kRepair),
                          0.0)
                    << "repair traffic into dead node " << n;
            }
        };

        fault::InjectorHooks hooks;
        hooks.onCrash = [&](NodeId node,
                            const std::vector<cluster::FailedChunk>
                                &lost) {
            session.onNodeCrash(node, lost);
            checkInvariants();
        };
        fault::FaultInjector injector(cluster, stripes, hooks);
        // Never crash below k+1 nodes so most runs stay recoverable
        // while some stripes still tip into unrecoverable.
        injector.setMinLiveNodes(k + 1);

        fault::ChaosConfig chaos;
        chaos.crashRate = 0.15;
        chaos.slowDiskRate = 0.1;
        chaos.linkRate = 0.25;
        chaos.horizon = 12.0;
        chaos.meanCrashDowntime = 5.0;
        auto schedule =
            fault::generateChaos(chaos, ccfg.numNodes, seed);

        auto initial = stripes.failNode(0);
        cluster.markNodeDown(0);
        injector.arm(schedule, rng.split());
        session.start(initial);

        // Sprinkle standalone invariant probes across the run (fixed
        // times, so they add no nondeterminism).
        for (int i = 1; i <= 40; ++i)
            sim.schedule(i * 0.5, checkInvariants);

        sim.run(2000.0);

        EXPECT_TRUE(session.finished());
        EXPECT_EQ(session.chunksRepaired() +
                      session.chunksUnrecoverable(),
                  session.totalChunks());
        checkInvariants();

        if (::testing::Test::HasFailure()) {
            std::ofstream("chaos_seed_churnfuzz.txt")
                << seed << "\n" << schedule.str() << "\n";
            std::fprintf(stderr,
                         "churn fuzz failed; chaos seed %llu "
                         "(schedule in chaos_seed_churnfuzz.txt)\n",
                         static_cast<unsigned long long>(seed));
            break;
        }
    }
}

TEST(ChurnFuzz, BitRotChaosNeverAcceptsCorruptHelpers)
{
    // 15 randomized bit-rot + crash runs with the executor verify
    // hooks wired the way the runtime wires them. Invariants:
    //  1. a repair never *completes* against a ground-truth corrupt
    //     helper — verify-on-read/after-decode must abort it first,
    //     so an accepted repair always leaves a clean chunk;
    //  2. accounting still closes after rot-promoted losses grow the
    //     work list mid-run;
    //  3. at the end every surfaced corruption is repaired or
    //     declared unrecoverable, and no accepted chunk is corrupt.
    for (uint64_t seed = 1; seed <= 15; ++seed) {
        SCOPED_TRACE("bitrot chaos seed " + std::to_string(seed));
        Rng rng(seed * 130363);
        sim::Simulator sim;
        cluster::ClusterConfig ccfg;
        ccfg.numNodes = 14 + static_cast<int>(rng.below(6));
        ccfg.numClients = 0;
        ccfg.uplinkBw = ccfg.downlinkBw = 100.0;
        ccfg.diskBw = 300.0;
        cluster::Cluster cluster(sim, ccfg);
        int k = 4 + static_cast<int>(rng.below(4));
        int m = 2 + static_cast<int>(rng.below(2));
        auto code = ec::makeRs(k, m);
        cluster::StripeManager stripes(code, ccfg.numNodes);
        stripes.createStripes(8, rng);
        repair::ExecutorConfig ecfg;
        ecfg.chunkSize = 64.0;
        ecfg.sliceSize = 8.0;
        ecfg.relayOverheadPerMiB = 0.0;
        repair::RepairExecutor exec(cluster, ecfg);

        Rng plan_rng(seed * 43);
        repair::RepairSession session(
            stripes, exec,
            [&](const cluster::FailedChunk &fc,
                const std::vector<NodeId> &reserved) {
                auto topo = static_cast<repair::Topology>(
                    plan_rng.below(3));
                return repair::makeBaselinePlan(stripes, fc, topo,
                                                reserved, plan_rng);
            });

        int rotInjected = 0, rotDetected = 0;
        std::set<std::pair<StripeId, ChunkIndex>> surfaced;
        auto surface = [&](StripeId stripe, ChunkIndex chunk) {
            // Promote + enqueue exactly once (scrub-detect shape);
            // deferred, since verify hooks fire inside executor
            // launch paths.
            if (stripes.chunkLost(stripe, chunk))
                return;
            ++rotDetected;
            surfaced.insert({stripe, chunk});
            stripes.table().markLost(stripe, chunk);
            const cluster::FailedChunk fc{stripe, chunk};
            sim.scheduleAfter(0.0, [&session, fc] {
                session.enqueue({fc});
            });
        };
        repair::RepairExecutor::IntegrityHooks ih;
        ih.verifySource = [&](StripeId stripe, ChunkIndex chunk,
                              NodeId) {
            if (!stripes.chunkCorrupt(stripe, chunk))
                return true;
            surface(stripe, chunk);
            return false;
        };
        ih.verifyDecoded =
            [&](const repair::ChunkRepairPlan &plan) -> NodeId {
            for (const auto &src : plan.sources) {
                if (stripes.chunkCorrupt(plan.stripe, src.chunk)) {
                    surface(plan.stripe, src.chunk);
                    return src.node;
                }
            }
            return kInvalidNode;
        };
        exec.setIntegrityHooks(std::move(ih));

        session.setOutcomeHook([&](const cluster::FailedChunk &fc,
                                   bool repaired) {
            if (repaired) {
                // Invariant 1: an accepted repair is never corrupt —
                // a corrupt helper would have been rejected and the
                // corrupt chunk itself is rewritten clean.
                EXPECT_FALSE(
                    stripes.chunkCorrupt(fc.stripe, fc.chunk))
                    << "accepted corrupt chunk " << fc.stripe << "/"
                    << fc.chunk;
            }
            // Terminal outcome: the surfaced corruption is settled
            // (the same chunk may be freshly re-rotted later — a
            // *new* silent corruption, surfaced separately).
            surfaced.erase({fc.stripe, fc.chunk});
        });

        auto checkAccounting = [&] {
            EXPECT_EQ(session.pendingCount() +
                          session.inFlightCount() +
                          session.chunksRepaired() +
                          session.chunksUnrecoverable(),
                      session.totalChunks());
        };

        fault::InjectorHooks hooks;
        hooks.onCrash = [&](NodeId node,
                            const std::vector<cluster::FailedChunk>
                                &lost) {
            session.onNodeCrash(node, lost);
            checkAccounting();
        };
        hooks.onBitRot = [&](cluster::FailedChunk, NodeId) {
            ++rotInjected;
        };
        fault::FaultInjector injector(cluster, stripes, hooks);
        injector.setMinLiveNodes(k + 1);

        fault::ChaosConfig chaos;
        chaos.crashRate = 0.08;
        chaos.bitrotRate = 0.6;
        chaos.horizon = 12.0;
        chaos.meanCrashDowntime = 5.0;
        auto schedule =
            fault::generateChaos(chaos, ccfg.numNodes, seed);

        auto initial = stripes.failNode(0);
        cluster.markNodeDown(0);
        injector.arm(schedule, rng.split());
        session.start(initial);

        for (int i = 1; i <= 40; ++i)
            sim.schedule(i * 0.5, checkAccounting);

        sim.run(2000.0);

        EXPECT_TRUE(session.finished());
        EXPECT_EQ(session.chunksRepaired() +
                      session.chunksUnrecoverable(),
                  session.totalChunks());
        checkAccounting();
        EXPECT_LE(rotDetected, rotInjected);
        // Invariant 3: every surfaced corruption reached a terminal
        // outcome (repaired clean or declared unrecoverable); rot
        // that is still flagged at the end was never surfaced — it
        // stays silent because no scrubber runs in this test, and it
        // was never accepted as a helper (invariant 1).
        EXPECT_TRUE(surfaced.empty())
            << surfaced.size() << " surfaced corruptions never "
            << "reached a terminal outcome";

        if (::testing::Test::HasFailure()) {
            std::ofstream("chaos_seed_bitrotfuzz.txt")
                << seed << "\n" << schedule.str() << "\n";
            std::fprintf(stderr,
                         "bitrot fuzz failed; chaos seed %llu "
                         "(schedule in chaos_seed_bitrotfuzz.txt)\n",
                         static_cast<unsigned long long>(seed));
            break;
        }
    }
}

} // namespace
} // namespace chameleon
