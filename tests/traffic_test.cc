/**
 * @file
 * Tests for the foreground traffic layer: profile shapes, closed-loop
 * execution, budgets and completion time, latency accounting, node
 * exclusion, profile switching, and the bandwidth fluctuation /
 * imbalance characteristics the paper's root-cause analysis depends
 * on.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "traffic/foreground_driver.hh"
#include "traffic/trace_profile.hh"
#include "util/rng.hh"

namespace chameleon {
namespace traffic {
namespace {

cluster::ClusterConfig
smallConfig()
{
    cluster::ClusterConfig cfg;
    cfg.numNodes = 8;
    cfg.numClients = 2;
    cfg.usageWindow = 5.0;
    return cfg;
}

TEST(TraceProfiles, AllProfilesWellFormed)
{
    Rng rng(1);
    for (auto &p : allProfiles()) {
        EXPECT_FALSE(p.name.empty());
        EXPECT_GE(p.readFraction, 0.0);
        EXPECT_LE(p.readFraction, 1.0);
        EXPECT_GE(p.workersPerClient, 1);
        EXPECT_GE(p.batchFactor, 1);
        ASSERT_TRUE(p.valueSize);
        for (int i = 0; i < 1000; ++i)
            EXPECT_GT(p.valueSize(rng), 0.0);
    }
}

TEST(TraceProfiles, YcsbAValuesAreFixed512K)
{
    auto p = ycsbA();
    Rng rng(2);
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(p.valueSize(rng), 512.0 * units::KiB);
    EXPECT_DOUBLE_EQ(p.readFraction, 0.5);
}

TEST(TraceProfiles, IbmHasExtremeSizeSpread)
{
    auto p = ibmObjectStore();
    Rng rng(3);
    Bytes lo = 1e18, hi = 0;
    for (int i = 0; i < 20000; ++i) {
        Bytes v = p.valueSize(rng);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    // The paper stresses 16 B .. 2.4 GB; expect >= 5 orders of
    // magnitude of spread in a modest sample.
    EXPECT_LT(lo, 1e3);
    EXPECT_GT(hi, 1e8);
}

TEST(TraceProfiles, EtcIsReadDominated)
{
    auto p = facebookEtc();
    EXPECT_NEAR(p.readFraction, 30.0 / 31.0, 1e-9);
}

TEST(ForegroundDriver, BoundedRunCompletesBudget)
{
    sim::Simulator sim;
    cluster::Cluster c(sim, smallConfig());
    auto profile = ycsbA();
    profile.workersPerClient = 4;
    profile.idleMean = 0.0; // no idle gaps: deterministic finish
    ForegroundDriver driver(c, profile, Rng(42),
                            /*requests_per_client=*/50);
    driver.start();
    sim.run();
    EXPECT_TRUE(driver.finished());
    EXPECT_EQ(driver.completedRequests(), 100u);
    EXPECT_GT(driver.completionTime(), 0.0);
    EXPECT_LT(driver.completionTime(), kTimeNever);
    EXPECT_EQ(driver.latencies().count(), 100u);
}

TEST(ForegroundDriver, LatenciesArePositiveAndBounded)
{
    sim::Simulator sim;
    cluster::Cluster c(sim, smallConfig());
    auto profile = ycsbA();
    profile.workersPerClient = 2;
    profile.idleMean = 0.0;
    ForegroundDriver driver(c, profile, Rng(43), 30);
    driver.start();
    sim.run();
    for (double l : driver.latencies().samples()) {
        EXPECT_GT(l, 0.0);
        EXPECT_LT(l, 10.0);
    }
    EXPECT_GE(driver.latencies().p99(),
              driver.latencies().percentile(50));
}

TEST(ForegroundDriver, StopHaltsNewRequests)
{
    sim::Simulator sim;
    cluster::Cluster c(sim, smallConfig());
    auto profile = ycsbA();
    profile.workersPerClient = 2;
    profile.idleMean = 0.0;
    ForegroundDriver driver(c, profile, Rng(44), 0); // unbounded
    driver.start();
    sim.schedule(5.0, [&] { driver.stop(); });
    sim.run();
    EXPECT_FALSE(driver.finished()); // unbounded never "finishes"
    uint64_t done = driver.completedRequests();
    EXPECT_GT(done, 0u);
    // No further progress is possible once drained.
    sim.run();
    EXPECT_EQ(driver.completedRequests(), done);
}

TEST(ForegroundDriver, ExcludedNodeReceivesNoTraffic)
{
    sim::Simulator sim;
    cluster::Cluster c(sim, smallConfig());
    auto profile = ycsbA();
    profile.workersPerClient = 4;
    profile.idleMean = 0.0;
    ForegroundDriver driver(c, profile, Rng(45), 100);
    driver.excludeNode(3);
    driver.start();
    sim.run();
    auto &net = c.network();
    EXPECT_DOUBLE_EQ(
        net.taggedBytes(c.uplink(3), sim::FlowTag::kForeground), 0.0);
    EXPECT_DOUBLE_EQ(
        net.taggedBytes(c.downlink(3), sim::FlowTag::kForeground), 0.0);
    // Others did receive traffic.
    Bytes total = 0;
    for (NodeId n = 0; n < c.numNodes(); ++n)
        total += net.taggedBytes(c.uplink(n), sim::FlowTag::kForeground);
    EXPECT_GT(total, 0.0);
}

TEST(ForegroundDriver, BytesMatchAccounting)
{
    sim::Simulator sim;
    cluster::Cluster c(sim, smallConfig());
    auto profile = ycsbA();
    profile.workersPerClient = 2;
    profile.idleMean = 0.0;
    ForegroundDriver driver(c, profile, Rng(46), 40);
    driver.start();
    sim.run();
    // Completed bytes = 80 requests x 512 KiB.
    EXPECT_NEAR(driver.completedBytes(), 80 * 512.0 * units::KiB, 1.0);
    // Every byte crossed exactly one node uplink (reads) or downlink
    // (writes).
    Bytes up = 0, down = 0;
    for (NodeId n = 0; n < c.numNodes(); ++n) {
        up += c.network().taggedBytes(c.uplink(n),
                                      sim::FlowTag::kForeground);
        down += c.network().taggedBytes(c.downlink(n),
                                        sim::FlowTag::kForeground);
    }
    EXPECT_NEAR(up + down, driver.completedBytes(), 1e3);
}

TEST(ForegroundDriver, SwitchProfileChangesWorkloadShape)
{
    sim::Simulator sim;
    cluster::Cluster c(sim, smallConfig());
    auto p1 = ycsbA();
    p1.workersPerClient = 2;
    p1.idleMean = 0.0;
    ForegroundDriver driver(c, p1, Rng(47), 0);
    driver.start();
    sim.run(10.0);
    uint64_t before = driver.completedRequests();
    EXPECT_GT(before, 0u);
    auto p2 = facebookEtc();
    p2.idleMean = 0.0;
    driver.switchProfile(p2);
    sim.run(20.0);
    EXPECT_GT(driver.completedRequests(), before);
    driver.stop();
    sim.run();
}

TEST(ForegroundDriver, ZipfSkewCreatesLinkImbalance)
{
    // R2: bandwidth utilization is unbalanced across nodes.
    sim::Simulator sim;
    auto cfg = smallConfig();
    cfg.numClients = 4;
    cluster::Cluster c(sim, cfg);
    auto profile = ycsbA();
    profile.idleMean = 0.0;
    ForegroundDriver driver(c, profile, Rng(48), 400);
    driver.start();
    sim.run();
    Bytes lo = 1e18, hi = 0;
    for (NodeId n = 0; n < c.numNodes(); ++n) {
        Bytes b = c.network().taggedBytes(c.uplink(n),
                                          sim::FlowTag::kForeground) +
                  c.network().taggedBytes(c.downlink(n),
                                          sim::FlowTag::kForeground);
        lo = std::min(lo, b);
        hi = std::max(hi, b);
    }
    EXPECT_GT(hi, lo * 1.3) << "expected skewed per-node load";
}

TEST(ForegroundDriver, OnOffTrafficFluctuatesAcrossWindows)
{
    // R1: the occupied bandwidth fluctuates over time windows.
    sim::Simulator sim;
    auto cfg = smallConfig();
    cfg.usageWindow = 15.0;
    cluster::Cluster c(sim, cfg);
    auto profile = ycsbA();
    profile.burstMean = 10.0;
    profile.idleMean = 6.0;
    ForegroundDriver driver(c, profile, Rng(49), 0);
    driver.start();
    sim.run(120.0);
    driver.stop();
    sim.run();
    // At least one node uplink shows meaningful window-to-window
    // fluctuation relative to its mean.
    bool fluctuates = false;
    for (NodeId n = 0; n < c.numNodes(); ++n) {
        const auto &u = c.network().usage(c.uplink(n),
                                          sim::FlowTag::kForeground);
        if (u.windowCount() >= 4 && u.meanRate() > 0 &&
            u.fluctuation() > 0.5 * u.meanRate())
            fluctuates = true;
    }
    EXPECT_TRUE(fluctuates);
}

} // namespace
} // namespace traffic
} // namespace chameleon
