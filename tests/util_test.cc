/**
 * @file
 * Unit tests for the util module: RNG determinism and uniformity,
 * distribution shapes, percentile math, and windowed bandwidth
 * accounting.
 */

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "util/distributions.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace chameleon {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform)
{
    Rng rng(9);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 100000; ++i) {
        uint64_t v = rng.below(10);
        ASSERT_LT(v, 10u);
        counts[v]++;
    }
    for (int c : counts)
        EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        int64_t v = rng.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(2.5);
    EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, SplitDecorrelates)
{
    Rng parent(123);
    Rng c1 = parent.split();
    Rng c2 = parent.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (c1.next() == c2.next());
    EXPECT_LT(same, 4);
}

TEST(Zipfian, RanksAreInRange)
{
    ZipfianSampler z(1000, 0.99, /*scramble=*/false);
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(z.sample(rng), 1000u);
}

TEST(Zipfian, UnscrambledIsSkewedTowardLowRanks)
{
    ZipfianSampler z(10000, 0.99, /*scramble=*/false);
    Rng rng(17);
    int top10 = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        top10 += (z.sample(rng) < 10);
    // Under Zipf(0.99) the top-10 of 10k keys draw a large share
    // (roughly half); uniform would give 0.1%.
    EXPECT_GT(top10, n / 4);
}

TEST(Zipfian, ScrambleSpreadsHotKeys)
{
    ZipfianSampler z(10000, 0.99, /*scramble=*/true);
    Rng rng(19);
    // The hottest scrambled key should no longer be key 0.
    std::map<uint64_t, int> counts;
    for (int i = 0; i < 50000; ++i)
        counts[z.sample(rng)]++;
    auto hottest = std::max_element(
        counts.begin(), counts.end(),
        [](auto &a, auto &b) { return a.second < b.second; });
    EXPECT_NE(hottest->first, 0u);
    EXPECT_GT(hottest->second, 1000); // skew preserved
}

TEST(Pareto, RespectsBounds)
{
    ParetoSampler p(0.35, 1.0, 1e6);
    Rng rng(23);
    for (int i = 0; i < 10000; ++i) {
        double v = p.sample(rng);
        ASSERT_GE(v, 1.0);
        ASSERT_LE(v, 1e6);
    }
}

TEST(Pareto, HeavyTailPresent)
{
    ParetoSampler p(0.35, 1.0, 1e6);
    Rng rng(29);
    int large = 0;
    for (int i = 0; i < 100000; ++i)
        large += (p.sample(rng) > 1e3);
    // Bounded Pareto with shape 0.35 puts a visible mass in the tail.
    EXPECT_GT(large, 1000);
    EXPECT_LT(large, 50000);
}

TEST(Gev, ClampsAndCentersNearMu)
{
    GevSampler g(30.7, 8.2, 0.078, 1000.0);
    Rng rng(31);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double v = g.sample(rng);
        ASSERT_GE(v, 1.0);
        ASSERT_LE(v, 1000.0);
        sum += v;
    }
    // GEV mean = mu + sigma*(g1-1)/xi with g1 = Gamma(1-xi): ~35.8.
    EXPECT_NEAR(sum / n, 35.8, 2.0);
}

TEST(LogNormal, BoundsAndMedian)
{
    // Median of log-normal is exp(mu).
    BoundedLogNormalSampler s(std::log(1e4), 2.0, 16.0, 2.4e9);
    Rng rng(37);
    std::vector<double> vals;
    for (int i = 0; i < 50001; ++i) {
        double v = s.sample(rng);
        ASSERT_GE(v, 16.0);
        ASSERT_LE(v, 2.4e9);
        vals.push_back(v);
    }
    std::nth_element(vals.begin(), vals.begin() + 25000, vals.end());
    EXPECT_NEAR(std::log(vals[25000]), std::log(1e4), 0.1);
}

TEST(Discrete, FollowsWeights)
{
    DiscreteSampler d({1.0, 3.0, 6.0});
    Rng rng(41);
    std::vector<int> counts(3, 0);
    for (int i = 0; i < 100000; ++i)
        counts[d.sample(rng)]++;
    EXPECT_NEAR(counts[0], 10000, 800);
    EXPECT_NEAR(counts[1], 30000, 1200);
    EXPECT_NEAR(counts[2], 60000, 1500);
}

TEST(LatencyRecorder, PercentileNearestRank)
{
    LatencyRecorder rec;
    for (int i = 1; i <= 100; ++i)
        rec.record(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(rec.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(rec.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(rec.percentile(99), 99.0);
    EXPECT_DOUBLE_EQ(rec.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(rec.mean(), 50.5);
    EXPECT_DOUBLE_EQ(rec.max(), 100.0);
}

TEST(LatencyRecorder, InterleavedRecordAndQuery)
{
    LatencyRecorder rec;
    rec.record(5.0);
    EXPECT_DOUBLE_EQ(rec.p99(), 5.0);
    rec.record(1.0);
    rec.record(9.0);
    EXPECT_DOUBLE_EQ(rec.p99(), 9.0);
    EXPECT_EQ(rec.count(), 3u);
}

TEST(LatencyRecorder, EmptyIsZero)
{
    LatencyRecorder rec;
    EXPECT_DOUBLE_EQ(rec.p99(), 0.0);
    EXPECT_DOUBLE_EQ(rec.mean(), 0.0);
}

TEST(WindowedUsage, SingleWindowRate)
{
    WindowedUsage u(15.0);
    u.addTransfer(0.0, 15.0, 150.0);
    ASSERT_EQ(u.windowCount(), 1u);
    EXPECT_DOUBLE_EQ(u.windowRate(0), 10.0);
    EXPECT_DOUBLE_EQ(u.totalBytes(), 150.0);
}

TEST(WindowedUsage, SpreadsAcrossWindows)
{
    WindowedUsage u(10.0);
    // 5..25 at rate 10 B/s: 50 bytes in w0, 100 in w1, 50 in w2.
    u.addTransfer(5.0, 25.0, 200.0);
    ASSERT_EQ(u.windowCount(), 3u);
    EXPECT_DOUBLE_EQ(u.windowRate(0), 5.0);
    EXPECT_DOUBLE_EQ(u.windowRate(1), 10.0);
    EXPECT_DOUBLE_EQ(u.windowRate(2), 5.0);
    EXPECT_NEAR(u.totalBytes(), 200.0, 1e-9);
}

TEST(WindowedUsage, FluctuationIsMaxMinusMin)
{
    WindowedUsage u(10.0);
    u.addTransfer(0.0, 10.0, 100.0);  // 10 B/s
    u.addTransfer(10.0, 20.0, 400.0); // 40 B/s
    u.addTransfer(20.0, 30.0, 200.0); // 20 B/s
    EXPECT_DOUBLE_EQ(u.fluctuation(), 30.0);
    EXPECT_NEAR(u.meanRate(), (10.0 + 40.0 + 20.0) / 3.0, 1e-9);
}

TEST(WindowedUsage, InstantTransferLandsInWindow)
{
    WindowedUsage u(10.0);
    u.addTransfer(12.0, 12.0, 70.0);
    ASSERT_EQ(u.windowCount(), 2u);
    EXPECT_DOUBLE_EQ(u.windowRate(1), 7.0);
}

TEST(Summary, TracksMinMeanMax)
{
    Summary s;
    s.add(2.0);
    s.add(4.0);
    s.add(9.0);
    EXPECT_DOUBLE_EQ(s.min, 2.0);
    EXPECT_DOUBLE_EQ(s.max, 9.0);
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_EQ(s.count, 3u);
}

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(64 * units::MiB, 67108864.0);
    EXPECT_DOUBLE_EQ(10 * units::Gbps, 1.25e9);
    EXPECT_DOUBLE_EQ(500 * units::MBps, 5e8);
}

} // namespace
} // namespace chameleon

namespace chameleon {
namespace {

TEST(LatencyRecorder, PercentileFromSuffix)
{
    LatencyRecorder rec;
    // First half small, second half large.
    for (int i = 0; i < 50; ++i)
        rec.record(1.0);
    for (int i = 0; i < 50; ++i)
        rec.record(100.0 + i);
    EXPECT_DOUBLE_EQ(rec.percentileFrom(50, 50.0), 124.0);
    EXPECT_DOUBLE_EQ(rec.percentileFrom(50, 100.0), 149.0);
    EXPECT_DOUBLE_EQ(rec.meanFrom(50), 124.5);
    // Suffix beyond the end is empty.
    EXPECT_DOUBLE_EQ(rec.percentileFrom(100, 99.0), 0.0);
    EXPECT_DOUBLE_EQ(rec.meanFrom(100), 0.0);
}

TEST(LatencyRecorder, PercentileFromUnaffectedByPriorSorts)
{
    LatencyRecorder rec;
    rec.record(9.0);
    rec.record(1.0);
    rec.record(5.0);
    // A full-range percentile call must not disturb recording order.
    EXPECT_DOUBLE_EQ(rec.percentile(50), 5.0);
    EXPECT_DOUBLE_EQ(rec.percentileFrom(1, 100.0), 5.0);
    EXPECT_DOUBLE_EQ(rec.samples()[0], 9.0);
}

TEST(WindowedUsage, RangeQueries)
{
    WindowedUsage u(10.0);
    u.addTransfer(0.0, 10.0, 100.0);  // w0: 10 B/s
    u.addTransfer(10.0, 20.0, 300.0); // w1: 30 B/s
    u.addTransfer(30.0, 40.0, 200.0); // w3: 20 B/s (w2 idle)
    EXPECT_DOUBLE_EQ(u.fluctuationBetween(0.0, 20.0), 20.0);
    EXPECT_DOUBLE_EQ(u.meanRateBetween(0.0, 20.0), 20.0);
    // Range covering the idle window sees a zero minimum.
    EXPECT_DOUBLE_EQ(u.fluctuationBetween(10.0, 40.0), 30.0);
    // Range beyond recorded windows counts as zero traffic.
    EXPECT_DOUBLE_EQ(u.meanRateBetween(40.0, 60.0), 0.0);
}

TEST(WindowedUsage, RangeBoundaryExactEnd)
{
    WindowedUsage u(10.0);
    u.addTransfer(0.0, 30.0, 300.0); // 10 B/s across w0..w2
    // End exactly on a boundary excludes the next window.
    EXPECT_DOUBLE_EQ(u.fluctuationBetween(0.0, 30.0), 0.0);
    EXPECT_DOUBLE_EQ(u.meanRateBetween(0.0, 30.0), 10.0);
}

} // namespace
} // namespace chameleon
