/**
 * @file
 * Tests for the cluster model and stripe metadata: resource wiring,
 * transfer paths, placement invariants, failure injection, and the
 * candidate source/destination views repair scheduling consumes.
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "cluster/stripe_manager.hh"
#include "ec/factory.hh"
#include "repair/executor.hh"
#include "repair/session.hh"
#include "repair/strategies.hh"
#include "util/rng.hh"

namespace chameleon {
namespace cluster {
namespace {

TEST(Cluster, ResourcesAreDistinct)
{
    sim::Simulator sim;
    ClusterConfig cfg;
    cfg.numNodes = 5;
    cfg.numClients = 2;
    Cluster c(sim, cfg);
    std::set<sim::ResourceId> ids;
    for (NodeId n = 0; n < 5; ++n) {
        ids.insert(c.uplink(n));
        ids.insert(c.downlink(n));
        ids.insert(c.disk(n));
    }
    for (int cl = 0; cl < 2; ++cl) {
        ids.insert(c.clientUplink(cl));
        ids.insert(c.clientDownlink(cl));
    }
    EXPECT_EQ(ids.size(), 5u * 3 + 2u * 2);
    EXPECT_EQ(c.network().resourceCount(), ids.size());
}

TEST(Cluster, CapacitiesMatchConfig)
{
    sim::Simulator sim;
    ClusterConfig cfg;
    cfg.numNodes = 3;
    cfg.numClients = 1;
    cfg.uplinkBw = 100.0;
    cfg.downlinkBw = 200.0;
    cfg.diskBw = 50.0;
    Cluster c(sim, cfg);
    EXPECT_DOUBLE_EQ(c.network().capacity(c.uplink(0)), 100.0);
    EXPECT_DOUBLE_EQ(c.network().capacity(c.downlink(1)), 200.0);
    EXPECT_DOUBLE_EQ(c.network().capacity(c.disk(2)), 50.0);
}

TEST(Cluster, TransferPathShapes)
{
    sim::Simulator sim;
    ClusterConfig cfg;
    cfg.numNodes = 4;
    cfg.numClients = 1;
    Cluster c(sim, cfg);

    auto full = c.transferPath(0, 1, true, true);
    EXPECT_EQ(full, (std::vector<sim::ResourceId>{
                        c.disk(0), c.uplink(0), c.downlink(1),
                        c.disk(1)}));
    auto relay = c.transferPath(2, 3, false, false);
    EXPECT_EQ(relay, (std::vector<sim::ResourceId>{
                         c.uplink(2), c.downlink(3)}));
    auto read = c.clientReadPath(1, 0);
    EXPECT_EQ(read, (std::vector<sim::ResourceId>{
                        c.disk(1), c.uplink(1),
                        c.clientDownlink(0)}));
    auto write = c.clientWritePath(0, 2);
    EXPECT_EQ(write, (std::vector<sim::ResourceId>{
                         c.clientUplink(0), c.downlink(2),
                         c.disk(2)}));
}

TEST(Cluster, EndToEndTransferTiming)
{
    sim::Simulator sim;
    ClusterConfig cfg;
    cfg.numNodes = 2;
    cfg.numClients = 0;
    cfg.uplinkBw = 100.0;
    cfg.downlinkBw = 100.0;
    cfg.diskBw = 10.0; // disk-bottlenecked
    Cluster c(sim, cfg);
    SimTime done = -1;
    c.network().startFlow(c.transferPath(0, 1, true, false), 100.0,
                          sim::FlowTag::kRepair,
                          [&] { done = sim.now(); });
    sim.run();
    EXPECT_DOUBLE_EQ(done, 10.0);
}

class StripeManagerTest : public ::testing::Test
{
  protected:
    StripeManagerTest()
        : mgr_(ec::makeRs(4, 2), 10)
    {
        Rng rng(77);
        mgr_.createStripes(50, rng);
    }

    StripeManager mgr_;
};

TEST_F(StripeManagerTest, PlacementIsOneChunkPerNode)
{
    for (StripeId s = 0; s < mgr_.stripeCount(); ++s) {
        std::set<NodeId> nodes;
        for (ChunkIndex c = 0; c < mgr_.code().n(); ++c) {
            NodeId node = mgr_.location(s, c);
            EXPECT_GE(node, 0);
            EXPECT_LT(node, 10);
            nodes.insert(node);
        }
        EXPECT_EQ(nodes.size(),
                  static_cast<std::size_t>(mgr_.code().n()));
    }
}

TEST_F(StripeManagerTest, PlacementIsRoughlyBalanced)
{
    std::vector<int> load(10, 0);
    for (StripeId s = 0; s < mgr_.stripeCount(); ++s)
        for (ChunkIndex c = 0; c < mgr_.code().n(); ++c)
            load[static_cast<std::size_t>(mgr_.location(s, c))]++;
    // 50 stripes * 6 chunks over 10 nodes = 30 avg.
    for (int l : load) {
        EXPECT_GT(l, 10);
        EXPECT_LT(l, 50);
    }
}

TEST_F(StripeManagerTest, FailNodeMarksItsChunksLost)
{
    auto lost = mgr_.failNode(3);
    EXPECT_TRUE(mgr_.nodeFailed(3));
    EXPECT_FALSE(lost.empty());
    for (const auto &fc : lost) {
        EXPECT_EQ(mgr_.location(fc.stripe, fc.chunk), 3);
        EXPECT_TRUE(mgr_.chunkLost(fc.stripe, fc.chunk));
    }
    EXPECT_EQ(lost, mgr_.lostChunks());
}

TEST_F(StripeManagerTest, AvailableChunksExcludeLost)
{
    auto lost = mgr_.failNode(0);
    ASSERT_FALSE(lost.empty());
    const auto &fc = lost.front();
    auto avail = mgr_.availableChunks(fc.stripe);
    EXPECT_EQ(avail.size(),
              static_cast<std::size_t>(mgr_.code().n() - 1));
    EXPECT_EQ(std::find(avail.begin(), avail.end(), fc.chunk),
              avail.end());
}

TEST_F(StripeManagerTest, CandidateDestinationsExcludeHostsAndFailed)
{
    auto lost = mgr_.failNode(2);
    ASSERT_FALSE(lost.empty());
    const auto &fc = lost.front();
    auto dests = mgr_.candidateDestinations(fc.stripe);
    // 10 nodes - 5 live chunk hosts - 1 failed node = 4.
    EXPECT_EQ(dests.size(), 4u);
    for (NodeId d : dests) {
        EXPECT_FALSE(mgr_.nodeFailed(d));
        for (ChunkIndex c = 0; c < mgr_.code().n(); ++c) {
            if (!mgr_.chunkLost(fc.stripe, c)) {
                EXPECT_NE(mgr_.location(fc.stripe, c), d);
            }
        }
    }
}

TEST_F(StripeManagerTest, RepairUpdatesMetadata)
{
    auto lost = mgr_.failNode(5);
    ASSERT_FALSE(lost.empty());
    const auto &fc = lost.front();
    auto dests = mgr_.candidateDestinations(fc.stripe);
    ASSERT_FALSE(dests.empty());
    NodeId dest = dests.front();
    mgr_.markRepaired(fc.stripe, fc.chunk);
    mgr_.relocate(fc.stripe, fc.chunk, dest);
    EXPECT_FALSE(mgr_.chunkLost(fc.stripe, fc.chunk));
    EXPECT_EQ(mgr_.location(fc.stripe, fc.chunk), dest);
    // The stripe again spans n distinct live nodes.
    std::set<NodeId> nodes;
    for (ChunkIndex c = 0; c < mgr_.code().n(); ++c)
        nodes.insert(mgr_.location(fc.stripe, c));
    EXPECT_EQ(nodes.size(), static_cast<std::size_t>(mgr_.code().n()));
}

TEST_F(StripeManagerTest, RelocateOntoLiveHostPanics)
{
    auto lost = mgr_.failNode(1);
    ASSERT_FALSE(lost.empty());
    const auto &fc = lost.front();
    // Find a node hosting a live chunk of the same stripe.
    NodeId occupied = kInvalidNode;
    for (ChunkIndex c = 0; c < mgr_.code().n(); ++c) {
        if (c != fc.chunk && !mgr_.chunkLost(fc.stripe, c)) {
            occupied = mgr_.location(fc.stripe, c);
            break;
        }
    }
    ASSERT_NE(occupied, kInvalidNode);
    EXPECT_DEATH(mgr_.relocate(fc.stripe, fc.chunk, occupied),
                 "hosts live chunk");
}

TEST_F(StripeManagerTest, MultiNodeFailure)
{
    auto lost1 = mgr_.failNode(0);
    auto lost2 = mgr_.failNode(1);
    EXPECT_EQ(mgr_.lostChunks().size(), lost1.size() + lost2.size());
    // Stripes hit twice have two lost chunks.
    for (StripeId s = 0; s < mgr_.stripeCount(); ++s) {
        auto avail = mgr_.availableChunks(s);
        EXPECT_GE(avail.size(),
                  static_cast<std::size_t>(mgr_.code().n() - 2));
    }
}

TEST_F(StripeManagerTest, ChunksOnNodeConsistent)
{
    auto on3 = mgr_.chunksOnNode(3);
    int count = 0;
    for (StripeId s = 0; s < mgr_.stripeCount(); ++s)
        for (ChunkIndex c = 0; c < mgr_.code().n(); ++c)
            if (mgr_.location(s, c) == 3)
                ++count;
    EXPECT_EQ(static_cast<int>(on3.size()), count);
}

TEST(StripeManager, RejectsTooSmallCluster)
{
    EXPECT_DEATH(StripeManager(ec::makeRs(10, 4), 10),
                 "cannot host");
}

} // namespace
} // namespace cluster
} // namespace chameleon

namespace chameleon {
namespace cluster {
namespace {

TEST(RackTopology, FlatByDefault)
{
    sim::Simulator sim;
    ClusterConfig cfg;
    cfg.numNodes = 6;
    cfg.numClients = 1;
    Cluster c(sim, cfg);
    EXPECT_EQ(c.rackOf(0), -1);
    // Cross-node path has no rack hops.
    EXPECT_EQ(c.transferPath(0, 1, false, false).size(), 2u);
}

TEST(RackTopology, CrossRackPathsTraverseAggregation)
{
    sim::Simulator sim;
    ClusterConfig cfg;
    cfg.numNodes = 8;
    cfg.numClients = 1;
    cfg.racks = 2;
    Cluster c(sim, cfg);
    EXPECT_EQ(c.rackOf(0), 0);
    EXPECT_EQ(c.rackOf(1), 1);
    EXPECT_EQ(c.rackOf(2), 0);
    // Same rack (0 and 2): no aggregation hop.
    EXPECT_EQ(c.transferPath(0, 2, false, false),
              (std::vector<sim::ResourceId>{c.uplink(0),
                                            c.downlink(2)}));
    // Cross rack (0 -> 1): through rack0.up and rack1.down.
    EXPECT_EQ(c.transferPath(0, 1, false, false),
              (std::vector<sim::ResourceId>{
                  c.uplink(0), c.rackUplink(0), c.rackDownlink(1),
                  c.downlink(1)}));
    // Client paths include the node's rack link.
    auto read = c.clientReadPath(3, 0);
    EXPECT_NE(std::find(read.begin(), read.end(), c.rackUplink(1)),
              read.end());
}

TEST(RackTopology, AggregationCapacityFollowsOversubscription)
{
    sim::Simulator sim;
    ClusterConfig cfg;
    cfg.numNodes = 8;
    cfg.numClients = 0;
    cfg.uplinkBw = 100.0;
    cfg.downlinkBw = 100.0;
    cfg.racks = 2;
    cfg.rackOversubscription = 4.0;
    Cluster c(sim, cfg);
    // 4 nodes per rack x 100 B/s / 4 oversubscription = 100 B/s.
    EXPECT_DOUBLE_EQ(c.network().capacity(c.rackUplink(0)), 100.0);
    EXPECT_DOUBLE_EQ(c.network().capacity(c.rackDownlink(1)), 100.0);
}

TEST(RackTopology, OversubscriptionThrottlesCrossRackRepair)
{
    // Two concurrent cross-rack transfers share the oversubscribed
    // aggregation link and take twice as long as same-rack ones.
    sim::Simulator sim;
    ClusterConfig cfg;
    cfg.numNodes = 8;
    cfg.numClients = 0;
    cfg.uplinkBw = cfg.downlinkBw = 100.0;
    cfg.diskBw = 1000.0;
    cfg.racks = 2;
    cfg.rackOversubscription = 4.0; // agg = 100 B/s
    Cluster c(sim, cfg);
    SimTime cross1 = -1, cross2 = -1, local = -1;
    c.network().startFlow(c.transferPath(0, 1, false, false), 100.0,
                          sim::FlowTag::kRepair,
                          [&] { cross1 = sim.now(); });
    c.network().startFlow(c.transferPath(2, 3, false, false), 100.0,
                          sim::FlowTag::kRepair,
                          [&] { cross2 = sim.now(); });
    c.network().startFlow(c.transferPath(4, 2, false, false), 100.0,
                          sim::FlowTag::kRepair,
                          [&] { local = sim.now(); });
    sim.run();
    EXPECT_DOUBLE_EQ(local, 1.0); // same rack: full 100 B/s
    // The two cross-rack flows split rack0.up's 100 B/s.
    EXPECT_DOUBLE_EQ(cross1, 2.0);
    EXPECT_DOUBLE_EQ(cross2, 2.0);
}

TEST(RackTopology, RepairCompletesOnRackedCluster)
{
    // End-to-end sanity: the whole stack runs on a racked cluster.
    sim::Simulator sim;
    ClusterConfig cfg;
    cfg.numNodes = 12;
    cfg.numClients = 1;
    cfg.uplinkBw = cfg.downlinkBw = 100.0;
    cfg.diskBw = 1000.0;
    cfg.racks = 3;
    cfg.rackOversubscription = 2.0;
    Cluster c(sim, cfg);
    auto code = ec::makeRs(4, 2);
    StripeManager stripes(code, 12);
    Rng rng(7);
    stripes.createStripes(5, rng);
    repair::RepairExecutor exec(c,
                                repair::ExecutorConfig{64.0, 8.0});
    auto lost = stripes.failNode(0);
    ASSERT_FALSE(lost.empty());
    Rng prng(8);
    repair::RepairSession session(
        stripes, exec,
        [&](const FailedChunk &fc,
            const std::vector<NodeId> &reserved) {
            return repair::makeBaselinePlan(
                stripes, fc, repair::Topology::kStar, reserved, prng);
        });
    session.start(lost);
    sim.run(2000.0);
    EXPECT_TRUE(session.finished());
}

} // namespace
} // namespace cluster
} // namespace chameleon
