/**
 * @file
 * Tests for the analysis layer: the Figure 2 reliability model and
 * the end-to-end experiment harness (which every bench binary uses).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "analysis/experiment.hh"
#include "analysis/reliability.hh"
#include "ec/factory.hh"

namespace chameleon {
namespace analysis {
namespace {

TEST(Reliability, FailureProbabilityShape)
{
    ReliabilityModel model;
    EXPECT_DOUBLE_EQ(model.failureProbability(0.0), 0.0);
    // Monotonic in duration.
    EXPECT_LT(model.failureProbability(3600.0),
              model.failureProbability(86400.0));
    // One expected lifetime -> 1 - 1/e.
    double theta_sec = 10.0 * 365.25 * 24 * 3600;
    EXPECT_NEAR(model.failureProbability(theta_sec),
                1.0 - std::exp(-1.0), 1e-9);
}

TEST(Reliability, DataLossDecreasesWithThroughput)
{
    ReliabilityModel model; // k=10, m=4, 96 TB — the Fig. 2 setup
    double slow = model.dataLossProbability(10e6);    // 10 MB/s
    double mid = model.dataLossProbability(100e6);    // 100 MB/s
    double fast = model.dataLossProbability(1000e6);  // 1 GB/s
    EXPECT_GT(slow, mid);
    EXPECT_GT(mid, fast);
    EXPECT_GT(slow, 0.0);
    EXPECT_LT(fast, 1e-6);
}

TEST(Reliability, MoreParityLowersLoss)
{
    ReliabilityModel weak;
    weak.k = 10;
    weak.m = 2;
    ReliabilityModel strong;
    strong.k = 10;
    strong.m = 4;
    EXPECT_GT(weak.dataLossProbability(50e6),
              strong.dataLossProbability(50e6));
}

/** Small, fast harness config shared by the smoke tests. */
ExperimentConfig
smallConfig()
{
    ExperimentConfig cfg;
    cfg.cluster.numNodes = 16;
    cfg.cluster.numClients = 2;
    cfg.cluster.uplinkBw = 200 * units::MBps;
    cfg.cluster.downlinkBw = 200 * units::MBps;
    cfg.cluster.diskBw = 500 * units::MBps;
    cfg.code = ec::makeRs(6, 3);
    cfg.exec.chunkSize = 16 * units::MiB;
    cfg.exec.sliceSize = 4 * units::MiB;
    cfg.chunksToRepair = 6;
    cfg.warmup = 6.0;
    cfg.chameleon.tPhase = 10.0;
    cfg.simTimeCap = 4000.0;
    return cfg;
}

TEST(Experiment, NoForegroundAllAlgorithmsComplete)
{
    auto cfg = smallConfig();
    for (auto algo :
         {Algorithm::kCr, Algorithm::kPpr, Algorithm::kEcpipe,
          Algorithm::kChameleon}) {
        auto result = runExperiment(algo, cfg);
        EXPECT_EQ(result.chunksRepaired, 6) << algorithmName(algo);
        EXPECT_GT(result.repairThroughput, 0.0);
        EXPECT_GT(result.repairTime, 0.0);
        EXPECT_DOUBLE_EQ(result.p99LatencyMs, 0.0); // no foreground
    }
}

TEST(Experiment, WithForegroundReportsLatency)
{
    auto cfg = smallConfig();
    auto profile = traffic::ycsbA();
    profile.workersPerClient = 4;
    cfg.trace = profile;
    auto result = runExperiment(Algorithm::kChameleon, cfg);
    EXPECT_EQ(result.chunksRepaired, 6);
    EXPECT_GT(result.p99LatencyMs, 0.0);
    EXPECT_GE(result.p99LatencyMs, result.meanLatencyMs);
    // Link loads were recorded.
    ASSERT_EQ(result.uplinks.size(), 16u);
    Rate total_repair = 0;
    for (const auto &l : result.uplinks)
        total_repair += l.repairMean;
    EXPECT_GT(total_repair, 0.0);
}

TEST(Experiment, RepairBoostVariantsComplete)
{
    auto cfg = smallConfig();
    for (auto algo : {Algorithm::kRbCr, Algorithm::kRbEcpipe}) {
        auto result = runExperiment(algo, cfg);
        EXPECT_EQ(result.chunksRepaired, 6) << algorithmName(algo);
    }
}

TEST(Experiment, EtrpDisablesSar)
{
    auto cfg = smallConfig();
    auto result = runExperiment(Algorithm::kEtrp, cfg);
    EXPECT_EQ(result.retunes, 0);
    EXPECT_EQ(result.reorders, 0);
    EXPECT_EQ(result.chunksRepaired, 6);
}

TEST(Experiment, BoundedTraceReportsTraceTime)
{
    auto cfg = smallConfig();
    auto profile = traffic::ycsbA();
    profile.workersPerClient = 2;
    profile.idleMean = 0.0;
    cfg.trace = profile;
    cfg.requestsPerClient = 60;
    auto baseline = runExperiment(Algorithm::kNone, cfg);
    EXPECT_GT(baseline.traceTime, 0.0);
    auto loaded = runExperiment(Algorithm::kCr, cfg);
    EXPECT_GT(loaded.traceTime, 0.0);
    // Repair competes with the trace: execution time inflates.
    EXPECT_GE(loaded.traceTime, baseline.traceTime * 0.99);
}

TEST(Experiment, StragglerInjection)
{
    auto cfg = smallConfig();
    cfg.stragglers.push_back(StragglerEvent{2.0, 3, 0.05, 8.0,
                                            true, true});
    cfg.chameleon.checkPeriod = 1.0;
    cfg.chameleon.stragglerSlack = 1.0;
    auto result = runExperiment(Algorithm::kChameleon, cfg);
    EXPECT_EQ(result.chunksRepaired, 6);
}

TEST(Experiment, MultiNodeFailure)
{
    auto cfg = smallConfig();
    cfg.failedNodes = 2;
    auto result = runExperiment(Algorithm::kChameleon, cfg);
    EXPECT_GE(result.chunksRepaired, 6);
    EXPECT_GT(result.repairThroughput, 0.0);
}

TEST(Experiment, TimelineRecorded)
{
    auto cfg = smallConfig();
    auto result = runExperiment(Algorithm::kCr, cfg);
    ASSERT_FALSE(result.throughputTimeline.empty());
    Rate total = 0;
    for (Rate r : result.throughputTimeline)
        total += r * result.timelinePeriod;
    EXPECT_NEAR(total, 6 * cfg.exec.chunkSize, cfg.exec.chunkSize);
}

TEST(Experiment, HookCanSwitchProfiles)
{
    auto cfg = smallConfig();
    auto profile = traffic::ycsbA();
    profile.workersPerClient = 2;
    cfg.trace = profile;
    int switches = 0;
    ExperimentHooks hooks;
    hooks.onSample = [&](SimTime, traffic::ForegroundDriver *driver) {
        if (driver && switches == 0) {
            driver->switchProfile(traffic::facebookEtc());
            ++switches;
        }
    };
    auto result = runExperiment(Algorithm::kChameleon, cfg, hooks);
    EXPECT_EQ(switches, 1);
    EXPECT_EQ(result.chunksRepaired, 6);
}

TEST(Experiment, ChameleonIoUsesStorageDimension)
{
    auto cfg = smallConfig();
    cfg.cluster.diskBw = 50 * units::MBps; // disk-bottlenecked
    auto result = runExperiment(Algorithm::kChameleonIo, cfg);
    EXPECT_EQ(result.chunksRepaired, 6);
}

} // namespace
} // namespace analysis
} // namespace chameleon
