# Empty dependencies file for repair_plan_test.
# This may be replaced when dependencies are built.
