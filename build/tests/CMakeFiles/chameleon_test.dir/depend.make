# Empty dependencies file for chameleon_test.
# This may be replaced when dependencies are built.
