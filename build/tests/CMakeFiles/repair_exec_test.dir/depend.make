# Empty dependencies file for repair_exec_test.
# This may be replaced when dependencies are built.
