file(REMOVE_RECURSE
  "CMakeFiles/repair_exec_test.dir/repair_exec_test.cc.o"
  "CMakeFiles/repair_exec_test.dir/repair_exec_test.cc.o.d"
  "repair_exec_test"
  "repair_exec_test.pdb"
  "repair_exec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
