# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/gf_test[1]_include.cmake")
include("/root/repo/build/tests/ec_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/traffic_test[1]_include.cmake")
include("/root/repo/build/tests/repair_plan_test[1]_include.cmake")
include("/root/repo/build/tests/repair_exec_test[1]_include.cmake")
include("/root/repo/build/tests/chameleon_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/trace_file_test[1]_include.cmake")
include("/root/repo/build/tests/telemetry_test[1]_include.cmake")
include("/root/repo/build/tests/monitor_test[1]_include.cmake")
