file(REMOVE_RECURSE
  "CMakeFiles/chameleon_repair.dir/chameleon_planner.cc.o"
  "CMakeFiles/chameleon_repair.dir/chameleon_planner.cc.o.d"
  "CMakeFiles/chameleon_repair.dir/chameleon_scheduler.cc.o"
  "CMakeFiles/chameleon_repair.dir/chameleon_scheduler.cc.o.d"
  "CMakeFiles/chameleon_repair.dir/executor.cc.o"
  "CMakeFiles/chameleon_repair.dir/executor.cc.o.d"
  "CMakeFiles/chameleon_repair.dir/monitor.cc.o"
  "CMakeFiles/chameleon_repair.dir/monitor.cc.o.d"
  "CMakeFiles/chameleon_repair.dir/plan.cc.o"
  "CMakeFiles/chameleon_repair.dir/plan.cc.o.d"
  "CMakeFiles/chameleon_repair.dir/session.cc.o"
  "CMakeFiles/chameleon_repair.dir/session.cc.o.d"
  "CMakeFiles/chameleon_repair.dir/strategies.cc.o"
  "CMakeFiles/chameleon_repair.dir/strategies.cc.o.d"
  "libchameleon_repair.a"
  "libchameleon_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chameleon_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
