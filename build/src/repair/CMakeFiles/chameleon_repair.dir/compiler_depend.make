# Empty compiler generated dependencies file for chameleon_repair.
# This may be replaced when dependencies are built.
