file(REMOVE_RECURSE
  "libchameleon_repair.a"
)
