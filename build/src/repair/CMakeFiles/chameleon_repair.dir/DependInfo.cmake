
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/repair/chameleon_planner.cc" "src/repair/CMakeFiles/chameleon_repair.dir/chameleon_planner.cc.o" "gcc" "src/repair/CMakeFiles/chameleon_repair.dir/chameleon_planner.cc.o.d"
  "/root/repo/src/repair/chameleon_scheduler.cc" "src/repair/CMakeFiles/chameleon_repair.dir/chameleon_scheduler.cc.o" "gcc" "src/repair/CMakeFiles/chameleon_repair.dir/chameleon_scheduler.cc.o.d"
  "/root/repo/src/repair/executor.cc" "src/repair/CMakeFiles/chameleon_repair.dir/executor.cc.o" "gcc" "src/repair/CMakeFiles/chameleon_repair.dir/executor.cc.o.d"
  "/root/repo/src/repair/monitor.cc" "src/repair/CMakeFiles/chameleon_repair.dir/monitor.cc.o" "gcc" "src/repair/CMakeFiles/chameleon_repair.dir/monitor.cc.o.d"
  "/root/repo/src/repair/plan.cc" "src/repair/CMakeFiles/chameleon_repair.dir/plan.cc.o" "gcc" "src/repair/CMakeFiles/chameleon_repair.dir/plan.cc.o.d"
  "/root/repo/src/repair/session.cc" "src/repair/CMakeFiles/chameleon_repair.dir/session.cc.o" "gcc" "src/repair/CMakeFiles/chameleon_repair.dir/session.cc.o.d"
  "/root/repo/src/repair/strategies.cc" "src/repair/CMakeFiles/chameleon_repair.dir/strategies.cc.o" "gcc" "src/repair/CMakeFiles/chameleon_repair.dir/strategies.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/chameleon_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/chameleon_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/chameleon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/chameleon_util.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/chameleon_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/chameleon_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
