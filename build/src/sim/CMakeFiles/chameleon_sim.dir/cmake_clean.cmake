file(REMOVE_RECURSE
  "CMakeFiles/chameleon_sim.dir/flow_network.cc.o"
  "CMakeFiles/chameleon_sim.dir/flow_network.cc.o.d"
  "CMakeFiles/chameleon_sim.dir/simulator.cc.o"
  "CMakeFiles/chameleon_sim.dir/simulator.cc.o.d"
  "libchameleon_sim.a"
  "libchameleon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chameleon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
