file(REMOVE_RECURSE
  "libchameleon_sim.a"
)
