# Empty compiler generated dependencies file for chameleon_traffic.
# This may be replaced when dependencies are built.
