file(REMOVE_RECURSE
  "libchameleon_traffic.a"
)
