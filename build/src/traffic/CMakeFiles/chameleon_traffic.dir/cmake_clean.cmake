file(REMOVE_RECURSE
  "CMakeFiles/chameleon_traffic.dir/foreground_driver.cc.o"
  "CMakeFiles/chameleon_traffic.dir/foreground_driver.cc.o.d"
  "CMakeFiles/chameleon_traffic.dir/trace_file.cc.o"
  "CMakeFiles/chameleon_traffic.dir/trace_file.cc.o.d"
  "CMakeFiles/chameleon_traffic.dir/trace_profile.cc.o"
  "CMakeFiles/chameleon_traffic.dir/trace_profile.cc.o.d"
  "libchameleon_traffic.a"
  "libchameleon_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chameleon_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
