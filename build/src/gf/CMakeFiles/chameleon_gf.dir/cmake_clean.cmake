file(REMOVE_RECURSE
  "CMakeFiles/chameleon_gf.dir/gf256.cc.o"
  "CMakeFiles/chameleon_gf.dir/gf256.cc.o.d"
  "CMakeFiles/chameleon_gf.dir/matrix.cc.o"
  "CMakeFiles/chameleon_gf.dir/matrix.cc.o.d"
  "libchameleon_gf.a"
  "libchameleon_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chameleon_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
