# Empty dependencies file for chameleon_gf.
# This may be replaced when dependencies are built.
