file(REMOVE_RECURSE
  "libchameleon_gf.a"
)
