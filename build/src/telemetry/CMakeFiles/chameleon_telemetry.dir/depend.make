# Empty dependencies file for chameleon_telemetry.
# This may be replaced when dependencies are built.
