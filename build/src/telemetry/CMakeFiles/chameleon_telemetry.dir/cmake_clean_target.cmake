file(REMOVE_RECURSE
  "libchameleon_telemetry.a"
)
