file(REMOVE_RECURSE
  "CMakeFiles/chameleon_telemetry.dir/json.cc.o"
  "CMakeFiles/chameleon_telemetry.dir/json.cc.o.d"
  "CMakeFiles/chameleon_telemetry.dir/metrics.cc.o"
  "CMakeFiles/chameleon_telemetry.dir/metrics.cc.o.d"
  "CMakeFiles/chameleon_telemetry.dir/telemetry.cc.o"
  "CMakeFiles/chameleon_telemetry.dir/telemetry.cc.o.d"
  "CMakeFiles/chameleon_telemetry.dir/trace.cc.o"
  "CMakeFiles/chameleon_telemetry.dir/trace.cc.o.d"
  "libchameleon_telemetry.a"
  "libchameleon_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chameleon_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
