# Empty dependencies file for chameleon_analysis.
# This may be replaced when dependencies are built.
