file(REMOVE_RECURSE
  "libchameleon_analysis.a"
)
