file(REMOVE_RECURSE
  "CMakeFiles/chameleon_analysis.dir/experiment.cc.o"
  "CMakeFiles/chameleon_analysis.dir/experiment.cc.o.d"
  "CMakeFiles/chameleon_analysis.dir/reliability.cc.o"
  "CMakeFiles/chameleon_analysis.dir/reliability.cc.o.d"
  "libchameleon_analysis.a"
  "libchameleon_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chameleon_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
