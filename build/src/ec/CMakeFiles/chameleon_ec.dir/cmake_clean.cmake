file(REMOVE_RECURSE
  "CMakeFiles/chameleon_ec.dir/butterfly_code.cc.o"
  "CMakeFiles/chameleon_ec.dir/butterfly_code.cc.o.d"
  "CMakeFiles/chameleon_ec.dir/factory.cc.o"
  "CMakeFiles/chameleon_ec.dir/factory.cc.o.d"
  "CMakeFiles/chameleon_ec.dir/linear_code.cc.o"
  "CMakeFiles/chameleon_ec.dir/linear_code.cc.o.d"
  "CMakeFiles/chameleon_ec.dir/lrc_code.cc.o"
  "CMakeFiles/chameleon_ec.dir/lrc_code.cc.o.d"
  "CMakeFiles/chameleon_ec.dir/replicated_code.cc.o"
  "CMakeFiles/chameleon_ec.dir/replicated_code.cc.o.d"
  "CMakeFiles/chameleon_ec.dir/rs_code.cc.o"
  "CMakeFiles/chameleon_ec.dir/rs_code.cc.o.d"
  "libchameleon_ec.a"
  "libchameleon_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chameleon_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
