
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ec/butterfly_code.cc" "src/ec/CMakeFiles/chameleon_ec.dir/butterfly_code.cc.o" "gcc" "src/ec/CMakeFiles/chameleon_ec.dir/butterfly_code.cc.o.d"
  "/root/repo/src/ec/factory.cc" "src/ec/CMakeFiles/chameleon_ec.dir/factory.cc.o" "gcc" "src/ec/CMakeFiles/chameleon_ec.dir/factory.cc.o.d"
  "/root/repo/src/ec/linear_code.cc" "src/ec/CMakeFiles/chameleon_ec.dir/linear_code.cc.o" "gcc" "src/ec/CMakeFiles/chameleon_ec.dir/linear_code.cc.o.d"
  "/root/repo/src/ec/lrc_code.cc" "src/ec/CMakeFiles/chameleon_ec.dir/lrc_code.cc.o" "gcc" "src/ec/CMakeFiles/chameleon_ec.dir/lrc_code.cc.o.d"
  "/root/repo/src/ec/replicated_code.cc" "src/ec/CMakeFiles/chameleon_ec.dir/replicated_code.cc.o" "gcc" "src/ec/CMakeFiles/chameleon_ec.dir/replicated_code.cc.o.d"
  "/root/repo/src/ec/rs_code.cc" "src/ec/CMakeFiles/chameleon_ec.dir/rs_code.cc.o" "gcc" "src/ec/CMakeFiles/chameleon_ec.dir/rs_code.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gf/CMakeFiles/chameleon_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/chameleon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
