file(REMOVE_RECURSE
  "libchameleon_ec.a"
)
