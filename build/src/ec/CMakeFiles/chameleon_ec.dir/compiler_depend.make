# Empty compiler generated dependencies file for chameleon_ec.
# This may be replaced when dependencies are built.
