file(REMOVE_RECURSE
  "CMakeFiles/chameleon_util.dir/distributions.cc.o"
  "CMakeFiles/chameleon_util.dir/distributions.cc.o.d"
  "CMakeFiles/chameleon_util.dir/logging.cc.o"
  "CMakeFiles/chameleon_util.dir/logging.cc.o.d"
  "CMakeFiles/chameleon_util.dir/rng.cc.o"
  "CMakeFiles/chameleon_util.dir/rng.cc.o.d"
  "CMakeFiles/chameleon_util.dir/stats.cc.o"
  "CMakeFiles/chameleon_util.dir/stats.cc.o.d"
  "libchameleon_util.a"
  "libchameleon_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chameleon_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
