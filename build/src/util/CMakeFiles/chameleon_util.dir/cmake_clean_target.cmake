file(REMOVE_RECURSE
  "libchameleon_util.a"
)
