# Empty dependencies file for chameleon_util.
# This may be replaced when dependencies are built.
