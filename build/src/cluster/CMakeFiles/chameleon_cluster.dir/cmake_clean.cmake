file(REMOVE_RECURSE
  "CMakeFiles/chameleon_cluster.dir/cluster.cc.o"
  "CMakeFiles/chameleon_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/chameleon_cluster.dir/stripe_manager.cc.o"
  "CMakeFiles/chameleon_cluster.dir/stripe_manager.cc.o.d"
  "libchameleon_cluster.a"
  "libchameleon_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chameleon_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
