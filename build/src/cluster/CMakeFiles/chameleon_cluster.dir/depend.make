# Empty dependencies file for chameleon_cluster.
# This may be replaced when dependencies are built.
