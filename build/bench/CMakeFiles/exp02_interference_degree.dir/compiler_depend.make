# Empty compiler generated dependencies file for exp02_interference_degree.
# This may be replaced when dependencies are built.
