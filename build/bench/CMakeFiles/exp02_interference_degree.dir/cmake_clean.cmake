file(REMOVE_RECURSE
  "CMakeFiles/exp02_interference_degree.dir/exp02_interference_degree.cc.o"
  "CMakeFiles/exp02_interference_degree.dir/exp02_interference_degree.cc.o.d"
  "exp02_interference_degree"
  "exp02_interference_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp02_interference_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
