# Empty compiler generated dependencies file for exp04_adaptivity.
# This may be replaced when dependencies are built.
