file(REMOVE_RECURSE
  "CMakeFiles/exp04_adaptivity.dir/exp04_adaptivity.cc.o"
  "CMakeFiles/exp04_adaptivity.dir/exp04_adaptivity.cc.o.d"
  "exp04_adaptivity"
  "exp04_adaptivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp04_adaptivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
