file(REMOVE_RECURSE
  "CMakeFiles/fig04_motivation.dir/fig04_motivation.cc.o"
  "CMakeFiles/fig04_motivation.dir/fig04_motivation.cc.o.d"
  "fig04_motivation"
  "fig04_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
