# Empty dependencies file for fig06_imbalance.
# This may be replaced when dependencies are built.
