file(REMOVE_RECURSE
  "CMakeFiles/fig06_imbalance.dir/fig06_imbalance.cc.o"
  "CMakeFiles/fig06_imbalance.dir/fig06_imbalance.cc.o.d"
  "fig06_imbalance"
  "fig06_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
