file(REMOVE_RECURSE
  "CMakeFiles/fig02_reliability.dir/fig02_reliability.cc.o"
  "CMakeFiles/fig02_reliability.dir/fig02_reliability.cc.o.d"
  "fig02_reliability"
  "fig02_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
