# Empty dependencies file for fig02_reliability.
# This may be replaced when dependencies are built.
