# Empty dependencies file for exp13_network_bw.
# This may be replaced when dependencies are built.
