file(REMOVE_RECURSE
  "CMakeFiles/exp13_network_bw.dir/exp13_network_bw.cc.o"
  "CMakeFiles/exp13_network_bw.dir/exp13_network_bw.cc.o.d"
  "exp13_network_bw"
  "exp13_network_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp13_network_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
