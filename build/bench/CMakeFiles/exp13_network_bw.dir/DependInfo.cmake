
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/exp13_network_bw.cc" "bench/CMakeFiles/exp13_network_bw.dir/exp13_network_bw.cc.o" "gcc" "bench/CMakeFiles/exp13_network_bw.dir/exp13_network_bw.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/chameleon_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/repair/CMakeFiles/chameleon_repair.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/chameleon_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/chameleon_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/chameleon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/chameleon_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/chameleon_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/chameleon_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/chameleon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
