# Empty dependencies file for exp12_storage_bottleneck.
# This may be replaced when dependencies are built.
