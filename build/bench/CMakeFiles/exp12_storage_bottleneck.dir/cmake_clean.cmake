file(REMOVE_RECURSE
  "CMakeFiles/exp12_storage_bottleneck.dir/exp12_storage_bottleneck.cc.o"
  "CMakeFiles/exp12_storage_bottleneck.dir/exp12_storage_bottleneck.cc.o.d"
  "exp12_storage_bottleneck"
  "exp12_storage_bottleneck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp12_storage_bottleneck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
