file(REMOVE_RECURSE
  "CMakeFiles/exp09_generality.dir/exp09_generality.cc.o"
  "CMakeFiles/exp09_generality.dir/exp09_generality.cc.o.d"
  "exp09_generality"
  "exp09_generality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp09_generality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
