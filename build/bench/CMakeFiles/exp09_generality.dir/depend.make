# Empty dependencies file for exp09_generality.
# This may be replaced when dependencies are built.
