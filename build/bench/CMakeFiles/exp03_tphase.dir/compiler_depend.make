# Empty compiler generated dependencies file for exp03_tphase.
# This may be replaced when dependencies are built.
