file(REMOVE_RECURSE
  "CMakeFiles/exp03_tphase.dir/exp03_tphase.cc.o"
  "CMakeFiles/exp03_tphase.dir/exp03_tphase.cc.o.d"
  "exp03_tphase"
  "exp03_tphase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp03_tphase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
