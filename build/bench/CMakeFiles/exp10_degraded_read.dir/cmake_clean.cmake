file(REMOVE_RECURSE
  "CMakeFiles/exp10_degraded_read.dir/exp10_degraded_read.cc.o"
  "CMakeFiles/exp10_degraded_read.dir/exp10_degraded_read.cc.o.d"
  "exp10_degraded_read"
  "exp10_degraded_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp10_degraded_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
