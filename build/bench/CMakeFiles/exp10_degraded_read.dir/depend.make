# Empty dependencies file for exp10_degraded_read.
# This may be replaced when dependencies are built.
