file(REMOVE_RECURSE
  "CMakeFiles/fig05_fluctuation.dir/fig05_fluctuation.cc.o"
  "CMakeFiles/fig05_fluctuation.dir/fig05_fluctuation.cc.o.d"
  "fig05_fluctuation"
  "fig05_fluctuation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_fluctuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
