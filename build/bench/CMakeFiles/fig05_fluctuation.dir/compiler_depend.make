# Empty compiler generated dependencies file for fig05_fluctuation.
# This may be replaced when dependencies are built.
