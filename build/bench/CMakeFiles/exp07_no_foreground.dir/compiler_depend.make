# Empty compiler generated dependencies file for exp07_no_foreground.
# This may be replaced when dependencies are built.
