file(REMOVE_RECURSE
  "CMakeFiles/exp07_no_foreground.dir/exp07_no_foreground.cc.o"
  "CMakeFiles/exp07_no_foreground.dir/exp07_no_foreground.cc.o.d"
  "exp07_no_foreground"
  "exp07_no_foreground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp07_no_foreground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
