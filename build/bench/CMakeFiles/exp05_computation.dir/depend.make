# Empty dependencies file for exp05_computation.
# This may be replaced when dependencies are built.
