file(REMOVE_RECURSE
  "CMakeFiles/exp05_computation.dir/exp05_computation.cc.o"
  "CMakeFiles/exp05_computation.dir/exp05_computation.cc.o.d"
  "exp05_computation"
  "exp05_computation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp05_computation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
