file(REMOVE_RECURSE
  "CMakeFiles/exp11_breakdown.dir/exp11_breakdown.cc.o"
  "CMakeFiles/exp11_breakdown.dir/exp11_breakdown.cc.o.d"
  "exp11_breakdown"
  "exp11_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp11_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
