# Empty compiler generated dependencies file for exp11_breakdown.
# This may be replaced when dependencies are built.
