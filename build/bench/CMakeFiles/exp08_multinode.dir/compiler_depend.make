# Empty compiler generated dependencies file for exp08_multinode.
# This may be replaced when dependencies are built.
