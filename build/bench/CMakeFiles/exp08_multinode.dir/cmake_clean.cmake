file(REMOVE_RECURSE
  "CMakeFiles/exp08_multinode.dir/exp08_multinode.cc.o"
  "CMakeFiles/exp08_multinode.dir/exp08_multinode.cc.o.d"
  "exp08_multinode"
  "exp08_multinode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp08_multinode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
