# Empty compiler generated dependencies file for exp01_interference.
# This may be replaced when dependencies are built.
