file(REMOVE_RECURSE
  "CMakeFiles/exp01_interference.dir/exp01_interference.cc.o"
  "CMakeFiles/exp01_interference.dir/exp01_interference.cc.o.d"
  "exp01_interference"
  "exp01_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp01_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
