# Empty dependencies file for exp06_repairboost.
# This may be replaced when dependencies are built.
