file(REMOVE_RECURSE
  "CMakeFiles/exp06_repairboost.dir/exp06_repairboost.cc.o"
  "CMakeFiles/exp06_repairboost.dir/exp06_repairboost.cc.o.d"
  "exp06_repairboost"
  "exp06_repairboost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp06_repairboost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
