file(REMOVE_RECURSE
  "CMakeFiles/chameleon_sim_cli.dir/chameleon_sim.cpp.o"
  "CMakeFiles/chameleon_sim_cli.dir/chameleon_sim.cpp.o.d"
  "chameleon-sim"
  "chameleon-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chameleon_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
