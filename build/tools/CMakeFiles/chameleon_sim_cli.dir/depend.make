# Empty dependencies file for chameleon_sim_cli.
# This may be replaced when dependencies are built.
