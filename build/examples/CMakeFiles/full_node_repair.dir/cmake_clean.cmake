file(REMOVE_RECURSE
  "CMakeFiles/full_node_repair.dir/full_node_repair.cpp.o"
  "CMakeFiles/full_node_repair.dir/full_node_repair.cpp.o.d"
  "full_node_repair"
  "full_node_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_node_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
