# Empty compiler generated dependencies file for full_node_repair.
# This may be replaced when dependencies are built.
