# Empty dependencies file for code_comparison.
# This may be replaced when dependencies are built.
