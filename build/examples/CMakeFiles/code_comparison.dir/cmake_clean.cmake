file(REMOVE_RECURSE
  "CMakeFiles/code_comparison.dir/code_comparison.cpp.o"
  "CMakeFiles/code_comparison.dir/code_comparison.cpp.o.d"
  "code_comparison"
  "code_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/code_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
