# Empty compiler generated dependencies file for code_comparison.
# This may be replaced when dependencies are built.
