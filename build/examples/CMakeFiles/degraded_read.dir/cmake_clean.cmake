file(REMOVE_RECURSE
  "CMakeFiles/degraded_read.dir/degraded_read.cpp.o"
  "CMakeFiles/degraded_read.dir/degraded_read.cpp.o.d"
  "degraded_read"
  "degraded_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degraded_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
