# Empty dependencies file for degraded_read.
# This may be replaced when dependencies are built.
