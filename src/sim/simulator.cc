#include "sim/simulator.hh"

#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace chameleon {
namespace sim {

Simulator::~Simulator()
{
    telemetry::flush();
}

bool
EventHandle::pending() const
{
    return sim_ && sim_->slotPending(slot_, gen_);
}

void
EventHandle::cancel()
{
    if (!sim_ || !sim_->slotPending(slot_, gen_))
        return;
    // Freeing bumps the generation, so the queue entry (and any other
    // handle copies) referring to this occupant become inert; the
    // entry itself is popped lazily when it reaches the top.
    sim_->freeSlot(slot_);
    CHAMELEON_ASSERT(sim_->live_ > 0, "live-event underflow");
    --sim_->live_;
}

uint32_t
Simulator::allocSlot()
{
    if (!freeSlots_.empty()) {
        uint32_t slot = freeSlots_.back();
        freeSlots_.pop_back();
        return slot;
    }
    slots_.emplace_back();
    return static_cast<uint32_t>(slots_.size() - 1);
}

void
Simulator::freeSlot(uint32_t slot)
{
    Slot &s = slots_[slot];
    s.fn.reset();
    ++s.gen;
    freeSlots_.push_back(slot);
}

EventHandle
Simulator::schedule(SimTime when, Callback fn)
{
    CHAMELEON_ASSERT(when >= now_, "scheduling into the past: ", when,
                     " < ", now_);
    const uint32_t slot = allocSlot();
    slots_[slot].fn = std::move(fn);
    EventHandle handle;
    handle.sim_ = this;
    handle.slot_ = slot;
    handle.gen_ = slots_[slot].gen;
    queue_.push(QueueEntry{when, seq_++, slot, handle.gen_});
    ++live_;
    return handle;
}

EventHandle
Simulator::scheduleAfter(SimTime delay, Callback fn)
{
    CHAMELEON_ASSERT(delay >= 0, "negative delay: ", delay);
    return schedule(now_ + delay, std::move(fn));
}

bool
Simulator::compactTop()
{
    while (!queue_.empty()) {
        const QueueEntry &top = queue_.top();
        if (slotPending(top.slot, top.gen))
            return true;
        queue_.pop();
    }
    return false;
}

std::size_t
Simulator::run(SimTime until)
{
    std::size_t ran = 0;
    while (compactTop()) {
        const QueueEntry &top = queue_.top();
        if (top.when > until)
            break;
        QueueEntry entry = top;
        queue_.pop();
        now_ = entry.when;
        // Move the callback out and free the slot first, so the
        // callback can freely schedule new events (possibly reusing
        // this very slot) and handles to this event read not-pending
        // while it runs.
        Callback fn = std::move(slots_[entry.slot].fn);
        freeSlot(entry.slot);
        --live_;
        fn();
        ++ran;
        ++executed_;
    }
    if (until != kTimeNever && until > now_)
        now_ = until;
    return ran;
}

bool
Simulator::step()
{
    if (!compactTop())
        return false;
    QueueEntry entry = queue_.top();
    queue_.pop();
    now_ = entry.when;
    Callback fn = std::move(slots_[entry.slot].fn);
    freeSlot(entry.slot);
    --live_;
    fn();
    ++executed_;
    return true;
}

} // namespace sim
} // namespace chameleon
