#include "sim/simulator.hh"

#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace chameleon {
namespace sim {

Simulator::~Simulator()
{
    telemetry::flush();
}

bool
EventHandle::pending() const
{
    return state_ && !state_->cancelled && !state_->fired;
}

void
EventHandle::cancel()
{
    if (state_)
        state_->cancelled = true;
}

EventHandle
Simulator::schedule(SimTime when, std::function<void()> fn)
{
    CHAMELEON_ASSERT(when >= now_, "scheduling into the past: ", when,
                     " < ", now_);
    EventHandle handle;
    handle.state_ = std::make_shared<EventHandle::State>();
    handle.state_->fn = std::move(fn);
    queue_.push(QueueEntry{when, seq_++, handle.state_});
    return handle;
}

EventHandle
Simulator::scheduleAfter(SimTime delay, std::function<void()> fn)
{
    CHAMELEON_ASSERT(delay >= 0, "negative delay: ", delay);
    return schedule(now_ + delay, std::move(fn));
}

std::size_t
Simulator::run(SimTime until)
{
    std::size_t executed = 0;
    while (!queue_.empty()) {
        const QueueEntry &top = queue_.top();
        if (top.when > until)
            break;
        QueueEntry entry = top;
        queue_.pop();
        if (entry.state->cancelled)
            continue;
        now_ = entry.when;
        entry.state->fired = true;
        // Move the callback out so self-rescheduling is safe.
        auto fn = std::move(entry.state->fn);
        fn();
        ++executed;
    }
    if (until != kTimeNever && until > now_)
        now_ = until;
    return executed;
}

bool
Simulator::step()
{
    while (!queue_.empty()) {
        QueueEntry entry = queue_.top();
        queue_.pop();
        if (entry.state->cancelled)
            continue;
        now_ = entry.when;
        entry.state->fired = true;
        auto fn = std::move(entry.state->fn);
        fn();
        return true;
    }
    return false;
}

bool
Simulator::idle() const
{
    // Cancelled entries may linger in the heap; treat them as absent.
    // (The queue is copied lazily: we cannot pop from a const method,
    // so conservatively report non-idle only if a live entry exists.)
    if (queue_.empty())
        return true;
    // Cheap path: if the top is live, we are busy.
    if (!queue_.top().state->cancelled)
        return false;
    // Rare path: scan a copy.
    auto copy = queue_;
    while (!copy.empty()) {
        if (!copy.top().state->cancelled)
            return false;
        copy.pop();
    }
    return true;
}

} // namespace sim
} // namespace chameleon
