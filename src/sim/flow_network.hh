/**
 * @file
 * Fluid-flow network model with max-min fair bandwidth sharing.
 *
 * This is the stand-in for the paper's EC2 testbed. Every node link
 * (uplink, downlink) and disk is a Resource with a capacity in
 * bytes/second; every transfer (a foreground request, a repair slice,
 * a chunk hop) is a Flow traversing an ordered set of resources. At
 * any instant, flow rates are the max-min fair allocation (progressive
 * filling), the standard fluid abstraction of TCP sharing on
 * datacenter links. Rates are piecewise constant between events.
 *
 * Rate maintenance is incremental (see DESIGN.md §5g): a flow start,
 * finish, cancel, or capacity change re-solves only the connected
 * component of resources reachable from the changed resources through
 * shared flows — the only region whose bottleneck structure can
 * change — while every other flow keeps its rate bit-for-bit. Flow
 * progress is integrated lazily per flow (each flow remembers the
 * last instant it was integrated and its rate is constant since), and
 * completions come from an intrusive min-heap of predicted completion
 * times instead of an all-flows scan. Setting the environment
 * variable CHAMELEON_SIM_REFERENCE_SOLVER=1 (or calling
 * setReferenceSolver(true)) forces the from-scratch global solve on
 * every event as a differential oracle; both modes produce
 * byte-identical rates, event orders, and experiment output.
 *
 * Per-resource, per-tag byte accounting feeds the paper's
 * measurements: foreground-bandwidth fluctuation (Fig. 5), most/least
 * loaded links (Fig. 6), and the residual-bandwidth estimates
 * ChameleonEC's dispatcher consumes.
 */

#ifndef CHAMELEON_SIM_FLOW_NETWORK_HH_
#define CHAMELEON_SIM_FLOW_NETWORK_HH_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hh"
#include "telemetry/metrics.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace chameleon {
namespace sim {

/** Identifier of a capacity-constrained resource. */
using ResourceId = int32_t;

/** Identifier of an active or completed flow. */
using FlowId = int64_t;

inline constexpr ResourceId kInvalidResource = -1;
inline constexpr FlowId kInvalidFlow = -1;

/** Classification used for accounting and monitoring. */
enum class FlowTag : int {
    kForeground = 0,
    kRepair = 1,
    /** Background integrity scrub reads (cluster::ScrubScanner). */
    kScrub = 2,
};

inline constexpr int kNumFlowTags = 3;

/**
 * Optional provenance attached to a flow for telemetry: which repair
 * (group), which DAG vertex produced the payload, and which slice
 * index it carries. Unset fields stay -1 and are omitted from the
 * trace span, so unlabeled flows trace exactly as before.
 */
struct FlowLabel
{
    int64_t group = -1;
    int32_t vertex = -1;
    int32_t slice = -1;

    bool empty() const
    {
        return group < 0 && vertex < 0 && slice < 0;
    }
};

/** Max-min fair fluid network; see file comment. */
class FlowNetwork
{
  public:
    /** Flow-completion callback; small captures stay inline. */
    using Callback = Simulator::Callback;

    /**
     * @param sim           the owning event loop.
     * @param usage_window  window for per-resource bandwidth
     *                      accounting (the paper uses 15 s windows).
     */
    explicit FlowNetwork(Simulator &sim, SimTime usage_window = 15.0);

    /** Registers a resource; capacity in bytes/second. */
    ResourceId addResource(std::string name, Rate capacity);

    std::size_t resourceCount() const { return resources_.size(); }
    const std::string &resourceName(ResourceId id) const;
    Rate capacity(ResourceId id) const;

    /** Changes capacity (straggler/throttle injection); re-solves
     * the affected component. */
    void setCapacity(ResourceId id, Rate capacity);

    /**
     * Starts a flow of `size` bytes across `path` (resources are
     * traversed conceptually in order but share rate simultaneously,
     * as in a cut-through fluid model).
     *
     * @param on_complete  invoked (once) when the last byte arrives.
     * @return the flow id (valid until completion/cancellation).
     */
    FlowId startFlow(std::vector<ResourceId> path, Bytes size,
                     FlowTag tag, Callback on_complete);

    /** As above, tagging the flow's trace span with `label` (the
     * slice-pipelined DAG executor labels every slice hop). */
    FlowId startFlow(std::vector<ResourceId> path, Bytes size,
                     FlowTag tag, const FlowLabel &label,
                     Callback on_complete);

    /**
     * Cancels an active flow. Cancelling an id that is not active
     * (already completed or never started) is a cheap no-op.
     * @return bytes that had not yet been transferred.
     */
    Bytes cancelFlow(FlowId id);

    bool flowActive(FlowId id) const;

    /** Remaining bytes of an active flow, exact at the current
     * instant (the flow is lazily integrated on read). */
    Bytes flowRemaining(FlowId id) const;

    /** Current allocated rate of an active flow (bytes/s). */
    Rate flowRate(FlowId id) const;

    /** Number of currently active flows. */
    std::size_t activeFlowCount() const { return flows_.size(); }

    /**
     * Integrates all flow progress up to the current simulator time.
     *
     * Per-flow progress is integrated lazily (only when a flow's
     * rate changes), so queries of per-resource byte counters made
     * from an unrelated event (e.g. a monitor tick) should call
     * sync() first to observe exact byte counts.
     */
    void sync();

    /** Cumulative bytes moved through `id` by flows tagged `tag`. */
    Bytes taggedBytes(ResourceId id, FlowTag tag) const;

    /** Windowed usage recorder for (resource, tag). */
    const WindowedUsage &usage(ResourceId id, FlowTag tag) const;

    /** Instantaneous aggregate rate of `tag` flows through `id`;
     * O(1) via incrementally maintained per-tag sums. */
    Rate currentTagRate(ResourceId id, FlowTag tag) const;

    /** Count of active flows through `id`. */
    std::size_t activeFlowsOn(ResourceId id) const;

    /**
     * Forces the from-scratch global max-min solve on every event
     * (the debug oracle the incremental solver is differentially
     * tested against). Also enabled by the environment variable
     * CHAMELEON_SIM_REFERENCE_SOLVER=1 at construction.
     */
    void setReferenceSolver(bool on) { referenceSolver_ = on; }
    bool referenceSolver() const { return referenceSolver_; }

  private:
    struct Flow
    {
        FlowId id;
        std::vector<ResourceId> path;
        Bytes remaining;
        Rate rate = 0.0;
        FlowTag tag;
        Callback onComplete;
        /** Telemetry: launch time and original size for flow spans. */
        SimTime start = 0.0;
        Bytes size = 0.0;
        /** Optional per-slice provenance for the trace span. */
        FlowLabel label;
        /** Progress is integrated up to here; the rate has been
         * constant since (lazy integration). */
        SimTime syncTime = 0.0;
        /** Rate before the current solve (scratch). */
        Rate prevRate = 0.0;
        /** Predicted completion instant (completion-heap key);
         * kTimeNever while stalled. */
        SimTime eta = kTimeNever;
        /** Position in the completion heap; -1 = not enqueued. */
        int32_t heapPos = -1;
        /** Dirty-set traversal epoch (solve-internal). */
        uint64_t mark = 0;
    };

    struct Resource
    {
        std::string name;
        Rate capacity;
        /** Flows currently crossing this resource. Pointers into
         * flows_ (stable: unordered_map never moves nodes), so the
         * progressive-filling loop walks flows directly instead of
         * hashing ids per visit. */
        std::vector<Flow *> active;
        Bytes taggedBytes[kNumFlowTags] = {0.0, 0.0, 0.0};
        WindowedUsage usage[kNumFlowTags];
        /** Incrementally maintained per-tag rate sums and flow
         * counts; the sum snaps to exactly 0 when the count does,
         * so FP dust never accumulates on idle links. */
        Rate tagRate[kNumFlowTags] = {0.0, 0.0, 0.0};
        int32_t tagCount[kNumFlowTags] = {0, 0, 0};
        /** Dirty-set traversal epoch (solve-internal). */
        uint64_t mark = 0;
        /** Progressive-filling scratch (solve-internal). */
        Rate residual = 0.0;
        std::size_t unfrozen = 0;

        Resource(std::string n, Rate c, SimTime window)
            : name(std::move(n)), capacity(c),
              usage{WindowedUsage(window), WindowedUsage(window),
                    WindowedUsage(window)}
        {
        }
    };

    /**
     * Integrates one flow's progress over [flow.syncTime, now] at
     * `rate` (its rate over that interval) and advances syncTime.
     * @return the instant the last integrated byte arrived (used as
     *         the exact completion time for trace spans).
     */
    SimTime integrateFlow(Flow &flow, SimTime now, Rate rate);

    /**
     * Re-solves the max-min allocation of the connected component(s)
     * reachable from `seeds`, lazily integrating and re-keying every
     * flow whose rate actually changed, then reschedules the next
     * completion and dispatches staged callbacks. In reference-solver
     * mode the dirty set is the whole network.
     */
    void resolve(const std::vector<ResourceId> &seeds);

    /** Stages the completion of a finished flow: callback, counters,
     * trace span, detach, erase. `flow` is dead afterwards. */
    void completeFlow(Flow &flow, SimTime end);

    /** Removes the flow from its resources' active lists and per-tag
     * sums, and from the completion heap. */
    void detachFlow(Flow &flow);

    void scheduleNextCompletion();
    void onCompletionEvent();
    void dispatchPending();

    /** Completion-heap primitives (binary heap ordered by (eta, id),
     * positions tracked intrusively in Flow::heapPos). */
    bool heapLess(const Flow *a, const Flow *b) const
    {
        if (a->eta != b->eta)
            return a->eta < b->eta;
        return a->id < b->id;
    }
    void heapSiftUp(std::size_t i);
    void heapSiftDown(std::size_t i);
    void heapUpdate(Flow *flow);
    void heapRemove(Flow *flow);

    /** Emits the Chrome-trace span of a finished/cancelled flow. */
    void traceFlowSpan(const Flow &flow, SimTime end, bool cancelled);

    Simulator &sim_;
    SimTime usageWindow_;
    /** Metric handles (resolved once; updates are single adds). */
    telemetry::Counter &flowsStarted_;
    telemetry::Counter &flowsCompleted_;
    telemetry::Counter &flowsCancelled_;
    telemetry::Gauge &flowsActive_;
    telemetry::Counter &rateRecomputes_;
    telemetry::Counter &rateRecomputeVisits_;
    telemetry::Counter &dirtyResourceVisits_;
    telemetry::Counter &capacityChanges_;
    std::vector<Resource> resources_;
    std::unordered_map<FlowId, Flow> flows_;
    FlowId nextFlowId_ = 0;
    EventHandle completionEvent_;
    /** Absolute time the pending completion event targets. */
    SimTime completionEventAt_ = kTimeNever;
    /** Completion callbacks staged during integration. */
    std::vector<Callback> pendingCallbacks_;
    bool dispatching_ = false;
    bool referenceSolver_ = false;
    /** Dirty-set traversal epoch; bumped per solve. */
    uint64_t epoch_ = 0;
    /** Min-heap of active flows by predicted completion time. */
    std::vector<Flow *> heap_;
    /** Solve scratch, reused across solves (allocation-light). */
    std::vector<Resource *> dirtyRes_;
    std::vector<Flow *> dirtyFlows_;
    std::vector<Resource *> bfsStack_;
    std::vector<ResourceId> seedScratch_;
};

} // namespace sim
} // namespace chameleon

#endif // CHAMELEON_SIM_FLOW_NETWORK_HH_
