/**
 * @file
 * Fluid-flow network model with max-min fair bandwidth sharing.
 *
 * This is the stand-in for the paper's EC2 testbed. Every node link
 * (uplink, downlink) and disk is a Resource with a capacity in
 * bytes/second; every transfer (a foreground request, a repair slice,
 * a chunk hop) is a Flow traversing an ordered set of resources. At
 * any instant, flow rates are the max-min fair allocation (progressive
 * filling), the standard fluid abstraction of TCP sharing on
 * datacenter links. Rates are piecewise constant between events; the
 * network integrates progress exactly and re-solves the allocation on
 * every flow arrival, completion, cancellation, or capacity change
 * (capacity changes model stragglers and wondershaper-style
 * throttling).
 *
 * Per-resource, per-tag byte accounting feeds the paper's
 * measurements: foreground-bandwidth fluctuation (Fig. 5), most/least
 * loaded links (Fig. 6), and the residual-bandwidth estimates
 * ChameleonEC's dispatcher consumes.
 */

#ifndef CHAMELEON_SIM_FLOW_NETWORK_HH_
#define CHAMELEON_SIM_FLOW_NETWORK_HH_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hh"
#include "telemetry/metrics.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace chameleon {
namespace sim {

/** Identifier of a capacity-constrained resource. */
using ResourceId = int32_t;

/** Identifier of an active or completed flow. */
using FlowId = int64_t;

inline constexpr ResourceId kInvalidResource = -1;
inline constexpr FlowId kInvalidFlow = -1;

/** Classification used for accounting and monitoring. */
enum class FlowTag : int {
    kForeground = 0,
    kRepair = 1,
};

inline constexpr int kNumFlowTags = 2;

/**
 * Optional provenance attached to a flow for telemetry: which repair
 * (group), which DAG vertex produced the payload, and which slice
 * index it carries. Unset fields stay -1 and are omitted from the
 * trace span, so unlabeled flows trace exactly as before.
 */
struct FlowLabel
{
    int64_t group = -1;
    int32_t vertex = -1;
    int32_t slice = -1;

    bool empty() const
    {
        return group < 0 && vertex < 0 && slice < 0;
    }
};

/** Max-min fair fluid network; see file comment. */
class FlowNetwork
{
  public:
    /**
     * @param sim           the owning event loop.
     * @param usage_window  window for per-resource bandwidth
     *                      accounting (the paper uses 15 s windows).
     */
    explicit FlowNetwork(Simulator &sim, SimTime usage_window = 15.0);

    /** Registers a resource; capacity in bytes/second. */
    ResourceId addResource(std::string name, Rate capacity);

    std::size_t resourceCount() const { return resources_.size(); }
    const std::string &resourceName(ResourceId id) const;
    Rate capacity(ResourceId id) const;

    /** Changes capacity (straggler/throttle injection); re-solves. */
    void setCapacity(ResourceId id, Rate capacity);

    /**
     * Starts a flow of `size` bytes across `path` (resources are
     * traversed conceptually in order but share rate simultaneously,
     * as in a cut-through fluid model).
     *
     * @param on_complete  invoked (once) when the last byte arrives.
     * @return the flow id (valid until completion/cancellation).
     */
    FlowId startFlow(std::vector<ResourceId> path, Bytes size,
                     FlowTag tag, std::function<void()> on_complete);

    /** As above, tagging the flow's trace span with `label` (the
     * slice-pipelined DAG executor labels every slice hop). */
    FlowId startFlow(std::vector<ResourceId> path, Bytes size,
                     FlowTag tag, const FlowLabel &label,
                     std::function<void()> on_complete);

    /**
     * Cancels an active flow.
     * @return bytes that had not yet been transferred.
     */
    Bytes cancelFlow(FlowId id);

    bool flowActive(FlowId id) const;

    /** Remaining bytes of an active flow. */
    Bytes flowRemaining(FlowId id) const;

    /** Current allocated rate of an active flow (bytes/s). */
    Rate flowRate(FlowId id) const;

    /** Number of currently active flows. */
    std::size_t activeFlowCount() const { return flows_.size(); }

    /**
     * Integrates flow progress up to the current simulator time.
     *
     * Rates only change at flow events, so queries made from an
     * unrelated event (e.g. a monitor tick) should call sync() first
     * to observe exact byte counts.
     */
    void sync();

    /** Cumulative bytes moved through `id` by flows tagged `tag`. */
    Bytes taggedBytes(ResourceId id, FlowTag tag) const;

    /** Windowed usage recorder for (resource, tag). */
    const WindowedUsage &usage(ResourceId id, FlowTag tag) const;

    /** Instantaneous aggregate rate of `tag` flows through `id`. */
    Rate currentTagRate(ResourceId id, FlowTag tag) const;

    /** Count of active flows through `id`. */
    std::size_t activeFlowsOn(ResourceId id) const;

  private:
    struct Flow
    {
        FlowId id;
        std::vector<ResourceId> path;
        Bytes remaining;
        Rate rate = 0.0;
        FlowTag tag;
        std::function<void()> onComplete;
        /** Telemetry: launch time and original size for flow spans. */
        SimTime start = 0.0;
        Bytes size = 0.0;
        /** Optional per-slice provenance for the trace span. */
        FlowLabel label;
    };

    struct Resource
    {
        std::string name;
        Rate capacity;
        /** Flows currently crossing this resource. Pointers into
         * flows_ (stable: unordered_map never moves nodes), so the
         * progressive-filling loop and per-tag rate queries walk
         * flows directly instead of hashing ids per visit. */
        std::vector<Flow *> active;
        Bytes taggedBytes[kNumFlowTags] = {0.0, 0.0};
        WindowedUsage usage[kNumFlowTags];

        Resource(std::string n, Rate c, SimTime window)
            : name(std::move(n)), capacity(c),
              usage{WindowedUsage(window), WindowedUsage(window)}
        {
        }
    };

    /** Integrates all flow progress from lastUpdate_ to now. */
    void advanceProgress();

    /** Re-solves rates and reschedules the next completion event. */
    void resolve();

    /** Progressive-filling max-min fair allocation. */
    void computeRates();

    void scheduleNextCompletion();
    void onCompletionEvent();

    void detachFlow(const Flow &flow);

    /** Emits the Chrome-trace span of a finished/cancelled flow. */
    void traceFlowSpan(const Flow &flow, SimTime end, bool cancelled);

    Simulator &sim_;
    SimTime usageWindow_;
    /** Metric handles (resolved once; updates are single adds). */
    telemetry::Counter &flowsStarted_;
    telemetry::Counter &flowsCompleted_;
    telemetry::Counter &flowsCancelled_;
    telemetry::Gauge &flowsActive_;
    telemetry::Counter &rateRecomputes_;
    telemetry::Counter &rateRecomputeVisits_;
    telemetry::Counter &capacityChanges_;
    std::vector<Resource> resources_;
    std::unordered_map<FlowId, Flow> flows_;
    FlowId nextFlowId_ = 0;
    SimTime lastUpdate_ = 0.0;
    EventHandle completionEvent_;
    /** Completion callbacks staged during advanceProgress(). */
    std::vector<std::function<void()>> pendingCallbacks_;
    bool dispatching_ = false;
};

} // namespace sim
} // namespace chameleon

#endif // CHAMELEON_SIM_FLOW_NETWORK_HH_
