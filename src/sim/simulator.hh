/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single Simulator owns virtual time. Components schedule callbacks
 * at absolute times; the kernel pops them in (time, insertion) order,
 * so same-time events run deterministically in scheduling order.
 * Events can be cancelled (used by the fluid-flow network to
 * invalidate stale completion predictions when rates change).
 */

#ifndef CHAMELEON_SIM_SIMULATOR_HH_
#define CHAMELEON_SIM_SIMULATOR_HH_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/types.hh"

namespace chameleon {
namespace sim {

/** Handle used to cancel a scheduled event. */
class EventHandle
{
  public:
    EventHandle() = default;

    /** True if the event is still pending (not run, not cancelled). */
    bool pending() const;

    /** Cancels the event if still pending; idempotent. */
    void cancel();

  private:
    friend class Simulator;
    struct State
    {
        std::function<void()> fn;
        bool cancelled = false;
        bool fired = false;
    };
    std::shared_ptr<State> state_;
};

/** The event loop; see file comment. */
class Simulator
{
  public:
    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Flushes configured telemetry sinks so traces survive runs
     * that end without an explicit export. */
    ~Simulator();

    /** Current virtual time in seconds. */
    SimTime now() const { return now_; }

    /**
     * Schedules fn at absolute time `when` (>= now()).
     * @return a handle that can cancel the event.
     */
    EventHandle schedule(SimTime when, std::function<void()> fn);

    /** Schedules fn after a relative delay (>= 0). */
    EventHandle scheduleAfter(SimTime delay, std::function<void()> fn);

    /**
     * Runs events until the queue is empty or `until` is reached.
     * Advances now() to `until` if the queue drains earlier and
     * `until` is finite.
     * @return number of events executed.
     */
    std::size_t run(SimTime until = kTimeNever);

    /** Executes exactly one event if any is pending. */
    bool step();

    /** True if no events are pending. */
    bool idle() const;

  private:
    struct QueueEntry
    {
        SimTime when;
        uint64_t seq;
        std::shared_ptr<EventHandle::State> state;

        bool operator>(const QueueEntry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    SimTime now_ = 0.0;
    uint64_t seq_ = 0;
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<>> queue_;
};

} // namespace sim
} // namespace chameleon

#endif // CHAMELEON_SIM_SIMULATOR_HH_
