/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single Simulator owns virtual time. Components schedule callbacks
 * at absolute times; the kernel pops them in (time, insertion) order,
 * so same-time events run deterministically in scheduling order.
 * Events can be cancelled (used by the fluid-flow network to
 * invalidate stale completion predictions when rates change).
 *
 * The event core is allocation-light: callbacks live in a slab of
 * reusable slots (small-buffer SmallFunction storage, so typical
 * lambda captures never touch the heap) and handles are plain
 * (slot, generation) pairs — scheduling an event performs no heap
 * allocation beyond amortized slab/queue growth. A live-event
 * counter makes idle() O(1) even when cancelled entries linger in
 * the heap; dead entries are popped lazily as they surface.
 */

#ifndef CHAMELEON_SIM_SIMULATOR_HH_
#define CHAMELEON_SIM_SIMULATOR_HH_

#include <cstdint>
#include <queue>
#include <vector>

#include "util/small_function.hh"
#include "util/types.hh"

namespace chameleon {
namespace sim {

class Simulator;

/**
 * Handle used to cancel a scheduled event.
 *
 * A plain (slot, generation) reference into the simulator's event
 * slab: copyable, trivially destructible, and safe to hold after the
 * event ran or was cancelled (the generation check makes stale
 * handles inert). Handles must not outlive the Simulator.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** True if the event is still pending (not run, not cancelled). */
    bool pending() const;

    /** Cancels the event if still pending; idempotent. */
    void cancel();

  private:
    friend class Simulator;
    Simulator *sim_ = nullptr;
    uint32_t slot_ = 0;
    uint64_t gen_ = 0;
};

/** The event loop; see file comment. */
class Simulator
{
  public:
    /** Event callback; captures up to 48 bytes stay inline. */
    using Callback = util::SmallFunction<void()>;

    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Flushes configured telemetry sinks so traces survive runs
     * that end without an explicit export. */
    ~Simulator();

    /** Current virtual time in seconds. */
    SimTime now() const { return now_; }

    /**
     * Schedules fn at absolute time `when` (>= now()).
     * @return a handle that can cancel the event.
     */
    EventHandle schedule(SimTime when, Callback fn);

    /** Schedules fn after a relative delay (>= 0). */
    EventHandle scheduleAfter(SimTime delay, Callback fn);

    /**
     * Runs events until the queue is empty or `until` is reached.
     * Advances now() to `until` if the queue drains earlier and
     * `until` is finite.
     * @return number of events executed.
     */
    std::size_t run(SimTime until = kTimeNever);

    /** Executes exactly one event if any is pending. */
    bool step();

    /** True if no events are pending; O(1) via the live counter. */
    bool idle() const { return live_ == 0; }

    /** Events pending (scheduled, not yet run or cancelled). */
    std::size_t pendingEvents() const { return live_; }

    /** Total events executed over the simulator's lifetime. */
    uint64_t eventsExecuted() const { return executed_; }

  private:
    friend class EventHandle;

    /** One slab entry; freed slots recycle through freeSlots_ with a
     * bumped generation, so queue entries and handles referring to
     * the old occupant become inert automatically. */
    struct Slot
    {
        Callback fn;
        uint64_t gen = 0;
    };

    struct QueueEntry
    {
        SimTime when;
        uint64_t seq;
        uint32_t slot;
        uint64_t gen;

        bool operator>(const QueueEntry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    bool slotPending(uint32_t slot, uint64_t gen) const
    {
        return slot < slots_.size() && slots_[slot].gen == gen;
    }

    uint32_t allocSlot();
    void freeSlot(uint32_t slot);

    /** Pops dead (cancelled/stale) entries off the queue top; returns
     * false when the queue is exhausted. */
    bool compactTop();

    SimTime now_ = 0.0;
    uint64_t seq_ = 0;
    uint64_t executed_ = 0;
    std::size_t live_ = 0;
    std::vector<Slot> slots_;
    std::vector<uint32_t> freeSlots_;
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<>> queue_;
};

} // namespace sim
} // namespace chameleon

#endif // CHAMELEON_SIM_SIMULATOR_HH_
