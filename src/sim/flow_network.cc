#include "sim/flow_network.hh"

#include <algorithm>
#include <limits>

#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace chameleon {
namespace sim {

namespace {

/** Bytes below which a flow counts as finished (guards FP error). */
constexpr Bytes kByteEps = 1e-3;

} // namespace

FlowNetwork::FlowNetwork(Simulator &sim, SimTime usage_window)
    : sim_(sim), usageWindow_(usage_window),
      flowsStarted_(telemetry::metrics().counter("sim.flows.started")),
      flowsCompleted_(
          telemetry::metrics().counter("sim.flows.completed")),
      flowsCancelled_(
          telemetry::metrics().counter("sim.flows.cancelled")),
      flowsActive_(telemetry::metrics().gauge("sim.flows.active")),
      rateRecomputes_(
          telemetry::metrics().counter("sim.rate_recomputes")),
      rateRecomputeVisits_(telemetry::metrics().counter(
          "sim.rate_recompute_flow_visits")),
      capacityChanges_(
          telemetry::metrics().counter("sim.capacity_changes"))
{
}

void
FlowNetwork::traceFlowSpan(const Flow &flow, SimTime end,
                           bool cancelled)
{
    std::string path;
    for (ResourceId r : flow.path) {
        if (!path.empty())
            path.push_back('|');
        path += resources_[static_cast<std::size_t>(r)].name;
    }
    const auto track = flow.tag == FlowTag::kRepair
                           ? telemetry::kTrackRepairFlow
                           : telemetry::kTrackForeground;
    if (!flow.label.empty()) {
        // Labeled (per-slice) flows carry their provenance so trace
        // consumers can reassemble a chunk's pipeline occupancy.
        telemetry::tracer().complete(
            flow.start, end - flow.start, track, "sim.flow", "flow",
            {{"bytes", flow.size},
             {"path", std::move(path)},
             {"cancelled", cancelled ? 1 : 0},
             {"group", flow.label.group},
             {"vertex", flow.label.vertex},
             {"slice", flow.label.slice}});
        return;
    }
    telemetry::tracer().complete(
        flow.start, end - flow.start, track, "sim.flow", "flow",
        {{"bytes", flow.size},
         {"path", std::move(path)},
         {"cancelled", cancelled ? 1 : 0}});
}

ResourceId
FlowNetwork::addResource(std::string name, Rate capacity)
{
    CHAMELEON_ASSERT(capacity >= 0, "negative capacity");
    resources_.emplace_back(std::move(name), capacity, usageWindow_);
    return static_cast<ResourceId>(resources_.size() - 1);
}

const std::string &
FlowNetwork::resourceName(ResourceId id) const
{
    CHAMELEON_ASSERT(id >= 0 &&
                     static_cast<std::size_t>(id) < resources_.size(),
                     "bad resource id ", id);
    return resources_[static_cast<std::size_t>(id)].name;
}

Rate
FlowNetwork::capacity(ResourceId id) const
{
    CHAMELEON_ASSERT(id >= 0 &&
                     static_cast<std::size_t>(id) < resources_.size(),
                     "bad resource id ", id);
    return resources_[static_cast<std::size_t>(id)].capacity;
}

void
FlowNetwork::setCapacity(ResourceId id, Rate capacity)
{
    CHAMELEON_ASSERT(id >= 0 &&
                     static_cast<std::size_t>(id) < resources_.size(),
                     "bad resource id ", id);
    CHAMELEON_ASSERT(capacity >= 0, "negative capacity");
    advanceProgress();
    resources_[static_cast<std::size_t>(id)].capacity = capacity;
    capacityChanges_.add();
    CHAMELEON_TELEM(telemetry::tracer().instant(
        sim_.now(), telemetry::kTrackSim, "sim", "capacity-change",
        {{"resource",
          resources_[static_cast<std::size_t>(id)].name},
         {"capacity", capacity}}));
    resolve();
}

FlowId
FlowNetwork::startFlow(std::vector<ResourceId> path, Bytes size,
                       FlowTag tag, std::function<void()> on_complete)
{
    return startFlow(std::move(path), size, tag, FlowLabel{},
                     std::move(on_complete));
}

FlowId
FlowNetwork::startFlow(std::vector<ResourceId> path, Bytes size,
                       FlowTag tag, const FlowLabel &label,
                       std::function<void()> on_complete)
{
    CHAMELEON_ASSERT(size >= 0, "negative flow size");
    for (std::size_t i = 0; i < path.size(); ++i) {
        CHAMELEON_ASSERT(path[i] >= 0 &&
                         static_cast<std::size_t>(path[i]) <
                             resources_.size(),
                         "bad resource in path");
        for (std::size_t j = i + 1; j < path.size(); ++j)
            CHAMELEON_ASSERT(path[i] != path[j],
                             "duplicate resource in flow path");
    }

    advanceProgress();
    FlowId id = nextFlowId_++;
    if (size <= kByteEps || path.empty()) {
        // Degenerate flow: completes immediately.
        if (on_complete)
            pendingCallbacks_.push_back(std::move(on_complete));
        resolve();
        return id;
    }

    Flow flow;
    flow.id = id;
    flow.path = std::move(path);
    flow.remaining = size;
    flow.tag = tag;
    flow.onComplete = std::move(on_complete);
    flow.start = sim_.now();
    flow.size = size;
    flow.label = label;
    // Insert first, then attach: the active lists hold pointers into
    // the map's (stable) nodes.
    Flow &stored = flows_.emplace(id, std::move(flow)).first->second;
    for (ResourceId r : stored.path)
        resources_[static_cast<std::size_t>(r)].active.push_back(
            &stored);
    flowsStarted_.add();
    flowsActive_.set(static_cast<double>(flows_.size()));
    resolve();
    return id;
}

Bytes
FlowNetwork::cancelFlow(FlowId id)
{
    advanceProgress();
    auto it = flows_.find(id);
    if (it == flows_.end()) {
        resolve();
        return 0.0;
    }
    Bytes remaining = it->second.remaining;
    flowsCancelled_.add();
    CHAMELEON_TELEM(traceFlowSpan(it->second, sim_.now(),
                                  /*cancelled=*/true));
    detachFlow(it->second);
    flows_.erase(it);
    flowsActive_.set(static_cast<double>(flows_.size()));
    resolve();
    return remaining;
}

bool
FlowNetwork::flowActive(FlowId id) const
{
    return flows_.count(id) > 0;
}

Bytes
FlowNetwork::flowRemaining(FlowId id) const
{
    auto it = flows_.find(id);
    CHAMELEON_ASSERT(it != flows_.end(), "flow ", id, " not active");
    // Note: progress since the last event is not yet integrated; the
    // caller sees the state as of the last resolve, which is exact at
    // event boundaries (where all scheduling decisions happen).
    return it->second.remaining;
}

Rate
FlowNetwork::flowRate(FlowId id) const
{
    auto it = flows_.find(id);
    CHAMELEON_ASSERT(it != flows_.end(), "flow ", id, " not active");
    return it->second.rate;
}

void
FlowNetwork::sync()
{
    advanceProgress();
    // Progress integration may have completed flows exactly at this
    // instant; resolve to fire their callbacks and refresh rates.
    if (!pendingCallbacks_.empty())
        resolve();
    else
        scheduleNextCompletion();
}

Bytes
FlowNetwork::taggedBytes(ResourceId id, FlowTag tag) const
{
    CHAMELEON_ASSERT(id >= 0 &&
                     static_cast<std::size_t>(id) < resources_.size(),
                     "bad resource id ", id);
    return resources_[static_cast<std::size_t>(id)]
        .taggedBytes[static_cast<int>(tag)];
}

const WindowedUsage &
FlowNetwork::usage(ResourceId id, FlowTag tag) const
{
    CHAMELEON_ASSERT(id >= 0 &&
                     static_cast<std::size_t>(id) < resources_.size(),
                     "bad resource id ", id);
    return resources_[static_cast<std::size_t>(id)]
        .usage[static_cast<int>(tag)];
}

Rate
FlowNetwork::currentTagRate(ResourceId id, FlowTag tag) const
{
    CHAMELEON_ASSERT(id >= 0 &&
                     static_cast<std::size_t>(id) < resources_.size(),
                     "bad resource id ", id);
    Rate acc = 0.0;
    for (const Flow *f : resources_[static_cast<std::size_t>(id)].active) {
        if (f->tag == tag)
            acc += f->rate;
    }
    return acc;
}

std::size_t
FlowNetwork::activeFlowsOn(ResourceId id) const
{
    CHAMELEON_ASSERT(id >= 0 &&
                     static_cast<std::size_t>(id) < resources_.size(),
                     "bad resource id ", id);
    return resources_[static_cast<std::size_t>(id)].active.size();
}

void
FlowNetwork::advanceProgress()
{
    const SimTime now = sim_.now();
    CHAMELEON_ASSERT(now >= lastUpdate_, "time went backwards");
    const SimTime dt = now - lastUpdate_;
    if (dt > 0) {
        std::vector<FlowId> finished;
        for (auto &[id, flow] : flows_) {
            if (flow.rate <= 0)
                continue;
            Bytes delivered = std::min(flow.rate * dt, flow.remaining);
            SimTime end = lastUpdate_ + delivered / flow.rate;
            flow.remaining -= delivered;
            for (ResourceId r : flow.path) {
                auto &res = resources_[static_cast<std::size_t>(r)];
                res.taggedBytes[static_cast<int>(flow.tag)] += delivered;
                res.usage[static_cast<int>(flow.tag)].addTransfer(
                    lastUpdate_, end, delivered);
            }
            if (flow.remaining <= kByteEps) {
                finished.push_back(id);
                // `end` is the exact completion instant.
                CHAMELEON_TELEM(traceFlowSpan(flow, end,
                                              /*cancelled=*/false));
            }
        }
        for (FlowId id : finished) {
            auto it = flows_.find(id);
            if (it->second.onComplete)
                pendingCallbacks_.push_back(
                    std::move(it->second.onComplete));
            flowsCompleted_.add();
            detachFlow(it->second);
            flows_.erase(it);
        }
        flowsActive_.set(static_cast<double>(flows_.size()));
    }
    lastUpdate_ = now;
}

void
FlowNetwork::detachFlow(const Flow &flow)
{
    for (ResourceId r : flow.path) {
        auto &vec = resources_[static_cast<std::size_t>(r)].active;
        auto it = std::find(vec.begin(), vec.end(), &flow);
        CHAMELEON_ASSERT(it != vec.end(), "flow missing from resource");
        *it = vec.back();
        vec.pop_back();
    }
}

void
FlowNetwork::computeRates()
{
    rateRecomputes_.add();
    rateRecomputeVisits_.add(static_cast<int64_t>(flows_.size()));
    // Progressive filling (Bertsekas & Gallager): repeatedly saturate
    // the resource with the smallest fair share among its unfrozen
    // flows; those flows are frozen at that share.
    const std::size_t nres = resources_.size();
    std::vector<Rate> residual(nres);
    std::vector<std::size_t> unfrozen(nres, 0);
    for (std::size_t r = 0; r < nres; ++r) {
        residual[r] = resources_[r].capacity;
        unfrozen[r] = resources_[r].active.size();
    }
    for (auto &[id, flow] : flows_)
        flow.rate = -1.0; // marks unfrozen

    std::size_t remaining_flows = flows_.size();
    while (remaining_flows > 0) {
        // Find the bottleneck resource.
        Rate best_fair = std::numeric_limits<Rate>::infinity();
        std::size_t best_r = nres;
        for (std::size_t r = 0; r < nres; ++r) {
            if (unfrozen[r] == 0)
                continue;
            Rate fair = std::max(residual[r], 0.0) /
                        static_cast<Rate>(unfrozen[r]);
            if (fair < best_fair) {
                best_fair = fair;
                best_r = r;
            }
        }
        CHAMELEON_ASSERT(best_r < nres,
                         "unfrozen flows but no active resource");
        // Freeze every unfrozen flow crossing the bottleneck.
        // Freezing mutates the fill bookkeeping only, never the
        // active lists, so iterating the list directly is safe —
        // and pointer-chasing-free (no per-flow hash lookup).
        for (Flow *fp : resources_[best_r].active) {
            Flow &flow = *fp;
            if (flow.rate >= 0)
                continue; // already frozen
            flow.rate = best_fair;
            for (ResourceId pr : flow.path) {
                auto p = static_cast<std::size_t>(pr);
                residual[p] -= best_fair;
                CHAMELEON_ASSERT(unfrozen[p] > 0, "bookkeeping error");
                unfrozen[p] -= 1;
            }
            --remaining_flows;
        }
    }
}

void
FlowNetwork::scheduleNextCompletion()
{
    completionEvent_.cancel();
    SimTime horizon = kTimeNever;
    for (const auto &[id, flow] : flows_) {
        if (flow.rate > 0)
            horizon = std::min(horizon, flow.remaining / flow.rate);
    }
    if (horizon == kTimeNever)
        return;
    completionEvent_ =
        sim_.scheduleAfter(horizon, [this] { onCompletionEvent(); });
}

void
FlowNetwork::onCompletionEvent()
{
    advanceProgress();
    resolve();
}

void
FlowNetwork::resolve()
{
    computeRates();
    scheduleNextCompletion();
    // Dispatch staged completion callbacks; they may start new flows,
    // which re-enters resolve() — the dispatching_ flag prevents a
    // recursive drain.
    if (dispatching_)
        return;
    dispatching_ = true;
    while (!pendingCallbacks_.empty()) {
        auto batch = std::move(pendingCallbacks_);
        pendingCallbacks_.clear();
        for (auto &cb : batch)
            cb();
    }
    dispatching_ = false;
}

} // namespace sim
} // namespace chameleon
