#include "sim/flow_network.hh"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace chameleon {
namespace sim {

namespace {

/** Bytes below which a flow counts as finished (guards FP error). */
constexpr Bytes kByteEps = 1e-3;

} // namespace

FlowNetwork::FlowNetwork(Simulator &sim, SimTime usage_window)
    : sim_(sim), usageWindow_(usage_window),
      flowsStarted_(telemetry::metrics().counter("sim.flows.started")),
      flowsCompleted_(
          telemetry::metrics().counter("sim.flows.completed")),
      flowsCancelled_(
          telemetry::metrics().counter("sim.flows.cancelled")),
      flowsActive_(telemetry::metrics().gauge("sim.flows.active")),
      rateRecomputes_(
          telemetry::metrics().counter("sim.rate_recomputes")),
      rateRecomputeVisits_(telemetry::metrics().counter(
          "sim.rate_recompute_flow_visits")),
      dirtyResourceVisits_(telemetry::metrics().counter(
          "sim.solver.dirty_resource_visits")),
      capacityChanges_(
          telemetry::metrics().counter("sim.capacity_changes"))
{
    if (const char *env =
            std::getenv("CHAMELEON_SIM_REFERENCE_SOLVER"))
        referenceSolver_ = env[0] != '\0' && env[0] != '0';
}

void
FlowNetwork::traceFlowSpan(const Flow &flow, SimTime end,
                           bool cancelled)
{
    std::string path;
    for (ResourceId r : flow.path) {
        if (!path.empty())
            path.push_back('|');
        path += resources_[static_cast<std::size_t>(r)].name;
    }
    // Scrub reads share the repair track: both are background
    // streams contending with foreground traffic.
    const auto track = flow.tag == FlowTag::kForeground
                           ? telemetry::kTrackForeground
                           : telemetry::kTrackRepairFlow;
    if (!flow.label.empty()) {
        // Labeled (per-slice) flows carry their provenance so trace
        // consumers can reassemble a chunk's pipeline occupancy.
        telemetry::tracer().complete(
            flow.start, end - flow.start, track, "sim.flow", "flow",
            {{"bytes", flow.size},
             {"path", std::move(path)},
             {"cancelled", cancelled ? 1 : 0},
             {"group", flow.label.group},
             {"vertex", flow.label.vertex},
             {"slice", flow.label.slice}});
        return;
    }
    telemetry::tracer().complete(
        flow.start, end - flow.start, track, "sim.flow", "flow",
        {{"bytes", flow.size},
         {"path", std::move(path)},
         {"cancelled", cancelled ? 1 : 0}});
}

ResourceId
FlowNetwork::addResource(std::string name, Rate capacity)
{
    CHAMELEON_ASSERT(capacity >= 0, "negative capacity");
    resources_.emplace_back(std::move(name), capacity, usageWindow_);
    return static_cast<ResourceId>(resources_.size() - 1);
}

const std::string &
FlowNetwork::resourceName(ResourceId id) const
{
    CHAMELEON_ASSERT(id >= 0 &&
                     static_cast<std::size_t>(id) < resources_.size(),
                     "bad resource id ", id);
    return resources_[static_cast<std::size_t>(id)].name;
}

Rate
FlowNetwork::capacity(ResourceId id) const
{
    CHAMELEON_ASSERT(id >= 0 &&
                     static_cast<std::size_t>(id) < resources_.size(),
                     "bad resource id ", id);
    return resources_[static_cast<std::size_t>(id)].capacity;
}

void
FlowNetwork::setCapacity(ResourceId id, Rate capacity)
{
    CHAMELEON_ASSERT(id >= 0 &&
                     static_cast<std::size_t>(id) < resources_.size(),
                     "bad resource id ", id);
    CHAMELEON_ASSERT(capacity >= 0, "negative capacity");
    resources_[static_cast<std::size_t>(id)].capacity = capacity;
    capacityChanges_.add();
    CHAMELEON_TELEM(telemetry::tracer().instant(
        sim_.now(), telemetry::kTrackSim, "sim", "capacity-change",
        {{"resource",
          resources_[static_cast<std::size_t>(id)].name},
         {"capacity", capacity}}));
    seedScratch_.assign(1, id);
    resolve(seedScratch_);
}

FlowId
FlowNetwork::startFlow(std::vector<ResourceId> path, Bytes size,
                       FlowTag tag, Callback on_complete)
{
    return startFlow(std::move(path), size, tag, FlowLabel{},
                     std::move(on_complete));
}

FlowId
FlowNetwork::startFlow(std::vector<ResourceId> path, Bytes size,
                       FlowTag tag, const FlowLabel &label,
                       Callback on_complete)
{
    CHAMELEON_ASSERT(size >= 0, "negative flow size");
    for (std::size_t i = 0; i < path.size(); ++i) {
        CHAMELEON_ASSERT(path[i] >= 0 &&
                         static_cast<std::size_t>(path[i]) <
                             resources_.size(),
                         "bad resource in path");
        for (std::size_t j = i + 1; j < path.size(); ++j)
            CHAMELEON_ASSERT(path[i] != path[j],
                             "duplicate resource in flow path");
    }

    FlowId id = nextFlowId_++;
    if (size <= kByteEps || path.empty()) {
        // Degenerate flow: completes immediately. No rate can
        // change, so skip the solve entirely.
        if (on_complete)
            pendingCallbacks_.push_back(std::move(on_complete));
        dispatchPending();
        return id;
    }

    Flow flow;
    flow.id = id;
    flow.path = std::move(path);
    flow.remaining = size;
    flow.tag = tag;
    flow.onComplete = std::move(on_complete);
    flow.start = sim_.now();
    flow.size = size;
    flow.label = label;
    flow.syncTime = sim_.now();
    // Insert first, then attach: the active lists hold pointers into
    // the map's (stable) nodes.
    Flow &stored = flows_.emplace(id, std::move(flow)).first->second;
    for (ResourceId r : stored.path)
        resources_[static_cast<std::size_t>(r)].active.push_back(
            &stored);
    heapUpdate(&stored); // eta = never until the solve rates it
    flowsStarted_.add();
    flowsActive_.set(static_cast<double>(flows_.size()));
    resolve(stored.path);
    return id;
}

Bytes
FlowNetwork::cancelFlow(FlowId id)
{
    auto it = flows_.find(id);
    if (it == flows_.end())
        return 0.0; // no-op: no rate can change, skip the solve
    Flow &flow = it->second;
    const SimTime end = integrateFlow(flow, sim_.now(), flow.rate);
    seedScratch_.assign(flow.path.begin(), flow.path.end());
    if (flow.rate > 0 && flow.remaining <= kByteEps) {
        // The last byte arrived at (or before) this instant; the
        // completion event just hasn't fired yet. Complete, don't
        // cancel.
        completeFlow(flow, end);
        resolve(seedScratch_);
        return 0.0;
    }
    const Bytes remaining = flow.remaining;
    flowsCancelled_.add();
    CHAMELEON_TELEM(traceFlowSpan(flow, sim_.now(),
                                  /*cancelled=*/true));
    detachFlow(flow);
    flows_.erase(it);
    flowsActive_.set(static_cast<double>(flows_.size()));
    resolve(seedScratch_);
    return remaining;
}

bool
FlowNetwork::flowActive(FlowId id) const
{
    return flows_.count(id) > 0;
}

Bytes
FlowNetwork::flowRemaining(FlowId id) const
{
    auto it = flows_.find(id);
    CHAMELEON_ASSERT(it != flows_.end(), "flow ", id, " not active");
    // Integrate-on-read: progress is tracked lazily, so bring this
    // flow exactly up to now (rates are unaffected).
    auto *self = const_cast<FlowNetwork *>(this);
    auto &flow = const_cast<Flow &>(it->second);
    self->integrateFlow(flow, sim_.now(), flow.rate);
    return flow.remaining;
}

Rate
FlowNetwork::flowRate(FlowId id) const
{
    auto it = flows_.find(id);
    CHAMELEON_ASSERT(it != flows_.end(), "flow ", id, " not active");
    return it->second.rate;
}

void
FlowNetwork::sync()
{
    const SimTime now = sim_.now();
    seedScratch_.clear();
    bool completed = false;
    for (auto it = flows_.begin(); it != flows_.end();) {
        Flow &flow = it->second;
        ++it; // completeFlow erases the current node
        const SimTime end = integrateFlow(flow, now, flow.rate);
        if (flow.rate > 0 && flow.remaining <= kByteEps) {
            // Finished exactly at this instant; fire its callback
            // now rather than waiting for the completion event.
            for (ResourceId r : flow.path)
                seedScratch_.push_back(r);
            completed = true;
            completeFlow(flow, end);
        }
    }
    if (completed)
        resolve(seedScratch_);
}

Bytes
FlowNetwork::taggedBytes(ResourceId id, FlowTag tag) const
{
    CHAMELEON_ASSERT(id >= 0 &&
                     static_cast<std::size_t>(id) < resources_.size(),
                     "bad resource id ", id);
    return resources_[static_cast<std::size_t>(id)]
        .taggedBytes[static_cast<int>(tag)];
}

const WindowedUsage &
FlowNetwork::usage(ResourceId id, FlowTag tag) const
{
    CHAMELEON_ASSERT(id >= 0 &&
                     static_cast<std::size_t>(id) < resources_.size(),
                     "bad resource id ", id);
    return resources_[static_cast<std::size_t>(id)]
        .usage[static_cast<int>(tag)];
}

Rate
FlowNetwork::currentTagRate(ResourceId id, FlowTag tag) const
{
    CHAMELEON_ASSERT(id >= 0 &&
                     static_cast<std::size_t>(id) < resources_.size(),
                     "bad resource id ", id);
    return resources_[static_cast<std::size_t>(id)]
        .tagRate[static_cast<int>(tag)];
}

std::size_t
FlowNetwork::activeFlowsOn(ResourceId id) const
{
    CHAMELEON_ASSERT(id >= 0 &&
                     static_cast<std::size_t>(id) < resources_.size(),
                     "bad resource id ", id);
    return resources_[static_cast<std::size_t>(id)].active.size();
}

SimTime
FlowNetwork::integrateFlow(Flow &flow, SimTime now, Rate rate)
{
    CHAMELEON_ASSERT(now >= flow.syncTime, "time went backwards");
    const SimTime dt = now - flow.syncTime;
    if (dt <= 0 || rate <= 0) {
        flow.syncTime = now;
        return now;
    }
    const Bytes delivered = std::min(rate * dt, flow.remaining);
    const SimTime end = flow.syncTime + delivered / rate;
    flow.remaining -= delivered;
    const int tag = static_cast<int>(flow.tag);
    for (ResourceId r : flow.path) {
        auto &res = resources_[static_cast<std::size_t>(r)];
        res.taggedBytes[tag] += delivered;
        res.usage[tag].addTransfer(flow.syncTime, end, delivered);
    }
    flow.syncTime = now;
    return end;
}

void
FlowNetwork::completeFlow(Flow &flow, SimTime end)
{
    CHAMELEON_TELEM(traceFlowSpan(flow, end, /*cancelled=*/false));
    if (flow.onComplete)
        pendingCallbacks_.push_back(std::move(flow.onComplete));
    flowsCompleted_.add();
    const FlowId id = flow.id;
    detachFlow(flow);
    flows_.erase(id);
    flowsActive_.set(static_cast<double>(flows_.size()));
}

void
FlowNetwork::detachFlow(Flow &flow)
{
    heapRemove(&flow);
    for (ResourceId r : flow.path) {
        auto &vec = resources_[static_cast<std::size_t>(r)].active;
        auto it = std::find(vec.begin(), vec.end(), &flow);
        CHAMELEON_ASSERT(it != vec.end(), "flow missing from resource");
        *it = vec.back();
        vec.pop_back();
    }
    // Per-tag rate sums of the touched resources are refreshed by the
    // resolve() that always follows a detach (the flow's path seeds
    // the dirty set).
}

void
FlowNetwork::resolve(const std::vector<ResourceId> &seeds)
{
    const SimTime now = sim_.now();
    rateRecomputes_.add();
    dirtyRes_.clear();
    dirtyFlows_.clear();
    ++epoch_;
    const uint64_t epoch = epoch_;

    if (referenceSolver_) {
        // Oracle mode: the dirty set is the whole network, making
        // this the classic from-scratch global solve. Everything
        // downstream is shared with incremental mode, so the two
        // modes differ only in dirty-set discovery.
        for (auto &res : resources_)
            dirtyRes_.push_back(&res);
        for (auto &[id, flow] : flows_)
            dirtyFlows_.push_back(&flow);
    } else {
        // Dirty-set discovery: the max-min allocation of a flow can
        // only change if it shares a resource (transitively) with a
        // changed one, so BFS over the flow<->resource bipartite
        // graph from the seed resources bounds the re-solve to the
        // affected connected component(s).
        bfsStack_.clear();
        for (ResourceId r : seeds) {
            Resource &res = resources_[static_cast<std::size_t>(r)];
            if (res.mark == epoch)
                continue;
            res.mark = epoch;
            dirtyRes_.push_back(&res);
            bfsStack_.push_back(&res);
        }
        while (!bfsStack_.empty()) {
            Resource *res = bfsStack_.back();
            bfsStack_.pop_back();
            for (Flow *f : res->active) {
                if (f->mark == epoch)
                    continue;
                f->mark = epoch;
                dirtyFlows_.push_back(f);
                for (ResourceId pr : f->path) {
                    Resource &o =
                        resources_[static_cast<std::size_t>(pr)];
                    if (o.mark == epoch)
                        continue;
                    o.mark = epoch;
                    dirtyRes_.push_back(&o);
                    bfsStack_.push_back(&o);
                }
            }
        }
        // The bottleneck scan must visit resources in index order so
        // its tie-break matches the reference solver's bit-for-bit
        // (pointer order == index order: resources_ is contiguous).
        std::sort(dirtyRes_.begin(), dirtyRes_.end());
    }
    dirtyResourceVisits_.add(
        static_cast<int64_t>(dirtyRes_.size()));
    rateRecomputeVisits_.add(
        static_cast<int64_t>(dirtyFlows_.size()));

    // Progressive filling (Bertsekas & Gallager) restricted to the
    // dirty component: repeatedly saturate the resource with the
    // smallest fair share among its unfrozen flows; those flows are
    // frozen at that share. Restriction is exact, not approximate:
    // flows outside the component share no resource with it, so the
    // global solve would perform bit-identical arithmetic on the
    // component and leave the rest untouched.
    for (Resource *res : dirtyRes_) {
        res->residual = res->capacity;
        res->unfrozen = res->active.size();
    }
    for (Flow *f : dirtyFlows_) {
        f->prevRate = f->rate;
        f->rate = -1.0; // marks unfrozen
    }

    std::size_t remaining_flows = dirtyFlows_.size();
    while (remaining_flows > 0) {
        // Find the bottleneck resource.
        Rate best_fair = std::numeric_limits<Rate>::infinity();
        Resource *best = nullptr;
        for (Resource *res : dirtyRes_) {
            if (res->unfrozen == 0)
                continue;
            Rate fair = std::max(res->residual, 0.0) /
                        static_cast<Rate>(res->unfrozen);
            if (fair < best_fair) {
                best_fair = fair;
                best = res;
            }
        }
        CHAMELEON_ASSERT(best != nullptr,
                         "unfrozen flows but no active resource");
        // Freeze every unfrozen flow crossing the bottleneck.
        // Freezing mutates the fill bookkeeping only, never the
        // active lists, so iterating the list directly is safe —
        // and pointer-chasing-free (no per-flow hash lookup).
        for (Flow *fp : best->active) {
            Flow &flow = *fp;
            if (flow.rate >= 0)
                continue; // already frozen
            flow.rate = best_fair;
            for (ResourceId pr : flow.path) {
                auto &p = resources_[static_cast<std::size_t>(pr)];
                p.residual -= best_fair;
                CHAMELEON_ASSERT(p.unfrozen > 0, "bookkeeping error");
                p.unfrozen -= 1;
            }
            --remaining_flows;
        }
    }

    // Apply pass, ordered by flow id so both solver modes touch
    // flows in the same sequence: integrate each re-rated flow over
    // the span its old rate covered, and re-key its predicted
    // completion. Flows whose rate is bit-unchanged are skipped —
    // their progress stays lazily pending and their heap entry is
    // already correct.
    std::sort(dirtyFlows_.begin(), dirtyFlows_.end(),
              [](const Flow *a, const Flow *b) { return a->id < b->id; });
    for (Flow *f : dirtyFlows_) {
        if (f->rate == f->prevRate)
            continue;
        integrateFlow(*f, now, f->prevRate);
        f->eta = f->rate > 0 ? now + f->remaining / f->rate
                             : kTimeNever;
        heapUpdate(f);
    }

    // Refresh the per-tag rate sums of the dirty resources from
    // scratch (a left-to-right walk of each active list): O(component
    // edges), same as one fill round, and — unlike += deltas — free
    // of accumulated FP drift, so an idle link reads exactly 0.
    for (Resource *res : dirtyRes_) {
        Rate sums[kNumFlowTags] = {0.0, 0.0, 0.0};
        for (const Flow *f : res->active)
            sums[static_cast<int>(f->tag)] += f->rate;
        for (int t = 0; t < kNumFlowTags; ++t)
            res->tagRate[t] = sums[t];
    }

    scheduleNextCompletion();
    dispatchPending();
}

void
FlowNetwork::scheduleNextCompletion()
{
    const SimTime target =
        heap_.empty() ? kTimeNever : heap_.front()->eta;
    if (target == completionEventAt_)
        return; // already armed for exactly this instant
    completionEvent_.cancel();
    completionEventAt_ = target;
    if (target == kTimeNever)
        return;
    completionEvent_ =
        sim_.schedule(target, [this] { onCompletionEvent(); });
}

void
FlowNetwork::onCompletionEvent()
{
    completionEventAt_ = kTimeNever;
    const SimTime now = sim_.now();
    seedScratch_.clear();
    while (!heap_.empty()) {
        Flow *f = heap_.front();
        if (f->eta > now)
            break;
        const SimTime end = integrateFlow(*f, now, f->rate);
        if (f->remaining <= kByteEps) {
            for (ResourceId r : f->path)
                seedScratch_.push_back(r);
            completeFlow(*f, end);
            continue;
        }
        // Predicted completion passed but bytes remain (FP dust).
        // Re-key; if the prediction cannot advance past `now`, the
        // residue is sub-ulp — force completion to avoid a livelock.
        const SimTime eta = now + f->remaining / f->rate;
        if (eta <= now) {
            for (ResourceId r : f->path)
                seedScratch_.push_back(r);
            completeFlow(*f, now);
            continue;
        }
        f->eta = eta;
        heapSiftDown(0);
    }
    resolve(seedScratch_);
}

void
FlowNetwork::dispatchPending()
{
    // Staged completion callbacks may start new flows, which
    // re-enters resolve() — the dispatching_ flag prevents a
    // recursive drain.
    if (dispatching_)
        return;
    dispatching_ = true;
    while (!pendingCallbacks_.empty()) {
        auto batch = std::move(pendingCallbacks_);
        pendingCallbacks_.clear();
        for (auto &cb : batch)
            cb();
    }
    dispatching_ = false;
}

void
FlowNetwork::heapSiftUp(std::size_t i)
{
    Flow *f = heap_[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        Flow *p = heap_[parent];
        if (!heapLess(f, p))
            break;
        heap_[i] = p;
        p->heapPos = static_cast<int32_t>(i);
        i = parent;
    }
    heap_[i] = f;
    f->heapPos = static_cast<int32_t>(i);
}

void
FlowNetwork::heapSiftDown(std::size_t i)
{
    Flow *f = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
        std::size_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && heapLess(heap_[child + 1], heap_[child]))
            ++child;
        if (!heapLess(heap_[child], f))
            break;
        heap_[i] = heap_[child];
        heap_[i]->heapPos = static_cast<int32_t>(i);
        i = child;
    }
    heap_[i] = f;
    f->heapPos = static_cast<int32_t>(i);
}

void
FlowNetwork::heapUpdate(Flow *flow)
{
    if (flow->heapPos < 0) {
        flow->heapPos = static_cast<int32_t>(heap_.size());
        heap_.push_back(flow);
        heapSiftUp(static_cast<std::size_t>(flow->heapPos));
        return;
    }
    heapSiftUp(static_cast<std::size_t>(flow->heapPos));
    heapSiftDown(static_cast<std::size_t>(flow->heapPos));
}

void
FlowNetwork::heapRemove(Flow *flow)
{
    if (flow->heapPos < 0)
        return;
    const std::size_t i = static_cast<std::size_t>(flow->heapPos);
    flow->heapPos = -1;
    Flow *last = heap_.back();
    heap_.pop_back();
    if (last == flow)
        return; // it was the final leaf
    heap_[i] = last;
    last->heapPos = static_cast<int32_t>(i);
    heapSiftUp(i);
    heapSiftDown(i);
}

} // namespace sim
} // namespace chameleon
