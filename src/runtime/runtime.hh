/**
 * @file
 * Runtime: one experiment's complete wiring — simulator, cluster,
 * stripes, foreground driver, bandwidth monitor, executor, repair
 * session/scheduler, fault injector, and (optionally) an isolated
 * telemetry context — owned by a single object with zero mutable
 * process-global state per run.
 *
 * A Runtime is single-use: construct it with an algorithm + config
 * (or a ScenarioSpec), call run() once, read the result. Components
 * are built in dependency order when run() starts and torn down in
 * reverse order before it returns, so a Runtime that has finished
 * holds no live simulation state.
 *
 * Telemetry isolation: with `isolateTelemetry` set (the SweepRunner
 * default), run() installs a per-run tracer + metrics registry as the
 * calling thread's telemetry context, so concurrent runs never
 * interleave events or counters; the captured RunTelemetry stays
 * readable after run() for ordered publication via
 * telemetry::mergeIntoProcess(). Without it (the legacy
 * runExperiment()/chameleon-sim path), instrumentation lands in the
 * process-wide tracer and registry exactly as before.
 */

#ifndef CHAMELEON_RUNTIME_RUNTIME_HH_
#define CHAMELEON_RUNTIME_RUNTIME_HH_

#include <memory>

#include "runtime/experiment.hh"
#include "runtime/scenario.hh"
#include "telemetry/telemetry.hh"

namespace chameleon {
namespace runtime {

/** Behavior switches orthogonal to the experiment itself. */
struct RuntimeOptions
{
    /**
     * Record this run's events and metrics in a private RunTelemetry
     * instead of the process-wide tracer/registry. Required when
     * runs execute concurrently; off for the single-run CLI path so
     * its telemetry behavior is unchanged.
     */
    bool isolateTelemetry = false;
};

/** One experiment's wiring; see file comment. */
class Runtime
{
  public:
    Runtime(Algorithm algorithm, ExperimentConfig config,
            RuntimeOptions options = {});

    /** Materializes `scenario` (panics on an unresolvable spec —
     * fromJson() already validated anything user-provided). */
    explicit Runtime(const ScenarioSpec &scenario,
                     RuntimeOptions options = {});

    ~Runtime();
    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    /** Executes the experiment. Call exactly once. */
    ExperimentResult run(const ExperimentHooks &hooks = {});

    Algorithm algorithm() const { return algorithm_; }
    const ExperimentConfig &config() const { return config_; }

    /**
     * The run's captured telemetry; null unless isolateTelemetry was
     * set. Valid until the Runtime is destroyed — merge it into the
     * process context (telemetry::mergeIntoProcess) before then.
     */
    telemetry::RunTelemetry *runTelemetry() { return telem_.get(); }

  private:
    Algorithm algorithm_;
    ExperimentConfig config_;
    RuntimeOptions options_;
    std::unique_ptr<telemetry::RunTelemetry> telem_;
    bool ran_ = false;
};

} // namespace runtime
} // namespace chameleon

#endif // CHAMELEON_RUNTIME_RUNTIME_HH_
