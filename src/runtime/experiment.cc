#include "runtime/experiment.hh"

#include "ec/factory.hh"
#include "runtime/runtime.hh"
#include "util/logging.hh"

namespace chameleon {
namespace runtime {

ExperimentConfig::ExperimentConfig()
{
    code = ec::makeRs(10, 4);
    // The paper's m5.xlarge instances are rated "up to 10 Gb/s" but
    // sustain far less; the cluster-wide transfer rates the paper
    // reports (~0.7 Gb/s per node during repair) imply an effective
    // sustained rate of a few Gb/s. We default to 2.5 Gb/s, which
    // reproduces the paper's absolute repair-throughput range;
    // Exp#7/Exp#13 sweep this value explicitly.
    cluster.uplinkBw = 2.5 * units::Gbps;
    cluster.downlinkBw = 2.5 * units::Gbps;
}

std::string
algorithmName(Algorithm algorithm)
{
    switch (algorithm) {
      case Algorithm::kNone:
        return "None";
      case Algorithm::kCr:
        return "CR";
      case Algorithm::kPpr:
        return "PPR";
      case Algorithm::kEcpipe:
        return "ECPipe";
      case Algorithm::kRbCr:
        return "RB+CR";
      case Algorithm::kRbPpr:
        return "RB+PPR";
      case Algorithm::kRbEcpipe:
        return "RB+ECPipe";
      case Algorithm::kEtrp:
        return "ETRP";
      case Algorithm::kChameleon:
        return "ChameleonEC";
      case Algorithm::kChameleonIo:
        return "ChameleonEC-IO";
    }
    CHAMELEON_PANIC("unknown algorithm");
}

std::string
algorithmKey(Algorithm algorithm)
{
    switch (algorithm) {
      case Algorithm::kNone:
        return "none";
      case Algorithm::kCr:
        return "cr";
      case Algorithm::kPpr:
        return "ppr";
      case Algorithm::kEcpipe:
        return "ecpipe";
      case Algorithm::kRbCr:
        return "rb-cr";
      case Algorithm::kRbPpr:
        return "rb-ppr";
      case Algorithm::kRbEcpipe:
        return "rb-ecpipe";
      case Algorithm::kEtrp:
        return "etrp";
      case Algorithm::kChameleon:
        return "chameleon";
      case Algorithm::kChameleonIo:
        return "chameleon-io";
    }
    CHAMELEON_PANIC("unknown algorithm");
}

std::optional<Algorithm>
algorithmFromKey(const std::string &key)
{
    static constexpr Algorithm kAll[] = {
        Algorithm::kNone,     Algorithm::kCr,
        Algorithm::kPpr,      Algorithm::kEcpipe,
        Algorithm::kRbCr,     Algorithm::kRbPpr,
        Algorithm::kRbEcpipe, Algorithm::kEtrp,
        Algorithm::kChameleon, Algorithm::kChameleonIo,
    };
    for (Algorithm a : kAll)
        if (algorithmKey(a) == key)
            return a;
    return std::nullopt;
}

ExperimentResult
runExperiment(Algorithm algorithm, const ExperimentConfig &config,
              const ExperimentHooks &hooks)
{
    Runtime rt(algorithm, config);
    return rt.run(hooks);
}

} // namespace runtime
} // namespace chameleon
