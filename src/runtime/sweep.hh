/**
 * @file
 * SweepRunner: executes a declarative table of experiment cells on a
 * thread pool with deterministic seeding and ordered emission.
 *
 * Every figure in the paper is a sweep of independent (algorithm,
 * config) cells; SweepRunner is the one place that turns such a
 * table into results. Determinism contract: `--jobs 1` and
 * `--jobs N` produce byte-identical output, because
 *
 *   - each cell's seed is derived from (base seed, seed index) by
 *     splitmix64, never from scheduling order;
 *   - each cell runs in an isolated Runtime (private telemetry, no
 *     shared mutable state);
 *   - results are emitted on the caller's thread in cell order, and
 *     per-run telemetry is merged into the process context in that
 *     same order, regardless of completion order.
 *
 * Cells that must share a workload (e.g. every algorithm of one
 * comparison group repairing under the same trace) share a
 * `seedIndex`, so adding algorithms to a group never changes the
 * workload any of them sees.
 */

#ifndef CHAMELEON_RUNTIME_SWEEP_HH_
#define CHAMELEON_RUNTIME_SWEEP_HH_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runtime/experiment.hh"

namespace chameleon {
namespace runtime {

/**
 * splitmix64 of (base, index): the per-cell seed derivation rule.
 * Documented in DESIGN.md §5e; changing it invalidates recorded
 * sweep tables.
 */
uint64_t deriveSeed(uint64_t base, uint64_t index);

/** One row of a sweep table. */
struct SweepCell
{
    /** Row label for printing / --list. */
    std::string label;
    Algorithm algorithm = Algorithm::kChameleon;
    ExperimentConfig config;
    /** Per-cell hooks; must not share mutable state across cells. */
    ExperimentHooks hooks;
    /**
     * Cells with equal seedIndex receive the same derived seed (same
     * workload, different algorithm); -1 uses the cell's position.
     */
    int seedIndex = -1;
    /**
     * False pins config.seed as-is even when a base seed is set —
     * smoke cells use this to keep historical fixed-seed results.
     */
    bool deriveSeed = true;
};

/** Runner knobs, normally filled from --jobs/--seed. */
struct SweepOptions
{
    /** Worker threads; <= 0 selects the hardware concurrency. */
    int jobs = 1;
    /** Base seed for derivation; 0 keeps each cell's config.seed. */
    uint64_t baseSeed = 0;
    /**
     * Publish each run's telemetry into the process-wide context in
     * cell order (so --trace-out etc. capture the whole sweep, laid
     * out as if the cells had run sequentially).
     */
    bool mergeTelemetry = true;
};

/** The executor; see file comment. */
class SweepRunner
{
  public:
    /** Called on the caller's thread, in cell order. */
    using Emit = std::function<void(std::size_t index,
                                    const SweepCell &cell,
                                    const ExperimentResult &result)>;

    explicit SweepRunner(SweepOptions options = {});

    /**
     * Runs every cell and returns results in cell order. `emit`
     * fires per cell, in order, as soon as that cell and all its
     * predecessors finish — printing interleaves with execution.
     */
    std::vector<ExperimentResult>
    run(const std::vector<SweepCell> &cells, const Emit &emit = {});

    /** The resolved worker count. */
    int jobs() const { return jobs_; }

  private:
    SweepOptions options_;
    int jobs_;
};

} // namespace runtime
} // namespace chameleon

#endif // CHAMELEON_RUNTIME_SWEEP_HH_
