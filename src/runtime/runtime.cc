#include "runtime/runtime.hh"

#include <algorithm>

#include "cluster/repair_queue.hh"
#include "cluster/replicator_scanner.hh"
#include "cluster/scrub_scanner.hh"
#include "ec/factory.hh"
#include "repair/monitor.hh"
#include "repair/strategies.hh"
#include "telemetry/telemetry.hh"
#include "traffic/foreground_driver.hh"
#include "traffic/hedged_read.hh"
#include "util/logging.hh"

namespace chameleon {
namespace runtime {

namespace {

bool
isChameleonFamily(Algorithm a)
{
    return a == Algorithm::kEtrp || a == Algorithm::kChameleon ||
           a == Algorithm::kChameleonIo;
}

repair::Topology
topologyOf(Algorithm a)
{
    switch (a) {
      case Algorithm::kCr:
      case Algorithm::kRbCr:
        return repair::Topology::kStar;
      case Algorithm::kPpr:
      case Algorithm::kRbPpr:
        return repair::Topology::kTree;
      case Algorithm::kEcpipe:
      case Algorithm::kRbEcpipe:
        return repair::Topology::kChain;
      default:
        CHAMELEON_PANIC("no topology for ", algorithmName(a));
    }
}

bool
isRepairBoost(Algorithm a)
{
    return a == Algorithm::kRbCr || a == Algorithm::kRbPpr ||
           a == Algorithm::kRbEcpipe;
}

} // namespace

Runtime::Runtime(Algorithm algorithm, ExperimentConfig config,
                 RuntimeOptions options)
    : algorithm_(algorithm), config_(std::move(config)),
      options_(options)
{
    if (options_.isolateTelemetry)
        telem_ = std::make_unique<telemetry::RunTelemetry>();
}

Runtime::Runtime(const ScenarioSpec &scenario, RuntimeOptions options)
    : Runtime(scenario.algorithm, scenario.toConfig(), options)
{
}

Runtime::~Runtime() = default;

ExperimentResult
Runtime::run(const ExperimentHooks &hooks)
{
    CHAMELEON_ASSERT(!ran_, "Runtime is single-use");
    ran_ = true;
    CHAMELEON_ASSERT(config_.code != nullptr, "config lacks a code");
    CHAMELEON_ASSERT(config_.failedNodes >= 1 &&
                     config_.failedNodes <= config_.cluster.numNodes,
                     "bad failed node count");

    const Algorithm algorithm = algorithm_;
    const ExperimentConfig &config = config_;

    // Isolated runs record into their private context; otherwise
    // instrumentation lands in the process-wide tracer/registry
    // exactly as the sequential harness always did.
    std::optional<telemetry::ScopedTelemetry> scope;
    if (telem_)
        scope.emplace(*telem_);

    // Each experiment is its own process row in the exported trace;
    // sim time restarts at 0 per run, so runs must not share a pid.
    CHAMELEON_TELEM(
        telemetry::tracer().beginRun(algorithmName(algorithm)));

    Rng rng(config.seed);
    sim::Simulator sim;
    cluster::Cluster cluster(sim, config.cluster);
    cluster::StripeManager stripes(config.code,
                                   config.cluster.numNodes);

    // Create stripes: either an exact count (scale runs) or, by
    // default, until node 0 hosts exactly chunksToRepair chunks
    // (placement is random, so add one stripe at a time). Both
    // branches draw from the same split stream, so `stripes = 0`
    // stays bit-identical to the pre-knob behavior.
    {
        Rng placement_rng = rng.split();
        if (config.stripes > 0) {
            stripes.createStripes(config.stripes, placement_rng);
        } else {
            int guard = 0;
            while (static_cast<int>(stripes.chunksOnNode(0).size()) <
                   config.chunksToRepair) {
                stripes.createStripes(1, placement_rng);
                CHAMELEON_ASSERT(++guard < 1000000,
                                 "placement runaway");
            }
        }
    }

    // Scanner-path runs route failure discovery through the
    // background replicator scanner and its prioritized queue
    // instead of handing the repair layer an eager work list.
    const bool scan_mode =
        config.scanner.enabled && algorithm != Algorithm::kNone;
    std::unique_ptr<cluster::RepairQueue> queue;
    std::unique_ptr<cluster::ReplicatorScanner> scanner;
    if (scan_mode) {
        queue = std::make_unique<cluster::RepairQueue>(
            stripes, config.scanner.queue);
        scanner = std::make_unique<cluster::ReplicatorScanner>(
            stripes, *queue, sim, config.scanner);
    }

    std::unique_ptr<traffic::ForegroundDriver> driver;
    if (config.trace) {
        driver = std::make_unique<traffic::ForegroundDriver>(
            cluster, *config.trace, rng.split(),
            config.requestsPerClient);
        driver->start();
    }

    auto dimension = algorithm == Algorithm::kChameleonIo
                         ? repair::BandwidthMonitor::Dimension::kStorage
                         : repair::BandwidthMonitor::Dimension::kNetwork;
    repair::BandwidthMonitor monitor(cluster, 5.0, dimension);
    monitor.start();

    repair::RepairExecutor executor(cluster, config.exec);

    // Warm the cluster up so the monitor has real estimates.
    sim.run(config.warmup);

    // Inject the failure(s). The scanner path defers chunk-loss
    // discovery: the crash itself is O(1) and the background sweep
    // finds the losses in bounded batches.
    std::vector<cluster::FailedChunk> pending;
    for (NodeId n = 0; n < config.failedNodes; ++n) {
        if (scan_mode) {
            stripes.failNodeDeferred(n);
        } else {
            auto lost = stripes.failNode(n);
            pending.insert(pending.end(), lost.begin(), lost.end());
        }
        cluster.markNodeDown(n);
        if (driver)
            driver->excludeNode(n);
    }
    const std::size_t lat_start =
        driver ? driver->latencies().count() : 0;
    const SimTime repair_start = sim.now();

    // Snapshot per-link byte counters for the load analysis.
    auto &net = cluster.network();
    net.sync();
    const int nodes = config.cluster.numNodes;
    std::vector<Bytes> up_fg0(nodes), up_rp0(nodes), down_fg0(nodes),
        down_rp0(nodes);
    for (NodeId n = 0; n < nodes; ++n) {
        up_fg0[n] = net.taggedBytes(cluster.uplink(n),
                                    sim::FlowTag::kForeground);
        up_rp0[n] = net.taggedBytes(cluster.uplink(n),
                                    sim::FlowTag::kRepair);
        down_fg0[n] = net.taggedBytes(cluster.downlink(n),
                                      sim::FlowTag::kForeground);
        down_rp0[n] = net.taggedBytes(cluster.downlink(n),
                                      sim::FlowTag::kRepair);
    }

    // Schedule straggler throttles relative to the failure time.
    for (auto ev : config.stragglers) {
        if (ev.node == kInvalidNode) {
            CHAMELEON_ASSERT(!scan_mode,
                             "scanner path has no eager work list to "
                             "auto-pick a straggler from; set an "
                             "explicit straggler node");
            CHAMELEON_ASSERT(!pending.empty(), "no repair to straggle");
            auto avail = stripes.availableChunks(pending[0].stripe);
            CHAMELEON_ASSERT(!avail.empty(), "stripe has no survivors");
            ev.node = stripes.location(pending[0].stripe, avail[0]);
        }
        sim.schedule(repair_start + ev.at, [&net, &cluster, ev] {
            if (ev.uplink) {
                auto id = cluster.uplink(ev.node);
                net.setCapacity(id, net.capacity(id) * ev.factor);
            }
            if (ev.downlink) {
                auto id = cluster.downlink(ev.node);
                net.setCapacity(id, net.capacity(id) * ev.factor);
            }
        });
        sim.schedule(repair_start + ev.at + ev.duration,
                     [&net, &cluster, ev] {
                         if (ev.uplink) {
                             auto id = cluster.uplink(ev.node);
                             net.setCapacity(id, net.capacity(id) /
                                                     ev.factor);
                         }
                         if (ev.downlink) {
                             auto id = cluster.downlink(ev.node);
                             net.setCapacity(id, net.capacity(id) /
                                                     ev.factor);
                         }
                     });
    }

    // Integrity scrubbing: the scanner is built before the repair
    // layer so the outcome hooks below can chain into it; detection
    // routing is installed after the repair layer exists.
    std::unique_ptr<cluster::ScrubScanner> scrub;
    if (config.scrub.enabled && algorithm != Algorithm::kNone)
        scrub = std::make_unique<cluster::ScrubScanner>(
            cluster, stripes, config.exec.chunkSize, config.scrub);

    // Launch the repair machinery.
    std::unique_ptr<repair::RepairSession> session;
    std::unique_ptr<repair::ChameleonScheduler> scheduler;
    std::unique_ptr<repair::RepairBoostSelector> rb;
    std::unique_ptr<traffic::HedgedReadManager> hedged;
    if (algorithm == Algorithm::kNone) {
        // trace-only run
    } else if (config.degraded.enabled) {
        CHAMELEON_ASSERT(!isChameleonFamily(algorithm),
                         "degraded.enabled does not apply to ",
                         algorithmName(algorithm),
                         ": the Chameleon dispatcher owns its plans");
        CHAMELEON_ASSERT(!scan_mode, "degraded reads are driven by an "
                                     "eager work list, not the "
                                     "scanner path");
        CHAMELEON_ASSERT(!config.scrub.enabled,
                         "degraded reads do not route scrub repairs");
        CHAMELEON_ASSERT(
            config.topology.kind == dag::RepairTopology::kAuto,
            "degraded reads are direct star reconstructions; no "
            "topology override applies");
        // Consume the plan-rng split the session branch would have,
        // so the fault injector's stream stays aligned with a
        // same-seed session run.
        (void)rng.split();
        hedged = std::make_unique<traffic::HedgedReadManager>(
            stripes, executor, monitor, config.degraded);
        hedged->start(pending);
    } else if (isChameleonFamily(algorithm)) {
        CHAMELEON_ASSERT(
            config.topology.kind == dag::RepairTopology::kAuto,
            "topology override does not apply to ",
            algorithmName(algorithm),
            ": the Chameleon dispatcher owns its tree shapes");
        repair::ChameleonConfig ccfg = config.chameleon;
        if (algorithm == Algorithm::kEtrp) {
            ccfg.enableReordering = false;
            ccfg.enableRetuning = false;
        }
        scheduler = std::make_unique<repair::ChameleonScheduler>(
            stripes, executor, monitor, ccfg, rng.split());
        if (scan_mode) {
            scheduler->beginFeed();
            scanner->setDispatch(
                [sch = scheduler.get()](
                    std::vector<cluster::FailedChunk> chunks) {
                    sch->enqueue(chunks);
                });
            scheduler->setOutcomeHook(
                [sc = scanner.get(), sb = scrub.get()](
                    const cluster::FailedChunk &fc, bool ok) {
                    sc->onChunkOutcome(fc, ok);
                    if (sb)
                        sb->noteOutcome(fc, ok);
                });
            // One synchronous sweep at the exact point the direct
            // path would hand over its work list keeps small-scale
            // scanner runs byte-identical to direct runs.
            scanner->primeSync();
            scanner->start();
        } else {
            scheduler->start(pending);
        }
    } else {
        repair::Topology topo = topologyOf(algorithm);
        Rng plan_rng = rng.split();
        repair::RepairSession::PlanFn plan_fn;
        if (isRepairBoost(algorithm)) {
            rb = std::make_unique<repair::RepairBoostSelector>(nodes);
            plan_fn = [&stripes, topo, plan_rng, &rb](
                          const cluster::FailedChunk &fc,
                          const std::vector<NodeId> &reserved) mutable {
                return rb->makePlan(stripes, fc, topo, reserved,
                                    plan_rng);
            };
        } else {
            plan_fn = [&stripes, topo, plan_rng](
                          const cluster::FailedChunk &fc,
                          const std::vector<NodeId> &reserved) mutable {
                return repair::makeBaselinePlan(stripes, fc, topo,
                                                reserved, plan_rng);
            };
        }
        session = std::make_unique<repair::RepairSession>(
            stripes, executor, std::move(plan_fn), config.session);
        if (config.topology.kind != dag::RepairTopology::kAuto)
            session->setDagTopology(config.topology);
        if (scan_mode) {
            session->beginFeed();
            scanner->setDispatch(
                [se = session.get()](
                    std::vector<cluster::FailedChunk> chunks) {
                    se->enqueue(chunks);
                });
            session->setOutcomeHook(
                [sc = scanner.get(), sb = scrub.get()](
                    const cluster::FailedChunk &fc, bool ok) {
                    sc->onChunkOutcome(fc, ok);
                    if (sb)
                        sb->noteOutcome(fc, ok);
                });
            scanner->primeSync();
            scanner->start();
        } else {
            session->start(pending);
        }
    }

    if (scrub) {
        // Direct-path runs have no scanner outcome hook to chain
        // behind; install the scrub bookkeeping as the sole hook.
        if (!scan_mode) {
            auto outcome = [sb = scrub.get()](
                               const cluster::FailedChunk &fc,
                               bool ok) { sb->noteOutcome(fc, ok); };
            if (scheduler)
                scheduler->setOutcomeHook(outcome);
            else if (session)
                session->setOutcomeHook(outcome);
        }
        // Detected corruptions enter repair through the same door as
        // discovered losses: the prioritized queue on the scanner
        // path, the live feed otherwise. Deferred — detection can
        // fire from the executor's verify hooks inside flow
        // dispatch, where launching repairs must not re-enter.
        scrub->setOnDetected([&sim, &queue, &scanner, &scheduler,
                              &session, scan_mode](
                                 cluster::FailedChunk fc,
                                 cluster::RepairTier tier) {
            sim.scheduleAfter(0.0, [&, fc, tier] {
                if (scan_mode) {
                    queue->push(fc, tier);
                    scanner->pumpAdmission();
                } else if (scheduler) {
                    scheduler->enqueue({fc});
                } else if (session) {
                    session->enqueue({fc});
                }
            });
        });
        // Executor integrity hooks. The simulator carries no real
        // payloads, so "run the checksum kernel" consults the
        // injector's ground-truth corrupt bit — exactly what a
        // checksum mismatch would report (see ec/checksum.hh for the
        // kernel itself; the integrity tests exercise it on bytes).
        repair::RepairExecutor::IntegrityHooks ih;
        if (config.scrub.verifyReads) {
            ih.verifySource = [&stripes, sb = scrub.get()](
                                  StripeId s, ChunkIndex c,
                                  NodeId) {
                if (!stripes.chunkCorrupt(s, c))
                    return true;
                sb->detect({s, c},
                           cluster::DetectSource::kVerifyRead);
                return false;
            };
        }
        ih.verifyDecoded =
            [&stripes, &sim, sb = scrub.get(),
             verify = config.scrub.verifyDecode](
                const repair::ChunkRepairPlan &plan) -> NodeId {
            for (const auto &src : plan.sources) {
                if (!stripes.chunkCorrupt(plan.stripe, src.chunk))
                    continue;
                if (verify) {
                    sb->detect({plan.stripe, src.chunk},
                               cluster::DetectSource::kVerifyDecode);
                    return src.node;
                }
                // Verification off: the corrupt helper's garbage is
                // folded into the reconstruction. Re-mark after the
                // session's markRepaired clears the bit, so the
                // propagated corruption stays scrubbable.
                telemetry::metrics()
                    .counter("integrity.corruptions_propagated")
                    .add();
                sim.scheduleAfter(0.0, [&stripes, plan] {
                    if (!stripes.chunkLost(plan.stripe,
                                           plan.failedChunk))
                        stripes.markCorrupt(plan.stripe,
                                            plan.failedChunk);
                });
                return kInvalidNode;
            }
            return kInvalidNode;
        };
        executor.setIntegrityHooks(std::move(ih));
        scrub->start();
    }

    // Arm mid-repair faults (explicit schedule + generated chaos)
    // once the repair layer is live, so crash hooks have somewhere
    // to deliver the newly lost chunks.
    std::unique_ptr<fault::FaultInjector> injector;
    {
        fault::FaultSchedule schedule = config.faults;
        if (config.chaosRate > 0 || config.bitrotRate > 0) {
            auto chaos = fault::ChaosConfig::fromRate(
                config.chaosRate, config.chaosHorizon);
            chaos.bitrotRate = config.bitrotRate;
            uint64_t chaos_seed = config.chaosSeed != 0
                                      ? config.chaosSeed
                                      : config.seed ^ 0x9e3779b97f4a7c15ull;
            auto generated = fault::generateChaos(chaos, nodes,
                                                  chaos_seed);
            schedule.events.insert(schedule.events.end(),
                                   generated.events.begin(),
                                   generated.events.end());
            std::stable_sort(schedule.events.begin(),
                             schedule.events.end(),
                             [](const fault::FaultEvent &a,
                                const fault::FaultEvent &b) {
                                 return a.at < b.at;
                             });
        }
        if (!schedule.empty()) {
            fault::InjectorHooks fault_hooks;
            fault_hooks.onCrash =
                [&](NodeId node,
                    const std::vector<cluster::FailedChunk> &lost) {
                    if (driver)
                        driver->excludeNode(node);
                    if (scheduler)
                        scheduler->onNodeCrash(node, lost);
                    else if (hedged)
                        hedged->onNodeCrash(node, lost);
                    else if (session)
                        session->onNodeCrash(node, lost);
                    if (scanner)
                        scanner->noteCrash(node);
                };
            fault_hooks.onRejoin = [&](NodeId node) {
                if (driver)
                    driver->includeNode(node);
                if (scanner)
                    scanner->noteRejoin(node);
            };
            fault_hooks.onBlackoutStart = [&] { monitor.stop(); };
            fault_hooks.onBlackoutEnd = [&] { monitor.start(); };
            // Start the detection-latency clock. Without a scrub
            // scanner the corruption simply stays silent — that is
            // the point of the no-scrub baseline.
            fault_hooks.onBitRot = [&](cluster::FailedChunk fc,
                                       NodeId) {
                if (scrub)
                    scrub->noteCorruption(fc);
            };
            injector = std::make_unique<fault::FaultInjector>(
                cluster, stripes, std::move(fault_hooks));
            if (scan_mode)
                injector->setDeferredDiscovery(true);
            injector->arm(schedule, rng.split());
        }
    }

    auto repair_done = [&] {
        if (algorithm == Algorithm::kNone)
            return true;
        const bool done = scheduler ? scheduler->finished()
                          : hedged  ? hedged->finished()
                                    : session->finished();
        // With scrubbing on, the repair layer idling is not enough
        // either: every injected corruption must have been surfaced
        // and re-repaired (bounded by one scrub epoch), or claimed
        // by a real loss first.
        if (scrub && !scrub->quiescent())
            return false;
        if (!scan_mode)
            return done;
        // Scanner path: the repair layer idling is not enough — the
        // scanner must have swept past every crash (no undiscovered
        // losses) and the queue must have drained.
        return done && scanner->discoveryComplete() && queue->idle();
    };
    auto trace_done = [&] {
        if (!driver || config.requestsPerClient == 0)
            return true;
        return driver->finished();
    };

    ExperimentResult result;
    result.algorithm = algorithm;
    SimTime repair_finish = repair_start;
    std::size_t lat_end = lat_start;
    bool repair_seen_done = (algorithm == Algorithm::kNone);
    auto uplink_repair_bytes = [&] {
        net.sync();
        Bytes acc = 0;
        for (NodeId n = 0; n < nodes; ++n)
            acc += net.taggedBytes(cluster.uplink(n),
                                   sim::FlowTag::kRepair);
        return acc;
    };
    Bytes traffic_before = uplink_repair_bytes();
    while ((!repair_done() || !trace_done()) &&
           sim.now() < config.simTimeCap) {
        Bytes before = executor.repairedBytes();
        sim.run(sim.now() + result.timelinePeriod);
        result.throughputTimeline.push_back(
            (executor.repairedBytes() - before) /
            result.timelinePeriod);
        Bytes traffic_now = uplink_repair_bytes();
        result.trafficTimeline.push_back(
            (traffic_now - traffic_before) / result.timelinePeriod);
        traffic_before = traffic_now;
        if (!repair_seen_done && repair_done()) {
            repair_seen_done = true;
            repair_finish = scheduler ? scheduler->finishTime()
                            : hedged  ? hedged->finishTime()
                                      : session->finishTime();
            lat_end = driver ? driver->latencies().count() : 0;
        }
        if (hooks.onSample)
            hooks.onSample(sim.now(), driver.get());
    }
    if (!repair_done()) {
        CHAMELEON_WARN("experiment hit the simulated-time cap (",
                       algorithmName(algorithm), ")");
    }
    if (algorithm != Algorithm::kNone && repair_done() &&
        !repair_seen_done) {
        repair_finish = scheduler ? scheduler->finishTime()
                        : hedged  ? hedged->finishTime()
                                  : session->finishTime();
        lat_end = driver ? driver->latencies().count() : 0;
    }

    // Capture end-of-window byte counters before draining.
    net.sync();
    std::vector<Bytes> up_fg1(nodes), up_rp1(nodes), down_fg1(nodes),
        down_rp1(nodes);
    for (NodeId n = 0; n < nodes; ++n) {
        up_fg1[n] = net.taggedBytes(cluster.uplink(n),
                                    sim::FlowTag::kForeground);
        up_rp1[n] = net.taggedBytes(cluster.uplink(n),
                                    sim::FlowTag::kRepair);
        down_fg1[n] = net.taggedBytes(cluster.downlink(n),
                                      sim::FlowTag::kForeground);
        down_rp1[n] = net.taggedBytes(cluster.downlink(n),
                                      sim::FlowTag::kRepair);
    }

    // Wind everything down. Disarming first keeps not-yet-fired
    // faults out of the drain window.
    if (injector)
        injector->disarm();
    if (scrub)
        scrub->stop();
    if (scanner)
        scanner->stop();
    if (driver)
        driver->stop();
    monitor.stop();
    sim.run(sim.now() + 200.0);

    // ---- Metrics.
    if (algorithm != Algorithm::kNone && repair_done()) {
        result.chunksRepaired = scheduler
                                    ? scheduler->chunksRepaired()
                                : hedged ? hedged->chunksRepaired()
                                         : session->chunksRepaired();
        result.chunksUnrecoverable =
            scheduler ? scheduler->chunksUnrecoverable()
            : hedged  ? hedged->chunksUnrecoverable()
                      : session->chunksUnrecoverable();
        result.crashReplans = scheduler ? scheduler->crashReplans()
                              : hedged  ? hedged->crashReplans()
                                        : session->crashReplans();
        result.repairTime = repair_finish - repair_start;
        if (result.chunksRepaired > 0) {
            CHAMELEON_ASSERT(result.repairTime > 0,
                             "empty repair window");
            result.repairThroughput =
                static_cast<double>(result.chunksRepaired) *
                config.exec.chunkSize / result.repairTime;
        }
        if (scheduler) {
            result.phases = scheduler->phasesRun();
            result.retunes = scheduler->retunes();
            result.reorders = scheduler->reorders();
        }
        if (hedged) {
            result.hedgesIssued = hedged->hedgesIssued();
            result.hedgeWins = hedged->hedgeWins();
            result.degradedLatency = hedged->latencies().summary();
        }
    }
    if (injector)
        result.faultsInjected = injector->faultsInjected();
    if (scrub) {
        result.corruptionsInjected =
            static_cast<int>(scrub->corruptionsSeen());
        result.corruptionsDetected =
            static_cast<int>(scrub->corruptionsDetected());
        result.corruptionsRepaired =
            static_cast<int>(scrub->corruptionsRepaired());
        result.scrubEpochs = static_cast<int>(scrub->epoch());
        result.scrubBytes = scrub->scrubBytes();
        result.meanDetectionLatency = scrub->meanDetectionLatency();
        result.maxDetectionLatency = scrub->maxDetectionLatency();
    }
    if (driver) {
        const auto &lat = driver->latencies();
        // Latency over the repair window (or the whole loaded run
        // for trace-only cells).
        std::size_t from = lat_start;
        if (algorithm == Algorithm::kNone)
            from = 0;
        (void)lat_end;
        result.latency = lat.summaryFrom(from);
        result.p99LatencyMs = result.latency.p99 * 1e3;
        result.meanLatencyMs = result.latency.mean * 1e3;
        if (config.requestsPerClient != 0 && driver->finished())
            result.traceTime = driver->completionTime();
    }
    const SimTime window_end =
        (algorithm != Algorithm::kNone && repair_done())
            ? repair_finish
            : sim.now();
    const SimTime span = std::max(window_end - repair_start, 1e-9);
    for (NodeId n = 0; n < nodes; ++n) {
        LinkLoad up;
        up.node = n;
        up.foregroundMean = (up_fg1[n] - up_fg0[n]) / span;
        up.repairMean = (up_rp1[n] - up_rp0[n]) / span;
        up.foregroundFluctuation =
            net.usage(cluster.uplink(n), sim::FlowTag::kForeground)
                .fluctuationBetween(repair_start, window_end);
        result.uplinks.push_back(up);

        LinkLoad down;
        down.node = n;
        down.foregroundMean = (down_fg1[n] - down_fg0[n]) / span;
        down.repairMean = (down_rp1[n] - down_rp0[n]) / span;
        down.foregroundFluctuation =
            net.usage(cluster.downlink(n), sim::FlowTag::kForeground)
                .fluctuationBetween(repair_start, window_end);
        result.downlinks.push_back(down);
    }
    // Simulator-core load of the run, alongside the solver counters
    // (sim.rate_recomputes, sim.rate_recompute_flow_visits,
    // sim.solver.dirty_resource_visits) the FlowNetwork maintains.
    telemetry::metrics()
        .gauge("sim.events_executed")
        .set(static_cast<double>(sim.eventsExecuted()));
    return result;
}

} // namespace runtime
} // namespace chameleon
