/**
 * @file
 * ScenarioSpec: the pure-data, JSON-round-trippable form of one
 * experiment cell — algorithm, erasure code, cluster shape, trace,
 * scheduler tuning, and the fault/straggler schedules — with nothing
 * that cannot be serialized (the erasure code and foreground trace
 * are stored as spec strings / profile names and materialized by
 * toConfig()).
 *
 * fromJson() rejects malformed input with a diagnostic instead of
 * panicking, so scenario files are safe to feed from the command
 * line; toJson() round-trips (parse(toJson(s)) == s) with full
 * double precision. Fault schedules use src/fault's spec grammar
 * ("crash@30:node=3:dur=40"); stragglers use the analogous grammar
 * documented at parseStragglers().
 */

#ifndef CHAMELEON_RUNTIME_SCENARIO_HH_
#define CHAMELEON_RUNTIME_SCENARIO_HH_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "runtime/experiment.hh"

namespace chameleon {
namespace runtime {

/** Pure-data experiment cell; see file comment. */
struct ScenarioSpec
{
    /** Optional label, used as the result-row name when set. */
    std::string name;
    Algorithm algorithm = Algorithm::kChameleon;
    /** Erasure code spec, parsed by the ec registry grammar:
     * rs(K,M) | lrc(K,L,M) | lrc(K,L,G,M) | butterfly | rep(N),
     * with "family:args" accepted as a legacy alias. */
    std::string code = "rs:10,4";
    /** Trace profile name: ycsb-a|ibm|memcached|etc|none. */
    std::string trace = "ycsb-a";
    cluster::ClusterConfig cluster;
    repair::ExecutorConfig exec;
    int chunksToRepair = 40;
    /** Exact stripe count (0 = grow until node 0 hosts
     * chunks_to_repair chunks, the legacy behavior). */
    int stripes = 0;
    int failedNodes = 1;
    uint64_t requestsPerClient = 0;
    SimTime warmup = 16.0;
    repair::ChameleonConfig chameleon;
    repair::SessionConfig session;
    /** Execution-topology override ("auto"|"star"|"chain"|"ppr"|
     * "mlf:F"); only meaningful for session algorithms — fromJson
     * rejects non-auto values for the Chameleon family and kNone. */
    dag::TopologySpec topology;
    std::vector<StragglerEvent> stragglers;
    fault::FaultSchedule faults;
    double chaosRate = 0.0;
    uint64_t chaosSeed = 0;
    SimTime chaosHorizon = 120.0;
    /** Silent bit-rot arrival rate (chaos block, "bitrot_rate");
     * independent of the combined chaos rate. */
    double bitrotRate = 0.0;
    /** Background scanner / repair-queue knobs (the "scanner" JSON
     * block); scanner.enabled selects the scanner repair path. */
    cluster::ScannerConfig scanner;
    /** Integrity scrubbing + executor verify knobs (the "scrub"
     * JSON block); scrub.enabled starts the background scrubber. */
    cluster::ScrubConfig scrub;
    /** Hedged degraded-read policy (the "degraded" JSON block);
     * degraded.enabled routes repairs through the hedged-read
     * manager — session algorithms only, rejected for the Chameleon
     * family and kNone, and incompatible with scanner/scrub/topology
     * overrides (fromJson enforces all of it). */
    traffic::HedgedReadConfig degraded;
    uint64_t seed = 1;
    SimTime simTimeCap = 100000.0;

    /** Applies the experiment defaults (2.5 Gb/s sustained links)
     * so a default ScenarioSpec equals a default ExperimentConfig. */
    ScenarioSpec();

    bool operator==(const ScenarioSpec &) const = default;

    /**
     * Parses one scenario object. Unknown keys, bad algorithm/code/
     * trace names, malformed schedules, and out-of-range dimensions
     * are all rejected.
     * @param error receives a description on failure when non-null.
     */
    static std::optional<ScenarioSpec>
    fromJson(const std::string &text, std::string *error = nullptr);

    /** Serializes with enough precision to round-trip exactly.
     * (Seeds above 2^53 lose precision — JSON numbers are doubles.) */
    std::string toJson() const;

    /**
     * Materializes the runnable config: parses the code spec and
     * resolves the trace name. Panics on an unresolvable spec;
     * fromJson() output always materializes.
     */
    ExperimentConfig toConfig() const;
};

/**
 * Parses an erasure-code spec (rs:K,M | lrc:K,L,M | butterfly |
 * rep:N); nullopt + *error on malformed input.
 */
std::optional<std::shared_ptr<const ec::ErasureCode>>
tryParseCode(const std::string &spec, std::string *error = nullptr);

/**
 * Resolves a trace-profile name; "none" or "" yield an engaged
 * result holding nullopt (no foreground traffic).
 * @return false for unknown names (*error set when non-null).
 */
bool tryResolveTrace(const std::string &name,
                     std::optional<traffic::TraceProfile> *out,
                     std::string *error = nullptr);

/**
 * Straggler schedule grammar, mirroring the fault spec grammar
 * (semicolon-separated events):
 *   T[:node=N][:factor=F][:dur=D][:link=up|down|both]
 * where T is seconds after repair start; omitting node auto-picks a
 * node participating in the repair. E.g. "5:factor=0.05:dur=15".
 */
std::optional<std::vector<StragglerEvent>>
tryParseStragglers(const std::string &spec,
                   std::string *error = nullptr);

/** Panicking form of tryParseStragglers for trusted (CLI) input. */
std::vector<StragglerEvent> parseStragglers(const std::string &spec);

/** Round-trips a straggler schedule back to the spec grammar. */
std::string stragglerSpecStr(const std::vector<StragglerEvent> &events);

} // namespace runtime
} // namespace chameleon

#endif // CHAMELEON_RUNTIME_SCENARIO_HH_
