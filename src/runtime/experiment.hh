/**
 * @file
 * The experiment vocabulary: the algorithms the paper compares, the
 * full experiment configuration, and the result record every bench
 * binary reports. The wiring that turns a configuration into a
 * result lives in runtime/runtime.hh (Runtime); declarative sweeps
 * over many (algorithm, config) cells live in runtime/sweep.hh
 * (SweepRunner); the pure-data, JSON-round-trippable form lives in
 * runtime/scenario.hh (ScenarioSpec).
 */

#ifndef CHAMELEON_RUNTIME_EXPERIMENT_HH_
#define CHAMELEON_RUNTIME_EXPERIMENT_HH_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "cluster/replicator_scanner.hh"
#include "cluster/scrub_scanner.hh"
#include "fault/fault.hh"
#include "repair/chameleon_scheduler.hh"
#include "repair/executor.hh"
#include "repair/session.hh"
#include "traffic/foreground_driver.hh"
#include "traffic/hedged_read.hh"
#include "traffic/trace_profile.hh"
#include "util/stats.hh"

namespace chameleon {
namespace runtime {

/** The repair algorithms the paper compares. */
enum class Algorithm {
    kNone,        ///< no repair (trace-only baselines, Exp#2)
    kCr,          ///< conventional repair (star)
    kPpr,         ///< partial-parallel repair (binomial tree)
    kEcpipe,      ///< repair pipelining (chain)
    kRbCr,        ///< RepairBoost-scheduled CR
    kRbPpr,       ///< RepairBoost-scheduled PPR
    kRbEcpipe,    ///< RepairBoost-scheduled ECPipe
    kEtrp,        ///< ChameleonEC without straggler re-scheduling
    kChameleon,   ///< full ChameleonEC
    kChameleonIo, ///< ChameleonEC keyed on storage bandwidth
};

/** Display name, as the paper's figures label it ("ChameleonEC"). */
std::string algorithmName(Algorithm algorithm);

/** CLI/metric-key spelling ("chameleon", "rb-cr"). */
std::string algorithmKey(Algorithm algorithm);

/** Inverse of algorithmKey; nullopt for unknown spellings. */
std::optional<Algorithm> algorithmFromKey(const std::string &key);

/** A mid-run capacity throttle (straggler / wondershaper). */
struct StragglerEvent
{
    SimTime at = 0.0;
    /** Node to throttle; kInvalidNode picks a node that actually
     * hosts surviving chunks of the first repaired stripe, so the
     * straggler is guaranteed to sit in the repair's path. */
    NodeId node = 0;
    /** Remaining capacity fraction while throttled. */
    double factor = 0.1;
    SimTime duration = 10.0;
    /** Throttle uplink, downlink, or both. */
    bool uplink = true;
    bool downlink = true;

    bool operator==(const StragglerEvent &) const = default;
};

/** Full experiment specification; defaults follow Section V-A
 * (scaled-down sizes are chosen by the bench binaries). */
struct ExperimentConfig
{
    cluster::ClusterConfig cluster;
    /** Erasure code (default RS(10,4), set in the constructor). */
    std::shared_ptr<const ec::ErasureCode> code;
    repair::ExecutorConfig exec;
    /** Chunks to repair on the (first) failed node. */
    int chunksToRepair = 40;
    /** Exact stripe count to create; 0 keeps the legacy behavior of
     * growing until node 0 hosts chunksToRepair chunks. */
    int stripes = 0;
    /** Nodes to fail (Exp#8 sweeps 1-3). */
    int failedNodes = 1;
    /** Foreground trace; nullopt disables foreground traffic. */
    std::optional<traffic::TraceProfile> trace;
    /** Bounded trace budget per client (0 = run until repair ends). */
    uint64_t requestsPerClient = 0;
    /** Seconds of foreground warm-up before the failure. */
    SimTime warmup = 16.0;
    repair::ChameleonConfig chameleon;
    repair::SessionConfig session;
    /**
     * Execution-topology override for session algorithms (CR/PPR/
     * ECPipe families): rebuilds each plan's source set into the
     * requested DAG shape (chain, PPR, MLF, star) and executes it
     * slice-pipelined. kAuto keeps native tree execution. Not
     * applicable to the Chameleon family, whose dispatcher owns its
     * tree shapes.
     */
    dag::TopologySpec topology;
    std::vector<StragglerEvent> stragglers;
    /** Mid-repair fault schedule, armed at the failure instant
     * (event times are relative to it). */
    fault::FaultSchedule faults;
    /** Chaos generation: combined fault arrival rate (events per
     * second, split across kinds); 0 disables chaos. Generated
     * events are merged with `faults`. */
    double chaosRate = 0.0;
    /** Chaos schedule seed; 0 derives one from `seed`. */
    uint64_t chaosSeed = 0;
    /** Chaos events arrive within this window after the failure. */
    SimTime chaosHorizon = 120.0;
    /** Background scanner + repair-queue knobs; scanner.enabled
     * routes failure discovery and repair admission through the
     * ReplicatorScanner/RepairQueue path instead of feeding the
     * session its work list directly. */
    cluster::ScannerConfig scanner;
    /** Background integrity scrubbing + executor verify hooks;
     * scrub.enabled starts the ScrubScanner and (per its verify
     * flags) installs verify-on-read / verify-after-decode. */
    cluster::ScrubConfig scrub;
    /** Silent bit-rot arrival rate (events/second within the chaos
     * horizon); independent of chaosRate so integrity chaos is
     * opt-in. Corruptions are only *detected* when scrubbing or the
     * verify hooks are on. */
    double bitrotRate = 0.0;
    /** Hedged degraded-read policy; degraded.enabled routes the
     * run's repairs through traffic::HedgedReadManager instead of
     * the session/scheduler (session algorithms only — the
     * Chameleon dispatcher owns its own plans). */
    traffic::HedgedReadConfig degraded;
    uint64_t seed = 1;
    /** Hard wall on simulated time (guards runaway runs). */
    SimTime simTimeCap = 100000.0;

    ExperimentConfig();
};

/** Per-link load summary for the Fig. 5 / Fig. 6 analyses. */
struct LinkLoad
{
    NodeId node = 0;
    Rate foregroundMean = 0.0;
    Rate repairMean = 0.0;
    Rate foregroundFluctuation = 0.0;

    Rate total() const { return foregroundMean + repairMean; }

    bool operator==(const LinkLoad &) const = default;
};

/** Everything a bench binary reports. */
struct ExperimentResult
{
    Algorithm algorithm = Algorithm::kNone;
    /** Repaired bytes per second (the paper's headline metric). */
    Rate repairThroughput = 0.0;
    SimTime repairTime = 0.0;
    int chunksRepaired = 0;
    /** Chunks the repair layer gave up on (stripe short of helpers
     * or retry budget exhausted); 0 without fault injection. */
    int chunksUnrecoverable = 0;
    /** Chunk repairs aborted by mid-repair crashes and re-planned. */
    int crashReplans = 0;
    /** Faults the injector applied (skipped events excluded). */
    int faultsInjected = 0;
    /** Foreground request latency during the repair window (ms). */
    double p99LatencyMs = 0.0;
    double meanLatencyMs = 0.0;
    /** Full latency statistics of the same window (seconds). */
    LatencySummary latency;
    /** Bounded-trace execution time (Exp#2); 0 if unbounded. */
    SimTime traceTime = 0.0;
    /** Chameleon-only counters. */
    int phases = 0;
    int retunes = 0;
    int reorders = 0;
    /** Hedged degraded-read counters (zero unless degraded.enabled):
     * hedged attempts launched / hedges that beat their primary, and
     * the per-read issue-to-completion latency distribution. */
    int hedgesIssued = 0;
    int hedgeWins = 0;
    LatencySummary degradedLatency;
    /** Integrity counters (zero unless scrub.enabled). Detected
     * covers all three detection paths (scrub read, verify-on-read,
     * verify-after-decode); the run loop waits for the scrub
     * subsystem to go quiescent, so with scrubbing on, injected ==
     * detected + corruptions claimed by real losses first. */
    int corruptionsInjected = 0;
    int corruptionsDetected = 0;
    int corruptionsRepaired = 0;
    /** Full (stripe, chunk) scrub passes completed. */
    int scrubEpochs = 0;
    /** Bytes read by the background scrubber. */
    Bytes scrubBytes = 0.0;
    /** Injection-to-detection latency (seconds) over detections
     * with a recorded injection time; 0 when none. */
    SimTime meanDetectionLatency = 0.0;
    SimTime maxDetectionLatency = 0.0;
    /** Uplink/downlink loads over the repair window, per node. */
    std::vector<LinkLoad> uplinks;
    std::vector<LinkLoad> downlinks;
    /** Time series of repair throughput — completed chunk bytes per
     * second per sample (lumpy, since chunks complete whole). */
    std::vector<Rate> throughputTimeline;
    /** Time series of repair traffic through node uplinks (bytes/s
     * per sample) — smooth, tracks in-progress transfers (Exp#4). */
    std::vector<Rate> trafficTimeline;
    /** Timeline sampling period (seconds). */
    SimTime timelinePeriod = 5.0;

    /** Field-wise equality, used by the -j1 vs -jN determinism
     * tests: identical spec + seed must mean identical results. */
    bool operator==(const ExperimentResult &) const = default;
};

/** Hook bag for specialized benches (Exp#4's trace switching). */
struct ExperimentHooks
{
    /** Called every timeline sample with (time, driver). May switch
     * trace profiles, inject load, etc. */
    std::function<void(SimTime, traffic::ForegroundDriver *)> onSample;
};

/**
 * Runs one (algorithm, config) cell in the calling thread against
 * the thread's current telemetry context and reports the metrics.
 * Convenience wrapper over Runtime for single sequential runs; sweeps
 * should go through SweepRunner, which isolates telemetry per cell.
 */
ExperimentResult runExperiment(Algorithm algorithm,
                               const ExperimentConfig &config,
                               const ExperimentHooks &hooks = {});

} // namespace runtime
} // namespace chameleon

#endif // CHAMELEON_RUNTIME_EXPERIMENT_HH_
