#include "runtime/scenario.hh"

#include <cmath>
#include <set>
#include <sstream>

#include "ec/factory.hh"
#include "telemetry/json.hh"
#include "util/format.hh"
#include "util/logging.hh"

namespace chameleon {
namespace runtime {

namespace {

using telemetry::JsonValue;

std::vector<std::string>
splitOn(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        std::size_t next = s.find(sep, pos);
        if (next == std::string::npos)
            next = s.size();
        out.push_back(s.substr(pos, next - pos));
        pos = next + 1;
    }
    return out;
}

std::optional<double>
parseNum(const std::string &s)
{
    std::size_t used = 0;
    double v = 0.0;
    try {
        v = std::stod(s, &used);
    } catch (...) {
        return std::nullopt;
    }
    if (used != s.size() || s.empty())
        return std::nullopt;
    return v;
}

bool
isSessionAlgorithm(Algorithm a)
{
    return a == Algorithm::kCr || a == Algorithm::kPpr ||
           a == Algorithm::kEcpipe || a == Algorithm::kRbCr ||
           a == Algorithm::kRbPpr || a == Algorithm::kRbEcpipe;
}

const char *
priorityKey(repair::RepairPriority p)
{
    switch (p) {
      case repair::RepairPriority::kSequential:
        return "sequential";
      case repair::RepairPriority::kMostFailedFirst:
        return "most-failed-first";
      case repair::RepairPriority::kShortestFirst:
        return "shortest-first";
    }
    return "sequential";
}

std::optional<repair::RepairPriority>
priorityFromKey(const std::string &key)
{
    if (key == "sequential")
        return repair::RepairPriority::kSequential;
    if (key == "most-failed-first")
        return repair::RepairPriority::kMostFailedFirst;
    if (key == "shortest-first")
        return repair::RepairPriority::kShortestFirst;
    return std::nullopt;
}

// ---- JSON reading helpers. Absent keys keep the field's default;
// present keys must have the right type and pass validation.

bool
checkKeys(const JsonValue &obj, const char *where,
          std::initializer_list<const char *> allowed,
          std::string &err)
{
    if (!obj.isObject()) {
        err = std::string(where) + " is not an object";
        return false;
    }
    for (const auto &[key, value] : obj.object) {
        bool known = false;
        for (const char *a : allowed)
            if (key == a)
                known = true;
        if (!known) {
            err = std::string("unknown key '") + key + "' in " +
                  where;
            return false;
        }
    }
    return true;
}

bool
readNum(const JsonValue &obj, const char *key, double *out,
        std::string &err)
{
    const JsonValue *v = obj.find(key);
    if (!v)
        return true;
    if (!v->isNumber()) {
        err = std::string("'") + key + "' must be a number";
        return false;
    }
    *out = v->number;
    return true;
}

bool
readInt(const JsonValue &obj, const char *key, int *out,
        std::string &err)
{
    double num = *out;
    if (!readNum(obj, key, &num, err))
        return false;
    if (num != std::floor(num) || std::abs(num) > 2e9) {
        err = std::string("'") + key + "' must be an integer";
        return false;
    }
    *out = static_cast<int>(num);
    return true;
}

bool
readU64(const JsonValue &obj, const char *key, uint64_t *out,
        std::string &err)
{
    double num = static_cast<double>(*out);
    if (!readNum(obj, key, &num, err))
        return false;
    if (num != std::floor(num) || num < 0) {
        err = std::string("'") + key +
              "' must be a non-negative integer";
        return false;
    }
    *out = static_cast<uint64_t>(num);
    return true;
}

bool
readBool(const JsonValue &obj, const char *key, bool *out,
         std::string &err)
{
    const JsonValue *v = obj.find(key);
    if (!v)
        return true;
    if (v->type != JsonValue::Type::kBool) {
        err = std::string("'") + key + "' must be a boolean";
        return false;
    }
    *out = v->boolean;
    return true;
}

bool
readStr(const JsonValue &obj, const char *key, std::string *out,
        std::string &err)
{
    const JsonValue *v = obj.find(key);
    if (!v)
        return true;
    if (!v->isString()) {
        err = std::string("'") + key + "' must be a string";
        return false;
    }
    *out = v->string;
    return true;
}

// ---- JSON writing helpers (same escaping as the telemetry sinks).

void
writeString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            os << c;
        }
    }
    os << '"';
}

void
writeKeyNum(std::ostream &os, const char *key, double v,
            const char *sep = ",\n")
{
    os << "  \"" << key << "\": " << formatDouble(v) << sep;
}

} // namespace

ScenarioSpec::ScenarioSpec()
{
    // Mirror ExperimentConfig's constructor so a default ScenarioSpec
    // materializes into a default ExperimentConfig.
    cluster.uplinkBw = 2.5 * units::Gbps;
    cluster.downlinkBw = 2.5 * units::Gbps;
}

std::optional<std::shared_ptr<const ec::ErasureCode>>
tryParseCode(const std::string &spec, std::string *error)
{
    // One grammar for every entry point: the ec registry parses and
    // validates the spec and reports diagnostics for malformed forms
    // ("rs(10,)", "lrc(12)") instead of falling through.
    auto code = ec::tryMakeCode(spec, error);
    if (!code)
        return std::nullopt;
    return code;
}

bool
tryResolveTrace(const std::string &name,
                std::optional<traffic::TraceProfile> *out,
                std::string *error)
{
    if (name.empty() || name == "none") {
        *out = std::nullopt;
        return true;
    }
    if (name == "ycsb-a") {
        *out = traffic::ycsbA();
        return true;
    }
    if (name == "ibm") {
        *out = traffic::ibmObjectStore();
        return true;
    }
    if (name == "memcached") {
        *out = traffic::memcachedCluster37();
        return true;
    }
    if (name == "etc") {
        *out = traffic::facebookEtc();
        return true;
    }
    if (error)
        *error = "unknown trace '" + name +
                 "' (want ycsb-a|ibm|memcached|etc|none)";
    return false;
}

std::optional<std::vector<StragglerEvent>>
tryParseStragglers(const std::string &spec, std::string *error)
{
    auto fail = [&](const std::string &msg)
        -> std::optional<std::vector<StragglerEvent>> {
        if (error)
            *error = msg;
        return std::nullopt;
    };
    std::vector<StragglerEvent> out;
    for (const std::string &item : splitOn(spec, ';')) {
        if (item.empty())
            continue;
        auto fields = splitOn(item, ':');
        auto at = parseNum(fields[0]);
        if (!at)
            return fail("straggler event '" + item +
                        "' lacks a start time");
        StragglerEvent ev;
        ev.at = *at;
        ev.node = kInvalidNode; // default: auto-pick a participant
        for (std::size_t i = 1; i < fields.size(); ++i) {
            auto eq = fields[i].find('=');
            if (eq == std::string::npos)
                return fail("straggler option '" + fields[i] +
                            "' is not key=value");
            std::string key = fields[i].substr(0, eq);
            std::string val = fields[i].substr(eq + 1);
            if (key == "node") {
                auto n = parseNum(val);
                if (!n || *n != std::floor(*n) || *n < 0)
                    return fail("bad straggler node '" + val + "'");
                ev.node = static_cast<NodeId>(*n);
            } else if (key == "factor") {
                auto f = parseNum(val);
                if (!f)
                    return fail("bad straggler factor '" + val + "'");
                ev.factor = *f;
            } else if (key == "dur") {
                auto d = parseNum(val);
                if (!d)
                    return fail("bad straggler duration '" + val +
                                "'");
                ev.duration = *d;
            } else if (key == "link") {
                if (val == "up") {
                    ev.uplink = true;
                    ev.downlink = false;
                } else if (val == "down") {
                    ev.uplink = false;
                    ev.downlink = true;
                } else if (val == "both") {
                    ev.uplink = ev.downlink = true;
                } else {
                    return fail("bad straggler link '" + val +
                                "' (want up|down|both)");
                }
            } else {
                return fail("unknown straggler option '" + key +
                            "' (want node|factor|dur|link)");
            }
        }
        out.push_back(ev);
    }
    return out;
}

std::vector<StragglerEvent>
parseStragglers(const std::string &spec)
{
    std::string err;
    auto parsed = tryParseStragglers(spec, &err);
    if (!parsed)
        CHAMELEON_PANIC("bad straggler spec: ", err);
    return *parsed;
}

std::string
stragglerSpecStr(const std::vector<StragglerEvent> &events)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const StragglerEvent &ev = events[i];
        if (i)
            os << ';';
        os << formatDouble(ev.at);
        if (ev.node != kInvalidNode)
            os << ":node=" << ev.node;
        os << ":factor=" << formatDouble(ev.factor);
        os << ":dur=" << formatDouble(ev.duration);
        if (ev.uplink != ev.downlink)
            os << ":link=" << (ev.uplink ? "up" : "down");
    }
    return os.str();
}

std::optional<ScenarioSpec>
ScenarioSpec::fromJson(const std::string &text, std::string *error)
{
    auto fail = [&](const std::string &msg)
        -> std::optional<ScenarioSpec> {
        if (error)
            *error = msg;
        return std::nullopt;
    };
    auto doc = telemetry::parseJson(text);
    if (!doc)
        return fail("scenario is not valid JSON");
    std::string err;
    if (!checkKeys(*doc, "scenario",
                   {"name", "algorithm", "code", "trace", "cluster",
                    "executor", "chunks_to_repair", "stripes",
                    "failed_nodes", "requests_per_client", "warmup",
                    "chameleon", "session", "topology", "stragglers",
                    "faults", "chaos", "scanner", "scrub", "degraded",
                    "seed", "sim_time_cap"},
                   err))
        return fail(err);

    ScenarioSpec spec;
    if (!readStr(*doc, "name", &spec.name, err))
        return fail(err);

    std::string algo = algorithmKey(spec.algorithm);
    if (!readStr(*doc, "algorithm", &algo, err))
        return fail(err);
    auto parsed_algo = algorithmFromKey(algo);
    if (!parsed_algo)
        return fail("unknown algorithm '" + algo + "'");
    spec.algorithm = *parsed_algo;

    if (!readStr(*doc, "code", &spec.code, err))
        return fail(err);
    if (!tryParseCode(spec.code, &err))
        return fail(err);

    if (!readStr(*doc, "trace", &spec.trace, err))
        return fail(err);
    std::optional<traffic::TraceProfile> trace;
    if (!tryResolveTrace(spec.trace, &trace, &err))
        return fail(err);

    if (const JsonValue *cl = doc->find("cluster")) {
        if (!checkKeys(*cl, "cluster",
                       {"nodes", "clients", "uplink_bw",
                        "downlink_bw", "disk_bw", "usage_window",
                        "racks", "rack_oversubscription"},
                       err) ||
            !readInt(*cl, "nodes", &spec.cluster.numNodes, err) ||
            !readInt(*cl, "clients", &spec.cluster.numClients, err) ||
            !readNum(*cl, "uplink_bw", &spec.cluster.uplinkBw, err) ||
            !readNum(*cl, "downlink_bw", &spec.cluster.downlinkBw,
                     err) ||
            !readNum(*cl, "disk_bw", &spec.cluster.diskBw, err) ||
            !readNum(*cl, "usage_window", &spec.cluster.usageWindow,
                     err) ||
            !readInt(*cl, "racks", &spec.cluster.racks, err) ||
            !readNum(*cl, "rack_oversubscription",
                     &spec.cluster.rackOversubscription, err))
            return fail(err);
    }
    if (const JsonValue *ex = doc->find("executor")) {
        double chunk = static_cast<double>(spec.exec.chunkSize);
        double slice = static_cast<double>(spec.exec.sliceSize);
        if (!checkKeys(*ex, "executor",
                       {"chunk_size", "slice_size", "slices",
                        "upload_slots", "download_slots",
                        "relay_overhead_per_mib"},
                       err) ||
            !readNum(*ex, "chunk_size", &chunk, err) ||
            !readNum(*ex, "slice_size", &slice, err) ||
            !readInt(*ex, "slices", &spec.exec.slices, err) ||
            !readInt(*ex, "upload_slots", &spec.exec.nodeUploadSlots,
                     err) ||
            !readInt(*ex, "download_slots",
                     &spec.exec.nodeDownloadSlots, err) ||
            !readNum(*ex, "relay_overhead_per_mib",
                     &spec.exec.relayOverheadPerMiB, err))
            return fail(err);
        spec.exec.chunkSize = chunk;
        spec.exec.sliceSize = slice;
    }
    if (const JsonValue *ch = doc->find("chameleon")) {
        std::string prio = priorityKey(spec.chameleon.priority);
        if (!checkKeys(*ch, "chameleon",
                       {"t_phase", "check_period", "straggler_slack",
                        "expectation_factor", "reorder_backoff",
                        "reordering", "retuning", "priority",
                        "max_retries", "retry_backoff"},
                       err) ||
            !readNum(*ch, "t_phase", &spec.chameleon.tPhase, err) ||
            !readNum(*ch, "check_period",
                     &spec.chameleon.checkPeriod, err) ||
            !readNum(*ch, "straggler_slack",
                     &spec.chameleon.stragglerSlack, err) ||
            !readNum(*ch, "expectation_factor",
                     &spec.chameleon.expectationFactor, err) ||
            !readNum(*ch, "reorder_backoff",
                     &spec.chameleon.reorderBackoff, err) ||
            !readBool(*ch, "reordering",
                      &spec.chameleon.enableReordering, err) ||
            !readBool(*ch, "retuning",
                      &spec.chameleon.enableRetuning, err) ||
            !readStr(*ch, "priority", &prio, err) ||
            !readInt(*ch, "max_retries", &spec.chameleon.maxRetries,
                     err) ||
            !readNum(*ch, "retry_backoff",
                     &spec.chameleon.retryBackoff, err))
            return fail(err);
        auto parsed_prio = priorityFromKey(prio);
        if (!parsed_prio)
            return fail("unknown priority '" + prio + "'");
        spec.chameleon.priority = *parsed_prio;
    }
    if (const JsonValue *se = doc->find("session")) {
        if (!checkKeys(*se, "session",
                       {"max_in_flight", "max_retries",
                        "retry_backoff"},
                       err) ||
            !readInt(*se, "max_in_flight",
                     &spec.session.maxInFlight, err) ||
            !readInt(*se, "max_retries", &spec.session.maxRetries,
                     err) ||
            !readNum(*se, "retry_backoff",
                     &spec.session.retryBackoff, err))
            return fail(err);
    }
    std::string topo = dag::topologyKey(spec.topology);
    if (!readStr(*doc, "topology", &topo, err))
        return fail(err);
    auto parsed_topo = dag::topologyFromKey(topo, &err);
    if (!parsed_topo)
        return fail(err);
    spec.topology = *parsed_topo;

    if (const JsonValue *sc = doc->find("scanner")) {
        if (!checkKeys(*sc, "scanner",
                       {"enabled", "batch", "interval",
                        "risk_margin", "max_total_jobs",
                        "max_node_jobs"},
                       err) ||
            !readBool(*sc, "enabled", &spec.scanner.enabled, err) ||
            !readInt(*sc, "batch", &spec.scanner.batchSize, err) ||
            !readNum(*sc, "interval", &spec.scanner.tickInterval,
                     err) ||
            !readInt(*sc, "risk_margin", &spec.scanner.riskMargin,
                     err) ||
            !readInt(*sc, "max_total_jobs",
                     &spec.scanner.queue.maxTotalJobs, err) ||
            !readInt(*sc, "max_node_jobs",
                     &spec.scanner.queue.maxNodeJobs, err))
            return fail(err);
    }

    if (const JsonValue *chaos = doc->find("chaos")) {
        if (!checkKeys(*chaos, "chaos",
                       {"rate", "seed", "horizon", "bitrot_rate"},
                       err) ||
            !readNum(*chaos, "rate", &spec.chaosRate, err) ||
            !readU64(*chaos, "seed", &spec.chaosSeed, err) ||
            !readNum(*chaos, "horizon", &spec.chaosHorizon, err) ||
            !readNum(*chaos, "bitrot_rate", &spec.bitrotRate, err))
            return fail(err);
    }

    if (const JsonValue *sb = doc->find("scrub")) {
        if (!checkKeys(*sb, "scrub",
                       {"enabled", "rate", "interval", "adaptive",
                        "adaptive_floor", "max_in_flight",
                        "risk_margin", "verify_reads",
                        "verify_decode"},
                       err) ||
            !readBool(*sb, "enabled", &spec.scrub.enabled, err) ||
            !readNum(*sb, "rate", &spec.scrub.rate, err) ||
            !readNum(*sb, "interval", &spec.scrub.tickInterval,
                     err) ||
            !readBool(*sb, "adaptive", &spec.scrub.adaptive, err) ||
            !readNum(*sb, "adaptive_floor",
                     &spec.scrub.adaptiveFloor, err) ||
            !readInt(*sb, "max_in_flight", &spec.scrub.maxInFlight,
                     err) ||
            !readInt(*sb, "risk_margin", &spec.scrub.riskMargin,
                     err) ||
            !readBool(*sb, "verify_reads", &spec.scrub.verifyReads,
                      err) ||
            !readBool(*sb, "verify_decode",
                      &spec.scrub.verifyDecode, err))
            return fail(err);
    }

    if (const JsonValue *dg = doc->find("degraded")) {
        if (!checkKeys(*dg, "degraded",
                       {"enabled", "hedge", "hedge_multiplier",
                        "hedge_min_delay", "max_hedges",
                        "max_in_flight", "max_retries",
                        "retry_backoff"},
                       err) ||
            !readBool(*dg, "enabled", &spec.degraded.enabled, err) ||
            !readBool(*dg, "hedge", &spec.degraded.hedge, err) ||
            !readNum(*dg, "hedge_multiplier",
                     &spec.degraded.hedgeMultiplier, err) ||
            !readNum(*dg, "hedge_min_delay",
                     &spec.degraded.hedgeMinDelay, err) ||
            !readInt(*dg, "max_hedges", &spec.degraded.maxHedges,
                     err) ||
            !readInt(*dg, "max_in_flight",
                     &spec.degraded.maxInFlight, err) ||
            !readInt(*dg, "max_retries", &spec.degraded.maxRetries,
                     err) ||
            !readNum(*dg, "retry_backoff",
                     &spec.degraded.retryBackoff, err))
            return fail(err);
    }

    if (!readInt(*doc, "chunks_to_repair", &spec.chunksToRepair,
                 err) ||
        !readInt(*doc, "stripes", &spec.stripes, err) ||
        !readInt(*doc, "failed_nodes", &spec.failedNodes, err) ||
        !readU64(*doc, "requests_per_client",
                 &spec.requestsPerClient, err) ||
        !readNum(*doc, "warmup", &spec.warmup, err) ||
        !readU64(*doc, "seed", &spec.seed, err) ||
        !readNum(*doc, "sim_time_cap", &spec.simTimeCap, err))
        return fail(err);

    std::string stragglers;
    if (!readStr(*doc, "stragglers", &stragglers, err))
        return fail(err);
    if (!stragglers.empty()) {
        auto parsed = tryParseStragglers(stragglers, &err);
        if (!parsed)
            return fail(err);
        spec.stragglers = std::move(*parsed);
    }
    std::string faults;
    if (!readStr(*doc, "faults", &faults, err))
        return fail(err);
    if (!faults.empty()) {
        auto parsed = fault::FaultSchedule::tryParse(faults, &err);
        if (!parsed)
            return fail(err);
        spec.faults = std::move(*parsed);
    }

    // Dimension sanity (the asserts Runtime would otherwise hit).
    if (spec.cluster.numNodes < 1)
        return fail("cluster.nodes must be >= 1");
    if (spec.cluster.numClients < 0)
        return fail("cluster.clients must be >= 0");
    if (spec.cluster.uplinkBw <= 0 || spec.cluster.downlinkBw <= 0 ||
        spec.cluster.diskBw <= 0)
        return fail("cluster bandwidths must be positive");
    if (spec.exec.chunkSize <= 0 || spec.exec.sliceSize <= 0 ||
        spec.exec.sliceSize > spec.exec.chunkSize)
        return fail("executor sizes must satisfy "
                    "0 < slice_size <= chunk_size");
    if (spec.exec.slices < 0 || spec.exec.slices > 16384)
        return fail("executor.slices must be in [0, 16384] "
                    "(0 = derive from slice_size)");
    if (spec.topology.kind != dag::RepairTopology::kAuto) {
        if (!isSessionAlgorithm(spec.algorithm))
            return fail("topology '" + topo +
                        "' only applies to session algorithms "
                        "(cr|ppr|ecpipe|rb-*); '" +
                        algorithmKey(spec.algorithm) +
                        "' owns its own plan shapes");
    }
    if (spec.chunksToRepair < 1)
        return fail("chunks_to_repair must be >= 1");
    if (spec.stripes < 0)
        return fail("stripes must be >= 0 "
                    "(0 = grow to chunks_to_repair)");
    if (spec.scanner.batchSize < 1)
        return fail("scanner.batch must be >= 1");
    if (spec.scanner.tickInterval <= 0)
        return fail("scanner.interval must be > 0");
    if (spec.scanner.riskMargin < 0)
        return fail("scanner.risk_margin must be >= 0");
    if (spec.scanner.queue.maxTotalJobs < 1 ||
        spec.scanner.queue.maxNodeJobs < 1)
        return fail("scanner job limits must be >= 1");
    if (spec.scanner.enabled) {
        if (spec.algorithm == Algorithm::kNone)
            return fail("scanner.enabled needs a repair algorithm "
                        "(the scanner has nowhere to dispatch)");
        for (const StragglerEvent &ev : spec.stragglers)
            if (ev.node == kInvalidNode)
                return fail("scanner path cannot auto-pick a "
                            "straggler node; set node=N");
    }
    if (spec.failedNodes < 1 ||
        spec.failedNodes > spec.cluster.numNodes)
        return fail("failed_nodes must be in [1, cluster.nodes]");
    if (spec.chaosRate < 0)
        return fail("chaos.rate must be >= 0");
    if (spec.bitrotRate < 0)
        return fail("chaos.bitrot_rate must be >= 0");
    if (spec.scrub.rate <= 0)
        return fail("scrub.rate must be > 0");
    if (spec.scrub.tickInterval <= 0)
        return fail("scrub.interval must be > 0");
    if (spec.scrub.adaptiveFloor <= 0 || spec.scrub.adaptiveFloor > 1)
        return fail("scrub.adaptive_floor must be in (0, 1]");
    if (spec.scrub.maxInFlight < 1)
        return fail("scrub.max_in_flight must be >= 1");
    if (spec.scrub.riskMargin < 0)
        return fail("scrub.risk_margin must be >= 0");
    if (spec.scrub.enabled && spec.algorithm == Algorithm::kNone)
        return fail("scrub.enabled needs a repair algorithm "
                    "(detected corruption has nowhere to go)");
    if (spec.degraded.hedgeMultiplier < 1.0)
        return fail("degraded.hedge_multiplier must be >= 1");
    if (spec.degraded.hedgeMinDelay < 0)
        return fail("degraded.hedge_min_delay must be >= 0");
    if (spec.degraded.maxHedges < 0)
        return fail("degraded.max_hedges must be >= 0");
    if (spec.degraded.maxInFlight < 1)
        return fail("degraded.max_in_flight must be >= 1");
    if (spec.degraded.maxRetries < 0)
        return fail("degraded.max_retries must be >= 0");
    if (spec.degraded.retryBackoff < 0)
        return fail("degraded.retry_backoff must be >= 0");
    if (spec.degraded.enabled) {
        if (!isSessionAlgorithm(spec.algorithm))
            return fail("degraded.enabled only applies to session "
                        "algorithms (cr|ppr|ecpipe|rb-*); '" +
                        algorithmKey(spec.algorithm) +
                        "' owns its own plans");
        if (spec.scanner.enabled)
            return fail("degraded.enabled is incompatible with "
                        "scanner.enabled (degraded reads are driven "
                        "by an eager work list)");
        if (spec.scrub.enabled)
            return fail("degraded.enabled is incompatible with "
                        "scrub.enabled (degraded reads do not route "
                        "scrub repairs)");
        if (spec.topology.kind != dag::RepairTopology::kAuto)
            return fail("degraded.enabled is incompatible with a "
                        "topology override (attempts are direct star "
                        "reconstructions)");
    }
    if (spec.warmup < 0 || spec.simTimeCap <= 0)
        return fail("warmup must be >= 0 and sim_time_cap > 0");
    return spec;
}

std::string
ScenarioSpec::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"name\": ";
    writeString(os, name);
    os << ",\n  \"algorithm\": ";
    writeString(os, algorithmKey(algorithm));
    os << ",\n  \"code\": ";
    writeString(os, code);
    os << ",\n  \"trace\": ";
    writeString(os, trace.empty() ? "none" : trace);
    os << ",\n  \"cluster\": {\"nodes\": " << cluster.numNodes
       << ", \"clients\": " << cluster.numClients
       << ", \"uplink_bw\": " << formatDouble(cluster.uplinkBw)
       << ", \"downlink_bw\": " << formatDouble(cluster.downlinkBw)
       << ", \"disk_bw\": " << formatDouble(cluster.diskBw)
       << ", \"usage_window\": " << formatDouble(cluster.usageWindow)
       << ", \"racks\": " << cluster.racks
       << ", \"rack_oversubscription\": "
       << formatDouble(cluster.rackOversubscription) << "},\n";
    os << "  \"executor\": {\"chunk_size\": "
       << formatDouble(static_cast<double>(exec.chunkSize))
       << ", \"slice_size\": "
       << formatDouble(static_cast<double>(exec.sliceSize))
       << ", \"slices\": " << exec.slices
       << ", \"upload_slots\": " << exec.nodeUploadSlots
       << ", \"download_slots\": " << exec.nodeDownloadSlots
       << ", \"relay_overhead_per_mib\": "
       << formatDouble(exec.relayOverheadPerMiB) << "},\n";
    writeKeyNum(os, "chunks_to_repair", chunksToRepair);
    writeKeyNum(os, "stripes", stripes);
    writeKeyNum(os, "failed_nodes", failedNodes);
    writeKeyNum(os, "requests_per_client",
                static_cast<double>(requestsPerClient));
    writeKeyNum(os, "warmup", warmup);
    os << "  \"chameleon\": {\"t_phase\": "
       << formatDouble(chameleon.tPhase) << ", \"check_period\": "
       << formatDouble(chameleon.checkPeriod)
       << ", \"straggler_slack\": "
       << formatDouble(chameleon.stragglerSlack)
       << ", \"expectation_factor\": "
       << formatDouble(chameleon.expectationFactor)
       << ", \"reorder_backoff\": "
       << formatDouble(chameleon.reorderBackoff)
       << ", \"reordering\": "
       << (chameleon.enableReordering ? "true" : "false")
       << ", \"retuning\": "
       << (chameleon.enableRetuning ? "true" : "false")
       << ", \"priority\": \"" << priorityKey(chameleon.priority)
       << "\", \"max_retries\": " << chameleon.maxRetries
       << ", \"retry_backoff\": "
       << formatDouble(chameleon.retryBackoff) << "},\n";
    os << "  \"session\": {\"max_in_flight\": "
       << session.maxInFlight
       << ", \"max_retries\": " << session.maxRetries
       << ", \"retry_backoff\": "
       << formatDouble(session.retryBackoff) << "},\n";
    os << "  \"topology\": ";
    writeString(os, dag::topologyKey(topology));
    os << ",\n";
    os << "  \"stragglers\": ";
    writeString(os, stragglerSpecStr(stragglers));
    os << ",\n  \"faults\": ";
    writeString(os, faults.str());
    os << ",\n  \"chaos\": {\"rate\": " << formatDouble(chaosRate)
       << ", \"seed\": "
       << formatDouble(static_cast<double>(chaosSeed))
       << ", \"horizon\": " << formatDouble(chaosHorizon)
       << ", \"bitrot_rate\": " << formatDouble(bitrotRate)
       << "},\n";
    os << "  \"scrub\": {\"enabled\": "
       << (scrub.enabled ? "true" : "false")
       << ", \"rate\": " << formatDouble(scrub.rate)
       << ", \"interval\": " << formatDouble(scrub.tickInterval)
       << ", \"adaptive\": " << (scrub.adaptive ? "true" : "false")
       << ", \"adaptive_floor\": "
       << formatDouble(scrub.adaptiveFloor)
       << ", \"max_in_flight\": " << scrub.maxInFlight
       << ", \"risk_margin\": " << scrub.riskMargin
       << ", \"verify_reads\": "
       << (scrub.verifyReads ? "true" : "false")
       << ", \"verify_decode\": "
       << (scrub.verifyDecode ? "true" : "false") << "},\n";
    os << "  \"degraded\": {\"enabled\": "
       << (degraded.enabled ? "true" : "false")
       << ", \"hedge\": " << (degraded.hedge ? "true" : "false")
       << ", \"hedge_multiplier\": "
       << formatDouble(degraded.hedgeMultiplier)
       << ", \"hedge_min_delay\": "
       << formatDouble(degraded.hedgeMinDelay)
       << ", \"max_hedges\": " << degraded.maxHedges
       << ", \"max_in_flight\": " << degraded.maxInFlight
       << ", \"max_retries\": " << degraded.maxRetries
       << ", \"retry_backoff\": "
       << formatDouble(degraded.retryBackoff) << "},\n";
    os << "  \"scanner\": {\"enabled\": "
       << (scanner.enabled ? "true" : "false")
       << ", \"batch\": " << scanner.batchSize
       << ", \"interval\": " << formatDouble(scanner.tickInterval)
       << ", \"risk_margin\": " << scanner.riskMargin
       << ", \"max_total_jobs\": " << scanner.queue.maxTotalJobs
       << ", \"max_node_jobs\": " << scanner.queue.maxNodeJobs
       << "},\n";
    writeKeyNum(os, "seed", static_cast<double>(seed));
    writeKeyNum(os, "sim_time_cap", simTimeCap, "\n");
    os << "}\n";
    return os.str();
}

ExperimentConfig
ScenarioSpec::toConfig() const
{
    ExperimentConfig cfg;
    std::string err;
    auto parsed_code = tryParseCode(code, &err);
    if (!parsed_code)
        CHAMELEON_PANIC("scenario: ", err);
    cfg.code = *parsed_code;
    if (!tryResolveTrace(trace, &cfg.trace, &err))
        CHAMELEON_PANIC("scenario: ", err);
    cfg.cluster = cluster;
    cfg.exec = exec;
    cfg.chunksToRepair = chunksToRepair;
    cfg.stripes = stripes;
    cfg.failedNodes = failedNodes;
    cfg.requestsPerClient = requestsPerClient;
    cfg.warmup = warmup;
    cfg.chameleon = chameleon;
    cfg.session = session;
    cfg.topology = topology;
    cfg.stragglers = stragglers;
    cfg.faults = faults;
    cfg.chaosRate = chaosRate;
    cfg.chaosSeed = chaosSeed;
    cfg.chaosHorizon = chaosHorizon;
    cfg.bitrotRate = bitrotRate;
    cfg.scanner = scanner;
    cfg.scrub = scrub;
    cfg.degraded = degraded;
    cfg.seed = seed;
    cfg.simTimeCap = simTimeCap;
    return cfg;
}

} // namespace runtime
} // namespace chameleon
