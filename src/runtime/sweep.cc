#include "runtime/sweep.hh"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "runtime/runtime.hh"
#include "telemetry/telemetry.hh"

namespace chameleon {
namespace runtime {

uint64_t
deriveSeed(uint64_t base, uint64_t index)
{
    // splitmix64 over the (base, index) stream: statistically
    // independent per-cell seeds that do not depend on execution
    // order, so -j1 and -jN sweeps see identical workloads.
    uint64_t z = base + (index + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

SweepRunner::SweepRunner(SweepOptions options) : options_(options)
{
    jobs_ = options.jobs;
    if (jobs_ <= 0)
        jobs_ = static_cast<int>(
            std::max(1u, std::thread::hardware_concurrency()));
}

std::vector<ExperimentResult>
SweepRunner::run(const std::vector<SweepCell> &cells,
                 const Emit &emit)
{
    // Resolve per-cell seeds up front so derivation depends only on
    // the cell table, never on scheduling.
    std::vector<SweepCell> resolved = cells;
    for (std::size_t i = 0; i < resolved.size(); ++i) {
        SweepCell &cell = resolved[i];
        if (options_.baseSeed != 0 && cell.deriveSeed) {
            uint64_t idx = cell.seedIndex >= 0
                               ? static_cast<uint64_t>(cell.seedIndex)
                               : static_cast<uint64_t>(i);
            cell.config.seed = deriveSeed(options_.baseSeed, idx);
        }
    }

    std::vector<ExperimentResult> results(resolved.size());
    // Each cell's Runtime is kept alive until the caller thread has
    // merged its isolated telemetry, then released in cell order.
    std::vector<std::unique_ptr<Runtime>> runtimes(resolved.size());
    std::vector<char> done(resolved.size(), 0);
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<std::size_t> next{0};

    auto worker = [&] {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= resolved.size())
                return;
            auto rt = std::make_unique<Runtime>(
                resolved[i].algorithm, resolved[i].config,
                RuntimeOptions{.isolateTelemetry = true});
            ExperimentResult result = rt->run(resolved[i].hooks);
            std::lock_guard<std::mutex> lock(mu);
            results[i] = std::move(result);
            runtimes[i] = std::move(rt);
            done[i] = 1;
            cv.notify_all();
        }
    };

    int jobs = static_cast<int>(
        std::min<std::size_t>(jobs_, std::max<std::size_t>(
                                         1, resolved.size())));
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (int t = 0; t < jobs; ++t)
        pool.emplace_back(worker);

    // Emit in cell order from the caller thread: telemetry merges
    // and emit callbacks happen in the same sequence regardless of
    // worker count, which keeps -j1 and -jN output byte-identical.
    for (std::size_t i = 0; i < resolved.size(); ++i) {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return done[i] != 0; });
        std::unique_ptr<Runtime> rt = std::move(runtimes[i]);
        lock.unlock();
        if (options_.mergeTelemetry && rt->runTelemetry())
            telemetry::mergeIntoProcess(*rt->runTelemetry());
        if (emit)
            emit(i, resolved[i], results[i]);
        rt.reset();
    }

    for (std::thread &t : pool)
        t.join();
    return results;
}

} // namespace runtime
} // namespace chameleon
