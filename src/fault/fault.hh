/**
 * @file
 * Fault injection: typed mid-run fault events (node crash, slow
 * disk, link degradation, monitor blackout, delayed rejoin) driven
 * through the simulator event queue.
 *
 * The paper's whole premise is that repair runs while the cluster
 * keeps changing under it; the experiment harness previously only
 * failed nodes *before* repair started. A FaultSchedule is an
 * explicit list of events (parsed from a CLI spec or built in
 * tests); generateChaos() samples one from Poisson arrival rates so
 * a single seed reproduces an entire churn run. The FaultInjector
 * applies events against the cluster/stripe state and notifies the
 * repair layer through hooks, keeping a deterministic log of what it
 * did for regression tests.
 */

#ifndef CHAMELEON_FAULT_FAULT_HH_
#define CHAMELEON_FAULT_FAULT_HH_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "cluster/stripe_manager.hh"
#include "sim/simulator.hh"
#include "telemetry/metrics.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace chameleon {
namespace fault {

/** Kinds of injectable faults. */
enum class FaultKind {
    /** Node dies: its chunks are lost, flows touching it must be
     * aborted. duration > 0 schedules a rejoin (the node returns
     * empty — its chunk data is gone, matching a disk wipe). */
    kNodeCrash,
    /** Disk bandwidth drops to capacity * factor for duration. */
    kSlowDisk,
    /** Uplink+downlink drop to capacity * factor for duration.
     * Several short events make a flapping link. */
    kLinkDegrade,
    /** The bandwidth monitor stops sampling for duration; repair
     * dispatch runs on frozen (stale) estimates meanwhile. */
    kMonitorBlackout,
    /** Silent bit rot: payload bytes of one live chunk on the node
     * flip with no externally visible failure. Only a scrub read or
     * a checksum verify-on-read can surface it. */
    kBitRot,
};

const char *faultKindName(FaultKind kind);

/** One scheduled fault. */
struct FaultEvent
{
    /** Seconds after arm(). */
    SimTime at = 0.0;
    FaultKind kind = FaultKind::kNodeCrash;
    /** Target node; kInvalidNode lets the injector pick a live one
     * (ignored for blackouts). */
    NodeId node = kInvalidNode;
    /** Remaining capacity fraction (slow-disk / link-degrade). */
    double factor = 0.1;
    /** Fault duration; 0 = permanent (a crash never rejoins, a
     * throttle never lifts, a blackout never ends). */
    SimTime duration = 0.0;

    bool operator==(const FaultEvent &) const = default;
};

/**
 * An ordered list of fault events.
 *
 * Spec grammar (semicolon-separated events):
 *   kind@T[:node=N][:factor=F][:dur=D]
 * with kind one of crash|slowdisk|linkdeg|blackout|bitrot, e.g.
 *   "crash@30:node=3:dur=40;linkdeg@10:factor=0.2:dur=15"
 */
struct FaultSchedule
{
    std::vector<FaultEvent> events;

    bool empty() const { return events.empty(); }

    /** Parses the spec grammar above; panics on malformed input. */
    static FaultSchedule parse(const std::string &spec);

    /**
     * Non-panicking parse for untrusted input (scenario files).
     * @param error receives a description on failure when non-null.
     * @return nullopt on malformed input.
     */
    static std::optional<FaultSchedule>
    tryParse(const std::string &spec, std::string *error = nullptr);

    /** Round-trips back to the spec grammar. */
    std::string str() const;

    bool operator==(const FaultSchedule &) const = default;
};

/** Rates and shapes for chaos schedule generation. */
struct ChaosConfig
{
    /** Poisson arrival rates, events per second of horizon. */
    double crashRate = 0.0;
    double slowDiskRate = 0.0;
    double linkRate = 0.0;
    double blackoutRate = 0.0;
    /** Silent bit-rot arrivals; kept out of fromRate()'s split so
     * integrity chaos is opt-in (pre-scrub schedules reproduce
     * bit-identically when this stays 0). */
    double bitrotRate = 0.0;
    /** Generation window (events arrive in [0, horizon)). */
    SimTime horizon = 120.0;
    /** Mean crash downtime before rejoin; 0 = permanent crashes. */
    SimTime meanCrashDowntime = 30.0;
    /** Mean throttle/blackout duration. */
    SimTime meanThrottle = 10.0;
    /** Throttle factors are uniform in [minFactor, maxFactor]. */
    double minFactor = 0.05;
    double maxFactor = 0.5;

    /**
     * Convenience: a combined rate split across kinds the way real
     * clusters misbehave (mostly link trouble and slow disks, the
     * occasional crash or monitoring gap).
     */
    static ChaosConfig fromRate(double events_per_second,
                                SimTime horizon = 120.0);
};

/** Samples a schedule; same (config, nodes, seed) -> same result. */
FaultSchedule generateChaos(const ChaosConfig &config, int num_nodes,
                            uint64_t seed);

/** Callbacks into the repair layer; any may be null. */
struct InjectorHooks
{
    /** After failNode/markNodeDown: the repair layer must abort
     * flows touching `node` and absorb `lost` into its queue. */
    std::function<void(NodeId,
                       const std::vector<cluster::FailedChunk> &)>
        onCrash;
    /** After rejoinNode/markNodeUp. */
    std::function<void(NodeId)> onRejoin;
    std::function<void()> onBlackoutStart;
    std::function<void()> onBlackoutEnd;
    /** After markCorrupt: a live chunk on `node` silently rotted.
     * Integrity bookkeeping only (detection-latency clocks) — a
     * repair layer reacting here would be cheating. */
    std::function<void(cluster::FailedChunk, NodeId)> onBitRot;
};

/** Log entry: one applied (or skipped) fault. */
struct InjectedFault
{
    SimTime at = 0.0;
    FaultKind kind = FaultKind::kNodeCrash;
    NodeId node = kInvalidNode;
    double factor = 1.0;
    SimTime duration = 0.0;
    /** False when the injector skipped the event (e.g. a crash that
     * would leave fewer live nodes than minLiveNodes). */
    bool applied = false;

    bool operator==(const InjectedFault &) const = default;
};

/** Applies a FaultSchedule against a live cluster; see file comment. */
class FaultInjector
{
  public:
    FaultInjector(cluster::Cluster &cluster,
                  cluster::StripeManager &stripes,
                  InjectorHooks hooks = {});

    /**
     * Crashes that would leave fewer than `n` live nodes are skipped
     * (logged with applied=false). Defaults to the stripe code's n,
     * below which new stripes could not even be placed.
     */
    void setMinLiveNodes(int n);

    /**
     * Schedules every event relative to the current simulation time.
     * Auto-picked crash/throttle targets draw from `rng`, so one
     * seed fixes the whole run. May be called once.
     */
    void arm(const FaultSchedule &schedule, Rng rng);

    /** Cancels all not-yet-fired events (rejoins/restores included). */
    void disarm();

    /** Deterministic record of everything injected, in fire order. */
    const std::vector<InjectedFault> &log() const { return log_; }

    /** Count of events applied (skipped ones excluded). */
    int faultsInjected() const { return applied_; }

    /** Nodes currently up (not crashed, initial failures included). */
    int liveNodes() const;

    /**
     * Scanner-path crashes: failNodeDeferred() instead of the eager
     * full-table failNode(), so a crash at 10^6 stripes stays O(1)
     * inside the event. onCrash hooks then receive an *empty*
     * newly-lost list — the background scanner discovers and
     * enqueues the losses in bounded batches.
     */
    void setDeferredDiscovery(bool on) { deferred_ = on; }

  private:
    void apply(FaultEvent ev);
    void applyCrash(FaultEvent ev);
    void applyThrottle(const FaultEvent &ev);
    void applyBlackout(const FaultEvent &ev);
    void applyBitRot(FaultEvent ev);
    /** Uniformly picks a live node, or kInvalidNode if none. */
    NodeId pickLiveNode();
    void record(const FaultEvent &ev, bool applied);

    cluster::Cluster &cluster_;
    cluster::StripeManager &stripes_;
    InjectorHooks hooks_;
    Rng rng_{0};
    int minLiveNodes_;
    bool armed_ = false;
    bool deferred_ = false;
    std::vector<sim::EventHandle> pendingEvents_;
    std::vector<InjectedFault> log_;
    int applied_ = 0;
    telemetry::Counter &metCrashes_;
    telemetry::Counter &metRejoins_;
    telemetry::Counter &metThrottles_;
    telemetry::Counter &metBlackouts_;
    telemetry::Counter &metBitrots_;
    telemetry::Counter &metSkipped_;
};

} // namespace fault
} // namespace chameleon

#endif // CHAMELEON_FAULT_FAULT_HH_
