#include "fault/fault.hh"

#include <algorithm>
#include <charconv>
#include <sstream>

#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace chameleon {
namespace fault {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::kNodeCrash:
        return "crash";
      case FaultKind::kSlowDisk:
        return "slowdisk";
      case FaultKind::kLinkDegrade:
        return "linkdeg";
      case FaultKind::kMonitorBlackout:
        return "blackout";
      case FaultKind::kBitRot:
        return "bitrot";
    }
    CHAMELEON_PANIC("unknown fault kind");
}

namespace {

std::optional<FaultKind>
parseKind(const std::string &name, std::string &err)
{
    if (name == "crash")
        return FaultKind::kNodeCrash;
    if (name == "slowdisk")
        return FaultKind::kSlowDisk;
    if (name == "linkdeg")
        return FaultKind::kLinkDegrade;
    if (name == "blackout")
        return FaultKind::kMonitorBlackout;
    if (name == "bitrot")
        return FaultKind::kBitRot;
    err = "unknown fault kind '" + name +
          "' (want crash|slowdisk|linkdeg|blackout|bitrot)";
    return std::nullopt;
}

std::optional<double>
parseNum(const std::string &s, const char *what, std::string &err)
{
    std::size_t used = 0;
    double v = 0.0;
    try {
        v = std::stod(s, &used);
    } catch (...) {
        used = 0;
    }
    if (used != s.size() || s.empty()) {
        err = std::string("malformed ") + what + " '" + s +
              "' in fault spec";
        return std::nullopt;
    }
    return v;
}

std::vector<std::string>
splitOn(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        std::size_t next = s.find(sep, pos);
        if (next == std::string::npos)
            next = s.size();
        out.push_back(s.substr(pos, next - pos));
        pos = next + 1;
    }
    return out;
}

std::optional<FaultSchedule>
parseImpl(const std::string &spec, std::string &err)
{
    FaultSchedule out;
    for (const std::string &item : splitOn(spec, ';')) {
        if (item.empty())
            continue;
        auto fields = splitOn(item, ':');
        // First field: kind@T.
        auto at_pos = fields[0].find('@');
        if (at_pos == std::string::npos) {
            err = "fault event '" + item + "' lacks kind@time";
            return std::nullopt;
        }
        FaultEvent ev;
        auto kind = parseKind(fields[0].substr(0, at_pos), err);
        if (!kind)
            return std::nullopt;
        ev.kind = *kind;
        auto at = parseNum(fields[0].substr(at_pos + 1), "time", err);
        if (!at)
            return std::nullopt;
        ev.at = *at;
        for (std::size_t i = 1; i < fields.size(); ++i) {
            auto eq = fields[i].find('=');
            if (eq == std::string::npos) {
                err = "fault option '" + fields[i] +
                      "' is not key=value";
                return std::nullopt;
            }
            std::string key = fields[i].substr(0, eq);
            std::string val = fields[i].substr(eq + 1);
            std::optional<double> num;
            if (key == "node") {
                if (!(num = parseNum(val, "node", err)))
                    return std::nullopt;
                ev.node = static_cast<NodeId>(*num);
            } else if (key == "factor") {
                if (!(num = parseNum(val, "factor", err)))
                    return std::nullopt;
                ev.factor = *num;
            } else if (key == "dur") {
                if (!(num = parseNum(val, "duration", err)))
                    return std::nullopt;
                ev.duration = *num;
            } else {
                err = "unknown fault option '" + key +
                      "' (want node|factor|dur)";
                return std::nullopt;
            }
        }
        out.events.push_back(ev);
    }
    std::stable_sort(out.events.begin(), out.events.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.at < b.at;
                     });
    return out;
}

} // namespace

FaultSchedule
FaultSchedule::parse(const std::string &spec)
{
    std::string err;
    auto parsed = parseImpl(spec, err);
    if (!parsed)
        CHAMELEON_PANIC("bad fault spec: ", err);
    return *parsed;
}

std::optional<FaultSchedule>
FaultSchedule::tryParse(const std::string &spec, std::string *error)
{
    std::string err;
    auto parsed = parseImpl(spec, err);
    if (!parsed && error)
        *error = err;
    return parsed;
}

std::string
FaultSchedule::str() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const FaultEvent &ev = events[i];
        if (i)
            os << ';';
        os << faultKindName(ev.kind) << '@' << ev.at;
        if (ev.node != kInvalidNode)
            os << ":node=" << ev.node;
        if (ev.kind == FaultKind::kSlowDisk ||
            ev.kind == FaultKind::kLinkDegrade)
            os << ":factor=" << ev.factor;
        if (ev.duration > 0)
            os << ":dur=" << ev.duration;
    }
    return os.str();
}

ChaosConfig
ChaosConfig::fromRate(double events_per_second, SimTime horizon)
{
    CHAMELEON_ASSERT(events_per_second >= 0, "negative chaos rate");
    ChaosConfig cfg;
    cfg.horizon = horizon;
    cfg.crashRate = events_per_second * 0.15;
    cfg.slowDiskRate = events_per_second * 0.25;
    cfg.linkRate = events_per_second * 0.50;
    cfg.blackoutRate = events_per_second * 0.10;
    return cfg;
}

FaultSchedule
generateChaos(const ChaosConfig &config, int num_nodes, uint64_t seed)
{
    CHAMELEON_ASSERT(num_nodes >= 1, "empty cluster");
    Rng rng(seed);
    FaultSchedule out;

    struct KindRate
    {
        FaultKind kind;
        double rate;
    };
    const KindRate kinds[] = {
        {FaultKind::kNodeCrash, config.crashRate},
        {FaultKind::kSlowDisk, config.slowDiskRate},
        {FaultKind::kLinkDegrade, config.linkRate},
        {FaultKind::kMonitorBlackout, config.blackoutRate},
        // Last so enabling bit rot never perturbs the rng.split()
        // sequence of the pre-existing kinds: same seed, same
        // crash/throttle/blackout schedule, bit rot layered on top.
        {FaultKind::kBitRot, config.bitrotRate},
    };
    for (const KindRate &kr : kinds) {
        if (kr.rate <= 0)
            continue;
        Rng stream = rng.split();
        SimTime t = stream.exponential(1.0 / kr.rate);
        while (t < config.horizon) {
            FaultEvent ev;
            ev.at = t;
            ev.kind = kr.kind;
            switch (kr.kind) {
              case FaultKind::kNodeCrash:
                ev.node = static_cast<NodeId>(
                    stream.below(static_cast<uint64_t>(num_nodes)));
                ev.duration =
                    config.meanCrashDowntime > 0
                        ? stream.exponential(config.meanCrashDowntime)
                        : 0.0;
                break;
              case FaultKind::kSlowDisk:
              case FaultKind::kLinkDegrade:
                ev.node = static_cast<NodeId>(
                    stream.below(static_cast<uint64_t>(num_nodes)));
                ev.factor = stream.uniform(config.minFactor,
                                           config.maxFactor);
                ev.duration = stream.exponential(config.meanThrottle);
                break;
              case FaultKind::kMonitorBlackout:
                ev.duration = stream.exponential(config.meanThrottle);
                break;
              case FaultKind::kBitRot:
                ev.node = static_cast<NodeId>(
                    stream.below(static_cast<uint64_t>(num_nodes)));
                break;
            }
            out.events.push_back(ev);
            t += stream.exponential(1.0 / kr.rate);
        }
    }
    std::stable_sort(out.events.begin(), out.events.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.at < b.at;
                     });
    return out;
}

FaultInjector::FaultInjector(cluster::Cluster &cluster,
                             cluster::StripeManager &stripes,
                             InjectorHooks hooks)
    : cluster_(cluster), stripes_(stripes), hooks_(std::move(hooks)),
      minLiveNodes_(stripes.code().n()),
      metCrashes_(telemetry::metrics().counter("fault.crashes")),
      metRejoins_(telemetry::metrics().counter("fault.rejoins")),
      metThrottles_(telemetry::metrics().counter("fault.throttles")),
      metBlackouts_(telemetry::metrics().counter("fault.blackouts")),
      metBitrots_(telemetry::metrics().counter("fault.bitrots")),
      metSkipped_(telemetry::metrics().counter("fault.skipped"))
{
}

void
FaultInjector::setMinLiveNodes(int n)
{
    CHAMELEON_ASSERT(n >= 1, "minLiveNodes must be positive");
    minLiveNodes_ = n;
}

int
FaultInjector::liveNodes() const
{
    // O(1) off the stripe table's failure counter: this runs inside
    // every crash event, where an O(nodes) scan would dominate at
    // 5000-node scale.
    return stripes_.numNodes() - stripes_.failedNodeCount();
}

void
FaultInjector::arm(const FaultSchedule &schedule, Rng rng)
{
    CHAMELEON_ASSERT(!armed_, "injector already armed");
    armed_ = true;
    rng_ = rng;
    auto &sim = cluster_.simulator();
    for (const FaultEvent &ev : schedule.events) {
        CHAMELEON_ASSERT(ev.at >= 0, "fault in the past");
        pendingEvents_.push_back(sim.scheduleAfter(
            ev.at, [this, ev] { apply(ev); }));
    }
}

void
FaultInjector::disarm()
{
    for (auto &handle : pendingEvents_)
        handle.cancel();
    pendingEvents_.clear();
}

NodeId
FaultInjector::pickLiveNode()
{
    std::vector<NodeId> live;
    for (NodeId n = 0; n < stripes_.numNodes(); ++n)
        if (!stripes_.nodeFailed(n))
            live.push_back(n);
    if (live.empty())
        return kInvalidNode;
    return live[rng_.below(live.size())];
}

void
FaultInjector::record(const FaultEvent &ev, bool applied)
{
    InjectedFault entry;
    entry.at = cluster_.simulator().now();
    entry.kind = ev.kind;
    entry.node = ev.node;
    entry.factor = ev.factor;
    entry.duration = ev.duration;
    entry.applied = applied;
    log_.push_back(entry);
    if (applied)
        ++applied_;
    else
        metSkipped_.add();
    CHAMELEON_TELEM(telemetry::tracer().instant(
        entry.at, telemetry::kTrackFault, "fault",
        faultKindName(ev.kind),
        {{"node", ev.node},
         {"factor", ev.factor},
         {"dur_s", ev.duration},
         {"applied", applied ? 1 : 0}}));
}

void
FaultInjector::apply(FaultEvent ev)
{
    switch (ev.kind) {
      case FaultKind::kNodeCrash:
        applyCrash(ev);
        break;
      case FaultKind::kSlowDisk:
      case FaultKind::kLinkDegrade:
        applyThrottle(ev);
        break;
      case FaultKind::kMonitorBlackout:
        applyBlackout(ev);
        break;
      case FaultKind::kBitRot:
        applyBitRot(ev);
        break;
    }
}

void
FaultInjector::applyCrash(FaultEvent ev)
{
    if (ev.node == kInvalidNode || stripes_.nodeFailed(ev.node))
        ev.node = pickLiveNode();
    if (ev.node == kInvalidNode || liveNodes() <= minLiveNodes_) {
        record(ev, false);
        return;
    }
    // Fail the metadata first so every observer sees a consistent
    // dead state before the repair layer reacts. On the scanner
    // path the failure is deferred: chunkLost() flips immediately
    // (derived from the pending-wipe flag), but no stripe is
    // visited here — the scanner enqueues the losses batch by
    // batch.
    std::vector<cluster::FailedChunk> lost;
    if (deferred_)
        stripes_.failNodeDeferred(ev.node);
    else
        lost = stripes_.failNode(ev.node);
    cluster_.markNodeDown(ev.node);
    metCrashes_.add();
    record(ev, true);
    if (hooks_.onCrash)
        hooks_.onCrash(ev.node, lost);
    if (ev.duration > 0) {
        const NodeId node = ev.node;
        pendingEvents_.push_back(cluster_.simulator().scheduleAfter(
            ev.duration, [this, node] {
                // Delayed rejoin: the node returns empty; its chunks
                // stay lost and must still be repaired elsewhere.
                stripes_.rejoinNode(node);
                cluster_.markNodeUp(node);
                metRejoins_.add();
                CHAMELEON_TELEM(telemetry::tracer().instant(
                    cluster_.simulator().now(), telemetry::kTrackFault,
                    "fault", "rejoin", {{"node", node}}));
                if (hooks_.onRejoin)
                    hooks_.onRejoin(node);
            }));
    }
}

void
FaultInjector::applyThrottle(const FaultEvent &ev)
{
    FaultEvent picked = ev;
    if (picked.node == kInvalidNode)
        picked.node = pickLiveNode();
    if (picked.node == kInvalidNode || picked.factor <= 0 ||
        picked.factor >= 1.0) {
        record(picked, false);
        return;
    }
    auto &net = cluster_.network();
    std::vector<sim::ResourceId> targets;
    if (picked.kind == FaultKind::kSlowDisk) {
        targets.push_back(cluster_.disk(picked.node));
    } else {
        targets.push_back(cluster_.uplink(picked.node));
        targets.push_back(cluster_.downlink(picked.node));
    }
    for (auto id : targets)
        net.setCapacity(id, net.capacity(id) * picked.factor);
    metThrottles_.add();
    record(picked, true);
    if (picked.duration > 0) {
        const double factor = picked.factor;
        pendingEvents_.push_back(cluster_.simulator().scheduleAfter(
            picked.duration, [this, targets, factor] {
                auto &n = cluster_.network();
                for (auto id : targets)
                    n.setCapacity(id, n.capacity(id) / factor);
            }));
    }
}

void
FaultInjector::applyBitRot(FaultEvent ev)
{
    if (ev.node == kInvalidNode || stripes_.nodeFailed(ev.node))
        ev.node = pickLiveNode();
    if (ev.node == kInvalidNode) {
        record(ev, false);
        return;
    }
    // Rot a uniformly drawn live, not-yet-corrupt chunk on the node;
    // nothing observable changes — no flows abort, no metadata
    // generation bumps — until a scrub or verify-on-read catches it.
    std::vector<cluster::FailedChunk> victims;
    for (const auto &fc : stripes_.chunksOnNode(ev.node)) {
        if (!stripes_.chunkLost(fc.stripe, fc.chunk) &&
            !stripes_.chunkCorrupt(fc.stripe, fc.chunk))
            victims.push_back(fc);
    }
    if (victims.empty()) {
        record(ev, false);
        return;
    }
    const auto fc = victims[rng_.below(victims.size())];
    stripes_.markCorrupt(fc.stripe, fc.chunk);
    metBitrots_.add();
    record(ev, true);
    if (hooks_.onBitRot)
        hooks_.onBitRot(fc, ev.node);
}

void
FaultInjector::applyBlackout(const FaultEvent &ev)
{
    metBlackouts_.add();
    record(ev, true);
    if (hooks_.onBlackoutStart)
        hooks_.onBlackoutStart();
    if (ev.duration > 0) {
        pendingEvents_.push_back(cluster_.simulator().scheduleAfter(
            ev.duration, [this] {
                CHAMELEON_TELEM(telemetry::tracer().instant(
                    cluster_.simulator().now(), telemetry::kTrackFault,
                    "fault", "blackout-end", {}));
                if (hooks_.onBlackoutEnd)
                    hooks_.onBlackoutEnd();
            }));
    }
}

} // namespace fault
} // namespace chameleon
