/**
 * @file
 * Structured event tracer: a bounded ring buffer of trace events
 * stamped with simulator time, exportable as Chrome-trace/Perfetto
 * JSON, JSONL, or a per-phase CSV timeline.
 *
 * Event vocabulary follows the Chrome trace format: begin/end span
 * pairs (nested on a track), complete events (span with a known
 * duration, used for flows whose start time is recorded at launch),
 * instants (dispatch decisions, straggler detections), and counter
 * series (residual-bandwidth estimates). Events carry a `pid` that
 * identifies the experiment run (one process often runs several
 * algorithms back to back) and a `tid` naming the logical track.
 *
 * The buffer is a ring: when full, the oldest events are overwritten
 * and counted as dropped, so a runaway trace can never exhaust
 * memory. Timestamps are simulated seconds; sinks convert to the
 * microseconds Chrome/Perfetto expect.
 */

#ifndef CHAMELEON_TELEMETRY_TRACE_HH_
#define CHAMELEON_TELEMETRY_TRACE_HH_

#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

#include "util/types.hh"

namespace chameleon {
namespace telemetry {

/** Logical tracks events are grouped under in trace viewers. */
enum Track : int {
    kTrackScheduler = 0, ///< phase spans, dispatch/straggler instants
    kTrackExecutor = 1,  ///< per-chunk repair spans
    kTrackRepairFlow = 2, ///< repair-tagged network flows
    kTrackForeground = 3, ///< foreground-tagged network flows
    kTrackMonitor = 4,   ///< residual-bandwidth counter series
    kTrackSim = 5,       ///< kernel-level events (rate recomputes)
    kTrackFault = 6,     ///< injected faults and recovery actions
};

/** One numeric or string event annotation. */
struct TraceArg
{
    TraceArg(const char *k, double v) : key(k), num(v) {}
    TraceArg(const char *k, int v)
        : key(k), num(static_cast<double>(v)) {}
    TraceArg(const char *k, int64_t v)
        : key(k), num(static_cast<double>(v)) {}
    TraceArg(const char *k, std::size_t v)
        : key(k), num(static_cast<double>(v)) {}
    TraceArg(const char *k, std::string v)
        : key(k), str(std::move(v)), isString(true) {}
    TraceArg(const char *k, const char *v)
        : key(k), str(v), isString(true) {}

    std::string key;
    double num = 0.0;
    std::string str;
    bool isString = false;
};

/** One recorded event (see file comment for the vocabulary). */
struct TraceEvent
{
    enum class Phase : char {
        kBegin = 'B',
        kEnd = 'E',
        kComplete = 'X',
        kInstant = 'i',
        kCounter = 'C',
    };

    Phase phase = Phase::kInstant;
    SimTime ts = 0.0;
    SimTime dur = 0.0; ///< kComplete only
    int pid = 0;
    int tid = 0;
    std::string cat;
    std::string name;
    std::vector<TraceArg> args;
};

/** Ring-buffered tracer; see file comment. */
class Tracer
{
  public:
    explicit Tracer(std::size_t capacity = 1 << 18);

    /**
     * Marks the start of a new experiment run: subsequent events are
     * stamped with a fresh pid whose process_name is `name`.
     * @return the new pid.
     */
    int beginRun(std::string name);

    int currentRun() const { return pid_; }

    /** Opens a span on `track` (close with end() on the same track). */
    void begin(SimTime ts, Track track, std::string cat,
               std::string name,
               std::initializer_list<TraceArg> args = {});

    /** Closes the innermost open span on `track`. */
    void end(SimTime ts, Track track);

    /** Records a span whose duration is already known. */
    void complete(SimTime ts, SimTime dur, Track track,
                  std::string cat, std::string name,
                  std::initializer_list<TraceArg> args = {});

    /** Point event. */
    void instant(SimTime ts, Track track, std::string cat,
                 std::string name,
                 std::initializer_list<TraceArg> args = {});

    /** Counter series sample; each arg is one series value. */
    void counter(SimTime ts, Track track, std::string name,
                 std::initializer_list<TraceArg> series);

    /** Events currently held (drops excluded). */
    std::size_t size() const { return events_.size(); }
    /** Events overwritten because the ring was full. */
    uint64_t dropped() const { return dropped_; }
    std::size_t capacity() const { return capacity_; }

    /** Events in record order (oldest first). */
    std::vector<TraceEvent> events() const;

    void clear();

    /**
     * Appends another tracer's runs and events, remapping their pids
     * onto fresh runs here (the same lazy pid-0 claim beginRun()
     * uses, so merging run-isolated tracers in completion order
     * reproduces the pid layout sequential runs sharing one tracer
     * would have produced). Drop counts accumulate.
     */
    void mergeFrom(const Tracer &other);

    /**
     * Chrome trace format (the JSON object form, which Perfetto and
     * chrome://tracing both load): {"traceEvents": [...]} including
     * process/thread-name metadata for every (pid, track) seen.
     */
    void writeChromeTrace(std::ostream &os) const;

    /** One JSON object per line, same fields as the Chrome sink. */
    void writeJsonl(std::ostream &os) const;

    /**
     * Per-phase CSV timeline: one row per scheduler phase span with
     * the dispatch/straggler/retune/reorder activity inside it.
     */
    void writePhaseCsv(std::ostream &os) const;

  private:
    void push(TraceEvent ev);

    std::size_t capacity_;
    std::vector<TraceEvent> events_; ///< ring storage
    std::size_t head_ = 0;           ///< next write slot once full
    bool full_ = false;
    uint64_t dropped_ = 0;
    int pid_ = 0;
    std::vector<std::string> runNames_; ///< runNames_[pid]
};

} // namespace telemetry
} // namespace chameleon

#endif // CHAMELEON_TELEMETRY_TRACE_HH_
