/**
 * @file
 * Minimal JSON reader for the telemetry tooling: trace_inspect loads
 * Chrome-trace files back in, and the tests assert the sinks emit
 * well-formed JSON. Covers the full JSON grammar this repo produces
 * (objects, arrays, strings with basic escapes, numbers, booleans,
 * null); it is a consumer for our own output, not a general-purpose
 * parser.
 */

#ifndef CHAMELEON_TELEMETRY_JSON_HH_
#define CHAMELEON_TELEMETRY_JSON_HH_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace chameleon {
namespace telemetry {

/** A parsed JSON value (tree-owning). */
class JsonValue
{
  public:
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    Type type = Type::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isNull() const { return type == Type::kNull; }
    bool isNumber() const { return type == Type::kNumber; }
    bool isString() const { return type == Type::kString; }
    bool isArray() const { return type == Type::kArray; }
    bool isObject() const { return type == Type::kObject; }

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Convenience accessors with defaults. */
    double numberOr(const std::string &key, double fallback) const;
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;
};

/**
 * Parses `text` as one JSON document.
 * @return nullopt on any syntax error (including trailing garbage).
 */
std::optional<JsonValue> parseJson(const std::string &text);

} // namespace telemetry
} // namespace chameleon

#endif // CHAMELEON_TELEMETRY_JSON_HH_
