/**
 * @file
 * Low-overhead metrics registry: named counters, gauges, and
 * fixed-bucket histograms with hierarchical dotted names
 * (`repair.chameleon.retunes`, `sim.flows.active`).
 *
 * Callers resolve a name to a handle once (a stable reference into
 * the registry) and then update through it; the hot-path cost of an
 * update is a single arithmetic operation. snapshot() captures every
 * instrument's current value for reporting; reset() zeroes them so
 * one process can run several experiments with per-run metrics.
 *
 * Threading: a registry's name-resolution map and its gauge and
 * histogram instruments are not synchronized — each registry is
 * intended to be driven by one thread at a time (the per-run
 * registries a Runtime installs satisfy this by construction).
 * Counters alone are atomic, because a few process-lifetime handles
 * (the GF kernel byte counters) are shared by every concurrently
 * running experiment.
 */

#ifndef CHAMELEON_TELEMETRY_METRICS_HH_
#define CHAMELEON_TELEMETRY_METRICS_HH_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace chameleon {
namespace telemetry {

/** Monotonic event count (atomic: see the file comment). */
struct Counter
{
    std::atomic<int64_t> value = 0;

    void add(int64_t delta = 1)
    {
        value.fetch_add(delta, std::memory_order_relaxed);
    }
};

/** Last-written scalar (levels: active flows, residual estimates). */
struct Gauge
{
    double value = 0.0;

    void set(double v) { value = v; }
    void add(double delta) { value += delta; }
};

/**
 * Fixed-bucket histogram. Bucket i counts observations with
 * value <= bounds[i]; one extra overflow bucket counts the rest.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> bounds);

    void observe(double value);

    const std::vector<double> &bounds() const { return bounds_; }
    /** bounds().size() + 1 entries; last is the overflow bucket. */
    const std::vector<int64_t> &counts() const { return counts_; }
    int64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const;

    /** Linear interpolation within the winning bucket. */
    double percentile(double p) const;

    /** Folds another histogram in; bucket bounds must match. */
    void merge(const Histogram &other);

    void reset();

  private:
    std::vector<double> bounds_;
    std::vector<int64_t> counts_;
    int64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** One instrument's captured state. */
struct MetricSample
{
    enum class Kind { kCounter, kGauge, kHistogram };

    std::string name;
    Kind kind = Kind::kCounter;
    /** Counter value or gauge level. */
    double value = 0.0;
    /** Histogram-only fields. */
    int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
};

/** Point-in-time capture of a whole registry, sorted by name. */
struct MetricsSnapshot
{
    std::vector<MetricSample> samples;

    /** Looks a sample up by exact name; nullptr if absent. */
    const MetricSample *find(const std::string &name) const;

    /** Flat JSON object keyed by dotted metric name. */
    void writeJson(std::ostream &os) const;
};

/** Named-instrument registry; see file comment. */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /**
     * Resolves (creating on first use) the instrument named `name`.
     * References stay valid for the registry's lifetime. Resolving
     * an existing name as a different kind panics.
     */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name,
                         std::vector<double> bounds);

    MetricsSnapshot snapshot() const;

    /**
     * Folds another registry's instruments into this one: counters
     * accumulate, gauges take the other registry's (later) level,
     * histograms merge bucket-wise. Used to publish a finished run's
     * isolated registry into the process-wide one in emission order,
     * which reproduces what sequential runs sharing one registry
     * used to produce.
     */
    void mergeFrom(const MetricsRegistry &other);

    /** Zeroes every instrument (names and handles survive). */
    void reset();

    std::size_t size() const { return instruments_.size(); }

  private:
    struct Instrument
    {
        MetricSample::Kind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    /** Ordered so snapshots list hierarchical names grouped. */
    std::map<std::string, Instrument> instruments_;
};

} // namespace telemetry
} // namespace chameleon

#endif // CHAMELEON_TELEMETRY_METRICS_HH_
