#include "telemetry/metrics.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace chameleon {
namespace telemetry {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds))
{
    CHAMELEON_ASSERT(!bounds_.empty(), "histogram needs bucket bounds");
    CHAMELEON_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()),
                     "histogram bounds must be ascending");
    counts_.assign(bounds_.size() + 1, 0);
}

void
Histogram::observe(double value)
{
    auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
    counts_[static_cast<std::size_t>(it - bounds_.begin())] += 1;
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    sum_ += value;
    ++count_;
}

double
Histogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Histogram::percentile(double p) const
{
    CHAMELEON_ASSERT(p >= 0.0 && p <= 100.0, "percentile ", p);
    if (count_ == 0)
        return 0.0;
    const double rank = p / 100.0 * static_cast<double>(count_);
    int64_t seen = 0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        if (counts_[b] == 0)
            continue;
        const int64_t prev = seen;
        seen += counts_[b];
        if (static_cast<double>(seen) < rank)
            continue;
        // Interpolate within [lo, hi] of the winning bucket; the
        // overflow bucket reports the observed max.
        const double lo = b == 0 ? std::min(min_, bounds_[0])
                                 : bounds_[b - 1];
        const double hi = b < bounds_.size() ? bounds_[b] : max_;
        const double frac =
            (rank - static_cast<double>(prev)) /
            static_cast<double>(counts_[b]);
        return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    return max_;
}

void
Histogram::merge(const Histogram &other)
{
    CHAMELEON_ASSERT(bounds_ == other.bounds_,
                     "merging histograms with different bounds");
    for (std::size_t b = 0; b < counts_.size(); ++b)
        counts_[b] += other.counts_[b];
    if (other.count_ > 0) {
        min_ = count_ ? std::min(min_, other.min_) : other.min_;
        max_ = count_ ? std::max(max_, other.max_) : other.max_;
    }
    sum_ += other.sum_;
    count_ += other.count_;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

const MetricSample *
MetricsSnapshot::find(const std::string &name) const
{
    for (const auto &s : samples)
        if (s.name == name)
            return &s;
    return nullptr;
}

namespace {

/** Minimal JSON string escaping (metric names are plain, but a
 * trace-file-derived name could carry anything). */
void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            os << c;
        }
    }
    os << '"';
}

void
writeJsonNumber(std::ostream &os, double v)
{
    if (std::isfinite(v)) {
        // Integral values print without a fraction so counters stay
        // exact in downstream parsers.
        if (v == std::floor(v) && std::abs(v) < 1e15) {
            os << static_cast<long long>(v);
            return;
        }
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.9g", v);
        os << buf;
    } else {
        os << "null";
    }
}

} // namespace

void
MetricsSnapshot::writeJson(std::ostream &os) const
{
    os << "{\n";
    bool first = true;
    for (const auto &s : samples) {
        if (!first)
            os << ",\n";
        first = false;
        os << "  ";
        writeJsonString(os, s.name);
        os << ": ";
        switch (s.kind) {
          case MetricSample::Kind::kCounter:
          case MetricSample::Kind::kGauge:
            writeJsonNumber(os, s.value);
            break;
          case MetricSample::Kind::kHistogram:
            os << "{\"count\": " << s.count << ", \"mean\": ";
            writeJsonNumber(os, s.count ? s.sum /
                                              static_cast<double>(s.count)
                                        : 0.0);
            os << ", \"min\": ";
            writeJsonNumber(os, s.min);
            os << ", \"max\": ";
            writeJsonNumber(os, s.max);
            os << ", \"p50\": ";
            writeJsonNumber(os, s.p50);
            os << ", \"p99\": ";
            writeJsonNumber(os, s.p99);
            os << "}";
            break;
        }
    }
    os << "\n}\n";
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    auto it = instruments_.find(name);
    if (it == instruments_.end()) {
        Instrument inst;
        inst.kind = MetricSample::Kind::kCounter;
        inst.counter = std::make_unique<Counter>();
        it = instruments_.emplace(name, std::move(inst)).first;
    }
    CHAMELEON_ASSERT(it->second.kind == MetricSample::Kind::kCounter,
                     "metric '", name, "' already registered with "
                     "another kind");
    return *it->second.counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    auto it = instruments_.find(name);
    if (it == instruments_.end()) {
        Instrument inst;
        inst.kind = MetricSample::Kind::kGauge;
        inst.gauge = std::make_unique<Gauge>();
        it = instruments_.emplace(name, std::move(inst)).first;
    }
    CHAMELEON_ASSERT(it->second.kind == MetricSample::Kind::kGauge,
                     "metric '", name, "' already registered with "
                     "another kind");
    return *it->second.gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> bounds)
{
    auto it = instruments_.find(name);
    if (it == instruments_.end()) {
        Instrument inst;
        inst.kind = MetricSample::Kind::kHistogram;
        inst.histogram = std::make_unique<Histogram>(std::move(bounds));
        it = instruments_.emplace(name, std::move(inst)).first;
    }
    CHAMELEON_ASSERT(it->second.kind == MetricSample::Kind::kHistogram,
                     "metric '", name, "' already registered with "
                     "another kind");
    return *it->second.histogram;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    snap.samples.reserve(instruments_.size());
    for (const auto &[name, inst] : instruments_) {
        MetricSample s;
        s.name = name;
        s.kind = inst.kind;
        switch (inst.kind) {
          case MetricSample::Kind::kCounter:
            s.value = static_cast<double>(inst.counter->value);
            break;
          case MetricSample::Kind::kGauge:
            s.value = inst.gauge->value;
            break;
          case MetricSample::Kind::kHistogram:
            s.count = inst.histogram->count();
            s.sum = inst.histogram->sum();
            s.min = inst.histogram->min();
            s.max = inst.histogram->max();
            s.p50 = inst.histogram->percentile(50.0);
            s.p99 = inst.histogram->percentile(99.0);
            break;
        }
        snap.samples.push_back(std::move(s));
    }
    return snap;
}

void
MetricsRegistry::mergeFrom(const MetricsRegistry &other)
{
    for (const auto &[name, inst] : other.instruments_) {
        switch (inst.kind) {
          case MetricSample::Kind::kCounter:
            counter(name).add(inst.counter->value);
            break;
          case MetricSample::Kind::kGauge:
            gauge(name).set(inst.gauge->value);
            break;
          case MetricSample::Kind::kHistogram:
            histogram(name, inst.histogram->bounds())
                .merge(*inst.histogram);
            break;
        }
    }
}

void
MetricsRegistry::reset()
{
    for (auto &[name, inst] : instruments_) {
        switch (inst.kind) {
          case MetricSample::Kind::kCounter:
            inst.counter->value = 0;
            break;
          case MetricSample::Kind::kGauge:
            inst.gauge->value = 0.0;
            break;
          case MetricSample::Kind::kHistogram:
            inst.histogram->reset();
            break;
        }
    }
}

} // namespace telemetry
} // namespace chameleon
