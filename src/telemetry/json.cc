#include "telemetry/json.hh"

#include <cctype>
#include <cstdlib>

namespace chameleon {
namespace telemetry {

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (type != Type::kObject)
        return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
}

double
JsonValue::numberOr(const std::string &key, double fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isNumber() ? v->number : fallback;
}

std::string
JsonValue::stringOr(const std::string &key,
                    const std::string &fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isString() ? v->string : fallback;
}

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    std::optional<JsonValue> run()
    {
        skipWs();
        JsonValue v;
        if (!parseValue(v))
            return std::nullopt;
        skipWs();
        if (pos_ != text_.size())
            return std::nullopt; // trailing garbage
        return v;
    }

  private:
    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool literal(const char *word)
    {
        std::size_t n = 0;
        while (word[n] != '\0')
            ++n;
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool parseValue(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{':
            return parseObject(out);
          case '[':
            return parseArray(out);
          case '"':
            out.type = JsonValue::Type::kString;
            return parseString(out.string);
          case 't':
            out.type = JsonValue::Type::kBool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.type = JsonValue::Type::kBool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.type = JsonValue::Type::kNull;
            return literal("null");
          default:
            return parseNumber(out);
        }
    }

    bool parseObject(JsonValue &out)
    {
        out.type = JsonValue::Type::kObject;
        ++pos_; // '{'
        skipWs();
        if (consume('}'))
            return true;
        for (;;) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (!consume(':'))
                return false;
            skipWs();
            JsonValue member;
            if (!parseValue(member))
                return false;
            out.object.emplace(std::move(key), std::move(member));
            skipWs();
            if (consume('}'))
                return true;
            if (!consume(','))
                return false;
        }
    }

    bool parseArray(JsonValue &out)
    {
        out.type = JsonValue::Type::kArray;
        ++pos_; // '['
        skipWs();
        if (consume(']'))
            return true;
        for (;;) {
            skipWs();
            JsonValue element;
            if (!parseValue(element))
                return false;
            out.array.push_back(std::move(element));
            skipWs();
            if (consume(']'))
                return true;
            if (!consume(','))
                return false;
        }
    }

    bool parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return false;
            char esc = text_[pos_++];
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out.push_back(esc);
                break;
              case 'n':
                out.push_back('\n');
                break;
              case 't':
                out.push_back('\t');
                break;
              case 'r':
                out.push_back('\r');
                break;
              case 'b':
                out.push_back('\b');
                break;
              case 'f':
                out.push_back('\f');
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return false;
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return false;
                }
                // Our writers only escape control characters, so a
                // raw byte append covers everything we emit.
                out.push_back(static_cast<char>(code & 0xff));
                break;
              }
              default:
                return false;
            }
        }
        return false; // unterminated
    }

    bool parseNumber(JsonValue &out)
    {
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        double v = std::strtod(start, &end);
        if (end == start)
            return false;
        out.type = JsonValue::Type::kNumber;
        out.number = v;
        pos_ += static_cast<std::size_t>(end - start);
        return true;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

std::optional<JsonValue>
parseJson(const std::string &text)
{
    return Parser(text).run();
}

} // namespace telemetry
} // namespace chameleon
