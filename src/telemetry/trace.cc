#include "telemetry/trace.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace chameleon {
namespace telemetry {

namespace {

const char *
trackName(int tid)
{
    switch (tid) {
      case kTrackScheduler:
        return "scheduler";
      case kTrackExecutor:
        return "executor";
      case kTrackRepairFlow:
        return "repair-flows";
      case kTrackForeground:
        return "foreground-flows";
      case kTrackMonitor:
        return "monitor";
      case kTrackSim:
        return "sim";
      case kTrackFault:
        return "fault";
      default:
        return "track";
    }
}

void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
writeJsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        os << static_cast<long long>(v);
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    os << buf;
}

/** Seconds of simulated time -> Chrome-trace microseconds. */
double
toMicros(SimTime t)
{
    return t * 1e6;
}

void
writeArgs(std::ostream &os, const std::vector<TraceArg> &args)
{
    os << "{";
    bool first = true;
    for (const auto &a : args) {
        if (!first)
            os << ", ";
        first = false;
        writeJsonString(os, a.key);
        os << ": ";
        if (a.isString)
            writeJsonString(os, a.str);
        else
            writeJsonNumber(os, a.num);
    }
    os << "}";
}

void
writeEvent(std::ostream &os, const TraceEvent &ev)
{
    os << "{\"ph\": \"" << static_cast<char>(ev.phase)
       << "\", \"ts\": ";
    writeJsonNumber(os, toMicros(ev.ts));
    if (ev.phase == TraceEvent::Phase::kComplete) {
        os << ", \"dur\": ";
        writeJsonNumber(os, toMicros(ev.dur));
    }
    os << ", \"pid\": " << ev.pid << ", \"tid\": " << ev.tid;
    if (!ev.cat.empty()) {
        os << ", \"cat\": ";
        writeJsonString(os, ev.cat);
    }
    os << ", \"name\": ";
    writeJsonString(os, ev.name);
    if (!ev.args.empty()) {
        os << ", \"args\": ";
        writeArgs(os, ev.args);
    }
    os << "}";
}

void
writeMetaEvent(std::ostream &os, const char *name, int pid, int tid,
               const std::string &value)
{
    os << "{\"ph\": \"M\", \"pid\": " << pid << ", \"tid\": " << tid
       << ", \"name\": \"" << name << "\", \"args\": {\"name\": ";
    writeJsonString(os, value);
    os << "}}";
}

} // namespace

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity)
{
    CHAMELEON_ASSERT(capacity_ > 0, "tracer needs capacity");
    events_.reserve(std::min<std::size_t>(capacity_, 4096));
    runNames_.push_back("run-0");
}

int
Tracer::beginRun(std::string name)
{
    // The initial pid 0 is claimed lazily: a beginRun before any
    // event simply names it instead of opening a second run.
    if (!events_.empty() || runNames_.size() > 1 ||
        runNames_[0] != "run-0") {
        ++pid_;
        runNames_.push_back(std::move(name));
    } else {
        runNames_[0] = std::move(name);
    }
    return pid_;
}

void
Tracer::push(TraceEvent ev)
{
    if (events_.size() < capacity_) {
        events_.push_back(std::move(ev));
        return;
    }
    full_ = true;
    events_[head_] = std::move(ev);
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
}

void
Tracer::begin(SimTime ts, Track track, std::string cat,
              std::string name, std::initializer_list<TraceArg> args)
{
    TraceEvent ev;
    ev.phase = TraceEvent::Phase::kBegin;
    ev.ts = ts;
    ev.pid = pid_;
    ev.tid = track;
    ev.cat = std::move(cat);
    ev.name = std::move(name);
    ev.args.assign(args.begin(), args.end());
    push(std::move(ev));
}

void
Tracer::end(SimTime ts, Track track)
{
    TraceEvent ev;
    ev.phase = TraceEvent::Phase::kEnd;
    ev.ts = ts;
    ev.pid = pid_;
    ev.tid = track;
    push(std::move(ev));
}

void
Tracer::complete(SimTime ts, SimTime dur, Track track, std::string cat,
                 std::string name,
                 std::initializer_list<TraceArg> args)
{
    TraceEvent ev;
    ev.phase = TraceEvent::Phase::kComplete;
    ev.ts = ts;
    ev.dur = dur;
    ev.pid = pid_;
    ev.tid = track;
    ev.cat = std::move(cat);
    ev.name = std::move(name);
    ev.args.assign(args.begin(), args.end());
    push(std::move(ev));
}

void
Tracer::instant(SimTime ts, Track track, std::string cat,
                std::string name, std::initializer_list<TraceArg> args)
{
    TraceEvent ev;
    ev.phase = TraceEvent::Phase::kInstant;
    ev.ts = ts;
    ev.pid = pid_;
    ev.tid = track;
    ev.cat = std::move(cat);
    ev.name = std::move(name);
    ev.args.assign(args.begin(), args.end());
    push(std::move(ev));
}

void
Tracer::counter(SimTime ts, Track track, std::string name,
                std::initializer_list<TraceArg> series)
{
    TraceEvent ev;
    ev.phase = TraceEvent::Phase::kCounter;
    ev.ts = ts;
    ev.pid = pid_;
    ev.tid = track;
    ev.name = std::move(name);
    ev.args.assign(series.begin(), series.end());
    push(std::move(ev));
}

std::vector<TraceEvent>
Tracer::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(events_.size());
    if (full_) {
        for (std::size_t i = head_; i < events_.size(); ++i)
            out.push_back(events_[i]);
        for (std::size_t i = 0; i < head_; ++i)
            out.push_back(events_[i]);
    } else {
        out = events_;
    }
    return out;
}

void
Tracer::clear()
{
    events_.clear();
    head_ = 0;
    full_ = false;
    dropped_ = 0;
}

void
Tracer::mergeFrom(const Tracer &other)
{
    const auto evs = other.events();
    // An untouched tracer contributes nothing (merging it must not
    // burn a pid on the anonymous "run-0").
    if (evs.empty() && other.dropped_ == 0 &&
        other.runNames_.size() == 1 && other.runNames_[0] == "run-0")
        return;
    std::vector<int> pidMap(other.runNames_.size(), 0);
    for (std::size_t p = 0; p < other.runNames_.size(); ++p) {
        // Mirror beginRun()'s lazy pid-0 claim so merging isolated
        // tracers in completion order reproduces the pid layout of
        // sequential runs sharing one tracer.
        if (p == 0 && events_.empty() && runNames_.size() == 1 &&
            runNames_[0] == "run-0") {
            runNames_[0] = other.runNames_[0];
            pidMap[0] = 0;
        } else {
            ++pid_;
            runNames_.push_back(other.runNames_[p]);
            pidMap[p] = pid_;
        }
    }
    for (const auto &ev : evs) {
        TraceEvent copy = ev;
        copy.pid = pidMap[static_cast<std::size_t>(ev.pid)];
        push(std::move(copy));
    }
    dropped_ += other.dropped_;
}

void
Tracer::writeChromeTrace(std::ostream &os) const
{
    auto evs = events();
    os << "{\"traceEvents\": [\n";
    bool first = true;
    // Name every (pid, tid) pair actually used plus the runs.
    std::vector<std::pair<int, int>> seen;
    for (const auto &ev : evs) {
        auto key = std::make_pair(ev.pid, ev.tid);
        if (std::find(seen.begin(), seen.end(), key) == seen.end())
            seen.push_back(key);
    }
    for (int p = 0; p <= pid_; ++p) {
        if (!first)
            os << ",\n";
        first = false;
        writeMetaEvent(os, "process_name", p, 0,
                       runNames_[static_cast<std::size_t>(p)]);
    }
    for (const auto &[p, t] : seen) {
        os << ",\n";
        writeMetaEvent(os, "thread_name", p, t, trackName(t));
    }
    for (const auto &ev : evs) {
        if (!first)
            os << ",\n";
        first = false;
        writeEvent(os, ev);
    }
    os << "\n]}\n";
}

void
Tracer::writeJsonl(std::ostream &os) const
{
    for (const auto &ev : events()) {
        writeEvent(os, ev);
        os << "\n";
    }
}

void
Tracer::writePhaseCsv(std::ostream &os) const
{
    os << "run,phase,start_s,end_s,duration_s,dispatches,stragglers,"
          "retunes,reorders\n";
    struct Row
    {
        int pid = 0;
        double phase = 0.0;
        SimTime start = 0.0;
        SimTime end = 0.0;
        int dispatches = 0;
        int stragglers = 0;
        int retunes = 0;
        int reorders = 0;
        bool open = true;
    };
    std::vector<Row> rows;
    // One scheduler track per run; spans do not nest on it, so the
    // last open row of a pid is the phase an instant belongs to.
    auto openRow = [&rows](int pid) -> Row * {
        for (auto it = rows.rbegin(); it != rows.rend(); ++it)
            if (it->pid == pid)
                return it->open ? &*it : nullptr;
        return nullptr;
    };
    for (const auto &ev : events()) {
        if (ev.tid != kTrackScheduler)
            continue;
        if (ev.phase == TraceEvent::Phase::kBegin &&
            ev.name == "phase") {
            Row row;
            row.pid = ev.pid;
            row.start = row.end = ev.ts;
            for (const auto &a : ev.args)
                if (a.key == "index")
                    row.phase = a.num;
            rows.push_back(row);
        } else if (ev.phase == TraceEvent::Phase::kEnd) {
            if (Row *row = openRow(ev.pid)) {
                row->end = ev.ts;
                row->open = false;
            }
        } else if (ev.phase == TraceEvent::Phase::kInstant) {
            Row *row = openRow(ev.pid);
            if (!row)
                continue;
            row->end = std::max(row->end, ev.ts);
            if (ev.name == "dispatch")
                ++row->dispatches;
            else if (ev.name == "straggler")
                ++row->stragglers;
            else if (ev.name == "retune")
                ++row->retunes;
            else if (ev.name == "reorder")
                ++row->reorders;
        }
    }
    for (const auto &row : rows) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%d,%.0f,%.3f,%.3f,%.3f,%d,%d,%d,%d\n", row.pid,
                      row.phase, row.start, row.end,
                      row.end - row.start, row.dispatches,
                      row.stragglers, row.retunes, row.reorders);
        os << buf;
    }
}

} // namespace telemetry
} // namespace chameleon
