/**
 * @file
 * Telemetry access — per-run contexts over process-wide defaults —
 * and the guarded instrumentation macro.
 *
 * Instrumentation sites throughout the simulator use
 * CHAMELEON_TELEM(...) to record events; the wrapped statements run
 * only when telemetry is enabled at runtime, so a disabled build's
 * hot paths pay a single predictable branch (and nothing at all when
 * compiled out with -DCHAMELEON_TELEMETRY_DISABLED). Metric handles
 * (Counter/Gauge/Histogram references) are live regardless — an
 * increment is cheaper than the branch would be worth.
 *
 * tracer()/metrics() resolve to the calling thread's current context:
 * normally the process-wide tracer and registry, but while a
 * ScopedTelemetry is alive on the thread they resolve to that run's
 * isolated instances instead. This is how a Runtime keeps concurrent
 * experiments from interleaving events and counters without touching
 * any instrumentation site. Handles that must span runs (the GF
 * kernel byte counters) resolve explicitly through processMetrics().
 *
 * Output sinks are registered once (setTraceOutput/setMetricsOutput)
 * and flushed by flush(). flush() is also invoked from the
 * util/logging panic path and from Simulator teardown, so partial
 * traces survive a crashed or asserting run.
 */

#ifndef CHAMELEON_TELEMETRY_TELEMETRY_HH_
#define CHAMELEON_TELEMETRY_TELEMETRY_HH_

#include <atomic>
#include <string>

#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace chameleon {
namespace telemetry {

namespace detail {
/** Runtime gate, read inline on every instrumented hot path. */
extern std::atomic<bool> gEnabled;
} // namespace detail

/** True when event tracing is on. */
inline bool
enabled()
{
    return detail::gEnabled.load(std::memory_order_relaxed);
}

/** Turns event tracing on/off (metrics always accumulate). */
void setEnabled(bool on);

/**
 * One run's isolated telemetry: a private tracer and metrics
 * registry. A Runtime owns one per experiment and installs it with
 * ScopedTelemetry for the duration of the run, then publishes it with
 * mergeIntoProcess() once results are emitted.
 */
struct RunTelemetry
{
    Tracer tracer;
    MetricsRegistry metrics;
};

/**
 * RAII installation of a RunTelemetry as the calling thread's current
 * context: while alive, tracer()/metrics() on this thread resolve to
 * it instead of the process-wide instances. Scopes nest (destruction
 * restores the previous context); the RunTelemetry must outlive the
 * scope. Thread-local: installing on a sweep worker never affects
 * other workers or the caller.
 */
class ScopedTelemetry
{
  public:
    explicit ScopedTelemetry(RunTelemetry &run);
    ~ScopedTelemetry();
    ScopedTelemetry(const ScopedTelemetry &) = delete;
    ScopedTelemetry &operator=(const ScopedTelemetry &) = delete;

  private:
    RunTelemetry *prev_;
};

/** The calling thread's tracer (run context if installed). */
Tracer &tracer();

/** The calling thread's metrics registry (run context if installed). */
MetricsRegistry &metrics();

/** The process-wide tracer, ignoring any installed run context. */
Tracer &processTracer();

/** The process-wide registry, ignoring any installed run context. */
MetricsRegistry &processMetrics();

/**
 * Publishes a finished run's isolated telemetry into the process-wide
 * tracer and registry (serialized against flush() and other merges).
 * Call in a deterministic order — cell order, not completion order —
 * so the merged output is independent of worker scheduling.
 */
void mergeIntoProcess(const RunTelemetry &run);

/**
 * Registers `path` as the Chrome-trace output and installs the
 * crash-flush hook. Implies setEnabled(true).
 */
void setTraceOutput(std::string path);

/** JSONL event-stream output (same events as the Chrome sink). */
void setJsonlOutput(std::string path);

/** Per-phase CSV timeline output. */
void setPhaseCsvOutput(std::string path);

/** Metrics-snapshot JSON output. */
void setMetricsOutput(std::string path);

/**
 * Writes every configured output from the process-wide buffers.
 * Idempotent (rewrites whole files), cheap when nothing is
 * configured, safe to call from any thread, and re-entrancy guarded
 * so a panic mid-flush cannot recurse.
 */
void flush();

} // namespace telemetry
} // namespace chameleon

/**
 * Runs the wrapped statement(s) only when tracing is enabled.
 * Usage: CHAMELEON_TELEM(tracer().instant(now, kTrackScheduler,
 *                                         "repair", "straggler"));
 */
#ifndef CHAMELEON_TELEMETRY_DISABLED
#define CHAMELEON_TELEM(...)                                          \
    do {                                                              \
        if (::chameleon::telemetry::enabled()) {                      \
            __VA_ARGS__;                                              \
        }                                                             \
    } while (0)
#else
#define CHAMELEON_TELEM(...)                                          \
    do {                                                              \
    } while (0)
#endif

#endif // CHAMELEON_TELEMETRY_TELEMETRY_HH_
