/**
 * @file
 * Process-wide telemetry access and the guarded instrumentation
 * macro.
 *
 * Instrumentation sites throughout the simulator use
 * CHAMELEON_TELEM(...) to record events; the wrapped statements run
 * only when telemetry is enabled at runtime, so a disabled build's
 * hot paths pay a single predictable branch (and nothing at all when
 * compiled out with -DCHAMELEON_TELEMETRY_DISABLED). Metric handles
 * (Counter/Gauge/Histogram references) are live regardless — an
 * increment is cheaper than the branch would be worth.
 *
 * Output sinks are registered once (setTraceOutput/setMetricsOutput)
 * and flushed by flush(). flush() is also invoked from the
 * util/logging panic path and from Simulator teardown, so partial
 * traces survive a crashed or asserting run.
 */

#ifndef CHAMELEON_TELEMETRY_TELEMETRY_HH_
#define CHAMELEON_TELEMETRY_TELEMETRY_HH_

#include <string>

#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace chameleon {
namespace telemetry {

namespace detail {
/** Runtime gate, read inline on every instrumented hot path. */
extern bool gEnabled;
} // namespace detail

/** True when event tracing is on. */
inline bool enabled() { return detail::gEnabled; }

/** Turns event tracing on/off (metrics always accumulate). */
void setEnabled(bool on);

/** The process-wide tracer. */
Tracer &tracer();

/** The process-wide metrics registry. */
MetricsRegistry &metrics();

/**
 * Registers `path` as the Chrome-trace output and installs the
 * crash-flush hook. Implies setEnabled(true).
 */
void setTraceOutput(std::string path);

/** JSONL event-stream output (same events as the Chrome sink). */
void setJsonlOutput(std::string path);

/** Per-phase CSV timeline output. */
void setPhaseCsvOutput(std::string path);

/** Metrics-snapshot JSON output. */
void setMetricsOutput(std::string path);

/**
 * Writes every configured output from the current buffer state.
 * Idempotent (rewrites whole files), cheap when nothing is
 * configured, and re-entrancy guarded so a panic mid-flush cannot
 * recurse.
 */
void flush();

} // namespace telemetry
} // namespace chameleon

/**
 * Runs the wrapped statement(s) only when tracing is enabled.
 * Usage: CHAMELEON_TELEM(tracer().instant(now, kTrackScheduler,
 *                                         "repair", "straggler"));
 */
#ifndef CHAMELEON_TELEMETRY_DISABLED
#define CHAMELEON_TELEM(...)                                          \
    do {                                                              \
        if (::chameleon::telemetry::enabled()) {                      \
            __VA_ARGS__;                                              \
        }                                                             \
    } while (0)
#else
#define CHAMELEON_TELEM(...)                                          \
    do {                                                              \
    } while (0)
#endif

#endif // CHAMELEON_TELEMETRY_TELEMETRY_HH_
