#include "telemetry/telemetry.hh"

#include <fstream>

#include "util/logging.hh"

namespace chameleon {
namespace telemetry {

namespace detail {
bool gEnabled = false;
} // namespace detail

namespace {

struct Outputs
{
    std::string tracePath;
    std::string jsonlPath;
    std::string phaseCsvPath;
    std::string metricsPath;
    bool hookInstalled = false;
    bool flushing = false;
};

Outputs &
outputs()
{
    static Outputs out;
    return out;
}

void
installCrashFlush()
{
    auto &out = outputs();
    if (out.hookInstalled)
        return;
    out.hookInstalled = true;
    chameleon::detail::setPanicHook([] { flush(); });
}

} // namespace

void
setEnabled(bool on)
{
    detail::gEnabled = on;
}

Tracer &
tracer()
{
    static Tracer t;
    return t;
}

MetricsRegistry &
metrics()
{
    static MetricsRegistry r;
    return r;
}

void
setTraceOutput(std::string path)
{
    outputs().tracePath = std::move(path);
    installCrashFlush();
    setEnabled(true);
}

void
setJsonlOutput(std::string path)
{
    outputs().jsonlPath = std::move(path);
    installCrashFlush();
    setEnabled(true);
}

void
setPhaseCsvOutput(std::string path)
{
    outputs().phaseCsvPath = std::move(path);
    installCrashFlush();
    setEnabled(true);
}

void
setMetricsOutput(std::string path)
{
    outputs().metricsPath = std::move(path);
    installCrashFlush();
}

void
flush()
{
    auto &out = outputs();
    if (out.flushing)
        return;
    out.flushing = true;
    if (!out.tracePath.empty()) {
        std::ofstream os(out.tracePath);
        if (os)
            tracer().writeChromeTrace(os);
    }
    if (!out.jsonlPath.empty()) {
        std::ofstream os(out.jsonlPath);
        if (os)
            tracer().writeJsonl(os);
    }
    if (!out.phaseCsvPath.empty()) {
        std::ofstream os(out.phaseCsvPath);
        if (os)
            tracer().writePhaseCsv(os);
    }
    if (!out.metricsPath.empty()) {
        std::ofstream os(out.metricsPath);
        if (os)
            metrics().snapshot().writeJson(os);
    }
    out.flushing = false;
}

} // namespace telemetry
} // namespace chameleon
