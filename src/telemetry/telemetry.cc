#include "telemetry/telemetry.hh"

#include <fstream>
#include <mutex>

#include "util/logging.hh"

namespace chameleon {
namespace telemetry {

namespace detail {
std::atomic<bool> gEnabled{false};
} // namespace detail

namespace {

/** The thread's installed run context; null → process-wide. */
thread_local RunTelemetry *tCurrent = nullptr;

struct Outputs
{
    std::string tracePath;
    std::string jsonlPath;
    std::string phaseCsvPath;
    std::string metricsPath;
    bool hookInstalled = false;
};

/**
 * Serializes output registration, flush(), and mergeIntoProcess()
 * against each other; any thread may flush (Simulator teardown runs
 * on sweep workers). Recursive because a panic while the lock is held
 * re-enters flush() via the crash hook on the same thread.
 */
std::recursive_mutex &
sinkMutex()
{
    static std::recursive_mutex m;
    return m;
}

Outputs &
outputs()
{
    static Outputs out;
    return out;
}

void
installCrashFlush()
{
    auto &out = outputs();
    if (out.hookInstalled)
        return;
    out.hookInstalled = true;
    chameleon::detail::setPanicHook([] { flush(); });
}

} // namespace

void
setEnabled(bool on)
{
    detail::gEnabled.store(on, std::memory_order_relaxed);
}

ScopedTelemetry::ScopedTelemetry(RunTelemetry &run)
    : prev_(tCurrent)
{
    tCurrent = &run;
}

ScopedTelemetry::~ScopedTelemetry()
{
    tCurrent = prev_;
}

Tracer &
tracer()
{
    return tCurrent ? tCurrent->tracer : processTracer();
}

MetricsRegistry &
metrics()
{
    return tCurrent ? tCurrent->metrics : processMetrics();
}

Tracer &
processTracer()
{
    static Tracer t;
    return t;
}

MetricsRegistry &
processMetrics()
{
    static MetricsRegistry r;
    return r;
}

void
mergeIntoProcess(const RunTelemetry &run)
{
    std::lock_guard<std::recursive_mutex> lock(sinkMutex());
    processTracer().mergeFrom(run.tracer);
    processMetrics().mergeFrom(run.metrics);
}

void
setTraceOutput(std::string path)
{
    std::lock_guard<std::recursive_mutex> lock(sinkMutex());
    outputs().tracePath = std::move(path);
    installCrashFlush();
    setEnabled(true);
}

void
setJsonlOutput(std::string path)
{
    std::lock_guard<std::recursive_mutex> lock(sinkMutex());
    outputs().jsonlPath = std::move(path);
    installCrashFlush();
    setEnabled(true);
}

void
setPhaseCsvOutput(std::string path)
{
    std::lock_guard<std::recursive_mutex> lock(sinkMutex());
    outputs().phaseCsvPath = std::move(path);
    installCrashFlush();
    setEnabled(true);
}

void
setMetricsOutput(std::string path)
{
    std::lock_guard<std::recursive_mutex> lock(sinkMutex());
    outputs().metricsPath = std::move(path);
    installCrashFlush();
}

void
flush()
{
    // Thread-local so a panic mid-flush cannot recurse on this
    // thread, while other threads' flushes still serialize normally
    // on the sink mutex.
    thread_local bool flushing = false;
    if (flushing)
        return;
    flushing = true;
    {
        std::lock_guard<std::recursive_mutex> lock(sinkMutex());
        auto &out = outputs();
        if (!out.tracePath.empty()) {
            std::ofstream os(out.tracePath);
            if (os)
                processTracer().writeChromeTrace(os);
        }
        if (!out.jsonlPath.empty()) {
            std::ofstream os(out.jsonlPath);
            if (os)
                processTracer().writeJsonl(os);
        }
        if (!out.phaseCsvPath.empty()) {
            std::ofstream os(out.phaseCsvPath);
            if (os)
                processTracer().writePhaseCsv(os);
        }
        if (!out.metricsPath.empty()) {
            std::ofstream os(out.metricsPath);
            if (os)
                processMetrics().snapshot().writeJson(os);
        }
    }
    flushing = false;
}

} // namespace telemetry
} // namespace chameleon
