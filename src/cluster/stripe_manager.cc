#include "cluster/stripe_manager.hh"

#include <algorithm>

#include "util/logging.hh"

namespace chameleon {
namespace cluster {

StripeManager::StripeManager(
    std::shared_ptr<const ec::ErasureCode> code, int num_nodes)
    : code_(std::move(code)), numNodes_(num_nodes),
      nodeFailed_(static_cast<std::size_t>(num_nodes), false)
{
    CHAMELEON_ASSERT(code_ != nullptr, "null code");
    CHAMELEON_ASSERT(num_nodes >= code_->n(),
                     "cluster of ", num_nodes, " nodes cannot host ",
                     code_->name(), " stripes (need ", code_->n(), ")");
}

void
StripeManager::createStripes(int count, Rng &rng)
{
    CHAMELEON_ASSERT(count >= 0, "negative stripe count");
    const int n = code_->n();
    for (int s = 0; s < count; ++s) {
        // Uniform random placement: partial Fisher-Yates over nodes.
        std::vector<NodeId> nodes(static_cast<std::size_t>(numNodes_));
        for (int i = 0; i < numNodes_; ++i)
            nodes[static_cast<std::size_t>(i)] = i;
        for (int i = 0; i < n; ++i) {
            auto j = static_cast<std::size_t>(i) +
                     rng.below(nodes.size() -
                               static_cast<std::size_t>(i));
            std::swap(nodes[static_cast<std::size_t>(i)], nodes[j]);
        }
        nodes.resize(static_cast<std::size_t>(n));
        placement_.push_back(std::move(nodes));
        lost_.emplace_back(static_cast<std::size_t>(n), false);
    }
}

void
StripeManager::checkStripe(StripeId stripe) const
{
    CHAMELEON_ASSERT(stripe >= 0 &&
                     static_cast<std::size_t>(stripe) <
                         placement_.size(),
                     "bad stripe id ", stripe);
}

NodeId
StripeManager::location(StripeId stripe, ChunkIndex chunk) const
{
    checkStripe(stripe);
    CHAMELEON_ASSERT(chunk >= 0 && chunk < code_->n(),
                     "bad chunk index ", chunk);
    return placement_[static_cast<std::size_t>(stripe)]
                     [static_cast<std::size_t>(chunk)];
}

void
StripeManager::relocate(StripeId stripe, ChunkIndex chunk, NodeId node)
{
    checkStripe(stripe);
    CHAMELEON_ASSERT(node >= 0 && node < numNodes_, "bad node ", node);
    // Enforce the one-chunk-per-node invariant.
    const auto &nodes = placement_[static_cast<std::size_t>(stripe)];
    for (ChunkIndex c = 0; c < code_->n(); ++c) {
        if (c != chunk && nodes[static_cast<std::size_t>(c)] == node &&
            !lost_[static_cast<std::size_t>(stripe)]
                  [static_cast<std::size_t>(c)]) {
            CHAMELEON_PANIC("relocating chunk ", chunk, " of stripe ",
                            stripe, " onto node ", node,
                            " which hosts live chunk ", c);
        }
    }
    placement_[static_cast<std::size_t>(stripe)]
              [static_cast<std::size_t>(chunk)] = node;
}

bool
StripeManager::chunkLost(StripeId stripe, ChunkIndex chunk) const
{
    checkStripe(stripe);
    return lost_[static_cast<std::size_t>(stripe)]
                [static_cast<std::size_t>(chunk)];
}

void
StripeManager::markLost(StripeId stripe, ChunkIndex chunk)
{
    checkStripe(stripe);
    lost_[static_cast<std::size_t>(stripe)]
         [static_cast<std::size_t>(chunk)] = true;
}

void
StripeManager::markRepaired(StripeId stripe, ChunkIndex chunk)
{
    checkStripe(stripe);
    lost_[static_cast<std::size_t>(stripe)]
         [static_cast<std::size_t>(chunk)] = false;
}

std::vector<FailedChunk>
StripeManager::failNode(NodeId node)
{
    CHAMELEON_ASSERT(node >= 0 && node < numNodes_, "bad node ", node);
    CHAMELEON_ASSERT(!nodeFailed_[static_cast<std::size_t>(node)],
                     "node ", node, " already failed");
    nodeFailed_[static_cast<std::size_t>(node)] = true;
    std::vector<FailedChunk> out;
    for (StripeId s = 0; s < stripeCount(); ++s) {
        for (ChunkIndex c = 0; c < code_->n(); ++c) {
            if (location(s, c) == node && !chunkLost(s, c)) {
                markLost(s, c);
                out.push_back(FailedChunk{s, c});
            }
        }
    }
    return out;
}

bool
StripeManager::nodeFailed(NodeId node) const
{
    CHAMELEON_ASSERT(node >= 0 && node < numNodes_, "bad node ", node);
    return nodeFailed_[static_cast<std::size_t>(node)];
}

void
StripeManager::rejoinNode(NodeId node)
{
    CHAMELEON_ASSERT(node >= 0 && node < numNodes_, "bad node ", node);
    CHAMELEON_ASSERT(nodeFailed_[static_cast<std::size_t>(node)],
                     "node ", node, " has not failed");
    nodeFailed_[static_cast<std::size_t>(node)] = false;
}

std::vector<FailedChunk>
StripeManager::lostChunks() const
{
    std::vector<FailedChunk> out;
    for (StripeId s = 0; s < stripeCount(); ++s)
        for (ChunkIndex c = 0; c < code_->n(); ++c)
            if (chunkLost(s, c))
                out.push_back(FailedChunk{s, c});
    return out;
}

std::vector<ChunkIndex>
StripeManager::availableChunks(StripeId stripe) const
{
    checkStripe(stripe);
    std::vector<ChunkIndex> out;
    for (ChunkIndex c = 0; c < code_->n(); ++c)
        if (!chunkLost(stripe, c))
            out.push_back(c);
    return out;
}

std::vector<NodeId>
StripeManager::candidateDestinations(StripeId stripe) const
{
    checkStripe(stripe);
    std::vector<bool> hosting(static_cast<std::size_t>(numNodes_),
                              false);
    for (ChunkIndex c = 0; c < code_->n(); ++c) {
        if (!chunkLost(stripe, c))
            hosting[static_cast<std::size_t>(location(stripe, c))] =
                true;
    }
    std::vector<NodeId> out;
    for (NodeId node = 0; node < numNodes_; ++node) {
        if (!hosting[static_cast<std::size_t>(node)] &&
            !nodeFailed_[static_cast<std::size_t>(node)])
            out.push_back(node);
    }
    return out;
}

std::vector<FailedChunk>
StripeManager::chunksOnNode(NodeId node) const
{
    std::vector<FailedChunk> out;
    for (StripeId s = 0; s < stripeCount(); ++s)
        for (ChunkIndex c = 0; c < code_->n(); ++c)
            if (location(s, c) == node)
                out.push_back(FailedChunk{s, c});
    return out;
}

} // namespace cluster
} // namespace chameleon
