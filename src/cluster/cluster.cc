#include "cluster/cluster.hh"

#include "util/logging.hh"

namespace chameleon {
namespace cluster {

Cluster::Cluster(sim::Simulator &sim, const ClusterConfig &config)
    : sim_(sim), config_(config), net_(sim, config.usageWindow)
{
    CHAMELEON_ASSERT(config.numNodes >= 1, "cluster needs nodes");
    CHAMELEON_ASSERT(config.numClients >= 0, "negative client count");
    down_.assign(static_cast<std::size_t>(config.numNodes), false);
    for (int i = 0; i < config.numNodes; ++i) {
        const std::string base = "node" + std::to_string(i);
        uplinks_.push_back(net_.addResource(base + ".up",
                                            config.uplinkBw));
        downlinks_.push_back(net_.addResource(base + ".down",
                                              config.downlinkBw));
        disks_.push_back(net_.addResource(base + ".disk",
                                          config.diskBw));
    }
    for (int c = 0; c < config.numClients; ++c) {
        const std::string base = "client" + std::to_string(c);
        clientUplinks_.push_back(net_.addResource(base + ".up",
                                                  config.uplinkBw));
        clientDownlinks_.push_back(net_.addResource(base + ".down",
                                                    config.downlinkBw));
    }
    if (config.racks > 0) {
        CHAMELEON_ASSERT(config.rackOversubscription >= 1.0,
                         "oversubscription must be >= 1");
        for (int r = 0; r < config.racks; ++r) {
            int members = (config.numNodes - r + config.racks - 1) /
                          config.racks;
            Rate agg = static_cast<double>(members) *
                       config.uplinkBw / config.rackOversubscription;
            const std::string base = "rack" + std::to_string(r);
            rackUplinks_.push_back(
                net_.addResource(base + ".up", agg));
            rackDownlinks_.push_back(
                net_.addResource(base + ".down", agg));
        }
    }
}

void
Cluster::markNodeDown(NodeId node)
{
    checkNode(node);
    CHAMELEON_ASSERT(!down_[static_cast<std::size_t>(node)],
                     "node ", node, " already down");
    down_[static_cast<std::size_t>(node)] = true;
}

void
Cluster::markNodeUp(NodeId node)
{
    checkNode(node);
    CHAMELEON_ASSERT(down_[static_cast<std::size_t>(node)],
                     "node ", node, " is not down");
    down_[static_cast<std::size_t>(node)] = false;
}

bool
Cluster::nodeDown(NodeId node) const
{
    checkNode(node);
    return down_[static_cast<std::size_t>(node)];
}

int
Cluster::rackOf(NodeId node) const
{
    checkNode(node);
    if (config_.racks <= 0)
        return -1;
    return node % config_.racks;
}

sim::ResourceId
Cluster::rackUplink(int rack) const
{
    CHAMELEON_ASSERT(rack >= 0 &&
                     rack < static_cast<int>(rackUplinks_.size()),
                     "bad rack ", rack);
    return rackUplinks_[static_cast<std::size_t>(rack)];
}

sim::ResourceId
Cluster::rackDownlink(int rack) const
{
    CHAMELEON_ASSERT(rack >= 0 &&
                     rack < static_cast<int>(rackDownlinks_.size()),
                     "bad rack ", rack);
    return rackDownlinks_[static_cast<std::size_t>(rack)];
}

void
Cluster::checkNode(NodeId node) const
{
    CHAMELEON_ASSERT(node >= 0 && node < config_.numNodes,
                     "bad node id ", node);
}

void
Cluster::checkClient(int client) const
{
    CHAMELEON_ASSERT(client >= 0 && client < config_.numClients,
                     "bad client id ", client);
}

sim::ResourceId
Cluster::uplink(NodeId node) const
{
    checkNode(node);
    return uplinks_[static_cast<std::size_t>(node)];
}

sim::ResourceId
Cluster::downlink(NodeId node) const
{
    checkNode(node);
    return downlinks_[static_cast<std::size_t>(node)];
}

sim::ResourceId
Cluster::disk(NodeId node) const
{
    checkNode(node);
    return disks_[static_cast<std::size_t>(node)];
}

sim::ResourceId
Cluster::clientUplink(int client) const
{
    checkClient(client);
    return clientUplinks_[static_cast<std::size_t>(client)];
}

sim::ResourceId
Cluster::clientDownlink(int client) const
{
    checkClient(client);
    return clientDownlinks_[static_cast<std::size_t>(client)];
}

std::vector<sim::ResourceId>
Cluster::transferPath(NodeId from, NodeId to, bool read_disk,
                      bool write_disk) const
{
    checkNode(from);
    checkNode(to);
    CHAMELEON_ASSERT(from != to, "self-transfer from node ", from);
    std::vector<sim::ResourceId> path;
    if (read_disk)
        path.push_back(disk(from));
    path.push_back(uplink(from));
    int from_rack = rackOf(from);
    int to_rack = rackOf(to);
    if (from_rack >= 0 && from_rack != to_rack) {
        path.push_back(rackUplink(from_rack));
        path.push_back(rackDownlink(to_rack));
    }
    path.push_back(downlink(to));
    if (write_disk)
        path.push_back(disk(to));
    return path;
}

std::vector<sim::ResourceId>
Cluster::clientReadPath(NodeId node, int client) const
{
    std::vector<sim::ResourceId> path = {disk(node), uplink(node)};
    // Clients sit outside the racks: reads leave through the node's
    // rack aggregation uplink.
    int rack = rackOf(node);
    if (rack >= 0)
        path.push_back(rackUplink(rack));
    path.push_back(clientDownlink(client));
    return path;
}

std::vector<sim::ResourceId>
Cluster::clientWritePath(int client, NodeId node) const
{
    std::vector<sim::ResourceId> path = {clientUplink(client)};
    int rack = rackOf(node);
    if (rack >= 0)
        path.push_back(rackDownlink(rack));
    path.push_back(downlink(node));
    path.push_back(disk(node));
    return path;
}

} // namespace cluster
} // namespace chameleon
