/**
 * @file
 * Prioritized, resource-limited repair admission queue.
 *
 * The background ReplicatorScanner classifies stripes and pushes
 * repair work here; the repair layer (ChameleonScheduler /
 * RepairSession) receives work only when it is *admissible* under
 * two limits modelled on production block managers:
 *
 *   - a cluster-wide in-flight job cap (maxTotalJobs), and
 *   - a per-node in-flight cap (maxNodeJobs) charged against the
 *     helper nodes a repair will read from.
 *
 * Priority tiers are strict: kDataLossRisk drains before kDegraded,
 * which drains before kMisplaced — pop() never returns a lower-tier
 * entry while any higher-tier entry is admissible (the property the
 * scale fuzz test pins). Within a tier, admission is FIFO except
 * that entries whose helper nodes are saturated are skipped until a
 * completion releases their charges.
 *
 * Entries deduplicate on (stripe, chunk): re-pushing a queued chunk
 * is a no-op unless the new tier is *higher* priority, in which
 * case the entry escalates (the stale lower-tier slot is dropped
 * lazily). Whole-stripe placement work (misplaced stripes) uses the
 * kBalancerChunk sentinel as its chunk index.
 */

#ifndef CHAMELEON_CLUSTER_REPAIR_QUEUE_HH_
#define CHAMELEON_CLUSTER_REPAIR_QUEUE_HH_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "cluster/stripe_manager.hh"
#include "util/types.hh"

namespace chameleon {
namespace cluster {

/** Repair priority; lower value = more urgent. */
enum class RepairTier : uint8_t
{
    /** Stripe within riskMargin of losing data (or already past
     * the decode minimum — the session settles unrecoverability). */
    kDataLossRisk = 0,
    /** Lost chunks with a comfortable survivor margin. */
    kDegraded = 1,
    /** All chunks live but placement violates policy. */
    kMisplaced = 2,
};

inline constexpr int kRepairTiers = 3;

/** Chunk index sentinel for whole-stripe (misplaced) entries. */
inline constexpr ChunkIndex kBalancerChunk = -1;

struct RepairQueueConfig
{
    /** Cluster-wide cap on admitted-but-unfinished jobs. */
    int maxTotalJobs = 256;
    /** Per-node cap on jobs charged to a node's uplink. */
    int maxNodeJobs = 4;

    bool operator==(const RepairQueueConfig &o) const = default;
};

/** An admitted queue entry. */
struct AdmittedRepair
{
    FailedChunk chunk;
    RepairTier tier = RepairTier::kDegraded;
};

/** Priority-tiered admission queue; see file comment. */
class RepairQueue
{
  public:
    RepairQueue(StripeManager &stripes, RepairQueueConfig config);

    /**
     * Enqueues a repair (dedup on (stripe, chunk)). Re-pushing at a
     * strictly higher tier escalates a still-queued entry.
     * @return true if the queue state changed.
     */
    bool push(FailedChunk chunk, RepairTier tier);

    /**
     * Admits the most urgent admissible entry, charging its helper
     * nodes and the cluster-wide cap. Scans tiers strictly in
     * priority order; stale entries (chunk no longer lost / stripe
     * no longer misplaced) are dropped on the way.
     * @return nullopt when nothing is admissible.
     */
    std::optional<AdmittedRepair> pop();

    /** Releases an admitted entry's charges (terminal outcome). */
    void complete(const FailedChunk &chunk);

    /** Drops the tier-blocked and per-entry saturation memos (call
     * on crash/rejoin or any other availability change that does
     * not bump stripe generations). */
    void invalidate();

    /** Queued entries (stale entries counted until scanned out). */
    int depth() const;
    int depth(RepairTier tier) const
    {
        return depth_[static_cast<std::size_t>(tier)];
    }
    int inFlight() const { return inFlight_; }
    /** True when nothing is queued or in flight. */
    bool idle() const;
    int jobsOnNode(NodeId node) const;
    int64_t admitted() const { return admittedTotal_; }

    /**
     * True if a full scan of `tier` would admit something right
     * now. Test hook for the no-priority-inversion property; does
     * not mutate queue state.
     */
    bool admissibleInTier(RepairTier tier) const;

  private:
    enum class EntryState : uint8_t
    {
        kQueued,
        kInFlight,
    };
    struct Entry
    {
        EntryState state = EntryState::kQueued;
        RepairTier tier = RepairTier::kDegraded;
        /** Saturation memo: at stripe generation checkedGen,
         * admission was blocked by blockedOn sitting at its
         * node-job cap. While the generation is unchanged (same
         * helper set) and that node is still saturated, pop() skips
         * the entry in O(1) instead of recomputing its charges —
         * without this, every pop() on a node-saturated queue
         * re-derives the helper list (an allocation + code-pool
         * walk) for each queued entry it scans past. */
        uint32_t checkedGen = 0;
        NodeId blockedOn = kInvalidNode;
        /** memoEpoch_ value the memo was taken at; invalidate()
         * (crash/rejoin wipe-flag transitions, which change chunk
         * availability without per-stripe generation bumps)
         * advances the epoch and voids every memo. */
        uint64_t checkedEpoch = 0;
    };
    using Key = std::pair<StripeId, ChunkIndex>;

    /** Helper nodes a repair of `chunk` would charge. Empty when
     * the stripe lacks survivors (still admissible — the session
     * is the authority on unrecoverability). */
    std::vector<NodeId> charges(const FailedChunk &chunk) const;
    bool nodesFree(const std::vector<NodeId> &nodes) const;
    bool stale(const FailedChunk &chunk) const;

    StripeManager &stripes_;
    RepairQueueConfig config_;
    std::deque<FailedChunk> tiers_[kRepairTiers];
    int depth_[kRepairTiers] = {0, 0, 0};
    /** Dedup + lifecycle state per (stripe, chunk). */
    std::map<Key, Entry> entries_;
    /** Charges held by each in-flight entry. */
    std::map<Key, std::vector<NodeId>> heldCharges_;
    std::vector<int> nodeJobs_;
    int inFlight_ = 0;
    int64_t admittedTotal_ = 0;
    /** Memo: a full scan of tier t found nothing admissible; valid
     * until invalidate()/push()/complete(). */
    mutable bool tierBlocked_[kRepairTiers] = {false, false, false};
    /** Per-entry saturation-memo epoch; see Entry::checkedEpoch.
     * Starts above Entry's default so a fresh memo is never valid
     * by accident. */
    uint64_t memoEpoch_ = 1;
};

} // namespace cluster
} // namespace chameleon

#endif // CHAMELEON_CLUSTER_REPAIR_QUEUE_HH_
