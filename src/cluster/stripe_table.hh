/**
 * @file
 * Compact struct-of-arrays stripe metadata for large clusters.
 *
 * The original StripeManager representation kept one heap vector per
 * stripe for placement and another vector<bool> for lost flags —
 * two allocations and ~100 bytes of overhead per stripe, which caps
 * the simulated cluster at paper scale. StripeTable flattens the
 * same state into parallel arrays indexed by stripe id:
 *
 *   placement_  flat NodeId array, slot = stripe * n + chunk
 *   lostBits_   one uint64_t lost-bitmask per stripe (n <= 64)
 *   corruptBits_ one uint64_t bit-rot mask per stripe (silent;
 *               promoted to lost on scrub/verify detection)
 *   gen_        per-stripe generation, bumped on any mutation
 *   state_      scanner-assigned health classification
 *   misplaced_  placement-policy violation flag (balancer input)
 *
 * No per-stripe heap objects exist; the documented budget is
 * <= 16*n + 64 bytes per stripe including the per-node reverse
 * index and vector growth slack (see memoryBytes()).
 *
 * Two scale-oriented extensions over the legacy representation:
 *
 * - A lazy per-node reverse index (packed `stripe * n + chunk`
 *   slots) makes failNode()/chunksOnNode() proportional to the
 *   node's chunk count instead of O(stripes * n). Entries go stale
 *   when chunks relocate; reads compact them away.
 *
 * - Deferred failure discovery: failNodeDeferred() marks the node
 *   failed and "wipe pending" in O(1) without touching any stripe.
 *   Per-chunk lost state is *derived* (stored bit OR placement on a
 *   wipe-pending node), so readers stay correct immediately, and a
 *   background scanner materializes the stored bits incrementally
 *   (materializeWipe) before clearing the pending flags
 *   (clearPendingWipes). This is what lets a crash at 10^6 stripes
 *   enqueue work instead of scanning the world inside one event.
 */

#ifndef CHAMELEON_CLUSTER_STRIPE_TABLE_HH_
#define CHAMELEON_CLUSTER_STRIPE_TABLE_HH_

#include <cstdint>
#include <memory>
#include <vector>

#include "ec/code.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace chameleon {
namespace cluster {

/** A chunk lost to a node failure, pending repair. */
struct FailedChunk
{
    StripeId stripe = 0;
    ChunkIndex chunk = 0;

    bool operator==(const FailedChunk &o) const = default;
};

/** Scanner-assigned stripe health classification. */
enum class StripeHealth : uint8_t
{
    kHealthy = 0,
    /** All chunks live but placement violates policy. */
    kMisplaced = 1,
    /** Some chunks lost, comfortable survivor margin. */
    kDegraded = 2,
    /** Survivors within riskMargin of the decode minimum k. */
    kDataLossRisk = 3,
    /** Fewer than k survivors: cannot be decoded. */
    kUnrecoverable = 4,
};

/** SoA stripe metadata; see file comment. */
class StripeTable
{
  public:
    StripeTable(std::shared_ptr<const ec::ErasureCode> code,
                int num_nodes);

    const ec::ErasureCode &code() const { return *code_; }
    std::shared_ptr<const ec::ErasureCode> codePtr() const
    {
        return code_;
    }
    int numNodes() const { return numNodes_; }
    int stripeCount() const
    {
        return static_cast<int>(lostBits_.size());
    }

    /**
     * Creates `count` stripes with uniform random placement.
     * Consumes the RNG exactly as the legacy per-stripe
     * Fisher-Yates did (n draws of below(numNodes - i) per
     * stripe), so placements are bit-identical across the old and
     * new representations for the same seed.
     */
    void createStripes(int count, Rng &rng);

    NodeId location(StripeId stripe, ChunkIndex chunk) const;

    /** Re-homes a chunk; panics if `node` hosts another live chunk
     * of the stripe (one-chunk-per-node invariant). */
    void relocate(StripeId stripe, ChunkIndex chunk, NodeId node);

    /** True while the chunk's data is lost. Derived: stored lost
     * bit OR placement on a wipe-pending failed node. */
    bool chunkLost(StripeId stripe, ChunkIndex chunk) const;

    /** Stored lost bits only (no pending-wipe derivation). Valid as
     * a complete mask after materializeWipe(stripe). */
    uint64_t lostMask(StripeId stripe) const;

    void markLost(StripeId stripe, ChunkIndex chunk);
    void markRepaired(StripeId stripe, ChunkIndex chunk);

    /**
     * Flags a chunk's payload as silently corrupt (bit rot). The
     * chunk still *looks* live — corruption is invisible to the
     * planner and the generation counter until a scrub read or a
     * verify-on-read detects it and promotes it to lost
     * (markLost()). markRepaired() clears the flag (the rewritten
     * payload is fresh); relocate() deliberately does not — a
     * balancer copy of rotten bytes is still rotten.
     */
    void markCorrupt(StripeId stripe, ChunkIndex chunk);
    void clearCorrupt(StripeId stripe, ChunkIndex chunk);
    bool chunkCorrupt(StripeId stripe, ChunkIndex chunk) const;
    /** Per-stripe corrupt bitmask (ground truth, detection-agnostic). */
    uint64_t corruptMask(StripeId stripe) const;
    /** Chunks currently flagged corrupt across all stripes. */
    int corruptCount() const { return corruptCount_; }

    /**
     * Fails a node eagerly: every live chunk it hosts becomes lost.
     * @return the newly lost chunks in (stripe, chunk) order —
     *         byte-identical to the legacy full-scan output.
     */
    std::vector<FailedChunk> failNode(NodeId node);

    /**
     * Fails a node in O(1): marks it failed + wipe-pending without
     * visiting any stripe. chunkLost()/availableChunks() etc. see
     * the loss immediately via derivation; a scanner sweep calls
     * materializeWipe() per stripe and clearPendingWipes() once a
     * full sweep has completed with no newer deferred failure.
     */
    void failNodeDeferred(NodeId node);

    bool nodeFailed(NodeId node) const;
    int failedNodeCount() const { return failedCount_; }
    bool hasPendingWipe() const { return pendingWipeCount_ > 0; }

    /** Bumped by every failNodeDeferred(); lets a scanner detect
     * that a new deferred failure raced its sweep. */
    uint64_t wipeStamp() const { return wipeStamp_; }

    /** Folds pending-wipe losses for one stripe into stored bits. */
    void materializeWipe(StripeId stripe);

    /**
     * Drops all pending-wipe flags. Caller contract: every stripe
     * has been materialized since the last failNodeDeferred()
     * (i.e. a full sweep completed and wipeStamp() did not move).
     */
    void clearPendingWipes();

    /**
     * Clears a node's failed flag after a delayed rejoin. The node
     * returns *empty*: chunks it hosted stay lost until repaired
     * elsewhere. Any not-yet-materialized wipe losses for this node
     * are materialized here (via the reverse index) so clearing the
     * pending flag cannot resurrect them.
     */
    void rejoinNode(NodeId node);

    /** All chunks currently lost, in (stripe, chunk) order. */
    std::vector<FailedChunk> lostChunks() const;

    /** Chunk indices of `stripe` that are alive. */
    std::vector<ChunkIndex> availableChunks(StripeId stripe) const;

    /** Alive nodes hosting no live chunk of `stripe`, ascending.
     * Allocation-free internally (epoch-stamped scratch). */
    std::vector<NodeId> candidateDestinations(StripeId stripe) const;

    /** Chunks hosted by `node` (lost ones included), in
     * (stripe, chunk) order. Uses the reverse index. */
    std::vector<FailedChunk> chunksOnNode(NodeId node) const;

    /** Per-stripe generation; bumped on any loss/placement edit. */
    uint32_t generation(StripeId stripe) const;

    StripeHealth state(StripeId stripe) const;
    void setState(StripeId stripe, StripeHealth h);

    bool misplaced(StripeId stripe) const;
    void markMisplaced(StripeId stripe);
    void clearMisplaced(StripeId stripe);

    /** Bytes held by all metadata arrays (capacity-based), including
     * the reverse index. Divide by stripeCount() for bytes/stripe;
     * budget: <= 16*n + 64. */
    std::size_t memoryBytes() const;

    /** shrink_to_fit on all arrays (drops growth slack). */
    void compact();

  private:
    static constexpr uint8_t kNodeFailed = 1;
    static constexpr uint8_t kNodeWipePending = 2;

    void checkStripe(StripeId stripe) const;
    void checkNode(NodeId node) const;
    std::size_t slot(StripeId stripe, ChunkIndex chunk) const
    {
        return static_cast<std::size_t>(stripe) *
                   static_cast<std::size_t>(n_) +
               static_cast<std::size_t>(chunk);
    }
    /** Lost mask including pending-wipe derivation. */
    uint64_t derivedMask(StripeId stripe) const;
    /** Compacts + sorts node's index entries; returns the list. */
    const std::vector<uint32_t> &gatherNode(NodeId node) const;

    std::shared_ptr<const ec::ErasureCode> code_;
    int numNodes_;
    int n_; // code_->n(), cached (== chunks per stripe)

    // --- parallel per-stripe arrays (the SoA core) ---
    std::vector<NodeId> placement_;    // stripe * n + chunk
    std::vector<uint64_t> lostBits_;   // per stripe
    std::vector<uint64_t> corruptBits_; // per stripe (bit rot)
    std::vector<uint32_t> gen_;       // per stripe
    std::vector<uint8_t> state_;      // StripeHealth per stripe
    std::vector<uint8_t> misplaced_;  // 0/1 per stripe

    // --- per-node state ---
    std::vector<uint8_t> nodeFlags_;
    int failedCount_ = 0;
    int corruptCount_ = 0;
    int pendingWipeCount_ = 0;
    uint64_t wipeStamp_ = 0;
    /** Reverse index: packed slots per node. Appended on create /
     * relocate; stale entries dropped on gatherNode(). */
    mutable std::vector<std::vector<uint32_t>> nodeIndex_;

    // --- allocation-free scratch ---
    std::vector<NodeId> fyPool_; // persistent identity pool for F-Y
    mutable std::vector<uint32_t> hostStamp_; // per node
    mutable uint32_t stampEpoch_ = 0;
};

} // namespace cluster
} // namespace chameleon

#endif // CHAMELEON_CLUSTER_STRIPE_TABLE_HH_
