#include "cluster/replicator_scanner.hh"

#include <bit>
#include <utility>

#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace chameleon {
namespace cluster {

ReplicatorScanner::ReplicatorScanner(StripeManager &stripes,
                                     RepairQueue &queue,
                                     sim::Simulator &sim,
                                     ScannerConfig config)
    : stripes_(stripes), queue_(queue), sim_(sim),
      config_(std::move(config))
{
    CHAMELEON_ASSERT(config_.batchSize >= 1,
                     "scanner batchSize must be >= 1");
    CHAMELEON_ASSERT(config_.tickInterval > 0,
                     "scanner tickInterval must be > 0");
    CHAMELEON_ASSERT(config_.riskMargin >= 0,
                     "scanner riskMargin must be >= 0");
    // Initial discovery barrier: one full sweep.
    barrier_ = stripes_.stripeCount();
}

void
ReplicatorScanner::start()
{
    if (running_)
        return;
    running_ = true;
    sim_.scheduleAfter(config_.tickInterval, [this] { tick(); });
}

void
ReplicatorScanner::stop()
{
    running_ = false;
}

void
ReplicatorScanner::tick()
{
    if (!running_)
        return;
    scanBatch(config_.batchSize);
    pumpAdmission();
    publishGauges();
    sim_.scheduleAfter(config_.tickInterval, [this] { tick(); });
}

void
ReplicatorScanner::primeSync()
{
    scanBatch(stripes_.stripeCount());
    pumpAdmission();
    publishGauges();
}

void
ReplicatorScanner::scanBatch(int limit)
{
    const int total = stripes_.stripeCount();
    if (total == 0) {
        scannedTotal_ = barrier_;
        return;
    }
    auto &table = stripes_.table();
    for (int i = 0; i < limit; ++i) {
        if (cursor_ == 0)
            sweepStartStamp_ = table.wipeStamp();
        scanStripe(cursor_);
        ++scannedTotal_;
        if (++cursor_ >= total) {
            cursor_ = 0;
            ++epoch_;
            // A full sweep materialized every stripe; if no newer
            // deferred failure raced it, the per-node pending-wipe
            // flags carry no information any more.
            if (table.wipeStamp() == sweepStartStamp_)
                table.clearPendingWipes();
        }
    }
    telemetry::metrics()
        .counter("scanner.stripes_scanned")
        .add(limit);
}

void
ReplicatorScanner::scanStripe(StripeId stripe)
{
    auto &table = stripes_.table();
    table.materializeWipe(stripe);
    const uint64_t mask = table.lostMask(stripe);
    const int lost = std::popcount(mask);
    StripeHealth health = StripeHealth::kHealthy;
    RepairTier tier = RepairTier::kDegraded;
    if (lost > 0) {
        const int survivors = table.code().n() - lost;
        const int margin = survivors - table.code().k();
        if (margin < 0)
            health = StripeHealth::kUnrecoverable;
        else if (margin < config_.riskMargin)
            health = StripeHealth::kDataLossRisk;
        else
            health = StripeHealth::kDegraded;
        // Unrecoverable stripes still enqueue at the most urgent
        // tier: the repair session is the authority (a rejoining
        // node or a late repair can change the verdict).
        tier = health == StripeHealth::kDegraded
                   ? RepairTier::kDegraded
                   : RepairTier::kDataLossRisk;
    } else if (table.misplaced(stripe)) {
        health = StripeHealth::kMisplaced;
    }
    table.setState(stripe, health);
    if (lost > 0) {
        uint64_t bits = mask;
        while (bits) {
            const int c = std::countr_zero(bits);
            bits &= bits - 1;
            if (queue_.push(
                    FailedChunk{stripe,
                                static_cast<ChunkIndex>(c)},
                    tier))
                telemetry::metrics()
                    .counter("scanner.chunks_enqueued")
                    .add();
        }
    } else if (health == StripeHealth::kMisplaced) {
        queue_.push(FailedChunk{stripe, kBalancerChunk},
                    RepairTier::kMisplaced);
    }
}

void
ReplicatorScanner::noteCrash(NodeId)
{
    barrier_ = scannedTotal_ + stripes_.stripeCount();
    queue_.invalidate();
}

void
ReplicatorScanner::noteRejoin(NodeId)
{
    barrier_ = scannedTotal_ + stripes_.stripeCount();
    queue_.invalidate();
}

void
ReplicatorScanner::pumpAdmission()
{
    if (pumping_) {
        repump_ = true;
        return;
    }
    pumping_ = true;
    do {
        repump_ = false;
        std::vector<FailedChunk> batch;
        while (auto admitted = queue_.pop()) {
            if (admitted->chunk.chunk == kBalancerChunk) {
                if (onMisplaced_)
                    onMisplaced_(admitted->chunk.stripe);
                else
                    stripes_.table().clearMisplaced(
                        admitted->chunk.stripe);
                queue_.complete(admitted->chunk);
                continue;
            }
            batch.push_back(admitted->chunk);
        }
        if (!batch.empty() && dispatch_)
            dispatch_(std::move(batch));
    } while (repump_);
    pumping_ = false;
}

void
ReplicatorScanner::onChunkOutcome(const FailedChunk &chunk, bool)
{
    queue_.complete(chunk);
    pumpAdmission();
}

void
ReplicatorScanner::publishGauges()
{
    auto &m = telemetry::metrics();
    const int total = stripes_.stripeCount();
    m.gauge("scanner.scan_progress")
        .set(total > 0 ? static_cast<double>(cursor_) / total : 1.0);
    m.gauge("scanner.epoch").set(static_cast<double>(epoch_));
    m.gauge("repair.queue.depth")
        .set(static_cast<double>(queue_.depth()));
    m.gauge("repair.queue.in_flight")
        .set(static_cast<double>(queue_.inFlight()));
}

} // namespace cluster
} // namespace chameleon
