#include "cluster/repair_queue.hh"

#include <algorithm>

#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace chameleon {
namespace cluster {

RepairQueue::RepairQueue(StripeManager &stripes,
                         RepairQueueConfig config)
    : stripes_(stripes), config_(config),
      nodeJobs_(static_cast<std::size_t>(stripes.numNodes()), 0)
{
    CHAMELEON_ASSERT(config_.maxTotalJobs >= 1,
                     "maxTotalJobs must be >= 1");
    CHAMELEON_ASSERT(config_.maxNodeJobs >= 1,
                     "maxNodeJobs must be >= 1");
}

bool
RepairQueue::push(FailedChunk chunk, RepairTier tier)
{
    const Key key{chunk.stripe, chunk.chunk};
    auto [it, fresh] = entries_.try_emplace(key, Entry{});
    if (fresh) {
        it->second.tier = tier;
    } else {
        // Dedup: escalate only a still-queued entry to a strictly
        // higher tier; the stale lower-tier slot drops lazily.
        if (it->second.state != EntryState::kQueued ||
            tier >= it->second.tier)
            return false;
        it->second.tier = tier;
    }
    tiers_[static_cast<std::size_t>(tier)].push_back(chunk);
    ++depth_[static_cast<std::size_t>(tier)];
    tierBlocked_[static_cast<std::size_t>(tier)] = false;
    return true;
}

std::vector<NodeId>
RepairQueue::charges(const FailedChunk &chunk) const
{
    std::vector<NodeId> nodes;
    if (chunk.chunk == kBalancerChunk) {
        // Whole-stripe placement work reads one live replica.
        const auto avail = stripes_.availableChunks(chunk.stripe);
        if (!avail.empty())
            nodes.push_back(
                stripes_.location(chunk.stripe, avail.front()));
        return nodes;
    }
    const auto avail = stripes_.availableChunks(chunk.stripe);
    const auto pool = stripes_.code().helperPool(
        chunk.chunk, std::span<const ChunkIndex>(avail));
    const auto take = std::min<std::size_t>(
        static_cast<std::size_t>(std::max(pool.required, 0)),
        avail.size());
    nodes.reserve(take);
    for (std::size_t i = 0; i < take; ++i)
        nodes.push_back(stripes_.location(chunk.stripe, avail[i]));
    return nodes;
}

bool
RepairQueue::nodesFree(const std::vector<NodeId> &nodes) const
{
    for (NodeId n : nodes) {
        if (nodeJobs_[static_cast<std::size_t>(n)] >=
            config_.maxNodeJobs)
            return false;
    }
    return true;
}

bool
RepairQueue::stale(const FailedChunk &chunk) const
{
    if (chunk.chunk == kBalancerChunk)
        return !stripes_.table().misplaced(chunk.stripe);
    return !stripes_.chunkLost(chunk.stripe, chunk.chunk);
}

std::optional<AdmittedRepair>
RepairQueue::pop()
{
    if (inFlight_ >= config_.maxTotalJobs)
        return std::nullopt;
    for (int t = 0; t < kRepairTiers; ++t) {
        if (tierBlocked_[t])
            continue;
        auto &q = tiers_[t];
        for (std::size_t i = 0; i < q.size();) {
            const FailedChunk fc = q[i];
            const Key key{fc.stripe, fc.chunk};
            auto it = entries_.find(key);
            // Lazily drop stale slots: escalated away, already in
            // flight from another slot, or no longer needing work.
            if (it == entries_.end() ||
                it->second.state != EntryState::kQueued ||
                it->second.tier != static_cast<RepairTier>(t)) {
                q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
                --depth_[t];
                continue;
            }
            if (stale(fc)) {
                entries_.erase(it);
                q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
                --depth_[t];
                continue;
            }
            // O(1) saturation skip: same helper set (generation
            // unchanged) and the node that blocked us last time is
            // still at its cap, so a full recheck cannot succeed.
            Entry &entry = it->second;
            const uint32_t gen =
                stripes_.table().generation(fc.stripe);
            if (entry.blockedOn != kInvalidNode &&
                entry.checkedEpoch == memoEpoch_ &&
                entry.checkedGen == gen &&
                nodeJobs_[static_cast<std::size_t>(
                    entry.blockedOn)] >= config_.maxNodeJobs) {
                telemetry::metrics()
                    .counter("repair.queue.memo_skips")
                    .add();
                ++i;
                continue;
            }
            telemetry::metrics()
                .counter("repair.queue.scan_steps")
                .add();
            auto nodes = charges(fc);
            NodeId blocker = kInvalidNode;
            for (NodeId n : nodes) {
                if (nodeJobs_[static_cast<std::size_t>(n)] >=
                    config_.maxNodeJobs) {
                    blocker = n;
                    break;
                }
            }
            if (blocker != kInvalidNode) {
                entry.blockedOn = blocker;
                entry.checkedGen = gen;
                entry.checkedEpoch = memoEpoch_;
                ++i;
                continue;
            }
            entry.blockedOn = kInvalidNode;
            for (NodeId n : nodes)
                ++nodeJobs_[static_cast<std::size_t>(n)];
            ++inFlight_;
            ++admittedTotal_;
            it->second.state = EntryState::kInFlight;
            heldCharges_.emplace(key, std::move(nodes));
            q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
            --depth_[t];
            telemetry::metrics()
                .counter("repair.queue.admitted")
                .add();
            return AdmittedRepair{fc, static_cast<RepairTier>(t)};
        }
        // Full scan found nothing admissible; skip this tier until
        // a push/complete/invalidate can change the answer. A
        // *blocked* higher tier never lets a lower tier overtake —
        // blocked means "not admissible", which is exactly when
        // draining lower tiers is allowed.
        tierBlocked_[t] = true;
    }
    return std::nullopt;
}

void
RepairQueue::complete(const FailedChunk &chunk)
{
    const Key key{chunk.stripe, chunk.chunk};
    auto it = entries_.find(key);
    CHAMELEON_ASSERT(it != entries_.end() &&
                         it->second.state == EntryState::kInFlight,
                     "complete() for stripe ", chunk.stripe,
                     " chunk ", chunk.chunk, " not in flight");
    auto held = heldCharges_.find(key);
    CHAMELEON_ASSERT(held != heldCharges_.end(),
                     "in-flight entry has no held charges");
    for (NodeId n : held->second) {
        auto &jobs = nodeJobs_[static_cast<std::size_t>(n)];
        CHAMELEON_ASSERT(jobs > 0, "node job underflow on ", n);
        --jobs;
    }
    heldCharges_.erase(held);
    entries_.erase(it);
    --inFlight_;
    // Re-open tier scans, but keep the per-entry saturation memos:
    // a completion only decrements nodeJobs_, and the memo's skip
    // condition re-reads nodeJobs_[blockedOn] on every pop(), so
    // freed blockers are picked up without voiding the epoch.
    for (bool &b : tierBlocked_)
        b = false;
}

void
RepairQueue::invalidate()
{
    for (bool &b : tierBlocked_)
        b = false;
    // Deferred crashes/rejoins flip wipe-pending node flags, which
    // changes derived chunk availability (and thus each entry's
    // helper charges) without bumping any per-stripe generation —
    // the saturation memos cannot see that, so void them wholesale.
    ++memoEpoch_;
}

int
RepairQueue::depth() const
{
    return depth_[0] + depth_[1] + depth_[2];
}

bool
RepairQueue::idle() const
{
    return inFlight_ == 0 && entries_.empty();
}

int
RepairQueue::jobsOnNode(NodeId node) const
{
    CHAMELEON_ASSERT(node >= 0 &&
                         static_cast<std::size_t>(node) <
                             nodeJobs_.size(),
                     "bad node ", node);
    return nodeJobs_[static_cast<std::size_t>(node)];
}

bool
RepairQueue::admissibleInTier(RepairTier tier) const
{
    if (inFlight_ >= config_.maxTotalJobs)
        return false;
    const auto t = static_cast<std::size_t>(tier);
    for (const FailedChunk &fc : tiers_[t]) {
        auto it = entries_.find(Key{fc.stripe, fc.chunk});
        if (it == entries_.end() ||
            it->second.state != EntryState::kQueued ||
            it->second.tier != tier)
            continue;
        if (stale(fc))
            continue;
        if (nodesFree(charges(fc)))
            return true;
    }
    return false;
}

} // namespace cluster
} // namespace chameleon
