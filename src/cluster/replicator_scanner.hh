/**
 * @file
 * Epoch-scoped background replicator scanner.
 *
 * Production block managers (HDFS RedundancyMonitor, the warehouse
 * study in PAPERS.md with ~50 unavailability events/day) never scan
 * all metadata inside one failure event: a background thread sweeps
 * the stripe table continuously, classifies stripe health, and
 * feeds a prioritized repair queue. This class is that loop in sim
 * form: every tickInterval it scans up to batchSize stripes from a
 * wrapping cursor (one full pass = one *epoch*), materializes any
 * deferred node-wipe losses it encounters, classifies the stripe
 * (healthy / misplaced / degraded / data-loss-risk /
 * unrecoverable), pushes lost chunks into the RepairQueue at the
 * matching priority tier, and then pumps admissible work to the
 * repair layer via the dispatch callback.
 *
 * Discovery barrier: after a crash, every stripe must be scanned
 * once more before the scanner can vouch that all losses are
 * enqueued; discoveryComplete() gates experiment termination on
 * that. primeSync() runs one full epoch synchronously — used at
 * run start so initial-failure discovery happens at the same sim
 * time as the legacy direct path (the differential test relies on
 * this).
 */

#ifndef CHAMELEON_CLUSTER_REPLICATOR_SCANNER_HH_
#define CHAMELEON_CLUSTER_REPLICATOR_SCANNER_HH_

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/repair_queue.hh"
#include "cluster/stripe_manager.hh"
#include "sim/simulator.hh"
#include "util/types.hh"

namespace chameleon {
namespace cluster {

struct ScannerConfig
{
    /** Route repair through scanner + queue instead of the direct
     * session path (runtime wiring switch). */
    bool enabled = false;
    /** Stripes scanned per tick. */
    int batchSize = 4096;
    /** Sim seconds between scan ticks. */
    SimTime tickInterval = 1.0;
    /** Survivor margin (survivors - k) below which a stripe is
     * classified data-loss-risk rather than merely degraded. */
    int riskMargin = 1;
    RepairQueueConfig queue;

    bool operator==(const ScannerConfig &o) const = default;
};

/** Background sweep + admission pump; see file comment. */
class ReplicatorScanner
{
  public:
    /** Batched repair handoff to the repair layer. One call per
     * admission pump so the receiving session/scheduler enqueues
     * (and plans) the batch atomically. */
    using DispatchFn =
        std::function<void(std::vector<FailedChunk>)>;
    using MisplacedFn = std::function<void(StripeId)>;

    ReplicatorScanner(StripeManager &stripes, RepairQueue &queue,
                      sim::Simulator &sim, ScannerConfig config);

    void setDispatch(DispatchFn fn) { dispatch_ = std::move(fn); }
    /** Handler for admitted misplaced-stripe entries; the default
     * clears the flag (placement accepted as-is). The queue entry
     * is completed by the scanner after the handler runs. */
    void setOnMisplaced(MisplacedFn fn)
    {
        onMisplaced_ = std::move(fn);
    }

    /** Starts the periodic tick loop. */
    void start();
    /** Stops ticking (a pending tick becomes a no-op). */
    void stop();

    /** Scans one full epoch synchronously, then pumps admission.
     * Satisfies the initial discovery barrier. */
    void primeSync();

    /** Notes a (possibly deferred) crash: raises the discovery
     * barrier to one more full sweep and re-opens queue tiers. */
    void noteCrash(NodeId node);
    /** Notes a rejoin; same barrier/invalidation treatment. */
    void noteRejoin(NodeId node);

    /** True once every loss present so far is guaranteed enqueued
     * (a full sweep has completed since the last crash/rejoin). */
    bool discoveryComplete() const
    {
        return scannedTotal_ >= barrier_;
    }

    /** Terminal outcome for a dispatched chunk: releases its queue
     * charges and pumps newly admissible work. */
    void onChunkOutcome(const FailedChunk &chunk, bool repaired);

    /** Drains the queue: admits everything admissible, handles
     * misplaced entries, and hands lost chunks to dispatch_ in one
     * batch. Re-entrant calls coalesce. */
    void pumpAdmission();

    int64_t epoch() const { return epoch_; }
    int64_t stripesScanned() const { return scannedTotal_; }

  private:
    void tick();
    void scanBatch(int limit);
    void scanStripe(StripeId stripe);
    void publishGauges();

    StripeManager &stripes_;
    RepairQueue &queue_;
    sim::Simulator &sim_;
    ScannerConfig config_;
    DispatchFn dispatch_;
    MisplacedFn onMisplaced_;

    StripeId cursor_ = 0;
    int64_t epoch_ = 0;
    int64_t scannedTotal_ = 0;
    int64_t barrier_ = 0;
    uint64_t sweepStartStamp_ = 0;
    bool running_ = false;
    bool pumping_ = false;
    bool repump_ = false;
};

} // namespace cluster
} // namespace chameleon

#endif // CHAMELEON_CLUSTER_REPLICATOR_SCANNER_HH_
