/**
 * @file
 * Stripe metadata: which chunk of which stripe lives on which node,
 * which nodes have failed, and the derived views repair scheduling
 * needs (surviving chunks, candidate sources, candidate
 * destinations). This plays the role of the HDFS NameNode metadata
 * that the paper's coordinator consults (Fig. 11, step 1).
 */

#ifndef CHAMELEON_CLUSTER_STRIPE_MANAGER_HH_
#define CHAMELEON_CLUSTER_STRIPE_MANAGER_HH_

#include <memory>
#include <vector>

#include "ec/code.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace chameleon {
namespace cluster {

/** A chunk lost to a node failure, pending repair. */
struct FailedChunk
{
    StripeId stripe = 0;
    ChunkIndex chunk = 0;

    bool operator==(const FailedChunk &o) const = default;
};

/** Stripe placement + failure bookkeeping; see file comment. */
class StripeManager
{
  public:
    /**
     * @param code       the erasure code shared by all stripes.
     * @param num_nodes  cluster size; must be >= code->n().
     */
    StripeManager(std::shared_ptr<const ec::ErasureCode> code,
                  int num_nodes);

    const ec::ErasureCode &code() const { return *code_; }
    std::shared_ptr<const ec::ErasureCode> codePtr() const
    {
        return code_;
    }
    int numNodes() const { return numNodes_; }

    /** Creates `count` stripes with uniform random placement. */
    void createStripes(int count, Rng &rng);

    int stripeCount() const
    {
        return static_cast<int>(placement_.size());
    }

    /** Node currently hosting (stripe, chunk). */
    NodeId location(StripeId stripe, ChunkIndex chunk) const;

    /** Re-homes a chunk (after repair to a new destination). */
    void relocate(StripeId stripe, ChunkIndex chunk, NodeId node);

    /** True while the chunk's data is lost. */
    bool chunkLost(StripeId stripe, ChunkIndex chunk) const;

    /** Marks a single chunk lost (degraded-read scenarios). */
    void markLost(StripeId stripe, ChunkIndex chunk);

    /** Marks a chunk repaired (clears the lost flag). */
    void markRepaired(StripeId stripe, ChunkIndex chunk);

    /**
     * Fails a node: every chunk it hosts becomes lost.
     * @return the newly lost chunks, in stripe order.
     */
    std::vector<FailedChunk> failNode(NodeId node);

    bool nodeFailed(NodeId node) const;

    /**
     * Clears a node's failed flag after a delayed rejoin. The node
     * returns *empty*: chunks it hosted stay lost (their data is
     * gone) until repaired to some destination, but the node is
     * again eligible as a repair destination and stripe placement
     * target.
     */
    void rejoinNode(NodeId node);

    /** All chunks currently lost, in stripe order. */
    std::vector<FailedChunk> lostChunks() const;

    /** Chunk indices of `stripe` that are alive (not lost). */
    std::vector<ChunkIndex> availableChunks(StripeId stripe) const;

    /**
     * Alive nodes not hosting any live chunk of `stripe` — the
     * paper's candidate destination set D, which preserves the
     * one-chunk-per-node fault tolerance invariant.
     */
    std::vector<NodeId> candidateDestinations(StripeId stripe) const;

    /** Chunks hosted by `node` (lost ones included). */
    std::vector<FailedChunk> chunksOnNode(NodeId node) const;

  private:
    void checkStripe(StripeId stripe) const;

    std::shared_ptr<const ec::ErasureCode> code_;
    int numNodes_;
    /** placement_[stripe][chunk] = node. */
    std::vector<std::vector<NodeId>> placement_;
    /** lost_[stripe][chunk]. */
    std::vector<std::vector<bool>> lost_;
    std::vector<bool> nodeFailed_;
};

} // namespace cluster
} // namespace chameleon

#endif // CHAMELEON_CLUSTER_STRIPE_MANAGER_HH_
