/**
 * @file
 * Stripe metadata: which chunk of which stripe lives on which node,
 * which nodes have failed, and the derived views repair scheduling
 * needs (surviving chunks, candidate sources, candidate
 * destinations). This plays the role of the HDFS NameNode metadata
 * that the paper's coordinator consults (Fig. 11, step 1).
 *
 * Since the scale-out rework the manager is a thin facade over the
 * struct-of-arrays StripeTable (stripe_table.hh): same public API
 * and semantics as the legacy per-stripe-vector representation,
 * but O(chunks-on-node) node failure via the reverse index, O(1)
 * deferred failure discovery for the background scanner, and a
 * documented <= 16*n + 64 bytes/stripe memory budget.
 */

#ifndef CHAMELEON_CLUSTER_STRIPE_MANAGER_HH_
#define CHAMELEON_CLUSTER_STRIPE_MANAGER_HH_

#include <memory>
#include <vector>

#include "cluster/stripe_table.hh"
#include "ec/code.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace chameleon {
namespace cluster {

/** Stripe placement + failure bookkeeping; see file comment. */
class StripeManager
{
  public:
    /**
     * @param code       the erasure code shared by all stripes.
     * @param num_nodes  cluster size; must be >= code->n().
     */
    StripeManager(std::shared_ptr<const ec::ErasureCode> code,
                  int num_nodes)
        : table_(std::move(code), num_nodes)
    {
    }

    const ec::ErasureCode &code() const { return table_.code(); }
    std::shared_ptr<const ec::ErasureCode> codePtr() const
    {
        return table_.codePtr();
    }
    int numNodes() const { return table_.numNodes(); }

    /** Creates `count` stripes with uniform random placement. */
    void createStripes(int count, Rng &rng)
    {
        table_.createStripes(count, rng);
    }

    int stripeCount() const { return table_.stripeCount(); }

    /** Node currently hosting (stripe, chunk). */
    NodeId location(StripeId stripe, ChunkIndex chunk) const
    {
        return table_.location(stripe, chunk);
    }

    /** Re-homes a chunk (after repair to a new destination). */
    void relocate(StripeId stripe, ChunkIndex chunk, NodeId node)
    {
        table_.relocate(stripe, chunk, node);
    }

    /** True while the chunk's data is lost. */
    bool chunkLost(StripeId stripe, ChunkIndex chunk) const
    {
        return table_.chunkLost(stripe, chunk);
    }

    /** Marks a single chunk lost (degraded-read scenarios). */
    void markLost(StripeId stripe, ChunkIndex chunk)
    {
        table_.markLost(stripe, chunk);
    }

    /** Marks a chunk repaired (clears the lost flag). */
    void markRepaired(StripeId stripe, ChunkIndex chunk)
    {
        table_.markRepaired(stripe, chunk);
    }

    /** Flags a chunk's payload as silently bit-rotted. */
    void markCorrupt(StripeId stripe, ChunkIndex chunk)
    {
        table_.markCorrupt(stripe, chunk);
    }

    /** True while the chunk's payload is corrupt (ground truth;
     * detection state lives with the scrub scanner). */
    bool chunkCorrupt(StripeId stripe, ChunkIndex chunk) const
    {
        return table_.chunkCorrupt(stripe, chunk);
    }

    /**
     * Fails a node: every chunk it hosts becomes lost.
     * @return the newly lost chunks, in stripe order.
     */
    std::vector<FailedChunk> failNode(NodeId node)
    {
        return table_.failNode(node);
    }

    /** O(1) deferred node failure; see StripeTable. */
    void failNodeDeferred(NodeId node)
    {
        table_.failNodeDeferred(node);
    }

    bool nodeFailed(NodeId node) const
    {
        return table_.nodeFailed(node);
    }

    int failedNodeCount() const { return table_.failedNodeCount(); }

    /**
     * Clears a node's failed flag after a delayed rejoin. The node
     * returns *empty*: chunks it hosted stay lost (their data is
     * gone) until repaired to some destination, but the node is
     * again eligible as a repair destination and stripe placement
     * target.
     */
    void rejoinNode(NodeId node) { table_.rejoinNode(node); }

    /** All chunks currently lost, in stripe order. */
    std::vector<FailedChunk> lostChunks() const
    {
        return table_.lostChunks();
    }

    /** Chunk indices of `stripe` that are alive (not lost). */
    std::vector<ChunkIndex> availableChunks(StripeId stripe) const
    {
        return table_.availableChunks(stripe);
    }

    /**
     * Alive nodes not hosting any live chunk of `stripe` — the
     * paper's candidate destination set D, which preserves the
     * one-chunk-per-node fault tolerance invariant.
     */
    std::vector<NodeId> candidateDestinations(StripeId stripe) const
    {
        return table_.candidateDestinations(stripe);
    }

    /** Chunks hosted by `node` (lost ones included). */
    std::vector<FailedChunk> chunksOnNode(NodeId node) const
    {
        return table_.chunksOnNode(node);
    }

    /** Direct access to the SoA table (scanner/queue/bench). */
    StripeTable &table() { return table_; }
    const StripeTable &table() const { return table_; }

  private:
    StripeTable table_;
};

} // namespace cluster
} // namespace chameleon

#endif // CHAMELEON_CLUSTER_STRIPE_MANAGER_HH_
