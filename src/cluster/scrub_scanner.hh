/**
 * @file
 * Background integrity scrub scanner.
 *
 * Bit rot (fault::FaultKind::kBitRot) is *silent*: a corrupt chunk
 * still looks live, so no failure event will ever surface it. The
 * ScrubScanner is the production answer — a bounded-rate background
 * sweep that reads every live chunk, verifies its checksum, and
 * promotes detected corruption to a real loss the repair layer then
 * handles through its normal tiers. It reuses the ReplicatorScanner
 * epoch/cursor machinery at *chunk* granularity: a wrapping
 * (stripe, chunk) cursor, one full pass = one scrub epoch.
 *
 * Scrub reads are real simulator flows (FlowTag::kScrub) on the
 * hosting disk, so scrub bandwidth genuinely contends with
 * foreground and repair traffic. A per-tick token bucket bounds the
 * read rate; in adaptive mode (Chameleon-style tunable dispatch)
 * each disk's read is charged inversely to its idle foreground
 * headroom, so scrubbing automatically backs off on busy disks and
 * spends its budget where interference is cheap — the same
 * "dispatch repair where bandwidth is idle" idea the paper applies
 * to repair traffic.
 *
 * Detection path (detect()): mark the chunk lost (silent -> real
 * loss), record the injection-to-detection latency histogram, and
 * hand the chunk to the runtime's dispatch callback, classified
 * into the existing repair tiers (a detected corruption combined
 * with erasures counts toward data-loss-risk exactly like one more
 * erasure — the survivor margin shrinks either way). The same entry
 * point serves the executor's verify-on-read/verify-after-decode
 * hooks, so scrub and in-line verification share one bookkeeping
 * and one set of integrity counters.
 */

#ifndef CHAMELEON_CLUSTER_SCRUB_SCANNER_HH_
#define CHAMELEON_CLUSTER_SCRUB_SCANNER_HH_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "cluster/cluster.hh"
#include "cluster/repair_queue.hh"
#include "cluster/stripe_manager.hh"
#include "util/types.hh"

namespace chameleon {
namespace cluster {

/** Scrub + inline-verification knobs (the "scrub" JSON block). */
struct ScrubConfig
{
    /** Master switch: construct/start the scanner and (per the
     * verify flags) the executor integrity hooks. */
    bool enabled = false;
    /** Target scrub read bandwidth, bytes/second of chunk reads
     * (cluster-wide token bucket). */
    double rate = 64.0 * 1024.0 * 1024.0;
    /** Sim seconds between scrub ticks (bucket refills). */
    SimTime tickInterval = 1.0;
    /** Chameleon-style adaptivity: charge each disk's read against
     * the bucket inversely to its idle foreground headroom, so busy
     * disks are scrubbed slower (never below adaptiveFloor of the
     * nominal rate). */
    bool adaptive = false;
    double adaptiveFloor = 0.1;
    /** Max concurrent scrub-read flows. */
    int maxInFlight = 4;
    /** Survivor margin below which a detected corruption enqueues
     * at data-loss-risk priority (mirrors ScannerConfig). */
    int riskMargin = 1;
    /** Executor verify-on-read for helper chunks: a corrupt helper
     * aborts the repair and re-plans without it. */
    bool verifyReads = true;
    /** Executor verify-after-decode: reject a repaired chunk whose
     * reconstruction folded in a corrupt helper. */
    bool verifyDecode = true;

    bool operator==(const ScrubConfig &) const = default;
};

/** How a corruption was surfaced (metrics + dispatch labels). */
enum class DetectSource
{
    kScrubRead,
    kVerifyRead,
    kVerifyDecode,
};

/** Background scrub sweep; see file comment. */
class ScrubScanner
{
  public:
    /** Detected-corruption handoff: the runtime routes it into the
     * RepairQueue (scanner path) or straight into the session
     * (direct path) at the given tier. */
    using DetectFn = std::function<void(FailedChunk, RepairTier)>;

    ScrubScanner(Cluster &cluster, StripeManager &stripes,
                 Bytes chunk_bytes, ScrubConfig config);

    const ScrubConfig &config() const { return config_; }

    void setOnDetected(DetectFn fn) { onDetected_ = std::move(fn); }

    /** Starts the periodic tick loop. */
    void start();
    /** Stops ticking (a pending tick becomes a no-op). */
    void stop();

    /** Injection clock: the fault injector reports each bit-rot here
     * so detection latency can be measured. */
    void noteCorruption(FailedChunk chunk);

    /**
     * Surfaces a corruption (from a scrub read or an executor verify
     * hook): promotes the chunk to lost, records latency/counters,
     * and dispatches it for repair. No-op (returns false) unless the
     * chunk is currently corrupt and not already lost.
     */
    bool detect(FailedChunk chunk, DetectSource source);

    /** Terminal repair outcome for a chunk (chained behind the
     * repair layer's outcome hook): counts re-repaired corruptions. */
    void noteOutcome(const FailedChunk &chunk, bool repaired);

    /** True when no detected corruption still awaits repair and
     * every injected corruption has been surfaced (or its chunk was
     * claimed by a real loss first). The runtime's run loop keeps
     * the experiment alive until the scrub subsystem is quiescent,
     * which is what bounds detection latency to one scrub epoch. */
    bool quiescent() const;

    /** Full (stripe, chunk) passes completed. */
    int64_t epoch() const { return epoch_; }
    int64_t chunksScrubbed() const { return scrubbedTotal_; }
    int64_t corruptionsSeen() const { return seen_; }
    int64_t corruptionsDetected() const { return detected_; }
    int64_t corruptionsRepaired() const { return repaired_; }
    Bytes scrubBytes() const { return scrubBytes_; }
    /** Mean injection-to-detection latency over all detections that
     * had a recorded injection time (0 when none). */
    SimTime meanDetectionLatency() const
    {
        return latencyCount_ > 0 ? latencySum_ / latencyCount_ : 0.0;
    }
    SimTime maxDetectionLatency() const { return latencyMax_; }

  private:
    void tick();
    /** Issues scrub reads while budget/in-flight allow. */
    void pumpReads();
    void onReadDone(FailedChunk chunk, Bytes bytes);
    /** Budget cost of reading chunk_bytes from `node`'s disk
     * (>= chunk_bytes; grows as foreground eats the disk). */
    double readCost(NodeId node) const;
    void advanceCursor();
    void publishGauges();
    static uint64_t key(const FailedChunk &fc)
    {
        return (static_cast<uint64_t>(fc.stripe) << 8) |
               static_cast<uint64_t>(fc.chunk & 0xFF);
    }

    Cluster &cluster_;
    StripeManager &stripes_;
    Bytes chunkBytes_;
    ScrubConfig config_;
    DetectFn onDetected_;

    StripeId stripeCursor_ = 0;
    ChunkIndex chunkCursor_ = 0;
    int64_t epoch_ = 0;
    int64_t scrubbedTotal_ = 0;
    Bytes scrubBytes_ = 0.0;
    double budget_ = 0.0;
    int inFlight_ = 0;
    bool running_ = false;
    int64_t seen_ = 0;
    int64_t detected_ = 0;
    int64_t repaired_ = 0;
    SimTime latencySum_ = 0.0;
    SimTime latencyMax_ = 0.0;
    int64_t latencyCount_ = 0;
    /** Injection time per corrupt chunk (detection-latency clock). */
    std::unordered_map<uint64_t, SimTime> rotTimes_;
    /** Detected corruptions whose repair is still pending. */
    std::unordered_set<uint64_t> pendingRepair_;
};

} // namespace cluster
} // namespace chameleon

#endif // CHAMELEON_CLUSTER_SCRUB_SCANNER_HH_
