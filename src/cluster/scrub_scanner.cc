#include "cluster/scrub_scanner.hh"

#include <algorithm>
#include <utility>

#include "sim/flow_network.hh"
#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace chameleon {
namespace cluster {

ScrubScanner::ScrubScanner(Cluster &cluster, StripeManager &stripes,
                           Bytes chunk_bytes, ScrubConfig config)
    : cluster_(cluster), stripes_(stripes),
      chunkBytes_(chunk_bytes), config_(std::move(config))
{
    CHAMELEON_ASSERT(chunkBytes_ > 0, "scrub chunk size must be > 0");
    CHAMELEON_ASSERT(config_.rate > 0, "scrub rate must be > 0");
    CHAMELEON_ASSERT(config_.tickInterval > 0,
                     "scrub tickInterval must be > 0");
    CHAMELEON_ASSERT(config_.maxInFlight >= 1,
                     "scrub maxInFlight must be >= 1");
    CHAMELEON_ASSERT(config_.adaptiveFloor > 0 &&
                         config_.adaptiveFloor <= 1.0,
                     "scrub adaptiveFloor must be in (0, 1]");
    CHAMELEON_ASSERT(config_.riskMargin >= 0,
                     "scrub riskMargin must be >= 0");
}

void
ScrubScanner::start()
{
    if (running_)
        return;
    running_ = true;
    cluster_.simulator().scheduleAfter(config_.tickInterval,
                                       [this] { tick(); });
}

void
ScrubScanner::stop()
{
    running_ = false;
}

void
ScrubScanner::tick()
{
    if (!running_)
        return;
    // Token bucket: refill one tick's worth, carry at most a few
    // ticks of unused budget so idle periods don't bank an
    // unbounded read burst.
    const double refill = config_.rate * config_.tickInterval;
    budget_ = std::min(budget_ + refill, 4.0 * refill);
    pumpReads();
    publishGauges();
    cluster_.simulator().scheduleAfter(config_.tickInterval,
                                       [this] { tick(); });
}

double
ScrubScanner::readCost(NodeId node) const
{
    if (!config_.adaptive)
        return chunkBytes_;
    // Chameleon-style dispatch: charge the bucket inversely to the
    // disk's idle foreground headroom, so a busy disk's scrub rate
    // degrades toward adaptiveFloor * rate while idle disks scrub
    // at full speed.
    const auto disk = cluster_.disk(node);
    const auto &net = cluster_.network();
    const double cap = net.capacity(disk);
    const double fg =
        cap > 0
            ? net.currentTagRate(disk, sim::FlowTag::kForeground) /
                  cap
            : 0.0;
    const double headroom =
        std::clamp(1.0 - fg, config_.adaptiveFloor, 1.0);
    return chunkBytes_ / headroom;
}

void
ScrubScanner::advanceCursor()
{
    if (++chunkCursor_ >= stripes_.code().n()) {
        chunkCursor_ = 0;
        if (++stripeCursor_ >= stripes_.stripeCount()) {
            stripeCursor_ = 0;
            ++epoch_;
        }
    }
}

void
ScrubScanner::pumpReads()
{
    if (stripes_.stripeCount() == 0)
        return;
    // Lost/down chunks are skipped without charge, but bound the
    // metadata walk per pump so a mostly-lost table cannot spin the
    // cursor through whole epochs inside one tick.
    int64_t visits = std::max<int64_t>(
        256, 4 * static_cast<int64_t>(config_.rate *
                                      config_.tickInterval /
                                      chunkBytes_));
    while (visits-- > 0 && inFlight_ < config_.maxInFlight) {
        const FailedChunk fc{stripeCursor_, chunkCursor_};
        if (stripes_.chunkLost(fc.stripe, fc.chunk)) {
            advanceCursor();
            continue;
        }
        const NodeId node = stripes_.location(fc.stripe, fc.chunk);
        if (cluster_.nodeDown(node)) {
            advanceCursor();
            continue;
        }
        const double cost = readCost(node);
        if (budget_ < cost)
            break; // head-of-line: wait for the next refill
        budget_ -= cost;
        ++inFlight_;
        advanceCursor();
        cluster_.network().startFlow(
            {cluster_.disk(node)}, chunkBytes_,
            sim::FlowTag::kScrub,
            [this, fc] { onReadDone(fc, chunkBytes_); });
    }
}

void
ScrubScanner::onReadDone(FailedChunk chunk, Bytes bytes)
{
    --inFlight_;
    ++scrubbedTotal_;
    scrubBytes_ += bytes;
    telemetry::metrics()
        .counter("integrity.scrub_bytes")
        .add(static_cast<int64_t>(bytes));
    // The read ran the checksum kernel over the payload: surface
    // corruption unless a crash already promoted the chunk to lost
    // while the read was in flight.
    if (!stripes_.chunkLost(chunk.stripe, chunk.chunk) &&
        stripes_.chunkCorrupt(chunk.stripe, chunk.chunk))
        detect(chunk, DetectSource::kScrubRead);
    // Defer the refill pump: this runs inside the flow network's
    // completion dispatch, where starting flows must not re-enter.
    cluster_.simulator().scheduleAfter(0.0, [this] {
        if (running_)
            pumpReads();
    });
}

void
ScrubScanner::noteCorruption(FailedChunk chunk)
{
    ++seen_;
    rotTimes_.emplace(key(chunk), cluster_.simulator().now());
    telemetry::metrics()
        .counter("integrity.corruptions_injected")
        .add();
}

bool
ScrubScanner::detect(FailedChunk chunk, DetectSource source)
{
    auto &table = stripes_.table();
    if (!table.chunkCorrupt(chunk.stripe, chunk.chunk) ||
        stripes_.chunkLost(chunk.stripe, chunk.chunk))
        return false;
    ++detected_;
    const SimTime now = cluster_.simulator().now();
    auto &m = telemetry::metrics();
    auto it = rotTimes_.find(key(chunk));
    if (it != rotTimes_.end()) {
        const SimTime latency = now - it->second;
        m.histogram("integrity.detection_latency",
                    {1, 5, 15, 30, 60, 120, 300, 600, 1800})
            .observe(latency);
        latencySum_ += latency;
        latencyMax_ = std::max(latencyMax_, latency);
        ++latencyCount_;
        rotTimes_.erase(it);
    }
    const char *how = source == DetectSource::kScrubRead
                          ? "integrity.detected.scrub"
                      : source == DetectSource::kVerifyRead
                          ? "integrity.detected.verify_read"
                          : "integrity.detected.verify_decode";
    m.counter(how).add();
    m.counter("integrity.corruptions_detected").add();
    CHAMELEON_TELEM(telemetry::tracer().instant(
        now, telemetry::kTrackFault, "integrity", "detect",
        {{"stripe", chunk.stripe},
         {"chunk", chunk.chunk},
         {"source", static_cast<int>(source)}}));
    // Promote silent corruption to a real loss; the repair layer
    // takes it from here (and markRepaired clears the corrupt bit
    // once a verified reconstruction lands).
    table.markLost(chunk.stripe, chunk.chunk);
    pendingRepair_.insert(key(chunk));
    // Tier classification mirrors ReplicatorScanner::scanStripe: a
    // detected corruption is one fewer survivor, so it counts
    // toward data-loss-risk combined with real erasures.
    const int survivors = static_cast<int>(
        stripes_.availableChunks(chunk.stripe).size());
    const int margin = survivors - table.code().k();
    const RepairTier tier = margin < config_.riskMargin
                                ? RepairTier::kDataLossRisk
                                : RepairTier::kDegraded;
    if (onDetected_)
        onDetected_(chunk, tier);
    return true;
}

void
ScrubScanner::noteOutcome(const FailedChunk &chunk, bool repaired)
{
    if (pendingRepair_.erase(key(chunk)) == 0)
        return;
    if (repaired) {
        ++repaired_;
        telemetry::metrics()
            .counter("integrity.corruptions_repaired")
            .add();
    } else {
        telemetry::metrics()
            .counter("integrity.corruptions_unrecovered")
            .add();
    }
}

bool
ScrubScanner::quiescent() const
{
    if (!pendingRepair_.empty())
        return false;
    for (const auto &kv : rotTimes_) {
        const StripeId s = static_cast<StripeId>(kv.first >> 8);
        const ChunkIndex c =
            static_cast<ChunkIndex>(kv.first & 0xFF);
        // Still silent: corrupt and not promoted to lost (a crash
        // that claims the chunk hands it to normal repair instead).
        if (stripes_.chunkCorrupt(s, c) && !stripes_.chunkLost(s, c))
            return false;
    }
    return true;
}

void
ScrubScanner::publishGauges()
{
    auto &m = telemetry::metrics();
    const int total = stripes_.stripeCount();
    m.gauge("scrub.scan_progress")
        .set(total > 0 ? static_cast<double>(stripeCursor_) / total
                       : 1.0);
    m.gauge("scrub.epoch").set(static_cast<double>(epoch_));
    m.gauge("scrub.in_flight").set(static_cast<double>(inFlight_));
}

} // namespace cluster
} // namespace chameleon
