/**
 * @file
 * The cluster model: a set of storage nodes and client nodes, each
 * with an uplink, a downlink, and (storage nodes only) a disk, all
 * registered as resources of one FlowNetwork.
 *
 * Mirrors the paper's testbed: 20 m5.xlarge instances with 10 Gb/s
 * full-duplex networking and ~500 MB/s SSDs, plus separate client
 * instances replaying traces.
 */

#ifndef CHAMELEON_CLUSTER_CLUSTER_HH_
#define CHAMELEON_CLUSTER_CLUSTER_HH_

#include <vector>

#include "sim/flow_network.hh"
#include "sim/simulator.hh"
#include "util/types.hh"

namespace chameleon {
namespace cluster {

/** Static cluster dimensions and per-node capacities. */
struct ClusterConfig
{
    /** Storage nodes (the paper provisions 20 instances). */
    int numNodes = 20;
    /** Client nodes replaying foreground traces. */
    int numClients = 4;
    /** Per-node uplink capacity (bytes/s). */
    Rate uplinkBw = 10 * units::Gbps;
    /** Per-node downlink capacity (bytes/s). */
    Rate downlinkBw = 10 * units::Gbps;
    /** Per-node disk bandwidth shared by reads and writes. */
    Rate diskBw = 500 * units::MBps;
    /** Window for bandwidth accounting (paper: 15 s). */
    SimTime usageWindow = 15.0;
    /**
     * Racks for hierarchical topologies (0 = flat, the paper's EC2
     * setting). With R > 0 racks, node i belongs to rack i % R, and
     * every cross-rack transfer additionally traverses the source
     * rack's aggregation uplink and the target rack's aggregation
     * downlink.
     */
    int racks = 0;
    /**
     * Oversubscription of rack aggregation links: a rack's uplink
     * capacity is (nodes-in-rack * uplinkBw) / oversubscription, the
     * standard datacenter design ratio (1 = full bisection).
     */
    double rackOversubscription = 1.0;

    bool operator==(const ClusterConfig &) const = default;
};

/** Owns the FlowNetwork resources for all nodes; see file comment. */
class Cluster
{
  public:
    Cluster(sim::Simulator &sim, const ClusterConfig &config);

    sim::Simulator &simulator() { return sim_; }
    sim::FlowNetwork &network() { return net_; }
    const sim::FlowNetwork &network() const { return net_; }
    const ClusterConfig &config() const { return config_; }

    int numNodes() const { return config_.numNodes; }
    int numClients() const { return config_.numClients; }

    /**
     * Liveness bookkeeping for fault injection. A down node's
     * resources still exist (capacity is not zeroed — cancelling the
     * flows that touch it is the repair layer's job), but the
     * executor refuses to start new flows against it.
     */
    void markNodeDown(NodeId node);
    void markNodeUp(NodeId node);
    bool nodeDown(NodeId node) const;

    /** Uplink resource of storage node `node`. */
    sim::ResourceId uplink(NodeId node) const;
    /** Downlink resource of storage node `node`. */
    sim::ResourceId downlink(NodeId node) const;
    /** Disk resource of storage node `node`. */
    sim::ResourceId disk(NodeId node) const;

    /** Uplink resource of client `client`. */
    sim::ResourceId clientUplink(int client) const;
    /** Downlink resource of client `client`. */
    sim::ResourceId clientDownlink(int client) const;

    /** Rack of a storage node (-1 when the topology is flat). */
    int rackOf(NodeId node) const;
    /** Aggregation uplink of rack `rack` (racks > 0 only). */
    sim::ResourceId rackUplink(int rack) const;
    /** Aggregation downlink of rack `rack` (racks > 0 only). */
    sim::ResourceId rackDownlink(int rack) const;

    /**
     * Resource path of a node-to-node transfer.
     *
     * @param read_disk   include the source's disk (reading stored
     *                    chunk data, as opposed to forwarding a
     *                    partially decoded chunk held in memory).
     * @param write_disk  include the destination's disk (persisting a
     *                    repaired chunk, as opposed to combining in
     *                    memory at a relay).
     */
    std::vector<sim::ResourceId>
    transferPath(NodeId from, NodeId to, bool read_disk,
                 bool write_disk) const;

    /** Path of a foreground read served by `node` to `client`. */
    std::vector<sim::ResourceId>
    clientReadPath(NodeId node, int client) const;

    /** Path of a foreground update from `client` to `node`. */
    std::vector<sim::ResourceId>
    clientWritePath(int client, NodeId node) const;

  private:
    void checkNode(NodeId node) const;
    void checkClient(int client) const;

    sim::Simulator &sim_;
    ClusterConfig config_;
    sim::FlowNetwork net_;
    std::vector<sim::ResourceId> uplinks_;
    std::vector<sim::ResourceId> downlinks_;
    std::vector<sim::ResourceId> disks_;
    std::vector<sim::ResourceId> clientUplinks_;
    std::vector<sim::ResourceId> clientDownlinks_;
    std::vector<sim::ResourceId> rackUplinks_;
    std::vector<sim::ResourceId> rackDownlinks_;
    /** down_[node]: crashed and not yet rejoined. */
    std::vector<bool> down_;
};

} // namespace cluster
} // namespace chameleon

#endif // CHAMELEON_CLUSTER_CLUSTER_HH_
