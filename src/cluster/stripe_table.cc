#include "cluster/stripe_table.hh"

#include <algorithm>
#include <bit>

#include "util/logging.hh"

namespace chameleon {
namespace cluster {

StripeTable::StripeTable(std::shared_ptr<const ec::ErasureCode> code,
                         int num_nodes)
    : code_(std::move(code)), numNodes_(num_nodes)
{
    CHAMELEON_ASSERT(code_ != nullptr, "null code");
    n_ = code_->n();
    CHAMELEON_ASSERT(num_nodes >= n_, "cluster of ", num_nodes,
                     " nodes cannot host ", code_->name(),
                     " stripes (need ", n_, ")");
    CHAMELEON_ASSERT(n_ <= 64,
                     "StripeTable lost-bitmask supports n <= 64, got ",
                     n_);
    nodeFlags_.assign(static_cast<std::size_t>(numNodes_), 0);
    nodeIndex_.resize(static_cast<std::size_t>(numNodes_));
    hostStamp_.assign(static_cast<std::size_t>(numNodes_), 0);
    fyPool_.resize(static_cast<std::size_t>(numNodes_));
    for (int i = 0; i < numNodes_; ++i)
        fyPool_[static_cast<std::size_t>(i)] = i;
}

void
StripeTable::createStripes(int count, Rng &rng)
{
    CHAMELEON_ASSERT(count >= 0, "negative stripe count");
    const auto n = static_cast<std::size_t>(n_);
    const std::size_t base = lostBits_.size();
    placement_.reserve(placement_.size() +
                       static_cast<std::size_t>(count) * n);
    lostBits_.reserve(base + static_cast<std::size_t>(count));
    corruptBits_.reserve(base + static_cast<std::size_t>(count));
    gen_.reserve(base + static_cast<std::size_t>(count));
    state_.reserve(base + static_cast<std::size_t>(count));
    misplaced_.reserve(base + static_cast<std::size_t>(count));

    // Swap targets for one stripe's partial Fisher-Yates; undone in
    // reverse after each stripe so fyPool_ stays the identity
    // permutation without an O(numNodes) re-init per stripe. The
    // draw sequence matches the legacy implementation exactly.
    uint32_t swaps[64];
    for (int s = 0; s < count; ++s) {
        for (int i = 0; i < n_; ++i) {
            auto j = static_cast<std::size_t>(i) +
                     rng.below(fyPool_.size() -
                               static_cast<std::size_t>(i));
            swaps[i] = static_cast<uint32_t>(j);
            std::swap(fyPool_[static_cast<std::size_t>(i)],
                      fyPool_[j]);
        }
        const auto stripe =
            static_cast<StripeId>(lostBits_.size());
        for (int c = 0; c < n_; ++c) {
            const NodeId node = fyPool_[static_cast<std::size_t>(c)];
            placement_.push_back(node);
            nodeIndex_[static_cast<std::size_t>(node)].push_back(
                static_cast<uint32_t>(slot(stripe, c)));
        }
        lostBits_.push_back(0);
        corruptBits_.push_back(0);
        gen_.push_back(0);
        state_.push_back(
            static_cast<uint8_t>(StripeHealth::kHealthy));
        misplaced_.push_back(0);
        for (int i = n_ - 1; i >= 0; --i)
            std::swap(fyPool_[static_cast<std::size_t>(i)],
                      fyPool_[swaps[i]]);
    }
}

void
StripeTable::checkStripe(StripeId stripe) const
{
    CHAMELEON_ASSERT(stripe >= 0 &&
                         static_cast<std::size_t>(stripe) <
                             lostBits_.size(),
                     "bad stripe id ", stripe);
}

void
StripeTable::checkNode(NodeId node) const
{
    CHAMELEON_ASSERT(node >= 0 && node < numNodes_, "bad node ",
                     node);
}

NodeId
StripeTable::location(StripeId stripe, ChunkIndex chunk) const
{
    checkStripe(stripe);
    CHAMELEON_ASSERT(chunk >= 0 && chunk < n_, "bad chunk index ",
                     chunk);
    return placement_[slot(stripe, chunk)];
}

uint64_t
StripeTable::derivedMask(StripeId stripe) const
{
    uint64_t mask = lostBits_[static_cast<std::size_t>(stripe)];
    if (pendingWipeCount_ > 0) {
        const std::size_t base = slot(stripe, 0);
        for (int c = 0; c < n_; ++c) {
            if (nodeFlags_[static_cast<std::size_t>(
                    placement_[base + static_cast<std::size_t>(c)])] &
                kNodeWipePending)
                mask |= uint64_t{1} << c;
        }
    }
    return mask;
}

void
StripeTable::relocate(StripeId stripe, ChunkIndex chunk, NodeId node)
{
    checkStripe(stripe);
    checkNode(node);
    CHAMELEON_ASSERT(chunk >= 0 && chunk < n_, "bad chunk index ",
                     chunk);
    // Enforce the one-chunk-per-node invariant.
    const uint64_t mask = derivedMask(stripe);
    const std::size_t base = slot(stripe, 0);
    for (ChunkIndex c = 0; c < n_; ++c) {
        if (c != chunk &&
            placement_[base + static_cast<std::size_t>(c)] == node &&
            !(mask >> c & 1)) {
            CHAMELEON_PANIC("relocating chunk ", chunk, " of stripe ",
                            stripe, " onto node ", node,
                            " which hosts live chunk ", c);
        }
    }
    placement_[base + static_cast<std::size_t>(chunk)] = node;
    nodeIndex_[static_cast<std::size_t>(node)].push_back(
        static_cast<uint32_t>(slot(stripe, chunk)));
    ++gen_[static_cast<std::size_t>(stripe)];
}

bool
StripeTable::chunkLost(StripeId stripe, ChunkIndex chunk) const
{
    checkStripe(stripe);
    if (lostBits_[static_cast<std::size_t>(stripe)] >> chunk & 1)
        return true;
    if (pendingWipeCount_ == 0)
        return false;
    return (nodeFlags_[static_cast<std::size_t>(
                placement_[slot(stripe, chunk)])] &
            kNodeWipePending) != 0;
}

uint64_t
StripeTable::lostMask(StripeId stripe) const
{
    checkStripe(stripe);
    return lostBits_[static_cast<std::size_t>(stripe)];
}

void
StripeTable::markLost(StripeId stripe, ChunkIndex chunk)
{
    checkStripe(stripe);
    const uint64_t bit = uint64_t{1} << chunk;
    auto &bits = lostBits_[static_cast<std::size_t>(stripe)];
    if (!(bits & bit)) {
        bits |= bit;
        ++gen_[static_cast<std::size_t>(stripe)];
    }
}

void
StripeTable::markRepaired(StripeId stripe, ChunkIndex chunk)
{
    checkStripe(stripe);
    const uint64_t bit = uint64_t{1} << chunk;
    auto &bits = lostBits_[static_cast<std::size_t>(stripe)];
    if (bits & bit) {
        bits &= ~bit;
        ++gen_[static_cast<std::size_t>(stripe)];
    }
    // The repair rewrote the payload from verified survivors.
    clearCorrupt(stripe, chunk);
}

void
StripeTable::markCorrupt(StripeId stripe, ChunkIndex chunk)
{
    checkStripe(stripe);
    CHAMELEON_ASSERT(chunk >= 0 && chunk < n_, "bad chunk index ",
                     chunk);
    const uint64_t bit = uint64_t{1} << chunk;
    auto &bits = corruptBits_[static_cast<std::size_t>(stripe)];
    if (!(bits & bit)) {
        bits |= bit;
        ++corruptCount_;
        // Deliberately no generation bump: bit rot is *silent* —
        // nothing observable changed until detection marks it lost.
    }
}

void
StripeTable::clearCorrupt(StripeId stripe, ChunkIndex chunk)
{
    checkStripe(stripe);
    const uint64_t bit = uint64_t{1} << chunk;
    auto &bits = corruptBits_[static_cast<std::size_t>(stripe)];
    if (bits & bit) {
        bits &= ~bit;
        --corruptCount_;
    }
}

bool
StripeTable::chunkCorrupt(StripeId stripe, ChunkIndex chunk) const
{
    checkStripe(stripe);
    return (corruptBits_[static_cast<std::size_t>(stripe)] >> chunk &
            1) != 0;
}

uint64_t
StripeTable::corruptMask(StripeId stripe) const
{
    checkStripe(stripe);
    return corruptBits_[static_cast<std::size_t>(stripe)];
}

const std::vector<uint32_t> &
StripeTable::gatherNode(NodeId node) const
{
    auto &list = nodeIndex_[static_cast<std::size_t>(node)];
    // Drop stale entries (chunk relocated away since insertion).
    std::size_t w = 0;
    for (std::size_t r = 0; r < list.size(); ++r) {
        if (placement_[list[r]] == node)
            list[w++] = list[r];
    }
    list.resize(w);
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    return list;
}

std::vector<FailedChunk>
StripeTable::failNode(NodeId node)
{
    checkNode(node);
    CHAMELEON_ASSERT(
        !(nodeFlags_[static_cast<std::size_t>(node)] & kNodeFailed),
        "node ", node, " already failed");
    nodeFlags_[static_cast<std::size_t>(node)] |= kNodeFailed;
    ++failedCount_;
    std::vector<FailedChunk> out;
    for (uint32_t packed : gatherNode(node)) {
        const auto stripe =
            static_cast<StripeId>(packed / static_cast<uint32_t>(n_));
        const auto chunk = static_cast<ChunkIndex>(
            packed % static_cast<uint32_t>(n_));
        if (!chunkLost(stripe, chunk)) {
            markLost(stripe, chunk);
            out.push_back(FailedChunk{stripe, chunk});
        }
    }
    return out;
}

void
StripeTable::failNodeDeferred(NodeId node)
{
    checkNode(node);
    CHAMELEON_ASSERT(
        !(nodeFlags_[static_cast<std::size_t>(node)] & kNodeFailed),
        "node ", node, " already failed");
    nodeFlags_[static_cast<std::size_t>(node)] |=
        kNodeFailed | kNodeWipePending;
    ++failedCount_;
    ++pendingWipeCount_;
    ++wipeStamp_;
}

bool
StripeTable::nodeFailed(NodeId node) const
{
    checkNode(node);
    return (nodeFlags_[static_cast<std::size_t>(node)] &
            kNodeFailed) != 0;
}

void
StripeTable::materializeWipe(StripeId stripe)
{
    checkStripe(stripe);
    if (pendingWipeCount_ == 0)
        return;
    const uint64_t mask = derivedMask(stripe);
    auto &bits = lostBits_[static_cast<std::size_t>(stripe)];
    if (mask != bits) {
        bits = mask;
        ++gen_[static_cast<std::size_t>(stripe)];
    }
}

void
StripeTable::clearPendingWipes()
{
    if (pendingWipeCount_ == 0)
        return;
    for (auto &flags : nodeFlags_)
        flags &= static_cast<uint8_t>(~kNodeWipePending);
    pendingWipeCount_ = 0;
}

void
StripeTable::rejoinNode(NodeId node)
{
    checkNode(node);
    auto &flags = nodeFlags_[static_cast<std::size_t>(node)];
    CHAMELEON_ASSERT(flags & kNodeFailed, "node ", node,
                     " has not failed");
    if (flags & kNodeWipePending) {
        // Persist this node's wipe losses before dropping the flag:
        // the node returns empty, so its chunks stay lost.
        for (uint32_t packed : gatherNode(node)) {
            const auto stripe = static_cast<StripeId>(
                packed / static_cast<uint32_t>(n_));
            const auto chunk = static_cast<ChunkIndex>(
                packed % static_cast<uint32_t>(n_));
            markLost(stripe, chunk);
        }
        flags &= static_cast<uint8_t>(~kNodeWipePending);
        --pendingWipeCount_;
    }
    flags &= static_cast<uint8_t>(~kNodeFailed);
    --failedCount_;
}

std::vector<FailedChunk>
StripeTable::lostChunks() const
{
    std::vector<FailedChunk> out;
    for (StripeId s = 0; s < stripeCount(); ++s) {
        uint64_t mask = derivedMask(s);
        while (mask) {
            const int c = std::countr_zero(mask);
            mask &= mask - 1;
            out.push_back(
                FailedChunk{s, static_cast<ChunkIndex>(c)});
        }
    }
    return out;
}

std::vector<ChunkIndex>
StripeTable::availableChunks(StripeId stripe) const
{
    checkStripe(stripe);
    const uint64_t mask = derivedMask(stripe);
    std::vector<ChunkIndex> out;
    for (ChunkIndex c = 0; c < n_; ++c)
        if (!(mask >> c & 1))
            out.push_back(c);
    return out;
}

std::vector<NodeId>
StripeTable::candidateDestinations(StripeId stripe) const
{
    checkStripe(stripe);
    if (++stampEpoch_ == 0) {
        std::fill(hostStamp_.begin(), hostStamp_.end(), 0u);
        stampEpoch_ = 1;
    }
    const uint64_t mask = derivedMask(stripe);
    const std::size_t base = slot(stripe, 0);
    for (ChunkIndex c = 0; c < n_; ++c) {
        if (!(mask >> c & 1))
            hostStamp_[static_cast<std::size_t>(
                placement_[base + static_cast<std::size_t>(c)])] =
                stampEpoch_;
    }
    std::vector<NodeId> out;
    for (NodeId node = 0; node < numNodes_; ++node) {
        if (hostStamp_[static_cast<std::size_t>(node)] !=
                stampEpoch_ &&
            !(nodeFlags_[static_cast<std::size_t>(node)] &
              kNodeFailed))
            out.push_back(node);
    }
    return out;
}

std::vector<FailedChunk>
StripeTable::chunksOnNode(NodeId node) const
{
    checkNode(node);
    std::vector<FailedChunk> out;
    for (uint32_t packed : gatherNode(node)) {
        out.push_back(FailedChunk{
            static_cast<StripeId>(packed /
                                  static_cast<uint32_t>(n_)),
            static_cast<ChunkIndex>(packed %
                                    static_cast<uint32_t>(n_))});
    }
    return out;
}

uint32_t
StripeTable::generation(StripeId stripe) const
{
    checkStripe(stripe);
    return gen_[static_cast<std::size_t>(stripe)];
}

StripeHealth
StripeTable::state(StripeId stripe) const
{
    checkStripe(stripe);
    return static_cast<StripeHealth>(
        state_[static_cast<std::size_t>(stripe)]);
}

void
StripeTable::setState(StripeId stripe, StripeHealth h)
{
    checkStripe(stripe);
    state_[static_cast<std::size_t>(stripe)] =
        static_cast<uint8_t>(h);
}

bool
StripeTable::misplaced(StripeId stripe) const
{
    checkStripe(stripe);
    return misplaced_[static_cast<std::size_t>(stripe)] != 0;
}

void
StripeTable::markMisplaced(StripeId stripe)
{
    checkStripe(stripe);
    auto &flag = misplaced_[static_cast<std::size_t>(stripe)];
    if (!flag) {
        flag = 1;
        ++gen_[static_cast<std::size_t>(stripe)];
    }
}

void
StripeTable::clearMisplaced(StripeId stripe)
{
    checkStripe(stripe);
    auto &flag = misplaced_[static_cast<std::size_t>(stripe)];
    if (flag) {
        flag = 0;
        ++gen_[static_cast<std::size_t>(stripe)];
    }
}

std::size_t
StripeTable::memoryBytes() const
{
    std::size_t bytes = placement_.capacity() * sizeof(NodeId) +
                        lostBits_.capacity() * sizeof(uint64_t) +
                        corruptBits_.capacity() * sizeof(uint64_t) +
                        gen_.capacity() * sizeof(uint32_t) +
                        state_.capacity() * sizeof(uint8_t) +
                        misplaced_.capacity() * sizeof(uint8_t) +
                        nodeFlags_.capacity() * sizeof(uint8_t) +
                        hostStamp_.capacity() * sizeof(uint32_t) +
                        fyPool_.capacity() * sizeof(NodeId) +
                        nodeIndex_.capacity() *
                            sizeof(std::vector<uint32_t>);
    for (const auto &list : nodeIndex_)
        bytes += list.capacity() * sizeof(uint32_t);
    return bytes;
}

void
StripeTable::compact()
{
    placement_.shrink_to_fit();
    lostBits_.shrink_to_fit();
    corruptBits_.shrink_to_fit();
    gen_.shrink_to_fit();
    state_.shrink_to_fit();
    misplaced_.shrink_to_fit();
    for (auto &list : nodeIndex_)
        list.shrink_to_fit();
}

} // namespace cluster
} // namespace chameleon
