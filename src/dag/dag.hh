/**
 * @file
 * ECDAG-style repair-plan representation (after OpenEC's
 * ECDAG::Join/BindX): a directed acyclic graph whose vertices are
 * slice-level partial results and whose edges carry GF(2^8)
 * combination coefficients.
 *
 * Leaf vertices name stored helper chunks (node, chunk index, read
 * fraction); internal vertices are partial decodes materialized on a
 * node chosen by BindX/bind; the single root is the reconstructed
 * chunk at the repair destination. Join(target, sources, coeffs)
 * declares target = sum_i coeffs[i] * sources[i] over Equation (1)'s
 * linearity, so any in-tree ChunkRepairPlan lowers losslessly into
 * this form (repair/dag_bridge.hh) — and topologies a parent-array
 * tree cannot express (multi-level forwarding with bounded fan-in,
 * partial-parallel aggregation, shared partial results) become plain
 * Joins.
 *
 * The executor streams a chunk through the DAG as S configurable
 * slices: an edge ships slice s as soon as its tail vertex holds
 * slice s, so slice s crosses hop h+1 while slice s+1 crosses hop h
 * (repair pipelining). evaluateDag() is the byte-exact reference for
 * that execution: it folds real chunk data through the same fused
 * region kernels as evaluatePlan(), and on a lowered tree the two are
 * byte-identical.
 */

#ifndef CHAMELEON_DAG_DAG_HH_
#define CHAMELEON_DAG_DAG_HH_

#include <optional>
#include <string>
#include <vector>

#include "ec/buffer.hh"
#include "gf/gf256.hh"
#include "util/types.hh"

namespace chameleon {
namespace dag {

/** Identifier of a vertex within one EcDag (0-based, dense). */
using VertexId = int32_t;

inline constexpr VertexId kInvalidVertex = -1;

/** One stored helper chunk feeding a DAG. */
struct DagSource
{
    /** Node hosting the helper chunk. */
    NodeId node = kInvalidNode;
    /** Helper chunk index within the stripe. */
    ChunkIndex chunk = 0;
    /** Decoding coefficient alpha_i (combinable codes). */
    gf::Elem coeff = gf::kOne;
    /** Fraction of the chunk read (1.0, or 0.5 for Butterfly rows). */
    double fraction = 1.0;

    bool operator==(const DagSource &) const = default;
};

/** One vertex: a stored chunk (leaf) or a partial decode. */
struct DagVertex
{
    /** Node where this result materializes (kInvalidNode until
     * bound; validate() requires every vertex bound). */
    NodeId node = kInvalidNode;
    /** Leaf payload: index into EcDag::sources(), or -1. */
    int source = -1;
    /** In-edges declared by Join: value = sum coeffs[i]*in[i]. */
    std::vector<VertexId> in;
    std::vector<gf::Elem> coeffs;

    bool isLeaf() const { return source >= 0; }
};

/** Repair DAG; see file comment. */
class EcDag
{
  public:
    /** Identity of the chunk this DAG repairs (metadata only). */
    StripeId stripe = 0;
    ChunkIndex failedChunk = 0;

    /** Adds a leaf vertex for a stored helper chunk, bound to the
     * node hosting it. */
    VertexId addLeaf(const DagSource &src);

    /** Adds an internal vertex (optionally pre-bound to a node). */
    VertexId addVertex(NodeId node = kInvalidNode);

    /**
     * Declares target = sum_i coeffs[i] * sources[i] (OpenEC's
     * ECDAG::Join). Repeated Joins on one target append in-edges.
     * Leaves cannot be Join targets.
     */
    void Join(VertexId target, const std::vector<VertexId> &sources,
              const std::vector<gf::Elem> &coeffs);

    /**
     * Co-location binding (OpenEC's ECDAG::BindX): every listed
     * vertex computes on one node — the first bound vertex's node.
     * At least one listed vertex must already be bound. Edges between
     * co-located vertices execute without network flows.
     */
    void BindX(const std::vector<VertexId> &vertices);

    /** Binds one vertex to a node explicitly. */
    void bind(VertexId v, NodeId node);

    /** Declares the root (the reconstructed chunk); its node is the
     * repair destination. */
    void setRoot(VertexId v);

    /** False for sub-chunk codes: no internal combination vertices
     * are allowed, every leaf feeds the root directly. */
    bool combinable = true;

    int vertexCount() const
    {
        return static_cast<int>(vertices_.size());
    }
    const DagVertex &vertex(VertexId v) const;
    VertexId root() const { return root_; }
    NodeId destination() const;
    const std::vector<DagSource> &sources() const { return sources_; }

    /** Longest leaf-to-root edge count (star = 1). */
    int depth() const;

    /** Vertices in dependency order, leaves first. Panics on a
     * cycle. */
    std::vector<VertexId> topoOrder() const;

    /**
     * Panics if malformed: no root, unbound vertices, leaf Join
     * targets, out-of-range or duplicate in-edges, coefficient count
     * mismatches, cycles, vertices that cannot reach the root,
     * internal vertices without in-edges, a leaf source used twice,
     * or internal vertices in a non-combinable DAG.
     */
    void validate() const;

  private:
    std::vector<DagVertex> vertices_;
    std::vector<DagSource> sources_;
    VertexId root_ = kInvalidVertex;
};

/**
 * Byte-exact reference evaluation used by tests: folds real chunk
 * data through the DAG exactly as the executing nodes would, one
 * fused mulAddRegionMulti pass per vertex (combinable DAGs only —
 * mirroring evaluatePlan's contract).
 *
 * @param stripe_data  all n chunks of the stripe.
 * @return the reconstructed chunk (the root's value).
 */
ec::Buffer evaluateDag(const EcDag &dag,
                       const std::vector<ec::Buffer> &stripe_data);

/**
 * Lowers a parent-array in-tree (the ChunkRepairPlan shape) into a
 * DAG: a source with children becomes leaf + combine vertex bound to
 * its node; a childless source's leaf feeds its parent directly with
 * its own coefficient, so star edges stay direct uncombined
 * transfers. `parents[i]` is a source index or -1 (the destination).
 * Non-combinable inputs must be stars and lower to direct leaf->root
 * edges.
 */
EcDag dagFromParents(StripeId stripe, ChunkIndex failed,
                     NodeId destination,
                     const std::vector<DagSource> &sources,
                     const std::vector<int> &parents,
                     bool combinable = true);

/** Star: every leaf feeds the root directly (CR). */
EcDag buildStarDag(StripeId stripe, ChunkIndex failed,
                   NodeId destination,
                   const std::vector<DagSource> &sources,
                   bool combinable = true);

/** ECPipe chain: s0 -> s1 -> ... -> s(k-1) -> destination. */
EcDag buildChainDag(StripeId stripe, ChunkIndex failed,
                    NodeId destination,
                    const std::vector<DagSource> &sources);

/** PPR binomial aggregation tree (pairing rounds). */
EcDag buildPprDag(StripeId stripe, ChunkIndex failed,
                  NodeId destination,
                  const std::vector<DagSource> &sources);

/**
 * Multi-level forwarding: a complete `fan_in`-ary aggregation tree
 * of depth ~log_F(k), the bounded-fan-in relay topology of the MLF
 * recovery algorithm (trades CR's destination hot spot against the
 * chain's long dependency path).
 */
EcDag buildMlfDag(StripeId stripe, ChunkIndex failed,
                  NodeId destination,
                  const std::vector<DagSource> &sources, int fan_in);

/** Plan-topology families selectable per experiment. */
enum class RepairTopology {
    kAuto,  ///< keep each algorithm's native tree execution
    kStar,  ///< CR star
    kChain, ///< ECPipe chain
    kPpr,   ///< PPR binomial tree
    kMlf,   ///< multi-level forwarding, fan-in F
};

/** A topology choice plus its parameter (MLF fan-in). */
struct TopologySpec
{
    RepairTopology kind = RepairTopology::kAuto;
    /** MLF fan-in (>= 2); ignored by the other kinds. */
    int fanIn = 2;

    bool operator==(const TopologySpec &) const = default;
};

/**
 * Parses a topology key: "auto" | "star" | "chain" | "ppr" |
 * "mlf:F" with F >= 2. nullopt + *error on malformed input.
 */
std::optional<TopologySpec>
topologyFromKey(const std::string &key, std::string *error = nullptr);

/** Inverse of topologyFromKey ("mlf:3"). */
std::string topologyKey(const TopologySpec &spec);

/** Builds `spec`'s topology over `sources`. Non-combinable inputs
 * and kAuto fall back to the star (direct transfers). */
EcDag buildTopologyDag(const TopologySpec &spec, StripeId stripe,
                       ChunkIndex failed, NodeId destination,
                       const std::vector<DagSource> &sources,
                       bool combinable = true);

} // namespace dag
} // namespace chameleon

#endif // CHAMELEON_DAG_DAG_HH_
