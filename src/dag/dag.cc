#include "dag/dag.hh"

#include <algorithm>
#include <set>

#include "util/logging.hh"

namespace chameleon {
namespace dag {

VertexId
EcDag::addLeaf(const DagSource &src)
{
    CHAMELEON_ASSERT(src.node != kInvalidNode, "leaf lacks node");
    CHAMELEON_ASSERT(src.fraction > 0 && src.fraction <= 1.0,
                     "bad fraction ", src.fraction);
    DagVertex v;
    v.node = src.node;
    v.source = static_cast<int>(sources_.size());
    sources_.push_back(src);
    vertices_.push_back(std::move(v));
    return static_cast<VertexId>(vertices_.size()) - 1;
}

VertexId
EcDag::addVertex(NodeId node)
{
    DagVertex v;
    v.node = node;
    vertices_.push_back(std::move(v));
    return static_cast<VertexId>(vertices_.size()) - 1;
}

void
EcDag::Join(VertexId target, const std::vector<VertexId> &sources,
            const std::vector<gf::Elem> &coeffs)
{
    CHAMELEON_ASSERT(target >= 0 && target < vertexCount(),
                     "Join target ", target, " out of range");
    CHAMELEON_ASSERT(sources.size() == coeffs.size(),
                     "Join arity mismatch: ", sources.size(),
                     " sources vs ", coeffs.size(), " coeffs");
    auto &tv = vertices_[static_cast<std::size_t>(target)];
    CHAMELEON_ASSERT(!tv.isLeaf(), "Join target ", target,
                     " is a leaf");
    for (VertexId s : sources) {
        CHAMELEON_ASSERT(s >= 0 && s < vertexCount(),
                         "Join source ", s, " out of range");
        CHAMELEON_ASSERT(s != target, "Join self-edge on ", target);
        tv.in.push_back(s);
    }
    tv.coeffs.insert(tv.coeffs.end(), coeffs.begin(), coeffs.end());
}

void
EcDag::BindX(const std::vector<VertexId> &vertices)
{
    CHAMELEON_ASSERT(!vertices.empty(), "BindX with no vertices");
    NodeId node = kInvalidNode;
    for (VertexId v : vertices) {
        CHAMELEON_ASSERT(v >= 0 && v < vertexCount(),
                         "BindX vertex ", v, " out of range");
        NodeId n = vertices_[static_cast<std::size_t>(v)].node;
        if (n != kInvalidNode) {
            node = n;
            break;
        }
    }
    CHAMELEON_ASSERT(node != kInvalidNode,
                     "BindX needs at least one bound vertex");
    for (VertexId v : vertices)
        vertices_[static_cast<std::size_t>(v)].node = node;
}

void
EcDag::bind(VertexId v, NodeId node)
{
    CHAMELEON_ASSERT(v >= 0 && v < vertexCount(),
                     "bind vertex ", v, " out of range");
    CHAMELEON_ASSERT(node != kInvalidNode, "bind to invalid node");
    vertices_[static_cast<std::size_t>(v)].node = node;
}

void
EcDag::setRoot(VertexId v)
{
    CHAMELEON_ASSERT(v >= 0 && v < vertexCount(),
                     "root ", v, " out of range");
    root_ = v;
}

const DagVertex &
EcDag::vertex(VertexId v) const
{
    CHAMELEON_ASSERT(v >= 0 && v < vertexCount(),
                     "vertex ", v, " out of range");
    return vertices_[static_cast<std::size_t>(v)];
}

NodeId
EcDag::destination() const
{
    CHAMELEON_ASSERT(root_ != kInvalidVertex, "DAG has no root");
    return vertices_[static_cast<std::size_t>(root_)].node;
}

std::vector<VertexId>
EcDag::topoOrder() const
{
    // Kahn's algorithm over in-edges; deterministic because ready
    // vertices are visited in ascending id order.
    const int n = vertexCount();
    std::vector<int> pending(static_cast<std::size_t>(n), 0);
    std::vector<std::vector<VertexId>> out(
        static_cast<std::size_t>(n));
    for (VertexId v = 0; v < n; ++v) {
        const auto &vert = vertices_[static_cast<std::size_t>(v)];
        pending[static_cast<std::size_t>(v)] =
            static_cast<int>(vert.in.size());
        for (VertexId s : vert.in)
            out[static_cast<std::size_t>(s)].push_back(v);
    }
    std::vector<VertexId> order;
    order.reserve(static_cast<std::size_t>(n));
    std::vector<VertexId> ready;
    for (VertexId v = 0; v < n; ++v)
        if (pending[static_cast<std::size_t>(v)] == 0)
            ready.push_back(v);
    std::size_t head = 0;
    while (head < ready.size()) {
        VertexId v = ready[head++];
        order.push_back(v);
        for (VertexId succ : out[static_cast<std::size_t>(v)])
            if (--pending[static_cast<std::size_t>(succ)] == 0)
                ready.push_back(succ);
    }
    CHAMELEON_ASSERT(static_cast<int>(order.size()) == n,
                     "cycle in DAG");
    return order;
}

int
EcDag::depth() const
{
    // Longest in-path per vertex along the topological order.
    auto order = topoOrder();
    std::vector<int> dist(static_cast<std::size_t>(vertexCount()), 0);
    int max_depth = 0;
    for (VertexId v : order) {
        const auto &vert = vertices_[static_cast<std::size_t>(v)];
        for (VertexId s : vert.in) {
            dist[static_cast<std::size_t>(v)] = std::max(
                dist[static_cast<std::size_t>(v)],
                dist[static_cast<std::size_t>(s)] + 1);
        }
        max_depth =
            std::max(max_depth, dist[static_cast<std::size_t>(v)]);
    }
    return max_depth;
}

void
EcDag::validate() const
{
    CHAMELEON_ASSERT(root_ != kInvalidVertex, "DAG has no root");
    const int n = vertexCount();
    std::set<int> leaves_seen;
    for (VertexId v = 0; v < n; ++v) {
        const auto &vert = vertices_[static_cast<std::size_t>(v)];
        CHAMELEON_ASSERT(vert.node != kInvalidNode,
                         "vertex ", v, " unbound");
        CHAMELEON_ASSERT(vert.in.size() == vert.coeffs.size(),
                         "vertex ", v, " coeff count mismatch");
        if (vert.isLeaf()) {
            CHAMELEON_ASSERT(vert.in.empty(),
                             "leaf ", v, " has in-edges");
            CHAMELEON_ASSERT(leaves_seen.insert(vert.source).second,
                             "source ", vert.source,
                             " used by two leaves");
        } else {
            CHAMELEON_ASSERT(!vert.in.empty(),
                             "internal vertex ", v, " has no inputs");
            CHAMELEON_ASSERT(combinable || v == root_,
                             "non-combinable DAG has internal vertex ",
                             v);
        }
        std::set<VertexId> dedup;
        for (VertexId s : vert.in) {
            CHAMELEON_ASSERT(s >= 0 && s < n,
                             "vertex ", v, " in-edge out of range");
            CHAMELEON_ASSERT(dedup.insert(s).second,
                             "vertex ", v, " duplicate in-edge from ",
                             s);
        }
    }
    // topoOrder panics on cycles; reachability of the root covers the
    // rest: every vertex must feed the final result.
    auto order = topoOrder();
    std::vector<bool> reaches(static_cast<std::size_t>(n), false);
    reaches[static_cast<std::size_t>(root_)] = true;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        if (!reaches[static_cast<std::size_t>(*it)])
            continue;
        for (VertexId s :
             vertices_[static_cast<std::size_t>(*it)].in)
            reaches[static_cast<std::size_t>(s)] = true;
    }
    for (VertexId v = 0; v < n; ++v)
        CHAMELEON_ASSERT(reaches[static_cast<std::size_t>(v)],
                         "vertex ", v, " cannot reach the root");
}

ec::Buffer
evaluateDag(const EcDag &dag,
            const std::vector<ec::Buffer> &stripe_data)
{
    CHAMELEON_ASSERT(dag.combinable,
                     "evaluateDag handles combinable DAGs only");
    dag.validate();
    const std::size_t size =
        stripe_data[static_cast<std::size_t>(
            dag.sources()[0].chunk)].size();

    // One fused kernel pass per internal vertex — the same
    // combination a relay computes before uploading, so the result
    // matches evaluatePlan byte for byte on lowered trees.
    std::vector<ec::Buffer> value(
        static_cast<std::size_t>(dag.vertexCount()));
    for (VertexId v : dag.topoOrder()) {
        const auto &vert = dag.vertex(v);
        if (vert.isLeaf())
            continue;
        ec::Buffer buf(size, 0);
        std::vector<const gf::Elem *> srcs;
        srcs.reserve(vert.in.size());
        for (VertexId s : vert.in) {
            const auto &sv = dag.vertex(s);
            srcs.push_back(
                sv.isLeaf()
                    ? stripe_data[static_cast<std::size_t>(
                          dag.sources()[static_cast<std::size_t>(
                              sv.source)].chunk)].data()
                    : value[static_cast<std::size_t>(s)].data());
        }
        gf::mulAddRegionMulti(std::span<uint8_t>(buf), srcs,
                              vert.coeffs);
        value[static_cast<std::size_t>(v)] = std::move(buf);
    }
    return std::move(value[static_cast<std::size_t>(dag.root())]);
}

EcDag
dagFromParents(StripeId stripe, ChunkIndex failed, NodeId destination,
               const std::vector<DagSource> &sources,
               const std::vector<int> &parents, bool combinable)
{
    CHAMELEON_ASSERT(destination != kInvalidNode,
                     "DAG lacks destination");
    CHAMELEON_ASSERT(!sources.empty(), "DAG has no sources");
    CHAMELEON_ASSERT(sources.size() == parents.size(),
                     "parents size mismatch");
    const int n = static_cast<int>(sources.size());

    EcDag dag;
    dag.stripe = stripe;
    dag.failedChunk = failed;
    dag.combinable = combinable;

    std::vector<std::vector<int>> children(
        static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        int p = parents[static_cast<std::size_t>(i)];
        CHAMELEON_ASSERT(p == -1 || (p >= 0 && p < n && p != i),
                         "bad parent index ", p);
        if (p >= 0)
            children[static_cast<std::size_t>(p)].push_back(i);
    }

    std::vector<VertexId> leaf(static_cast<std::size_t>(n));
    std::vector<VertexId> combine(static_cast<std::size_t>(n),
                                  kInvalidVertex);
    for (int i = 0; i < n; ++i)
        leaf[static_cast<std::size_t>(i)] =
            dag.addLeaf(sources[static_cast<std::size_t>(i)]);
    for (int i = 0; i < n; ++i) {
        if (children[static_cast<std::size_t>(i)].empty())
            continue;
        CHAMELEON_ASSERT(combinable,
                         "non-combinable plan must be a star");
        // A relay's partial decode: its own coefficient-scaled chunk
        // plus each child's contribution, co-located with its leaf.
        combine[static_cast<std::size_t>(i)] = dag.addVertex();
        dag.BindX({leaf[static_cast<std::size_t>(i)],
                   combine[static_cast<std::size_t>(i)]});
    }

    // A childless source feeds its parent directly — the transfer
    // stays an uncombined disk read, exactly like the star/tree
    // executor treats it — so its coefficient rides on the edge. A
    // combined source enters with kOne: its combine vertex already
    // applied the coefficient.
    auto feed = [&](VertexId target, int i) {
        if (combine[static_cast<std::size_t>(i)] != kInvalidVertex) {
            dag.Join(target, {combine[static_cast<std::size_t>(i)]},
                     {gf::kOne});
        } else {
            dag.Join(target, {leaf[static_cast<std::size_t>(i)]},
                     {sources[static_cast<std::size_t>(i)].coeff});
        }
    };

    for (int i = 0; i < n; ++i) {
        if (children[static_cast<std::size_t>(i)].empty())
            continue;
        dag.Join(combine[static_cast<std::size_t>(i)],
                 {leaf[static_cast<std::size_t>(i)]},
                 {sources[static_cast<std::size_t>(i)].coeff});
        for (int c : children[static_cast<std::size_t>(i)])
            feed(combine[static_cast<std::size_t>(i)], c);
    }

    VertexId root = dag.addVertex(destination);
    for (int i = 0; i < n; ++i)
        if (parents[static_cast<std::size_t>(i)] == -1)
            feed(root, i);
    dag.setRoot(root);
    dag.validate();
    return dag;
}

EcDag
buildStarDag(StripeId stripe, ChunkIndex failed, NodeId destination,
             const std::vector<DagSource> &sources, bool combinable)
{
    std::vector<int> parents(sources.size(), -1);
    return dagFromParents(stripe, failed, destination, sources,
                          parents, combinable);
}

EcDag
buildChainDag(StripeId stripe, ChunkIndex failed, NodeId destination,
              const std::vector<DagSource> &sources)
{
    const int n = static_cast<int>(sources.size());
    std::vector<int> parents(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        parents[static_cast<std::size_t>(i)] =
            (i + 1 < n) ? i + 1 : -1;
    return dagFromParents(stripe, failed, destination, sources,
                          parents);
}

EcDag
buildPprDag(StripeId stripe, ChunkIndex failed, NodeId destination,
            const std::vector<DagSource> &sources)
{
    // Binomial pairing rounds, mirroring buildPprPlan: in each round
    // the remaining aggregators pair (a, b) with a -> b; b stays
    // active; the last active source uploads to the destination.
    const int n = static_cast<int>(sources.size());
    std::vector<int> parents(static_cast<std::size_t>(n), -1);
    std::vector<int> active;
    for (int i = 0; i < n; ++i)
        active.push_back(i);
    while (active.size() > 1) {
        std::vector<int> next;
        for (std::size_t i = 0; i + 1 < active.size(); i += 2) {
            parents[static_cast<std::size_t>(active[i])] =
                active[i + 1];
            next.push_back(active[i + 1]);
        }
        if (active.size() % 2 == 1)
            next.push_back(active.back());
        active = std::move(next);
    }
    return dagFromParents(stripe, failed, destination, sources,
                          parents);
}

EcDag
buildMlfDag(StripeId stripe, ChunkIndex failed, NodeId destination,
            const std::vector<DagSource> &sources, int fan_in)
{
    CHAMELEON_ASSERT(fan_in >= 2, "MLF fan-in must be >= 2, got ",
                     fan_in);
    // Complete fan_in-ary heap over the source list: position 0 is
    // the final relay (-> destination), position j aggregates into
    // (j - 1) / fan_in, giving depth ~log_F(k).
    const int n = static_cast<int>(sources.size());
    std::vector<int> parents(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j)
        parents[static_cast<std::size_t>(j)] =
            (j == 0) ? -1 : (j - 1) / fan_in;
    return dagFromParents(stripe, failed, destination, sources,
                          parents);
}

std::optional<TopologySpec>
topologyFromKey(const std::string &key, std::string *error)
{
    TopologySpec spec;
    if (key == "auto") {
        spec.kind = RepairTopology::kAuto;
        return spec;
    }
    if (key == "star") {
        spec.kind = RepairTopology::kStar;
        return spec;
    }
    if (key == "chain") {
        spec.kind = RepairTopology::kChain;
        return spec;
    }
    if (key == "ppr") {
        spec.kind = RepairTopology::kPpr;
        return spec;
    }
    if (key.rfind("mlf:", 0) == 0) {
        const std::string arg = key.substr(4);
        std::size_t used = 0;
        int fan_in = 0;
        try {
            fan_in = std::stoi(arg, &used);
        } catch (...) {
            used = 0;
        }
        if (used != arg.size() || fan_in < 2) {
            if (error)
                *error = "bad MLF fan-in '" + arg +
                         "' (want an integer >= 2)";
            return std::nullopt;
        }
        spec.kind = RepairTopology::kMlf;
        spec.fanIn = fan_in;
        return spec;
    }
    if (error)
        *error = "unknown topology '" + key +
                 "' (want auto|star|chain|ppr|mlf:F)";
    return std::nullopt;
}

std::string
topologyKey(const TopologySpec &spec)
{
    switch (spec.kind) {
      case RepairTopology::kAuto:
        return "auto";
      case RepairTopology::kStar:
        return "star";
      case RepairTopology::kChain:
        return "chain";
      case RepairTopology::kPpr:
        return "ppr";
      case RepairTopology::kMlf:
        return "mlf:" + std::to_string(spec.fanIn);
    }
    CHAMELEON_PANIC("unreachable topology kind");
}

EcDag
buildTopologyDag(const TopologySpec &spec, StripeId stripe,
                 ChunkIndex failed, NodeId destination,
                 const std::vector<DagSource> &sources,
                 bool combinable)
{
    // Sub-chunk repairs cannot combine partial decodes in-path, so
    // every relay topology degenerates to direct transfers.
    if (!combinable)
        return buildStarDag(stripe, failed, destination, sources,
                            false);
    switch (spec.kind) {
      case RepairTopology::kAuto:
      case RepairTopology::kStar:
        return buildStarDag(stripe, failed, destination, sources);
      case RepairTopology::kChain:
        return buildChainDag(stripe, failed, destination, sources);
      case RepairTopology::kPpr:
        return buildPprDag(stripe, failed, destination, sources);
      case RepairTopology::kMlf:
        return buildMlfDag(stripe, failed, destination, sources,
                           spec.fanIn);
    }
    CHAMELEON_PANIC("unreachable topology kind");
}

} // namespace dag
} // namespace chameleon
