/**
 * @file
 * Full-node repair session for the baseline algorithms: keeps a
 * bounded window of chunk repairs in flight (as HDFS reconstruction
 * work queues do), builds each chunk's plan through a pluggable plan
 * factory (random baseline or RepairBoost selection), updates stripe
 * metadata as chunks complete, and reports repair throughput.
 */

#ifndef CHAMELEON_REPAIR_SESSION_HH_
#define CHAMELEON_REPAIR_SESSION_HH_

#include <deque>
#include <functional>
#include <map>
#include <set>

#include "cluster/stripe_manager.hh"
#include "repair/executor.hh"

namespace chameleon {
namespace repair {

/** Baseline session tuning. */
struct SessionConfig
{
    /**
     * Concurrent chunk repairs. Full-node repair in production
     * systems keeps the cluster saturated with reconstruction work
     * (HDFS runs multiple streams per DataNode); the executor's
     * per-node task slots then bound the actual parallelism, so a
     * generous window here models "repair as fast as the nodes
     * allow".
     */
    int maxInFlight = 64;
};

/** Windowed baseline repair runner; see file comment. */
class RepairSession
{
  public:
    /**
     * Produces a plan for one failed chunk.
     * @param reserved destinations concurrent repairs of the same
     *                 stripe already claimed.
     */
    using PlanFn = std::function<ChunkRepairPlan(
        const cluster::FailedChunk &,
        const std::vector<NodeId> &reserved)>;

    RepairSession(cluster::StripeManager &stripes,
                  RepairExecutor &executor, PlanFn plan_fn,
                  SessionConfig config = {});

    /** Begins repairing `pending` (FIFO order). */
    void start(std::vector<cluster::FailedChunk> pending);

    bool finished() const;

    SimTime startTime() const { return startTime_; }
    SimTime finishTime() const { return finishTime_; }

    int chunksRepaired() const { return chunksRepaired_; }

    /** Repaired bytes per second over the whole session. */
    Rate throughput() const;

  private:
    void pump();
    void onChunkDone(const ChunkRepairPlan &plan, SimTime when);

    cluster::StripeManager &stripes_;
    RepairExecutor &executor_;
    PlanFn planFn_;
    SessionConfig config_;
    std::deque<cluster::FailedChunk> pending_;
    int inFlight_ = 0;
    int chunksRepaired_ = 0;
    int totalChunks_ = 0;
    SimTime startTime_ = 0.0;
    SimTime finishTime_ = kTimeNever;
    /** Destinations claimed by in-flight repairs, per stripe. */
    std::map<StripeId, std::set<NodeId>> reserved_;
    bool started_ = false;
};

} // namespace repair
} // namespace chameleon

#endif // CHAMELEON_REPAIR_SESSION_HH_
