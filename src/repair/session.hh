/**
 * @file
 * Full-node repair session for the baseline algorithms: keeps a
 * bounded window of chunk repairs in flight (as HDFS reconstruction
 * work queues do), builds each chunk's plan through a pluggable plan
 * factory (random baseline or RepairBoost selection), updates stripe
 * metadata as chunks complete, and reports repair throughput.
 *
 * The session survives mid-repair churn: onNodeCrash() aborts every
 * in-flight repair touching the dead node, folds the node's newly
 * lost chunks into the queue, and re-plans aborted chunks against
 * the surviving nodes after a short backoff (bounded retries). A
 * chunk whose stripe no longer has enough surviving helpers — or
 * that keeps getting aborted past the retry budget — lands in the
 * unrecoverable list, a graceful terminal state.
 */

#ifndef CHAMELEON_REPAIR_SESSION_HH_
#define CHAMELEON_REPAIR_SESSION_HH_

#include <deque>
#include <functional>
#include <map>
#include <set>

#include "cluster/stripe_manager.hh"
#include "repair/executor.hh"

namespace chameleon {
namespace repair {

/** Baseline session tuning. */
struct SessionConfig
{
    /**
     * Concurrent chunk repairs. Full-node repair in production
     * systems keeps the cluster saturated with reconstruction work
     * (HDFS runs multiple streams per DataNode); the executor's
     * per-node task slots then bound the actual parallelism, so a
     * generous window here models "repair as fast as the nodes
     * allow".
     */
    int maxInFlight = 64;
    /** Crash-abort re-plans per chunk before giving up on it. */
    int maxRetries = 5;
    /** Delay before a crash-aborted chunk is re-planned, so one
     * crash's burst of aborts settles before replacements launch. */
    SimTime retryBackoff = 1.0;

    bool operator==(const SessionConfig &) const = default;
};

/** Windowed baseline repair runner; see file comment. */
class RepairSession
{
  public:
    /**
     * Produces a plan for one failed chunk.
     * @param reserved destinations concurrent repairs of the same
     *                 stripe already claimed.
     */
    using PlanFn = std::function<ChunkRepairPlan(
        const cluster::FailedChunk &,
        const std::vector<NodeId> &reserved)>;

    /** Terminal per-chunk outcome notification (feed mode): fired
     * once per chunk, with repaired=true on success and false when
     * the chunk lands in the unrecoverable list. */
    using OutcomeFn = std::function<void(
        const cluster::FailedChunk &, bool repaired)>;

    RepairSession(cluster::StripeManager &stripes,
                  RepairExecutor &executor, PlanFn plan_fn,
                  SessionConfig config = {});

    /**
     * Overrides every chunk's execution topology: instead of running
     * the planner's tree directly, the session rebuilds the plan's
     * source set into `spec`'s DAG shape (chain, PPR, MLF, star) and
     * executes it slice-pipelined via RepairExecutor::launchDag.
     * kAuto (the default) keeps the planner's native tree execution.
     * Non-combinable plans always degrade to the star. Call before
     * start().
     */
    void setDagTopology(const dag::TopologySpec &spec);

    const dag::TopologySpec &dagTopology() const { return topology_; }

    /** Begins repairing `pending` (FIFO order). */
    void start(std::vector<cluster::FailedChunk> pending);

    /**
     * Starts the session with no work: chunks arrive later through
     * enqueue() (the ReplicatorScanner admission path). Mutually
     * exclusive with start().
     */
    void beginFeed();

    /** Adds admitted chunks to the repair window (feed mode or
     * after start()); plans and launches immediately. */
    void enqueue(const std::vector<cluster::FailedChunk> &chunks);

    /** Installs the terminal-outcome hook; call before work runs. */
    void setOutcomeHook(OutcomeFn fn) { outcomeHook_ = std::move(fn); }

    /**
     * Absorbs a mid-repair node crash. Call after the stripe manager
     * and cluster already marked the node dead: aborts in-flight
     * repairs touching it (they re-plan after the retry backoff) and
     * queues `newly_lost`, the chunks the crash destroyed.
     */
    void onNodeCrash(NodeId node,
                     const std::vector<cluster::FailedChunk>
                         &newly_lost);

    /** True once every chunk is repaired or unrecoverable. A later
     * crash can add work and make a finished session active again. */
    bool finished() const;

    SimTime startTime() const { return startTime_; }
    SimTime finishTime() const { return finishTime_; }

    int chunksRepaired() const { return chunksRepaired_; }
    int chunksUnrecoverable() const
    {
        return static_cast<int>(unrecoverable_.size());
    }
    const std::vector<cluster::FailedChunk> &unrecoverable() const
    {
        return unrecoverable_;
    }
    /** All chunks ever queued (initial failures + crash losses). */
    int totalChunks() const { return totalChunks_; }
    /** Chunks waiting to be planned (deferred + backoff included). */
    int pendingCount() const;
    int inFlightCount() const { return inFlight_; }
    /** Chunk repairs aborted by crashes and re-queued. */
    int crashReplans() const { return crashReplans_; }

    /** Repaired bytes per second over the whole session. */
    Rate throughput() const;

  private:
    void pump();
    void onChunkDone(const ChunkRepairPlan &plan, SimTime when);
    void onChunkFailed(const ChunkRepairPlan &plan, NodeId cause,
                       SimTime when);
    void markUnrecoverable(const cluster::FailedChunk &chunk);
    void releaseReservation(StripeId stripe, NodeId destination);
    /** Moves deferred chunks back into the queue (destinations or
     * helpers may have changed). */
    void requeueDeferred();
    void checkFinished(SimTime when);

    cluster::StripeManager &stripes_;
    RepairExecutor &executor_;
    PlanFn planFn_;
    OutcomeFn outcomeHook_;
    SessionConfig config_;
    /** Execution-topology override; kAuto = native tree path. */
    dag::TopologySpec topology_;
    std::deque<cluster::FailedChunk> pending_;
    /** Chunks that currently cannot be planned (no free destination);
     * retried when a repair completes or the cluster changes. */
    std::deque<cluster::FailedChunk> deferred_;
    std::vector<cluster::FailedChunk> unrecoverable_;
    /** Crash-abort counts per chunk, against maxRetries. */
    std::map<std::pair<StripeId, ChunkIndex>, int> retries_;
    int inFlight_ = 0;
    /** Chunks whose retry backoff timer is pending. */
    int retriesInAir_ = 0;
    int chunksRepaired_ = 0;
    int totalChunks_ = 0;
    int crashReplans_ = 0;
    SimTime startTime_ = 0.0;
    SimTime finishTime_ = kTimeNever;
    /** Destinations claimed by in-flight repairs, per stripe. */
    std::map<StripeId, std::set<NodeId>> reserved_;
    bool started_ = false;
};

} // namespace repair
} // namespace chameleon

#endif // CHAMELEON_REPAIR_SESSION_HH_
