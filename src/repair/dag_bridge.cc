#include "repair/dag_bridge.hh"

namespace chameleon {
namespace repair {

std::vector<dag::DagSource>
toDagSources(const std::vector<PlanSource> &sources)
{
    std::vector<dag::DagSource> out;
    out.reserve(sources.size());
    for (const auto &src : sources)
        out.push_back({src.node, src.chunk, src.coeff, src.fraction});
    return out;
}

dag::EcDag
fromTree(const ChunkRepairPlan &plan)
{
    plan.validate();
    std::vector<int> parents;
    parents.reserve(plan.sources.size());
    for (const auto &src : plan.sources)
        parents.push_back(src.parent);
    return dag::dagFromParents(plan.stripe, plan.failedChunk,
                               plan.destination,
                               toDagSources(plan.sources), parents,
                               plan.combinable);
}

} // namespace repair
} // namespace chameleon
