#include "repair/session.hh"

#include "util/logging.hh"

namespace chameleon {
namespace repair {

RepairSession::RepairSession(cluster::StripeManager &stripes,
                             RepairExecutor &executor, PlanFn plan_fn,
                             SessionConfig config)
    : stripes_(stripes), executor_(executor),
      planFn_(std::move(plan_fn)), config_(config)
{
    CHAMELEON_ASSERT(config_.maxInFlight >= 1,
                     "window must be at least 1");
    CHAMELEON_ASSERT(planFn_ != nullptr, "null plan factory");
}

void
RepairSession::start(std::vector<cluster::FailedChunk> pending)
{
    CHAMELEON_ASSERT(!started_, "session already started");
    started_ = true;
    pending_.assign(pending.begin(), pending.end());
    totalChunks_ = static_cast<int>(pending_.size());
    startTime_ = executor_.cluster().simulator().now();
    if (pending_.empty()) {
        finishTime_ = startTime_;
        return;
    }
    pump();
}

bool
RepairSession::finished() const
{
    return started_ && chunksRepaired_ == totalChunks_;
}

Rate
RepairSession::throughput() const
{
    CHAMELEON_ASSERT(finished(), "session not finished");
    if (totalChunks_ == 0)
        return 0.0;
    SimTime span = finishTime_ - startTime_;
    CHAMELEON_ASSERT(span > 0, "zero-length session");
    return static_cast<double>(totalChunks_) *
           executor_.config().chunkSize / span;
}

void
RepairSession::pump()
{
    while (inFlight_ < config_.maxInFlight && !pending_.empty()) {
        cluster::FailedChunk fc = pending_.front();
        pending_.pop_front();

        auto &res = reserved_[fc.stripe];
        std::vector<NodeId> reserved(res.begin(), res.end());
        ChunkRepairPlan plan = planFn_(fc, reserved);
        res.insert(plan.destination);

        ++inFlight_;
        executor_.launch(plan,
                         [this](const ChunkRepairPlan &p, SimTime t) {
                             onChunkDone(p, t);
                         });
    }
}

void
RepairSession::onChunkDone(const ChunkRepairPlan &plan, SimTime when)
{
    --inFlight_;
    ++chunksRepaired_;
    stripes_.markRepaired(plan.stripe, plan.failedChunk);
    stripes_.relocate(plan.stripe, plan.failedChunk, plan.destination);
    auto it = reserved_.find(plan.stripe);
    if (it != reserved_.end()) {
        it->second.erase(plan.destination);
        if (it->second.empty())
            reserved_.erase(it);
    }
    if (chunksRepaired_ == totalChunks_) {
        finishTime_ = when;
        return;
    }
    pump();
}

} // namespace repair
} // namespace chameleon
