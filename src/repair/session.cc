#include "repair/session.hh"

#include <algorithm>

#include "repair/dag_bridge.hh"
#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace chameleon {
namespace repair {

RepairSession::RepairSession(cluster::StripeManager &stripes,
                             RepairExecutor &executor, PlanFn plan_fn,
                             SessionConfig config)
    : stripes_(stripes), executor_(executor),
      planFn_(std::move(plan_fn)), config_(config)
{
    CHAMELEON_ASSERT(config_.maxInFlight >= 1,
                     "window must be at least 1");
    CHAMELEON_ASSERT(config_.maxRetries >= 0, "negative retry budget");
    CHAMELEON_ASSERT(planFn_ != nullptr, "null plan factory");
}

void
RepairSession::setDagTopology(const dag::TopologySpec &spec)
{
    CHAMELEON_ASSERT(!started_,
                     "topology override after session start");
    topology_ = spec;
}

void
RepairSession::start(std::vector<cluster::FailedChunk> pending)
{
    CHAMELEON_ASSERT(!started_, "session already started");
    started_ = true;
    pending_.assign(pending.begin(), pending.end());
    totalChunks_ = static_cast<int>(pending_.size());
    startTime_ = executor_.cluster().simulator().now();
    if (pending_.empty()) {
        finishTime_ = startTime_;
        return;
    }
    pump();
}

void
RepairSession::beginFeed()
{
    CHAMELEON_ASSERT(!started_, "session already started");
    started_ = true;
    totalChunks_ = 0;
    startTime_ = executor_.cluster().simulator().now();
    finishTime_ = startTime_;
}

void
RepairSession::enqueue(
    const std::vector<cluster::FailedChunk> &chunks)
{
    CHAMELEON_ASSERT(started_, "enqueue before session start");
    if (chunks.empty())
        return;
    for (const auto &fc : chunks) {
        pending_.push_back(fc);
        ++totalChunks_;
    }
    pump();
}

bool
RepairSession::finished() const
{
    return started_ &&
           chunksRepaired_ + chunksUnrecoverable() == totalChunks_;
}

int
RepairSession::pendingCount() const
{
    return static_cast<int>(pending_.size() + deferred_.size()) +
           retriesInAir_;
}

Rate
RepairSession::throughput() const
{
    CHAMELEON_ASSERT(finished(), "session not finished");
    if (chunksRepaired_ == 0)
        return 0.0;
    SimTime span = finishTime_ - startTime_;
    CHAMELEON_ASSERT(span > 0, "zero-length session");
    return static_cast<double>(chunksRepaired_) *
           executor_.config().chunkSize / span;
}

void
RepairSession::markUnrecoverable(const cluster::FailedChunk &chunk)
{
    unrecoverable_.push_back(chunk);
    CHAMELEON_TELEM(telemetry::tracer().instant(
        executor_.cluster().simulator().now(), telemetry::kTrackFault,
        "fault", "unrecoverable",
        {{"stripe", chunk.stripe}, {"chunk", chunk.chunk}}));
    telemetry::metrics().counter("repair.session.unrecoverable").add();
    if (outcomeHook_)
        outcomeHook_(chunk, false);
}

void
RepairSession::releaseReservation(StripeId stripe, NodeId destination)
{
    auto it = reserved_.find(stripe);
    if (it == reserved_.end())
        return;
    it->second.erase(destination);
    if (it->second.empty())
        reserved_.erase(it);
}

void
RepairSession::requeueDeferred()
{
    while (!deferred_.empty()) {
        pending_.push_back(deferred_.front());
        deferred_.pop_front();
    }
}

void
RepairSession::checkFinished(SimTime when)
{
    if (finished())
        finishTime_ = when;
}

void
RepairSession::pump()
{
    while (inFlight_ < config_.maxInFlight && !pending_.empty()) {
        cluster::FailedChunk fc = pending_.front();
        pending_.pop_front();

        // Recoverability gate: fewer surviving helpers than the code
        // needs means no plan can exist (for MDS codes this is
        // permanent — a stripe short of k survivors stays short).
        auto avail = stripes_.availableChunks(fc.stripe);
        auto pool = stripes_.code().helperPool(fc.chunk, avail);
        if (static_cast<int>(pool.candidates.size()) <
            pool.required) {
            markUnrecoverable(fc);
            continue;
        }

        auto &res = reserved_[fc.stripe];
        std::vector<NodeId> reserved(res.begin(), res.end());
        // Destination gate: concurrent repairs of the same stripe
        // may hold every candidate destination; park the chunk until
        // one completes.
        auto dests = stripes_.candidateDestinations(fc.stripe);
        std::erase_if(dests, [&](NodeId d) { return res.count(d); });
        if (dests.empty()) {
            if (res.empty()) {
                // Not even an unreserved cluster has a slot for this
                // stripe: no completion can free one up.
                markUnrecoverable(fc);
            } else {
                deferred_.push_back(fc);
            }
            continue;
        }
        ChunkRepairPlan plan = planFn_(fc, reserved);
        res.insert(plan.destination);

        ++inFlight_;
        auto on_done = [this](const ChunkRepairPlan &p, SimTime t) {
            onChunkDone(p, t);
        };
        auto on_fail = [this](const ChunkRepairPlan &p, NodeId cause,
                              SimTime t) { onChunkFailed(p, cause, t); };
        if (topology_.kind != dag::RepairTopology::kAuto) {
            // Topology override: keep the planner's source set (and
            // coefficients) but execute it in the requested DAG
            // shape, slice-pipelined.
            dag::EcDag d = dag::buildTopologyDag(
                topology_, plan.stripe, plan.failedChunk,
                plan.destination, toDagSources(plan.sources),
                plan.combinable);
            executor_.launchDag(d, plan, std::move(on_done),
                                std::move(on_fail));
        } else {
            executor_.launch(plan, std::move(on_done),
                             std::move(on_fail));
        }
    }
    checkFinished(executor_.cluster().simulator().now());
}

void
RepairSession::onChunkDone(const ChunkRepairPlan &plan, SimTime when)
{
    --inFlight_;
    ++chunksRepaired_;
    stripes_.markRepaired(plan.stripe, plan.failedChunk);
    stripes_.relocate(plan.stripe, plan.failedChunk, plan.destination);
    releaseReservation(plan.stripe, plan.destination);
    // Before the finished() check: the hook may admit queued work
    // (via the scanner pump), which extends the session.
    if (outcomeHook_)
        outcomeHook_({plan.stripe, plan.failedChunk}, true);
    if (finished()) {
        finishTime_ = when;
        return;
    }
    // A completion frees a destination: parked chunks get another
    // shot at planning.
    requeueDeferred();
    pump();
}

void
RepairSession::onChunkFailed(const ChunkRepairPlan &plan, NodeId cause,
                             SimTime when)
{
    --inFlight_;
    ++crashReplans_;
    releaseReservation(plan.stripe, plan.destination);
    telemetry::metrics().counter("repair.session.crash_replans").add();

    cluster::FailedChunk fc{plan.stripe, plan.failedChunk};
    CHAMELEON_ASSERT(stripes_.chunkLost(fc.stripe, fc.chunk),
                     "aborted chunk is not lost");
    int &attempts = retries_[{fc.stripe, fc.chunk}];
    if (++attempts > config_.maxRetries) {
        markUnrecoverable(fc);
        checkFinished(when);
        return;
    }
    // Re-plan after a backoff so the burst of aborts from one crash
    // settles before replacement plans pick sources.
    ++retriesInAir_;
    executor_.cluster().simulator().scheduleAfter(
        config_.retryBackoff, [this, fc] {
            --retriesInAir_;
            pending_.push_back(fc);
            pump();
        });
    (void)cause;
}

void
RepairSession::onNodeCrash(
    NodeId node, const std::vector<cluster::FailedChunk> &newly_lost)
{
    CHAMELEON_ASSERT(started_, "crash before session start");
    // Abort doomed in-flight repairs first; each abort lands in
    // onChunkFailed and schedules its own re-plan.
    executor_.abortChunksTouching(node);
    for (const auto &fc : newly_lost) {
        pending_.push_back(fc);
        ++totalChunks_;
    }
    // Stripe geometry changed: parked chunks may be plannable now
    // (or newly unrecoverable — pump sorts them).
    requeueDeferred();
    pump();
}

} // namespace repair
} // namespace chameleon
