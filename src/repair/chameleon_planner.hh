/**
 * @file
 * ChameleonEC's plan construction, as pure logic with no simulator
 * dependencies (so Exp#5 can measure real planning time and unit
 * tests can probe it exhaustively).
 *
 * Section III-A: a chunk's repair is decomposed into k upload and k
 * download tasks. The destination is picked minimum-time-first on
 * download time; each remaining download task goes to the node —
 * destination or candidate source — whose estimated repair time
 *   R_i = max(T_up_i * |C| / B_up_i, T_down_i * |C| / B_down_i)
 * after the assignment is smallest, with the relay-coupling rule: the
 * first download assigned to a source brings an upload task with it
 * (the partially decoded chunk must be forwarded), later downloads to
 * the same source do not. Remaining uploads go minimum-time-first to
 * sources without downloads.
 *
 * Section III-B / Algorithm 1: upload and download tasks are paired
 * into transmission paths among the sources first (always feeding the
 * source with the fewest unpaired downloads from a source whose own
 * downloads are settled), then the leftover uploads connect to the
 * destination — yielding the tunable in-tree plan.
 */

#ifndef CHAMELEON_REPAIR_CHAMELEON_PLANNER_HH_
#define CHAMELEON_REPAIR_CHAMELEON_PLANNER_HH_

#include <optional>
#include <vector>

#include "repair/plan.hh"
#include "util/types.hh"

namespace chameleon {
namespace repair {

/**
 * Mutable per-phase dispatcher state: cumulative task counts per
 * node (reset each phase) and the monitor's bandwidth estimates.
 */
struct PlannerState
{
    /** Upload tasks accumulated on each node this phase. */
    std::vector<int> taskUp;
    /** Download tasks accumulated on each node this phase. */
    std::vector<int> taskDown;
    /** Estimated idle upload-side bandwidth per node (bytes/s),
     * used for dispatch decisions (network links for ChameleonEC,
     * disks for ChameleonEC-IO). */
    std::vector<Rate> bandUp;
    /** Estimated idle download-side bandwidth per node (bytes/s). */
    std::vector<Rate> bandDown;
    /**
     * Honest per-task service rates (min of link and disk residual)
     * used for admission estimates and straggler expectations; falls
     * back to bandUp/bandDown when left empty.
     */
    std::vector<Rate> serviceUp;
    std::vector<Rate> serviceDown;
    /** Chunk size |C| in bytes. */
    Bytes chunkSize = 0;
    /**
     * Estimated extra seconds a relay upload task costs over a
     * direct upload (per-slice combine/turnaround summed over the
     * chunk). The dispatcher charges this when weighing a download
     * assignment that would turn a source into a relay, so relaying
     * happens only where the bandwidth imbalance pays for it.
     */
    double relayTaskPenalty = 0.0;

    /** Initializes zeroed counts for `nodes` nodes. */
    static PlannerState make(int nodes, Bytes chunk_size);

    /** R_i of the paper: the node's estimated busy time (dispatch
     * bandwidth). */
    double nodeTime(NodeId node) const;

    /** Busy-time estimate at honest service rates. */
    double nodeServiceTime(NodeId node) const;
};

/** One chunk's inputs to the planner. */
struct PlannerChunkInput
{
    StripeId stripe = 0;
    ChunkIndex failed = 0;
    /** Candidate destinations (set D of the paper). */
    std::vector<NodeId> destCandidates;
    /** Candidate helper chunks and their hosting nodes (set S). */
    std::vector<ChunkIndex> helperChunks;
    std::vector<NodeId> helperNodes;
    /** Helpers a repair must read (k for RS, k/l for LRC). */
    int required = 0;
    /** All candidates must be used (LRC groups, Butterfly). */
    bool fixedSet = false;
    /** Relays may combine partial decodes. */
    bool combinable = true;
    /** Per-candidate read fraction (1.0 except Butterfly). */
    std::vector<double> fractions;
};

/** Planner output for one admitted chunk. */
struct PlannedChunk
{
    /** Plan with topology and fractions; coefficients are left as
     * gf::kOne for the caller (the scheduler) to fill from the code. */
    ChunkRepairPlan plan;
    /** max R_i over the nodes this chunk touches, after admission. */
    double estimatedTime = 0.0;
    /** Expected completion (seconds from now) per plan source. */
    std::vector<double> edgeExpectation;
};

/**
 * Algorithm 1: pairs `downloads[i]` download tasks per source (plus
 * `dest_downloads` at the destination) with one upload per source.
 *
 * @return parent[i] for each source (kToDestination or a source
 *         index).
 */
std::vector<int>
establishPaths(const std::vector<int> &downloads, int dest_downloads);

/**
 * Dispatches tasks and establishes the plan for one chunk, mutating
 * `state`'s task counts (the admission side effect).
 *
 * @return nullopt when no destination candidate exists.
 */
std::optional<PlannedChunk>
planChunk(PlannerState &state, const PlannerChunkInput &input);

} // namespace repair
} // namespace chameleon

#endif // CHAMELEON_REPAIR_CHAMELEON_PLANNER_HH_
