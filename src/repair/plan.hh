/**
 * @file
 * Repair-plan representation shared by every repair algorithm.
 *
 * A single-chunk repair plan is an in-tree over the k participating
 * sources rooted at the destination: each source uploads exactly once
 * (its chunk, or — if other sources upload to it first — a partially
 * decoded chunk combining its chunk with everything it received,
 * using the linearity of Equation (1)). Conventional repair is the
 * star (every source uploads straight to the destination), PPR is a
 * binomial tree, ECPipe is a chain, and ChameleonEC's Algorithm 1
 * produces arbitrary trees shaped by the available bandwidth.
 */

#ifndef CHAMELEON_REPAIR_PLAN_HH_
#define CHAMELEON_REPAIR_PLAN_HH_

#include <vector>

#include "ec/code.hh"
#include "gf/gf256.hh"
#include "util/types.hh"

namespace chameleon {
namespace repair {

/** Parent index meaning "uploads directly to the destination". */
inline constexpr int kToDestination = -1;

/** One participating source in a chunk's repair plan. */
struct PlanSource
{
    /** Node hosting the helper chunk. */
    NodeId node = kInvalidNode;
    /** Helper chunk index within the stripe. */
    ChunkIndex chunk = 0;
    /** Decoding coefficient alpha_i (combinable codes). */
    gf::Elem coeff = gf::kOne;
    /** Fraction of the chunk read (1.0, or 0.5 for Butterfly rows). */
    double fraction = 1.0;
    /** Upload target: index of another source, or kToDestination. */
    int parent = kToDestination;
};

/** A complete plan to repair one failed chunk; see file comment. */
struct ChunkRepairPlan
{
    StripeId stripe = 0;
    ChunkIndex failedChunk = 0;
    NodeId destination = kInvalidNode;
    std::vector<PlanSource> sources;
    /** False for sub-chunk codes: sources must upload directly. */
    bool combinable = true;

    /** Total repair traffic in chunk units (sum of fractions, plus
     * relayed partial chunks). */
    double trafficChunks() const;

    /** Indices of sources whose parent is `idx` (kToDestination for
     * the destination's children). */
    std::vector<int> childrenOf(int idx) const;

    /** Longest source-to-destination hop count (star = 1). */
    int depth() const;

    /**
     * Panics if malformed: parent indices out of range, cycles,
     * duplicate nodes, destination among the sources, or indirect
     * uploads in a non-combinable plan.
     */
    void validate() const;
};

/** Star plan: every source uploads straight to the destination. */
ChunkRepairPlan
buildStarPlan(StripeId stripe, ChunkIndex failed, NodeId destination,
              std::vector<PlanSource> sources, bool combinable);

/**
 * PPR-style binomial aggregation tree (Figure 3(b) of the paper):
 * sources pair up each round, the second of each pair aggregating,
 * until one source uploads to the destination. Repair latency is
 * O(log k) timeslots instead of CR's O(k).
 */
ChunkRepairPlan
buildPprPlan(StripeId stripe, ChunkIndex failed, NodeId destination,
             std::vector<PlanSource> sources);

/**
 * ECPipe-style chain: s0 -> s1 -> ... -> s(k-1) -> destination. The
 * plan only fixes the topology; repair time depends on the slicing
 * mode the executor runs it under (ExecutorConfig): split into S
 * slices that pipeline hop-by-hop, a chunk repairs in
 * (k + S - 1)/S chunk transfer times — O(k) at S = 1 (whole-chunk
 * store-and-forward), approaching one chunk time (O(1) amortized)
 * only as S grows. See dag/dag.hh for the slice-pipelined execution
 * model and bench/exp15_pipelining for the measured curve.
 */
ChunkRepairPlan
buildChainPlan(StripeId stripe, ChunkIndex failed, NodeId destination,
               std::vector<PlanSource> sources);

/**
 * Byte-exact reference evaluation of a plan used by tests: walks the
 * tree combining real chunk data exactly as relay nodes would.
 *
 * @param plan         a combinable plan.
 * @param stripe_data  all n chunks of the stripe (failed one included
 *                     for comparison by the caller).
 * @return the reconstructed chunk.
 */
ec::Buffer
evaluatePlan(const ChunkRepairPlan &plan,
             const std::vector<ec::Buffer> &stripe_data);

} // namespace repair
} // namespace chameleon

#endif // CHAMELEON_REPAIR_PLAN_HH_
