#include "repair/strategies.hh"

#include <algorithm>

#include "util/logging.hh"

namespace chameleon {
namespace repair {

namespace {

std::vector<NodeId>
eligibleDestinations(const cluster::StripeManager &stripes,
                     StripeId stripe,
                     const std::vector<NodeId> &reserved)
{
    auto dests = stripes.candidateDestinations(stripe);
    dests.erase(std::remove_if(dests.begin(), dests.end(),
                               [&](NodeId d) {
                                   return std::find(reserved.begin(),
                                                    reserved.end(),
                                                    d) != reserved.end();
                               }),
                dests.end());
    CHAMELEON_ASSERT(!dests.empty(),
                     "no destination available for stripe ", stripe);
    return dests;
}

std::vector<PlanSource>
sourcesFromSpec(const cluster::StripeManager &stripes, StripeId stripe,
                const ec::RepairSpec &spec)
{
    std::vector<PlanSource> sources;
    for (const auto &read : spec.reads) {
        PlanSource src;
        src.node = stripes.location(stripe, read.helper);
        src.chunk = read.helper;
        src.coeff = read.coeff;
        src.fraction = read.fraction;
        sources.push_back(src);
    }
    return sources;
}

ChunkRepairPlan
assemble(StripeId stripe, ChunkIndex failed, NodeId destination,
         std::vector<PlanSource> sources, Topology topology,
         bool combinable)
{
    if (!combinable || topology == Topology::kStar) {
        return buildStarPlan(stripe, failed, destination,
                             std::move(sources), combinable);
    }
    if (topology == Topology::kTree) {
        return buildPprPlan(stripe, failed, destination,
                            std::move(sources));
    }
    return buildChainPlan(stripe, failed, destination,
                          std::move(sources));
}

} // namespace

std::string
topologyName(Topology topology)
{
    switch (topology) {
      case Topology::kStar:
        return "CR";
      case Topology::kTree:
        return "PPR";
      case Topology::kChain:
        return "ECPipe";
    }
    CHAMELEON_PANIC("unknown topology");
}

ChunkRepairPlan
makeBaselinePlan(const cluster::StripeManager &stripes,
                 const cluster::FailedChunk &failed, Topology topology,
                 const std::vector<NodeId> &reserved, Rng &rng)
{
    auto dests = eligibleDestinations(stripes, failed.stripe, reserved);
    NodeId dest = dests[rng.below(dests.size())];

    auto avail = stripes.availableChunks(failed.stripe);
    auto spec = stripes.code().makeRepairSpec(failed.chunk, avail, rng);
    auto sources = sourcesFromSpec(stripes, failed.stripe, spec);

    // Randomize tree/chain positions (the structures are fixed, the
    // node-to-position assignment is not).
    for (std::size_t i = 0; i + 1 < sources.size(); ++i) {
        auto j = i + rng.below(sources.size() - i);
        std::swap(sources[i], sources[j]);
    }
    return assemble(failed.stripe, failed.chunk, dest,
                    std::move(sources), topology, spec.combinable);
}

RepairBoostSelector::RepairBoostSelector(int num_nodes)
    : up_(static_cast<std::size_t>(num_nodes), 0.0),
      down_(static_cast<std::size_t>(num_nodes), 0.0)
{
}

Bytes
RepairBoostSelector::assignedUpload(NodeId node) const
{
    return up_[static_cast<std::size_t>(node)];
}

Bytes
RepairBoostSelector::assignedDownload(NodeId node) const
{
    return down_[static_cast<std::size_t>(node)];
}

ChunkRepairPlan
RepairBoostSelector::makePlan(const cluster::StripeManager &stripes,
                              const cluster::FailedChunk &failed,
                              Topology topology,
                              const std::vector<NodeId> &reserved,
                              Rng &rng)
{
    auto dests = eligibleDestinations(stripes, failed.stripe, reserved);
    // Least-loaded destination by assigned repair download traffic.
    NodeId dest = dests[0];
    for (NodeId d : dests) {
        if (down_[static_cast<std::size_t>(d)] <
            down_[static_cast<std::size_t>(dest)])
            dest = d;
    }

    auto avail = stripes.availableChunks(failed.stripe);
    auto pool = stripes.code().helperPool(failed.chunk, avail);

    std::vector<ChunkIndex> helpers;
    if (pool.fixedSet) {
        helpers = pool.candidates;
    } else {
        // Least-loaded helpers by assigned upload traffic.
        auto sorted = pool.candidates;
        std::stable_sort(sorted.begin(), sorted.end(),
                         [&](ChunkIndex a, ChunkIndex b) {
                             NodeId na =
                                 stripes.location(failed.stripe, a);
                             NodeId nb =
                                 stripes.location(failed.stripe, b);
                             return up_[static_cast<std::size_t>(na)] <
                                    up_[static_cast<std::size_t>(nb)];
                         });
        sorted.resize(static_cast<std::size_t>(pool.required));
        helpers = std::move(sorted);
    }

    auto spec_opt = stripes.code().specFor(failed.chunk, helpers);
    ec::RepairSpec spec;
    if (spec_opt) {
        spec = *spec_opt;
    } else {
        // Balanced choice cannot repair this pattern (possible for
        // LRC degraded groups): fall back to the code's default.
        spec = stripes.code().makeRepairSpec(failed.chunk, avail, rng);
    }
    auto sources = sourcesFromSpec(stripes, failed.stripe, spec);

    // Load-ordered positions: lightest-uploaded nodes take the relay
    // slots later in the chain/tree (they carry the aggregated data).
    std::stable_sort(sources.begin(), sources.end(),
                     [&](const PlanSource &a, const PlanSource &b) {
                         return up_[static_cast<std::size_t>(a.node)] >
                                up_[static_cast<std::size_t>(b.node)];
                     });

    auto plan = assemble(failed.stripe, failed.chunk, dest,
                         std::move(sources), topology,
                         spec.combinable);

    // Account assigned traffic in chunk units (relative balance is
    // all that matters to the selector).
    for (const auto &src : plan.sources) {
        up_[static_cast<std::size_t>(src.node)] += src.fraction;
        NodeId tgt = src.parent == kToDestination
                         ? plan.destination
                         : plan.sources[static_cast<std::size_t>(
                                            src.parent)]
                               .node;
        down_[static_cast<std::size_t>(tgt)] += src.fraction;
    }
    return plan;
}

} // namespace repair
} // namespace chameleon
