/**
 * @file
 * The ChameleonEC coordinator: drives repair in phases of T_phase
 * seconds (Section III-A), admitting chunks against the monitor's
 * residual-bandwidth estimates until the estimated phase time is
 * exhausted, establishing tunable plans (Section III-B via the
 * planner), and running straggler-aware re-scheduling (Section
 * III-C): repair re-tuning redirects a delayed relay download to the
 * destination; transmission re-ordering postpones a straggling
 * chunk's remaining tasks into a waiting queue and wakes them when
 * their nodes fall idle or a backoff expires. A straggler is an edge
 * past its expectation whose in-flight transmission made no progress
 * since the previous check.
 */

#ifndef CHAMELEON_REPAIR_CHAMELEON_SCHEDULER_HH_
#define CHAMELEON_REPAIR_CHAMELEON_SCHEDULER_HH_

#include <deque>
#include <map>
#include <set>
#include <unordered_map>

#include "cluster/stripe_manager.hh"
#include "repair/chameleon_planner.hh"
#include "repair/executor.hh"
#include "repair/monitor.hh"
#include "telemetry/metrics.hh"
#include "util/rng.hh"

namespace chameleon {
namespace repair {

/** Multi-node repair ordering policies (Section III-D). */
enum class RepairPriority {
    kSequential,      ///< failed chunks in discovery order
    kMostFailedFirst, ///< stripes with more lost chunks first
    kShortestFirst,   ///< least repair traffic first
};

/** Scheduler tuning; defaults follow the paper's Section V-A. */
struct ChameleonConfig
{
    /** Repair phase length (paper default 20 s, swept in Exp#3). */
    SimTime tPhase = 20.0;
    /** Straggler-detection check period. */
    SimTime checkPeriod = 2.0;
    /** An edge is a straggler once it runs this many seconds past
     * its expectation. */
    SimTime stragglerSlack = 5.0;
    /**
     * Safety multiplier applied to planner expectations before
     * straggler comparison: residual-bandwidth estimates are
     * conservative about what a task really achieves once repair
     * and elastic foreground traffic share links, so raw estimates
     * would flag healthy tasks.
     */
    double expectationFactor = 2.0;
    /**
     * Maximum postponement of a re-ordered chunk before its tasks
     * restart opportunistically (the paper restarts them within the
     * phase when their nodes free up, or in the next phase).
     */
    SimTime reorderBackoff = 5.0;
    /** Ablation switches (Exp#11: ETRP = both off, full = both on). */
    bool enableReordering = true;
    bool enableRetuning = true;
    RepairPriority priority = RepairPriority::kSequential;
    /** Crash-abort re-plans per chunk before giving up on it. */
    int maxRetries = 5;
    /** Delay before a crash-aborted chunk is re-planned. */
    SimTime retryBackoff = 1.0;

    bool operator==(const ChameleonConfig &) const = default;
};

/** The coordinator; see file comment. */
class ChameleonScheduler
{
  public:
    ChameleonScheduler(cluster::StripeManager &stripes,
                       RepairExecutor &executor,
                       BandwidthMonitor &monitor, ChameleonConfig config,
                       Rng rng);

    /** Terminal per-chunk outcome notification (feed mode): fired
     * once per chunk, with repaired=true on success and false when
     * the chunk lands in the unrecoverable list. */
    using OutcomeFn = std::function<void(
        const cluster::FailedChunk &, bool repaired)>;

    /** Starts repairing `pending`; the first phase begins now. */
    void start(std::vector<cluster::FailedChunk> pending);

    /**
     * Starts the scheduler with no work: chunks arrive later
     * through enqueue() (the ReplicatorScanner admission path).
     * Mutually exclusive with start().
     */
    void beginFeed();

    /** Adds admitted chunks; restarts the phase/check loops with
     * start()'s event ordering if they are not running. */
    void enqueue(const std::vector<cluster::FailedChunk> &chunks);

    /** Installs the terminal-outcome hook; call before work runs. */
    void setOutcomeHook(OutcomeFn fn) { outcomeHook_ = std::move(fn); }

    /**
     * Absorbs a mid-repair node crash (stripe manager and cluster
     * must already say the node is dead): aborts in-flight repairs
     * touching it, queues the crash's newly lost chunks, and
     * restarts the phase/check loops if the scheduler had finished.
     */
    void onNodeCrash(NodeId node,
                     const std::vector<cluster::FailedChunk>
                         &newly_lost);

    bool finished() const;
    SimTime startTime() const { return startTime_; }
    SimTime finishTime() const { return finishTime_; }
    int chunksRepaired() const { return chunksRepaired_; }
    int chunksUnrecoverable() const
    {
        return static_cast<int>(unrecoverable_.size());
    }
    const std::vector<cluster::FailedChunk> &unrecoverable() const
    {
        return unrecoverable_;
    }
    /** All chunks ever queued (initial failures + crash losses). */
    int totalChunks() const { return totalChunks_; }
    /** Chunks waiting for admission (retry backoffs included). */
    int pendingCount() const
    {
        return static_cast<int>(pending_.size()) + retriesInAir_;
    }
    int inFlightCount() const
    {
        return static_cast<int>(activeIds_.size());
    }
    /** Chunk repairs aborted by crashes and re-queued. */
    int crashReplans() const { return crashReplans_; }
    int phasesRun() const { return phasesRun_; }
    int retunes() const { return retunes_; }
    int reorders() const { return reorders_; }

    /** Repaired bytes per second over the whole run. */
    Rate throughput() const;

  private:
    void runPhase();
    /** Admits pending chunks against the current phase state until
     * the estimated phase budget is spent. */
    void admitPending();
    void progressCheck();
    void onChunkDone(RepairId id, const ChunkRepairPlan &plan,
                     SimTime when);
    void onChunkFailed(const ChunkRepairPlan &plan, NodeId cause,
                       SimTime when);
    void markUnrecoverable(const cluster::FailedChunk &chunk);
    /** Credits a departed plan's tasks back to the phase budget. */
    void releasePlanBudget(const ChunkRepairPlan &plan);
    /** Drops completed ids from the active set and its side maps. */
    void sweepInactive();
    /** Restarts the phase/check loops after a crash revived a
     * finished scheduler (no-op while they run). */
    void maybeRestartLoops();
    void maybeFinish(SimTime when);
    enum class Admission {
        kAdmitted,
        kNoBudget,
        kNoDestination,
        kUnrecoverable
    };
    Admission admitChunk(PlannerState &state,
                         const cluster::FailedChunk &chunk,
                         bool force);
    std::vector<cluster::FailedChunk> orderedPending() const;

    cluster::StripeManager &stripes_;
    RepairExecutor &executor_;
    BandwidthMonitor &monitor_;
    ChameleonConfig config_;
    Rng rng_;
    OutcomeFn outcomeHook_;

    std::deque<cluster::FailedChunk> pending_;
    /** Dispatcher state of the current phase (counts + estimates). */
    std::unique_ptr<PlannerState> phaseState_;
    /** End time of the current phase. */
    SimTime phaseEnd_ = 0.0;
    std::set<RepairId> activeIds_;
    /** Postponed chunks and the time their backoff expires. */
    std::map<RepairId, SimTime> pausedIds_;
    /** Per-edge delivered counts at the previous progress check,
     * used to detect zero-progress (crawling) transmissions. */
    std::map<RepairId, std::vector<int>> lastDelivered_;
    std::map<StripeId, std::set<NodeId>> reserved_;

    /** Metric handles (see telemetry/metrics.hh). */
    telemetry::Counter &metPhases_;
    telemetry::Counter &metDispatches_;
    telemetry::Counter &metChecks_;
    telemetry::Counter &metStragglers_;
    telemetry::Counter &metRetunes_;
    telemetry::Counter &metReorders_;
    /** True while a phase span is open on the scheduler track. */
    bool phaseSpanOpen_ = false;

    bool started_ = false;
    SimTime startTime_ = 0.0;
    SimTime finishTime_ = kTimeNever;
    int totalChunks_ = 0;
    int chunksRepaired_ = 0;
    int phasesRun_ = 0;
    int retunes_ = 0;
    int reorders_ = 0;
    std::vector<cluster::FailedChunk> unrecoverable_;
    /** Crash-abort counts per chunk, against maxRetries. */
    std::map<std::pair<StripeId, ChunkIndex>, int> retries_;
    int retriesInAir_ = 0;
    int crashReplans_ = 0;
    /** True while the self-rescheduling loops are alive; they stop
     * when the scheduler finishes and a crash may restart them. */
    bool phaseLoopActive_ = false;
    bool checkLoopActive_ = false;
    /** Re-entrancy guard: the outcome hook can feed new work back
     * in synchronously (scanner admission pump) while admitPending
     * iterates; coalesce such calls into another admission round. */
    bool admitting_ = false;
    bool readmit_ = false;
};

} // namespace repair
} // namespace chameleon

#endif // CHAMELEON_REPAIR_CHAMELEON_SCHEDULER_HH_
