/**
 * @file
 * Lossless lowering from ChunkRepairPlan in-trees to EcDag form.
 *
 * Every tree the planners emit (star, PPR binomial, ECPipe chain,
 * Chameleon Algorithm-1 trees) lowers into a DAG whose evaluateDag
 * result is byte-identical to evaluatePlan on the original tree, so
 * the DAG executor can run any existing plan — and topologies a
 * parent-array cannot express — behind one execution path.
 */

#ifndef CHAMELEON_REPAIR_DAG_BRIDGE_HH_
#define CHAMELEON_REPAIR_DAG_BRIDGE_HH_

#include <vector>

#include "dag/dag.hh"
#include "repair/plan.hh"

namespace chameleon {
namespace repair {

/** Converts plan sources to DAG sources (drops the parent links). */
std::vector<dag::DagSource>
toDagSources(const std::vector<PlanSource> &sources);

/**
 * Lowers a validated plan tree into an EcDag: a source with children
 * becomes leaf + co-located combine vertex; a childless source's leaf
 * feeds its parent directly, keeping star edges plain disk-to-network
 * transfers. Non-combinable plans (stars by construction) lower to
 * direct leaf->root edges with combinable = false.
 */
dag::EcDag fromTree(const ChunkRepairPlan &plan);

} // namespace repair
} // namespace chameleon

#endif // CHAMELEON_REPAIR_DAG_BRIDGE_HH_
