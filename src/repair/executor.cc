#include "repair/executor.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace chameleon {
namespace repair {

namespace {

/** Sentinel marking an edge whose flow is being created right now,
 * protecting against re-entrant double launches. */
constexpr sim::FlowId kLaunchingFlow = -2;

int
sliceCount(Bytes total, Bytes slice)
{
    return static_cast<int>(std::ceil(total / slice));
}

} // namespace

RepairExecutor::RepairExecutor(cluster::Cluster &cluster,
                               ExecutorConfig config)
    : cluster_(cluster), config_(config),
      metChunks_(telemetry::metrics().counter("repair.exec.chunks")),
      metSlices_(telemetry::metrics().counter("repair.exec.slices")),
      metCodecBytes_(
          telemetry::metrics().counter("repair.exec.codec_bytes")),
      metCombinedSlices_(telemetry::metrics().counter(
          "repair.exec.combined_slices")),
      metAborts_(telemetry::metrics().counter("repair.exec.aborts")),
      metVerifyRejects_(telemetry::metrics().counter(
          "repair.exec.verify_rejects")),
      metDecodeRejects_(telemetry::metrics().counter(
          "repair.exec.decode_rejects")),
      metDagChunks_(
          telemetry::metrics().counter("repair.exec.dag.chunks")),
      metDagSlices_(
          telemetry::metrics().counter("repair.exec.dag.slices")),
      metDagLocalSlices_(telemetry::metrics().counter(
          "repair.exec.dag.local_slices")),
      metDagPipelineDepth_(telemetry::metrics().histogram(
          "repair.exec.dag.pipeline_depth",
          {1, 2, 4, 8, 16, 32, 64, 128})),
      metDagOccupancy_(telemetry::metrics().histogram(
          "repair.exec.dag.occupancy",
          {0.5, 1, 2, 4, 8, 16, 32}))
{
    CHAMELEON_ASSERT(config_.chunkSize > 0 && config_.sliceSize > 0,
                     "sizes must be positive");
    CHAMELEON_ASSERT(config_.sliceSize <= config_.chunkSize,
                     "slice larger than chunk");
    CHAMELEON_ASSERT(config_.slices >= 0, "negative slice count");
    slots_.resize(static_cast<std::size_t>(cluster_.numNodes()));
}

void
RepairExecutor::wake(std::vector<std::pair<RepairId, int>> &waiters)
{
    if (waiters.empty())
        return;
    auto woken = std::move(waiters);
    waiters.clear();
    for (const auto &[id, edge_index] : woken) {
        cluster_.simulator().scheduleAfter(
            0.0, [this, id = id, edge_index = edge_index] {
                auto it = active_.find(id);
                if (it != active_.end()) {
                    tryLaunchEdge(it->second, edge_index);
                    return;
                }
                auto dit = dagActive_.find(id);
                if (dit != dagActive_.end())
                    tryLaunchDagEdge(dit->second, edge_index);
            });
    }
}

RepairId
RepairExecutor::launch(const ChunkRepairPlan &plan, ChunkDone on_done,
                       ChunkFail on_fail)
{
    plan.validate();
    CHAMELEON_ASSERT(plan.sources.size() <= 31,
                     "plan too wide for contribution masks");

    RepairId id = nextId_++;
    ChunkExec chunk;
    chunk.id = id;
    chunk.plan = plan;
    chunk.onDone = std::move(on_done);
    chunk.onFail = std::move(on_fail);
    chunk.launchTime = cluster_.simulator().now();
    const Bytes slice = config_.effectiveSliceSize();
    chunk.chunkSlices = sliceCount(config_.chunkSize, slice);

    const int nsrc = static_cast<int>(plan.sources.size());
    for (int i = 0; i < nsrc; ++i) {
        Edge edge;
        edge.source = i;
        edge.target = plan.sources[static_cast<std::size_t>(i)].parent;
        edge.slicesTotal = sliceCount(
            plan.sources[static_cast<std::size_t>(i)].fraction *
                config_.chunkSize,
            slice);
        edge.payload.assign(
            static_cast<std::size_t>(edge.slicesTotal), 0);
        chunk.edges.push_back(std::move(edge));
    }
    if (plan.combinable) {
        chunk.receivedMask.assign(
            static_cast<std::size_t>(nsrc),
            std::vector<Mask>(
                static_cast<std::size_t>(chunk.chunkSlices), 0));
        chunk.destMask.assign(
            static_cast<std::size_t>(chunk.chunkSlices), 0);
    }
    active_.emplace(id, std::move(chunk));

    // Defer initial launches through the event loop so launch() is
    // safe to call from any context.
    for (int i = 0; i < nsrc; ++i) {
        cluster_.simulator().scheduleAfter(
            0.0, [this, id, i] {
                auto it = active_.find(id);
                if (it != active_.end())
                    tryLaunchEdge(it->second, i);
            });
    }
    return id;
}

bool
RepairExecutor::chunkActive(RepairId id) const
{
    return active_.count(id) > 0 || dagActive_.count(id) > 0;
}

const RepairExecutor::ChunkExec &
RepairExecutor::get(RepairId id) const
{
    auto it = active_.find(id);
    CHAMELEON_ASSERT(it != active_.end(), "repair ", id, " not active");
    return it->second;
}

RepairExecutor::ChunkExec &
RepairExecutor::get(RepairId id)
{
    auto it = active_.find(id);
    CHAMELEON_ASSERT(it != active_.end(), "repair ", id, " not active");
    return it->second;
}

const ChunkRepairPlan &
RepairExecutor::plan(RepairId id) const
{
    auto it = active_.find(id);
    if (it != active_.end())
        return it->second.plan;
    auto dit = dagActive_.find(id);
    CHAMELEON_ASSERT(dit != dagActive_.end(), "repair ", id,
                     " not active");
    return dit->second.plan;
}

std::vector<EdgeStatus>
RepairExecutor::edgeStatus(RepairId id) const
{
    const ChunkExec &chunk = get(id);
    std::vector<EdgeStatus> out;
    for (const Edge &edge : chunk.edges) {
        EdgeStatus st;
        st.source = edge.source;
        st.target = edge.target;
        st.slicesTotal = edge.slicesTotal;
        st.slicesDelivered = edge.delivered;
        st.done = (edge.delivered >= edge.slicesTotal);
        st.retuned = edge.retuned;
        st.active = (edge.activeFlow != sim::kInvalidFlow);
        st.expectation = edge.expectation;
        out.push_back(st);
    }
    return out;
}

void
RepairExecutor::setEdgeExpectation(RepairId id, int source,
                                   SimTime when)
{
    ChunkExec &chunk = get(id);
    CHAMELEON_ASSERT(source >= 0 &&
                     source < static_cast<int>(chunk.edges.size()),
                     "bad edge index ", source);
    chunk.edges[static_cast<std::size_t>(source)].expectation = when;
}

void
RepairExecutor::pauseChunk(RepairId id)
{
    ChunkExec &chunk = get(id);
    chunk.paused = true;
    // Postpone the chunk's transmissions: cancel in-flight slices
    // (they restart from the slice boundary on resume) so the node
    // slots they occupy — possibly crawling through a straggler —
    // free up for other chunks immediately.
    for (Edge &edge : chunk.edges) {
        if (edge.activeFlow != sim::kInvalidFlow &&
            edge.activeFlow != kLaunchingFlow) {
            cluster_.network().cancelFlow(edge.activeFlow);
            edge.activeFlow = sim::kInvalidFlow;
        }
        // Also release slots an idle edge is holding between slices
        // (task continuity); launching edges release via
        // beginSliceFlow's paused check.
        if (edge.activeFlow == sim::kInvalidFlow)
            releaseSlots(edge);
    }
}

void
RepairExecutor::resumeChunk(RepairId id)
{
    ChunkExec &chunk = get(id);
    if (!chunk.paused)
        return;
    chunk.paused = false;
    for (int i = 0; i < static_cast<int>(chunk.edges.size()); ++i) {
        cluster_.simulator().scheduleAfter(
            0.0, [this, id, i] {
                auto it = active_.find(id);
                if (it != active_.end())
                    tryLaunchEdge(it->second, i);
            });
    }
}

bool
RepairExecutor::chunkPaused(RepairId id) const
{
    return get(id).paused;
}

void
RepairExecutor::retuneEdge(RepairId id, int source)
{
    ChunkExec &chunk = get(id);
    CHAMELEON_ASSERT(chunk.plan.combinable,
                     "cannot re-tune a non-combinable plan");
    CHAMELEON_ASSERT(source >= 0 &&
                     source < static_cast<int>(chunk.edges.size()),
                     "bad edge index ", source);
    Edge &edge = chunk.edges[static_cast<std::size_t>(source)];
    if (edge.target == kToDestination)
        return; // already uploads to the destination
    if (edge.delivered >= edge.slicesTotal)
        return; // finished; nothing to redirect

    int old_target = edge.target;
    // Abandon the in-flight slice (its bytes are wasted, as a real
    // re-tuned transfer's would be) and redirect the remainder.
    if (edge.activeFlow != sim::kInvalidFlow &&
        edge.activeFlow != kLaunchingFlow) {
        cluster_.network().cancelFlow(edge.activeFlow);
        edge.activeFlow = sim::kInvalidFlow;
        releaseSlots(edge);
    }
    edge.target = kToDestination;
    edge.retuned = true;
    // Keep the plan's bookkeeping in step so childrenOf() and later
    // validation reflect reality.
    chunk.plan.sources[static_cast<std::size_t>(source)].parent =
        kToDestination;

    // The old relay no longer waits for this child; it may have a
    // blocked slice ready to go, and this edge restarts toward the
    // destination.
    cluster_.simulator().scheduleAfter(
        0.0, [this, id, source, old_target] {
            auto it = active_.find(id);
            if (it == active_.end())
                return;
            tryLaunchEdge(it->second, source);
            tryLaunchEdge(it->second, old_target);
        });
}

double
RepairExecutor::destinationProgress(RepairId id) const
{
    const ChunkExec &chunk = get(id);
    if (chunk.plan.combinable) {
        const Mask full =
            (Mask(1) << chunk.plan.sources.size()) - 1;
        int complete = 0;
        for (Mask m : chunk.destMask)
            complete += (m == full);
        return static_cast<double>(complete) /
               static_cast<double>(chunk.chunkSlices);
    }
    int delivered = 0, total = 0;
    for (const Edge &edge : chunk.edges) {
        delivered += edge.delivered;
        total += edge.slicesTotal;
    }
    return total ? static_cast<double>(delivered) /
                       static_cast<double>(total)
                 : 0.0;
}

int
RepairExecutor::activeEdgesTouching(NodeId node) const
{
    int count = 0;
    for (const auto &[id, chunk] : active_) {
        if (chunk.paused)
            continue;
        for (const Edge &edge : chunk.edges) {
            if (edge.delivered >= edge.slicesTotal)
                continue;
            NodeId src = chunk.plan
                             .sources[static_cast<std::size_t>(
                                 edge.source)]
                             .node;
            NodeId tgt =
                edge.target == kToDestination
                    ? chunk.plan.destination
                    : chunk.plan
                          .sources[static_cast<std::size_t>(
                              edge.target)]
                          .node;
            if (src == node || tgt == node)
                ++count;
        }
    }
    for (const auto &[id, chunk] : dagActive_) {
        for (const DagEdge &edge : chunk.edges) {
            if (edge.delivered >= edge.slicesTotal || edge.local)
                continue;
            if (chunk.dag.vertex(edge.from).node == node ||
                chunk.dag.vertex(edge.to).node == node)
                ++count;
        }
    }
    return count;
}

bool
RepairExecutor::edgeDepsSatisfied(const ChunkExec &chunk,
                                  const Edge &edge) const
{
    if (!chunk.plan.combinable)
        return true; // direct transfers only
    const int s = edge.nextSlice;
    for (const Edge &child : chunk.edges) {
        if (child.target == edge.source && child.delivered <= s)
            return false;
    }
    return true;
}

void
RepairExecutor::tryLaunchEdge(ChunkExec &chunk, int edge_index)
{
    Edge &edge = chunk.edges[static_cast<std::size_t>(edge_index)];
    if (chunk.paused || edge.activeFlow != sim::kInvalidFlow ||
        edge.nextSlice >= edge.slicesTotal ||
        !edgeDepsSatisfied(chunk, edge)) {
        // Do not sit on slots while unable to send.
        if (edge.activeFlow == sim::kInvalidFlow)
            releaseSlots(edge);
        return;
    }

    const int s = edge.nextSlice;
    const auto &src =
        chunk.plan.sources[static_cast<std::size_t>(edge.source)];

    // Verify-on-read: the first slice launch is where the helper's
    // payload leaves its disk, so the checksum kernel runs here. A
    // corrupt helper aborts the whole chunk (deferred — the hook may
    // mutate stripe state and the abort destroys `chunk`).
    if (!edge.verified) {
        edge.verified = true;
        if (integrity_.verifySource &&
            !integrity_.verifySource(chunk.plan.stripe, src.chunk,
                                     src.node)) {
            metVerifyRejects_.add();
            const RepairId id = chunk.id;
            const NodeId bad = src.node;
            releaseSlots(edge);
            cluster_.simulator().scheduleAfter(
                0.0, [this, id, bad] {
                    if (active_.find(id) != active_.end())
                        abortChunk(id, bad);
                });
            return;
        }
    }

    const bool to_dest = (edge.target == kToDestination);
    const NodeId to = to_dest
                          ? chunk.plan.destination
                          : chunk.plan
                                .sources[static_cast<std::size_t>(
                                    edge.target)]
                                .node;
    // Per-node repair slots (bounded reconstruction streams).
    // Blocked edges wait for a release. An edge that already holds
    // its slots (continuing a task) skips acquisition.
    if (edge.holdUp == kInvalidNode) {
        auto &src_slots = slots_[static_cast<std::size_t>(src.node)];
        auto &dst_slots = slots_[static_cast<std::size_t>(to)];
        if (src_slots.upActive >= config_.nodeUploadSlots) {
            src_slots.upWaiters.emplace_back(chunk.id, edge_index);
            return;
        }
        if (dst_slots.downActive >= config_.nodeDownloadSlots) {
            dst_slots.downWaiters.emplace_back(chunk.id, edge_index);
            return;
        }
        src_slots.upActive += 1;
        dst_slots.downActive += 1;
        edge.holdUp = src.node;
        edge.holdDown = to;
    }

    if (chunk.plan.combinable) {
        edge.inFlightMask =
            ownMask(edge.source) |
            chunk.receivedMask[static_cast<std::size_t>(edge.source)]
                              [static_cast<std::size_t>(s)];
    }

    const RepairId id = chunk.id;
    edge.activeFlow = kLaunchingFlow;

    // Relay forwarding overhead: a combined (partially decoded)
    // slice costs CPU and turnaround time at the relay before it can
    // leave, and the relay's upload stream is occupied meanwhile.
    // Pure local slices (CR-style direct uploads) skip it.
    const bool combined =
        chunk.plan.combinable &&
        edge.inFlightMask != ownMask(edge.source);
    if (combined && config_.relayOverheadPerMiB > 0) {
        const Bytes total = src.fraction * config_.chunkSize;
        const Bytes slice = config_.effectiveSliceSize();
        const Bytes slice_bytes = std::min(
            slice, total - static_cast<double>(s) * slice);
        cluster_.simulator().scheduleAfter(
            config_.relayOverheadPerMiB * slice_bytes / units::MiB,
            [this, id, edge_index] {
                auto it = active_.find(id);
                if (it != active_.end())
                    beginSliceFlow(it->second, edge_index);
            });
    } else {
        beginSliceFlow(chunk, edge_index);
    }
}

void
RepairExecutor::beginSliceFlow(ChunkExec &chunk, int edge_index)
{
    Edge &edge = chunk.edges[static_cast<std::size_t>(edge_index)];
    CHAMELEON_ASSERT(edge.activeFlow == kLaunchingFlow,
                     "beginSliceFlow on an edge with no pending slice");
    if (chunk.paused) {
        // Postponed while the relay was combining: back off fully.
        edge.activeFlow = sim::kInvalidFlow;
        releaseSlots(edge);
        return;
    }
    const int s = edge.nextSlice;
    const auto &src =
        chunk.plan.sources[static_cast<std::size_t>(edge.source)];
    // Recompute the target: a re-tune may have redirected the edge
    // while the relay was combining.
    const bool to_dest = (edge.target == kToDestination);
    const NodeId to = to_dest
                          ? chunk.plan.destination
                          : chunk.plan
                                .sources[static_cast<std::size_t>(
                                    edge.target)]
                                .node;
    if (to != edge.holdDown) {
        // Move the held download slot to the new target.
        auto &old_slots =
            slots_[static_cast<std::size_t>(edge.holdDown)];
        CHAMELEON_ASSERT(old_slots.downActive > 0, "slot underflow");
        old_slots.downActive -= 1;
        wake(old_slots.downWaiters);
        slots_[static_cast<std::size_t>(to)].downActive += 1;
        edge.holdDown = to;
    }

    // The source reads its local chunk slice from disk for every
    // upload; relays and the destination fold received contributions
    // in memory. The destination persists each *reconstructed* slice
    // exactly once via issueDestWrite(), so incoming transfers never
    // pass through its disk.
    auto path = cluster_.transferPath(src.node, to,
                                      /*read_disk=*/true,
                                      /*write_disk=*/false);
    const Bytes total = src.fraction * config_.chunkSize;
    const Bytes slice = config_.effectiveSliceSize();
    const Bytes bytes = std::min(
        slice, total - static_cast<double>(s) * slice);
    CHAMELEON_ASSERT(bytes > 0, "empty slice");
    // The no-dead-node invariant: crashes abort every affected chunk
    // synchronously, so a launch can never involve a down node.
    CHAMELEON_ASSERT(!cluster_.nodeDown(src.node),
                     "repair slice reads from dead node ", src.node);
    CHAMELEON_ASSERT(!cluster_.nodeDown(to),
                     "repair slice sends to dead node ", to);

    const RepairId id = chunk.id;
    sim::FlowId flow = cluster_.network().startFlow(
        std::move(path), bytes, sim::FlowTag::kRepair,
        [this, id, edge_index] { onSliceDelivered(id, edge_index); });
    edge.activeFlow = flow;
}

void
RepairExecutor::releaseHeldSlots(NodeId &hold_up, NodeId &hold_down)
{
    if (hold_up != kInvalidNode) {
        auto &s = slots_[static_cast<std::size_t>(hold_up)];
        CHAMELEON_ASSERT(s.upActive > 0, "slot underflow");
        s.upActive -= 1;
        wake(s.upWaiters);
        hold_up = kInvalidNode;
    }
    if (hold_down != kInvalidNode) {
        auto &s = slots_[static_cast<std::size_t>(hold_down)];
        CHAMELEON_ASSERT(s.downActive > 0, "slot underflow");
        s.downActive -= 1;
        wake(s.downWaiters);
        hold_down = kInvalidNode;
    }
}

void
RepairExecutor::releaseSlots(Edge &edge)
{
    releaseHeldSlots(edge.holdUp, edge.holdDown);
}

int
RepairExecutor::abortChunksTouching(NodeId node)
{
    // Collect first: aborting mutates active_ and fires callbacks
    // that may launch replacement chunks.
    std::vector<RepairId> doomed;
    for (const auto &[id, chunk] : active_) {
        if (chunk.plan.destination == node) {
            doomed.push_back(id);
            continue;
        }
        for (const Edge &edge : chunk.edges) {
            if (edge.delivered >= edge.slicesTotal)
                continue; // data already delivered; node not needed
            NodeId src = chunk.plan
                             .sources[static_cast<std::size_t>(
                                 edge.source)]
                             .node;
            NodeId tgt =
                edge.target == kToDestination
                    ? chunk.plan.destination
                    : chunk.plan
                          .sources[static_cast<std::size_t>(
                              edge.target)]
                          .node;
            if (src == node || tgt == node) {
                doomed.push_back(id);
                break;
            }
        }
    }
    for (RepairId id : doomed)
        abortChunk(id, node);

    std::vector<RepairId> dag_doomed;
    for (const auto &[id, chunk] : dagActive_) {
        if (chunk.dag.destination() == node) {
            dag_doomed.push_back(id);
            continue;
        }
        for (const DagEdge &edge : chunk.edges) {
            if (edge.delivered >= edge.slicesTotal)
                continue; // data already delivered; node not needed
            if (chunk.dag.vertex(edge.from).node == node ||
                chunk.dag.vertex(edge.to).node == node) {
                dag_doomed.push_back(id);
                break;
            }
        }
    }
    for (RepairId id : dag_doomed)
        abortDagChunk(id, node);
    return static_cast<int>(doomed.size() + dag_doomed.size());
}

bool
RepairExecutor::cancel(RepairId id)
{
    auto &net = cluster_.network();
    if (auto it = active_.find(id); it != active_.end()) {
        ChunkExec &chunk = it->second;
        for (Edge &edge : chunk.edges) {
            // kLaunchingFlow edges have a deferred beginSliceFlow in
            // the event queue; it no-ops once the chunk leaves
            // active_.
            if (edge.activeFlow != sim::kInvalidFlow &&
                edge.activeFlow != kLaunchingFlow)
                net.cancelFlow(edge.activeFlow);
            edge.activeFlow = sim::kInvalidFlow;
            releaseSlots(edge);
        }
        for (sim::FlowId write : chunk.destWrites)
            net.cancelFlow(write);
        active_.erase(it);
        return true;
    }
    if (auto it = dagActive_.find(id); it != dagActive_.end()) {
        DagExec &chunk = it->second;
        for (DagEdge &edge : chunk.edges) {
            if (edge.activeFlow != sim::kInvalidFlow &&
                edge.activeFlow != kLaunchingFlow)
                net.cancelFlow(edge.activeFlow);
            edge.activeFlow = sim::kInvalidFlow;
            releaseHeldSlots(edge.holdUp, edge.holdDown);
        }
        for (sim::FlowId write : chunk.destWrites)
            net.cancelFlow(write);
        dagActive_.erase(it);
        return true;
    }
    return false;
}

void
RepairExecutor::abortChunk(RepairId id, NodeId cause)
{
    auto it = active_.find(id);
    CHAMELEON_ASSERT(it != active_.end(), "abort of inactive repair ",
                     id);
    ChunkExec &chunk = it->second;
    auto &net = cluster_.network();
    for (Edge &edge : chunk.edges) {
        // kLaunchingFlow edges have a deferred beginSliceFlow in the
        // event queue; it no-ops once the chunk leaves active_.
        if (edge.activeFlow != sim::kInvalidFlow &&
            edge.activeFlow != kLaunchingFlow)
            net.cancelFlow(edge.activeFlow);
        edge.activeFlow = sim::kInvalidFlow;
        releaseSlots(edge);
    }
    // Finished writes are a no-op cancel (no solve), so no
    // flowActive pre-filter is needed.
    for (sim::FlowId write : chunk.destWrites)
        net.cancelFlow(write);
    metAborts_.add();
    const SimTime now = cluster_.simulator().now();
    CHAMELEON_TELEM(telemetry::tracer().instant(
        now, telemetry::kTrackFault, "fault", "abort",
        {{"stripe", chunk.plan.stripe},
         {"chunk", chunk.plan.failedChunk},
         {"dest", chunk.plan.destination},
         {"cause_node", cause}}));
    auto plan_copy = chunk.plan;
    auto on_fail = std::move(chunk.onFail);
    active_.erase(it);
    if (on_fail)
        on_fail(plan_copy, cause, now);
}

void
RepairExecutor::onSliceDelivered(RepairId id, int edge_index)
{
    auto it = active_.find(id);
    CHAMELEON_ASSERT(it != active_.end(),
                     "slice delivery for inactive repair ", id);
    ChunkExec &chunk = it->second;
    Edge &edge = chunk.edges[static_cast<std::size_t>(edge_index)];

    const int s = edge.nextSlice;
    edge.activeFlow = sim::kInvalidFlow;
    edge.delivered = s + 1;
    edge.nextSlice = s + 1;
    metSlices_.add();
    // Task-queue semantics: the edge keeps its slots while it has
    // immediately sendable slices (a node works through an upload
    // task to completion, as the paper's per-node task model and the
    // dispatcher's serial-time estimates assume); it yields them
    // when done, paused, or blocked on a dependency.
    const bool continues = edge.nextSlice < edge.slicesTotal &&
                           !chunk.paused &&
                           edgeDepsSatisfied(chunk, edge);
    if (!continues)
        releaseSlots(edge);

    if (chunk.plan.combinable) {
        const Mask mask = edge.inFlightMask;
        edge.payload[static_cast<std::size_t>(s)] = mask;
        // The receiver folds this slice into its partial decode — a
        // mulAddRegionMulti's worth of codec work per delivery.
        {
            const auto &src = chunk.plan
                                  .sources[static_cast<std::size_t>(
                                      edge.source)];
            const Bytes total = src.fraction * config_.chunkSize;
            const Bytes slice = config_.effectiveSliceSize();
            const Bytes slice_bytes = std::min(
                slice, total - static_cast<double>(s) * slice);
            metCodecBytes_.add(static_cast<int64_t>(slice_bytes));
            if (mask != ownMask(edge.source))
                metCombinedSlices_.add();
        }
        if (edge.target == kToDestination) {
            Mask &dm = chunk.destMask[static_cast<std::size_t>(s)];
            CHAMELEON_ASSERT((dm & mask) == 0,
                             "slice ", s, " of repair ", id,
                             " delivered a duplicate contribution");
            dm |= mask;
            const Mask full =
                (Mask(1) << chunk.plan.sources.size()) - 1;
            if (dm == full) {
                // Slice fully reconstructed: persist it.
                const Bytes slice = config_.effectiveSliceSize();
                Bytes bytes = std::min(
                    slice, config_.chunkSize -
                               static_cast<double>(s) * slice);
                issueDestWrite(chunk, bytes);
            }
        } else {
            chunk.receivedMask[static_cast<std::size_t>(edge.target)]
                              [static_cast<std::size_t>(s)] |= mask;
        }
    }

    // Defer follow-up launches so this callback stays re-entrant
    // safe with respect to the flow network's dispatch loop.
    const int target = edge.target;
    cluster_.simulator().scheduleAfter(0.0, [this, id, edge_index,
                                             target] {
        auto lit = active_.find(id);
        if (lit == active_.end())
            return;
        tryLaunchEdge(lit->second, edge_index);
        if (target != kToDestination)
            tryLaunchEdge(lit->second, target);
    });

    checkChunkDone(id);
}

void
RepairExecutor::issueDestWrite(ChunkExec &chunk, Bytes bytes)
{
    CHAMELEON_ASSERT(!cluster_.nodeDown(chunk.plan.destination),
                     "destination write on dead node ",
                     chunk.plan.destination);
    chunk.writesIssued += 1;
    const RepairId id = chunk.id;
    sim::FlowId flow = cluster_.network().startFlow(
        {cluster_.disk(chunk.plan.destination)}, bytes,
        sim::FlowTag::kRepair, [this, id] {
            auto it = active_.find(id);
            CHAMELEON_ASSERT(it != active_.end(),
                             "write completion for inactive repair");
            it->second.writesDone += 1;
            checkChunkDone(id);
        });
    // Track the write so a destination crash can invalidate it;
    // completed writes are pruned lazily at the next issue/abort.
    std::erase_if(chunk.destWrites, [this](sim::FlowId f) {
        return !cluster_.network().flowActive(f);
    });
    chunk.destWrites.push_back(flow);
}

void
RepairExecutor::checkChunkDone(RepairId id)
{
    auto it = active_.find(id);
    if (it == active_.end())
        return;
    ChunkExec &chunk = it->second;
    for (const Edge &edge : chunk.edges) {
        if (edge.delivered < edge.slicesTotal)
            return;
    }
    // Non-combinable codes reconstruct from sub-chunks after all
    // transfers arrive, then persist the whole chunk.
    if (!chunk.plan.combinable && chunk.writesIssued == 0)
        issueDestWrite(chunk, config_.chunkSize);
    if (chunk.writesDone < chunk.writesIssued ||
        chunk.writesIssued == 0)
        return;
    if (chunk.plan.combinable) {
        // Every slice must have exactly one contribution from every
        // source — the invariant that re-tuning must preserve.
        const Mask full = (Mask(1) << chunk.plan.sources.size()) - 1;
        for (int s = 0; s < chunk.chunkSlices; ++s) {
            CHAMELEON_ASSERT(
                chunk.destMask[static_cast<std::size_t>(s)] == full,
                "slice ", s, " of repair ", id,
                " is missing contributions: mask ",
                chunk.destMask[static_cast<std::size_t>(s)], " != ",
                full);
        }
    }
    // Verify-after-decode: the reconstruction is complete; checksum
    // the decoded payload before declaring success. A rejection
    // aborts through the normal path (deferred — we are inside flow
    // completion dispatch, and no further events reference this
    // chunk, so the hook fires exactly once).
    if (integrity_.verifyDecoded) {
        const NodeId bad = integrity_.verifyDecoded(chunk.plan);
        if (bad != kInvalidNode) {
            metDecodeRejects_.add();
            cluster_.simulator().scheduleAfter(
                0.0, [this, id, bad] {
                    if (active_.find(id) != active_.end())
                        abortChunk(id, bad);
                });
            return;
        }
    }
    ++completedChunks_;
    metChunks_.add();
    const SimTime now = cluster_.simulator().now();
    CHAMELEON_TELEM(telemetry::tracer().complete(
        chunk.launchTime, now - chunk.launchTime,
        telemetry::kTrackExecutor, "repair", "chunk",
        {{"stripe", chunk.plan.stripe},
         {"chunk", chunk.plan.failedChunk},
         {"dest", chunk.plan.destination},
         {"sources", chunk.plan.sources.size()},
         {"gf_kernel", gf::kernelName()}}));
    auto plan_copy = chunk.plan;
    auto done = std::move(chunk.onDone);
    active_.erase(it);
    if (done)
        done(plan_copy, now);
}

RepairId
RepairExecutor::launchDag(const dag::EcDag &d,
                          const ChunkRepairPlan &plan,
                          ChunkDone on_done, ChunkFail on_fail)
{
    d.validate();
    const int nsrc = static_cast<int>(d.sources().size());
    CHAMELEON_ASSERT(nsrc >= 1 && nsrc <= 31,
                     "DAG too wide for contribution tracking");
    CHAMELEON_ASSERT(!d.vertex(d.root()).isLeaf(),
                     "DAG root must combine at least one input");

    RepairId id = nextId_++;
    DagExec chunk;
    chunk.id = id;
    chunk.dag = d;
    chunk.plan = plan;
    chunk.onDone = std::move(on_done);
    chunk.onFail = std::move(on_fail);
    chunk.launchTime = cluster_.simulator().now();
    const Bytes slice = config_.effectiveSliceSize();
    chunk.chunkSlices = sliceCount(config_.chunkSize, slice);

    const int nv = d.vertexCount();
    chunk.inEdges.assign(static_cast<std::size_t>(nv), {});
    chunk.outEdges.assign(static_cast<std::size_t>(nv), {});
    for (dag::VertexId v = 0; v < nv; ++v) {
        const auto &vert = d.vertex(v);
        for (dag::VertexId f : vert.in) {
            const auto &fv = d.vertex(f);
            DagEdge edge;
            edge.from = f;
            edge.to = v;
            edge.fromLeaf = fv.isLeaf();
            const double fraction =
                edge.fromLeaf
                    ? d.sources()[static_cast<std::size_t>(fv.source)]
                          .fraction
                    : 1.0;
            edge.slicesTotal =
                sliceCount(fraction * config_.chunkSize, slice);
            edge.local = (fv.node == vert.node);
            const int ei = static_cast<int>(chunk.edges.size());
            chunk.edges.push_back(edge);
            chunk.inEdges[static_cast<std::size_t>(v)].push_back(ei);
            chunk.outEdges[static_cast<std::size_t>(f)].push_back(ei);
        }
    }
    // Execution streams each vertex's result to exactly one consumer
    // so every helper contribution reaches the root exactly once —
    // the DAG generalizes *topology* (bounded fan-in, co-located
    // hops, local reads), not contribution sharing.
    for (dag::VertexId v = 0; v < nv; ++v) {
        if (v == d.root())
            continue;
        CHAMELEON_ASSERT(
            chunk.outEdges[static_cast<std::size_t>(v)].size() == 1,
            "vertex ", v, " feeds ",
            chunk.outEdges[static_cast<std::size_t>(v)].size(),
            " consumers; the executor requires exactly one");
    }

    const int nedges = static_cast<int>(chunk.edges.size());
    dagActive_.emplace(id, std::move(chunk));

    // Defer initial launches through the event loop so launchDag()
    // is safe to call from any context.
    for (int i = 0; i < nedges; ++i) {
        cluster_.simulator().scheduleAfter(0.0, [this, id, i] {
            auto it = dagActive_.find(id);
            if (it != dagActive_.end())
                tryLaunchDagEdge(it->second, i);
        });
    }
    return id;
}

int
RepairExecutor::dagReadySlices(const DagExec &chunk,
                               dag::VertexId v) const
{
    const auto &vert = chunk.dag.vertex(v);
    // A leaf's slices all sit on disk from the start; an internal
    // vertex holds slice s only once every input delivered slice s.
    if (vert.isLeaf())
        return std::numeric_limits<int>::max();
    int ready = std::numeric_limits<int>::max();
    for (int ei : chunk.inEdges[static_cast<std::size_t>(v)])
        ready = std::min(
            ready, chunk.edges[static_cast<std::size_t>(ei)].delivered);
    return ready;
}

Bytes
RepairExecutor::dagEdgeSliceBytes(const DagExec &chunk,
                                  const DagEdge &edge, int s) const
{
    double fraction = 1.0;
    if (edge.fromLeaf) {
        const auto &fv = chunk.dag.vertex(edge.from);
        fraction = chunk.dag
                       .sources()[static_cast<std::size_t>(fv.source)]
                       .fraction;
    }
    const Bytes total = fraction * config_.chunkSize;
    const Bytes slice = config_.effectiveSliceSize();
    return std::min(slice, total - static_cast<double>(s) * slice);
}

void
RepairExecutor::tryLaunchDagEdge(DagExec &chunk, int edge_index)
{
    DagEdge &edge = chunk.edges[static_cast<std::size_t>(edge_index)];
    if (edge.activeFlow != sim::kInvalidFlow ||
        edge.nextSlice >= edge.slicesTotal ||
        dagReadySlices(chunk, edge.from) <= edge.nextSlice) {
        // Do not sit on slots while unable to send.
        if (edge.activeFlow == sim::kInvalidFlow)
            releaseHeldSlots(edge.holdUp, edge.holdDown);
        return;
    }

    const int s = edge.nextSlice;
    const NodeId from_node = chunk.dag.vertex(edge.from).node;
    const NodeId to_node = chunk.dag.vertex(edge.to).node;
    const RepairId id = chunk.id;

    // Verify-on-read for leaf edges: the first slice is where the
    // helper chunk's payload is read off disk, local or not.
    if (edge.fromLeaf && !edge.verified) {
        edge.verified = true;
        if (integrity_.verifySource) {
            const auto &leaf =
                chunk.dag.sources()[static_cast<std::size_t>(
                    chunk.dag.vertex(edge.from).source)];
            if (!integrity_.verifySource(chunk.plan.stripe,
                                         leaf.chunk, leaf.node)) {
                metVerifyRejects_.add();
                const NodeId bad = leaf.node;
                releaseHeldSlots(edge.holdUp, edge.holdDown);
                cluster_.simulator().scheduleAfter(
                    0.0, [this, id, bad] {
                        if (dagActive_.count(id))
                            abortDagChunk(id, bad);
                    });
                return;
            }
        }
    }

    if (edge.local) {
        // Same-node hop, no network slots: a leaf input is a local
        // disk read (slice by slice, sharing the disk with every
        // other flow); an internal input is an in-memory handoff.
        edge.activeFlow = kLaunchingFlow;
        if (edge.fromLeaf) {
            CHAMELEON_ASSERT(!cluster_.nodeDown(from_node),
                             "repair slice reads from dead node ",
                             from_node);
            const Bytes bytes = dagEdgeSliceBytes(chunk, edge, s);
            CHAMELEON_ASSERT(bytes > 0, "empty slice");
            edge.sliceStart = cluster_.simulator().now();
            edge.activeFlow = cluster_.network().startFlow(
                {cluster_.disk(from_node)}, bytes,
                sim::FlowTag::kRepair,
                sim::FlowLabel{id, edge.from, s},
                [this, id, edge_index] {
                    onDagSliceDelivered(id, edge_index);
                });
        } else {
            cluster_.simulator().scheduleAfter(
                0.0, [this, id, edge_index] {
                    // No-op if a crash aborted the chunk meanwhile.
                    if (dagActive_.count(id))
                        onDagSliceDelivered(id, edge_index);
                });
        }
        return;
    }

    // Per-node repair slots (bounded reconstruction streams), with
    // the same task-continuity semantics as tree edges.
    if (edge.holdUp == kInvalidNode) {
        auto &src_slots = slots_[static_cast<std::size_t>(from_node)];
        auto &dst_slots = slots_[static_cast<std::size_t>(to_node)];
        if (src_slots.upActive >= config_.nodeUploadSlots) {
            src_slots.upWaiters.emplace_back(chunk.id, edge_index);
            return;
        }
        if (dst_slots.downActive >= config_.nodeDownloadSlots) {
            dst_slots.downWaiters.emplace_back(chunk.id, edge_index);
            return;
        }
        src_slots.upActive += 1;
        dst_slots.downActive += 1;
        edge.holdUp = from_node;
        edge.holdDown = to_node;
    }

    edge.activeFlow = kLaunchingFlow;

    // An internal vertex's upload carries a partial decode: GF
    // combination and turnaround cost at the relay before the slice
    // can leave. Leaf uploads (raw chunks) skip it, exactly like
    // direct transfers on the tree path.
    if (!edge.fromLeaf && config_.relayOverheadPerMiB > 0) {
        const Bytes slice_bytes = dagEdgeSliceBytes(chunk, edge, s);
        cluster_.simulator().scheduleAfter(
            config_.relayOverheadPerMiB * slice_bytes / units::MiB,
            [this, id, edge_index] {
                auto it = dagActive_.find(id);
                if (it != dagActive_.end())
                    beginDagSliceFlow(it->second, edge_index);
            });
    } else {
        beginDagSliceFlow(chunk, edge_index);
    }
}

void
RepairExecutor::beginDagSliceFlow(DagExec &chunk, int edge_index)
{
    DagEdge &edge = chunk.edges[static_cast<std::size_t>(edge_index)];
    CHAMELEON_ASSERT(edge.activeFlow == kLaunchingFlow,
                     "beginDagSliceFlow on an edge with no pending "
                     "slice");
    const int s = edge.nextSlice;
    const NodeId from_node = chunk.dag.vertex(edge.from).node;
    const NodeId to_node = chunk.dag.vertex(edge.to).node;
    // A leaf's upload reads the helper chunk from disk in-path; an
    // internal vertex forwards a partial decode held in memory.
    auto path = cluster_.transferPath(from_node, to_node,
                                      /*read_disk=*/edge.fromLeaf,
                                      /*write_disk=*/false);
    const Bytes bytes = dagEdgeSliceBytes(chunk, edge, s);
    CHAMELEON_ASSERT(bytes > 0, "empty slice");
    // The no-dead-node invariant: crashes abort every affected chunk
    // synchronously, so a launch can never involve a down node.
    CHAMELEON_ASSERT(!cluster_.nodeDown(from_node),
                     "repair slice reads from dead node ", from_node);
    CHAMELEON_ASSERT(!cluster_.nodeDown(to_node),
                     "repair slice sends to dead node ", to_node);

    const RepairId id = chunk.id;
    edge.sliceStart = cluster_.simulator().now();
    chunk.activeNetFlows += 1;
    chunk.maxActiveNetFlows =
        std::max(chunk.maxActiveNetFlows, chunk.activeNetFlows);
    edge.activeFlow = cluster_.network().startFlow(
        std::move(path), bytes, sim::FlowTag::kRepair,
        sim::FlowLabel{id, edge.from, s}, [this, id, edge_index] {
            onDagSliceDelivered(id, edge_index);
        });
}

void
RepairExecutor::onDagSliceDelivered(RepairId id, int edge_index)
{
    auto it = dagActive_.find(id);
    CHAMELEON_ASSERT(it != dagActive_.end(),
                     "slice delivery for inactive repair ", id);
    DagExec &chunk = it->second;
    DagEdge &edge = chunk.edges[static_cast<std::size_t>(edge_index)];

    const int s = edge.nextSlice;
    const Bytes bytes = dagEdgeSliceBytes(chunk, edge, s);
    const SimTime now = cluster_.simulator().now();
    edge.activeFlow = sim::kInvalidFlow;
    edge.delivered = s + 1;
    edge.nextSlice = s + 1;
    metDagSlices_.add();
    metSlices_.add();
    if (edge.local) {
        metDagLocalSlices_.add();
    } else {
        chunk.activeNetFlows -= 1;
        chunk.netFlowSeconds += now - edge.sliceStart;
        // Task-queue semantics: keep the slots while the next slice
        // is immediately sendable, yield when done or blocked.
        const bool continues =
            edge.nextSlice < edge.slicesTotal &&
            dagReadySlices(chunk, edge.from) > edge.nextSlice;
        if (!continues)
            releaseHeldSlots(edge.holdUp, edge.holdDown);
    }
    // The consuming vertex folds this slice into its partial result
    // (a mulAddRegionMulti's worth of codec work per delivery).
    if (chunk.dag.combinable) {
        metCodecBytes_.add(static_cast<int64_t>(bytes));
        if (!edge.fromLeaf)
            metCombinedSlices_.add();
    }

    // Combinable root: a slice is reconstructed once every root
    // input delivered it; persist slices as the watermark rises.
    const dag::VertexId to = edge.to;
    if (to == chunk.dag.root() && chunk.dag.combinable) {
        int watermark = std::numeric_limits<int>::max();
        for (int ei : chunk.inEdges[static_cast<std::size_t>(to)])
            watermark = std::min(
                watermark,
                chunk.edges[static_cast<std::size_t>(ei)].delivered);
        const Bytes slice = config_.effectiveSliceSize();
        while (chunk.destWatermark < watermark) {
            const int ws = chunk.destWatermark++;
            issueDagDestWrite(
                chunk,
                std::min(slice, config_.chunkSize -
                                    static_cast<double>(ws) * slice));
        }
    }

    // Defer follow-up launches so this callback stays re-entrant
    // safe with respect to the flow network's dispatch loop.
    cluster_.simulator().scheduleAfter(
        0.0, [this, id, edge_index, to] {
            auto lit = dagActive_.find(id);
            if (lit == dagActive_.end())
                return;
            tryLaunchDagEdge(lit->second, edge_index);
            const auto &out =
                lit->second.outEdges[static_cast<std::size_t>(to)];
            for (int oe : out)
                tryLaunchDagEdge(lit->second, oe);
        });

    checkDagChunkDone(id);
}

void
RepairExecutor::issueDagDestWrite(DagExec &chunk, Bytes bytes)
{
    const NodeId dest = chunk.dag.destination();
    CHAMELEON_ASSERT(!cluster_.nodeDown(dest),
                     "destination write on dead node ", dest);
    chunk.writesIssued += 1;
    const RepairId id = chunk.id;
    sim::FlowId flow = cluster_.network().startFlow(
        {cluster_.disk(dest)}, bytes, sim::FlowTag::kRepair,
        [this, id] {
            auto it = dagActive_.find(id);
            CHAMELEON_ASSERT(it != dagActive_.end(),
                             "write completion for inactive repair");
            it->second.writesDone += 1;
            checkDagChunkDone(id);
        });
    // Track the write so a destination crash can invalidate it;
    // completed writes are pruned lazily at the next issue/abort.
    std::erase_if(chunk.destWrites, [this](sim::FlowId f) {
        return !cluster_.network().flowActive(f);
    });
    chunk.destWrites.push_back(flow);
}

void
RepairExecutor::checkDagChunkDone(RepairId id)
{
    auto it = dagActive_.find(id);
    if (it == dagActive_.end())
        return;
    DagExec &chunk = it->second;
    for (const DagEdge &edge : chunk.edges) {
        if (edge.delivered < edge.slicesTotal)
            return;
    }
    // Non-combinable codes reconstruct from sub-chunks after all
    // transfers arrive, then persist the whole chunk.
    if (!chunk.dag.combinable && chunk.writesIssued == 0)
        issueDagDestWrite(chunk, config_.chunkSize);
    if (chunk.writesDone < chunk.writesIssued ||
        chunk.writesIssued == 0)
        return;
    if (chunk.dag.combinable) {
        // Every slice of the reconstructed chunk must have been
        // persisted exactly once via the root watermark.
        CHAMELEON_ASSERT(chunk.destWatermark == chunk.chunkSlices,
                         "repair ", id, " persisted ",
                         chunk.destWatermark, " of ",
                         chunk.chunkSlices, " slices");
    }
    // Verify-after-decode (see checkChunkDone for the deferral
    // rationale).
    if (integrity_.verifyDecoded) {
        const NodeId bad = integrity_.verifyDecoded(chunk.plan);
        if (bad != kInvalidNode) {
            metDecodeRejects_.add();
            cluster_.simulator().scheduleAfter(
                0.0, [this, id, bad] {
                    if (dagActive_.count(id))
                        abortDagChunk(id, bad);
                });
            return;
        }
    }
    ++completedChunks_;
    metChunks_.add();
    metDagChunks_.add();
    metDagPipelineDepth_.observe(
        static_cast<double>(chunk.maxActiveNetFlows));
    const SimTime now = cluster_.simulator().now();
    const SimTime makespan = now - chunk.launchTime;
    if (makespan > 0)
        metDagOccupancy_.observe(chunk.netFlowSeconds / makespan);
    CHAMELEON_TELEM(telemetry::tracer().complete(
        chunk.launchTime, makespan, telemetry::kTrackExecutor,
        "repair", "chunk",
        {{"stripe", chunk.dag.stripe},
         {"chunk", chunk.dag.failedChunk},
         {"dest", chunk.dag.destination()},
         {"sources", chunk.dag.sources().size()},
         {"dag_depth", chunk.dag.depth()},
         {"slices", chunk.chunkSlices},
         {"pipeline_depth", chunk.maxActiveNetFlows},
         {"gf_kernel", gf::kernelName()}}));
    auto plan_copy = chunk.plan;
    auto done = std::move(chunk.onDone);
    dagActive_.erase(it);
    if (done)
        done(plan_copy, now);
}

void
RepairExecutor::abortDagChunk(RepairId id, NodeId cause)
{
    auto it = dagActive_.find(id);
    CHAMELEON_ASSERT(it != dagActive_.end(),
                     "abort of inactive repair ", id);
    DagExec &chunk = it->second;
    auto &net = cluster_.network();
    for (DagEdge &edge : chunk.edges) {
        // kLaunchingFlow edges have a deferred continuation in the
        // event queue; it no-ops once the chunk leaves dagActive_.
        if (edge.activeFlow != sim::kInvalidFlow &&
            edge.activeFlow != kLaunchingFlow)
            net.cancelFlow(edge.activeFlow);
        edge.activeFlow = sim::kInvalidFlow;
        releaseHeldSlots(edge.holdUp, edge.holdDown);
    }
    // Finished writes are a no-op cancel (no solve), so no
    // flowActive pre-filter is needed.
    for (sim::FlowId write : chunk.destWrites)
        net.cancelFlow(write);
    metAborts_.add();
    const SimTime now = cluster_.simulator().now();
    CHAMELEON_TELEM(telemetry::tracer().instant(
        now, telemetry::kTrackFault, "fault", "abort",
        {{"stripe", chunk.dag.stripe},
         {"chunk", chunk.dag.failedChunk},
         {"dest", chunk.dag.destination()},
         {"cause_node", cause}}));
    auto plan_copy = chunk.plan;
    auto on_fail = std::move(chunk.onFail);
    dagActive_.erase(it);
    if (on_fail)
        on_fail(plan_copy, cause, now);
}

} // namespace repair
} // namespace chameleon
