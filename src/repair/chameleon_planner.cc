#include "repair/chameleon_planner.hh"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/logging.hh"

namespace chameleon {
namespace repair {

PlannerState
PlannerState::make(int nodes, Bytes chunk_size)
{
    PlannerState state;
    state.taskUp.assign(static_cast<std::size_t>(nodes), 0);
    state.taskDown.assign(static_cast<std::size_t>(nodes), 0);
    state.bandUp.assign(static_cast<std::size_t>(nodes), 0.0);
    state.bandDown.assign(static_cast<std::size_t>(nodes), 0.0);
    state.chunkSize = chunk_size;
    return state;
}

double
PlannerState::nodeTime(NodeId node) const
{
    auto i = static_cast<std::size_t>(node);
    CHAMELEON_ASSERT(bandUp[i] > 0 && bandDown[i] > 0,
                     "bandwidth estimate missing for node ", node);
    double up = static_cast<double>(taskUp[i]) * chunkSize / bandUp[i];
    double down =
        static_cast<double>(taskDown[i]) * chunkSize / bandDown[i];
    return std::max(up, down);
}

double
PlannerState::nodeServiceTime(NodeId node) const
{
    auto i = static_cast<std::size_t>(node);
    Rate up_rate = i < serviceUp.size() ? serviceUp[i] : bandUp[i];
    Rate down_rate =
        i < serviceDown.size() ? serviceDown[i] : bandDown[i];
    CHAMELEON_ASSERT(up_rate > 0 && down_rate > 0,
                     "service estimate missing for node ", node);
    double up = static_cast<double>(taskUp[i]) * chunkSize / up_rate;
    double down =
        static_cast<double>(taskDown[i]) * chunkSize / down_rate;
    return std::max(up, down);
}

std::vector<int>
establishPaths(const std::vector<int> &downloads, int dest_downloads)
{
    const int k = static_cast<int>(downloads.size());
    CHAMELEON_ASSERT(dest_downloads >= 1,
                     "destination needs at least one download");
    int total = dest_downloads;
    for (int d : downloads) {
        CHAMELEON_ASSERT(d >= 0, "negative download count");
        total += d;
    }
    CHAMELEON_ASSERT(total == k,
                     "task mismatch: ", total, " downloads vs ", k,
                     " uploads");

    std::vector<int> parent(static_cast<std::size_t>(k),
                            kToDestination);
    std::vector<int> down_left = downloads;
    std::vector<bool> up_left(static_cast<std::size_t>(k), true);

    // E: sources whose upload is unpaired and whose downloads are all
    // paired (Line 2 of Algorithm 1).
    std::deque<int> eligible;
    for (int i = 0; i < k; ++i)
        if (down_left[static_cast<std::size_t>(i)] == 0)
            eligible.push_back(i);

    int remaining = k - dest_downloads;
    while (remaining > 0) {
        // N_y: source with the fewest unpaired downloads (> 0).
        int y = -1;
        for (int i = 0; i < k; ++i) {
            if (down_left[static_cast<std::size_t>(i)] > 0 &&
                (y < 0 || down_left[static_cast<std::size_t>(i)] <
                              down_left[static_cast<std::size_t>(y)]))
                y = i;
        }
        CHAMELEON_ASSERT(y >= 0, "bookkeeping error");
        CHAMELEON_ASSERT(!eligible.empty(),
                         "Algorithm 1 invariant violated: E empty");
        int x = eligible.front();
        eligible.pop_front();
        CHAMELEON_ASSERT(x != y, "self-pairing in Algorithm 1");
        parent[static_cast<std::size_t>(x)] = y;
        up_left[static_cast<std::size_t>(x)] = false;
        if (--down_left[static_cast<std::size_t>(y)] == 0)
            eligible.push_back(y);
        --remaining;
    }
    // Remaining uploads pair with the destination's downloads
    // (Lines 12-16); parent defaults to kToDestination already.
    int to_dest = 0;
    for (int i = 0; i < k; ++i)
        to_dest += up_left[static_cast<std::size_t>(i)] ? 1 : 0;
    CHAMELEON_ASSERT(to_dest == dest_downloads,
                     "destination pairing mismatch: ", to_dest,
                     " vs ", dest_downloads);
    return parent;
}

std::optional<PlannedChunk>
planChunk(PlannerState &state, const PlannerChunkInput &input)
{
    if (input.destCandidates.empty())
        return std::nullopt;
    const int k = input.required;
    const auto m = input.helperChunks.size();
    CHAMELEON_ASSERT(k >= 1, "required helper count must be positive");
    CHAMELEON_ASSERT(m == input.helperNodes.size() &&
                     m == input.fractions.size(),
                     "candidate arrays disagree");
    CHAMELEON_ASSERT(static_cast<int>(m) >= k,
                     "not enough helper candidates");
    CHAMELEON_ASSERT(!input.fixedSet || static_cast<int>(m) == k,
                     "fixed set must match required count");
    const Bytes C = state.chunkSize;

    // --- Destination: minimum-time-first on download time.
    NodeId dest = input.destCandidates[0];
    double best = std::numeric_limits<double>::infinity();
    for (NodeId d : input.destCandidates) {
        auto i = static_cast<std::size_t>(d);
        double t = static_cast<double>(state.taskDown[i] + 1) * C /
                   state.bandDown[i];
        if (t < best) {
            best = t;
            dest = d;
        }
    }
    auto dd = static_cast<std::size_t>(dest);
    state.taskDown[dd] += 1;
    int dest_downloads = 1;

    // --- Remaining k-1 download tasks (Section III-A).
    std::vector<int> relay_downloads(m, 0);
    if (input.combinable) {
        for (int t = 1; t < k; ++t) {
            double best_time = std::numeric_limits<double>::infinity();
            int best_cand = -1; // -1 encodes the destination
            {
                double up = static_cast<double>(state.taskUp[dd]) * C /
                            state.bandUp[dd];
                double down =
                    static_cast<double>(state.taskDown[dd] + 1) * C /
                    state.bandDown[dd];
                best_time = std::max(up, down);
            }
            for (std::size_t ci = 0; ci < m; ++ci) {
                auto ni = static_cast<std::size_t>(
                    input.helperNodes[ci]);
                // First download couples an upload task (the relay
                // must forward its partial decode); later ones do not.
                int up_tasks = state.taskUp[ni] +
                               (relay_downloads[ci] == 0 ? 1 : 0);
                double up = static_cast<double>(up_tasks) * C /
                                state.bandUp[ni] +
                            state.relayTaskPenalty;
                double down =
                    static_cast<double>(state.taskDown[ni] + 1) * C /
                    state.bandDown[ni];
                double time = std::max(up, down);
                if (time < best_time) {
                    best_time = time;
                    best_cand = static_cast<int>(ci);
                }
            }
            if (best_cand < 0) {
                state.taskDown[dd] += 1;
                ++dest_downloads;
            } else {
                auto ci = static_cast<std::size_t>(best_cand);
                auto ni = static_cast<std::size_t>(
                    input.helperNodes[ci]);
                if (relay_downloads[ci] == 0)
                    state.taskUp[ni] += 1; // coupled upload
                state.taskDown[ni] += 1;
                relay_downloads[ci] += 1;
            }
        }
    } else {
        // Sub-chunk codes: no relays; everything lands on the
        // destination.
        state.taskDown[dd] += k - 1;
        dest_downloads = k;
    }

    // --- Helper selection: relays are helpers; the rest of the k
    // slots go minimum-time-first on upload time.
    std::vector<int> helper_order; // candidate indices, k entries
    for (std::size_t ci = 0; ci < m; ++ci)
        if (relay_downloads[ci] > 0)
            helper_order.push_back(static_cast<int>(ci));
    if (input.fixedSet) {
        for (std::size_t ci = 0; ci < m; ++ci) {
            if (relay_downloads[ci] == 0) {
                helper_order.push_back(static_cast<int>(ci));
                state.taskUp[static_cast<std::size_t>(
                    input.helperNodes[ci])] += 1;
            }
        }
    } else {
        while (static_cast<int>(helper_order.size()) < k) {
            double best_time =
                std::numeric_limits<double>::infinity();
            int best_cand = -1;
            for (std::size_t ci = 0; ci < m; ++ci) {
                if (relay_downloads[ci] > 0 ||
                    std::find(helper_order.begin(),
                              helper_order.end(),
                              static_cast<int>(ci)) !=
                        helper_order.end())
                    continue;
                auto ni = static_cast<std::size_t>(
                    input.helperNodes[ci]);
                double time =
                    static_cast<double>(state.taskUp[ni] + 1) * C /
                    state.bandUp[ni];
                if (time < best_time) {
                    best_time = time;
                    best_cand = static_cast<int>(ci);
                }
            }
            CHAMELEON_ASSERT(best_cand >= 0, "ran out of candidates");
            helper_order.push_back(best_cand);
            state.taskUp[static_cast<std::size_t>(
                input.helperNodes[static_cast<std::size_t>(
                    best_cand)])] += 1;
        }
    }
    CHAMELEON_ASSERT(static_cast<int>(helper_order.size()) == k,
                     "helper selection miscounted");

    // --- Algorithm 1 over the chunk-local task distribution.
    std::vector<int> downloads(static_cast<std::size_t>(k), 0);
    for (int j = 0; j < k; ++j) {
        downloads[static_cast<std::size_t>(j)] =
            relay_downloads[static_cast<std::size_t>(
                helper_order[static_cast<std::size_t>(j)])];
    }
    std::vector<int> parent = establishPaths(downloads, dest_downloads);

    // --- Assemble the plan.
    PlannedChunk out;
    out.plan.stripe = input.stripe;
    out.plan.failedChunk = input.failed;
    out.plan.destination = dest;
    out.plan.combinable = input.combinable;
    for (int j = 0; j < k; ++j) {
        auto ci = static_cast<std::size_t>(
            helper_order[static_cast<std::size_t>(j)]);
        PlanSource src;
        src.node = input.helperNodes[ci];
        src.chunk = input.helperChunks[ci];
        src.coeff = gf::kOne; // caller fills real coefficients
        src.fraction = input.fractions[ci];
        src.parent = parent[static_cast<std::size_t>(j)];
        out.plan.sources.push_back(src);
    }
    out.plan.validate();

    // --- Estimates and per-edge expectations (honest service rates,
    // so straggler detection does not false-positive when the disk,
    // not the link, paces tasks).
    out.estimatedTime = state.nodeServiceTime(dest);
    for (const auto &src : out.plan.sources)
        out.estimatedTime = std::max(out.estimatedTime,
                                     state.nodeServiceTime(src.node));
    for (int j = 0; j < static_cast<int>(out.plan.sources.size());
         ++j) {
        const auto &src =
            out.plan.sources[static_cast<std::size_t>(j)];
        NodeId tgt = src.parent == kToDestination
                         ? dest
                         : out.plan
                               .sources[static_cast<std::size_t>(
                                   src.parent)]
                               .node;
        double expect = std::max(state.nodeServiceTime(src.node),
                                 state.nodeServiceTime(tgt));
        // A relay's upload pays the combine/turnaround overhead.
        if (!out.plan.childrenOf(j).empty())
            expect += state.relayTaskPenalty;
        out.edgeExpectation.push_back(expect);
    }
    return out;
}

} // namespace repair
} // namespace chameleon
