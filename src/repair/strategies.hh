/**
 * @file
 * Baseline repair strategies: CR (star), PPR (binomial tree), ECPipe
 * (chain), each with the paper's random source/destination selection;
 * plus the RepairBoost-style load-balanced selection wrapper (Exp#6)
 * that balances cumulative repair traffic across nodes while keeping
 * the underlying algorithm's fixed transmission structure.
 */

#ifndef CHAMELEON_REPAIR_STRATEGIES_HH_
#define CHAMELEON_REPAIR_STRATEGIES_HH_

#include <string>
#include <vector>

#include "cluster/stripe_manager.hh"
#include "repair/plan.hh"
#include "util/rng.hh"

namespace chameleon {
namespace repair {

/** Transmission structure of a baseline algorithm. */
enum class Topology {
    kStar,  ///< CR: all sources upload straight to the destination
    kTree,  ///< PPR: binomial aggregation tree
    kChain, ///< ECPipe: pipelined chain
};

/** Human-readable algorithm name ("CR", "PPR", "ECPipe"). */
std::string topologyName(Topology topology);

/**
 * Builds one chunk's plan with random destination and the code's
 * default (random, for RS) helper selection — the paper's baseline
 * configuration.
 *
 * @param reserved  nodes that concurrent repairs of the same stripe
 *                  already claimed as destinations (excluded).
 */
ChunkRepairPlan
makeBaselinePlan(const cluster::StripeManager &stripes,
                 const cluster::FailedChunk &failed, Topology topology,
                 const std::vector<NodeId> &reserved, Rng &rng);

/**
 * RepairBoost-style selection state: cumulative upload/download
 * repair bytes assigned per node. RB schedules multi-chunk repair to
 * balance repair traffic and saturate bandwidth; we reproduce its
 * selection policy (least-loaded destination, least-loaded helpers,
 * load-ordered tree positions) on top of each baseline topology.
 */
class RepairBoostSelector
{
  public:
    explicit RepairBoostSelector(int num_nodes);

    /**
     * Builds a load-balanced plan and accounts its traffic.
     * Falls back to random helpers when the balanced choice cannot
     * repair the chunk (non-MDS corner cases).
     */
    ChunkRepairPlan
    makePlan(const cluster::StripeManager &stripes,
             const cluster::FailedChunk &failed, Topology topology,
             const std::vector<NodeId> &reserved, Rng &rng);

    Bytes assignedUpload(NodeId node) const;
    Bytes assignedDownload(NodeId node) const;

  private:
    std::vector<Bytes> up_;
    std::vector<Bytes> down_;
};

} // namespace repair
} // namespace chameleon

#endif // CHAMELEON_REPAIR_STRATEGIES_HH_
