#include "repair/monitor.hh"

#include <algorithm>
#include <string>

#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace chameleon {
namespace repair {

BandwidthMonitor::BandwidthMonitor(cluster::Cluster &cluster,
                                   SimTime sample_period,
                                   Dimension dimension,
                                   double floor_fraction)
    : cluster_(cluster), period_(sample_period), dimension_(dimension),
      floorFraction_(floor_fraction)
{
    CHAMELEON_ASSERT(sample_period > 0, "sample period must be positive");
    const auto n = static_cast<std::size_t>(cluster_.numNodes());
    // Before the first sample, links look fully idle.
    upResidual_.assign(n, 0.0);
    downResidual_.assign(n, 0.0);
    diskResidual_.assign(n, 0.0);
    for (NodeId node = 0; node < cluster_.numNodes(); ++node) {
        auto i = static_cast<std::size_t>(node);
        upResidual_[i] = cluster_.network().capacity(
            cluster_.uplink(node));
        downResidual_[i] = cluster_.network().capacity(
            cluster_.downlink(node));
        diskResidual_[i] = cluster_.network().capacity(
            cluster_.disk(node));
    }
    lastUpBytes_.assign(n, 0.0);
    lastDownBytes_.assign(n, 0.0);
    lastDiskBytes_.assign(n, 0.0);
}

void
BandwidthMonitor::start()
{
    if (running_)
        return;
    running_ = true;
    // Seed the byte counters at the current instant, then sample
    // periodically.
    auto &net = cluster_.network();
    net.sync();
    for (NodeId node = 0; node < cluster_.numNodes(); ++node) {
        auto i = static_cast<std::size_t>(node);
        lastUpBytes_[i] = net.taggedBytes(cluster_.uplink(node),
                                          sim::FlowTag::kForeground);
        lastDownBytes_[i] = net.taggedBytes(cluster_.downlink(node),
                                            sim::FlowTag::kForeground);
        lastDiskBytes_[i] = net.taggedBytes(cluster_.disk(node),
                                            sim::FlowTag::kForeground);
    }
    cluster_.simulator().scheduleAfter(period_, [this] { sample(); });
}

void
BandwidthMonitor::stop()
{
    running_ = false;
}

void
BandwidthMonitor::setMeasurementNoise(double fraction, uint64_t seed)
{
    CHAMELEON_ASSERT(fraction >= 0.0 && fraction < 1.0,
                     "noise fraction out of range: ", fraction);
    noise_ = fraction;
    noiseRng_ = Rng(seed);
}

Rate
BandwidthMonitor::noisy(Rate used)
{
    if (noise_ == 0.0)
        return used;
    return used * (1.0 + noiseRng_.uniform(-noise_, noise_));
}

void
BandwidthMonitor::sample()
{
    if (!running_)
        return;
    auto &net = cluster_.network();
    net.sync();
    for (NodeId node = 0; node < cluster_.numNodes(); ++node) {
        auto i = static_cast<std::size_t>(node);
        Bytes up = net.taggedBytes(cluster_.uplink(node),
                                   sim::FlowTag::kForeground);
        Bytes down = net.taggedBytes(cluster_.downlink(node),
                                     sim::FlowTag::kForeground);
        Bytes disk = net.taggedBytes(cluster_.disk(node),
                                     sim::FlowTag::kForeground);
        Rate up_cap = net.capacity(cluster_.uplink(node));
        Rate down_cap = net.capacity(cluster_.downlink(node));
        Rate disk_cap = net.capacity(cluster_.disk(node));
        upResidual_[i] = std::max(
            up_cap - noisy((up - lastUpBytes_[i]) / period_),
            floorFraction_ * up_cap);
        downResidual_[i] = std::max(
            down_cap - noisy((down - lastDownBytes_[i]) / period_),
            floorFraction_ * down_cap);
        diskResidual_[i] = std::max(
            disk_cap - noisy((disk - lastDiskBytes_[i]) / period_),
            floorFraction_ * disk_cap);
        lastUpBytes_[i] = up;
        lastDownBytes_[i] = down;
        lastDiskBytes_[i] = disk;
        // Per-node residual traces are for small-cluster figure
        // debugging; at scale-run sizes (thousands of nodes) they
        // would dominate the sample with string/track churn.
        if (cluster_.numNodes() <= 64) {
            CHAMELEON_TELEM(telemetry::tracer().counter(
                cluster_.simulator().now(), telemetry::kTrackMonitor,
                "residual.n" + std::to_string(node),
                {{"up", upResidual_[i]},
                 {"down", downResidual_[i]},
                 {"disk", diskResidual_[i]}}));
        }
    }
    ++samples_;
    telemetry::metrics().counter("monitor.samples").add();
    cluster_.simulator().scheduleAfter(period_, [this] { sample(); });
}

Rate
BandwidthMonitor::residualUplink(NodeId node) const
{
    return upResidual_[static_cast<std::size_t>(node)];
}

Rate
BandwidthMonitor::residualDownlink(NodeId node) const
{
    return downResidual_[static_cast<std::size_t>(node)];
}

Rate
BandwidthMonitor::residualDisk(NodeId node) const
{
    return diskResidual_[static_cast<std::size_t>(node)];
}

Rate
BandwidthMonitor::dispatchUp(NodeId node) const
{
    // Storage dimension: an upload task is a disk read of the whole
    // chunk, so reads are keyed on the disk residual. Download tasks
    // land in memory (relays combine in RAM; the destination writes
    // each chunk once), so their placement stays keyed on the ingest
    // link; the write cost is captured by the service estimates.
    return dimension_ == Dimension::kStorage
               ? residualDisk(node)
               : residualUplink(node);
}

Rate
BandwidthMonitor::dispatchDown(NodeId node) const
{
    // Downloads land in memory in both dimensions (the destination's
    // single reconstructed write is covered by service estimates),
    // so they are always placed by ingest-link residual.
    return residualDownlink(node);
}

Rate
BandwidthMonitor::serviceUp(NodeId node) const
{
    return std::min(residualUplink(node), residualDisk(node));
}

Rate
BandwidthMonitor::serviceDown(NodeId node) const
{
    return std::min(residualDownlink(node), residualDisk(node));
}

} // namespace repair
} // namespace chameleon
