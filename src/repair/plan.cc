#include "repair/plan.hh"

#include <algorithm>
#include <set>

#include "util/logging.hh"

namespace chameleon {
namespace repair {

double
ChunkRepairPlan::trafficChunks() const
{
    // Each source's upload carries one chunk's worth of data (a full
    // chunk or a same-sized partial decode) scaled by its fraction;
    // relays do not add traffic beyond their own upload.
    double total = 0.0;
    for (const auto &src : sources)
        total += src.fraction;
    return total;
}

std::vector<int>
ChunkRepairPlan::childrenOf(int idx) const
{
    std::vector<int> out;
    for (int i = 0; i < static_cast<int>(sources.size()); ++i)
        if (sources[static_cast<std::size_t>(i)].parent == idx)
            out.push_back(i);
    return out;
}

int
ChunkRepairPlan::depth() const
{
    int max_depth = 0;
    for (int i = 0; i < static_cast<int>(sources.size()); ++i) {
        int d = 1;
        int cur = sources[static_cast<std::size_t>(i)].parent;
        while (cur != kToDestination) {
            ++d;
            cur = sources[static_cast<std::size_t>(cur)].parent;
        }
        max_depth = std::max(max_depth, d);
    }
    return max_depth;
}

void
ChunkRepairPlan::validate() const
{
    CHAMELEON_ASSERT(destination != kInvalidNode, "plan lacks destination");
    CHAMELEON_ASSERT(!sources.empty(), "plan has no sources");
    std::set<NodeId> nodes;
    const int n = static_cast<int>(sources.size());
    for (int i = 0; i < n; ++i) {
        const auto &src = sources[static_cast<std::size_t>(i)];
        CHAMELEON_ASSERT(src.node != kInvalidNode, "source lacks node");
        CHAMELEON_ASSERT(src.node != destination,
                         "destination node also a source");
        CHAMELEON_ASSERT(nodes.insert(src.node).second,
                         "node ", src.node, " appears twice in plan");
        CHAMELEON_ASSERT(src.fraction > 0 && src.fraction <= 1.0,
                         "bad fraction ", src.fraction);
        CHAMELEON_ASSERT(src.parent == kToDestination ||
                         (src.parent >= 0 && src.parent < n &&
                          src.parent != i),
                         "bad parent index ", src.parent);
        if (!combinable) {
            CHAMELEON_ASSERT(src.parent == kToDestination,
                             "non-combinable plan must be a star");
        }
    }
    // Cycle check: walk each source to the root.
    for (int i = 0; i < n; ++i) {
        int cur = i;
        int steps = 0;
        while (sources[static_cast<std::size_t>(cur)].parent !=
               kToDestination) {
            cur = sources[static_cast<std::size_t>(cur)].parent;
            CHAMELEON_ASSERT(++steps <= n, "cycle in repair plan");
        }
    }
}

ChunkRepairPlan
buildStarPlan(StripeId stripe, ChunkIndex failed, NodeId destination,
              std::vector<PlanSource> sources, bool combinable)
{
    ChunkRepairPlan plan;
    plan.stripe = stripe;
    plan.failedChunk = failed;
    plan.destination = destination;
    plan.sources = std::move(sources);
    plan.combinable = combinable;
    for (auto &src : plan.sources)
        src.parent = kToDestination;
    plan.validate();
    return plan;
}

ChunkRepairPlan
buildPprPlan(StripeId stripe, ChunkIndex failed, NodeId destination,
             std::vector<PlanSource> sources)
{
    ChunkRepairPlan plan;
    plan.stripe = stripe;
    plan.failedChunk = failed;
    plan.destination = destination;
    plan.sources = std::move(sources);
    plan.combinable = true;

    // Binomial pairing rounds: in each round the remaining
    // aggregators pair (a, b) with a -> b; b stays active. The last
    // active source uploads to the destination (Figure 3(b)).
    std::vector<int> active;
    for (int i = 0; i < static_cast<int>(plan.sources.size()); ++i)
        active.push_back(i);
    while (active.size() > 1) {
        std::vector<int> next;
        for (std::size_t i = 0; i + 1 < active.size(); i += 2) {
            plan.sources[static_cast<std::size_t>(active[i])].parent =
                active[i + 1];
            next.push_back(active[i + 1]);
        }
        if (active.size() % 2 == 1)
            next.push_back(active.back());
        active = std::move(next);
    }
    plan.sources[static_cast<std::size_t>(active[0])].parent =
        kToDestination;
    plan.validate();
    return plan;
}

ChunkRepairPlan
buildChainPlan(StripeId stripe, ChunkIndex failed, NodeId destination,
               std::vector<PlanSource> sources)
{
    ChunkRepairPlan plan;
    plan.stripe = stripe;
    plan.failedChunk = failed;
    plan.destination = destination;
    plan.sources = std::move(sources);
    plan.combinable = true;
    const int n = static_cast<int>(plan.sources.size());
    for (int i = 0; i < n; ++i) {
        plan.sources[static_cast<std::size_t>(i)].parent =
            (i + 1 < n) ? i + 1 : kToDestination;
    }
    plan.validate();
    return plan;
}

ec::Buffer
evaluatePlan(const ChunkRepairPlan &plan,
             const std::vector<ec::Buffer> &stripe_data)
{
    CHAMELEON_ASSERT(plan.combinable,
                     "evaluatePlan handles combinable plans only");
    plan.validate();
    const std::size_t size =
        stripe_data[static_cast<std::size_t>(
            plan.sources[0].chunk)].size();

    // contribution(i) = coeff_i * chunk_i + sum contributions of
    // children — exactly what a relay computes before uploading.
    std::vector<ec::Buffer> contribution(plan.sources.size());
    // Process sources in topological order (leaves first): repeat
    // passes until all are computed (k is small).
    std::vector<bool> ready(plan.sources.size(), false);
    std::size_t computed = 0;
    while (computed < plan.sources.size()) {
        bool progress = false;
        for (std::size_t i = 0; i < plan.sources.size(); ++i) {
            if (ready[i])
                continue;
            auto children = plan.childrenOf(static_cast<int>(i));
            bool deps_ready = std::all_of(
                children.begin(), children.end(),
                [&](int c) { return ready[static_cast<std::size_t>(c)]; });
            if (!deps_ready)
                continue;
            // A relay's whole combination — its own coefficient-scaled
            // chunk plus every child's partial decode — is one fused
            // kernel call (the right-hand side of Equation (1)).
            ec::Buffer buf(size, 0);
            const auto &src = plan.sources[i];
            std::vector<const gf::Elem *> srcs;
            std::vector<gf::Elem> coeffs;
            srcs.reserve(children.size() + 1);
            coeffs.reserve(children.size() + 1);
            srcs.push_back(
                stripe_data[static_cast<std::size_t>(src.chunk)]
                    .data());
            coeffs.push_back(src.coeff);
            for (int c : children) {
                srcs.push_back(
                    contribution[static_cast<std::size_t>(c)].data());
                coeffs.push_back(gf::kOne);
            }
            gf::mulAddRegionMulti(std::span<uint8_t>(buf), srcs,
                                  coeffs);
            contribution[i] = std::move(buf);
            ready[i] = true;
            ++computed;
            progress = true;
        }
        CHAMELEON_ASSERT(progress, "plan evaluation stuck (cycle?)");
    }

    // The destination's own fold is likewise a single fused pass.
    ec::Buffer result(size, 0);
    std::vector<const gf::Elem *> root_srcs;
    for (int i : plan.childrenOf(kToDestination))
        root_srcs.push_back(
            contribution[static_cast<std::size_t>(i)].data());
    std::vector<gf::Elem> root_coeffs(root_srcs.size(), gf::kOne);
    gf::mulAddRegionMulti(std::span<uint8_t>(result), root_srcs,
                          root_coeffs);
    return result;
}

} // namespace repair
} // namespace chameleon
