/**
 * @file
 * Executes repair plans on the simulated cluster at slice
 * granularity.
 *
 * Every source's upload is an "edge" that ships the chunk slice by
 * slice (the paper slices chunks for all algorithms so storage and
 * network I/O pipeline). Slices on one edge are serialized; slices of
 * different edges overlap, which is what gives CR its parallel star,
 * PPR its staged tree, and ECPipe its O(1) pipeline. A relay may send
 * slice s only after every current child delivered slice s (it must
 * fold their contributions into its partially decoded slice).
 *
 * Each node serves a bounded number of concurrent repair upload
 * slices (recovery read streams, tightly limited as in HDFS) and
 * download slices (reader streams at a destination, generous). This
 * mirrors the paper's task model — a node works through its assigned
 * upload tasks roughly in order, which is what the dispatcher's
 * R_i = T * |C| / B estimates assume — while letting a destination
 * ingest from its k sources in parallel.
 *
 * The executor also implements the two straggler-aware re-scheduling
 * primitives of Section III-C:
 *  - pauseChunk/resumeChunk (transmission re-ordering): stop
 *    launching new slices of a chunk; in-flight slices drain.
 *  - retuneEdge (repair re-tuning): redirect a source's remaining
 *    slices from its relay parent to the destination; the relay stops
 *    waiting for it, and correctness is preserved by linearity.
 *
 * Correctness is checked continuously: each payload carries the set
 * of helper contributions it folds in, and the destination asserts
 * that every slice receives each helper's contribution exactly once.
 *
 * Besides parent-array trees, the executor runs explicit EcDag plans
 * (launchDag): the chunk streams through the DAG as S configurable
 * slices (ExecutorConfig::slices), each edge shipping slice s as
 * soon as its tail vertex holds it, so a chain of k hops repairs a
 * chunk in (k + S - 1)/S chunk transfer times instead of k. See
 * dag/dag.hh for the representation and launchDag for the execution
 * semantics.
 */

#ifndef CHAMELEON_REPAIR_EXECUTOR_HH_
#define CHAMELEON_REPAIR_EXECUTOR_HH_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.hh"
#include "dag/dag.hh"
#include "repair/plan.hh"
#include "telemetry/metrics.hh"
#include "util/types.hh"

namespace chameleon {
namespace repair {

/** Handle for a launched chunk repair. */
using RepairId = int64_t;

inline constexpr RepairId kInvalidRepair = -1;

/** Chunk/slice sizing for plan execution. */
struct ExecutorConfig
{
    /** Chunk size (paper default: 64 MB as in HDFS). */
    Bytes chunkSize = 64 * units::MiB;
    /** Slice size (paper default: 1 MB). */
    Bytes sliceSize = 1 * units::MiB;
    /**
     * Concurrent repair upload slices a node serves. Models the
     * bounded recovery read streams of real systems (HDFS throttles
     * reconstruction streams per DataNode); 1 reproduces the strict
     * sequential task queue of the paper's timeslot model.
     */
    int nodeUploadSlots = 2;
    /**
     * Concurrent repair download slices a node accepts. Destinations
     * ingest from many sources in parallel (an HDFS ECWorker opens k
     * reader streams), so this is generous by default.
     */
    int nodeDownloadSlots = 16;
    /**
     * Seconds per MiB a relay needs before forwarding a received
     * slice: GF combination on CPUs shared with the co-located
     * foreground service, plus per-hop receive/send turnaround.
     * This is the cost of transmission dependency that makes
     * chained/tree plans "susceptible to network fluctuations" in
     * the paper's Section II-D analysis; direct (CR-style) transfers
     * never pay it. Expressed per MiB so the model is independent of
     * the configured slice size.
     */
    SimTime relayOverheadPerMiB = 0.010;
    /**
     * Number of slices a chunk splits into for pipelined execution.
     * 0 (the default) derives the count from sliceSize; a positive
     * value overrides it with exactly chunkSize / slices bytes per
     * slice, the knob the pipelining experiments sweep (S = 1 is
     * whole-chunk store-and-forward, large S approaches one slice
     * per hop in flight).
     */
    int slices = 0;

    /** The slice size execution actually uses; see `slices`. */
    Bytes effectiveSliceSize() const
    {
        return slices > 0 ? chunkSize / static_cast<double>(slices)
                          : sliceSize;
    }

    bool operator==(const ExecutorConfig &) const = default;
};

/** Observable state of one edge, consumed by the SAR scheduler. */
struct EdgeStatus
{
    /** Index of the uploading source within the plan. */
    int source = 0;
    /** Current target: source index or kToDestination. */
    int target = kToDestination;
    int slicesTotal = 0;
    int slicesDelivered = 0;
    bool done = false;
    bool retuned = false;
    /** True while a slice of this edge is in flight. */
    bool active = false;
    /** Scheduler-set expected completion time (kTimeNever if unset). */
    SimTime expectation = kTimeNever;
};

/** Slice-level plan executor; see file comment. */
class RepairExecutor
{
  public:
    /** Invoked once when a chunk's repair completes. */
    using ChunkDone =
        std::function<void(const ChunkRepairPlan &, SimTime)>;

    /**
     * Invoked once when a chunk's repair is aborted because a node
     * it depended on crashed (the node id is passed). The chunk's
     * executor state is gone by the time this fires; the scheduler
     * owns re-planning.
     */
    using ChunkFail = std::function<void(const ChunkRepairPlan &,
                                         NodeId, SimTime)>;

    /**
     * Integrity verification hooks (scrub subsystem); any may be
     * null. Both fire in event context; rejections abort the chunk
     * through the same path as a crash, so the session's bounded
     * retry + re-plan machinery applies unchanged.
     */
    struct IntegrityHooks
    {
        /** Verify-on-read: invoked once per helper chunk, when its
         * first slice is about to leave the hosting node (the read
         * runs the checksum kernel in-path). Return false to reject:
         * the repair aborts with the helper's node as the cause. The
         * hook is expected to promote the corrupt helper to lost
         * before returning, so the re-plan excludes it. */
        std::function<bool(StripeId, ChunkIndex, NodeId)>
            verifySource;
        /** Verify-after-decode: invoked when every transfer and
         * destination write has landed, before the repair completes.
         * Return kInvalidNode to accept, or the node of a corrupt
         * source to reject (abort + re-plan). */
        std::function<NodeId(const ChunkRepairPlan &)> verifyDecoded;
    };

    RepairExecutor(cluster::Cluster &cluster, ExecutorConfig config);

    const ExecutorConfig &config() const { return config_; }

    void setIntegrityHooks(IntegrityHooks hooks)
    {
        integrity_ = std::move(hooks);
    }

    cluster::Cluster &cluster() { return cluster_; }

    /** Starts executing `plan`; returns a handle for control calls. */
    RepairId launch(const ChunkRepairPlan &plan, ChunkDone on_done,
                    ChunkFail on_fail = nullptr);

    /**
     * Starts executing an explicit repair DAG (lowered from `plan`
     * by repair::fromTree, or built fresh by a topology override).
     * The chunk streams through the DAG as slices: an edge ships
     * slice s as soon as the vertex it reads from holds slice s, so
     * consecutive slices occupy consecutive hops simultaneously.
     *
     * Edge semantics: a leaf's upload reads the helper chunk from
     * disk in-path and pays no relay overhead; an internal vertex's
     * upload carries a partial decode and pays relayOverheadPerMiB
     * per slice; co-located hops use the local disk (leaf inputs) or
     * an in-memory handoff (internal inputs) and never hold network
     * slots. The executor requires every non-root vertex to feed
     * exactly one consumer so each helper contribution reaches the
     * root exactly once.
     *
     * `plan` is retained as provenance for the completion/failure
     * callbacks and telemetry; it is not re-executed. DAG repairs
     * share the RepairId space and node slot pool with tree repairs
     * but do not support pause/resume/retune.
     */
    RepairId launchDag(const dag::EcDag &dag,
                       const ChunkRepairPlan &plan, ChunkDone on_done,
                       ChunkFail on_fail = nullptr);

    /**
     * Aborts every active chunk whose destination is `node` or with
     * an unfinished edge reading from / sending to `node`: cancels
     * the chunk's network flows (including partially written
     * destination slices — the half-written destination is
     * invalidated, never registered as chunk data), releases its
     * node slots, erases its state, and fires its ChunkFail.
     * Call after the node's metadata says it is dead.
     *
     * @return the number of chunks aborted.
     */
    int abortChunksTouching(NodeId node);

    /**
     * Silently tears down a launched repair the caller no longer
     * wants (hedged degraded reads cancel the losing attempt once
     * the winner lands): cancels its flows, releases its slots, and
     * erases its state WITHOUT firing ChunkFail or counting an
     * abort — the cancellation is a scheduling decision, not a
     * failure. Works for tree and DAG repairs alike.
     *
     * @return false when `id` is not active (already completed,
     *         aborted, or canceled), which callers treat as benign.
     */
    bool cancel(RepairId id);

    bool chunkActive(RepairId id) const;

    /** The plan being executed (valid while active). */
    const ChunkRepairPlan &plan(RepairId id) const;

    /** Per-edge progress snapshot (valid while active). */
    std::vector<EdgeStatus> edgeStatus(RepairId id) const;

    /** Sets the expectation used for straggler detection. */
    void setEdgeExpectation(RepairId id, int source, SimTime when);

    /** Transmission re-ordering: stop launching new slices. */
    void pauseChunk(RepairId id);

    /** Resumes a paused chunk. */
    void resumeChunk(RepairId id);

    bool chunkPaused(RepairId id) const;

    /**
     * Repair re-tuning: redirect source `source`'s remaining slices
     * to the destination. Only valid for edges currently targeting a
     * relay source; no-op if the edge already finished.
     */
    void retuneEdge(RepairId id, int source);

    /** Fraction of the chunk's slices delivered to the destination. */
    double destinationProgress(RepairId id) const;

    /**
     * Number of unfinished, unpaused edges that touch `node` as the
     * uploader or the receive target (used by the re-ordering wakeup
     * check: a postponed chunk resumes once its nodes are otherwise
     * idle).
     */
    int activeEdgesTouching(NodeId node) const;

    /** Total chunks completed since construction. */
    int64_t completedChunks() const { return completedChunks_; }

    /** Total repaired bytes (chunkSize per completed chunk). */
    Bytes repairedBytes() const
    {
        return static_cast<double>(completedChunks_) *
               config_.chunkSize;
    }

  private:
    /** Helper-contribution bitmask; plans have at most 31 sources. */
    using Mask = uint32_t;

    struct Edge
    {
        int source = 0;
        int target = kToDestination;
        int slicesTotal = 0;
        int nextSlice = 0;     // next slice index to launch
        int delivered = 0;     // slices fully delivered so far
        bool retuned = false;
        /** Integrity verify-on-read ran for this edge's source. */
        bool verified = false;
        sim::FlowId activeFlow = sim::kInvalidFlow;
        /** Nodes whose up/down slots the in-flight slice occupies. */
        NodeId holdUp = kInvalidNode;
        NodeId holdDown = kInvalidNode;
        SimTime expectation = kTimeNever;
        /** Payload mask of the slice currently in flight. */
        Mask inFlightMask = 0;
        /** Payload masks of delivered slices (for validation). */
        std::vector<Mask> payload;
    };

    struct ChunkExec
    {
        RepairId id = kInvalidRepair;
        ChunkRepairPlan plan;
        std::vector<Edge> edges; // edges[i] is source i's upload
        /** receivedMask[i][s]: contributions node i holds for slice
         * s (combinable plans only). */
        std::vector<std::vector<Mask>> receivedMask;
        /** destMask[s]: contributions the destination holds. */
        std::vector<Mask> destMask;
        int chunkSlices = 0; // slices of a full chunk
        /** Reconstructed slices persisted to the destination disk.
         * The destination combines contributions in memory and
         * writes each repaired slice exactly once. */
        int writesIssued = 0;
        int writesDone = 0;
        bool paused = false;
        ChunkDone onDone;
        ChunkFail onFail;
        /** In-flight destination disk writes, so a destination
         * crash can cancel the half-written slices. */
        std::vector<sim::FlowId> destWrites;
        /** Telemetry: launch instant for the chunk's repair span. */
        SimTime launchTime = 0.0;
    };

    void tryLaunchEdge(ChunkExec &chunk, int edge_index);
    /** Starts the network flow for an edge's pending slice (after
     * slot acquisition and any relay overhead). */
    void beginSliceFlow(ChunkExec &chunk, int edge_index);
    void onSliceDelivered(RepairId id, int edge_index);
    /** Persists a reconstructed slice at the destination. */
    void issueDestWrite(ChunkExec &chunk, Bytes bytes);
    bool edgeDepsSatisfied(const ChunkExec &chunk,
                           const Edge &edge) const;
    void checkChunkDone(RepairId id);
    Mask ownMask(int source) const { return Mask(1) << source; }

    const ChunkExec &get(RepairId id) const;
    ChunkExec &get(RepairId id);

    /** One DAG edge: ships the from-vertex's result slice by slice
     * to the consuming vertex. */
    struct DagEdge
    {
        dag::VertexId from = dag::kInvalidVertex;
        dag::VertexId to = dag::kInvalidVertex;
        int slicesTotal = 0;
        int nextSlice = 0; // next slice index to launch
        int delivered = 0; // slices fully delivered so far
        /** Same-node hop: local disk read (leaf) or in-memory
         * handoff (internal); holds no network slots. */
        bool local = false;
        /** From-vertex is a leaf: raw chunk read from disk in-path,
         * no relay overhead. */
        bool fromLeaf = false;
        /** Integrity verify-on-read ran for this leaf edge. */
        bool verified = false;
        sim::FlowId activeFlow = sim::kInvalidFlow;
        NodeId holdUp = kInvalidNode;
        NodeId holdDown = kInvalidNode;
        /** Launch instant of the in-flight slice (occupancy). */
        SimTime sliceStart = 0.0;
    };

    /** State of one DAG-executed chunk repair. */
    struct DagExec
    {
        RepairId id = kInvalidRepair;
        dag::EcDag dag;
        /** Provenance plan for callbacks and telemetry. */
        ChunkRepairPlan plan;
        std::vector<DagEdge> edges;
        /** Per-vertex indices into `edges` (to == v / from == v). */
        std::vector<std::vector<int>> inEdges;
        std::vector<std::vector<int>> outEdges;
        int chunkSlices = 0; // slices of a full chunk
        /** Root slices already persisted (combinable DAGs write each
         * reconstructed slice as the min in-edge watermark rises). */
        int destWatermark = 0;
        int writesIssued = 0;
        int writesDone = 0;
        ChunkDone onDone;
        ChunkFail onFail;
        std::vector<sim::FlowId> destWrites;
        SimTime launchTime = 0.0;
        /** Pipeline telemetry: concurrent network slice flows. */
        int activeNetFlows = 0;
        int maxActiveNetFlows = 0;
        /** Total network flow-seconds (occupancy numerator). */
        double netFlowSeconds = 0.0;
    };

    void tryLaunchDagEdge(DagExec &chunk, int edge_index);
    void beginDagSliceFlow(DagExec &chunk, int edge_index);
    void onDagSliceDelivered(RepairId id, int edge_index);
    /** Slices of `v`'s result available to ship right now. */
    int dagReadySlices(const DagExec &chunk, dag::VertexId v) const;
    Bytes dagEdgeSliceBytes(const DagExec &chunk, const DagEdge &edge,
                            int s) const;
    void issueDagDestWrite(DagExec &chunk, Bytes bytes);
    void checkDagChunkDone(RepairId id);
    void abortDagChunk(RepairId id, NodeId cause);

    /** Per-node repair slice slots; see file comment. */
    struct NodeSlots
    {
        int upActive = 0;
        int downActive = 0;
        /** Edges blocked on this node's slots, woken on release. */
        std::vector<std::pair<RepairId, int>> upWaiters;
        std::vector<std::pair<RepairId, int>> downWaiters;
    };

    void wake(std::vector<std::pair<RepairId, int>> &waiters);
    void releaseSlots(Edge &edge);
    /** Shared slot-release for tree and DAG edges. */
    void releaseHeldSlots(NodeId &hold_up, NodeId &hold_down);
    void abortChunk(RepairId id, NodeId cause);

    cluster::Cluster &cluster_;
    ExecutorConfig config_;
    IntegrityHooks integrity_;
    /** Metric handles (see telemetry/metrics.hh). */
    telemetry::Counter &metChunks_;
    telemetry::Counter &metSlices_;
    /** Bytes folded by GF combination at relays/destination — the
     * codec work a real deployment would push through the SIMD
     * region kernels (gf::mulAddRegionMulti). */
    telemetry::Counter &metCodecBytes_;
    /** Delivered slices that carried a partial decode (i.e. the
     * sender was a relay that combined before forwarding). */
    telemetry::Counter &metCombinedSlices_;
    /** Chunk repairs aborted by node crashes. */
    telemetry::Counter &metAborts_;
    /** Integrity-hook rejections: corrupt helper caught at read time
     * vs. a reconstruction rejected after decode. */
    telemetry::Counter &metVerifyRejects_;
    telemetry::Counter &metDecodeRejects_;
    /** DAG-path metrics: chunks, slice deliveries (local = same-node
     * hops), per-chunk peak concurrent network slice flows, and
     * network occupancy (flow-seconds / repair makespan). */
    telemetry::Counter &metDagChunks_;
    telemetry::Counter &metDagSlices_;
    telemetry::Counter &metDagLocalSlices_;
    telemetry::Histogram &metDagPipelineDepth_;
    telemetry::Histogram &metDagOccupancy_;
    std::unordered_map<RepairId, ChunkExec> active_;
    std::unordered_map<RepairId, DagExec> dagActive_;
    std::vector<NodeSlots> slots_;
    RepairId nextId_ = 0;
    int64_t completedChunks_ = 0;
};

} // namespace repair
} // namespace chameleon

#endif // CHAMELEON_REPAIR_EXECUTOR_HH_
