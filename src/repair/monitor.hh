/**
 * @file
 * Periodic residual-bandwidth estimation, the ChameleonEC
 * coordinator's view of the cluster (the paper samples per-link
 * foreground usage with NetHogs and derives idle bandwidth).
 *
 * Every `samplePeriod` seconds the monitor measures the foreground
 * bytes each link (or disk, for ChameleonEC-IO) moved since the last
 * sample and estimates residual capacity = capacity - occupied,
 * floored at a small fraction of capacity. Estimates are stale
 * between samples — exactly the imperfection the straggler-aware
 * re-scheduler exists to absorb.
 */

#ifndef CHAMELEON_REPAIR_MONITOR_HH_
#define CHAMELEON_REPAIR_MONITOR_HH_

#include <vector>

#include "cluster/cluster.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace chameleon {
namespace repair {

/** Residual-bandwidth estimator; see file comment. */
class BandwidthMonitor
{
  public:
    /** Which resource the dispatcher keys on (Section III-D). */
    enum class Dimension {
        kNetwork, ///< uplink/downlink residual (default ChameleonEC)
        kStorage, ///< disk residual (ChameleonEC-IO, Exp#12)
    };

    /**
     * @param sample_period  seconds between usage samples.
     * @param floor_fraction lower bound on estimates as a fraction
     *                       of capacity (a link never looks fully
     *                       dead to the dispatcher).
     */
    BandwidthMonitor(cluster::Cluster &cluster,
                     SimTime sample_period = 5.0,
                     Dimension dimension = Dimension::kNetwork,
                     double floor_fraction = 0.02);

    /** Begins periodic sampling at the current time. */
    void start();

    /** Stops sampling (estimates freeze at their last values). */
    void stop();

    /**
     * Injects multiplicative measurement noise: every sampled usage
     * is scaled by a uniform factor in [1-fraction, 1+fraction]
     * (NetHogs-style samplers misattribute short bursts). With noise
     * f the residual error is bounded by f * capacity on top of the
     * staleness the re-scheduler already absorbs.
     */
    void setMeasurementNoise(double fraction, uint64_t seed);

    double measurementNoise() const { return noise_; }

    Dimension dimension() const { return dimension_; }

    /** Estimated idle uplink bandwidth of `node` (bytes/s). */
    Rate residualUplink(NodeId node) const;

    /** Estimated idle downlink bandwidth of `node` (bytes/s). */
    Rate residualDownlink(NodeId node) const;

    /** Estimated idle disk bandwidth of `node` (bytes/s). */
    Rate residualDisk(NodeId node) const;

    /**
     * The estimate the dispatcher uses for upload tasks: uplink for
     * kNetwork, disk for kStorage.
     */
    Rate dispatchUp(NodeId node) const;

    /** Download-task counterpart of dispatchUp(). */
    Rate dispatchDown(NodeId node) const;

    /**
     * Honest per-task upload service rate: a task is paced by both
     * the link and the disk, so this is the min of the two
     * residuals. Used for admission estimates and straggler
     * expectations, never for dispatch placement.
     */
    Rate serviceUp(NodeId node) const;

    /** Download counterpart of serviceUp(). */
    Rate serviceDown(NodeId node) const;

    /** Number of samples taken so far. */
    int sampleCount() const { return samples_; }

  private:
    void sample();

    /** Applies the configured measurement noise to a usage rate. */
    Rate noisy(Rate used);

    cluster::Cluster &cluster_;
    SimTime period_;
    Dimension dimension_;
    double floorFraction_;
    double noise_ = 0.0;
    Rng noiseRng_{0};
    bool running_ = false;
    int samples_ = 0;
    std::vector<Rate> upResidual_;
    std::vector<Rate> downResidual_;
    std::vector<Rate> diskResidual_;
    std::vector<Bytes> lastUpBytes_;
    std::vector<Bytes> lastDownBytes_;
    std::vector<Bytes> lastDiskBytes_;
};

} // namespace repair
} // namespace chameleon

#endif // CHAMELEON_REPAIR_MONITOR_HH_
