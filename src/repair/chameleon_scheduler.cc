#include "repair/chameleon_scheduler.hh"

#include <algorithm>
#include <cmath>

#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace chameleon {
namespace repair {

ChameleonScheduler::ChameleonScheduler(cluster::StripeManager &stripes,
                                       RepairExecutor &executor,
                                       BandwidthMonitor &monitor,
                                       ChameleonConfig config, Rng rng)
    : stripes_(stripes), executor_(executor), monitor_(monitor),
      config_(config), rng_(rng),
      metPhases_(
          telemetry::metrics().counter("repair.chameleon.phases")),
      metDispatches_(
          telemetry::metrics().counter("repair.chameleon.dispatches")),
      metChecks_(
          telemetry::metrics().counter("repair.chameleon.checks")),
      metStragglers_(telemetry::metrics().counter(
          "repair.chameleon.stragglers")),
      metRetunes_(
          telemetry::metrics().counter("repair.chameleon.retunes")),
      metReorders_(
          telemetry::metrics().counter("repair.chameleon.reorders"))
{
    CHAMELEON_ASSERT(config_.tPhase > 0, "tPhase must be positive");
    CHAMELEON_ASSERT(config_.checkPeriod > 0,
                     "checkPeriod must be positive");
}

void
ChameleonScheduler::start(std::vector<cluster::FailedChunk> pending)
{
    CHAMELEON_ASSERT(!started_, "scheduler already started");
    started_ = true;
    pending_.assign(pending.begin(), pending.end());
    totalChunks_ = static_cast<int>(pending_.size());
    auto &sim = executor_.cluster().simulator();
    startTime_ = sim.now();
    if (pending_.empty()) {
        finishTime_ = startTime_;
        return;
    }
    phaseLoopActive_ = true;
    checkLoopActive_ = true;
    runPhase();
    sim.scheduleAfter(config_.checkPeriod, [this] { progressCheck(); });
}

void
ChameleonScheduler::beginFeed()
{
    CHAMELEON_ASSERT(!started_, "scheduler already started");
    started_ = true;
    totalChunks_ = 0;
    startTime_ = executor_.cluster().simulator().now();
    finishTime_ = startTime_;
}

void
ChameleonScheduler::enqueue(
    const std::vector<cluster::FailedChunk> &chunks)
{
    CHAMELEON_ASSERT(started_, "enqueue before scheduler start");
    if (chunks.empty())
        return;
    for (const auto &fc : chunks) {
        pending_.push_back(fc);
        ++totalChunks_;
    }
    // Same event ordering as start(): the phase begins (and admits)
    // before the progress-check timer is armed.
    if (!phaseLoopActive_) {
        phaseLoopActive_ = true;
        runPhase();
    } else if (phaseState_) {
        admitPending();
    }
    if (!checkLoopActive_) {
        checkLoopActive_ = true;
        executor_.cluster().simulator().scheduleAfter(
            config_.checkPeriod, [this] { progressCheck(); });
    }
}

bool
ChameleonScheduler::finished() const
{
    return started_ &&
           chunksRepaired_ + chunksUnrecoverable() == totalChunks_;
}

Rate
ChameleonScheduler::throughput() const
{
    CHAMELEON_ASSERT(finished(), "repair not finished");
    if (chunksRepaired_ == 0)
        return 0.0;
    SimTime span = finishTime_ - startTime_;
    CHAMELEON_ASSERT(span > 0, "zero-length repair");
    return static_cast<double>(chunksRepaired_) *
           executor_.config().chunkSize / span;
}

std::vector<cluster::FailedChunk>
ChameleonScheduler::orderedPending() const
{
    std::vector<cluster::FailedChunk> out(pending_.begin(),
                                          pending_.end());
    switch (config_.priority) {
      case RepairPriority::kSequential:
        break;
      case RepairPriority::kMostFailedFirst: {
        // Stripes missing more chunks are more exposed to further
        // failures: repair them first.
        std::stable_sort(
            out.begin(), out.end(),
            [&](const cluster::FailedChunk &a,
                const cluster::FailedChunk &b) {
                auto lost = [&](StripeId s) {
                    return stripes_.code().n() -
                           static_cast<int>(
                               stripes_.availableChunks(s).size());
                };
                return lost(a.stripe) > lost(b.stripe);
            });
        break;
      }
      case RepairPriority::kShortestFirst: {
        // Less repair traffic first (proxy for repair time).
        std::stable_sort(
            out.begin(), out.end(),
            [&](const cluster::FailedChunk &a,
                const cluster::FailedChunk &b) {
                auto traffic = [&](const cluster::FailedChunk &fc) {
                    auto avail = stripes_.availableChunks(fc.stripe);
                    return stripes_.code()
                        .helperPool(fc.chunk, avail)
                        .required;
                };
                return traffic(a) < traffic(b);
            });
        break;
      }
    }
    return out;
}

ChameleonScheduler::Admission
ChameleonScheduler::admitChunk(PlannerState &state,
                               const cluster::FailedChunk &chunk,
                               bool force)
{
    auto avail = stripes_.availableChunks(chunk.stripe);
    auto pool = stripes_.code().helperPool(chunk.chunk, avail);
    // Recoverability gate: fewer surviving helpers than the code
    // needs means no plan exists (permanent for MDS stripes).
    if (static_cast<int>(pool.candidates.size()) < pool.required)
        return Admission::kUnrecoverable;

    PlannerChunkInput input;
    input.stripe = chunk.stripe;
    input.failed = chunk.chunk;
    input.required = pool.required;
    input.fixedSet = pool.fixedSet;
    input.combinable = pool.combinable;
    for (ChunkIndex c : pool.candidates) {
        input.helperChunks.push_back(c);
        input.helperNodes.push_back(stripes_.location(chunk.stripe, c));
        input.fractions.push_back(1.0);
    }
    if (!pool.combinable) {
        // Sub-chunk codes carry per-helper fractions; fetch them from
        // a concrete spec.
        auto spec = stripes_.code().specFor(chunk.chunk,
                                            pool.candidates);
        CHAMELEON_ASSERT(spec.has_value(), "fixed-set spec failed");
        for (std::size_t i = 0; i < input.helperChunks.size(); ++i) {
            for (const auto &read : spec->reads) {
                if (read.helper == input.helperChunks[i])
                    input.fractions[i] = read.fraction;
            }
        }
    }
    auto dests = stripes_.candidateDestinations(chunk.stripe);
    const auto &res = reserved_[chunk.stripe];
    for (NodeId d : dests)
        if (!res.count(d))
            input.destCandidates.push_back(d);
    if (input.destCandidates.empty() && res.empty()) {
        // Not even an unreserved cluster has a slot for this stripe:
        // no in-flight completion can free one up.
        return Admission::kUnrecoverable;
    }

    // Snapshot for rollback if the estimate rejects the chunk.
    auto up_snapshot = state.taskUp;
    auto down_snapshot = state.taskDown;

    auto planned = planChunk(state, input);
    if (!planned)
        return Admission::kNoDestination;
    // Admit only if the in-flight work is expected to finish within
    // the remaining phase (completions release budget, see
    // onChunkDone, so early finishes let more chunks in mid-phase).
    const SimTime budget =
        phaseEnd_ - executor_.cluster().simulator().now();
    if (!force && planned->estimatedTime > budget) {
        state.taskUp = std::move(up_snapshot);
        state.taskDown = std::move(down_snapshot);
        return Admission::kNoBudget;
    }

    // Fill decoding coefficients for the chosen helper set.
    ChunkRepairPlan plan = std::move(planned->plan);
    if (plan.combinable) {
        std::vector<ChunkIndex> helpers;
        for (const auto &src : plan.sources)
            helpers.push_back(src.chunk);
        auto spec = stripes_.code().specFor(chunk.chunk, helpers);
        if (!spec) {
            // The bandwidth-chosen helper set cannot repair this
            // pattern (non-MDS corner case): fall back to the code's
            // default helpers in a star.
            state.taskUp = std::move(up_snapshot);
            state.taskDown = std::move(down_snapshot);
            Rng helper_rng = rng_.split();
            auto fspec = stripes_.code().makeRepairSpec(
                chunk.chunk, avail, helper_rng);
            std::vector<PlanSource> sources;
            for (const auto &read : fspec.reads) {
                PlanSource src;
                src.node = stripes_.location(chunk.stripe, read.helper);
                src.chunk = read.helper;
                src.coeff = read.coeff;
                src.fraction = read.fraction;
                sources.push_back(src);
            }
            plan = buildStarPlan(chunk.stripe, chunk.chunk,
                                 plan.destination, std::move(sources),
                                 fspec.combinable);
            planned->edgeExpectation.assign(plan.sources.size(),
                                            config_.tPhase);
        } else {
            for (auto &src : plan.sources) {
                src.coeff = gf::kZero;
                for (const auto &read : spec->reads) {
                    if (read.helper == src.chunk)
                        src.coeff = read.coeff;
                }
            }
        }
    }

    reserved_[chunk.stripe].insert(plan.destination);
    auto &sim = executor_.cluster().simulator();
    SimTime now = sim.now();
    RepairId id = executor_.launch(
        plan,
        [this](const ChunkRepairPlan &p, SimTime t) {
            // The id is recovered through the active set when the
            // callback fires; see onChunkDone.
            onChunkDone(kInvalidRepair, p, t);
        },
        [this](const ChunkRepairPlan &p, NodeId cause, SimTime t) {
            onChunkFailed(p, cause, t);
        });
    activeIds_.insert(id);
    for (std::size_t j = 0; j < plan.sources.size(); ++j) {
        executor_.setEdgeExpectation(
            id, static_cast<int>(j),
            now + planned->edgeExpectation[j] *
                      config_.expectationFactor +
                config_.stragglerSlack);
    }
    metDispatches_.add();
    CHAMELEON_TELEM(telemetry::tracer().instant(
        now, telemetry::kTrackScheduler, "repair", "dispatch",
        {{"stripe", plan.stripe},
         {"chunk", plan.failedChunk},
         {"dest", plan.destination},
         {"sources", plan.sources.size()},
         {"est_s", planned->estimatedTime},
         {"forced", force ? 1 : 0}}));
    return Admission::kAdmitted;
}

void
ChameleonScheduler::runPhase()
{
    if (finished()) {
        // The loop dies here; a later crash restarts it through
        // maybeRestartLoops().
        phaseLoopActive_ = false;
        return;
    }
    ++phasesRun_;
    metPhases_.add();
    auto &sim = executor_.cluster().simulator();
    if (phaseSpanOpen_) {
        CHAMELEON_TELEM(telemetry::tracer().end(
            sim.now(), telemetry::kTrackScheduler));
    }
    CHAMELEON_TELEM(telemetry::tracer().begin(
        sim.now(), telemetry::kTrackScheduler, "repair", "phase",
        {{"index", phasesRun_},
         {"pending", pending_.size()},
         {"active", activeIds_.size()}}));
    phaseSpanOpen_ = true;

    // Postponed tasks restart opportunistically in the next phase.
    for (const auto &[id, resume_at] : pausedIds_) {
        if (executor_.chunkActive(id))
            executor_.resumeChunk(id);
    }
    pausedIds_.clear();

    // Fresh per-phase dispatcher state from the monitor's estimates.
    const int nodes = stripes_.numNodes();
    phaseState_ = std::make_unique<PlannerState>(
        PlannerState::make(nodes, executor_.config().chunkSize));
    phaseState_->serviceUp.resize(static_cast<std::size_t>(nodes));
    phaseState_->serviceDown.resize(static_cast<std::size_t>(nodes));
    for (NodeId n = 0; n < nodes; ++n) {
        phaseState_->bandUp[static_cast<std::size_t>(n)] =
            monitor_.dispatchUp(n);
        phaseState_->bandDown[static_cast<std::size_t>(n)] =
            monitor_.dispatchDown(n);
        phaseState_->serviceUp[static_cast<std::size_t>(n)] =
            monitor_.serviceUp(n);
        phaseState_->serviceDown[static_cast<std::size_t>(n)] =
            monitor_.serviceDown(n);
    }
    const auto &exec_cfg = executor_.config();
    phaseState_->relayTaskPenalty =
        exec_cfg.chunkSize / units::MiB * exec_cfg.relayOverheadPerMiB;
    phaseEnd_ = sim.now() + config_.tPhase;

    // Seed the fresh phase with the tasks still in flight so the new
    // estimates account for carried-over work.
    for (RepairId id : activeIds_) {
        if (!executor_.chunkActive(id))
            continue;
        const auto &plan = executor_.plan(id);
        for (const auto &st : executor_.edgeStatus(id)) {
            if (st.done)
                continue;
            NodeId src = plan.sources[static_cast<std::size_t>(
                                          st.source)]
                             .node;
            NodeId tgt =
                st.target == kToDestination
                    ? plan.destination
                    : plan.sources[static_cast<std::size_t>(st.target)]
                          .node;
            phaseState_->taskUp[static_cast<std::size_t>(src)] += 1;
            phaseState_->taskDown[static_cast<std::size_t>(tgt)] += 1;
        }
    }

    admitPending();
    sim.scheduleAfter(config_.tPhase, [this] { runPhase(); });
}

void
ChameleonScheduler::admitPending()
{
    if (!phaseState_)
        return;
    // The outcome hook can synchronously feed new chunks back in
    // mid-iteration (scanner admission pump); re-entering would
    // double-admit chunks still in the snapshot below. Coalesce
    // nested calls into another full admission round instead.
    if (admitting_) {
        readmit_ = true;
        return;
    }
    admitting_ = true;
    do {
        readmit_ = false;
        // Admission: priority order, estimate-bounded; always make
        // progress when nothing is in flight.
        auto ordered = orderedPending();
        std::set<std::pair<StripeId, ChunkIndex>> departed;
        for (const auto &chunk : ordered) {
            bool force = departed.empty() && activeIds_.empty();
            Admission result = admitChunk(*phaseState_, chunk, force);
            if (result == Admission::kAdmitted) {
                departed.insert({chunk.stripe, chunk.chunk});
            } else if (result == Admission::kUnrecoverable) {
                markUnrecoverable(chunk);
                departed.insert({chunk.stripe, chunk.chunk});
            } else if (result == Admission::kNoBudget) {
                break; // estimate exhausted: stop admitting for now
            }
            // kNoDestination: skip this chunk, try the others.
        }
        for (auto it = pending_.begin(); it != pending_.end();) {
            if (departed.count({it->stripe, it->chunk}))
                it = pending_.erase(it);
            else
                ++it;
        }
        maybeFinish(executor_.cluster().simulator().now());
    } while (readmit_);
    admitting_ = false;
}

void
ChameleonScheduler::progressCheck()
{
    if (finished()) {
        checkLoopActive_ = false;
        return;
    }
    auto &sim = executor_.cluster().simulator();
    const SimTime now = sim.now();
    metChecks_.add();

    // First pass: per-edge progress deltas since the last check, and
    // the cluster-wide median delta of actively transmitting edges.
    // A straggler is an edge past its expectation whose in-flight
    // transmission crawls far below that median: queued edges are
    // just waiting their turn, and uniform slowness is congestion.
    std::map<RepairId, std::vector<int>> deltas;
    std::vector<int> active_deltas;
    for (RepairId id : activeIds_) {
        if (!executor_.chunkActive(id) || executor_.chunkPaused(id))
            continue;
        auto statuses = executor_.edgeStatus(id);
        auto &last = lastDelivered_[id];
        bool fresh = last.empty();
        if (fresh)
            last.assign(statuses.size(), -1);
        auto &dd = deltas[id];
        dd.assign(statuses.size(), -1);
        for (const auto &st : statuses) {
            int prev = last[static_cast<std::size_t>(st.source)];
            last[static_cast<std::size_t>(st.source)] =
                st.slicesDelivered;
            if (prev < 0)
                continue; // first observation
            int delta = st.slicesDelivered - prev;
            dd[static_cast<std::size_t>(st.source)] = delta;
            if (st.active && !st.done)
                active_deltas.push_back(delta);
        }
    }
    std::sort(active_deltas.begin(), active_deltas.end());
    const int median_delta =
        active_deltas.empty()
            ? 0
            : active_deltas[active_deltas.size() / 2];
    // How many chunks would keep the cluster busy if one is
    // postponed; re-ordering only pays off when other work exists.
    int unpaused_active = 0;
    for (RepairId id : activeIds_)
        if (executor_.chunkActive(id) && !executor_.chunkPaused(id))
            ++unpaused_active;

    for (RepairId id : std::vector<RepairId>(activeIds_.begin(),
                                             activeIds_.end())) {
        if (!executor_.chunkActive(id) || executor_.chunkPaused(id))
            continue;
        auto statuses = executor_.edgeStatus(id);
        const auto &dd = deltas[id];
        for (const auto &st : statuses) {
            if (st.done || st.expectation == kTimeNever ||
                now <= st.expectation)
                continue;
            if (!st.active)
                continue; // queued behind other tasks, not straggling
            int delta = dd.empty()
                            ? -1
                            : dd[static_cast<std::size_t>(st.source)];
            if (delta < 0)
                continue; // no baseline yet
            // Crawling: far below the cluster's going rate (which
            // must itself be meaningful — a draining tail with a
            // few slow edges is not a straggler situation).
            if (median_delta < 1 || delta * 8 >= median_delta)
                continue;
            metStragglers_.add();
            CHAMELEON_TELEM(telemetry::tracer().instant(
                now, telemetry::kTrackScheduler, "repair",
                "straggler",
                {{"source",
                  executor_.plan(id).sources[static_cast<std::size_t>(
                                       st.source)]
                      .node},
                 {"stripe", executor_.plan(id).stripe},
                 {"delta", delta},
                 {"median", median_delta}}));
            // A delayed download at a relay source can be re-tuned
            // to the destination (Section III-C, Figure 10(b)).
            if (config_.enableRetuning &&
                st.target != kToDestination && !st.retuned) {
                executor_.retuneEdge(id, st.source);
                executor_.setEdgeExpectation(
                    id, st.source, now + config_.stragglerSlack);
                ++retunes_;
                metRetunes_.add();
                CHAMELEON_TELEM(telemetry::tracer().instant(
                    now, telemetry::kTrackScheduler, "repair",
                    "retune",
                    {{"source",
                      executor_.plan(id).sources[static_cast<std::size_t>(
                                           st.source)]
                          .node},
                     {"stripe", executor_.plan(id).stripe}}));
                continue;
            }
            // Otherwise postpone the chunk's remaining tasks so other
            // chunks' repairs are not dragged down (Figure 10(a)).
            if (config_.enableReordering &&
                !executor_.chunkPaused(id) && unpaused_active > 4) {
                executor_.pauseChunk(id);
                pausedIds_[id] = now + config_.reorderBackoff;
                ++reorders_;
                metReorders_.add();
                CHAMELEON_TELEM(telemetry::tracer().instant(
                    now, telemetry::kTrackScheduler, "repair",
                    "reorder",
                    {{"stripe", executor_.plan(id).stripe},
                     {"backoff_s", config_.reorderBackoff}}));
                break;
            }
        }
    }

    // Wake-up scan: a postponed chunk resumes once its nodes are no
    // longer busy with other repair tasks, or when its backoff
    // expires (opportunistic restart within the phase).
    for (auto it = pausedIds_.begin(); it != pausedIds_.end();) {
        RepairId id = it->first;
        if (!executor_.chunkActive(id)) {
            it = pausedIds_.erase(it);
            continue;
        }
        const auto &plan = executor_.plan(id);
        bool idle = executor_.activeEdgesTouching(plan.destination) == 0;
        for (const auto &src : plan.sources) {
            if (!idle)
                break;
            idle = executor_.activeEdgesTouching(src.node) == 0;
        }
        if (idle || now >= it->second) {
            executor_.resumeChunk(id);
            // Give resumed edges a fresh expectation window.
            auto statuses = executor_.edgeStatus(id);
            for (const auto &st : statuses) {
                if (!st.done)
                    executor_.setEdgeExpectation(
                        id, st.source,
                        now + config_.tPhase);
            }
            it = pausedIds_.erase(it);
        } else {
            ++it;
        }
    }

    sim.scheduleAfter(config_.checkPeriod, [this] { progressCheck(); });
}

void
ChameleonScheduler::releasePlanBudget(const ChunkRepairPlan &plan)
{
    // Release the chunk's task budget so the phase can top up.
    // Re-tuned plans may credit a different node than was debited;
    // clamping keeps the drift harmless until the phase resets.
    if (!phaseState_)
        return;
    auto debit = [](int &count) {
        if (count > 0)
            --count;
    };
    for (const auto &src : plan.sources) {
        debit(phaseState_->taskUp[static_cast<std::size_t>(
            src.node)]);
        NodeId tgt =
            src.parent == kToDestination
                ? plan.destination
                : plan.sources[static_cast<std::size_t>(src.parent)]
                      .node;
        debit(phaseState_->taskDown[static_cast<std::size_t>(tgt)]);
    }
}

void
ChameleonScheduler::sweepInactive()
{
    for (auto iter = activeIds_.begin(); iter != activeIds_.end();) {
        if (!executor_.chunkActive(*iter)) {
            pausedIds_.erase(*iter);
            lastDelivered_.erase(*iter);
            iter = activeIds_.erase(iter);
        } else {
            ++iter;
        }
    }
}

void
ChameleonScheduler::markUnrecoverable(const cluster::FailedChunk &chunk)
{
    unrecoverable_.push_back(chunk);
    CHAMELEON_TELEM(telemetry::tracer().instant(
        executor_.cluster().simulator().now(), telemetry::kTrackFault,
        "fault", "unrecoverable",
        {{"stripe", chunk.stripe}, {"chunk", chunk.chunk}}));
    telemetry::metrics()
        .counter("repair.chameleon.unrecoverable")
        .add();
    if (outcomeHook_)
        outcomeHook_(chunk, false);
}

void
ChameleonScheduler::maybeFinish(SimTime when)
{
    if (!finished())
        return;
    finishTime_ = when;
    if (phaseSpanOpen_) {
        CHAMELEON_TELEM(telemetry::tracer().end(
            when, telemetry::kTrackScheduler));
        phaseSpanOpen_ = false;
    }
    CHAMELEON_TELEM(telemetry::tracer().instant(
        when, telemetry::kTrackScheduler, "repair", "finished",
        {{"chunks", chunksRepaired_},
         {"unrecoverable", chunksUnrecoverable()},
         {"phases", phasesRun_}}));
}

void
ChameleonScheduler::maybeRestartLoops()
{
    if (finished())
        return;
    auto &sim = executor_.cluster().simulator();
    if (!checkLoopActive_) {
        checkLoopActive_ = true;
        sim.scheduleAfter(config_.checkPeriod,
                          [this] { progressCheck(); });
    }
    if (!phaseLoopActive_) {
        phaseLoopActive_ = true;
        // runPhase() builds fresh monitor state, admits, and
        // re-schedules itself.
        runPhase();
    }
}

void
ChameleonScheduler::onChunkDone(RepairId, const ChunkRepairPlan &plan,
                                SimTime when)
{
    ++chunksRepaired_;
    releasePlanBudget(plan);
    stripes_.markRepaired(plan.stripe, plan.failedChunk);
    stripes_.relocate(plan.stripe, plan.failedChunk, plan.destination);
    auto it = reserved_.find(plan.stripe);
    if (it != reserved_.end()) {
        it->second.erase(plan.destination);
        if (it->second.empty())
            reserved_.erase(it);
    }
    sweepInactive();
    // Before the finished() check: the hook may admit queued work
    // (via the scanner pump), which extends the run.
    if (outcomeHook_)
        outcomeHook_({plan.stripe, plan.failedChunk}, true);
    if (finished()) {
        maybeFinish(when);
        return;
    }
    admitPending();
}

void
ChameleonScheduler::onChunkFailed(const ChunkRepairPlan &plan,
                                  NodeId cause, SimTime when)
{
    ++crashReplans_;
    releasePlanBudget(plan);
    auto it = reserved_.find(plan.stripe);
    if (it != reserved_.end()) {
        it->second.erase(plan.destination);
        if (it->second.empty())
            reserved_.erase(it);
    }
    sweepInactive();
    telemetry::metrics()
        .counter("repair.chameleon.crash_replans")
        .add();

    cluster::FailedChunk fc{plan.stripe, plan.failedChunk};
    CHAMELEON_ASSERT(stripes_.chunkLost(fc.stripe, fc.chunk),
                     "aborted chunk is not lost");
    int &attempts = retries_[{fc.stripe, fc.chunk}];
    if (++attempts > config_.maxRetries) {
        markUnrecoverable(fc);
        maybeFinish(when);
        return;
    }
    // Re-queue after a backoff so the burst of aborts from one
    // crash settles before replacement plans pick sources.
    ++retriesInAir_;
    executor_.cluster().simulator().scheduleAfter(
        config_.retryBackoff, [this, fc] {
            --retriesInAir_;
            pending_.push_back(fc);
            maybeRestartLoops();
            if (phaseState_)
                admitPending();
        });
    (void)cause;
}

void
ChameleonScheduler::onNodeCrash(
    NodeId node, const std::vector<cluster::FailedChunk> &newly_lost)
{
    CHAMELEON_ASSERT(started_, "crash before scheduler start");
    // Abort doomed in-flight repairs first; each abort lands in
    // onChunkFailed and schedules its own re-plan.
    executor_.abortChunksTouching(node);
    for (const auto &fc : newly_lost) {
        pending_.push_back(fc);
        ++totalChunks_;
    }
    if (newly_lost.empty() && pending_.empty())
        return;
    maybeRestartLoops();
    if (phaseState_)
        admitPending();
}

} // namespace repair
} // namespace chameleon
