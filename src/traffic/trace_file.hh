/**
 * @file
 * Loading foreground traces from files, so users can replay real
 * workloads (the paper replays YCSB/IBM/Twitter/Facebook traces)
 * instead of the built-in synthetic profiles.
 *
 * Format: text, one request per line,
 *
 *     <op> <key> <bytes>
 *
 * where <op> is R|W (case-insensitive; GET/READ and SET/PUT/UPDATE
 * also accepted), <key> is an unsigned integer (or any token, which
 * is hashed), and <bytes> is the value size. '#' starts a comment;
 * blank lines are ignored. The loader produces an empirical
 * TraceProfile: operation mix and value sizes are bootstrap-resampled
 * from the records, and key popularity follows the records' empirical
 * key frequencies.
 */

#ifndef CHAMELEON_TRAFFIC_TRACE_FILE_HH_
#define CHAMELEON_TRAFFIC_TRACE_FILE_HH_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "traffic/trace_profile.hh"

namespace chameleon {
namespace traffic {

/** One parsed trace request. */
struct TraceRecord
{
    bool isRead = true;
    uint64_t key = 0;
    Bytes bytes = 0;
};

/**
 * Parses records from a stream.
 * Calls CHAMELEON_FATAL on malformed lines (user input error).
 */
std::vector<TraceRecord> parseTrace(std::istream &in);

/** Loads records from a file path (fatal if unreadable). */
std::vector<TraceRecord> loadTraceFile(const std::string &path);

/**
 * Builds an empirical TraceProfile from parsed records: each
 * simulated request resamples (op, key, size) jointly from a random
 * record, preserving the trace's op mix, size distribution, and key
 * skew. Concurrency and burst parameters default to the YCSB
 * profile's and can be adjusted on the result.
 */
TraceProfile profileFromRecords(std::string name,
                                std::vector<TraceRecord> records);

} // namespace traffic
} // namespace chameleon

#endif // CHAMELEON_TRAFFIC_TRACE_FILE_HH_
