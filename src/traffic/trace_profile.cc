#include "traffic/trace_profile.hh"

#include <cmath>
#include <vector>

#include "util/distributions.hh"

namespace chameleon {
namespace traffic {

TraceProfile
ycsbA()
{
    TraceProfile p;
    p.name = "YCSB-A";
    p.readFraction = 0.5;
    p.valueSize = [](Rng &) -> Bytes { return 512.0 * units::KiB; };
    p.keyCount = 1'000'000;
    p.zipfAlpha = 0.99;
    p.workersPerClient = 16;
    p.thinkTimeMean = 0.002;
    p.burstMean = 20.0;
    p.idleMean = 8.0;
    p.batchFactor = 1;
    p.diskFraction = 0.35; // HBase: WAL writes + block-cache misses
    return p;
}

TraceProfile
ibmObjectStore()
{
    TraceProfile p;
    p.name = "IBM-ObjectStore";
    p.readFraction = 0.78;
    // Log-normal spanning 16 B .. 2.4 GB with ~1 MB median: the
    // "significantly varied value sizes" the paper highlights.
    p.valueSize = [sampler = BoundedLogNormalSampler(
                       std::log(1.0 * units::MiB), 2.6, 16.0,
                       2.4e9)](Rng &rng) mutable -> Bytes {
        return sampler.sample(rng);
    };
    p.keyCount = 300'000;
    p.zipfAlpha = 0.9;
    p.workersPerClient = 8;
    p.thinkTimeMean = 0.01;
    p.burstMean = 15.0;
    p.idleMean = 10.0;
    p.batchFactor = 1;
    p.diskFraction = 0.8; // object store: large objects hit disk
    return p;
}

TraceProfile
memcachedCluster37()
{
    TraceProfile p;
    p.name = "Memcached";
    p.readFraction = 0.63;
    // ~20,134 B average values (cluster 37); mild variation.
    p.valueSize = [sampler = BoundedLogNormalSampler(
                       std::log(18'000.0), 0.5, 64.0,
                       1.0 * units::MiB)](Rng &rng) mutable -> Bytes {
        return sampler.sample(rng);
    };
    p.keyCount = 10'000'000;
    p.zipfAlpha = 1.05;
    p.workersPerClient = 24;
    p.thinkTimeMean = 0.001;
    p.burstMean = 12.0;
    p.idleMean = 6.0;
    // One simulated request = 64 cache ops (~1.3 MB batch).
    p.batchFactor = 64;
    p.diskFraction = 0.0; // memcached is an in-memory cache
    return p;
}

TraceProfile
facebookEtc()
{
    TraceProfile p;
    p.name = "Facebook-ETC";
    p.readFraction = 30.0 / 31.0; // GET:UPDATE = 30:1
    // Values: bounded Pareto (Atikoglu et al. report shape ~0.35
    // with a long tail); keys (GEV) are negligible bytes.
    p.valueSize = [sampler = ParetoSampler(0.35, 200.0,
                                           1.0 * units::MiB)](
                      Rng &rng) mutable -> Bytes {
        return sampler.sample(rng);
    };
    p.keyCount = 50'000'000;
    p.zipfAlpha = 1.01;
    p.workersPerClient = 24;
    p.thinkTimeMean = 0.001;
    p.burstMean = 10.0;
    p.idleMean = 8.0;
    // One simulated request = 64 cache ops.
    p.batchFactor = 64;
    p.diskFraction = 0.05; // near-pure memory; rare miss fills
    return p;
}

std::vector<TraceProfile>
allProfiles()
{
    return {ycsbA(), ibmObjectStore(), memcachedCluster37(),
            facebookEtc()};
}

} // namespace traffic
} // namespace chameleon
