#include "traffic/foreground_driver.hh"

#include <algorithm>

#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace chameleon {
namespace traffic {

ForegroundDriver::ForegroundDriver(cluster::Cluster &cluster,
                                   TraceProfile profile, Rng rng,
                                   uint64_t requests_per_client)
    : cluster_(cluster), profile_(std::move(profile)), rng_(rng),
      budgetPerClient_(requests_per_client),
      metRequests_(telemetry::metrics().counter("traffic.requests")),
      metBytes_(telemetry::metrics().counter("traffic.bytes")),
      metLatencyMs_(telemetry::metrics().histogram(
          "traffic.latency_ms",
          {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}))
{
    CHAMELEON_ASSERT(profile_.valueSize != nullptr,
                     "profile lacks a value-size sampler");
    CHAMELEON_ASSERT(cluster_.numClients() > 0,
                     "foreground driver needs client nodes");
    keys_ = std::make_unique<ZipfianSampler>(
        profile_.keyCount, profile_.zipfAlpha > 0 ? profile_.zipfAlpha
                                                  : 0.01,
        /*scramble=*/true);
    for (NodeId n = 0; n < cluster_.numNodes(); ++n)
        aliveNodes_.push_back(n);
    issuedPerClient_.assign(
        static_cast<std::size_t>(cluster_.numClients()), 0);
    for (int c = 0; c < cluster_.numClients(); ++c) {
        for (int w = 0; w < profile_.workersPerClient; ++w) {
            Worker wk;
            wk.client = c;
            wk.rng = rng_.split();
            workers_.push_back(std::move(wk));
        }
    }
}

void
ForegroundDriver::excludeNode(NodeId node)
{
    auto it = std::find(aliveNodes_.begin(), aliveNodes_.end(), node);
    if (it != aliveNodes_.end())
        aliveNodes_.erase(it);
    CHAMELEON_ASSERT(!aliveNodes_.empty(),
                     "all nodes excluded from foreground traffic");
}

void
ForegroundDriver::includeNode(NodeId node)
{
    CHAMELEON_ASSERT(node >= 0 && node < cluster_.numNodes(),
                     "node out of range");
    if (std::find(aliveNodes_.begin(), aliveNodes_.end(), node) !=
        aliveNodes_.end())
        return;
    aliveNodes_.push_back(node);
    // Keep the target set ordered so key->node hashing stays
    // deterministic across exclude/include cycles.
    std::sort(aliveNodes_.begin(), aliveNodes_.end());
}

void
ForegroundDriver::start()
{
    CHAMELEON_ASSERT(!running_, "driver already started");
    running_ = true;
    auto &sim = cluster_.simulator();
    for (std::size_t w = 0; w < workers_.size(); ++w) {
        // Stagger worker start within the first second and begin the
        // first burst immediately.
        workers_[w].burstEnd =
            sim.now() + workers_[w].rng.exponential(profile_.burstMean);
        SimTime jitter = workers_[w].rng.uniform(0.0, 1.0);
        sim.scheduleAfter(jitter, [this, w] { workerLoop(w); });
    }
}

void
ForegroundDriver::stop()
{
    running_ = false;
}

void
ForegroundDriver::switchProfile(TraceProfile profile)
{
    profile_ = std::move(profile);
    CHAMELEON_ASSERT(profile_.valueSize != nullptr,
                     "profile lacks a value-size sampler");
    keys_ = std::make_unique<ZipfianSampler>(
        profile_.keyCount, profile_.zipfAlpha > 0 ? profile_.zipfAlpha
                                                  : 0.01,
        /*scramble=*/true);
    // Worker count stays as constructed; mix, sizes, and skew of all
    // subsequent requests follow the new profile.
}

bool
ForegroundDriver::finished() const
{
    if (budgetPerClient_ == 0)
        return false;
    return completed_ >= budgetPerClient_ *
                             static_cast<uint64_t>(
                                 cluster_.numClients());
}

void
ForegroundDriver::workerLoop(std::size_t worker_index)
{
    if (!running_)
        return;
    Worker &wk = workers_[worker_index];
    auto client = static_cast<std::size_t>(wk.client);
    if (budgetPerClient_ != 0 &&
        issuedPerClient_[client] >= budgetPerClient_)
        return;

    auto &sim = cluster_.simulator();
    if (profile_.idleMean > 0 && sim.now() >= wk.burstEnd) {
        // Burst over: idle, then start the next burst.
        SimTime idle = wk.rng.exponential(profile_.idleMean);
        wk.burstEnd = sim.now() + idle +
                      wk.rng.exponential(profile_.burstMean);
        sim.scheduleAfter(idle,
                          [this, worker_index] {
                              workerLoop(worker_index);
                          });
        return;
    }
    issueRequest(worker_index);
}

void
ForegroundDriver::issueRequest(std::size_t worker_index)
{
    Worker &wk = workers_[worker_index];
    auto client = static_cast<std::size_t>(wk.client);
    ++issuedPerClient_[client];

    uint64_t key = keys_->sample(wk.rng);
    NodeId node = aliveNodes_[key % aliveNodes_.size()];
    bool is_read = wk.rng.chance(profile_.readFraction);
    Bytes bytes = profile_.valueSize(wk.rng) *
                  static_cast<double>(profile_.batchFactor);

    auto path = is_read
                    ? cluster_.clientReadPath(node, wk.client)
                    : cluster_.clientWritePath(wk.client, node);
    // Cache-served requests skip the disk (see diskFraction).
    if (!wk.rng.chance(profile_.diskFraction)) {
        auto disk = cluster_.disk(node);
        path.erase(std::remove(path.begin(), path.end(), disk),
                   path.end());
    }

    auto &sim = cluster_.simulator();
    SimTime start = sim.now();
    cluster_.network().startFlow(
        std::move(path), bytes, sim::FlowTag::kForeground,
        [this, worker_index, start, bytes] {
            auto &lsim = cluster_.simulator();
            const SimTime latency = lsim.now() - start;
            latencies_.record(latency);
            metRequests_.add();
            metBytes_.add(static_cast<int64_t>(bytes));
            metLatencyMs_.observe(latency * 1e3);
            ++completed_;
            completedBytes_ += bytes;
            if (budgetPerClient_ != 0 && finished())
                completionTime_ = lsim.now();
            Worker &lwk = workers_[worker_index];
            SimTime think =
                profile_.thinkTimeMean > 0
                    ? lwk.rng.exponential(profile_.thinkTimeMean)
                    : 0.0;
            lsim.scheduleAfter(think, [this, worker_index] {
                workerLoop(worker_index);
            });
        });
}

} // namespace traffic
} // namespace chameleon
