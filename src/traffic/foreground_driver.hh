/**
 * @file
 * Closed-loop foreground workload driver.
 *
 * Each client instance runs `workersPerClient` workers. A worker
 * loops: draw a key (Zipfian over the profile's key space), map it to
 * an alive storage node, draw the operation type and value size,
 * issue the request as a network flow, record its latency on
 * completion, optionally think, and repeat — interleaved with on-off
 * burst/idle cycles. This matches YCSB's closed-loop client model and
 * produces the fluctuating, skewed per-link foreground bandwidth the
 * paper measures (R1 and R2 of Section II-D).
 *
 * The driver supports a fixed per-client request budget (for trace
 * execution time, Exp#2), open-ended operation until stop() (for
 * repair-centric experiments), and live profile switching (Exp#4).
 */

#ifndef CHAMELEON_TRAFFIC_FOREGROUND_DRIVER_HH_
#define CHAMELEON_TRAFFIC_FOREGROUND_DRIVER_HH_

#include <cstdint>
#include <memory>
#include <optional>

#include "cluster/cluster.hh"
#include "telemetry/metrics.hh"
#include "traffic/trace_profile.hh"
#include "util/distributions.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace chameleon {
namespace traffic {

/** Closed-loop trace replayer; see file comment. */
class ForegroundDriver
{
  public:
    /**
     * @param cluster             the cluster serving requests.
     * @param profile             the trace to replay.
     * @param rng                 seed stream (split per worker).
     * @param requests_per_client simulated requests each client
     *                            executes; 0 means unbounded (run
     *                            until stop()).
     */
    ForegroundDriver(cluster::Cluster &cluster, TraceProfile profile,
                     Rng rng, uint64_t requests_per_client = 0);

    /**
     * Removes a (failed) node from the request target set; requests
     * that would hash there go to the remaining nodes instead.
     */
    void excludeNode(NodeId node);

    /** Returns a rejoined node to the request target set. */
    void includeNode(NodeId node);

    /** Begins issuing requests at the current simulation time. */
    void start();

    /** Stops issuing new requests (in-flight ones complete). */
    void stop();

    /** Swaps the trace profile for all subsequent requests (Exp#4). */
    void switchProfile(TraceProfile profile);

    /** True once every client consumed its budget (bounded mode). */
    bool finished() const;

    /** Time the last budgeted request completed (bounded mode). */
    SimTime completionTime() const { return completionTime_; }

    /** Latency of every completed simulated request (seconds). */
    const LatencyRecorder &latencies() const { return latencies_; }

    /** Total simulated requests completed. */
    uint64_t completedRequests() const { return completed_; }

    /** Total foreground bytes transferred by completed requests. */
    Bytes completedBytes() const { return completedBytes_; }

  private:
    struct Worker
    {
        int client = 0;
        Rng rng{0};
        /** End time of the current burst (on-off traffic model). */
        SimTime burstEnd = 0.0;
    };

    void workerLoop(std::size_t worker_index);
    void issueRequest(std::size_t worker_index);

    cluster::Cluster &cluster_;
    TraceProfile profile_;
    std::unique_ptr<ZipfianSampler> keys_;
    Rng rng_;
    uint64_t budgetPerClient_;
    std::vector<NodeId> aliveNodes_;
    std::vector<Worker> workers_;
    std::vector<uint64_t> issuedPerClient_;
    uint64_t completed_ = 0;
    uint64_t inFlight_ = 0;
    Bytes completedBytes_ = 0.0;
    LatencyRecorder latencies_;
    SimTime completionTime_ = kTimeNever;
    bool running_ = false;
    /** Metric handles (see telemetry/metrics.hh). */
    telemetry::Counter &metRequests_;
    telemetry::Counter &metBytes_;
    telemetry::Histogram &metLatencyMs_;
};

} // namespace traffic
} // namespace chameleon

#endif // CHAMELEON_TRAFFIC_FOREGROUND_DRIVER_HH_
