/**
 * @file
 * Hedged/adaptive degraded reads.
 *
 * A client reading a chunk that lived on a failed node must
 * reconstruct it from helpers — a degraded read. Tail latency of
 * such reads is dominated by the slowest helper, so this manager
 * applies the classic hedged-request policy (Dean & Barroso, "The
 * Tail at Scale") to the repair fan-in:
 *
 *   1. issue the bandwidth-cheapest helper set from the code's
 *      HelperPool (ranked by BandwidthMonitor service estimates);
 *   2. arm a straggler timer at hedgeMultiplier times the estimated
 *      completion time of that attempt;
 *   3. on expiry, identify the laggard helper from the executor's
 *      per-edge progress, and launch a second attempt that avoids it
 *      (different helper set where the code allows one, different
 *      destination always);
 *   4. first attempt to land wins; the loser is canceled through
 *      RepairExecutor::cancel() — a scheduling decision, not a
 *      failure, so no abort metric or failure callback fires.
 *
 * The manager mirrors RepairSession's lifecycle surface (start /
 * onNodeCrash / finished / counters) so the runtime can swap it in
 * as the repair layer for degraded-read experiments; the scenario
 * knobs live under "degraded" (see runtime/scenario.hh).
 */

#ifndef CHAMELEON_TRAFFIC_HEDGED_READ_HH_
#define CHAMELEON_TRAFFIC_HEDGED_READ_HH_

#include <deque>
#include <map>
#include <set>

#include "cluster/stripe_manager.hh"
#include "repair/executor.hh"
#include "repair/monitor.hh"
#include "util/stats.hh"

namespace chameleon {
namespace traffic {

/** Degraded-read policy knobs (scenario key "degraded"). */
struct HedgedReadConfig
{
    /** Route the run's repairs through the hedged-read manager. */
    bool enabled = false;
    /** Arm hedge timers (false = single-attempt baseline, the
     * no-hedge comparison leg). */
    bool hedge = true;
    /** Timer = hedgeMultiplier * estimated attempt completion. */
    double hedgeMultiplier = 1.5;
    /** Floor on the timer, so sub-second estimates do not hedge on
     * scheduling noise. */
    SimTime hedgeMinDelay = 0.5;
    /** Hedged attempts per read on top of the primary. */
    int maxHedges = 1;
    /** Concurrent degraded reads in flight. */
    int maxInFlight = 32;
    /** Crash-abort re-plans per read before giving up. */
    int maxRetries = 5;
    /** Delay before a crash-aborted read is re-issued. */
    SimTime retryBackoff = 1.0;

    bool operator==(const HedgedReadConfig &) const = default;
};

/** Windowed hedged degraded-read runner; see file comment. */
class HedgedReadManager
{
  public:
    HedgedReadManager(cluster::StripeManager &stripes,
                      repair::RepairExecutor &executor,
                      const repair::BandwidthMonitor &monitor,
                      HedgedReadConfig config);

    /** Begins reading `pending` (FIFO order). */
    void start(std::vector<cluster::FailedChunk> pending);

    /**
     * Absorbs a mid-run node crash (same contract as
     * RepairSession::onNodeCrash): aborts attempts touching the dead
     * node and queues the chunks it destroyed.
     */
    void onNodeCrash(NodeId node,
                     const std::vector<cluster::FailedChunk>
                         &newly_lost);

    /** True once every read completed or became unrecoverable. */
    bool finished() const;

    SimTime startTime() const { return startTime_; }
    SimTime finishTime() const { return finishTime_; }

    int chunksRepaired() const { return chunksRepaired_; }
    int chunksUnrecoverable() const
    {
        return static_cast<int>(unrecoverable_.size());
    }
    int crashReplans() const { return crashReplans_; }

    /** Hedged attempts launched / won against their primary. */
    int hedgesIssued() const { return hedgesIssued_; }
    int hedgeWins() const { return hedgeWins_; }

    /** Issue-to-completion latency of every finished read (s). */
    const LatencyRecorder &latencies() const { return latencies_; }

  private:
    /** One launched reconstruction attempt of a read. */
    struct Attempt
    {
        repair::RepairId id = repair::kInvalidRepair;
        NodeId destination = kInvalidNode;
    };

    /** One degraded read, possibly racing two attempts. */
    struct Read
    {
        cluster::FailedChunk chunk;
        Attempt primary;
        Attempt hedge;
        int hedges = 0;
        int retries = 0;
        /** Invalidates in-flight timer callbacks after completion,
         * hedging, or re-planning. */
        uint64_t generation = 0;
        SimTime issued = 0.0;
    };

    using Key = std::pair<StripeId, ChunkIndex>;

    sim::Simulator &simulator() const;
    void pump();
    void issueRead(const cluster::FailedChunk &fc);
    /**
     * Plans and launches one attempt: cheapest helpers by service
     * estimate (skipping `avoid_helper` when the code allows a
     * choice), best-service destination other than `avoid_dest`.
     * Invalid Attempt when no viable plan exists.
     */
    Attempt launchAttempt(const cluster::FailedChunk &fc,
                          NodeId avoid_helper, NodeId avoid_dest);
    /** Estimated completion time (s from now) of `plan`. */
    SimTime estimateCompletion(const repair::ChunkRepairPlan &plan)
        const;
    void armTimer(Read &read, SimTime estimate);
    void onTimer(Key key, uint64_t generation);
    void onAttemptDone(const repair::ChunkRepairPlan &plan,
                       SimTime when);
    void onAttemptFailed(const repair::ChunkRepairPlan &plan,
                         NodeId cause, SimTime when);
    void markUnrecoverable(const cluster::FailedChunk &fc);
    void releaseReservation(StripeId stripe, NodeId destination);
    void requeueDeferred();
    void checkFinished(SimTime when);

    cluster::StripeManager &stripes_;
    repair::RepairExecutor &executor_;
    const repair::BandwidthMonitor &monitor_;
    HedgedReadConfig config_;
    std::deque<cluster::FailedChunk> pending_;
    /** Reads parked because concurrent attempts on the same stripe
     * hold every candidate destination. */
    std::deque<cluster::FailedChunk> deferred_;
    std::map<Key, Read> active_;
    /** Destinations held by in-flight attempts, per stripe — a
     * read's primary and hedge (and concurrent reads of sibling
     * chunks) must land on distinct nodes. */
    std::map<StripeId, std::set<NodeId>> reserved_;
    std::vector<cluster::FailedChunk> unrecoverable_;
    int chunksRepaired_ = 0;
    int totalChunks_ = 0;
    int crashReplans_ = 0;
    int hedgesIssued_ = 0;
    int hedgeWins_ = 0;
    LatencyRecorder latencies_;
    SimTime startTime_ = 0.0;
    SimTime finishTime_ = kTimeNever;
    bool started_ = false;
};

} // namespace traffic
} // namespace chameleon

#endif // CHAMELEON_TRAFFIC_HEDGED_READ_HH_
