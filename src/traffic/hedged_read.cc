#include "traffic/hedged_read.hh"

#include <algorithm>

#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace chameleon {
namespace traffic {

HedgedReadManager::HedgedReadManager(
    cluster::StripeManager &stripes, repair::RepairExecutor &executor,
    const repair::BandwidthMonitor &monitor, HedgedReadConfig config)
    : stripes_(stripes), executor_(executor), monitor_(monitor),
      config_(config)
{
    CHAMELEON_ASSERT(config_.maxInFlight >= 1,
                     "window must be at least 1");
    CHAMELEON_ASSERT(config_.hedgeMultiplier >= 1.0,
                     "hedge multiplier below the estimate itself");
    CHAMELEON_ASSERT(config_.maxHedges >= 0, "negative hedge budget");
    CHAMELEON_ASSERT(config_.maxRetries >= 0, "negative retry budget");
}

sim::Simulator &
HedgedReadManager::simulator() const
{
    return executor_.cluster().simulator();
}

void
HedgedReadManager::start(std::vector<cluster::FailedChunk> pending)
{
    CHAMELEON_ASSERT(!started_, "manager already started");
    started_ = true;
    pending_.assign(pending.begin(), pending.end());
    totalChunks_ = static_cast<int>(pending_.size());
    startTime_ = simulator().now();
    if (pending_.empty()) {
        finishTime_ = startTime_;
        return;
    }
    pump();
}

bool
HedgedReadManager::finished() const
{
    return started_ &&
           chunksRepaired_ + chunksUnrecoverable() == totalChunks_;
}

void
HedgedReadManager::markUnrecoverable(const cluster::FailedChunk &fc)
{
    unrecoverable_.push_back(fc);
    CHAMELEON_TELEM(telemetry::tracer().instant(
        simulator().now(), telemetry::kTrackFault, "fault",
        "unrecoverable",
        {{"stripe", fc.stripe}, {"chunk", fc.chunk}}));
    telemetry::metrics().counter("degraded.unrecoverable").add();
}

void
HedgedReadManager::releaseReservation(StripeId stripe,
                                      NodeId destination)
{
    auto it = reserved_.find(stripe);
    if (it == reserved_.end())
        return;
    it->second.erase(destination);
    if (it->second.empty())
        reserved_.erase(it);
}

void
HedgedReadManager::requeueDeferred()
{
    while (!deferred_.empty()) {
        pending_.push_back(deferred_.front());
        deferred_.pop_front();
    }
}

void
HedgedReadManager::checkFinished(SimTime when)
{
    if (finished())
        finishTime_ = when;
}

void
HedgedReadManager::pump()
{
    while (static_cast<int>(active_.size()) < config_.maxInFlight &&
           !pending_.empty()) {
        cluster::FailedChunk fc = pending_.front();
        pending_.pop_front();
        issueRead(fc);
    }
    checkFinished(simulator().now());
}

void
HedgedReadManager::issueRead(const cluster::FailedChunk &fc)
{
    // Recoverability gate (same as RepairSession): fewer surviving
    // helpers than the code needs means no attempt can exist.
    auto avail = stripes_.availableChunks(fc.stripe);
    auto pool = stripes_.code().helperPool(fc.chunk, avail);
    if (static_cast<int>(pool.candidates.size()) < pool.required) {
        markUnrecoverable(fc);
        return;
    }
    // Destination gate: sibling reads of this stripe may hold every
    // candidate destination; park the read until one completes.
    auto dests = stripes_.candidateDestinations(fc.stripe);
    auto res = reserved_.find(fc.stripe);
    if (res != reserved_.end()) {
        std::erase_if(dests, [&](NodeId d) {
            return res->second.count(d) != 0;
        });
    }
    if (dests.empty()) {
        if (res == reserved_.end())
            markUnrecoverable(fc);
        else
            deferred_.push_back(fc);
        return;
    }

    Key key{fc.stripe, fc.chunk};
    auto [it, inserted] = active_.try_emplace(key);
    CHAMELEON_ASSERT(inserted, "duplicate degraded read for stripe ",
                     fc.stripe, " chunk ", fc.chunk);
    Read &read = it->second;
    read.chunk = fc;
    read.issued = simulator().now();
    read.primary = launchAttempt(fc, kInvalidNode, kInvalidNode);
    if (read.primary.id == repair::kInvalidRepair) {
        active_.erase(it);
        markUnrecoverable(fc);
        return;
    }
    if (config_.hedge && read.hedges < config_.maxHedges)
        armTimer(read,
                 estimateCompletion(executor_.plan(read.primary.id)));
}

HedgedReadManager::Attempt
HedgedReadManager::launchAttempt(const cluster::FailedChunk &fc,
                                 NodeId avoid_helper, NodeId avoid_dest)
{
    auto avail = stripes_.availableChunks(fc.stripe);
    auto pool = stripes_.code().helperPool(fc.chunk, avail);
    if (static_cast<int>(pool.candidates.size()) < pool.required)
        return {};

    // Bandwidth-cheapest helper set: when the code offers a choice,
    // rank candidates by their estimated service rate (stable, so
    // ties resolve by chunk index — deterministic across runs) and
    // take the cheapest `required`. A hedge additionally avoids the
    // primary's laggard node when enough candidates remain.
    std::vector<ChunkIndex> helpers;
    if (pool.fixedSet) {
        helpers = pool.candidates;
    } else {
        auto cands = pool.candidates;
        if (avoid_helper != kInvalidNode) {
            auto filtered = cands;
            std::erase_if(filtered, [&](ChunkIndex c) {
                return stripes_.location(fc.stripe, c) == avoid_helper;
            });
            if (static_cast<int>(filtered.size()) >= pool.required)
                cands = std::move(filtered);
        }
        std::stable_sort(
            cands.begin(), cands.end(),
            [&](ChunkIndex a, ChunkIndex b) {
                return monitor_.serviceUp(
                           stripes_.location(fc.stripe, a)) >
                       monitor_.serviceUp(
                           stripes_.location(fc.stripe, b));
            });
        cands.resize(static_cast<std::size_t>(pool.required));
        std::sort(cands.begin(), cands.end());
        helpers = std::move(cands);
    }
    auto spec = stripes_.code().specFor(fc.chunk, helpers);
    if (!spec)
        spec = stripes_.code().specFor(fc.chunk, pool.candidates);
    if (!spec)
        return {};

    // Destination: best estimated ingest service among candidates
    // not already claimed by a racing attempt.
    auto dests = stripes_.candidateDestinations(fc.stripe);
    auto res = reserved_.find(fc.stripe);
    std::erase_if(dests, [&](NodeId d) {
        return d == avoid_dest ||
               (res != reserved_.end() && res->second.count(d) != 0);
    });
    if (dests.empty())
        return {};
    NodeId dest = dests.front();
    for (NodeId d : dests) {
        if (monitor_.serviceDown(d) > monitor_.serviceDown(dest))
            dest = d;
    }

    std::vector<repair::PlanSource> sources;
    for (const auto &read : spec->reads) {
        repair::PlanSource src;
        src.node = stripes_.location(fc.stripe, read.helper);
        src.chunk = read.helper;
        src.coeff = read.coeff;
        src.fraction = read.fraction;
        sources.push_back(src);
    }
    repair::ChunkRepairPlan plan =
        repair::buildStarPlan(fc.stripe, fc.chunk, dest,
                              std::move(sources), spec->combinable);

    Attempt attempt;
    attempt.destination = dest;
    reserved_[fc.stripe].insert(dest);
    attempt.id = executor_.launch(
        plan,
        [this](const repair::ChunkRepairPlan &p, SimTime t) {
            onAttemptDone(p, t);
        },
        [this](const repair::ChunkRepairPlan &p, NodeId cause,
               SimTime t) { onAttemptFailed(p, cause, t); });
    return attempt;
}

SimTime
HedgedReadManager::estimateCompletion(
    const repair::ChunkRepairPlan &plan) const
{
    const Bytes chunk = executor_.config().chunkSize;
    double total_fraction = 0.0;
    SimTime longest = 0.0;
    for (const auto &src : plan.sources) {
        Rate up = std::max(monitor_.serviceUp(src.node), Rate(1.0));
        longest = std::max(longest, src.fraction * chunk / up);
        total_fraction += src.fraction;
    }
    Rate down =
        std::max(monitor_.serviceDown(plan.destination), Rate(1.0));
    longest = std::max(longest, total_fraction * chunk / down);
    return longest;
}

void
HedgedReadManager::armTimer(Read &read, SimTime estimate)
{
    SimTime delay = std::max(estimate * config_.hedgeMultiplier,
                             config_.hedgeMinDelay);
    Key key{read.chunk.stripe, read.chunk.chunk};
    uint64_t gen = read.generation;
    simulator().scheduleAfter(
        delay, [this, key, gen] { onTimer(key, gen); });
}

void
HedgedReadManager::onTimer(Key key, uint64_t generation)
{
    auto it = active_.find(key);
    if (it == active_.end())
        return;
    Read &read = it->second;
    if (read.generation != generation)
        return;
    if (read.hedges >= config_.maxHedges)
        return;
    if (read.primary.id == repair::kInvalidRepair ||
        !executor_.chunkActive(read.primary.id))
        return;

    // Identify the laggard: the unfinished edge with the smallest
    // delivered fraction. The hedge avoids its node so a straggling
    // helper cannot slow both attempts.
    const auto &plan = executor_.plan(read.primary.id);
    NodeId laggard = kInvalidNode;
    double worst = 2.0;
    for (const auto &edge : executor_.edgeStatus(read.primary.id)) {
        if (edge.done)
            continue;
        double frac =
            edge.slicesTotal > 0
                ? static_cast<double>(edge.slicesDelivered) /
                      edge.slicesTotal
                : 0.0;
        if (frac < worst) {
            worst = frac;
            laggard = plan
                          .sources[static_cast<std::size_t>(
                              edge.source)]
                          .node;
        }
    }

    Attempt hedge = launchAttempt(read.chunk, laggard,
                                  read.primary.destination);
    if (hedge.id == repair::kInvalidRepair)
        return;
    read.hedge = hedge;
    ++read.hedges;
    ++hedgesIssued_;
    telemetry::metrics().counter("degraded.hedges").add();
    CHAMELEON_TELEM(telemetry::tracer().instant(
        simulator().now(), telemetry::kTrackScheduler, "repair",
        "hedge",
        {{"stripe", read.chunk.stripe},
         {"chunk", read.chunk.chunk},
         {"laggard", laggard}}));
    if (read.hedges < config_.maxHedges)
        armTimer(read, estimateCompletion(executor_.plan(hedge.id)));
}

void
HedgedReadManager::onAttemptDone(const repair::ChunkRepairPlan &plan,
                                 SimTime when)
{
    Key key{plan.stripe, plan.failedChunk};
    auto it = active_.find(key);
    CHAMELEON_ASSERT(it != active_.end(),
                     "completion for unknown degraded read");
    Read &read = it->second;
    const bool hedge_won =
        read.hedge.id != repair::kInvalidRepair &&
        plan.destination == read.hedge.destination;
    Attempt &loser = hedge_won ? read.primary : read.hedge;
    if (loser.id != repair::kInvalidRepair) {
        // The race is decided: tear the loser down silently (a
        // scheduling decision, not a failure).
        executor_.cancel(loser.id);
        releaseReservation(plan.stripe, loser.destination);
    }
    releaseReservation(plan.stripe, plan.destination);
    stripes_.markRepaired(plan.stripe, plan.failedChunk);
    stripes_.relocate(plan.stripe, plan.failedChunk, plan.destination);
    ++chunksRepaired_;
    if (hedge_won) {
        ++hedgeWins_;
        telemetry::metrics().counter("degraded.hedge_wins").add();
    }
    latencies_.record(when - read.issued);
    active_.erase(it);
    if (finished()) {
        finishTime_ = when;
        return;
    }
    requeueDeferred();
    pump();
}

void
HedgedReadManager::onAttemptFailed(const repair::ChunkRepairPlan &plan,
                                   NodeId cause, SimTime when)
{
    Key key{plan.stripe, plan.failedChunk};
    auto it = active_.find(key);
    if (it == active_.end())
        return;
    Read &read = it->second;
    Attempt *attempt = nullptr;
    if (read.primary.id != repair::kInvalidRepair &&
        plan.destination == read.primary.destination)
        attempt = &read.primary;
    else if (read.hedge.id != repair::kInvalidRepair &&
             plan.destination == read.hedge.destination)
        attempt = &read.hedge;
    if (attempt == nullptr)
        return;
    releaseReservation(plan.stripe, attempt->destination);
    *attempt = Attempt{};
    // The sibling attempt may still be racing; let it finish the
    // read on its own.
    if (read.primary.id != repair::kInvalidRepair ||
        read.hedge.id != repair::kInvalidRepair)
        return;

    ++crashReplans_;
    telemetry::metrics().counter("degraded.crash_replans").add();
    ++read.generation; // kill stale hedge timers
    ++read.retries;
    if (read.retries > config_.maxRetries) {
        cluster::FailedChunk fc = read.chunk;
        active_.erase(it);
        markUnrecoverable(fc);
        checkFinished(when);
        return;
    }
    // Re-issue after a backoff so the burst of aborts from one crash
    // settles before the replacement attempt picks helpers. The read
    // stays in active_ (window-held) with its original issue time,
    // so its eventual latency includes the crash detour.
    uint64_t gen = read.generation;
    simulator().scheduleAfter(config_.retryBackoff, [this, key, gen] {
        auto entry = active_.find(key);
        if (entry == active_.end() ||
            entry->second.generation != gen)
            return;
        Read &retry = entry->second;
        retry.primary =
            launchAttempt(retry.chunk, kInvalidNode, kInvalidNode);
        if (retry.primary.id == repair::kInvalidRepair) {
            cluster::FailedChunk fc = retry.chunk;
            active_.erase(entry);
            markUnrecoverable(fc);
            checkFinished(simulator().now());
            return;
        }
        if (config_.hedge && retry.hedges < config_.maxHedges)
            armTimer(retry, estimateCompletion(
                                executor_.plan(retry.primary.id)));
    });
    (void)cause;
}

void
HedgedReadManager::onNodeCrash(
    NodeId node, const std::vector<cluster::FailedChunk> &newly_lost)
{
    CHAMELEON_ASSERT(started_, "crash before manager start");
    // Abort doomed in-flight attempts first; each abort lands in
    // onAttemptFailed, which re-plans or lets a surviving sibling
    // attempt race on.
    executor_.abortChunksTouching(node);
    for (const auto &fc : newly_lost) {
        pending_.push_back(fc);
        ++totalChunks_;
    }
    requeueDeferred();
    pump();
}

} // namespace traffic
} // namespace chameleon
