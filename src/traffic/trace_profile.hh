/**
 * @file
 * Synthetic stand-ins for the paper's four foreground traces.
 *
 * We cannot redistribute the real traces (YCSB runs against HBase;
 * the IBM/Twitter/Facebook traces are external datasets), so each
 * profile reproduces the published shape of its trace — operation
 * mix, value-size distribution, and popularity skew — which is all
 * the repair scheduler can observe (foreground traffic is opaque
 * bandwidth to it). Small-value traces carry a batch factor so one
 * simulated request stands for a batch of real requests of equal
 * total bytes, keeping event counts tractable; relative latency
 * comparisons across algorithms are unaffected because the same
 * batching applies to every algorithm.
 *
 * Workers follow an on-off (burst/idle) pattern, which is what makes
 * per-link foreground bandwidth fluctuate across 15 s windows the way
 * Fig. 5 reports (~1.1 Gb/s average swing, up to ~3.6 Gb/s).
 */

#ifndef CHAMELEON_TRAFFIC_TRACE_PROFILE_HH_
#define CHAMELEON_TRAFFIC_TRACE_PROFILE_HH_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/rng.hh"
#include "util/types.hh"

namespace chameleon {
namespace traffic {

/** Parameters describing one foreground trace; see file comment. */
struct TraceProfile
{
    std::string name;
    /** Fraction of operations that are reads (vs updates). */
    double readFraction = 0.5;
    /** Samples one request's value size in bytes. */
    std::function<Bytes(Rng &)> valueSize;
    /** Distinct keys (node placement is hash(key) % nodes). */
    uint64_t keyCount = 1'000'000;
    /** Zipfian skew; 0 selects uniform popularity. */
    double zipfAlpha = 0.99;
    /** Concurrent workers per client instance. */
    int workersPerClient = 16;
    /** Mean think time between a worker's requests (s; 0 = none). */
    double thinkTimeMean = 0.0;
    /** Mean burst duration of a worker's on-off cycle (s). */
    double burstMean = 20.0;
    /** Mean idle duration of a worker's on-off cycle (s). */
    double idleMean = 8.0;
    /** Real requests represented by one simulated request. */
    int batchFactor = 1;
    /**
     * Probability that a request actually touches the node's disk.
     * Cache-backed stores (HBase block cache, memcached) serve most
     * reads from memory; only the cache-miss / write-back fraction
     * competes with repair for disk bandwidth.
     */
    double diskFraction = 0.3;
};

/**
 * YCSB-A on HBase: 50% reads / 50% updates, 512 KB values, Zipfian
 * 0.99 — the paper's default foreground workload.
 */
TraceProfile ycsbA();

/**
 * IBM Object Store trace 000: object sizes spanning 16 B to 2.4 GB
 * (heavy-tailed; modeled log-normal), read-dominated.
 */
TraceProfile ibmObjectStore();

/**
 * Twitter Memcached cluster 37: 63% GET / 37% SET, ~20 KB values.
 */
TraceProfile memcachedCluster37();

/**
 * Facebook ETC: GET:UPDATE = 30:1, Pareto value sizes, GEV key sizes
 * (keys are negligible traffic; the value tail dominates).
 */
TraceProfile facebookEtc();

/** All four profiles in the order the paper's figures list them. */
std::vector<TraceProfile> allProfiles();

} // namespace traffic
} // namespace chameleon

#endif // CHAMELEON_TRAFFIC_TRACE_PROFILE_HH_
