#include "traffic/trace_file.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <memory>
#include <sstream>

#include "util/logging.hh"

namespace chameleon {
namespace traffic {

namespace {

uint64_t
hashToken(const std::string &token)
{
    // FNV-1a: stable key hashing for non-numeric key tokens.
    uint64_t h = 1469598103934665603ull;
    for (char c : token) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

bool
parseOp(std::string op, bool &is_read, int line_no)
{
    std::transform(op.begin(), op.end(), op.begin(), [](char c) {
        return static_cast<char>(std::toupper(
            static_cast<unsigned char>(c)));
    });
    if (op == "R" || op == "READ" || op == "GET") {
        is_read = true;
        return true;
    }
    if (op == "W" || op == "WRITE" || op == "SET" || op == "PUT" ||
        op == "UPDATE") {
        is_read = false;
        return true;
    }
    CHAMELEON_FATAL("trace line ", line_no, ": unknown op '", op,
                    "' (expected R/W/GET/SET/PUT/UPDATE/READ/WRITE)");
    return false;
}

} // namespace

std::vector<TraceRecord>
parseTrace(std::istream &in)
{
    std::vector<TraceRecord> records;
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream fields(line);
        std::string op, key_token;
        double bytes = 0;
        if (!(fields >> op))
            continue; // blank/comment line
        if (!(fields >> key_token >> bytes)) {
            CHAMELEON_FATAL("trace line ", line_no,
                            ": expected '<op> <key> <bytes>', got '",
                            line, "'");
        }
        if (bytes <= 0) {
            CHAMELEON_FATAL("trace line ", line_no,
                            ": non-positive size ", bytes);
        }
        TraceRecord rec;
        parseOp(op, rec.isRead, line_no);
        // Numeric keys are taken literally; anything else is hashed.
        try {
            std::size_t pos = 0;
            rec.key = std::stoull(key_token, &pos);
            if (pos != key_token.size())
                rec.key = hashToken(key_token);
        } catch (...) {
            rec.key = hashToken(key_token);
        }
        rec.bytes = bytes;
        records.push_back(rec);
    }
    return records;
}

std::vector<TraceRecord>
loadTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        CHAMELEON_FATAL("cannot open trace file '", path, "'");
    auto records = parseTrace(in);
    if (records.empty())
        CHAMELEON_FATAL("trace file '", path, "' has no requests");
    return records;
}

TraceProfile
profileFromRecords(std::string name, std::vector<TraceRecord> records)
{
    CHAMELEON_ASSERT(!records.empty(), "empty record set");
    // Start from the YCSB profile's pacing parameters.
    TraceProfile profile = ycsbA();
    profile.name = std::move(name);

    std::size_t reads = 0;
    uint64_t max_key = 0;
    for (const auto &rec : records) {
        reads += rec.isRead ? 1 : 0;
        max_key = std::max(max_key, rec.key);
    }
    profile.readFraction =
        static_cast<double>(reads) /
        static_cast<double>(records.size());
    profile.keyCount = max_key + 1;
    // Empirical popularity is carried by joint resampling below, so
    // the driver's Zipfian key draw is replaced entirely.
    profile.zipfAlpha = 0.01;

    // Joint (op, size) bootstrap: the sampler returns the record's
    // size and the driver's independent op draw follows the measured
    // mix. Records are shared so copying the profile stays cheap.
    auto shared =
        std::make_shared<std::vector<TraceRecord>>(std::move(records));
    profile.valueSize = [shared](Rng &rng) -> Bytes {
        const auto &recs = *shared;
        return recs[rng.below(recs.size())].bytes;
    };
    return profile;
}

} // namespace traffic
} // namespace chameleon
