/**
 * @file
 * Move-only callable wrapper with small-buffer storage.
 *
 * The simulator schedules hundreds of thousands of short-lived
 * callbacks per run; wrapping each in std::function costs a heap
 * allocation (libstdc++ inlines only 16 bytes, less than a typical
 * [this, id, index] capture). SmallFunction stores callables up to
 * `InlineBytes` in place and only falls back to the heap beyond
 * that, so the event queue's hot path allocates nothing.
 *
 * Differences from std::function, all deliberate:
 *  - move-only (the event loop never copies callbacks), so move-only
 *    captures (unique_ptr and friends) work too;
 *  - no target() / target_type() introspection;
 *  - invoking an empty SmallFunction is a logic error guarded by
 *    assert-level checks in the caller, not a thrown exception.
 */

#ifndef CHAMELEON_UTIL_SMALL_FUNCTION_HH_
#define CHAMELEON_UTIL_SMALL_FUNCTION_HH_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace chameleon {
namespace util {

template <typename Signature, std::size_t InlineBytes = 48>
class SmallFunction;

template <typename R, typename... Args, std::size_t InlineBytes>
class SmallFunction<R(Args...), InlineBytes>
{
  public:
    SmallFunction() = default;
    SmallFunction(std::nullptr_t) {}

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, SmallFunction> &&
                  std::is_invocable_r_v<R, D &, Args...>>>
    SmallFunction(F &&f)
    {
        if constexpr (kInline<D>) {
            ::new (storage()) D(std::forward<F>(f));
            ops_ = &kInlineOps<D>;
        } else {
            ::new (storage()) D *(new D(std::forward<F>(f)));
            ops_ = &kHeapOps<D>;
        }
    }

    SmallFunction(SmallFunction &&other) noexcept
    {
        moveFrom(other);
    }

    SmallFunction &operator=(SmallFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    SmallFunction(const SmallFunction &) = delete;
    SmallFunction &operator=(const SmallFunction &) = delete;

    ~SmallFunction() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    R operator()(Args... args)
    {
        return ops_->invoke(storage(), std::forward<Args>(args)...);
    }

    void reset()
    {
        if (ops_) {
            ops_->destroy(storage());
            ops_ = nullptr;
        }
    }

  private:
    struct Ops
    {
        R (*invoke)(void *, Args &&...);
        /** Move-constructs into dst from src, then destroys src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
    };

    template <typename D>
    static constexpr bool kInline =
        sizeof(D) <= InlineBytes &&
        alignof(D) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<D>;

    template <typename D>
    static constexpr Ops kInlineOps = {
        [](void *p, Args &&...args) -> R {
            return (*std::launder(static_cast<D *>(p)))(
                std::forward<Args>(args)...);
        },
        [](void *dst, void *src) {
            D *s = std::launder(static_cast<D *>(src));
            ::new (dst) D(std::move(*s));
            s->~D();
        },
        [](void *p) { std::launder(static_cast<D *>(p))->~D(); },
    };

    template <typename D>
    static constexpr Ops kHeapOps = {
        [](void *p, Args &&...args) -> R {
            return (**std::launder(static_cast<D **>(p)))(
                std::forward<Args>(args)...);
        },
        // The stored pointer is trivially destructible: relocation
        // copies it and destruction deletes the pointee.
        [](void *dst, void *src) {
            ::new (dst) D *(*std::launder(static_cast<D **>(src)));
        },
        [](void *p) { delete *std::launder(static_cast<D **>(p)); },
    };

    void moveFrom(SmallFunction &other) noexcept
    {
        if (other.ops_) {
            other.ops_->relocate(storage(), other.storage());
            ops_ = other.ops_;
            other.ops_ = nullptr;
        }
    }

    void *storage() { return buf_; }

    alignas(std::max_align_t) unsigned char buf_[InlineBytes];
    const Ops *ops_ = nullptr;
};

} // namespace util
} // namespace chameleon

#endif // CHAMELEON_UTIL_SMALL_FUNCTION_HH_
