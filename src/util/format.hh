/**
 * @file
 * Number formatting for serialized specs: the shortest decimal text
 * that parses back to exactly the same double, so spec grammars and
 * scenario JSON stay human-readable ("0.2", not
 * "0.20000000000000001") while round-tripping losslessly.
 */

#ifndef CHAMELEON_UTIL_FORMAT_HH_
#define CHAMELEON_UTIL_FORMAT_HH_

#include <string>

namespace chameleon {

/** Shortest exact decimal representation of `v`; see file comment. */
std::string formatDouble(double v);

} // namespace chameleon

#endif // CHAMELEON_UTIL_FORMAT_HH_
