#include "util/distributions.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace chameleon {

namespace {

/** Generalized harmonic number H_{n,theta} approximated in O(1).
 *
 * For the n used by trace generators (up to tens of millions) the
 * Euler-Maclaurin approximation is accurate to ~1e-8, which is far
 * below the sampling noise of the experiments. */
double
zetaApprox(uint64_t n, double theta)
{
    // Sum the first terms exactly, integrate the tail.
    constexpr uint64_t kExact = 1000;
    double z = 0.0;
    uint64_t head = std::min(n, kExact);
    for (uint64_t i = 1; i <= head; ++i)
        z += std::pow(static_cast<double>(i), -theta);
    if (n > kExact) {
        // Integral of x^-theta from kExact+0.5 to n+0.5.
        double a = static_cast<double>(kExact) + 0.5;
        double b = static_cast<double>(n) + 0.5;
        if (theta == 1.0) {
            z += std::log(b / a);
        } else {
            z += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) /
                 (1.0 - theta);
        }
    }
    return z;
}

/** Fibonacci hash used to scramble Zipfian ranks across the key space. */
uint64_t
scrambleHash(uint64_t x)
{
    // Offset so rank 0 (the hottest item) does not map to key 0 (the
    // murmur finalizer fixes zero).
    x += 0x9E3779B97F4A7C15ull;
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ull;
    x ^= x >> 33;
    return x;
}

} // namespace

ZipfianSampler::ZipfianSampler(uint64_t n, double alpha, bool scramble)
    : n_(n), alpha_(alpha), scramble_(scramble)
{
    CHAMELEON_ASSERT(n >= 1, "Zipfian needs at least one item");
    CHAMELEON_ASSERT(alpha > 0 && alpha < 2, "alpha out of range: ", alpha);
    theta_ = alpha_;
    zetan_ = zetaApprox(n_, theta_);
    zeta2_ = zetaApprox(2, theta_);
    alphaPar_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
}

uint64_t
ZipfianSampler::rawRank(Rng &rng) const
{
    // YCSB's ZipfianGenerator::nextLong.
    double u = rng.uniform();
    double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    double v = eta_ * u - eta_ + 1.0;
    auto rank = static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(v, alphaPar_));
    return std::min(rank, n_ - 1);
}

uint64_t
ZipfianSampler::sample(Rng &rng) const
{
    uint64_t rank = rawRank(rng);
    if (!scramble_)
        return rank;
    return scrambleHash(rank) % n_;
}

ParetoSampler::ParetoSampler(double shape, double lo, double hi)
    : shape_(shape), lo_(lo), hi_(hi)
{
    CHAMELEON_ASSERT(shape > 0, "Pareto shape must be positive");
    CHAMELEON_ASSERT(lo > 0 && hi > lo, "Pareto bounds invalid");
}

double
ParetoSampler::sample(Rng &rng) const
{
    // Inverse-transform of the bounded Pareto CDF.
    double u = rng.uniform();
    double la = std::pow(lo_, shape_);
    double ha = std::pow(hi_, shape_);
    double x = std::pow(-(u * ha - u * la - ha) / (ha * la),
                        -1.0 / shape_);
    return std::clamp(x, lo_, hi_);
}

GevSampler::GevSampler(double mu, double sigma, double xi, double max_value)
    : mu_(mu), sigma_(sigma), xi_(xi), maxValue_(max_value)
{
    CHAMELEON_ASSERT(sigma > 0, "GEV sigma must be positive");
}

double
GevSampler::sample(Rng &rng) const
{
    double u = rng.uniform();
    if (u <= 0.0)
        u = 0x1.0p-53;
    double x;
    if (std::abs(xi_) < 1e-12) {
        x = mu_ - sigma_ * std::log(-std::log(u));
    } else {
        x = mu_ + sigma_ * (std::pow(-std::log(u), -xi_) - 1.0) / xi_;
    }
    return std::clamp(x, 1.0, maxValue_);
}

BoundedLogNormalSampler::BoundedLogNormalSampler(double mu_log,
                                                 double sigma_log,
                                                 double lo, double hi)
    : muLog_(mu_log), sigmaLog_(sigma_log), lo_(lo), hi_(hi)
{
    CHAMELEON_ASSERT(sigma_log > 0, "sigma_log must be positive");
    CHAMELEON_ASSERT(lo > 0 && hi > lo, "log-normal bounds invalid");
}

double
BoundedLogNormalSampler::sample(Rng &rng) const
{
    // Box-Muller; one normal draw per sample is plenty here.
    double u1 = rng.uniform();
    double u2 = rng.uniform();
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * M_PI * u2);
    double x = std::exp(muLog_ + sigmaLog_ * z);
    return std::clamp(x, lo_, hi_);
}

DiscreteSampler::DiscreteSampler(std::vector<double> weights)
{
    CHAMELEON_ASSERT(!weights.empty(), "DiscreteSampler needs weights");
    cdf_.resize(weights.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        CHAMELEON_ASSERT(weights[i] >= 0, "negative weight");
        acc += weights[i];
        cdf_[i] = acc;
    }
    CHAMELEON_ASSERT(acc > 0, "weights sum to zero");
    for (auto &c : cdf_)
        c /= acc;
    cdf_.back() = 1.0;
}

std::size_t
DiscreteSampler::sample(Rng &rng) const
{
    double u = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        --it;
    return static_cast<std::size_t>(it - cdf_.begin());
}

} // namespace chameleon
