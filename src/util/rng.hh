/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component (trace generators, placement, straggler
 * timing) takes an explicit Rng so experiments are reproducible from a
 * single seed and independent components can be given decorrelated
 * streams via split().
 */

#ifndef CHAMELEON_UTIL_RNG_HH_
#define CHAMELEON_UTIL_RNG_HH_

#include <cstdint>

namespace chameleon {

/**
 * xoshiro256** generator seeded through splitmix64.
 *
 * Chosen over std::mt19937_64 for speed and a tiny state that makes
 * split() cheap; statistical quality is more than sufficient for
 * workload synthesis.
 */
class Rng
{
  public:
    /** Seeds the four state words by iterating splitmix64 over seed. */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit output. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n) for n >= 1. */
    uint64_t below(uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t range(int64_t lo, int64_t hi);

    /** Bernoulli trial with success probability p. */
    bool chance(double p);

    /** Exponential variate with the given mean (mean > 0). */
    double exponential(double mean);

    /**
     * Derives an independent generator.
     *
     * The child is seeded from this generator's stream, so distinct
     * calls yield decorrelated children while remaining reproducible.
     */
    Rng split();

  private:
    uint64_t s_[4];
};

} // namespace chameleon

#endif // CHAMELEON_UTIL_RNG_HH_
