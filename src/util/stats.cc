#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace chameleon {

void
LatencyRecorder::record(double value)
{
    samples_.push_back(value);
    cacheValid_ = false;
}

double
LatencyRecorder::mean() const
{
    if (samples_.empty())
        return 0.0;
    double acc = 0.0;
    for (double s : samples_)
        acc += s;
    return acc / static_cast<double>(samples_.size());
}

double
LatencyRecorder::max() const
{
    if (samples_.empty())
        return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

namespace {

/** Nearest-rank percentile of a sorted vector. */
double
sortedPercentile(const std::vector<double> &sorted, double p)
{
    auto n = sorted.size();
    auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(n)));
    if (rank == 0)
        rank = 1;
    return sorted[rank - 1];
}

} // namespace

double
LatencyRecorder::percentile(double p) const
{
    CHAMELEON_ASSERT(p >= 0.0 && p <= 100.0, "percentile ", p);
    if (samples_.empty())
        return 0.0;
    if (!cacheValid_) {
        sortedCache_ = samples_;
        std::sort(sortedCache_.begin(), sortedCache_.end());
        cacheValid_ = true;
    }
    return sortedPercentile(sortedCache_, p);
}

double
LatencyRecorder::percentileFrom(std::size_t from, double p) const
{
    CHAMELEON_ASSERT(p >= 0.0 && p <= 100.0, "percentile ", p);
    if (from >= samples_.size())
        return 0.0;
    std::vector<double> tail(samples_.begin() +
                                 static_cast<std::ptrdiff_t>(from),
                             samples_.end());
    std::sort(tail.begin(), tail.end());
    return sortedPercentile(tail, p);
}

LatencySummary
LatencyRecorder::summaryFrom(std::size_t from) const
{
    LatencySummary s;
    if (from >= samples_.size())
        return s;
    std::vector<double> tail(samples_.begin() +
                                 static_cast<std::ptrdiff_t>(from),
                             samples_.end());
    std::sort(tail.begin(), tail.end());
    s.count = tail.size();
    double acc = 0.0;
    for (double v : tail)
        acc += v;
    s.mean = acc / static_cast<double>(tail.size());
    s.p50 = sortedPercentile(tail, 50.0);
    s.p99 = sortedPercentile(tail, 99.0);
    s.max = tail.back();
    return s;
}

double
LatencyRecorder::meanFrom(std::size_t from) const
{
    if (from >= samples_.size())
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = from; i < samples_.size(); ++i)
        acc += samples_[i];
    return acc / static_cast<double>(samples_.size() - from);
}

WindowedUsage::WindowedUsage(SimTime window)
    : window_(window)
{
    CHAMELEON_ASSERT(window > 0, "window must be positive");
}

void
WindowedUsage::addTransfer(SimTime start, SimTime end, Bytes bytes)
{
    CHAMELEON_ASSERT(end >= start, "transfer interval inverted");
    CHAMELEON_ASSERT(start >= 0, "negative start time");
    if (bytes <= 0)
        return;
    if (end == start) {
        // Instantaneous transfer: attribute to the containing window.
        auto w = static_cast<std::size_t>(start / window_);
        if (buckets_.size() <= w)
            buckets_.resize(w + 1, 0.0);
        buckets_[w] += bytes;
        return;
    }
    const Rate rate = bytes / (end - start);
    auto first = static_cast<std::size_t>(start / window_);
    auto last = static_cast<std::size_t>(end / window_);
    // A transfer ending exactly on a window boundary does not touch
    // the next window.
    if (last > first &&
        end <= static_cast<SimTime>(last) * window_)
        --last;
    if (buckets_.size() <= last)
        buckets_.resize(last + 1, 0.0);
    for (std::size_t w = first; w <= last; ++w) {
        SimTime wlo = static_cast<SimTime>(w) * window_;
        SimTime whi = wlo + window_;
        SimTime overlap = std::min(end, whi) - std::max(start, wlo);
        if (overlap > 0)
            buckets_[w] += rate * overlap;
    }
}

Rate
WindowedUsage::windowRate(std::size_t w) const
{
    CHAMELEON_ASSERT(w < buckets_.size(), "window ", w, " out of range");
    return buckets_[w] / window_;
}

Bytes
WindowedUsage::totalBytes() const
{
    Bytes acc = 0.0;
    for (Bytes b : buckets_)
        acc += b;
    return acc;
}

Rate
WindowedUsage::fluctuation() const
{
    if (buckets_.empty())
        return 0.0;
    Rate lo = windowRate(0), hi = windowRate(0);
    for (std::size_t w = 1; w < buckets_.size(); ++w) {
        Rate r = windowRate(w);
        lo = std::min(lo, r);
        hi = std::max(hi, r);
    }
    return hi - lo;
}

Rate
WindowedUsage::meanRate() const
{
    if (buckets_.empty())
        return 0.0;
    Rate acc = 0.0;
    for (std::size_t w = 0; w < buckets_.size(); ++w)
        acc += windowRate(w);
    return acc / static_cast<double>(buckets_.size());
}

Rate
WindowedUsage::fluctuationBetween(SimTime a, SimTime b) const
{
    CHAMELEON_ASSERT(b >= a && a >= 0, "bad range");
    auto first = static_cast<std::size_t>(a / window_);
    auto last = static_cast<std::size_t>(b / window_);
    if (last > first && b <= static_cast<SimTime>(last) * window_)
        --last;
    Rate lo = 0.0, hi = 0.0;
    bool seen = false;
    for (std::size_t w = first; w <= last; ++w) {
        Rate r = (w < buckets_.size()) ? buckets_[w] / window_ : 0.0;
        if (!seen) {
            lo = hi = r;
            seen = true;
        } else {
            lo = std::min(lo, r);
            hi = std::max(hi, r);
        }
    }
    return seen ? hi - lo : 0.0;
}

Rate
WindowedUsage::meanRateBetween(SimTime a, SimTime b) const
{
    CHAMELEON_ASSERT(b >= a && a >= 0, "bad range");
    auto first = static_cast<std::size_t>(a / window_);
    auto last = static_cast<std::size_t>(b / window_);
    if (last > first && b <= static_cast<SimTime>(last) * window_)
        --last;
    Rate acc = 0.0;
    std::size_t count = 0;
    for (std::size_t w = first; w <= last; ++w) {
        acc += (w < buckets_.size()) ? buckets_[w] / window_ : 0.0;
        ++count;
    }
    return count ? acc / static_cast<double>(count) : 0.0;
}

void
Summary::add(double v)
{
    if (count == 0) {
        min = max = v;
        mean = v;
    } else {
        min = std::min(min, v);
        max = std::max(max, v);
        mean += (v - mean) / static_cast<double>(count + 1);
    }
    ++count;
}

} // namespace chameleon
