#include "util/format.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace chameleon {

std::string
formatDouble(double v)
{
    if (!std::isfinite(v))
        return v > 0 ? "inf" : (v < 0 ? "-inf" : "nan");
    char buf[40];
    // Integral values print without an exponent or fraction.
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    // Shortest precision that survives a parse round-trip.
    for (int prec = 6; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

} // namespace chameleon
