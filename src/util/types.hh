/**
 * @file
 * Fundamental scalar types and unit helpers shared by every module.
 *
 * The simulator works in SI base units throughout: seconds for time and
 * bytes (or bytes/second) for data. Helper literals convert the units
 * that the paper quotes (MB chunks, Gb/s links) into base units at the
 * call site, so magic numbers never appear in module code.
 */

#ifndef CHAMELEON_UTIL_TYPES_HH_
#define CHAMELEON_UTIL_TYPES_HH_

#include <cstdint>
#include <limits>

namespace chameleon {

/** Simulated wall-clock time in seconds. */
using SimTime = double;

/** Data volume in bytes (fractional values arise from fluid flows). */
using Bytes = double;

/** Transfer or processing rate in bytes per second. */
using Rate = double;

/** Identifier of a storage node within a cluster (0-based). */
using NodeId = int32_t;

/** Identifier of a stripe within the stripe manager (0-based). */
using StripeId = int32_t;

/** Index of a chunk within its stripe (0 .. k+m-1 for RS codes). */
using ChunkIndex = int32_t;

/** Sentinel for "no node". */
inline constexpr NodeId kInvalidNode = -1;

/** Sentinel time meaning "never" / "not scheduled". */
inline constexpr SimTime kTimeNever =
    std::numeric_limits<SimTime>::infinity();

namespace units {

/** Kibibyte-free decimal units; storage papers quote MB = 2^20 here
 * because HDFS chunk sizes are power-of-two (64 MB = 67108864 B). */
inline constexpr Bytes KiB = 1024.0;
inline constexpr Bytes MiB = 1024.0 * KiB;
inline constexpr Bytes GiB = 1024.0 * MiB;

/** Network bandwidth units (decimal, as NIC specs are quoted). */
inline constexpr Rate bitsPerSec(double bits) { return bits / 8.0; }
inline constexpr Rate Gbps = 1e9 / 8.0;
inline constexpr Rate Mbps = 1e6 / 8.0;

/** Disk bandwidth is typically quoted in decimal MB/s. */
inline constexpr Rate MBps = 1e6;

} // namespace units

} // namespace chameleon

#endif // CHAMELEON_UTIL_TYPES_HH_
