/**
 * @file
 * Samplers for the distributions the paper's trace profiles rely on.
 *
 * - Zipfian key popularity (YCSB's scrambled-Zipfian, alpha = 0.99).
 * - Pareto value sizes (Facebook ETC values, Atikoglu et al. 2012).
 * - Generalized extreme value key sizes (Facebook ETC keys).
 * - Log-normal heavy-tailed value sizes (IBM Object Store's 16 B-2.4 GB
 *   spread is matched with a bounded log-normal).
 */

#ifndef CHAMELEON_UTIL_DISTRIBUTIONS_HH_
#define CHAMELEON_UTIL_DISTRIBUTIONS_HH_

#include <cstdint>
#include <vector>

#include "util/rng.hh"

namespace chameleon {

/**
 * Zipfian sampler over {0, ..., n-1} using Gray's rejection-inversion.
 *
 * Matches YCSB's generator: rank r is drawn with probability
 * proportional to 1 / (r+1)^alpha. Sampling is O(1) after O(1) setup,
 * so million-request traces are cheap. An optional scramble hashes the
 * rank so that popular keys are spread across the key space (and hence
 * across storage nodes), as YCSB's ScrambledZipfian does.
 */
class ZipfianSampler
{
  public:
    ZipfianSampler(uint64_t n, double alpha = 0.99, bool scramble = true);

    /** Draws a key in [0, n). */
    uint64_t sample(Rng &rng) const;

    uint64_t n() const { return n_; }
    double alpha() const { return alpha_; }

  private:
    uint64_t rawRank(Rng &rng) const;

    uint64_t n_;
    double alpha_;
    bool scramble_;
    double zetan_;
    double theta_;
    double zeta2_;
    double alphaPar_;
    double eta_;
};

/**
 * Bounded Pareto sampler (type I), inclusive bounds [lo, hi].
 *
 * Used for ETC value sizes; shape ~0.35 plus the bound reproduces the
 * mix of tiny values with a long tail reported by Atikoglu et al.
 */
class ParetoSampler
{
  public:
    ParetoSampler(double shape, double lo, double hi);

    double sample(Rng &rng) const;

  private:
    double shape_;
    double lo_;
    double hi_;
};

/**
 * Generalized extreme value sampler via inverse transform.
 *
 * Facebook's ETC key sizes follow GEV(mu = 30.7, sigma = 8.2,
 * xi = 0.078); results are clamped to [1, maxValue].
 */
class GevSampler
{
  public:
    GevSampler(double mu, double sigma, double xi, double max_value);

    double sample(Rng &rng) const;

  private:
    double mu_;
    double sigma_;
    double xi_;
    double maxValue_;
};

/**
 * Log-normal sampler with hard bounds, for heavy-tailed object sizes.
 */
class BoundedLogNormalSampler
{
  public:
    BoundedLogNormalSampler(double mu_log, double sigma_log,
                            double lo, double hi);

    double sample(Rng &rng) const;

  private:
    double muLog_;
    double sigmaLog_;
    double lo_;
    double hi_;
};

/**
 * Discrete sampler over explicit weights (linear setup, O(1) memory
 * beyond the CDF, O(log n) sampling).
 */
class DiscreteSampler
{
  public:
    explicit DiscreteSampler(std::vector<double> weights);

    std::size_t sample(Rng &rng) const;

  private:
    std::vector<double> cdf_;
};

} // namespace chameleon

#endif // CHAMELEON_UTIL_DISTRIBUTIONS_HH_
