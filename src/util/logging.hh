/**
 * @file
 * Error-reporting helpers in the gem5 style.
 *
 * panic()  — an internal invariant was violated (a bug in this library);
 *            aborts so a debugger/core dump captures the state.
 * fatal()  — the caller supplied an impossible configuration; exits(1).
 * warn()   — something suspicious but survivable happened.
 * inform() — status output for long-running drivers.
 */

#ifndef CHAMELEON_UTIL_LOGGING_HH_
#define CHAMELEON_UTIL_LOGGING_HH_

#include <functional>
#include <sstream>
#include <string>

namespace chameleon {

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/**
 * Registers a hook that runs right before panic()/fatal() terminate
 * the process — the telemetry layer uses it to flush partial traces
 * so a crashed run still leaves evidence. The hook must not panic;
 * a re-entrant panic skips it and aborts directly.
 */
void setPanicHook(std::function<void()> hook);
void warnImpl(const char *file, int line, const std::string &msg);
void informImpl(const std::string &msg);

/** Builds a message from stream-style arguments. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

} // namespace chameleon

#define CHAMELEON_PANIC(...)                                              \
    ::chameleon::detail::panicImpl(__FILE__, __LINE__,                    \
        ::chameleon::detail::format(__VA_ARGS__))

#define CHAMELEON_FATAL(...)                                              \
    ::chameleon::detail::fatalImpl(__FILE__, __LINE__,                    \
        ::chameleon::detail::format(__VA_ARGS__))

#define CHAMELEON_WARN(...)                                               \
    ::chameleon::detail::warnImpl(__FILE__, __LINE__,                     \
        ::chameleon::detail::format(__VA_ARGS__))

#define CHAMELEON_INFORM(...)                                             \
    ::chameleon::detail::informImpl(::chameleon::detail::format(__VA_ARGS__))

/** Checked invariant: active in all build types (simulation correctness
 * depends on these and the cost is negligible next to flow math). */
#define CHAMELEON_ASSERT(cond, ...)                                       \
    do {                                                                  \
        if (!(cond)) {                                                    \
            CHAMELEON_PANIC("assertion failed: " #cond " ",              \
                            ::chameleon::detail::format(__VA_ARGS__));    \
        }                                                                 \
    } while (0)

#endif // CHAMELEON_UTIL_LOGGING_HH_
