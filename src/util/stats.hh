/**
 * @file
 * Measurement helpers for the experiment harness.
 *
 * LatencyRecorder accumulates request latencies and reports the
 * percentiles the paper quotes (P50/P99). WindowedUsage integrates
 * per-link byte counts into fixed time windows so the Fig. 5/6 style
 * fluctuation and most/least-loaded analyses can be reproduced.
 */

#ifndef CHAMELEON_UTIL_STATS_HH_
#define CHAMELEON_UTIL_STATS_HH_

#include <cstddef>
#include <vector>

#include "util/types.hh"

namespace chameleon {

/** The headline statistics of one latency population, computed
 * together from a single sort (see LatencyRecorder::summary()). */
struct LatencySummary
{
    std::size_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
    double max = 0.0;

    bool operator==(const LatencySummary &) const = default;
};

/** Accumulates scalar samples and answers percentile queries. */
class LatencyRecorder
{
  public:
    void record(double value);

    std::size_t count() const { return samples_.size(); }
    double mean() const;
    double max() const;

    /**
     * Percentile via nearest-rank on the sorted samples.
     * @param p percentile in [0, 100].
     */
    double percentile(double p) const;

    /** Convenience for the paper's headline metric. */
    double p99() const { return percentile(99.0); }

    /**
     * Percentile over the suffix of samples starting at index
     * `from` (in recording order) — used to scope latency metrics to
     * the repair window.
     */
    double percentileFrom(std::size_t from, double p) const;

    /** Mean over the suffix starting at `from`. */
    double meanFrom(std::size_t from) const;

    /**
     * Mean/P50/P99/max in one pass: sorts the samples once instead
     * of re-validating the sort cache per percentile query.
     */
    LatencySummary summary() const { return summaryFrom(0); }

    /** summary() over the suffix starting at index `from`. */
    LatencySummary summaryFrom(std::size_t from) const;

    /** Samples in recording order. */
    const std::vector<double> &samples() const { return samples_; }

  private:
    std::vector<double> samples_;
    mutable std::vector<double> sortedCache_;
    mutable bool cacheValid_ = false;
};

/**
 * Integrates a piecewise-constant rate signal into fixed windows.
 *
 * Callers report byte transfers as (start, end, bytes) intervals with
 * an implied constant rate; the recorder spreads the bytes across the
 * windows the interval overlaps. Querying yields per-window average
 * bandwidth, from which fluctuation (max-min within a wider span) and
 * loaded-link rankings are derived.
 */
class WindowedUsage
{
  public:
    explicit WindowedUsage(SimTime window = 15.0);

    /** Accounts bytes transferred at constant rate over [start, end). */
    void addTransfer(SimTime start, SimTime end, Bytes bytes);

    /** Average bandwidth (bytes/s) within window index w. */
    Rate windowRate(std::size_t w) const;

    /** Number of windows touched so far. */
    std::size_t windowCount() const { return buckets_.size(); }

    SimTime window() const { return window_; }

    /** Total bytes accounted. */
    Bytes totalBytes() const;

    /** max(windowRate) - min(windowRate) over all touched windows. */
    Rate fluctuation() const;

    /** Mean of windowRate over all touched windows. */
    Rate meanRate() const;

    /** Fluctuation over windows intersecting [a, b); windows beyond
     * the recorded range count as zero traffic. */
    Rate fluctuationBetween(SimTime a, SimTime b) const;

    /** Mean rate over windows intersecting [a, b). */
    Rate meanRateBetween(SimTime a, SimTime b) const;

  private:
    SimTime window_;
    std::vector<Bytes> buckets_;
};

/** Simple running mean/min/max aggregate. */
struct Summary
{
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    std::size_t count = 0;

    void add(double v);
};

} // namespace chameleon

#endif // CHAMELEON_UTIL_STATS_HH_
