#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace chameleon {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::below(uint64_t n)
{
    CHAMELEON_ASSERT(n >= 1, "below() requires n >= 1, got ", n);
    // Rejection-free multiply-shift would bias slightly for huge n;
    // rejection sampling keeps the draw exactly uniform.
    const uint64_t threshold = -n % n;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    CHAMELEON_ASSERT(lo <= hi, "range(", lo, ", ", hi, ") is empty");
    return lo + static_cast<int64_t>(
        below(static_cast<uint64_t>(hi - lo) + 1));
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    CHAMELEON_ASSERT(mean > 0, "exponential mean must be positive");
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

Rng
Rng::split()
{
    return Rng(next());
}

} // namespace chameleon
