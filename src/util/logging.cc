#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>

namespace chameleon {
namespace detail {

namespace {

std::mutex &
panicHookMutex()
{
    static std::mutex m;
    return m;
}

std::function<void()> &
panicHook()
{
    static std::function<void()> hook;
    return hook;
}

/**
 * Runs the registered hook once; guards against re-entrant panics on
 * the same thread (thread_local, so one worker's panic never
 * suppresses another's crash flush).
 */
void
runPanicHook()
{
    thread_local bool running = false;
    if (running)
        return;
    running = true;
    std::function<void()> hook;
    {
        std::lock_guard<std::mutex> lock(panicHookMutex());
        hook = panicHook();
    }
    if (hook)
        hook();
    running = false;
}

} // namespace

void
setPanicHook(std::function<void()> hook)
{
    std::lock_guard<std::mutex> lock(panicHookMutex());
    panicHook() = std::move(hook);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    runPanicHook();
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    runPanicHook();
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace chameleon
