#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace chameleon {
namespace detail {

namespace {

std::function<void()> &
panicHook()
{
    static std::function<void()> hook;
    return hook;
}

/** Runs the registered hook once; guards against re-entrant panics. */
void
runPanicHook()
{
    static bool running = false;
    if (running)
        return;
    running = true;
    if (panicHook())
        panicHook()();
    running = false;
}

} // namespace

void
setPanicHook(std::function<void()> hook)
{
    panicHook() = std::move(hook);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    runPanicHook();
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    runPanicHook();
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace chameleon
