/**
 * @file
 * Cacheline-aligned chunk buffers.
 *
 * ec::Buffer is a std::vector<uint8_t> whose storage starts on a
 * 64-byte boundary. The GF region kernels accept any alignment (they
 * use unaligned loads), but aligned regions never split a SIMD lane
 * across cachelines, which is worth a few percent on the widest
 * kernels and makes chunk starts line up with slice boundaries. The
 * alias keeps full std::vector semantics — only the allocator
 * differs — so all existing Buffer code compiles unchanged.
 */

#ifndef CHAMELEON_EC_BUFFER_HH_
#define CHAMELEON_EC_BUFFER_HH_

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace chameleon {
namespace ec {

/** Minimal C++20 allocator over ::operator new with fixed alignment. */
template <typename T, std::size_t Align>
struct AlignedAllocator
{
    static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                  "alignment must be a power of two covering T");

    using value_type = T;

    AlignedAllocator() noexcept = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align> &) noexcept
    {
    }

    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    T *allocate(std::size_t n)
    {
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t(Align)));
    }

    void deallocate(T *p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t(Align));
    }

    friend bool operator==(const AlignedAllocator &,
                           const AlignedAllocator &) noexcept
    {
        return true;
    }
};

/** Raw chunk contents, 64-byte aligned (see file comment). */
using Buffer = std::vector<uint8_t, AlignedAllocator<uint8_t, 64>>;

} // namespace ec
} // namespace chameleon

#endif // CHAMELEON_EC_BUFFER_HH_
