/**
 * @file
 * The erasure-code abstraction the repair framework schedules against.
 *
 * A code stores n = k + m chunks per stripe. The repair framework only
 * needs three things from it:
 *   1. encode()        — produce the stored chunks from data chunks;
 *   2. makeRepairSpec()— given a failed chunk and the surviving chunk
 *                        indices, which helpers to read, what fraction
 *                        of each helper chunk is needed, the decoding
 *                        coefficient per helper, and whether relays may
 *                        partially combine contributions (the paper's
 *                        "tunability": linearity + addition
 *                        associativity of Equation (1));
 *   3. repairCompute() — bit-exact reference reconstruction used to
 *                        validate every simulated repair.
 */

#ifndef CHAMELEON_EC_CODE_HH_
#define CHAMELEON_EC_CODE_HH_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ec/buffer.hh"
#include "gf/gf256.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace chameleon {
namespace ec {

/** One helper read within a repair. */
struct RepairRead
{
    /** Index (within the stripe) of the surviving chunk to read. */
    ChunkIndex helper = 0;
    /** Fraction of the helper chunk that must be read (1.0 for
     * RS/LRC; 0.5 for Butterfly sub-chunk repair). */
    double fraction = 1.0;
    /** Decoding coefficient alpha_i of Equation (1); meaningful only
     * when the enclosing spec is combinable. */
    gf::Elem coeff = 0;
};

/**
 * The set of chunks a scheduler may choose repair helpers from.
 *
 * ChameleonEC picks helpers by available bandwidth rather than at
 * random, so it needs to know which survivors are eligible and how
 * many must be chosen, not just one concrete choice.
 */
struct HelperPool
{
    /** Chunks eligible to serve as helpers. */
    std::vector<ChunkIndex> candidates;
    /** How many of the candidates a repair must read. */
    int required = 0;
    /** True when exactly the candidate set must be used (LRC local
     * groups, Butterfly) and no subset choice exists. */
    bool fixedSet = false;
    /** Whether relays may partially combine (see RepairSpec). */
    bool combinable = true;
};

/** Complete recipe for repairing one failed chunk. */
struct RepairSpec
{
    ChunkIndex failed = 0;
    std::vector<RepairRead> reads;
    /**
     * True when intermediate nodes may merge contributions into
     * partially decoded chunks (all linear full-chunk codes). False
     * for sub-chunk codes like Butterfly, where — as the paper notes
     * in Exp#9 — ChameleonEC cannot establish an elastic plan and
     * falls back to direct transfers.
     */
    bool combinable = true;
};

/**
 * Interface implemented by every code family.
 *
 * Stripe-layout contract (every family is systematic):
 *   - chunk indices [0, k) are the data chunks;
 *   - chunk indices [k, n) are parity chunks, in whatever order the
 *     family defines (LRC places its local parities before its
 *     global parities; see lrc_code.hh for the exact layout).
 *   - m() is ALWAYS the total parity count n - k, never a family
 *     constructor parameter. LRC(k, l, m_global) reports
 *     m() == l*g + m_global; use totalParity() when you mean n - k
 *     explicitly and the family's own accessors (e.g.
 *     LrcCode::globalParities()) when you mean a constructor
 *     parameter.
 *
 * Besides the three repair primitives (encode / makeRepairSpec /
 * repairCompute), the interface answers the capability questions a
 * production placement or scrub layer asks — which erasure patterns
 * are repairable, from which minimal helper sets, and how many
 * failures are guaranteed survivable (the shape of ytsaurus'
 * ICodec).
 */
class ErasureCode
{
  public:
    virtual ~ErasureCode() = default;

    virtual int k() const = 0;
    /** Total parity chunks, n - k (see the layout contract above). */
    virtual int m() const = 0;
    int n() const { return k() + m(); }
    /** Alias of m(), named for call sites where "m" would be
     * ambiguous with a family's global-parity parameter. */
    int totalParity() const { return m(); }

    virtual std::string name() const = 0;

    /**
     * Encodes one stripe.
     *
     * @param data   k equally sized data chunks.
     * @return       m parity chunks of the same size.
     */
    virtual std::vector<Buffer>
    encode(const std::vector<Buffer> &data) const = 0;

    /**
     * Chooses helpers and coefficients to repair `failed`.
     *
     * @param failed     index of the lost chunk.
     * @param available  indices of chunks that survive (anywhere in
     *                   the stripe); must allow repair.
     * @param rng        source of randomness for helper selection
     *                   (the paper selects RS helpers at random).
     */
    virtual RepairSpec
    makeRepairSpec(ChunkIndex failed,
                   std::span<const ChunkIndex> available,
                   Rng &rng) const = 0;

    /**
     * Eligible helpers for a bandwidth-aware scheduler to choose
     * among (see HelperPool).
     */
    virtual HelperPool
    helperPool(ChunkIndex failed,
               std::span<const ChunkIndex> available) const = 0;

    /**
     * Builds a RepairSpec for an explicit helper choice.
     *
     * @return nullopt when `helpers` cannot repair `failed` (possible
     *         for non-MDS codes); callers fall back to
     *         makeRepairSpec().
     */
    virtual std::optional<RepairSpec>
    specFor(ChunkIndex failed,
            std::span<const ChunkIndex> helpers) const = 0;

    /**
     * Reference reconstruction of the failed chunk from helper data.
     *
     * @param spec         a spec previously produced by
     *                     makeRepairSpec().
     * @param helper_data  full helper chunk contents, ordered as
     *                     spec.reads (full chunks are passed even for
     *                     fractional reads; the code picks the bytes
     *                     it declared it needs).
     */
    virtual Buffer
    repairCompute(const RepairSpec &spec,
                  const std::vector<Buffer> &helper_data) const = 0;

    /**
     * Full decode used by tests: reconstructs every missing chunk of
     * a stripe from the survivors.
     *
     * @param chunks  n slots; missing chunks are empty buffers, and
     *                are filled in place on success.
     * @retval true if the failure pattern was decodable.
     */
    virtual bool decode(std::vector<Buffer> &chunks) const = 0;

    // ---- Capability queries (the ICodec surface).

    /**
     * True when every chunk in `erased` can be reconstructed from
     * the complement survivor set. Indices must be valid and
     * duplicate-free; an empty pattern is trivially repairable.
     * Exactly decode()'s success predicate, answerable without
     * touching chunk bytes.
     */
    virtual bool
    canRepair(std::span<const ChunkIndex> erased) const = 0;

    /**
     * A minimal helper set sufficient to reconstruct every chunk in
     * `erased`: a sorted, duplicate-free subset of the survivors
     * from which no member can be dropped without losing some erased
     * chunk. Deterministic for a given pattern (schedulers and tests
     * rely on that), minimal in the irredundant sense — ties between
     * equally small sets are broken by index order, not globally
     * optimized.
     *
     * @return nullopt when the pattern is not repairable.
     */
    virtual std::optional<std::vector<ChunkIndex>>
    repairIndices(std::span<const ChunkIndex> erased) const = 0;

    /**
     * Largest f such that EVERY erasure pattern of at most f chunks
     * is repairable (MDS codes: m; LRC: typically far below its
     * total parity). Patterns above this size may still repair —
     * canRepair() is the per-pattern answer.
     */
    virtual int guaranteedRepairableCount() const = 0;
};

} // namespace ec
} // namespace chameleon

#endif // CHAMELEON_EC_CODE_HH_
