/**
 * @file
 * Shared machinery for codes whose stored chunks are full-chunk linear
 * combinations of the k data chunks over GF(2^8).
 *
 * Such a code is characterized entirely by its n x k generator matrix
 * G: stored[i] = sum_j G[i][j] * data[j]. Encoding, arbitrary-pattern
 * decoding, and single-chunk repair-coefficient extraction are all
 * generic linear algebra; RS and LRC differ only in G and in their
 * helper-selection policy.
 */

#ifndef CHAMELEON_EC_LINEAR_CODE_HH_
#define CHAMELEON_EC_LINEAR_CODE_HH_

#include <optional>

#include "ec/code.hh"
#include "gf/matrix.hh"

namespace chameleon {
namespace ec {

/** Base for RS and LRC; see file comment. */
class LinearCode : public ErasureCode
{
  public:
    int k() const override { return k_; }
    int m() const override { return m_; }

    std::vector<Buffer>
    encode(const std::vector<Buffer> &data) const override;

    Buffer
    repairCompute(const RepairSpec &spec,
                  const std::vector<Buffer> &helper_data) const override;

    bool decode(std::vector<Buffer> &chunks) const override;

    std::optional<RepairSpec>
    specFor(ChunkIndex failed,
            std::span<const ChunkIndex> helpers) const override;

    /**
     * Generic rank test: every erased row must lie in the span of the
     * survivor rows. Works for any linear code, MDS or not.
     */
    bool canRepair(std::span<const ChunkIndex> erased) const override;

    /**
     * Generic minimal helper set: solve each erased row over the
     * ascending survivor list, union the helpers with nonzero
     * coefficients, then greedily prune helpers (lowest index first)
     * that are not needed by any erased chunk. Deterministic and
     * irredundant; for LRC single failures this reproduces the local
     * group exactly.
     */
    std::optional<std::vector<ChunkIndex>>
    repairIndices(std::span<const ChunkIndex> erased) const override;

    /**
     * Brute force over erasure patterns, level by level: returns
     * f - 1 for the first f whose C(n, f) patterns include an
     * unrepairable one, capped at m (erasing more than m chunks
     * always loses rank). MDS subclasses override with m().
     *
     * Recomputed on every call (no memo): code instances are shared
     * across sweep worker threads, and the enumeration is cheap at
     * simulation scale.
     */
    int guaranteedRepairableCount() const override;

    /** The full n x k generator matrix (identity on top). */
    const gf::Matrix &generator() const { return gen_; }

    /**
     * Solves for the per-helper coefficients that express the failed
     * chunk's generator row as a combination of the helper rows.
     *
     * @return one coefficient per helper, or nullopt if the helper
     *         set cannot repair `failed`.
     */
    std::optional<std::vector<gf::Elem>>
    repairCoeffs(ChunkIndex failed,
                 std::span<const ChunkIndex> helpers) const;

    /** True if `helpers` suffice to repair `failed`. */
    bool canRepairWith(ChunkIndex failed,
                       std::span<const ChunkIndex> helpers) const;

  protected:
    /**
     * @param k     data chunks per stripe.
     * @param m     parity chunks per stripe.
     * @param gen   generator matrix, (k+m) x k, with the identity in
     *              the first k rows (systematic).
     */
    LinearCode(int k, int m, gf::Matrix gen);

    /** Builds a spec given chosen helpers (validates solvability). */
    RepairSpec specFromHelpers(ChunkIndex failed,
                               std::span<const ChunkIndex> helpers) const;

    /**
     * Deterministic minimal helper subset of `candidates` repairing
     * the single chunk `failed` (single-target analogue of
     * repairIndices): solve over the ascending candidate list, keep
     * nonzero-coefficient helpers, prune redundant ones lowest index
     * first. nullopt when the candidates cannot repair `failed`.
     */
    std::optional<std::vector<ChunkIndex>>
    minimalHelpersFor(ChunkIndex failed,
                      std::span<const ChunkIndex> candidates) const;

  private:
    int k_;
    int m_;
    gf::Matrix gen_;
};

} // namespace ec
} // namespace chameleon

#endif // CHAMELEON_EC_LINEAR_CODE_HH_
