/**
 * @file
 * Shared machinery for codes whose stored chunks are full-chunk linear
 * combinations of the k data chunks over GF(2^8).
 *
 * Such a code is characterized entirely by its n x k generator matrix
 * G: stored[i] = sum_j G[i][j] * data[j]. Encoding, arbitrary-pattern
 * decoding, and single-chunk repair-coefficient extraction are all
 * generic linear algebra; RS and LRC differ only in G and in their
 * helper-selection policy.
 */

#ifndef CHAMELEON_EC_LINEAR_CODE_HH_
#define CHAMELEON_EC_LINEAR_CODE_HH_

#include <optional>

#include "ec/code.hh"
#include "gf/matrix.hh"

namespace chameleon {
namespace ec {

/** Base for RS and LRC; see file comment. */
class LinearCode : public ErasureCode
{
  public:
    int k() const override { return k_; }
    int m() const override { return m_; }

    std::vector<Buffer>
    encode(const std::vector<Buffer> &data) const override;

    Buffer
    repairCompute(const RepairSpec &spec,
                  const std::vector<Buffer> &helper_data) const override;

    bool decode(std::vector<Buffer> &chunks) const override;

    std::optional<RepairSpec>
    specFor(ChunkIndex failed,
            std::span<const ChunkIndex> helpers) const override;

    /** The full n x k generator matrix (identity on top). */
    const gf::Matrix &generator() const { return gen_; }

    /**
     * Solves for the per-helper coefficients that express the failed
     * chunk's generator row as a combination of the helper rows.
     *
     * @return one coefficient per helper, or nullopt if the helper
     *         set cannot repair `failed`.
     */
    std::optional<std::vector<gf::Elem>>
    repairCoeffs(ChunkIndex failed,
                 std::span<const ChunkIndex> helpers) const;

    /** True if `helpers` suffice to repair `failed`. */
    bool canRepairWith(ChunkIndex failed,
                       std::span<const ChunkIndex> helpers) const;

  protected:
    /**
     * @param k     data chunks per stripe.
     * @param m     parity chunks per stripe.
     * @param gen   generator matrix, (k+m) x k, with the identity in
     *              the first k rows (systematic).
     */
    LinearCode(int k, int m, gf::Matrix gen);

    /** Builds a spec given chosen helpers (validates solvability). */
    RepairSpec specFromHelpers(ChunkIndex failed,
                               std::span<const ChunkIndex> helpers) const;

  private:
    int k_;
    int m_;
    gf::Matrix gen_;
};

} // namespace ec
} // namespace chameleon

#endif // CHAMELEON_EC_LINEAR_CODE_HH_
