/**
 * @file
 * N-way replication expressed as a degenerate linear code (k = 1,
 * every stored chunk an identical copy). The paper motivates erasure
 * coding by its storage savings over replication; this class makes
 * the comparison runnable: repair reads exactly one surviving copy
 * (no amplification) at copies-times the storage cost.
 */

#ifndef CHAMELEON_EC_REPLICATED_CODE_HH_
#define CHAMELEON_EC_REPLICATED_CODE_HH_

#include "ec/linear_code.hh"

namespace chameleon {
namespace ec {

/** copies-way replication; tolerates copies-1 failures. */
class ReplicatedCode : public LinearCode
{
  public:
    /** @param copies total replicas (>= 2). */
    explicit ReplicatedCode(int copies);

    std::string name() const override;

    /** One random surviving copy. */
    RepairSpec
    makeRepairSpec(ChunkIndex failed,
                   std::span<const ChunkIndex> available,
                   Rng &rng) const override;

    /** Any single survivor qualifies. */
    HelperPool
    helperPool(ChunkIndex failed,
               std::span<const ChunkIndex> available) const override;

    /** Any copies-1 losses leave a readable replica. */
    int guaranteedRepairableCount() const override { return m(); }
};

} // namespace ec
} // namespace chameleon

#endif // CHAMELEON_EC_REPLICATED_CODE_HH_
