/**
 * @file
 * Butterfly(4,2): an XOR-based regenerating code with k = 2 data
 * chunks, 2 parity chunks, and sub-packetization 2 (each chunk is two
 * half-chunk "rows").
 *
 * Construction (rows over GF(2), data symbols a0,a1,b0,b1):
 *   node 0 (data A):   a0,            a1
 *   node 1 (data B):   b0,            b1
 *   node 2 (P):        a0^b0,         a1^b1
 *   node 3 (Q):        a0^b1,         a1^b0^b1
 *
 * Q = A + T*B with T = [[0,1],[1,1]]; A, T, and A+T are invertible,
 * which makes any two losses decodable (MDS).
 *
 * Repairing a data node or P reads one half-chunk from each of the
 * three survivors (1.5 chunks vs 2 for RS(2,2)); repairing Q is not
 * bandwidth-optimal (2 chunks), the usual property of systematic-MSR
 * butterfly constructions. Because repair operates on sub-chunks,
 * relays cannot form partially decoded chunks, so RepairSpecs are
 * marked non-combinable — matching the paper's observation in Exp#9
 * that ChameleonEC "cannot establish the elastic repair plan" for
 * Butterfly and gains only slightly over CR.
 */

#ifndef CHAMELEON_EC_BUTTERFLY_CODE_HH_
#define CHAMELEON_EC_BUTTERFLY_CODE_HH_

#include "ec/code.hh"

namespace chameleon {
namespace ec {

/** Butterfly(4,2); see file comment. */
class ButterflyCode : public ErasureCode
{
  public:
    ButterflyCode() = default;

    int k() const override { return 2; }
    int m() const override { return 2; }
    std::string name() const override { return "Butterfly(4,2)"; }

    std::vector<Buffer>
    encode(const std::vector<Buffer> &data) const override;

    RepairSpec
    makeRepairSpec(ChunkIndex failed,
                   std::span<const ChunkIndex> available,
                   Rng &rng) const override;

    /** All three survivors, fixed, non-combinable. */
    HelperPool
    helperPool(ChunkIndex failed,
               std::span<const ChunkIndex> available) const override;

    std::optional<RepairSpec>
    specFor(ChunkIndex failed,
            std::span<const ChunkIndex> helpers) const override;

    Buffer
    repairCompute(const RepairSpec &spec,
                  const std::vector<Buffer> &helper_data) const override;

    bool decode(std::vector<Buffer> &chunks) const override;

    /** MDS over two chunk losses. */
    bool canRepair(std::span<const ChunkIndex> erased) const override;

    /** The full survivor set — the recipes admit no subset choice. */
    std::optional<std::vector<ChunkIndex>>
    repairIndices(std::span<const ChunkIndex> erased) const override;

    int guaranteedRepairableCount() const override { return 2; }
};

} // namespace ec
} // namespace chameleon

#endif // CHAMELEON_EC_BUTTERFLY_CODE_HH_
