/**
 * @file
 * Data-integrity checksum kernels: CRC32C (Castagnoli) behind the
 * same one-time runtime ISA dispatch as the GF(2^8) region kernels
 * (src/gf), plus a portable xxHash64 for content fingerprinting.
 *
 * CRC32C variants, fastest-first:
 *
 *   - sse42:  hardware _mm_crc32_u64/_u8 (x86 SSE4.2), compiled in
 *             its own TU with -msse4.2 and only dispatched when the
 *             CPU reports the extension;
 *   - swar:   portable slicing-by-8 table walk, 8 bytes per step;
 *   - scalar: bitwise reference, one bit per step — the oracle the
 *             property tests compare every other variant against.
 *
 * Selection mirrors gf_dispatch.cc: -DCHAMELEON_FORCE_SCALAR strips
 * everything but the reference, CHAMELEON_CHECKSUM_KERNEL
 * ("scalar"|"swar"|"sse42") pins a variant when available, and the
 * choice is recorded once in the process metrics registry as
 * checksum.kernel.selected.<name>.
 *
 * SliceChecksums is the sidecar carried alongside an ec::Buffer
 * payload: one CRC32C per executor slice, so verify-on-read can
 * localize corruption to a slice without hashing the whole chunk.
 */

#ifndef CHAMELEON_EC_CHECKSUM_HH_
#define CHAMELEON_EC_CHECKSUM_HH_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ec/buffer.hh"

namespace chameleon {
namespace ec {
namespace checksum {

namespace detail {

/** Kernel variants in dispatch-preference order (fastest first). */
enum class Isa
{
    kSse42,
    kSwar,
    kScalar,
};

/** Function-pointer table implemented by each ISA variant. */
struct Kernels
{
    /** Continues a CRC32C over [data, data+len); pass the previous
     * return value to chain regions. State is pre/post-inverted
     * internally, so 0 is the empty-message seed. */
    uint32_t (*crc32c)(uint32_t crc, const uint8_t *data,
                       std::size_t len);
};

const char *isaName(Isa isa);

/** Variants compiled in AND supported by this CPU, preference order
 * (under CHAMELEON_FORCE_SCALAR: just the scalar reference). */
std::vector<Isa> availableIsas();

/** Kernel table for one variant; panics if not compiled in. */
const Kernels &kernels(Isa isa);

/** The variant every checksum::crc32c() call dispatches to; chosen
 * once on first use (see file comment). */
Isa activeIsa();

const Kernels &activeKernels();

const Kernels &scalarKernels();
const Kernels &swarKernels();
#ifdef CHAMELEON_HAVE_SSE42
const Kernels &sse42Kernels();
#endif

} // namespace detail

/** CRC32C of [data, data+len) via the dispatched kernel; chain
 * regions by passing the previous result as `crc` (start at 0). */
uint32_t crc32c(const void *data, std::size_t len, uint32_t crc = 0);

/** Portable xxHash64 content fingerprint (no ISA variants; the
 * 64-bit mix is already branch-free scalar code). */
uint64_t xxhash64(const void *data, std::size_t len,
                  uint64_t seed = 0);

/** Name of the dispatched CRC32C variant, for traces and logs. */
const char *kernelName();

/**
 * Per-slice CRC32C sidecar for one chunk payload. Slice boundaries
 * match the executor's slice pipeline (ExecutorConfig slices), so a
 * helper read can verify exactly the bytes it ships.
 */
struct SliceChecksums
{
    /** One CRC32C per slice, in slice order. */
    std::vector<uint32_t> slices;
    /** Bytes per slice used at compute time (last slice may be
     * short). */
    std::size_t sliceBytes = 0;
    /** Total payload length covered. */
    std::size_t totalBytes = 0;

    bool operator==(const SliceChecksums &) const = default;

    /** Checksums [data, data+len) in slice_bytes strides (one slice
     * covering everything when slice_bytes == 0 or >= len). */
    static SliceChecksums compute(const uint8_t *data,
                                  std::size_t len,
                                  std::size_t slice_bytes);
    static SliceChecksums compute(const Buffer &payload,
                                  std::size_t slice_bytes)
    {
        return compute(payload.data(), payload.size(), slice_bytes);
    }

    /** Index of the first slice whose checksum no longer matches the
     * payload, or -1 when every slice verifies (length mismatch
     * fails slice 0). */
    int firstMismatch(const uint8_t *data, std::size_t len) const;
    int firstMismatch(const Buffer &payload) const
    {
        return firstMismatch(payload.data(), payload.size());
    }

    /** True when the payload matches every slice checksum. */
    bool verify(const Buffer &payload) const
    {
        return firstMismatch(payload) < 0;
    }
};

} // namespace checksum
} // namespace ec
} // namespace chameleon

#endif // CHAMELEON_EC_CHECKSUM_HH_
