/**
 * @file
 * Azure-style Locally Repairable Code, generalized to multiple local
 * parities per group and arbitrary group counts: LRC(k, l, g, m).
 *
 * The k data chunks are split into l local groups; group gi holds g
 * local parities and the stripe holds m global parities (Cauchy
 * combinations of all k data chunks). With g = 1 (classic Azure LRC,
 * spelled LRC(k, l, m)) each local parity is the XOR of its group;
 * with g > 1 the local parities are Cauchy combinations restricted to
 * the group, so each group is itself MDS and tolerates g losses
 * locally. When l does not divide k the first k % l groups take one
 * extra data chunk (see groupSize(gi)/groupStart(gi)).
 *
 * Repairing a data chunk or a local parity touches only its group;
 * repairing a global parity reads k chunks — exactly the asymmetry
 * the paper exploits in Exp#9.
 *
 * Chunk layout within a stripe:
 *   [0, k)             data chunks; group gi spans
 *                      [groupStart(gi), groupStart(gi) + groupSize(gi));
 *   [k, k + l*g)       local parities (group gi's j-th at k + gi*g + j);
 *   [k + l*g, n)       global parities.
 *
 * Beware the m() trap: the constructor takes the GLOBAL parity count,
 * but m() (per the ErasureCode layout contract) reports the TOTAL
 * parity l*g + m. Use globalParities() for the constructor parameter
 * and totalParity() when you mean n - k explicitly.
 */

#ifndef CHAMELEON_EC_LRC_CODE_HH_
#define CHAMELEON_EC_LRC_CODE_HH_

#include "ec/linear_code.hh"

namespace chameleon {
namespace ec {

/** LRC(k, l, g, m); see file comment. */
class LrcCode : public LinearCode
{
  public:
    /**
     * Classic Azure LRC(k, l, m): one XOR local parity per group.
     *
     * @param k  data chunks; must be divisible by l.
     * @param l  number of local groups.
     * @param m  number of global parities.
     */
    LrcCode(int k, int l, int m);

    /**
     * Generalized form with g local parities per group and uneven
     * groups allowed (l need not divide k).
     */
    LrcCode(int k, int l, int g, int m);

    std::string name() const override;

    int localGroups() const { return l_; }
    /** Constructor parameter m — NOT m(), which is total parity. */
    int globalParities() const { return mGlobal_; }
    /** Local parities per group (1 for classic Azure LRC). */
    int localParitiesPerGroup() const { return g_; }

    /** Data chunks in group gi. */
    int groupSize(int gi) const;
    /** First data chunk index of group gi. */
    int groupStart(int gi) const;
    /** Uniform group size; asserts l | k (legacy call sites). */
    int groupSize() const;

    /** Group of a data chunk or local parity; -1 for globals. */
    int groupOf(ChunkIndex idx) const;

    RepairSpec
    makeRepairSpec(ChunkIndex failed,
                   std::span<const ChunkIndex> available,
                   Rng &rng) const override;

    /**
     * The local group when locally solvable (fixed set); the data
     * chunks for an intact global parity; otherwise the minimal
     * helper set derived from the generator (empty candidates when
     * the pattern is unrepairable, which downstream admission gates
     * report as unrecoverable).
     */
    HelperPool
    helperPool(ChunkIndex failed,
               std::span<const ChunkIndex> available) const override;

  private:
    int l_;
    int g_;
    int mGlobal_;
};

} // namespace ec
} // namespace chameleon

#endif // CHAMELEON_EC_LRC_CODE_HH_
