/**
 * @file
 * Azure-style Locally Repairable Code LRC(k, l, m).
 *
 * The k data chunks are split into l equal local groups; each group
 * gets one local parity (the XOR of its members) and the stripe gets
 * m global parities (Cauchy combinations of all k data chunks).
 * Repairing a data chunk or a local parity touches only the k/l
 * chunks of its group; repairing a global parity reads k chunks —
 * exactly the asymmetry the paper exploits in Exp#9.
 *
 * Chunk layout within a stripe:
 *   [0, k)            data chunks,
 *   [k, k+l)          local parities (group g's parity at k+g),
 *   [k+l, k+l+m)      global parities.
 */

#ifndef CHAMELEON_EC_LRC_CODE_HH_
#define CHAMELEON_EC_LRC_CODE_HH_

#include "ec/linear_code.hh"

namespace chameleon {
namespace ec {

/** LRC(k, l, m); see file comment. m() reports total parity l + m. */
class LrcCode : public LinearCode
{
  public:
    /**
     * @param k  data chunks; must be divisible by l.
     * @param l  number of local groups / local parities.
     * @param m  number of global parities.
     */
    LrcCode(int k, int l, int m);

    std::string name() const override;

    int localGroups() const { return l_; }
    int globalParities() const { return mGlobal_; }
    int groupSize() const { return k() / l_; }

    /** Group of a data chunk or local parity; -1 for globals. */
    int groupOf(ChunkIndex idx) const;

    RepairSpec
    makeRepairSpec(ChunkIndex failed,
                   std::span<const ChunkIndex> available,
                   Rng &rng) const override;

    /**
     * The local group when intact (fixed set); the data chunks for a
     * global parity; otherwise the full survivor set with a free
     * choice of k helpers.
     */
    HelperPool
    helperPool(ChunkIndex failed,
               std::span<const ChunkIndex> available) const override;

  private:
    int l_;
    int mGlobal_;
};

} // namespace ec
} // namespace chameleon

#endif // CHAMELEON_EC_LRC_CODE_HH_
