/**
 * @file
 * Code construction: typed convenience constructors for the families
 * the paper evaluates, plus a string-keyed registry so every spec in
 * the system (ScenarioSpec JSON, `chameleon-sim --code`, bench
 * sweeps) is parsed and validated through one grammar.
 *
 * Spec grammar (one per family, see registeredCodecs()):
 *   rs(K,M)          Reed-Solomon, 1 <= K,M and K+M <= 256
 *   lrc(K,L,M)       Azure LRC, one XOR local parity per group;
 *                    uneven groups allowed when L does not divide K
 *   lrc(K,L,G,M)     generalized LRC, G local parities per group
 *   butterfly        Butterfly(4,2)
 *   rep(N)           N-way replication, N >= 2
 * The legacy colon spelling ("rs:10,4") is accepted as an alias of
 * the parenthesized form.
 */

#ifndef CHAMELEON_EC_FACTORY_HH_
#define CHAMELEON_EC_FACTORY_HH_

#include <memory>
#include <string>
#include <vector>

#include "ec/code.hh"

namespace chameleon {
namespace ec {

// ---- Typed constructors (programmatic call sites).

/** RS(k, m) — e.g. RS(10,4) of Facebook f4, RS(8,3) of Yahoo COS. */
std::shared_ptr<ErasureCode> makeRs(int k, int m);

/** LRC(k, l, m) — e.g. LRC(8,2,2), LRC(10,2,2). */
std::shared_ptr<ErasureCode> makeLrc(int k, int l, int m);

/** Generalized LRC(k, l, g, m) with g local parities per group. */
std::shared_ptr<ErasureCode> makeLrc(int k, int l, int g, int m);

/** Butterfly(4,2). */
std::shared_ptr<ErasureCode> makeButterfly();

/** copies-way replication (the paper's storage-cost comparison). */
std::shared_ptr<ErasureCode> makeReplicated(int copies);

// ---- The registry.

/** One registered code family, for --list-codes and docs. */
struct CodecFamily
{
    /** Registry key ("rs"). */
    std::string key;
    /** Spec grammar ("rs(K,M)"). */
    std::string grammar;
    /** One-line description. */
    std::string summary;
};

/** Families the registry accepts, in stable display order. */
const std::vector<CodecFamily> &registeredCodecs();

/**
 * Builds a code from its spec string through the registry.
 *
 * @return nullptr on a malformed or invalid spec, with a diagnostic
 *         in *error (when non-null) that names what was wrong —
 *         never a silent fall-through or an assert.
 */
std::shared_ptr<const ErasureCode>
tryMakeCode(const std::string &spec, std::string *error = nullptr);

/** tryMakeCode() that panics on error (trusted call sites). */
std::shared_ptr<const ErasureCode> makeCode(const std::string &spec);

} // namespace ec
} // namespace chameleon

#endif // CHAMELEON_EC_FACTORY_HH_
