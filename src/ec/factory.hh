/**
 * @file
 * Convenience constructors for the code families the paper evaluates.
 */

#ifndef CHAMELEON_EC_FACTORY_HH_
#define CHAMELEON_EC_FACTORY_HH_

#include <memory>

#include "ec/code.hh"

namespace chameleon {
namespace ec {

/** RS(k, m) — e.g. RS(10,4) of Facebook f4, RS(8,3) of Yahoo COS. */
std::shared_ptr<ErasureCode> makeRs(int k, int m);

/** LRC(k, l, m) — e.g. LRC(8,2,2), LRC(10,2,2). */
std::shared_ptr<ErasureCode> makeLrc(int k, int l, int m);

/** Butterfly(4,2). */
std::shared_ptr<ErasureCode> makeButterfly();

/** copies-way replication (the paper's storage-cost comparison). */
std::shared_ptr<ErasureCode> makeReplicated(int copies);

} // namespace ec
} // namespace chameleon

#endif // CHAMELEON_EC_FACTORY_HH_
