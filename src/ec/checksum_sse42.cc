/**
 * @file
 * Hardware CRC32C via the SSE4.2 CRC32 instruction, 8 bytes per
 * step. This TU is compiled with -msse4.2 and only ever entered
 * after the dispatcher confirms CPU support (see checksum.hh).
 */

#include "ec/checksum.hh"

#ifdef CHAMELEON_HAVE_SSE42

#include <cstring>
#include <nmmintrin.h>

namespace chameleon {
namespace ec {
namespace checksum {
namespace detail {

namespace {

uint32_t
crc32cSse42(uint32_t crc, const uint8_t *data, std::size_t len)
{
    uint64_t c = ~crc;
    while (len >= 8) {
        uint64_t word;
        std::memcpy(&word, data, 8);
        c = _mm_crc32_u64(c, word);
        data += 8;
        len -= 8;
    }
    auto c32 = static_cast<uint32_t>(c);
    while (len--)
        c32 = _mm_crc32_u8(c32, *data++);
    return ~c32;
}

} // namespace

const Kernels &
sse42Kernels()
{
    static const Kernels k{&crc32cSse42};
    return k;
}

} // namespace detail
} // namespace checksum
} // namespace ec
} // namespace chameleon

#endif // CHAMELEON_HAVE_SSE42
