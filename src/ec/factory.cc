#include "ec/factory.hh"

#include "ec/butterfly_code.hh"
#include "ec/lrc_code.hh"
#include "ec/replicated_code.hh"
#include "ec/rs_code.hh"

namespace chameleon {
namespace ec {

std::shared_ptr<ErasureCode>
makeRs(int k, int m)
{
    return std::make_shared<RsCode>(k, m);
}

std::shared_ptr<ErasureCode>
makeLrc(int k, int l, int m)
{
    return std::make_shared<LrcCode>(k, l, m);
}

std::shared_ptr<ErasureCode>
makeButterfly()
{
    return std::make_shared<ButterflyCode>();
}

std::shared_ptr<ErasureCode>
makeReplicated(int copies)
{
    return std::make_shared<ReplicatedCode>(copies);
}

} // namespace ec
} // namespace chameleon
