#include "ec/factory.hh"

#include "ec/butterfly_code.hh"
#include "ec/lrc_code.hh"
#include "ec/replicated_code.hh"
#include "ec/rs_code.hh"
#include "util/logging.hh"

namespace chameleon {
namespace ec {

std::shared_ptr<ErasureCode>
makeRs(int k, int m)
{
    return std::make_shared<RsCode>(k, m);
}

std::shared_ptr<ErasureCode>
makeLrc(int k, int l, int m)
{
    return std::make_shared<LrcCode>(k, l, m);
}

std::shared_ptr<ErasureCode>
makeLrc(int k, int l, int g, int m)
{
    return std::make_shared<LrcCode>(k, l, g, m);
}

std::shared_ptr<ErasureCode>
makeButterfly()
{
    return std::make_shared<ButterflyCode>();
}

std::shared_ptr<ErasureCode>
makeReplicated(int copies)
{
    return std::make_shared<ReplicatedCode>(copies);
}

namespace {

/**
 * Splits "family(a,b,c)" / "family:a,b,c" / "family" into the family
 * key and its strictly-validated integer arguments. Every malformed
 * shape — empty parameters ("rs(10,)"), trailing junk, non-digits,
 * out-of-range values — produces a diagnostic instead of falling
 * through.
 */
bool
parseSpec(const std::string &spec, std::string *family,
          std::vector<int> *args, std::string &err)
{
    std::size_t open = spec.find_first_of("(:");
    std::string body;
    if (open == std::string::npos) {
        *family = spec;
    } else {
        *family = spec.substr(0, open);
        if (spec[open] == '(') {
            if (spec.back() != ')' || spec.size() < open + 2) {
                err = "expected ')' at the end of '" + spec + "'";
                return false;
            }
            body = spec.substr(open + 1,
                               spec.size() - open - 2);
        } else {
            body = spec.substr(open + 1);
        }
        if (body.empty()) {
            err = "empty parameter list in '" + spec + "'";
            return false;
        }
    }
    if (family->empty()) {
        err = "missing code family in '" + spec + "'";
        return false;
    }
    if (body.empty())
        return true;
    std::size_t pos = 0;
    while (pos <= body.size()) {
        std::size_t next = body.find(',', pos);
        if (next == std::string::npos)
            next = body.size();
        std::string tok = body.substr(pos, next - pos);
        if (tok.empty() || tok.size() > 6 ||
            tok.find_first_not_of("0123456789") !=
                std::string::npos) {
            err = "bad code parameter '" + tok + "' in '" + spec +
                  "' (want a positive integer)";
            return false;
        }
        int v = std::stoi(tok);
        if (v < 1) {
            err = "bad code parameter '" + tok + "' in '" + spec +
                  "' (want a positive integer)";
            return false;
        }
        args->push_back(v);
        pos = next + 1;
    }
    return true;
}

std::string
grammarHelp()
{
    std::string out;
    for (const auto &fam : registeredCodecs()) {
        if (!out.empty())
            out += " | ";
        out += fam.grammar;
    }
    return out;
}

} // namespace

const std::vector<CodecFamily> &
registeredCodecs()
{
    static const std::vector<CodecFamily> families = {
        {"rs", "rs(K,M)",
         "Reed-Solomon: any K of the K+M chunks decode (K+M <= 256)"},
        {"lrc", "lrc(K,L,M) | lrc(K,L,G,M)",
         "Azure-style LRC: L local groups, G local parities per "
         "group (default 1 = XOR), M global parities"},
        {"butterfly", "butterfly",
         "Butterfly(4,2): sub-chunk repair, non-combinable"},
        {"rep", "rep(N)", "N-way replication (N >= 2)"},
    };
    return families;
}

std::shared_ptr<const ErasureCode>
tryMakeCode(const std::string &spec, std::string *error)
{
    auto fail = [&](const std::string &msg)
        -> std::shared_ptr<const ErasureCode> {
        if (error)
            *error = msg;
        return nullptr;
    };

    std::string family;
    std::vector<int> args;
    std::string err;
    if (!parseSpec(spec, &family, &args, err))
        return fail(err);

    if (family == "rs") {
        if (args.size() != 2)
            return fail("rs takes 2 parameters, got " +
                        std::to_string(args.size()) + " in '" + spec +
                        "' (want rs(K,M))");
        if (args[0] + args[1] > 256)
            return fail("rs(" + std::to_string(args[0]) + "," +
                        std::to_string(args[1]) +
                        ") exceeds the GF(2^8) limit K+M <= 256");
        return makeRs(args[0], args[1]);
    }
    if (family == "lrc") {
        if (args.size() != 3 && args.size() != 4)
            return fail("lrc takes 3 or 4 parameters, got " +
                        std::to_string(args.size()) + " in '" + spec +
                        "' (want lrc(K,L,M) or lrc(K,L,G,M))");
        const int k = args[0];
        const int l = args[1];
        const int g = args.size() == 4 ? args[2] : 1;
        const int m = args.back();
        if (l > k)
            return fail("lrc spec '" + spec +
                        "' has more local groups than data chunks");
        if (k + l * g + m > 256)
            return fail("lrc spec '" + spec +
                        "' exceeds the GF(2^8) limit K+L*G+M <= 256");
        return makeLrc(k, l, g, m);
    }
    if (family == "butterfly") {
        if (!args.empty())
            return fail("butterfly takes no parameters, got '" +
                        spec + "'");
        return makeButterfly();
    }
    if (family == "rep") {
        if (args.size() != 1)
            return fail("rep takes 1 parameter, got " +
                        std::to_string(args.size()) + " in '" + spec +
                        "' (want rep(N))");
        if (args[0] < 2 || args[0] > 256)
            return fail("rep(" + std::to_string(args[0]) +
                        ") wants 2 <= N <= 256");
        return makeReplicated(args[0]);
    }
    return fail("unknown code family '" + family + "' in '" + spec +
                "' (want " + grammarHelp() + ")");
}

std::shared_ptr<const ErasureCode>
makeCode(const std::string &spec)
{
    std::string err;
    auto code = tryMakeCode(spec, &err);
    CHAMELEON_ASSERT(code != nullptr, "makeCode: ", err);
    return code;
}

} // namespace ec
} // namespace chameleon
