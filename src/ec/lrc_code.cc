#include "ec/lrc_code.hh"

#include <algorithm>

#include "util/logging.hh"

namespace chameleon {
namespace ec {

namespace {

int
groupSizeOf(int k, int l, int gi)
{
    // Uneven split: the first k % l groups take one extra chunk.
    return k / l + (gi < k % l ? 1 : 0);
}

int
groupStartOf(int k, int l, int gi)
{
    return gi * (k / l) + std::min(gi, k % l);
}

gf::Matrix
buildLrcGenerator(int k, int l, int g, int m)
{
    CHAMELEON_ASSERT(l >= 1 && l <= k,
                     "LRC requires 1 <= l <= k, got k=", k, " l=", l);
    CHAMELEON_ASSERT(g >= 1, "LRC needs >= 1 local parity per group");
    CHAMELEON_ASSERT(m >= 1, "LRC needs >= 1 global parity");
    const int n = k + l * g + m;
    CHAMELEON_ASSERT(n <= 256, "LRC(", k, ",", l, ",", g, ",", m,
                     ") exceeds GF(2^8) limit");
    gf::Matrix gen(static_cast<std::size_t>(n),
                   static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i)
        gen.set(i, i, gf::kOne);
    // Local parities. g == 1 keeps the classic XOR rows (and, with
    // l | k, a generator byte-identical to the original three-arg
    // LrcCode); g > 1 uses per-group Cauchy rows, making each group
    // MDS against g local losses.
    for (int gi = 0; gi < l; ++gi) {
        const int start = groupStartOf(k, l, gi);
        const int size = groupSizeOf(k, l, gi);
        if (g == 1) {
            for (int j = 0; j < size; ++j)
                gen.set(k + gi, start + j, gf::kOne);
        } else {
            gf::Matrix local =
                gf::Matrix::cauchy(static_cast<std::size_t>(g),
                                   static_cast<std::size_t>(size));
            for (int r = 0; r < g; ++r)
                for (int c = 0; c < size; ++c)
                    gen.set(k + gi * g + r, start + c,
                            local.at(r, c));
        }
    }
    // Global parities: Cauchy combinations of all data chunks.
    gf::Matrix parity = gf::Matrix::cauchy(static_cast<std::size_t>(m),
                                           static_cast<std::size_t>(k));
    for (int r = 0; r < m; ++r)
        for (int c = 0; c < k; ++c)
            gen.set(k + l * g + r, c, parity.at(r, c));
    return gen;
}

} // namespace

LrcCode::LrcCode(int k, int l, int m)
    : LrcCode(k, l, 1, m)
{
    CHAMELEON_ASSERT(k % l == 0,
                     "classic LRC requires l | k, got k=", k, " l=", l);
}

LrcCode::LrcCode(int k, int l, int g, int m)
    : LinearCode(k, l * g + m, buildLrcGenerator(k, l, g, m)),
      l_(l), g_(g), mGlobal_(m)
{
}

std::string
LrcCode::name() const
{
    if (g_ == 1)
        return "LRC(" + std::to_string(k()) + "," +
               std::to_string(l_) + "," + std::to_string(mGlobal_) +
               ")";
    return "LRC(" + std::to_string(k()) + "," + std::to_string(l_) +
           "," + std::to_string(g_) + "," + std::to_string(mGlobal_) +
           ")";
}

int
LrcCode::groupSize(int gi) const
{
    CHAMELEON_ASSERT(gi >= 0 && gi < l_, "bad group ", gi);
    return groupSizeOf(k(), l_, gi);
}

int
LrcCode::groupStart(int gi) const
{
    CHAMELEON_ASSERT(gi >= 0 && gi < l_, "bad group ", gi);
    return groupStartOf(k(), l_, gi);
}

int
LrcCode::groupSize() const
{
    CHAMELEON_ASSERT(k() % l_ == 0,
                     name(), " has uneven groups; use groupSize(gi)");
    return k() / l_;
}

int
LrcCode::groupOf(ChunkIndex idx) const
{
    if (idx < k()) {
        const int base = k() / l_;
        const int rem = k() % l_;
        const int fat = rem * (base + 1);
        if (idx < fat)
            return idx / (base + 1);
        return rem + (idx - fat) / base;
    }
    if (idx < k() + l_ * g_)
        return (idx - k()) / g_;
    return -1;
}

RepairSpec
LrcCode::makeRepairSpec(ChunkIndex failed,
                        std::span<const ChunkIndex> available,
                        Rng &rng) const
{
    auto available_of = [&](const std::vector<ChunkIndex> &want) {
        std::vector<ChunkIndex> have;
        for (ChunkIndex w : want)
            if (w != failed &&
                std::find(available.begin(), available.end(), w) !=
                    available.end())
                have.push_back(w);
        return have;
    };

    const int g = groupOf(failed);
    if (g >= 0) {
        // Data chunk or local parity: try the local group (its data
        // chunks plus its local parities) first. The solver both
        // decides solvability and drops zero-coefficient helpers, so
        // with g_ > 1 only one local parity is actually read.
        std::vector<ChunkIndex> want;
        for (int j = 0; j < groupSize(g); ++j)
            want.push_back(groupStart(g) + j);
        for (int j = 0; j < g_; ++j)
            want.push_back(static_cast<ChunkIndex>(k() + g * g_ + j));
        auto helpers = available_of(want);
        if (helpers.size() == want.size() - 1 &&
            canRepairWith(failed, helpers))
            return specFromHelpers(failed, helpers);
    } else {
        // Global parity: read the k data chunks when intact.
        std::vector<ChunkIndex> want;
        for (ChunkIndex j = 0; j < k(); ++j)
            want.push_back(j);
        auto helpers = available_of(want);
        if (helpers.size() == want.size())
            return specFromHelpers(failed, helpers);
    }

    // Degraded path (another failure in the group / missing data):
    // shuffle the survivors and let the coefficient solver pick a
    // minimal combination (zero-coefficient helpers are dropped).
    std::vector<ChunkIndex> pool(available.begin(), available.end());
    for (std::size_t i = 0; i + 1 < pool.size(); ++i) {
        auto j = i + rng.below(pool.size() - i);
        std::swap(pool[i], pool[j]);
    }
    auto coeffs = repairCoeffs(failed, pool);
    CHAMELEON_ASSERT(coeffs.has_value(),
                     name(), ": failure pattern not recoverable for chunk ",
                     failed);
    return specFromHelpers(failed, pool);
}

HelperPool
LrcCode::helperPool(ChunkIndex failed,
                    std::span<const ChunkIndex> available) const
{
    auto available_of = [&](const std::vector<ChunkIndex> &want) {
        std::vector<ChunkIndex> have;
        for (ChunkIndex w : want)
            if (w != failed &&
                std::find(available.begin(), available.end(), w) !=
                    available.end())
                have.push_back(w);
        return have;
    };

    HelperPool pool;
    pool.combinable = true;
    const int g = groupOf(failed);
    if (g >= 0) {
        std::vector<ChunkIndex> want;
        for (int j = 0; j < groupSize(g); ++j)
            want.push_back(groupStart(g) + j);
        for (int j = 0; j < g_; ++j)
            want.push_back(static_cast<ChunkIndex>(k() + g * g_ + j));
        auto local = available_of(want);
        if (auto minimal = minimalHelpersFor(failed, local)) {
            pool.candidates = std::move(*minimal);
            pool.required = static_cast<int>(pool.candidates.size());
            pool.fixedSet = true;
            return pool;
        }
    } else {
        std::vector<ChunkIndex> data;
        for (ChunkIndex j = 0; j < k(); ++j)
            data.push_back(j);
        if (available_of(data).size() == data.size()) {
            pool.candidates = std::move(data);
            pool.required = k();
            pool.fixedSet = true;
            return pool;
        }
    }

    // Degraded: derive the true minimal helper set from the
    // generator. An unrepairable pattern yields an empty candidate
    // list (< required), which the admission gates report as
    // unrecoverable instead of panicking inside makeRepairSpec.
    if (auto minimal = minimalHelpersFor(failed, available)) {
        pool.candidates = std::move(*minimal);
        pool.required = static_cast<int>(pool.candidates.size());
        pool.fixedSet = true;
        return pool;
    }
    pool.candidates.clear();
    pool.required = k();
    pool.fixedSet = false;
    return pool;
}

} // namespace ec
} // namespace chameleon
