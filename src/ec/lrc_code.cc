#include "ec/lrc_code.hh"

#include <algorithm>

#include "util/logging.hh"

namespace chameleon {
namespace ec {

namespace {

gf::Matrix
buildLrcGenerator(int k, int l, int m)
{
    CHAMELEON_ASSERT(l >= 1 && k % l == 0,
                     "LRC requires l | k, got k=", k, " l=", l);
    const int group = k / l;
    const int n = k + l + m;
    gf::Matrix gen(static_cast<std::size_t>(n),
                   static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i)
        gen.set(i, i, gf::kOne);
    // Local parities: XOR of the group's data chunks.
    for (int g = 0; g < l; ++g)
        for (int j = 0; j < group; ++j)
            gen.set(k + g, g * group + j, gf::kOne);
    // Global parities: Cauchy combinations of all data chunks.
    gf::Matrix parity = gf::Matrix::cauchy(static_cast<std::size_t>(m),
                                           static_cast<std::size_t>(k));
    for (int r = 0; r < m; ++r)
        for (int c = 0; c < k; ++c)
            gen.set(k + l + r, c, parity.at(r, c));
    return gen;
}

} // namespace

LrcCode::LrcCode(int k, int l, int m)
    : LinearCode(k, l + m, buildLrcGenerator(k, l, m)),
      l_(l), mGlobal_(m)
{
}

std::string
LrcCode::name() const
{
    return "LRC(" + std::to_string(k()) + "," + std::to_string(l_) +
           "," + std::to_string(mGlobal_) + ")";
}

int
LrcCode::groupOf(ChunkIndex idx) const
{
    if (idx < k())
        return idx / groupSize();
    if (idx < k() + l_)
        return idx - k();
    return -1;
}

RepairSpec
LrcCode::makeRepairSpec(ChunkIndex failed,
                        std::span<const ChunkIndex> available,
                        Rng &rng) const
{
    const int g = groupOf(failed);
    if (g >= 0) {
        // Data chunk or local parity: try the local group first.
        std::vector<ChunkIndex> helpers;
        for (int j = 0; j < groupSize(); ++j) {
            ChunkIndex idx = g * groupSize() + j;
            if (idx != failed)
                helpers.push_back(idx);
        }
        ChunkIndex lp = static_cast<ChunkIndex>(k() + g);
        if (lp != failed)
            helpers.push_back(lp);
        bool all_present = std::all_of(
            helpers.begin(), helpers.end(), [&](ChunkIndex h) {
                return std::find(available.begin(), available.end(), h) !=
                       available.end();
            });
        if (all_present)
            return specFromHelpers(failed, helpers);
    } else {
        // Global parity: read the k data chunks when intact.
        std::vector<ChunkIndex> helpers;
        for (ChunkIndex j = 0; j < k(); ++j)
            helpers.push_back(j);
        bool all_present = std::all_of(
            helpers.begin(), helpers.end(), [&](ChunkIndex h) {
                return std::find(available.begin(), available.end(), h) !=
                       available.end();
            });
        if (all_present)
            return specFromHelpers(failed, helpers);
    }

    // Degraded path (another failure in the group / missing data):
    // shuffle the survivors and let the coefficient solver pick a
    // minimal combination (zero-coefficient helpers are dropped).
    std::vector<ChunkIndex> pool(available.begin(), available.end());
    for (std::size_t i = 0; i + 1 < pool.size(); ++i) {
        auto j = i + rng.below(pool.size() - i);
        std::swap(pool[i], pool[j]);
    }
    auto coeffs = repairCoeffs(failed, pool);
    CHAMELEON_ASSERT(coeffs.has_value(),
                     name(), ": failure pattern not recoverable for chunk ",
                     failed);
    return specFromHelpers(failed, pool);
}

HelperPool
LrcCode::helperPool(ChunkIndex failed,
                    std::span<const ChunkIndex> available) const
{
    auto contains_all = [&](const std::vector<ChunkIndex> &want) {
        return std::all_of(want.begin(), want.end(), [&](ChunkIndex h) {
            return std::find(available.begin(), available.end(), h) !=
                   available.end();
        });
    };

    HelperPool pool;
    pool.combinable = true;
    const int g = groupOf(failed);
    if (g >= 0) {
        std::vector<ChunkIndex> group;
        for (int j = 0; j < groupSize(); ++j) {
            ChunkIndex idx = g * groupSize() + j;
            if (idx != failed)
                group.push_back(idx);
        }
        ChunkIndex lp = static_cast<ChunkIndex>(k() + g);
        if (lp != failed)
            group.push_back(lp);
        if (contains_all(group)) {
            pool.candidates = std::move(group);
            pool.required = static_cast<int>(pool.candidates.size());
            pool.fixedSet = true;
            return pool;
        }
    } else {
        std::vector<ChunkIndex> data;
        for (ChunkIndex j = 0; j < k(); ++j)
            data.push_back(j);
        if (contains_all(data)) {
            pool.candidates = std::move(data);
            pool.required = k();
            pool.fixedSet = true;
            return pool;
        }
    }
    pool.candidates.assign(available.begin(), available.end());
    pool.required = k();
    pool.fixedSet = false;
    return pool;
}

} // namespace ec
} // namespace chameleon
